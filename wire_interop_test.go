package pando_test

// End-to-end interoperability tests for the negotiated wire formats
// (ISSUE 1 acceptance criteria): a v2-capable pair settles on the binary
// wire for both the plain and grouped data planes, and a v1-only worker
// still completes a computation against a v2 master.

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	pando "pando"
	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/worker"
)

func assertWire(t *testing.T, stats []pando.WorkerStats, name, want string) {
	t.Helper()
	for _, w := range stats {
		if w.Name == name {
			if w.Wire != want {
				t.Fatalf("%s negotiated %q, want %q", name, w.Wire, want)
			}
			return
		}
	}
	t.Fatalf("no stats row for %q in %v", name, stats)
}

// TestWireV3PlainEndToEnd: default deployments negotiate the
// bandwidth-aware wire ('/pando/2.2.0') and the plain data plane
// round-trips over it.
func TestWireV3PlainEndToEnd(t *testing.T) {
	p := pando.New("wire2-square", func(v int) (int, error) { return v * v, nil },
		pando.WithoutRegistry())
	defer p.Close()
	p.AddLocalWorkers(2)

	inputs := make([]int, 30)
	for i := range inputs {
		inputs[i] = i
	}
	out, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	assertWire(t, p.Stats(), "local-1", pando.WireV3)
}

// TestWireV3GroupedEndToEnd: the grouped data plane (several values per
// frame) round-trips over binary batches on the bandwidth-aware wire.
func TestWireV3GroupedEndToEnd(t *testing.T) {
	p := pando.New("wire2-grouped", func(v int) (int, error) { return v + 1, nil },
		pando.WithoutRegistry(), pando.WithGroup(4), pando.WithBatch(8))
	defer p.Close()
	p.AddLocalWorkers(2)

	inputs := make([]int, 41) // not a multiple of the group size
	for i := range inputs {
		inputs[i] = i
	}
	out, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(inputs) {
		t.Fatalf("got %d results, want %d", len(out), len(inputs))
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
		}
	}
	assertWire(t, p.Stats(), "local-1", pando.WireV3)
}

// TestWireV2WorkerAgainstV3Master: a volunteer that tops out at the
// plain binary wire joins a v3-preferring master and the computation
// completes on '/pando/2.1.0' — no compression, no dedup, correct
// results (the negotiation-interop half of the fuzz satellite).
func TestWireV2WorkerAgainstV3Master(t *testing.T) {
	p := pando.New("wire23-square", func(v int) (int, error) { return v * v, nil },
		pando.WithoutRegistry())
	defer p.Close()

	ln := netsim.NewListener("master", netsim.LAN)
	defer ln.Close()
	go p.ServeWS(ln)

	conn, _, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	v := &worker.Volunteer{
		Name:       "plain",
		Handler:    pando.Handler(func(v int) (int, error) { return v * v, nil }),
		Formats:    []string{proto.Version2, proto.Version}, // no v3
		CrashAfter: -1,
	}
	go v.JoinWS(conn)

	inputs := []int{1, 2, 3, 4, 5, 6, 7}
	out, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range out {
		if want := inputs[i] * inputs[i]; got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
	assertWire(t, p.Stats(), "plain", pando.WireV2)
}

// TestWireCompressionOff: WithCompression(false) pins an otherwise
// default deployment to the plain formats — v3-capable local workers
// land on '/pando/2.1.0'.
func TestWireCompressionOff(t *testing.T) {
	p := pando.New("wire-nocomp", func(v int) (int, error) { return v - 1, nil },
		pando.WithoutRegistry(), pando.WithCompression(false))
	defer p.Close()
	p.AddLocalWorkers(1)

	if _, err := p.ProcessSlice(context.Background(), []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	assertWire(t, p.Stats(), "local-1", pando.WireV2)
}

// TestWireFormatOverridesCompressionToggle: an explicit WithWireFormat
// list wins over WithCompression either way.
func TestWireFormatOverridesCompressionToggle(t *testing.T) {
	p := pando.New("wire-override", func(v int) (int, error) { return v, nil },
		pando.WithoutRegistry(),
		pando.WithCompression(false), pando.WithWireFormat(pando.WireV3, pando.WireV1))
	defer p.Close()
	p.AddLocalWorkers(1)

	if _, err := p.ProcessSlice(context.Background(), []int{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	assertWire(t, p.Stats(), "local-1", pando.WireV3)
}

// TestWireV1WorkerAgainstV2Master: a volunteer that only speaks the JSON
// wire joins a v2-preferring master and the computation completes on the
// v1 fallback.
func TestWireV1WorkerAgainstV2Master(t *testing.T) {
	p := pando.New("wire1-square", func(v int) (int, error) { return v * v, nil },
		pando.WithoutRegistry())
	defer p.Close()

	ln := netsim.NewListener("master", netsim.LAN)
	defer ln.Close()
	go p.ServeWS(ln)

	conn, _, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	v := &worker.Volunteer{
		Name:       "legacy",
		Handler:    pando.Handler(func(v int) (int, error) { return v * v, nil }),
		Formats:    []string{proto.Version}, // v1-only device
		CrashAfter: -1,
	}
	go v.JoinWS(conn)

	inputs := []int{1, 2, 3, 4, 5}
	out, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range out {
		want := inputs[i] * inputs[i]
		if got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
	assertWire(t, p.Stats(), "legacy", pando.WireV1)
}

// TestWireRawCodecEndToEnd: WithCodec(RawCodec) moves []byte values
// through the deployment without any payload serialization.
func TestWireRawCodecEndToEnd(t *testing.T) {
	reverse := func(b []byte) ([]byte, error) {
		out := make([]byte, len(b))
		for i, c := range b {
			out[len(b)-1-i] = c
		}
		return out, nil
	}
	p := pando.New("wire2-reverse", reverse,
		pando.WithoutRegistry(),
		pando.WithCodec[[]byte, []byte](pando.RawCodec{}, pando.RawCodec{}))
	defer p.Close()
	p.AddLocalWorkers(2)

	inputs := [][]byte{[]byte("pando"), {0x00, 0xB2, 0xFF}, bytes.Repeat([]byte{7}, 1024)}
	out, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(inputs) {
		t.Fatalf("got %d results", len(out))
	}
	for i, got := range out {
		want, _ := reverse(inputs[i])
		if !bytes.Equal(got, want) {
			t.Fatalf("out[%d] = %x, want %x", i, got, want)
		}
	}
}

// TestWirePinnedToV1 keeps a whole deployment on the JSON wire.
func TestWirePinnedToV1(t *testing.T) {
	p := pando.New("wire1-pinned", func(v int) (int, error) { return v, nil },
		pando.WithoutRegistry(), pando.WithWireFormat(pando.WireV1))
	defer p.Close()
	p.AddLocalWorkers(1)

	if _, err := p.ProcessSlice(context.Background(), []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	assertWire(t, p.Stats(), "local-1", pando.WireV1)
}

// TestWithCodecMismatchPanics: a codec for the wrong value type is a
// programming error surfaced at construction, not at first encode.
func TestWithCodecMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched codec did not panic")
		}
	}()
	pando.New("wire-mismatch", func(v int) (int, error) { return v, nil },
		pando.WithoutRegistry(),
		pando.WithCodec[string, string](pando.JSONCodec[string]{}, pando.JSONCodec[string]{}))
}

// TestWithWireFormatUnknownNamePanics: a typo'd format name fails fast at
// construction instead of refusing every volunteer at runtime.
func TestWithWireFormatUnknownNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown wire format did not panic")
		}
	}()
	pando.New("wire-typo", func(v int) (int, error) { return v, nil },
		pando.WithoutRegistry(), pando.WithWireFormat("pando/2.0.0")) // missing leading slash
}

// TestProcessReleasesContextWatcher: the cancellation watcher goroutine
// must exit when the stream completes before the context is cancelled
// (the pando.go goroutine leak of ISSUE 1).
func TestProcessReleasesContextWatcher(t *testing.T) {
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	before := runtime.NumGoroutine()
	const rounds = 20
	for i := 0; i < rounds; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel) // deliberately not cancelled yet
		p := pando.New(fmt.Sprintf("leak-%d", i), func(v int) (int, error) { return v, nil },
			pando.WithoutRegistry())
		p.AddLocalWorkers(1)
		if _, err := p.ProcessSlice(ctx, []int{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		p.Close()
	}

	// Transport goroutines wind down asynchronously after Close; the
	// watcher goroutines of the fixed code exit with them. The leaked
	// watchers of the old code would keep the count elevated by ~rounds
	// until the deferred cancels run.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+rounds/2 {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("goroutine count stayed at %d (started at %d): context watchers leaked",
		runtime.NumGoroutine(), before)
}
