// Command volunteer contributes a device to a Pando deployment — the
// equivalent of opening the deployment URL in a browser (paper §2.1.2).
//
// Direct (LAN / VPN, WebSocket-like):
//
//	volunteer --connect 10.10.14.119:5000 --cores 2
//
// Through a public server (WAN, WebRTC-like bootstrap):
//
//	volunteer --via public.example.org:9000 --master <master-id> --cores 1
//
// The binary carries the registry of processing functions; the master's
// welcome message names the one to apply (the Go substitute for shipping
// browserified code). Joining multiple cores opens one connection per
// core, as browser deployments open one tab per core.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"pando/internal/apps"
	"pando/internal/transport"
	"pando/internal/worker"
)

func main() {
	var (
		url     = flag.String("url", "", "deployment URL printed by the master on startup")
		connect = flag.String("connect", "", "master address for a direct WebSocket-like join")
		via     = flag.String("via", "", "public (signalling) server address for a WebRTC-like join")
		masterP = flag.String("master", "master", "master peer ID when joining via a public server")
		name    = flag.String("name", "", "device name shown in the master's accounting")
		cores   = flag.Int("cores", 1, "number of parallel connections (one per core)")
	)
	flag.Parse()
	apps.RegisterAll()

	set := 0
	for _, s := range []string{*url, *connect, *via} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		fmt.Fprintln(os.Stderr, "volunteer: exactly one of --url, --connect or --via is required")
		flag.Usage()
		os.Exit(2)
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = host
	}

	var wg sync.WaitGroup
	errs := make(chan error, *cores)
	for c := 0; c < *cores; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := &worker.Volunteer{Name: *name, CrashAfter: -1}
			var err error
			if *url != "" {
				fmt.Fprintf(os.Stderr, "volunteer: core %d opening %s\n", c+1, *url)
				err = v.JoinURL(*url, transport.TCPDialer(10*time.Second))
			} else if *connect != "" {
				var conn net.Conn
				conn, err = net.DialTimeout("tcp", *connect, 10*time.Second)
				if err == nil {
					fmt.Fprintf(os.Stderr, "volunteer: core %d joined %s\n", c+1, *connect)
					err = v.JoinWS(conn)
				}
			} else {
				var sc net.Conn
				sc, err = net.DialTimeout("tcp", *via, 10*time.Second)
				if err == nil {
					signal := transport.NewWSock(sc, transport.Config{})
					self := fmt.Sprintf("%s-%d-%d", *name, os.Getpid(), c)
					fmt.Fprintf(os.Stderr, "volunteer: core %d signalling via %s\n", c+1, *via)
					err = v.JoinRTC(signal, self, *masterP, transport.TCPDialer(10*time.Second))
				}
			}
			if err != nil {
				errs <- fmt.Errorf("core %d: %w", c+1, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	failed := false
	for err := range errs {
		fmt.Fprintln(os.Stderr, "volunteer:", err)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "volunteer: stream complete, goodbye")
}
