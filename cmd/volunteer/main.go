// Command volunteer contributes a device to a Pando deployment — the
// equivalent of opening the deployment URL in a browser (paper §2.1.2).
//
// Direct (LAN / VPN, WebSocket-like):
//
//	volunteer --connect 10.10.14.119:5000 --cores 2
//
// Through a public server (WAN, WebRTC-like bootstrap):
//
//	volunteer --via public.example.org:9000 --master <master-id> --cores 1
//
// Pool mode — contribute the device to a shared fleet instead of a
// single deployment:
//
//	volunteer --via public.example.org:9000 --pool            # any master the relay assigns
//	volunteer --connect 10.10.14.119:5000 --pool              # stay enrolled across jobs
//
// The binary carries the registry of processing functions, advertised in
// the hello so a shared pool can route the device to any job it can
// serve and reassign it when a job completes; the master's welcome (or a
// mid-session reassign) names the one to apply. With --pool the process
// also re-enrolls after a deployment dismisses it, so the device stays
// available to future jobs. Joining multiple cores opens one connection
// per core, as browser deployments open one tab per core.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"pando/internal/apps"
	"pando/internal/transport"
	"pando/internal/worker"
)

func main() {
	var (
		url     = flag.String("url", "", "deployment URL printed by the master on startup")
		connect = flag.String("connect", "", "master address for a direct WebSocket-like join")
		via     = flag.String("via", "", "public (signalling) server address for a WebRTC-like join")
		masterP = flag.String("master", "", "master peer ID when joining via a public server (empty with --pool: the relay assigns one)")
		name    = flag.String("name", "", "device name shown in the master's accounting")
		cores   = flag.Int("cores", 1, "number of parallel connections (one per core)")
		pool    = flag.Bool("pool", false, "shared-fleet mode: let the relay assign a master (--via) and re-enroll after each deployment ends")
		retry   = flag.Duration("pool-retry", 2*time.Second, "with --pool: how long to wait before re-enrolling after a deployment dismisses the device")
	)
	flag.Parse()
	apps.RegisterAll()
	if *masterP == "" && !*pool {
		*masterP = "master"
	}

	set := 0
	for _, s := range []string{*url, *connect, *via} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		fmt.Fprintln(os.Stderr, "volunteer: exactly one of --url, --connect or --via is required")
		flag.Usage()
		os.Exit(2)
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = host
	}

	var wg sync.WaitGroup
	errs := make(chan error, *cores)
	for c := 0; c < *cores; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := &worker.Volunteer{Name: *name, CrashAfter: -1}
			attempt := 0
			join := func() error {
				attempt++
				if *url != "" {
					fmt.Fprintf(os.Stderr, "volunteer: core %d opening %s\n", c+1, *url)
					return v.JoinURL(*url, transport.TCPDialer(10*time.Second))
				}
				if *connect != "" {
					conn, err := net.DialTimeout("tcp", *connect, 10*time.Second)
					if err != nil {
						return err
					}
					fmt.Fprintf(os.Stderr, "volunteer: core %d joined %s\n", c+1, *connect)
					return v.JoinWS(conn)
				}
				sc, err := net.DialTimeout("tcp", *via, 10*time.Second)
				if err != nil {
					return err
				}
				signal := transport.NewWSock(sc, transport.Config{})
				// The attempt number keeps re-enrollments from colliding
				// with the relay's not-yet-pruned previous registration.
				self := fmt.Sprintf("%s-%d-%d-%d", *name, os.Getpid(), c, attempt)
				if *masterP == "" {
					fmt.Fprintf(os.Stderr, "volunteer: core %d asking %s for a master (pool mode)\n", c+1, *via)
				} else {
					fmt.Fprintf(os.Stderr, "volunteer: core %d signalling via %s\n", c+1, *via)
				}
				return v.JoinRTC(signal, self, *masterP, transport.TCPDialer(10*time.Second))
			}
			for {
				err := join()
				if !*pool {
					if err != nil {
						errs <- fmt.Errorf("core %d: %w", c+1, err)
					}
					return
				}
				// Pool mode: the device stays in the fleet. A graceful
				// dismissal or a transient failure both re-enroll after a
				// pause, ready for the next job.
				if err != nil {
					fmt.Fprintf(os.Stderr, "volunteer: core %d: %v; re-enrolling in %v\n", c+1, err, *retry)
				} else {
					fmt.Fprintf(os.Stderr, "volunteer: core %d dismissed; re-enrolling in %v\n", c+1, *retry)
				}
				time.Sleep(*retry)
			}
		}()
	}
	wg.Wait()
	close(errs)
	failed := false
	for err := range errs {
		fmt.Fprintln(os.Stderr, "volunteer:", err)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "volunteer: stream complete, goodbye")
}
