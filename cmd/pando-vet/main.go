// Command pando-vet is the repo's custom static-analysis suite: a
// multichecker over the four protocol analyzers (bufown, detrand,
// locksend, ctxguard) that machine-check the conventions the chaos
// harness otherwise only probes dynamically. CI runs it over ./... and
// fails on any unsuppressed diagnostic; see TESTING.md ("Tier 5 —
// vet") for the suppression grammar and how to add an analyzer.
//
// Usage:
//
//	go run ./cmd/pando-vet ./...          # whole repo
//	go run ./cmd/pando-vet ./internal/... # a subtree
//	go run ./cmd/pando-vet -list          # what would run
//
// Exit status: 0 when clean, 1 on diagnostics, 2 on usage or load
// errors. Analyzers see production sources only (no _test.go files);
// the dynamic tiers own test code.
package main

import (
	"flag"
	"fmt"
	"os"

	"pando/internal/analysis"
	"pando/internal/analysis/bufown"
	"pando/internal/analysis/ctxguard"
	"pando/internal/analysis/detrand"
	"pando/internal/analysis/locksend"
)

var analyzers = []*analysis.Analyzer{
	bufown.Analyzer,
	ctxguard.Analyzer,
	detrand.Analyzer,
	locksend.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("run", "", "run only the named analyzer")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pando-vet [-list] [-run analyzer] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	selected := analyzers
	if *only != "" {
		selected = nil
		for _, a := range analyzers {
			if a.Name == *only {
				selected = []*analysis.Analyzer{a}
			}
		}
		if selected == nil {
			fmt.Fprintf(os.Stderr, "pando-vet: unknown analyzer %q\n", *only)
			os.Exit(2)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pando-vet:", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(wd)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pando-vet:", err)
		os.Exit(2)
	}

	bad := false
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, selected)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-vet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			bad = true
			fmt.Println(d)
		}
	}
	if bad {
		os.Exit(1)
	}
}
