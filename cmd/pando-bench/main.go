// Command pando-bench regenerates the paper's evaluation (Section 5) on
// the simulated substrate:
//
//	pando-bench -table 2                 # full Table 2 (all scenarios)
//	pando-bench -table 2 -scenario lan   # one block
//	pando-bench -sweep batch             # §5.5: batching hides latency
//	pando-bench -claims                  # §5.5 analysis claims
//	pando-bench -speedup                 # headline speedup vs one device
//
// Absolute rates are calibrated from the paper's measurements; what the
// run demonstrates is the shape — who wins, by what share, and how
// batching interacts with latency — produced by the real coordination
// stack.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pando/internal/bench"
)

func main() {
	var (
		table     = flag.Int("table", 0, "paper table to regenerate (2)")
		scenario  = flag.String("scenario", "all", "lan | vpn | wan | all")
		sweep     = flag.String("sweep", "", "sweep to run: batch")
		claims    = flag.Bool("claims", false, "check the §5.5 analysis claims")
		ablations = flag.Bool("ablations", false, "run the design-choice ablations")
		speedup   = flag.Bool("speedup", false, "measure speedup of all LAN devices vs one")
		schedExp  = flag.Bool("sched", false, "run the static-vs-adaptive flow-control experiment")
		schedOut  = flag.String("sched-out", "BENCH_sched.json", "where -sched persists its results")
		jrnExp    = flag.Bool("journal", false, "measure checkpoint journal overhead on the collatz profile")
		jrnOut    = flag.String("journal-out", "BENCH_journal.json", "where -journal persists its results")
		poolExp   = flag.Bool("pool", false, "measure shared-fleet vs dedicated-masters on two concurrent jobs")
		poolOut   = flag.String("pool-out", "BENCH_pool.json", "where -pool persists its results")
		hotExp    = flag.Bool("hotpath", false, "measure the pooled codec + coalescing data plane against the pre-pooling baseline")
		hotOut    = flag.String("hotpath-out", "BENCH_hotpath.json", "where -hotpath persists its results")
		hotFleets = flag.String("hotpath-fleets", "1000,10000", "comma-separated netsim worker counts for -hotpath")
		hotPer    = flag.Int("hotpath-items", 50, "items per worker for each -hotpath fleet (enough stream to reach the steady state the arena is built for)")
		hotPay    = flag.Int("hotpath-payload", 16384, "payload bytes per item for -hotpath (default: one 128x128 grayscale imgproc tile)")
		hotReps   = flag.Int("hotpath-reps", 3, "baseline/pooled pairs per -hotpath fleet cell (median-speedup pair is reported)")
		hotOne    = flag.String("hotpath-one", "", "internal: run one fleet measurement (\"workers,items,payload,pooled\") and print items/sec")
		shardExp  = flag.Bool("shard", false, "measure aggregate throughput of sharded masters against one master over the same modeled-uplink fleet")
		shardOut  = flag.String("shard-out", "BENCH_shard.json", "where -shard persists its results")
		shardCnts = flag.String("shard-counts", "1,2,4,8", "comma-separated shard widths for -shard (the single-master baseline always runs)")
		shardWrk  = flag.Int("shard-workers", 10000, "netsim volunteer count for -shard, split evenly across the shards")
		shardPer  = flag.Int("shard-items", 2, "items per worker for each -shard cell")
		shardPay  = flag.Int("shard-payload", 8192, "payload bytes per item for -shard")
		shardUp   = flag.Int64("shard-uplink", int64(bench.DefaultShardUplink), "modeled per-master uplink in bytes/sec for -shard")
		shardOne  = flag.String("shard-one", "", "internal: run one shard measurement (\"shards,workers,items,payload,uplink\") and print items/sec")
		compExp   = flag.Bool("compress", false, "measure the bandwidth-aware wire (adaptive compression + payload dedup) against the plain binary wire")
		compOut   = flag.String("compress-out", "BENCH_compress.json", "where -compress persists its results")
		compWrk   = flag.Int("compress-workers", 10000, "netsim volunteer count for -compress")
		compPer   = flag.Int("compress-items", 2, "items per worker for each -compress cell")
		compPay   = flag.Int("compress-payload", 16384, "payload bytes per item for -compress (default: one 128x128 grayscale imgproc tile)")
		compUp    = flag.Int64("compress-uplink", int64(bench.DefaultCompressUplink), "modeled master uplink in bytes/sec shared by the -compress fleet")
		compReps  = flag.Int("compress-reps", 1, "baseline/v3 pairs per -compress workload (median-speedup pair is reported; bandwidth-paced cells vary little between reps)")
		compOne   = flag.String("compress-one", "", "internal: run one compress measurement (\"workload,v3,workers,items,payload,uplink\") and print items/sec and wire bytes")
		verExp    = flag.Bool("verify", false, "measure k-replication overhead and the reputation fast-path recovery curve against the unreplicated data plane")
		verOut    = flag.String("verify-out", "BENCH_verify.json", "where -verify persists its results")
		verWrk    = flag.Int("verify-workers", 10000, "netsim volunteer count for -verify")
		verPer    = flag.Int("verify-items", 40, "items per worker for the longest -verify stream (the recovery curve also runs the half and quarter lengths)")
		verPay    = flag.Int("verify-payload", 2048, "payload bytes per item for -verify")
		verOne    = flag.String("verify-one", "", "internal: run one verification cell (\"workers,items,payload,k,quorum,trustmilli\") and print items/sec and fast-path share")
		items     = flag.Int("items", 400, "work items per cell")
		timeScale = flag.Float64("timescale", bench.DefaultTimeScale, "time compression factor")
	)
	flag.Parse()
	opt := bench.Options{Items: *items, TimeScale: *timeScale}

	// Child modes: run exactly one cell and print its values. The parent
	// re-executes itself per measurement so every run starts from a
	// pristine runtime — a fleet leaves tens of thousands of dead
	// goroutine stacks and an inflated heap target behind, which would
	// otherwise bleed into the next measurement (see bench.ChildCell).
	if *hotOne != "" {
		f, err := bench.ParseChildSpec(*hotOne, 4)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pando-bench: bad -hotpath-one %q: %v\n", *hotOne, err)
			os.Exit(1)
		}
		bench.ChildCell(func() ([]float64, error) {
			rate, err := bench.RunHotpathProfile(int(f[0]), int(f[1]), int(f[2]), f[3] != 0)
			return []float64{rate}, err
		})
		return
	}

	if *shardOne != "" {
		f, err := bench.ParseChildSpec(*shardOne, 5)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pando-bench: bad -shard-one %q: %v\n", *shardOne, err)
			os.Exit(1)
		}
		bench.ChildCell(func() ([]float64, error) {
			rate, err := bench.RunShardProfile(int(f[0]), int(f[1]), int(f[2]), int(f[3]), f[4])
			return []float64{rate}, err
		})
		return
	}

	if *verOne != "" {
		f, err := bench.ParseChildSpec(*verOne, 6)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pando-bench: bad -verify-one %q: %v\n", *verOne, err)
			os.Exit(1)
		}
		bench.ChildCell(func() ([]float64, error) {
			rate, fastShare, err := bench.RunVerifyProfile(int(f[0]), int(f[1]), int(f[2]), int(f[3]), int(f[4]), float64(f[5])/1000)
			return []float64{rate, fastShare}, err
		})
		return
	}

	if *compOne != "" {
		f, err := bench.ParseChildSpec(*compOne, 6)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pando-bench: bad -compress-one %q: %v\n", *compOne, err)
			os.Exit(1)
		}
		bench.ChildCell(func() ([]float64, error) {
			rate, wireBytes, err := bench.RunCompressProfile(int(f[0]), f[1] != 0, int(f[2]), int(f[3]), int(f[4]), f[5])
			return []float64{rate, float64(wireBytes)}, err
		})
		return
	}

	ran := false
	if *table == 2 {
		ran = true
		var cells []bench.CellResult
		var err error
		switch strings.ToLower(*scenario) {
		case "lan":
			cells, err = bench.RunScenario(bench.LAN, opt)
		case "vpn":
			cells, err = bench.RunScenario(bench.VPN, opt)
		case "wan":
			cells, err = bench.RunScenario(bench.WAN, opt)
		case "all":
			cells, err = bench.RunTable2(opt)
		default:
			err = fmt.Errorf("unknown scenario %q", *scenario)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderTable2(os.Stdout, cells)
	}

	if *sweep == "batch" {
		ran = true
		for _, latency := range []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 40 * time.Millisecond} {
			points, err := bench.RunBatchSweep([]int{1, 2, 4, 8, 16}, latency, 10*time.Millisecond, 4, 240)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pando-bench:", err)
				os.Exit(1)
			}
			bench.RenderSweep(os.Stdout, points)
		}
	}

	if *claims {
		ran = true
		bench.RenderClaims(os.Stdout, bench.CheckClaims())
	}

	if *ablations {
		ran = true
		det, err := bench.RunFailureDetection([]time.Duration{
			10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		ord, err := bench.RunOrderingAblation(4, 300, time.Millisecond)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		adapt, err := bench.RunBatchAdaptivity([]int{1, 2, 4, 16, 64}, 200)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderAblations(os.Stdout, det, ord, adapt)
		grouping, err := bench.RunGroupingComparison([]int{1, 2, 4, 8, 16}, 20*time.Millisecond, 3, 300)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderGrouping(os.Stdout, grouping)
	}

	if *speedup {
		ran = true
		for _, app := range []bench.App{bench.Raytrace, bench.Collatz} {
			r, err := bench.RunSpeedup(app, "MBAir 2011", opt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pando-bench:", err)
				os.Exit(1)
			}
			bench.RenderSpeedup(os.Stdout, r)
		}
	}

	if *schedExp {
		ran = true
		cmp, err := bench.RunSchedComparison(*items, *items/2)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderSched(os.Stdout, cmp)
		data, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*schedOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *schedOut)
	}

	if *jrnExp {
		ran = true
		cmp, err := bench.RunJournalComparison(*items)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderJournal(os.Stdout, cmp)
		data, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jrnOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *jrnOut)
	}

	if *poolExp {
		ran = true
		cmp, err := bench.RunPoolComparison(*items)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderPool(os.Stdout, cmp)
		data, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*poolOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *poolOut)
	}

	if *hotExp {
		ran = true
		var fleets []int
		for _, f := range strings.Split(*hotFleets, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "pando-bench: bad -hotpath-fleets entry %q\n", f)
				os.Exit(1)
			}
			fleets = append(fleets, n)
		}
		if *hotReps > 0 {
			bench.HotpathReps = *hotReps
		}
		cmp, err := bench.RunHotpathWith(fleets, *hotPer, *hotPay, freshProcessRun)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderHotpath(os.Stdout, cmp)
		data, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*hotOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *hotOut)
	}

	if *shardExp {
		ran = true
		var counts []int
		for _, c := range strings.Split(*shardCnts, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "pando-bench: bad -shard-counts entry %q\n", c)
				os.Exit(1)
			}
			counts = append(counts, n)
		}
		cmp, err := bench.RunShardWith(counts, *shardWrk, *shardPer, *shardPay, *shardUp, freshShardRun)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderShard(os.Stdout, cmp)
		data, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*shardOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *shardOut)
	}

	if *compExp {
		ran = true
		if *compReps > 0 {
			bench.CompressReps = *compReps
		}
		cmp, err := bench.RunCompressWith(*compWrk, *compPer, *compPay, *compUp, freshCompressRun)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderCompress(os.Stdout, cmp)
		data, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*compOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *compOut)
	}

	if *verExp {
		ran = true
		cmp, err := bench.RunVerifyWith(*verWrk, *verPer, *verPay, freshVerifyRun)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderVerify(os.Stdout, cmp)
		data, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*verOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *verOut)
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// freshVerifyRun executes one -verify cell in a child process (this same
// binary with -verify-one) and parses the rate and fast-path share it
// prints. The trust threshold travels as an integer in thousandths.
func freshVerifyRun(workers, items, payload, k, quorum int, trust float64) (float64, float64, error) {
	spec := bench.ChildSpec(int64(workers), int64(items), int64(payload), int64(k), int64(quorum), int64(trust*1000))
	vals, err := bench.FreshProcessRun("-verify-one", spec, func() ([]float64, error) {
		rate, fastShare, err := bench.RunVerifyProfile(workers, items, payload, k, quorum, trust)
		return []float64{rate, fastShare}, err
	})
	if err != nil {
		return 0, 0, err
	}
	if len(vals) < 2 {
		return 0, 0, fmt.Errorf("verify child %s: want 2 values, got %d", spec, len(vals))
	}
	return vals[0], vals[1], nil
}

func boolField(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// freshShardRun executes one -shard cell in a child process (this same
// binary with -shard-one) and parses the rate it prints.
func freshShardRun(shards, workers, items, payload int, uplink int64) (float64, error) {
	spec := bench.ChildSpec(int64(shards), int64(workers), int64(items), int64(payload), uplink)
	vals, err := bench.FreshProcessRun("-shard-one", spec, func() ([]float64, error) {
		rate, err := bench.RunShardProfile(shards, workers, items, payload, uplink)
		return []float64{rate}, err
	})
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// freshProcessRun executes one -hotpath fleet measurement in a child
// process (this same binary with -hotpath-one) and parses the rate it
// prints.
func freshProcessRun(workers, items, payload int, pooled bool) (float64, error) {
	spec := bench.ChildSpec(int64(workers), int64(items), int64(payload), boolField(pooled))
	vals, err := bench.FreshProcessRun("-hotpath-one", spec, func() ([]float64, error) {
		rate, err := bench.RunHotpathProfile(workers, items, payload, pooled)
		return []float64{rate}, err
	})
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// freshCompressRun executes one -compress cell in a child process (this
// same binary with -compress-one) and parses the rate and wire-byte
// count it prints.
func freshCompressRun(workload int, v3 bool, workers, items, payload int, uplink int64) (float64, int64, error) {
	spec := bench.ChildSpec(int64(workload), boolField(v3), int64(workers), int64(items), int64(payload), uplink)
	vals, err := bench.FreshProcessRun("-compress-one", spec, func() ([]float64, error) {
		rate, wireBytes, err := bench.RunCompressProfile(workload, v3, workers, items, payload, uplink)
		return []float64{rate, float64(wireBytes)}, err
	})
	if err != nil {
		return 0, 0, err
	}
	if len(vals) < 2 {
		return 0, 0, fmt.Errorf("compress child %s: want 2 values, got %d", spec, len(vals))
	}
	return vals[0], int64(vals[1]), nil
}
