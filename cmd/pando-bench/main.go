// Command pando-bench regenerates the paper's evaluation (Section 5) on
// the simulated substrate:
//
//	pando-bench -table 2                 # full Table 2 (all scenarios)
//	pando-bench -table 2 -scenario lan   # one block
//	pando-bench -sweep batch             # §5.5: batching hides latency
//	pando-bench -claims                  # §5.5 analysis claims
//	pando-bench -speedup                 # headline speedup vs one device
//
// Absolute rates are calibrated from the paper's measurements; what the
// run demonstrates is the shape — who wins, by what share, and how
// batching interacts with latency — produced by the real coordination
// stack.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"pando/internal/bench"
)

func main() {
	var (
		table     = flag.Int("table", 0, "paper table to regenerate (2)")
		scenario  = flag.String("scenario", "all", "lan | vpn | wan | all")
		sweep     = flag.String("sweep", "", "sweep to run: batch")
		claims    = flag.Bool("claims", false, "check the §5.5 analysis claims")
		ablations = flag.Bool("ablations", false, "run the design-choice ablations")
		speedup   = flag.Bool("speedup", false, "measure speedup of all LAN devices vs one")
		schedExp  = flag.Bool("sched", false, "run the static-vs-adaptive flow-control experiment")
		schedOut  = flag.String("sched-out", "BENCH_sched.json", "where -sched persists its results")
		jrnExp    = flag.Bool("journal", false, "measure checkpoint journal overhead on the collatz profile")
		jrnOut    = flag.String("journal-out", "BENCH_journal.json", "where -journal persists its results")
		poolExp   = flag.Bool("pool", false, "measure shared-fleet vs dedicated-masters on two concurrent jobs")
		poolOut   = flag.String("pool-out", "BENCH_pool.json", "where -pool persists its results")
		hotExp    = flag.Bool("hotpath", false, "measure the pooled codec + coalescing data plane against the pre-pooling baseline")
		hotOut    = flag.String("hotpath-out", "BENCH_hotpath.json", "where -hotpath persists its results")
		hotFleets = flag.String("hotpath-fleets", "1000,10000", "comma-separated netsim worker counts for -hotpath")
		hotPer    = flag.Int("hotpath-items", 50, "items per worker for each -hotpath fleet (enough stream to reach the steady state the arena is built for)")
		hotPay    = flag.Int("hotpath-payload", 16384, "payload bytes per item for -hotpath (default: one 128x128 grayscale imgproc tile)")
		hotReps   = flag.Int("hotpath-reps", 3, "baseline/pooled pairs per -hotpath fleet cell (median-speedup pair is reported)")
		hotOne    = flag.String("hotpath-one", "", "internal: run one fleet measurement (\"workers,items,payload,pooled\") and print items/sec")
		shardExp  = flag.Bool("shard", false, "measure aggregate throughput of sharded masters against one master over the same modeled-uplink fleet")
		shardOut  = flag.String("shard-out", "BENCH_shard.json", "where -shard persists its results")
		shardCnts = flag.String("shard-counts", "1,2,4,8", "comma-separated shard widths for -shard (the single-master baseline always runs)")
		shardWrk  = flag.Int("shard-workers", 10000, "netsim volunteer count for -shard, split evenly across the shards")
		shardPer  = flag.Int("shard-items", 2, "items per worker for each -shard cell")
		shardPay  = flag.Int("shard-payload", 8192, "payload bytes per item for -shard")
		shardUp   = flag.Int64("shard-uplink", int64(bench.DefaultShardUplink), "modeled per-master uplink in bytes/sec for -shard")
		shardOne  = flag.String("shard-one", "", "internal: run one shard measurement (\"shards,workers,items,payload,uplink\") and print items/sec")
		items     = flag.Int("items", 400, "work items per cell")
		timeScale = flag.Float64("timescale", bench.DefaultTimeScale, "time compression factor")
	)
	flag.Parse()
	opt := bench.Options{Items: *items, TimeScale: *timeScale}

	// Child mode for -hotpath: run exactly one fleet measurement and
	// print the rate. The parent re-executes itself per measurement so
	// every run starts from a pristine runtime — a fleet leaves tens of
	// thousands of dead goroutine stacks and an inflated heap target
	// behind, which would otherwise bleed into the next measurement.
	if *hotOne != "" {
		parts := strings.Split(*hotOne, ",")
		if len(parts) != 4 {
			fmt.Fprintf(os.Stderr, "pando-bench: bad -hotpath-one %q\n", *hotOne)
			os.Exit(1)
		}
		w, err1 := strconv.Atoi(parts[0])
		it, err2 := strconv.Atoi(parts[1])
		pay, err3 := strconv.Atoi(parts[2])
		pooled, err4 := strconv.ParseBool(parts[3])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			fmt.Fprintf(os.Stderr, "pando-bench: bad -hotpath-one %q\n", *hotOne)
			os.Exit(1)
		}
		rate, err := bench.RunHotpathProfile(w, it, pay, pooled)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%f\n", rate)
		return
	}

	// Child mode for -shard, mirroring -hotpath-one: one cell per fresh
	// process so a 10k-goroutine fleet cannot age the runtime under the
	// cells after it.
	if *shardOne != "" {
		parts := strings.Split(*shardOne, ",")
		if len(parts) != 5 {
			fmt.Fprintf(os.Stderr, "pando-bench: bad -shard-one %q\n", *shardOne)
			os.Exit(1)
		}
		s, err1 := strconv.Atoi(parts[0])
		w, err2 := strconv.Atoi(parts[1])
		it, err3 := strconv.Atoi(parts[2])
		pay, err4 := strconv.Atoi(parts[3])
		up, err5 := strconv.ParseInt(parts[4], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
			fmt.Fprintf(os.Stderr, "pando-bench: bad -shard-one %q\n", *shardOne)
			os.Exit(1)
		}
		rate, err := bench.RunShardProfile(s, w, it, pay, up)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%f\n", rate)
		return
	}

	ran := false
	if *table == 2 {
		ran = true
		var cells []bench.CellResult
		var err error
		switch strings.ToLower(*scenario) {
		case "lan":
			cells, err = bench.RunScenario(bench.LAN, opt)
		case "vpn":
			cells, err = bench.RunScenario(bench.VPN, opt)
		case "wan":
			cells, err = bench.RunScenario(bench.WAN, opt)
		case "all":
			cells, err = bench.RunTable2(opt)
		default:
			err = fmt.Errorf("unknown scenario %q", *scenario)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderTable2(os.Stdout, cells)
	}

	if *sweep == "batch" {
		ran = true
		for _, latency := range []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 40 * time.Millisecond} {
			points, err := bench.RunBatchSweep([]int{1, 2, 4, 8, 16}, latency, 10*time.Millisecond, 4, 240)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pando-bench:", err)
				os.Exit(1)
			}
			bench.RenderSweep(os.Stdout, points)
		}
	}

	if *claims {
		ran = true
		bench.RenderClaims(os.Stdout, bench.CheckClaims())
	}

	if *ablations {
		ran = true
		det, err := bench.RunFailureDetection([]time.Duration{
			10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		ord, err := bench.RunOrderingAblation(4, 300, time.Millisecond)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		adapt, err := bench.RunBatchAdaptivity([]int{1, 2, 4, 16, 64}, 200)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderAblations(os.Stdout, det, ord, adapt)
		grouping, err := bench.RunGroupingComparison([]int{1, 2, 4, 8, 16}, 20*time.Millisecond, 3, 300)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderGrouping(os.Stdout, grouping)
	}

	if *speedup {
		ran = true
		for _, app := range []bench.App{bench.Raytrace, bench.Collatz} {
			r, err := bench.RunSpeedup(app, "MBAir 2011", opt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pando-bench:", err)
				os.Exit(1)
			}
			bench.RenderSpeedup(os.Stdout, r)
		}
	}

	if *schedExp {
		ran = true
		cmp, err := bench.RunSchedComparison(*items, *items/2)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderSched(os.Stdout, cmp)
		data, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*schedOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *schedOut)
	}

	if *jrnExp {
		ran = true
		cmp, err := bench.RunJournalComparison(*items)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderJournal(os.Stdout, cmp)
		data, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jrnOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *jrnOut)
	}

	if *poolExp {
		ran = true
		cmp, err := bench.RunPoolComparison(*items)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderPool(os.Stdout, cmp)
		data, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*poolOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *poolOut)
	}

	if *hotExp {
		ran = true
		var fleets []int
		for _, f := range strings.Split(*hotFleets, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "pando-bench: bad -hotpath-fleets entry %q\n", f)
				os.Exit(1)
			}
			fleets = append(fleets, n)
		}
		if *hotReps > 0 {
			bench.HotpathReps = *hotReps
		}
		cmp, err := bench.RunHotpathWith(fleets, *hotPer, *hotPay, freshProcessRun)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderHotpath(os.Stdout, cmp)
		data, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*hotOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *hotOut)
	}

	if *shardExp {
		ran = true
		var counts []int
		for _, c := range strings.Split(*shardCnts, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "pando-bench: bad -shard-counts entry %q\n", c)
				os.Exit(1)
			}
			counts = append(counts, n)
		}
		cmp, err := bench.RunShardWith(counts, *shardWrk, *shardPer, *shardPay, *shardUp, freshShardRun)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		bench.RenderShard(os.Stdout, cmp)
		data, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*shardOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pando-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *shardOut)
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// freshShardRun executes one -shard cell in a child process (this same
// binary with -shard-one) and parses the rate it prints. Falls back to
// an in-process run if the executable path is unavailable.
func freshShardRun(shards, workers, items, payload int, uplink int64) (float64, error) {
	exe, err := os.Executable()
	if err != nil {
		return bench.RunShardProfile(shards, workers, items, payload, uplink)
	}
	arg := fmt.Sprintf("%d,%d,%d,%d,%d", shards, workers, items, payload, uplink)
	cmd := exec.Command(exe, "-shard-one", arg)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return 0, fmt.Errorf("shard child %s: %w", arg, err)
	}
	rate, err := strconv.ParseFloat(strings.TrimSpace(string(out)), 64)
	if err != nil {
		return 0, fmt.Errorf("shard child %s: bad output %q", arg, out)
	}
	return rate, nil
}

// freshProcessRun executes one -hotpath fleet measurement in a child
// process (this same binary with -hotpath-one) and parses the rate it
// prints. Falls back to an in-process run if the executable path is
// unavailable.
func freshProcessRun(workers, items, payload int, pooled bool) (float64, error) {
	exe, err := os.Executable()
	if err != nil {
		return bench.RunHotpathProfile(workers, items, payload, pooled)
	}
	arg := fmt.Sprintf("%d,%d,%d,%t", workers, items, payload, pooled)
	cmd := exec.Command(exe, "-hotpath-one", arg)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return 0, fmt.Errorf("hotpath child %s: %w", arg, err)
	}
	rate, err := strconv.ParseFloat(strings.TrimSpace(string(out)), 64)
	if err != nil {
		return 0, fmt.Errorf("hotpath child %s: bad output %q", arg, out)
	}
	return rate, nil
}
