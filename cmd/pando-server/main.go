// Command pando-server is the Public Server of the paper's architecture
// (Figure 7): a small signalling relay that lets volunteers outside the
// local network bootstrap a direct WebRTC-like connection to a master.
// "Since signalling requires little resources, the Public Server could be
// executed on a small personal server such as a Raspberry Pi board or the
// free tier of a cloud" (§2.4.3).
//
//	pando-server --port 9000
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"pando/internal/transport"
)

func main() {
	var port = flag.Int("port", 9000, "TCP port to listen on")
	flag.Parse()

	ln, err := net.Listen("tcp", fmt.Sprintf(":%d", *port))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pando-server:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pando-server: signalling relay listening on %s\n", ln.Addr())

	srv := transport.NewSignalServer()
	if err := srv.Serve(ln, transport.Config{}); err != nil {
		fmt.Fprintln(os.Stderr, "pando-server:", err)
		os.Exit(1)
	}
}
