// Command pando-server is the Public Server of the paper's architecture
// (Figure 7): a small signalling relay that lets volunteers outside the
// local network bootstrap a direct WebRTC-like connection to a master.
// "Since signalling requires little resources, the Public Server could be
// executed on a small personal server such as a Raspberry Pi board or the
// free tier of a cloud" (§2.4.3).
//
//	pando-server --port 9000
//
// With --pool the relay becomes a shared-fleet matchmaker: masters
// register advertising the functions they serve (pando --public does
// this automatically), and volunteers joining with `volunteer --via
// <server> --pool` — no master ID — are assigned one, preferring masters
// that serve a function the device's registry resolves. One public
// server then feeds a whole household of deployments.
//
// With --checkpoint the relay keeps a durable history of peer
// registrations in an append-only journal: after a crash or reboot of the
// small personal server, the restarted relay reports which masters had
// registered, so an operator knows who to expect back (live connections
// themselves cannot survive a restart — peers re-register on reconnect).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"

	"pando/internal/journal"
	"pando/internal/pprofserve"
	"pando/internal/transport"
)

func main() {
	var (
		port  = flag.Int("port", 9000, "TCP port to listen on")
		ckpt  = flag.String("checkpoint", "", "journal peer registrations to this file, surviving relay restarts")
		pool  = flag.Bool("pool", false, "shared-fleet mode: assign anonymous volunteers to registered masters")
		pprof = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprof != "" {
		if err := pprofserve.Serve(*pprof); err != nil {
			fmt.Fprintln(os.Stderr, "pando-server:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pando-server: pprof at http://%s/debug/pprof/\n", *pprof)
	}

	srv := transport.NewSignalServer()
	if *pool {
		srv.EnablePool()
		fmt.Fprintln(os.Stderr, "pando-server: pool mode on — anonymous volunteers are assigned to registered masters")
	}
	srv.OnLeave = func(id string) {
		fmt.Fprintf(os.Stderr, "pando-server: peer %q left\n", id)
	}
	if *ckpt != "" {
		j, err := journal.Open(*ckpt, journal.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pando-server:", err)
			os.Exit(1)
		}
		defer j.Close()
		entries := j.Completed()
		if len(entries) > 0 {
			fmt.Fprintf(os.Stderr, "pando-server: %d peer registration(s) recorded before restart; last: %q\n",
				len(entries), string(entries[len(entries)-1].Data))
		}
		var mu sync.Mutex
		next := 0
		if len(entries) > 0 {
			next = entries[len(entries)-1].Idx + 1
		}
		srv.OnJoin = func(id string) {
			mu.Lock()
			idx := next
			next++
			mu.Unlock()
			if err := j.Record(idx, []byte(id)); err != nil {
				fmt.Fprintln(os.Stderr, "pando-server: checkpoint:", err)
			}
		}
	}

	ln, err := net.Listen("tcp", fmt.Sprintf(":%d", *port))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pando-server:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pando-server: signalling relay listening on %s\n", ln.Addr())

	if err := srv.Serve(ln, transport.Config{}); err != nil {
		fmt.Fprintln(os.Stderr, "pando-server:", err)
		os.Exit(1)
	}
}
