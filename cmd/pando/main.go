// Command pando is the Unix interface of the tool (paper Figure 3):
//
//	./generate-angles | pando render --stdin | ./gif-encoder
//
// It reads inputs from the standard input (one value per line) or from
// command-line arguments, parallelizes the application of the named
// processing function across joining volunteer devices, and produces
// outputs on the standard output in input order. On startup it lists, on
// the standard error, the address volunteers should join — the equivalent
// of the paper's "Serving volunteer code at http://10.10.14.119:5000".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"pando/internal/apps"
	"pando/internal/fleet"
	"pando/internal/journal"
	"pando/internal/master"
	"pando/internal/netsim"
	"pando/internal/pprofserve"
	"pando/internal/pullstream"
	"pando/internal/shard"
	"pando/internal/transport"
	"pando/internal/worker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pando:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("pando", flag.ContinueOnError)
	var (
		stdin    = fs.Bool("stdin", false, "read inputs from standard input, one per line")
		port     = fs.Int("port", 5000, "TCP port volunteers join on")
		batch    = fs.Int("batch", master.DefaultBatch, "values in flight per volunteer (batch size)")
		local    = fs.Int("local", 0, "number of in-process workers to add (one per core)")
		public   = fs.String("public", "", "public (signalling) server address, for volunteers outside the LAN")
		masterID = fs.String("id", "master", "peer ID on the public server")
		listFn   = fs.Bool("list", false, "list registered processing functions and exit")
		report   = fs.Bool("report", false, "print periodic per-device throughput on stderr")
		ckpt     = fs.String("checkpoint", "", "journal completed results to this file; restarting with the same flag and inputs resumes instead of redoing work")
		fsync    = fs.Duration("fsync", 0, "checkpoint fsync batching interval (0: default 100ms; negative: every record)")
		window   = fs.Int("window", 0, "bound buffered results to this many; past it input reads pause (or overflow spills, with -spill)")
		spill    = fs.String("spill", "", "with -window: page far-ahead results to this transient file instead of pausing input reads")
		shards   = fs.Int("shards", 1, "partition the input across this many cooperating master shards (ordered output, volunteer-pool leasing)")
		pprofArg = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pando <function> [flags] [inputs...]")
		fs.PrintDefaults()
	}
	apps.RegisterAll()

	args := os.Args[1:]
	if len(args) == 0 {
		fs.Usage()
		return fmt.Errorf("missing function name (try --list)")
	}
	if args[0] == "--list" || args[0] == "-list" {
		for _, n := range worker.Registered() {
			fmt.Println(n)
		}
		return nil
	}
	funcName := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *listFn {
		for _, n := range worker.Registered() {
			fmt.Println(n)
		}
		return nil
	}
	if _, ok := worker.Lookup(funcName); !ok {
		return fmt.Errorf("unknown function %q (registered: %s)",
			funcName, strings.Join(worker.Registered(), ", "))
	}

	cfg := master.Config{
		FuncName: funcName,
		Batch:    *batch,
		Ordered:  true,
	}
	if *shards > 1 && (*ckpt != "" || *spill != "") {
		return fmt.Errorf("-shards cannot be combined with -checkpoint or -spill; each shard keeps its own completion segment")
	}
	if *ckpt != "" {
		j, err := journal.Open(*ckpt, journal.Options{SyncInterval: *fsync})
		if err != nil {
			return fmt.Errorf("open checkpoint: %w", err)
		}
		defer j.Close()
		if n := j.Recovered(); n > 0 {
			fmt.Fprintf(os.Stderr, "Resuming checkpoint %s: %d results already completed "+
				"(feed the same inputs; completed ones are replayed, not recomputed)\n", *ckpt, n)
		}
		cfg.Journal = j
	}
	cfg.SpillHighWater = *window
	if *spill != "" && *window > 0 {
		s, err := journal.OpenSpill(*spill)
		if err != nil {
			return fmt.Errorf("open spill: %w", err)
		}
		defer s.Close()
		cfg.Spill = s
	}
	if *pprofArg != "" {
		if err := pprofserve.Serve(*pprofArg); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pprof at http://%s/debug/pprof/\n", *pprofArg)
	}
	// Single master or a sharded group: either way the rest of the
	// command talks to a front master (HTTP, reporter), a bind function
	// and a volunteer entry point.
	var (
		front      *master.Master[string, json.RawMessage]
		bind       func(pullstream.Source[string]) pullstream.Source[json.RawMessage]
		serveWS    func(net.Listener)
		serveRTC   func(*transport.RTCAnswerer)
		admitLocal func()
	)
	if *shards > 1 {
		dir, err := os.MkdirTemp("", "pando-shards-")
		if err != nil {
			return fmt.Errorf("shard segment dir: %w", err)
		}
		defer os.RemoveAll(dir)
		pool := fleet.NewPool(fleet.Config{})
		defer pool.Close()
		g, err := shard.New[string, json.RawMessage](pool, shard.Config{
			Shards:    *shards,
			Dir:       dir,
			DeadAfter: 10 * time.Second,
			Master:    cfg,
		}, stringCodec{}, rawCodec{})
		if err != nil {
			return err
		}
		defer g.Close()
		front = g.Front()
		front.SetShardStats(g.Stats)
		bind = g.Bind
		serveWS = func(ln net.Listener) { go pool.ServeWS(ln) }
		serveRTC = func(a *transport.RTCAnswerer) { go pool.ServeRTC(a) }
		admitLocal = func() { addPoolWorker(pool, funcName) }
	} else {
		m := master.New[string, json.RawMessage](cfg, stringCodec{}, rawCodec{})
		front = m
		bind = m.Bind
		serveWS = func(ln net.Listener) { go m.ServeWS(ln) }
		serveRTC = func(a *transport.RTCAnswerer) { go m.ServeRTC(a) }
		admitLocal = func() { addLocalWorker(m, funcName) }
	}

	// Data plane on :port+1, deployment URL on :port — the paper's
	// "Serving volunteer code at http://10.10.14.119:5000" (Figure 3).
	dataLn, err := net.Listen("tcp", fmt.Sprintf(":%d", *port+1))
	if err != nil {
		return fmt.Errorf("listen data: %w", err)
	}
	defer dataLn.Close()
	serveWS(dataLn)

	httpLn, err := net.Listen("tcp", fmt.Sprintf(":%d", *port))
	if err != nil {
		return fmt.Errorf("listen http: %w", err)
	}
	defer httpLn.Close()
	srv := front.ServeHTTPInfo(httpLn, master.Invitation{
		Transport: "ws",
		DataAddr:  advertiseAddr(httpLn, *port+1),
	})
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "Serving volunteer code at http://%s\n", advertiseAddr(httpLn, *port))
	fmt.Fprintf(os.Stderr, "Volunteers join with: volunteer --url http://%s\n", advertiseAddr(httpLn, *port))

	// Optionally register on a public server so friends outside the local
	// network can join through the WebRTC-like bootstrap (paper §2.1.2:
	// "A user can invite friends to add their devices, even if they are
	// outside the local network").
	if *public != "" {
		sc, err := net.DialTimeout("tcp", *public, 10*time.Second)
		if err != nil {
			return fmt.Errorf("dial public server: %w", err)
		}
		signal := transport.NewWSock(sc, transport.Config{})
		// Advertise the served function so a pool-mode relay can assign
		// anonymous volunteers to this master.
		if err := transport.JoinSignalServing(signal, *masterID, []string{funcName}); err != nil {
			return fmt.Errorf("join public server: %w", err)
		}
		directLn, err := net.Listen("tcp", ":0")
		if err != nil {
			return fmt.Errorf("listen direct: %w", err)
		}
		defer directLn.Close()
		answerer := transport.NewRTCAnswerer(signal, directLn, transport.Config{})
		defer answerer.Close()
		serveRTC(answerer)
		fmt.Fprintf(os.Stderr, "Registered on public server %s as %q\n", *public, *masterID)
		fmt.Fprintf(os.Stderr, "Remote volunteers join with: volunteer --via %s --master %s\n", *public, *masterID)
	}

	for i := 0; i < *local; i++ {
		admitLocal()
	}

	if *report {
		rep := front.StartReporter(os.Stderr, 2*time.Second, 10*time.Second)
		defer rep.Stop()
	}

	// Input source: stdin lines or remaining command-line arguments.
	var src pullstream.Source[string]
	if *stdin {
		lines := make(chan string)
		go func() {
			defer close(lines)
			sc := bufio.NewScanner(os.Stdin)
			sc.Buffer(make([]byte, 1<<20), 16<<20)
			for sc.Scan() {
				lines <- sc.Text()
			}
		}()
		src = pullstream.FromChan(lines, nil)
	} else {
		src = pullstream.Values(fs.Args()...)
	}

	out := bind(src)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	return pullstream.Drain(out, func(v json.RawMessage) error {
		// Results that are JSON strings are printed unquoted, so the
		// output composes with ordinary Unix tools.
		var s string
		if err := json.Unmarshal(v, &s); err == nil {
			fmt.Fprintln(w, s)
		} else {
			fmt.Fprintln(w, string(v))
		}
		return w.Flush()
	})
}

// addLocalWorker attaches one in-process volunteer.
func addLocalWorker[I, O any](m *master.Master[I, O], funcName string) {
	h, _ := worker.Lookup(funcName)
	v := &worker.Volunteer{Name: "local", Handler: h, CrashAfter: -1}
	pipe := netsim.NewPipe(netsim.Loopback)
	go v.JoinWS(pipe.A)
	go m.Admit(transport.NewWSock(pipe.B, transport.Config{}))
}

// addPoolWorker attaches one in-process volunteer to the shared fleet, so
// the pool may lease it to whichever shard master needs it.
func addPoolWorker(p *fleet.Pool, funcName string) {
	h, _ := worker.Lookup(funcName)
	v := &worker.Volunteer{Name: "local", Handler: h, CrashAfter: -1, Functions: []string{funcName}}
	pipe := netsim.NewPipe(netsim.Loopback)
	go v.JoinWS(pipe.A)
	go p.Admit(transport.NewWSock(pipe.B, transport.Config{}))
}

// advertiseAddr picks a non-loopback address to print, as the paper does.
func advertiseAddr(ln net.Listener, port int) string {
	addrs, err := net.InterfaceAddrs()
	if err == nil {
		for _, a := range addrs {
			if ip, ok := a.(*net.IPNet); ok && !ip.IP.IsLoopback() && ip.IP.To4() != nil {
				return fmt.Sprintf("%s:%d", ip.IP, port)
			}
		}
	}
	return ln.Addr().String()
}

// stringCodec sends inputs as JSON strings, matching the paper's
// convention that inputs arrive as strings (Figure 2: cameraPos is a
// string the function parses).
type stringCodec struct{}

func (stringCodec) Encode(s string) ([]byte, error) { return json.Marshal(s) }
func (stringCodec) Decode(b []byte) (string, error) {
	var s string
	err := json.Unmarshal(b, &s)
	return s, err
}

// rawCodec passes results through untouched.
type rawCodec struct{}

func (rawCodec) Encode(b json.RawMessage) ([]byte, error) { return b, nil }
func (rawCodec) Decode(b []byte) (json.RawMessage, error) {
	return json.RawMessage(append([]byte(nil), b...)), nil
}
