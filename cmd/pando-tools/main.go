// Command pando-tools bundles the companion Unix tools of the paper's
// pipelines (Figure 3 and Figure 10): input generators and
// post-processing stages that combine with pando through pipes.
//
//	pando-tools generate-angles 16 | pando render --stdin | pando-tools gif-encode -o anim.gif
//	pando-tools generate-ints 1 1000 | pando collatz --stdin | pando-tools collatz-max
//	pando-tools generate-seeds 0 100 | pando sl-test --stdin | pando-tools sl-monitor
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"pando/internal/apps"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate-angles":
		err = generateAngles(os.Args[2:])
	case "generate-ints":
		err = generateInts(os.Args[2:])
	case "generate-seeds":
		err = generateSeeds(os.Args[2:])
	case "gif-encode":
		err = gifEncode(os.Args[2:])
	case "collatz-max":
		err = collatzMax()
	case "sl-monitor":
		err = slMonitor()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pando-tools:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pando-tools <tool> [args]

tools:
  generate-angles <frames>      camera angles for one rotation (render inputs)
  generate-ints <start> <count> consecutive integers (collatz inputs)
  generate-seeds <start> <count> consecutive seeds (sl-test inputs)
  gif-encode -o <file>          assemble rendered frames from stdin into a GIF
  collatz-max                   report the input with the most Collatz steps
  sl-monitor                    fail if any StreamLender check found violations`)
}

func generateAngles(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("generate-angles needs <frames>")
	}
	frames, err := strconv.Atoi(args[0])
	if err != nil || frames < 1 {
		return fmt.Errorf("bad frame count %q", args[0])
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, a := range apps.GenerateAngles(frames) {
		fmt.Fprintln(w, a)
	}
	return nil
}

func generateInts(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("generate-ints needs <start> <count>")
	}
	start, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return fmt.Errorf("bad start %q", args[0])
	}
	count, err := strconv.Atoi(args[1])
	if err != nil || count < 0 {
		return fmt.Errorf("bad count %q", args[1])
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i := 0; i < count; i++ {
		fmt.Fprintln(w, start+int64(i))
	}
	return nil
}

func generateSeeds(args []string) error { return generateInts(args) }

func gifEncode(args []string) error {
	fs := flag.NewFlagSet("gif-encode", flag.ContinueOnError)
	out := fs.String("o", "animation.gif", "output GIF path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	var frames []string
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			frames = append(frames, line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(frames) == 0 {
		return fmt.Errorf("no frames on stdin")
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := apps.EncodeAnimation(f, frames); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pando-tools: wrote %d frames to %s\n", len(frames), *out)
	return nil
}

func collatzMax() error {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	var results []apps.CollatzResult
	for sc.Scan() {
		var r apps.CollatzResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return fmt.Errorf("bad result line %q: %w", sc.Text(), err)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	best, ok := apps.MaxCollatz(results)
	if !ok {
		return fmt.Errorf("no results on stdin")
	}
	fmt.Printf("N=%s steps=%d (of %d tested)\n", best.N, best.Steps, len(results))
	return nil
}

func slMonitor() error {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	var reports []apps.CheckReport
	for sc.Scan() {
		var r apps.CheckReport
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return fmt.Errorf("bad report line %q: %w", sc.Text(), err)
		}
		reports = append(reports, r)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	bad := apps.MonitorFailures(reports)
	fmt.Printf("%d execution(s) checked, %d violation report(s)\n", len(reports), len(bad))
	if len(bad) > 0 {
		for _, r := range bad {
			fmt.Printf("  seed %d: %v\n", r.Seed, r.Violations)
		}
		return fmt.Errorf("violations found")
	}
	return nil
}
