package pando_test

// Kill-and-restart recovery tests for the durable checkpoint journal:
// a master process dies mid-stream with live volunteers and speculation
// enabled, restarts over the same journal, and the resumed run's output
// is exactly — content and order — what an uninterrupted run would have
// produced, with the journaled prefix replayed instead of recomputed.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	pando "pando"
	"pando/internal/netsim"
)

func recoveryDeployment(t *testing.T, name, ckpt string) *pando.Pando[int, int] {
	t.Helper()
	opts := []pando.Option{
		pando.WithAdaptiveLimit(1, 8),
		pando.WithSpeculation(2.0),
		pando.WithChannelConfig(pando.ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}),
		pando.WithoutRegistry(),
	}
	if ckpt != "" {
		opts = append(opts, pando.WithCheckpoint(ckpt), pando.WithResume(), pando.WithFsyncInterval(5*time.Millisecond))
	}
	return pando.New(name, func(v int) (int, error) { return v*v + 7, nil }, opts...)
}

// TestRecoveryKillAndRestart is the acceptance scenario: run 1 is killed
// after emitting part of the stream, run 2 resumes from the journal with
// fresh volunteers, and the combined guarantees hold — no missing and no
// duplicate outputs, replay in order, real work saved.
func TestRecoveryKillAndRestart(t *testing.T) {
	const n = 200
	const consumed = 80 // outputs read before the master dies
	f := func(v int) int { return v*v + 7 }
	ckpt := filepath.Join(t.TempDir(), "stream.journal")
	name := integName("recovery")

	// --- Run 1: dies mid-stream with live volunteers. ---
	p1 := recoveryDeployment(t, name, ckpt)
	p1.AddSimulatedWorkers(3, "fleet", netsim.LAN, time.Millisecond, -1)
	// One crawling device makes stragglers likely, so speculation is live
	// when the master dies.
	p1.AddWorker("crawler", netsim.LAN, 25*time.Millisecond, -1)

	in1 := make(chan int)
	stop1 := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			select {
			case in1 <- i:
			case <-stop1:
				return
			}
		}
		close(in1)
	}()
	out1, _ := p1.Process(context.Background(), in1)
	for i := 0; i < consumed; i++ {
		v, ok := <-out1
		if !ok {
			t.Fatalf("run 1 output closed after %d values", i)
		}
		if v != f(i) {
			t.Fatalf("run 1 out[%d] = %d, want %d", i, v, f(i))
		}
	}
	// The batched fsync interval elapses before the kill; make that
	// deterministic with an explicit barrier (results accepted after it
	// may or may not be durable — both must be safe).
	if err := p1.Checkpoint().Sync(); err != nil {
		t.Fatal(err)
	}
	// Kill the master mid-stream: volunteers are severed mid-item, the
	// output is abandoned, in-flight results race the shutdown.
	close(stop1)
	p1.Close()

	// The crash's torn write: garbage after the last durable record must
	// not break recovery.
	fh, err := os.OpenFile(ckpt, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write([]byte{0xA7, 0x13, 0x37}); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	// --- Run 2: restart over the same journal, fresh volunteers. ---
	p2 := recoveryDeployment(t, name, ckpt)
	p2.AddSimulatedWorkers(3, "fleet2", netsim.LAN, time.Millisecond, -1)

	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}
	got, err := p2.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("run 2 emitted %d outputs, want %d (missing outputs)", len(got), n)
	}
	for i, v := range got {
		if v != f(i) {
			t.Fatalf("run 2 out[%d] = %d, want %d (duplicate, missing or misordered output)", i, v, f(i))
		}
	}
	// The journal actually saved work: at least the `consumed` outputs
	// synced before the kill were restored, so run 2's devices computed
	// well under the full stream (speculation may add a few duplicates).
	if items := p2.TotalItems(); items > n-consumed/2 {
		t.Fatalf("run 2 computed %d items; the synced prefix was not restored", items)
	}
	// Every index is durable by the end of run 2.
	if l := p2.Checkpoint().Len(); l != n {
		t.Fatalf("journal holds %d entries after completion, want %d", l, n)
	}
	p2.Close()
}

// TestRecoveryDoubleRestart kills the master twice: resume must compose.
func TestRecoveryDoubleRestart(t *testing.T) {
	const n = 150
	f := func(v int) int { return v*v + 7 }
	ckpt := filepath.Join(t.TempDir(), "stream.journal")
	name := integName("recovery2")

	for run := 0; run < 2; run++ {
		p := recoveryDeployment(t, name, ckpt)
		p.AddSimulatedWorkers(2, "fleet", netsim.LAN, time.Millisecond, -1)
		in := make(chan int)
		stop := make(chan struct{})
		go func() {
			for i := 0; i < n; i++ {
				select {
				case in <- i:
				case <-stop:
					return
				}
			}
			close(in)
		}()
		out, _ := p.Process(context.Background(), in)
		for i := 0; i < 30+run*30; i++ {
			if v, ok := <-out; !ok || v != f(i) {
				t.Fatalf("run %d out[%d] = %d (ok=%v), want %d", run, i, v, ok, f(i))
			}
		}
		if err := p.Checkpoint().Sync(); err != nil {
			t.Fatal(err)
		}
		close(stop)
		p.Close()
	}

	p := recoveryDeployment(t, name, ckpt)
	p.AddSimulatedWorkers(2, "fleet", netsim.LAN, time.Millisecond, -1)
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}
	got, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if len(got) != n {
		t.Fatalf("final run emitted %d outputs, want %d", len(got), n)
	}
	for i, v := range got {
		if v != f(i) {
			t.Fatalf("final out[%d] = %d, want %d", i, v, f(i))
		}
	}
}

// TestRecoveryKillAndRestartInPool re-runs the kill-and-restart scenario
// through a shared pool hosting two jobs: the checkpointed job dies
// mid-stream and is re-mapped onto the same pool over the same journal.
// Its resumed output must stay byte-identical to an uninterrupted run
// while the other job keeps running on the shared fleet throughout.
func TestRecoveryKillAndRestartInPool(t *testing.T) {
	const n = 200
	const consumed = 80
	const nOther = 1 << 30 // effectively unbounded; the test closes the feed
	f := func(v int) int { return v*v + 7 }
	ckpt := filepath.Join(t.TempDir(), "pool-stream.journal")
	nameA := integName("pool-recovery")
	nameB := integName("pool-survivor")

	pool := pando.NewPool(
		pando.WithChannelConfig(pando.ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}),
		pando.WithRebalanceInterval(20*time.Millisecond),
	)
	defer pool.Close()

	mapA := func() *pando.Pando[int, int] {
		return pando.Map(pool, nameA, func(v int) (int, error) { return v*v + 7, nil },
			pando.WithAdaptiveLimit(1, 8),
			pando.WithCheckpoint(ckpt), pando.WithResume(), pando.WithFsyncInterval(5*time.Millisecond),
			pando.WithoutRegistry())
	}
	jobB := pando.Map(pool, nameB, func(s string) (string, error) {
		time.Sleep(300 * time.Microsecond)
		return s + "-ok", nil
	}, pando.WithoutRegistry())
	defer jobB.Close()

	pool.AddWorker("shared-1", netsim.LAN, time.Millisecond, -1)
	pool.AddWorker("shared-2", netsim.LAN, time.Millisecond, -1)
	pool.AddWorker("shared-3", netsim.LAN, time.Millisecond, -1)

	// Job B runs the whole time: its input stays open until job A's
	// resumed run has completed, so the shared fleet must serve both jobs
	// through the kill and the restart.
	otherIn := make(chan string)
	stopOther := make(chan struct{})
	otherFeeder := make(chan int, 1)
	go func() {
		i := 0
		for {
			select {
			case otherIn <- fmt.Sprintf("s%d", i):
				i++
				if i >= nOther {
					close(otherIn)
					otherFeeder <- i
					return
				}
			case <-stopOther:
				close(otherIn)
				otherFeeder <- i
				return
			}
		}
	}()
	otherOutC, otherErrC := jobB.Process(context.Background(), otherIn)
	otherDone := make(chan error, 1)
	var otherOut []string
	var otherMu sync.Mutex
	go func() {
		for s := range otherOutC {
			otherMu.Lock()
			otherOut = append(otherOut, s)
			otherMu.Unlock()
		}
		otherDone <- <-otherErrC
	}()

	// --- Run 1 of job A: dies mid-stream. ---
	a1 := mapA()
	in1 := make(chan int)
	stop1 := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			select {
			case in1 <- i:
			case <-stop1:
				return
			}
		}
		close(in1)
	}()
	out1, _ := a1.Process(context.Background(), in1)
	for i := 0; i < consumed; i++ {
		v, ok := <-out1
		if !ok {
			t.Fatalf("run 1 output closed after %d values", i)
		}
		if v != f(i) {
			t.Fatalf("run 1 out[%d] = %d, want %d", i, v, f(i))
		}
	}
	if err := a1.Checkpoint().Sync(); err != nil {
		t.Fatal(err)
	}
	close(stop1)
	a1.Close() // the kill: job A leaves the pool, its workers move to job B

	// Torn tail after the last durable record.
	fh, err := os.OpenFile(ckpt, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write([]byte{0xA7, 0x13, 0x37}); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	select {
	case err := <-otherDone:
		t.Fatalf("job B ended during the kill window (err=%v); the shared fleet must keep serving it", err)
	default:
	}

	// --- Run 2 of job A: re-mapped onto the same pool, same journal. ---
	a2 := mapA()
	defer a2.Close()
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}
	got, err := a2.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("run 2 emitted %d outputs, want %d", len(got), n)
	}
	for i, v := range got {
		if v != f(i) {
			t.Fatalf("run 2 out[%d] = %d, want %d (resumed output must be byte-identical)", i, v, f(i))
		}
	}
	// The synced prefix was restored, not recomputed.
	if items := a2.TotalItems(); items > n-consumed/2 {
		t.Fatalf("run 2 computed %d items; the synced prefix was not restored", items)
	}
	if l := a2.Checkpoint().Len(); l != n {
		t.Fatalf("journal holds %d entries after completion, want %d", l, n)
	}

	// Job B survived both the kill and the resume: close its input now
	// and check everything it emitted is correct and in order.
	close(stopOther)
	fed := <-otherFeeder
	if err := <-otherDone; err != nil {
		t.Fatalf("job B failed: %v", err)
	}
	otherMu.Lock()
	defer otherMu.Unlock()
	if len(otherOut) != fed {
		t.Fatalf("job B emitted %d outputs, want %d", len(otherOut), fed)
	}
	if fed == 0 {
		t.Fatal("job B never processed anything on the shared fleet")
	}
	for i, s := range otherOut {
		if s != fmt.Sprintf("s%d-ok", i) {
			t.Fatalf("job B out[%d] = %q", i, s)
		}
	}
}

// TestCheckpointRefusesSilentResume: running a fresh deployment over a
// journal that already holds progress must fail loudly unless WithResume
// states the input stream is the same one.
func TestCheckpointRefusesSilentResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "stream.journal")
	name := integName("refuse")

	p1 := pando.New(name, func(v int) (int, error) { return v + 1, nil },
		pando.WithCheckpoint(ckpt), pando.WithFsyncInterval(-1), pando.WithoutRegistry())
	p1.AddSimulatedWorkers(1, "w", netsim.Loopback, 0, -1)
	if _, err := p1.ProcessSlice(context.Background(), []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	p1.Close()

	p2 := pando.New(name, func(v int) (int, error) { return v + 1, nil },
		pando.WithCheckpoint(ckpt), pando.WithoutRegistry())
	defer p2.Close()
	_, err := p2.ProcessSlice(context.Background(), []int{1, 2, 3})
	if err == nil || !strings.Contains(err.Error(), "WithResume") {
		t.Fatalf("err = %v, want refusal naming WithResume", err)
	}
}

// TestCheckpointOpenFailureSurfacesOnProcess: an unopenable journal path
// is reported by Process, not swallowed.
func TestCheckpointOpenFailureSurfacesOnProcess(t *testing.T) {
	name := integName("badpath")
	p := pando.New(name, func(v int) (int, error) { return v, nil },
		pando.WithCheckpoint(filepath.Join(t.TempDir(), "no", "such", "dir", "j.log")),
		pando.WithoutRegistry())
	defer p.Close()
	_, err := p.ProcessSlice(context.Background(), []int{1})
	if err == nil {
		t.Fatal("Process succeeded despite an unopenable checkpoint path")
	}
	var pathErr *os.PathError
	if !errors.As(err, &pathErr) {
		t.Fatalf("err = %v, want an *os.PathError", err)
	}
}
