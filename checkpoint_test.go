package pando_test

// Kill-and-restart recovery tests for the durable checkpoint journal:
// a master process dies mid-stream with live volunteers and speculation
// enabled, restarts over the same journal, and the resumed run's output
// is exactly — content and order — what an uninterrupted run would have
// produced, with the journaled prefix replayed instead of recomputed.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	pando "pando"
	"pando/internal/netsim"
)

func recoveryDeployment(t *testing.T, name, ckpt string) *pando.Pando[int, int] {
	t.Helper()
	opts := []pando.Option{
		pando.WithAdaptiveLimit(1, 8),
		pando.WithSpeculation(2.0),
		pando.WithChannelConfig(pando.ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}),
		pando.WithoutRegistry(),
	}
	if ckpt != "" {
		opts = append(opts, pando.WithCheckpoint(ckpt), pando.WithResume(), pando.WithFsyncInterval(5*time.Millisecond))
	}
	return pando.New(name, func(v int) (int, error) { return v*v + 7, nil }, opts...)
}

// TestRecoveryKillAndRestart is the acceptance scenario: run 1 is killed
// after emitting part of the stream, run 2 resumes from the journal with
// fresh volunteers, and the combined guarantees hold — no missing and no
// duplicate outputs, replay in order, real work saved.
func TestRecoveryKillAndRestart(t *testing.T) {
	const n = 200
	const consumed = 80 // outputs read before the master dies
	f := func(v int) int { return v*v + 7 }
	ckpt := filepath.Join(t.TempDir(), "stream.journal")
	name := integName("recovery")

	// --- Run 1: dies mid-stream with live volunteers. ---
	p1 := recoveryDeployment(t, name, ckpt)
	p1.AddSimulatedWorkers(3, "fleet", netsim.LAN, time.Millisecond, -1)
	// One crawling device makes stragglers likely, so speculation is live
	// when the master dies.
	p1.AddWorker("crawler", netsim.LAN, 25*time.Millisecond, -1)

	in1 := make(chan int)
	stop1 := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			select {
			case in1 <- i:
			case <-stop1:
				return
			}
		}
		close(in1)
	}()
	out1, _ := p1.Process(context.Background(), in1)
	for i := 0; i < consumed; i++ {
		v, ok := <-out1
		if !ok {
			t.Fatalf("run 1 output closed after %d values", i)
		}
		if v != f(i) {
			t.Fatalf("run 1 out[%d] = %d, want %d", i, v, f(i))
		}
	}
	// The batched fsync interval elapses before the kill; make that
	// deterministic with an explicit barrier (results accepted after it
	// may or may not be durable — both must be safe).
	if err := p1.Checkpoint().Sync(); err != nil {
		t.Fatal(err)
	}
	// Kill the master mid-stream: volunteers are severed mid-item, the
	// output is abandoned, in-flight results race the shutdown.
	close(stop1)
	p1.Close()

	// The crash's torn write: garbage after the last durable record must
	// not break recovery.
	fh, err := os.OpenFile(ckpt, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write([]byte{0xA7, 0x13, 0x37}); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	// --- Run 2: restart over the same journal, fresh volunteers. ---
	p2 := recoveryDeployment(t, name, ckpt)
	p2.AddSimulatedWorkers(3, "fleet2", netsim.LAN, time.Millisecond, -1)

	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}
	got, err := p2.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("run 2 emitted %d outputs, want %d (missing outputs)", len(got), n)
	}
	for i, v := range got {
		if v != f(i) {
			t.Fatalf("run 2 out[%d] = %d, want %d (duplicate, missing or misordered output)", i, v, f(i))
		}
	}
	// The journal actually saved work: at least the `consumed` outputs
	// synced before the kill were restored, so run 2's devices computed
	// well under the full stream (speculation may add a few duplicates).
	if items := p2.TotalItems(); items > n-consumed/2 {
		t.Fatalf("run 2 computed %d items; the synced prefix was not restored", items)
	}
	// Every index is durable by the end of run 2.
	if l := p2.Checkpoint().Len(); l != n {
		t.Fatalf("journal holds %d entries after completion, want %d", l, n)
	}
	p2.Close()
}

// TestRecoveryDoubleRestart kills the master twice: resume must compose.
func TestRecoveryDoubleRestart(t *testing.T) {
	const n = 150
	f := func(v int) int { return v*v + 7 }
	ckpt := filepath.Join(t.TempDir(), "stream.journal")
	name := integName("recovery2")

	for run := 0; run < 2; run++ {
		p := recoveryDeployment(t, name, ckpt)
		p.AddSimulatedWorkers(2, "fleet", netsim.LAN, time.Millisecond, -1)
		in := make(chan int)
		stop := make(chan struct{})
		go func() {
			for i := 0; i < n; i++ {
				select {
				case in <- i:
				case <-stop:
					return
				}
			}
			close(in)
		}()
		out, _ := p.Process(context.Background(), in)
		for i := 0; i < 30+run*30; i++ {
			if v, ok := <-out; !ok || v != f(i) {
				t.Fatalf("run %d out[%d] = %d (ok=%v), want %d", run, i, v, ok, f(i))
			}
		}
		if err := p.Checkpoint().Sync(); err != nil {
			t.Fatal(err)
		}
		close(stop)
		p.Close()
	}

	p := recoveryDeployment(t, name, ckpt)
	p.AddSimulatedWorkers(2, "fleet", netsim.LAN, time.Millisecond, -1)
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}
	got, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if len(got) != n {
		t.Fatalf("final run emitted %d outputs, want %d", len(got), n)
	}
	for i, v := range got {
		if v != f(i) {
			t.Fatalf("final out[%d] = %d, want %d", i, v, f(i))
		}
	}
}

// TestCheckpointRefusesSilentResume: running a fresh deployment over a
// journal that already holds progress must fail loudly unless WithResume
// states the input stream is the same one.
func TestCheckpointRefusesSilentResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "stream.journal")
	name := integName("refuse")

	p1 := pando.New(name, func(v int) (int, error) { return v + 1, nil },
		pando.WithCheckpoint(ckpt), pando.WithFsyncInterval(-1), pando.WithoutRegistry())
	p1.AddSimulatedWorkers(1, "w", netsim.Loopback, 0, -1)
	if _, err := p1.ProcessSlice(context.Background(), []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	p1.Close()

	p2 := pando.New(name, func(v int) (int, error) { return v + 1, nil },
		pando.WithCheckpoint(ckpt), pando.WithoutRegistry())
	defer p2.Close()
	_, err := p2.ProcessSlice(context.Background(), []int{1, 2, 3})
	if err == nil || !strings.Contains(err.Error(), "WithResume") {
		t.Fatalf("err = %v, want refusal naming WithResume", err)
	}
}

// TestCheckpointOpenFailureSurfacesOnProcess: an unopenable journal path
// is reported by Process, not swallowed.
func TestCheckpointOpenFailureSurfacesOnProcess(t *testing.T) {
	name := integName("badpath")
	p := pando.New(name, func(v int) (int, error) { return v, nil },
		pando.WithCheckpoint(filepath.Join(t.TempDir(), "no", "such", "dir", "j.log")),
		pando.WithoutRegistry())
	defer p.Close()
	_, err := p.ProcessSlice(context.Background(), []int{1})
	if err == nil {
		t.Fatal("Process succeeded despite an unopenable checkpoint path")
	}
	var pathErr *os.PathError
	if !errors.As(err, &pathErr) {
		t.Fatalf("err = %v, want an *os.PathError", err)
	}
}
