package pando

import (
	"context"
	"strings"
	"testing"
)

// TestWithShardsEndToEnd: the public sharded deployment — same
// ProcessSlice contract as a single master, with the stream partitioned
// across shard masters leasing from the deployment's own pool.
func TestWithShardsEndToEnd(t *testing.T) {
	p := New(uniqueName("square"), func(v int) (int, error) { return v * v, nil },
		WithShards(3), WithShardWindow(64))
	defer p.Close()
	p.AddLocalWorkers(4)

	inputs := make([]int, 120)
	for i := range inputs {
		inputs[i] = i + 1
	}
	got, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(inputs) {
		t.Fatalf("got %d results, want %d", len(got), len(inputs))
	}
	for i, v := range got {
		if want := (i + 1) * (i + 1); v != want {
			t.Fatalf("got[%d] = %d, want %d", i, v, want)
		}
	}
	shards := p.ShardStats()
	if len(shards) != 3 {
		t.Fatalf("ShardStats rows = %d, want 3", len(shards))
	}
	items := 0
	for _, s := range shards {
		items += s.Items
	}
	if items != len(inputs) {
		t.Fatalf("summed shard items = %d, want %d", items, len(inputs))
	}
	if p.TotalItems() < len(inputs) {
		t.Fatalf("TotalItems = %d, want >= %d", p.TotalItems(), len(inputs))
	}
	if len(p.Stats()) == 0 {
		t.Fatal("no worker stats from sharded deployment")
	}
}

// TestWithShardsOptionConflicts: combinations that could never preserve
// the sharded contract surface as errors on the first Process.
func TestWithShardsOptionConflicts(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"unordered", []Option{WithShards(2), WithUnordered()}, "WithUnordered"},
		{"checkpoint", []Option{WithShards(2), WithCheckpoint(t.TempDir() + "/j")}, "WithCheckpoint"},
		{"spill", []Option{WithShards(2), WithMemoryBound(8), WithSpill(t.TempDir() + "/s")}, "WithSpill"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := New(uniqueName("square"), func(v int) (int, error) { return v * v, nil }, tc.opts...)
			defer p.Close()
			_, err := p.ProcessSlice(context.Background(), []int{1, 2, 3})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %s", err, tc.want)
			}
		})
	}
}

// TestWithShardsSingleIsClassic: WithShards(1) is the plain master — no
// shard rows, unchanged behavior.
func TestWithShardsSingleIsClassic(t *testing.T) {
	p := New(uniqueName("square"), func(v int) (int, error) { return v * v, nil }, WithShards(1))
	defer p.Close()
	p.AddLocalWorkers(2)
	got, err := p.ProcessSlice(context.Background(), []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 9 {
		t.Fatalf("got %v", got)
	}
	if s := p.ShardStats(); s != nil {
		t.Fatalf("ShardStats = %v for a single-master deployment", s)
	}
}
