package pando_test

// This file holds the benchmark harness that regenerates the paper's
// evaluation artifacts (run with `go test -bench=. -benchmem`):
//
//   BenchmarkTable2LAN / VPN / WAN    Table 2, one block each (§5.2-5.4)
//   BenchmarkBatchSweep*              §5.5 claim C1: batching hides latency
//   BenchmarkSpeedupVsSingleDevice    §1/§5 headline: speedup over 1 device
//   BenchmarkFigure4Deployment        Figure 4: join, crash, takeover
//   BenchmarkFatTreeOverlay           §5: fat-tree overlay scaling path
//
// plus micro-benchmarks of each substrate (pull-stream, StreamLender,
// Limiter, transport, and the application kernels). Absolute throughput
// is hardware- and timescale-dependent; custom metrics report the
// quantities the paper reports (units/s, shares).

import (
	"context"
	"fmt"
	"math/big"
	"testing"
	"time"

	pando "pando"
	"pando/internal/apps"
	"pando/internal/bench"
	"pando/internal/chain"
	"pando/internal/landsat"
	"pando/internal/lender"
	"pando/internal/limiter"
	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/pullstream"
	"pando/internal/qlearn"
	"pando/internal/raytracer"
	"pando/internal/transport"
)

// --- Table 2 (one benchmark per scenario block) ---

func benchScenario(b *testing.B, s bench.Scenario, app bench.App) {
	b.Helper()
	opt := bench.Options{Items: 150, TimeScale: 0.005}
	var lastTotal float64
	for i := 0; i < b.N; i++ {
		cell, err := bench.RunCell(s, app, opt)
		if err != nil {
			b.Fatal(err)
		}
		lastTotal = cell.TotalMeasured
	}
	b.ReportMetric(lastTotal, bench.Unit[app]+"_measured")
	b.ReportMetric(s.Total(app), bench.Unit[app]+"_paper")
}

func BenchmarkTable2LAN(b *testing.B) { benchScenario(b, bench.LAN, bench.Collatz) }
func BenchmarkTable2VPN(b *testing.B) { benchScenario(b, bench.VPN, bench.Collatz) }
func BenchmarkTable2WAN(b *testing.B) { benchScenario(b, bench.WAN, bench.Collatz) }

// BenchmarkTable2LANRaytrace exercises the frames/s column, whose
// per-item compute times are the largest of the table.
func BenchmarkTable2LANRaytrace(b *testing.B) { benchScenario(b, bench.LAN, bench.Raytrace) }

// --- §5.5 claim C1: batching hides network latency ---

func benchBatch(b *testing.B, batch int) {
	b.Helper()
	var tput float64
	for i := 0; i < b.N; i++ {
		pts, err := bench.RunBatchSweep([]int{batch}, 10*time.Millisecond, 5*time.Millisecond, 3, 80)
		if err != nil {
			b.Fatal(err)
		}
		tput = pts[0].Throughput
	}
	b.ReportMetric(tput, "items/s")
}

func BenchmarkBatchSweep1(b *testing.B) { benchBatch(b, 1) }
func BenchmarkBatchSweep2(b *testing.B) { benchBatch(b, 2) }
func BenchmarkBatchSweep4(b *testing.B) { benchBatch(b, 4) }
func BenchmarkBatchSweep8(b *testing.B) { benchBatch(b, 8) }

// --- Headline speedup vs a single personal device ---

func BenchmarkSpeedupVsSingleDevice(b *testing.B) {
	opt := bench.Options{Items: 150, TimeScale: 0.005}
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := bench.RunSpeedup(bench.Raytrace, "MBAir 2011", opt)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Speedup
	}
	b.ReportMetric(speedup, "speedup_x")
}

// --- Figure 4: dynamic join, crash, takeover ---

func BenchmarkFigure4Deployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := pando.New(fmt.Sprintf("bench-fig4-%d-%d", b.N, i),
			func(v int) (int, error) { return v * v, nil },
			pando.WithBatch(2),
			pando.WithChannelConfig(pando.ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}),
			pando.WithoutRegistry(),
		)
		p.AddSimulatedWorkers(1, "tablet", netsim.LAN, 0, 3) // crashes
		p.AddSimulatedWorkers(1, "phone", netsim.LAN, 0, -1)
		inputs := make([]int, 30)
		for j := range inputs {
			inputs[j] = j
		}
		if _, err := p.ProcessSlice(context.Background(), inputs); err != nil {
			b.Fatal(err)
		}
		p.Close()
	}
}

// --- Fat-tree overlay throughput (the §5 scaling reference) ---

func BenchmarkFatTreeOverlay(b *testing.B) {
	// Throughput through the full pando stack with 4 direct workers, the
	// baseline the overlay composes from.
	p := pando.New("bench-overlay-base",
		func(v int) (int, error) { return v + 1, nil },
		pando.WithBatch(4), pando.WithoutRegistry(),
	)
	defer p.Close()
	p.AddLocalWorkers(4)
	b.ResetTimer()
	inputs := make([]int, 200)
	for i := 0; i < b.N; i++ {
		if _, err := p.ProcessSlice(context.Background(), inputs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(200), "items/op")
}

// --- Substrate micro-benchmarks ---

func BenchmarkPullStreamCountDrain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := pullstream.Drain(pullstream.Count(1000), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPullStreamMapChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		th := pullstream.Chain(
			pullstream.Map(func(v int) int { return v * 2 }),
			pullstream.Filter(func(v int) bool { return v%3 != 0 }),
		)
		if _, err := pullstream.Collect(th(pullstream.Count(1000))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamLenderInProcess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := lender.New[int, int]()
		out := l.Bind(pullstream.Count(500))
		done := make(chan error, 1)
		go func() {
			_, err := pullstream.Collect(out)
			done <- err
		}()
		for w := 0; w < 4; w++ {
			_, d := l.LendStream()
			go func() {
				results := make(chan int, 16)
				go d.Sink(pullstream.FromChan(results, nil))
				for {
					type ans struct {
						end error
						v   int
					}
					ch := make(chan ans, 1)
					d.Source(nil, func(end error, v int) { ch <- ans{end, v} })
					a := <-ch
					if a.end != nil {
						close(results)
						return
					}
					results <- a.v
				}
			}()
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLimiterThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pending := make(chan int, 1024)
		d := pullstream.Duplex[int, int]{
			Sink: func(src pullstream.Source[int]) {
				for {
					type ans struct {
						end error
						v   int
					}
					ch := make(chan ans, 1)
					src(nil, func(end error, v int) { ch <- ans{end, v} })
					a := <-ch
					if a.end != nil {
						close(pending)
						return
					}
					pending <- a.v
				}
			},
			Source: func(abort error, cb pullstream.Callback[int]) {
				if abort != nil {
					cb(abort, 0)
					return
				}
				v, ok := <-pending
				if !ok {
					cb(pullstream.ErrDone, 0)
					return
				}
				cb(nil, v)
			},
		}
		th := limiter.Limit(d, 8)
		if _, err := pullstream.Collect(th(pullstream.Count(500))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransportRoundTrip(b *testing.B) {
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	cfg := transport.Config{HeartbeatInterval: -1}
	a := transport.NewWSock(p.A, cfg)
	c := transport.NewWSock(p.B, cfg)
	go func() {
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(m); err != nil {
				return
			}
		}
	}()
	msg := &proto.Message{Type: proto.TypeInput, Seq: 1, Data: []byte(`"payload"`)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := a.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Wire-format benchmarks (ISSUE 1: v1 JSON vs v2 binary) ---

// benchWireDeployment runs a full deployment — master, negotiated
// channel, one local volunteer — pinned to one wire format, over the
// given inputs, and reports items/s.
func benchWireDeployment[I, O any](b *testing.B, wire string, name string, f func(I) (O, error), inputs []I, opts ...pando.Option) {
	b.Helper()
	opts = append(opts, pando.WithoutRegistry(), pando.WithWireFormat(wire), pando.WithBatch(8))
	var processed int
	start := time.Now()
	for i := 0; i < b.N; i++ {
		p := pando.New(fmt.Sprintf("%s-%d", name, i), f, opts...)
		p.AddLocalWorkers(1)
		out, err := p.ProcessSlice(context.Background(), inputs)
		p.Close()
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(inputs) {
			b.Fatalf("got %d results, want %d", len(out), len(inputs))
		}
		processed += len(out)
	}
	if el := time.Since(start).Seconds(); el > 0 {
		b.ReportMetric(float64(processed)/el, "items/s")
	}
}

// BenchmarkWireSmallCollatz compares the formats end to end on the
// small-item workload: JSON-string inputs, envelope-dominated frames.
func BenchmarkWireSmallCollatz(b *testing.B) {
	inputs := apps.CollatzInputs(big.NewInt(1_000_000), 64)
	f := func(n string) (int, error) {
		r, err := apps.CollatzSteps(n)
		if err != nil {
			return 0, err
		}
		return r.Steps, nil
	}
	for _, wire := range []string{pando.WireV1, pando.WireV2, pando.WireV3} {
		b.Run(wire, func(b *testing.B) {
			benchWireDeployment(b, wire, "bench-collatz", f, inputs)
		})
	}
}

// BenchmarkWireLargeImgproc compares the formats end to end on the
// large-payload workload: 16 KiB raw tiles through RawCodec, where v1
// pays base64 inflation on every frame and v2 ships the bytes verbatim.
func BenchmarkWireLargeImgproc(b *testing.B) {
	tiles := bench.ImgprocWirePayloads(16, 128).Items           // 16 tiles of 16 KiB
	f := func(tile []byte) ([]byte, error) { return tile, nil } // transfer-bound
	for _, wire := range []string{pando.WireV1, pando.WireV2, pando.WireV3} {
		b.Run(wire, func(b *testing.B) {
			benchWireDeployment(b, wire, "bench-imgproc", f, tiles,
				pando.WithCodec[[]byte, []byte](pando.RawCodec{}, pando.RawCodec{}))
		})
	}
}

// --- Application-kernel benchmarks (the compute the devices perform) ---

func BenchmarkKernelCollatz(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := apps.CollatzSteps("837799"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelRaytraceFrame(b *testing.B) {
	scene := raytracer.DefaultScene()
	cam := raytracer.OrbitCamera(1.0, 6, 2.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = scene.Render(cam, 96, 72)
	}
	b.ReportMetric(float64(96*72), "pixels/op")
}

func BenchmarkKernelMine(b *testing.B) {
	tpl := chain.Block{Index: 1, Prev: "00aa", Data: "bench", Bits: 255}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := chain.Mine(chain.Attempt{Block: tpl, Start: 0, End: 1024})
		if r.Found {
			b.Fatal("found at difficulty 255?!")
		}
	}
	b.ReportMetric(1024, "hashes/op")
}

func BenchmarkKernelBoxBlur(b *testing.B) {
	tile := landsat.GenerateTile(1, landsat.DefaultSize, landsat.DefaultSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := landsat.BoxBlur(tile, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelQLearnTrain(b *testing.B) {
	p := qlearn.Params{
		Alpha: 0.5, Gamma: 0.95, Epsilon: 0.1,
		Episodes: 50, MaxSteps: 100, Seed: 3, GridSize: 6,
	}
	var steps int
	for i := 0; i < b.N; i++ {
		o, err := qlearn.Train(p)
		if err != nil {
			b.Fatal(err)
		}
		steps = o.Steps
	}
	b.ReportMetric(float64(steps), "sim_steps/op")
}

func BenchmarkKernelSLTest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := apps.RunRandomCheck(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatalf("seed %d: %v", i, rep.Violations)
		}
	}
}
