package pando_test

// Shared-fleet acceptance tests: many concurrent typed jobs on one pool
// of volunteers, with demand-weighted leasing and re-assignment of
// workers when a job completes.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	pando "pando"
	"pando/internal/netsim"
)

// solo runs a dedicated single-job deployment and returns its outputs.
func solo[I, O any](t *testing.T, name string, f func(I) (O, error), inputs []I) []O {
	t.Helper()
	p := pando.New(name, f,
		pando.WithChannelConfig(pando.ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}),
		pando.WithoutRegistry())
	defer p.Close()
	p.AddLocalWorkers(2)
	out, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatalf("solo %s: %v", name, err)
	}
	return out
}

// TestPoolSharedFleetTwoJobs is the acceptance scenario: two jobs with
// different value types run concurrently on one pool with a shared
// volunteer fleet; both outputs are byte-identical to solo runs, and
// when the first job finishes its workers are re-leased to the second,
// observable in per-job Stats.
func TestPoolSharedFleetTwoJobs(t *testing.T) {
	const nInts = 60
	const nStrs = 400
	square := func(v int) (int, error) { return v * v, nil }
	shout := func(s string) (string, error) {
		time.Sleep(200 * time.Microsecond) // keep job B alive past job A
		return strings.ToUpper(s) + "!", nil
	}

	intIn := make([]int, nInts)
	for i := range intIn {
		intIn[i] = i
	}
	strIn := make([]string, nStrs)
	for i := range strIn {
		strIn[i] = fmt.Sprintf("item-%d", i)
	}

	wantInts := solo(t, integName("pool-square"), square, intIn)
	wantStrs := solo(t, integName("pool-shout"), shout, strIn)

	pool := pando.NewPool(
		pando.WithChannelConfig(pando.ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}),
		pando.WithRebalanceInterval(25*time.Millisecond),
	)
	defer pool.Close()
	jobA := pando.Map(pool, integName("pool-square"), square, pando.WithoutRegistry())
	jobB := pando.Map(pool, integName("pool-shout"), shout, pando.WithoutRegistry())
	defer jobA.Close()
	defer jobB.Close()

	const fleetSize = 4
	for i := 0; i < fleetSize; i++ {
		pool.AddWorker(fmt.Sprintf("device-%d", i+1), netsim.LAN, 0, -1)
	}

	var wg sync.WaitGroup
	var gotInts []int
	var gotStrs []string
	var errA, errB error
	wg.Add(2)
	go func() {
		defer wg.Done()
		gotInts, errA = jobA.ProcessSlice(context.Background(), intIn)
	}()
	go func() {
		defer wg.Done()
		gotStrs, errB = jobB.ProcessSlice(context.Background(), strIn)
	}()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("pool run failed: jobA=%v jobB=%v", errA, errB)
	}

	if len(gotInts) != len(wantInts) {
		t.Fatalf("jobA emitted %d outputs, want %d", len(gotInts), len(wantInts))
	}
	for i := range wantInts {
		if gotInts[i] != wantInts[i] {
			t.Fatalf("jobA out[%d] = %d, want %d (must match the solo run exactly)", i, gotInts[i], wantInts[i])
		}
	}
	if len(gotStrs) != len(wantStrs) {
		t.Fatalf("jobB emitted %d outputs, want %d", len(gotStrs), len(wantStrs))
	}
	for i := range wantStrs {
		if gotStrs[i] != wantStrs[i] {
			t.Fatalf("jobB out[%d] = %q, want %q (must match the solo run exactly)", i, gotStrs[i], wantStrs[i])
		}
	}

	// Re-leasing: job A (short) finished while job B (long) was still
	// running; A's workers moved over, so job B's accounting must show
	// the whole fleet participating.
	statsB := jobB.Stats()
	active := 0
	for _, w := range statsB {
		if strings.HasPrefix(w.Name, "device-") && w.Items > 0 {
			active++
		}
	}
	if active < fleetSize {
		t.Fatalf("only %d of %d shared devices processed for job B; workers were not re-leased when job A completed\nstats: %+v",
			active, fleetSize, statsB)
	}
	// Accounting cross-check: each job's devices account exactly its
	// stream (no cross-job bleed).
	if total := jobA.TotalItems(); total != nInts {
		t.Fatalf("jobA accounted %d items, want %d", total, nInts)
	}
	if total := jobB.TotalItems(); total != nStrs {
		t.Fatalf("jobB accounted %d items, want %d", total, nStrs)
	}
}

// TestPoolParksVolunteersUntilFirstJob: a fleet can be assembled before
// any job exists; volunteers park (welcome delayed) and are leased the
// moment the first Map'd job binds work.
func TestPoolParksVolunteersUntilFirstJob(t *testing.T) {
	pool := pando.NewPool(
		pando.WithChannelConfig(pando.ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}))
	defer pool.Close()

	pool.AddWorker("early-bird", netsim.Loopback, 0, -1)
	time.Sleep(50 * time.Millisecond) // volunteer parks; no job yet

	workers := pool.Workers()
	if len(workers) != 1 || workers[0].State != "parked" {
		t.Fatalf("expected one parked worker before any job, got %+v", workers)
	}

	job := pando.Map(pool, integName("parked"), func(v int) (int, error) { return v + 1, nil },
		pando.WithoutRegistry())
	defer job.Close()
	got, err := job.ProcessSlice(context.Background(), []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("got %v", got)
	}
}

// TestPoolMapOnClosedPoolErrors: mapping a job onto a closed pool must
// surface an error on Process instead of hanging with no workers.
func TestPoolMapOnClosedPoolErrors(t *testing.T) {
	pool := pando.NewPool()
	pool.Close()
	job := pando.Map(pool, integName("closed-pool"), func(v int) (int, error) { return v, nil },
		pando.WithoutRegistry())
	defer job.Close()
	_, err := job.ProcessSlice(context.Background(), []int{1})
	if err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("err = %v, want a pool-closed failure", err)
	}
}

// TestPoolHTTPStatsPerJob: the pool's /stats JSON carries the live
// worker set and one per-device block per job.
func TestPoolHTTPStatsPerJob(t *testing.T) {
	pool := pando.NewPool(
		pando.WithChannelConfig(pando.ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}))
	defer pool.Close()
	nameA, nameB := integName("http-a"), integName("http-b")
	jobA := pando.Map(pool, nameA, func(v int) (int, error) { return v, nil }, pando.WithoutRegistry())
	jobB := pando.Map(pool, nameB, func(s string) (string, error) { return s, nil }, pando.WithoutRegistry())
	defer jobA.Close()
	defer jobB.Close()
	pool.AddLocalWorkers(2)

	// Job B stays live (input held open) so the worker set is populated
	// when /stats is queried; job A runs to completion first.
	bIn := make(chan string)
	bOutC, bErrC := jobB.Process(context.Background(), bIn)
	bDone := make(chan struct{})
	go func() {
		for range bOutC {
		}
		<-bErrC
		close(bDone)
	}()
	bIn <- "x" // at least one value through job B

	if _, err := jobA.ProcessSlice(context.Background(), []int{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}

	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := pool.ServeHTTPInfo(httpLn, pando.Invitation{Transport: "ws", DataAddr: "nowhere:1"})
	defer srv.Close()

	resp, err := http.Get("http://" + httpLn.Addr().String() + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Workers []map[string]any            `json:"workers"`
		Jobs    map[string][]map[string]any `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if _, ok := stats.Jobs[nameA]; !ok {
		t.Fatalf("/stats lacks job %q: %+v", nameA, stats.Jobs)
	}
	if _, ok := stats.Jobs[nameB]; !ok {
		t.Fatalf("/stats lacks job %q: %+v", nameB, stats.Jobs)
	}
	items := 0.0
	for _, row := range stats.Jobs[nameA] {
		if v, ok := row["Items"].(float64); ok {
			items += v
		}
	}
	if items != 4 {
		t.Fatalf("job %q accounts %v items in /stats, want 4", nameA, items)
	}
	if len(stats.Workers) == 0 {
		t.Fatal("/stats lacks the live worker set")
	}
	close(bIn)
	<-bDone
}

// TestPoolFairShareRebalance: with two long-running jobs and four
// workers, the fair-share scan spreads leases across both jobs instead
// of leaving either starved.
func TestPoolFairShareRebalance(t *testing.T) {
	pool := pando.NewPool(
		pando.WithChannelConfig(pando.ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}),
		pando.WithRebalanceInterval(10*time.Millisecond),
	)
	defer pool.Close()
	slow := func(v int) (int, error) {
		time.Sleep(time.Millisecond)
		return v, nil
	}
	jobA := pando.Map(pool, integName("fair-a"), slow, pando.WithoutRegistry())
	jobB := pando.Map(pool, integName("fair-b"), slow, pando.WithoutRegistry())
	defer jobA.Close()
	defer jobB.Close()

	inputs := make([]int, 300)
	for i := range inputs {
		inputs[i] = i
	}
	var wg sync.WaitGroup
	wg.Add(2)
	var errA, errB error
	go func() { defer wg.Done(); _, errA = jobA.ProcessSlice(context.Background(), inputs) }()
	go func() { defer wg.Done(); _, errB = jobB.ProcessSlice(context.Background(), inputs) }()

	for i := 0; i < 4; i++ {
		pool.AddWorker(fmt.Sprintf("fair-dev-%d", i+1), netsim.Loopback, 0, -1)
	}
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("jobA=%v jobB=%v", errA, errB)
	}
	if a, b := jobA.TotalItems(), jobB.TotalItems(); a != 300 || b != 300 {
		t.Fatalf("items: jobA=%d jobB=%d, want 300 each", a, b)
	}
	// Both jobs actually held workers: every stream completed and both
	// accounted full streams, which is only possible if leases reached
	// both sides (a starved job would deadlock the WaitGroup).
}
