package pando_test

// Runnable godoc examples for the public API.

import (
	"context"
	"fmt"
	"sort"
	"strings"

	pando "pando"
)

// The simplest deployment: a streaming map over local workers.
func ExampleNew() {
	p := pando.New("example-doc-square", func(v int) (int, error) {
		return v * v, nil
	})
	defer p.Close()
	p.AddLocalWorkers(2)

	out, err := p.ProcessSlice(context.Background(), []int{1, 2, 3, 4})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(out)
	// Output: [1 4 9 16]
}

// Results arrive in input order even though devices process values
// concurrently and at different speeds — the declarative-concurrency
// property of the programming model.
func ExampleNew_ordering() {
	p := pando.New("example-doc-upper", func(s string) (string, error) {
		return strings.ToUpper(s), nil
	})
	defer p.Close()
	p.AddLocalWorkers(4)

	out, err := p.ProcessSlice(context.Background(),
		[]string{"pando", "maps", "streams", "in", "order"})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(strings.Join(out, " "))
	// Output: PANDO MAPS STREAMS IN ORDER
}

// WithUnordered emits results in completion order, the variant the paper
// recommends for synchronous parallel search.
func ExampleWithUnordered() {
	p := pando.New("example-doc-unordered", func(v int) (int, error) {
		return v * 10, nil
	}, pando.WithUnordered())
	defer p.Close()
	p.AddLocalWorkers(3)

	out, err := p.ProcessSlice(context.Background(), []int{1, 2, 3, 4, 5})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sort.Ints(out) // completion order varies; the set does not
	fmt.Println(out)
	// Output: [10 20 30 40 50]
}

// Process consumes and produces channels, supporting unbounded streams.
func ExamplePando_Process() {
	p := pando.New("example-doc-stream", func(v int) (int, error) {
		return v + 100, nil
	})
	defer p.Close()
	p.AddLocalWorkers(2)

	in := make(chan int)
	go func() {
		defer close(in)
		for i := 1; i <= 3; i++ {
			in <- i
		}
	}()
	outc, errc := p.Process(context.Background(), in)
	for v := range outc {
		fmt.Println(v)
	}
	if err := <-errc; err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// 101
	// 102
	// 103
}

// Handler adapts a typed function into the volunteer registry form — the
// Go equivalent of the paper's Figure 2 glue code.
func ExampleHandler() {
	h := pando.Handler(func(v int) (int, error) { return v * 2, nil })
	out, err := h([]byte("21"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(string(out))
	// Output: 42
}
