package pando

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pando/internal/netsim"
)

var nameSeq atomic.Int64

func uniqueName(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, nameSeq.Add(1))
}

func TestProcessSliceLocalWorkers(t *testing.T) {
	p := New(uniqueName("square"), func(v int) (int, error) { return v * v, nil })
	defer p.Close()
	p.AddLocalWorkers(4)

	inputs := make([]int, 50)
	for i := range inputs {
		inputs[i] = i + 1
	}
	got, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("got %d results, want 50", len(got))
	}
	for i, v := range got {
		if v != (i+1)*(i+1) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestProcessChannelsStreaming(t *testing.T) {
	p := New(uniqueName("upper"), func(s string) (string, error) {
		return strings.ToUpper(s), nil
	})
	defer p.Close()
	p.AddLocalWorkers(2)

	in := make(chan string)
	outc, errc := p.Process(context.Background(), in)
	go func() {
		defer close(in)
		for _, s := range []string{"a", "b", "c"} {
			in <- s
		}
	}()
	var got []string
	for v := range outc {
		got = append(got, v)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "A" || got[2] != "C" {
		t.Fatalf("got %v", got)
	}
}

func TestProcessContextCancellation(t *testing.T) {
	p := New(uniqueName("slow"), func(v int) (int, error) {
		time.Sleep(5 * time.Millisecond)
		return v, nil
	})
	defer p.Close()
	p.AddLocalWorkers(1)

	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan int)
	go func() {
		// Deliberately never closes in: cancellation must be what ends
		// the stream.
		i := 0
		for {
			select {
			case in <- i:
				i++
			case <-ctx.Done():
				return
			}
		}
	}()
	outc, errc := p.Process(ctx, in)
	<-outc // at least one result
	cancel()
	for range outc {
	}
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestStructuredValues(t *testing.T) {
	type frame struct {
		Index  int     `json:"index"`
		Angle  float64 `json:"angle"`
		Pixels string  `json:"pixels,omitempty"`
	}
	p := New(uniqueName("render"), func(f frame) (frame, error) {
		f.Pixels = fmt.Sprintf("rendered@%.2f", f.Angle)
		return f, nil
	})
	defer p.Close()
	p.AddLocalWorkers(3)

	var inputs []frame
	for i := 0; i < 12; i++ {
		inputs = append(inputs, frame{Index: i, Angle: float64(i) * 0.52})
	}
	got, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range got {
		if f.Index != i || f.Pixels == "" {
			t.Fatalf("got[%d] = %+v", i, f)
		}
	}
}

func TestUnorderedOption(t *testing.T) {
	p := New(uniqueName("id"), func(v int) (int, error) { return v, nil }, WithUnordered())
	defer p.Close()
	p.AddLocalWorkers(3)
	got, err := p.ProcessSlice(context.Background(), []int{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("got %v, want all of 1..8 exactly once", got)
	}
}

func TestSimulatedWorkersCrashRecovery(t *testing.T) {
	p := New(uniqueName("inc"), func(v int) (int, error) { return v + 1, nil },
		WithBatch(2),
		WithChannelConfig(ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}))
	defer p.Close()
	p.AddSimulatedWorkers(2, "crashy", netsim.LAN, time.Millisecond, 4)
	p.AddSimulatedWorkers(1, "steady", netsim.LAN, 0, -1)

	inputs := make([]int, 60)
	for i := range inputs {
		inputs[i] = i
	}
	got, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("got %d results, want 60", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	p := New(uniqueName("acct"), func(v int) (int, error) { return v, nil })
	defer p.Close()
	p.AddLocalWorkers(2)
	if _, err := p.ProcessSlice(context.Background(), []int{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if p.TotalItems() != 5 {
		t.Fatalf("TotalItems = %d, want 5", p.TotalItems())
	}
	total := 0
	for _, w := range p.Stats() {
		total += w.Items
	}
	if total != 5 {
		t.Fatalf("stats total = %d, want 5", total)
	}
}

func TestEmptyInputCompletes(t *testing.T) {
	p := New(uniqueName("empty"), func(v int) (int, error) { return v, nil })
	defer p.Close()
	p.AddLocalWorkers(1)
	got, err := p.ProcessSlice(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestHandlerAdapterErrors(t *testing.T) {
	h := Handler(func(v int) (int, error) {
		if v < 0 {
			return 0, errors.New("negative")
		}
		return v, nil
	})
	if _, err := h([]byte("not-json")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := h([]byte("-3")); err == nil {
		t.Fatal("expected application error")
	}
	out, err := h([]byte("7"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "7" {
		t.Fatalf("out = %s", out)
	}
}

func TestInfiniteStreamWithEarlyStop(t *testing.T) {
	// Laziness makes infinite input streams usable: consume a few results
	// then cancel.
	p := New(uniqueName("inf"), func(v int) (int, error) { return v * 10, nil })
	defer p.Close()
	p.AddLocalWorkers(2)

	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan int)
	go func() {
		for i := 0; ; i++ {
			select {
			case in <- i:
			case <-ctx.Done():
				close(in)
				return
			}
		}
	}()
	outc, errc := p.Process(ctx, in)
	for i := 0; i < 10; i++ {
		if _, ok := <-outc; !ok {
			t.Fatal("stream ended early")
		}
	}
	cancel()
	for range outc {
	}
	<-errc
}

func TestWithGroupEndToEnd(t *testing.T) {
	p := New(uniqueName("grouped"), func(v int) (int, error) { return v * 3, nil },
		WithBatch(8), WithGroup(4))
	defer p.Close()
	p.AddLocalWorkers(2)
	inputs := make([]int, 50)
	for i := range inputs {
		inputs[i] = i
	}
	got, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("got %d results", len(got))
	}
	for i, v := range got {
		if v != i*3 {
			t.Fatalf("got[%d] = %d (ordered through grouped frames)", i, v)
		}
	}
}

func TestWithGroupCrashRecovery(t *testing.T) {
	p := New(uniqueName("grouped-crash"), func(v int) (int, error) { return v, nil },
		WithBatch(8), WithGroup(4),
		WithChannelConfig(ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}))
	defer p.Close()
	p.AddSimulatedWorkers(1, "crashy", netsim.LAN, time.Millisecond, 5)
	p.AddSimulatedWorkers(1, "steady", netsim.LAN, 0, -1)
	inputs := make([]int, 60)
	for i := range inputs {
		inputs[i] = i
	}
	got, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("got %d results", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMemoryBoundWithSpill(t *testing.T) {
	// Bounded-memory streaming end to end: a tiny window plus a spill
	// segment, fast local workers, a consumer that reads one result at a
	// time. The output must be the exact ordered stream an unbounded run
	// would produce, and the transient spill file must be gone after
	// Close.
	spillPath := filepath.Join(t.TempDir(), "job.spill")
	p := New(uniqueName("bounded"), func(v int) (int, error) { return v * 2, nil },
		WithMemoryBound(4), WithSpill(spillPath))
	p.AddLocalWorkers(4)

	const n = 500
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}
	got, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*2)
		}
	}
	p.Close()
	if _, err := os.Stat(spillPath); !os.IsNotExist(err) {
		t.Fatalf("spill file still exists after Close: %v", err)
	}
}

func TestMemoryBoundBackpressureOnly(t *testing.T) {
	// The bound without a store: backpressure alone must still deliver
	// the full ordered stream, just more slowly when the consumer lags.
	p := New(uniqueName("gated"), func(v int) (int, error) { return v + 7, nil },
		WithMemoryBound(3))
	defer p.Close()
	p.AddLocalWorkers(3)

	in := make(chan int)
	go func() {
		for i := 0; i < 200; i++ {
			in <- i
		}
		close(in)
	}()
	outc, errc := p.Process(context.Background(), in)
	i := 0
	for v := range outc {
		if v != i+7 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+7)
		}
		i++
		if i%10 == 0 {
			time.Sleep(time.Millisecond) // lagging consumer
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if i != 200 {
		t.Fatalf("got %d results, want 200", i)
	}
}
