// Imageproc: the paper's image-processing application in two variants —
// the http version (§4.1), where workers fetch tiles from an HTTP server
// and post blurred results back synchronously, and the stubborn p2p
// version (§4.3), where the result data travels over a failure-prone
// DAT/WebTorrent-like store and inputs are resubmitted until their data
// is actually downloadable.
//
//	go run ./examples/imageproc [-tiles 16]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	pando "pando"
	"pando/internal/apps"
	"pando/internal/landsat"
	"pando/internal/pullstream"
)

func main() {
	var tiles = flag.Int("tiles", 16, "tiles to process")
	flag.Parse()

	// --- Variant 1: http distribution (synchronous transfers). ---
	srv := landsat.NewServer(96, 96)
	base, err := srv.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	p := pando.New("example-"+apps.ImgProcFunc, apps.BlurTileHTTP)
	p.AddLocalWorkers(4)
	jobs := apps.ImgProcJobs(*tiles, base, 96, 96, 3)
	t0 := time.Now()
	done, err := p.ProcessSlice(context.Background(), jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("http variant: blurred %d tiles in %v; server stored %d results\n",
		len(done), time.Since(t0).Round(time.Millisecond), srv.ResultCount())
	p.Close()

	// Write one before/after pair as PNGs for inspection.
	if blurred, ok := srv.Result(0); ok {
		writePNG("tile0-original.png", landsat.GenerateTile(0, 96, 96))
		writePNG("tile0-blurred.png", blurred)
		fmt.Println("wrote tile0-original.png and tile0-blurred.png")
	}

	// --- Variant 2: stubborn p2p distribution (60%% of shares fail). ---
	store := landsat.NewP2PStore(0.4, 0, time.Now().UnixNano()%1000)
	blur := apps.NewP2PBlur(store)
	p2 := pando.New("example-"+apps.ImgBlurP2P, blur)
	defer p2.Close()
	p2.AddLocalWorkers(4)

	jobOf := func(id int) apps.TileJob {
		return apps.TileJob{ID: id, Width: 96, Height: 96, Radius: 3}
	}
	var p2pJobs []apps.TileJob
	for i := 0; i < *tiles; i++ {
		p2pJobs = append(p2pJobs, jobOf(i))
	}

	// Wrap the distributed map in the stubborn feedback loop.
	distributed := func(src pullstream.Source[apps.TileJob]) pullstream.Source[apps.TileDone] {
		in, errc := pullstream.ToChan(src)
		_ = errc
		out, _ := p2.Process(context.Background(), in)
		return pullstream.FromChan(out, nil)
	}
	th := apps.StubbornP2P(distributed, store, jobOf)

	t1 := time.Now()
	got, err := pullstream.Collect(th(pullstream.Values(p2pJobs...)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p2p variant : %d tiles confirmed downloadable in %v (despite failing shares)\n",
		len(got), time.Since(t1).Round(time.Millisecond))
	for _, d := range got {
		if _, err := store.Download(d.ID); err != nil {
			log.Fatalf("tile %d output but not downloadable: %v", d.ID, err)
		}
	}
	fmt.Println("every output tile verified present in the p2p store")
}

func writePNG(path string, t landsat.Tile) {
	f, err := os.Create(path)
	if err != nil {
		log.Printf("writePNG %s: %v", path, err)
		return
	}
	defer f.Close()
	if err := landsat.EncodePNG(f, t); err != nil {
		log.Printf("writePNG %s: %v", path, err)
	}
}
