// Multijob: one shared volunteer fleet serving two concurrent streaming
// maps — the personal-volunteer-computing promise taken literally: the
// same devices a person contributed once are reused across all of their
// applications.
//
// Two jobs with different value types run at the same time on four
// shared devices. The pool leases workers to both with demand-weighted
// fair share; when the short job completes, its devices are reassigned
// to the long job over the same connections (no rejoin, no idling).
//
//	go run ./examples/multijob
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	pando "pando"
	"pando/internal/netsim"
	"pando/internal/transport"
)

func main() {
	pool := pando.NewPool(
		pando.WithChannelConfig(transport.Config{HeartbeatInterval: 25 * time.Millisecond}),
		pando.WithRebalanceInterval(25*time.Millisecond),
	)
	defer pool.Close()

	// Two typed jobs on the same fleet: integers through one, strings
	// through the other.
	squares := pando.Map(pool, "multijob-square", func(v int) (int, error) {
		time.Sleep(2 * time.Millisecond)
		return v * v, nil
	})
	defer squares.Close()
	shouts := pando.Map(pool, "multijob-shout", func(s string) (string, error) {
		time.Sleep(2 * time.Millisecond)
		return strings.ToUpper(s) + "!", nil
	})
	defer shouts.Close()

	// Four shared devices. They advertise the wildcard function list, so
	// the pool may lease them to any current or future job.
	for i := 1; i <= 4; i++ {
		pool.AddWorker(fmt.Sprintf("device-%d", i), netsim.LAN, 0, -1)
	}

	ints := make([]int, 20) // the short job
	for i := range ints {
		ints[i] = i + 1
	}
	words := make([]string, 120) // the long job
	for i := range words {
		words[i] = fmt.Sprintf("word-%d", i)
	}

	var wg sync.WaitGroup
	var sq []int
	var sh []string
	wg.Add(2)
	go func() {
		defer wg.Done()
		var err error
		if sq, err = squares.ProcessSlice(context.Background(), ints); err != nil {
			log.Fatal(err)
		}
	}()
	go func() {
		defer wg.Done()
		var err error
		if sh, err = shouts.ProcessSlice(context.Background(), words); err != nil {
			log.Fatal(err)
		}
	}()
	wg.Wait()

	fmt.Println("squares:", sq[:10], "...")
	fmt.Println("shouts :", sh[:3], "...")

	fmt.Println("\nper-job accounting (every shared device served the long job too):")
	for name, rows := range pool.Stats() {
		fmt.Printf("  %s\n", name)
		for _, w := range rows {
			fmt.Printf("    %-10s %3d item(s)\n", w.Name, w.Items)
		}
	}
	fmt.Println("\nthe short job finished first; its devices were re-leased to the", "long job over the same connections")
}
