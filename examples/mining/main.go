// Mining: the paper's §4.2 synchronous parallel search — a monitor
// lazily hands mining attempts to volunteer devices until a valid nonce
// extends the chain, then everyone moves to the next block. Uses the
// unordered StreamLender variant so valid nonces are reported as soon as
// possible, as the paper recommends.
//
//	go run ./examples/mining [-blocks 4] [-bits 14]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	pando "pando"
	"pando/internal/apps"
	"pando/internal/chain"
)

func main() {
	var (
		blocks = flag.Int("blocks", 4, "blocks to mine")
		bits   = flag.Int("bits", 14, "difficulty: required leading zero bits")
		rng    = flag.Uint64("range", 8192, "nonces per mining attempt")
	)
	flag.Parse()

	c := chain.NewChain(*bits)
	monitor := chain.NewMonitor(c, *rng, *blocks+1, nil) // +1: genesis

	p := pando.New("example-"+apps.MineFunc, apps.MineAttempt, pando.WithUnordered())
	defer p.Close()
	p.AddLocalWorkers(4)

	t0 := time.Now()
	sum, err := apps.RunMining(context.Background(), p, c, monitor)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)

	fmt.Printf("mined %d blocks at difficulty %d bits in %v (%.0f hashes/s, %d attempts)\n",
		sum.BlocksMined, *bits, elapsed.Round(time.Millisecond),
		float64(sum.Hashes)/elapsed.Seconds(), sum.Attempts)
	for _, b := range c.Blocks() {
		fmt.Printf("  #%d nonce=%-10d hash=%s...\n", b.Index, b.Nonce, b.HexHash()[:16])
	}
	if err := c.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("chain verified")
}
