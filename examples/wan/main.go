// WAN: the paper's §5.4 deployment story in one process — a master
// registers on a public signalling server, volunteers across a simulated
// wide-area network bootstrap WebRTC-like direct connections through it
// (the signalling connection closing once established), and the
// computation proceeds with batching hiding the WAN latency.
//
//	go run ./examples/wan [-volunteers 5] [-inputs 200]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"pando/internal/master"
	"pando/internal/netsim"
	"pando/internal/pullstream"
	"pando/internal/transport"
	"pando/internal/worker"
)

func main() {
	var (
		nVol   = flag.Int("volunteers", 5, "volunteers joining over the WAN")
		inputs = flag.Int("inputs", 200, "work items to process")
	)
	flag.Parse()

	cfg := transport.Config{HeartbeatInterval: 100 * time.Millisecond}

	// The public server: a small relay on the open internet (here, behind
	// a simulated WAN link).
	signalLn := netsim.NewListener("public-server", netsim.WAN)
	defer signalLn.Close()
	relay := transport.NewSignalServer()
	go relay.Serve(signalLn, cfg)
	defer relay.Close()

	// The master joins the relay and answers offers with its direct
	// address; it uses the paper's WAN batch size of 4.
	m := master.New[int, int](master.Config{
		FuncName: "square", Batch: 4, Ordered: true, Channel: cfg,
	}, transport.JSONCodec[int]{}, transport.JSONCodec[int]{})
	directLn := netsim.NewListener("master-direct", netsim.WAN)
	defer directLn.Close()
	msc, _, err := signalLn.Dial()
	if err != nil {
		log.Fatal(err)
	}
	masterSignal := transport.NewWSock(msc, cfg)
	if err := transport.JoinSignal(masterSignal, "master"); err != nil {
		log.Fatal(err)
	}
	answerer := transport.NewRTCAnswerer(masterSignal, directLn, cfg)
	defer answerer.Close()
	go m.ServeRTC(answerer)
	fmt.Println("master registered on the public server as \"master\"")

	// Volunteers around Europe: each joins the relay, offers, and ends up
	// on a direct channel to the master.
	square := func(b []byte) ([]byte, error) {
		var v int
		if err := jsonUnmarshal(b, &v); err != nil {
			return nil, err
		}
		return jsonMarshal(v * v)
	}
	dial := func(addr string) (net.Conn, error) {
		c, _, err := directLn.Dial()
		return c, err
	}
	for i := 0; i < *nVol; i++ {
		vsc, _, err := signalLn.Dial()
		if err != nil {
			log.Fatal(err)
		}
		signal := transport.NewWSock(vsc, cfg)
		v := &worker.Volunteer{
			Name:       fmt.Sprintf("node-%d", i+1),
			Handler:    square,
			Channel:    cfg,
			CrashAfter: -1,
			Delay:      time.Duration(1+i) * time.Millisecond, // heterogeneous
		}
		id := fmt.Sprintf("node-%d", i+1)
		go v.JoinRTC(signal, id, "master", dial)
	}

	start := time.Now()
	out := m.Bind(pullstream.Count(*inputs))
	got, err := pullstream.Collect(out)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	for i, v := range got {
		if v != (i+1)*(i+1) {
			log.Fatalf("got[%d] = %d: ordering violated", i, v)
		}
	}
	fmt.Printf("processed %d inputs over the WAN in %v (%.0f items/s), outputs in order\n",
		len(got), elapsed.Round(time.Millisecond), float64(len(got))/elapsed.Seconds())
	for _, w := range m.Stats() {
		fmt.Printf("  %-8s %4d items\n", w.Name, w.Items)
	}
}

// Minimal JSON helpers keep the example self-contained.
func jsonUnmarshal(b []byte, v *int) error {
	_, err := fmt.Sscanf(string(b), "%d", v)
	return err
}

func jsonMarshal(v int) ([]byte, error) {
	return []byte(fmt.Sprintf("%d", v)), nil
}
