// Quickstart: the smallest possible Pando program, plus the deployment
// example of the paper's Figure 4 — devices join dynamically, one crashes
// mid-stream, the output still arrives complete and in order.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	pando "pando"
	"pando/internal/netsim"
	"pando/internal/transport"
)

func main() {
	// 1. The minimal streaming map: square numbers on 4 local workers.
	squares := pando.New("quickstart-square", func(v int) (int, error) {
		return v * v, nil
	})
	squares.AddLocalWorkers(4)

	inputs := make([]int, 10)
	for i := range inputs {
		inputs[i] = i + 1
	}
	out, err := squares.ProcessSlice(context.Background(), inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("squares:", out)
	squares.Close()

	// 2. The Figure 4 scenario: a slow "tablet" joins, then a faster
	// "phone"; the tablet crashes after one frame; the phone transparently
	// takes over the frame the tablet dropped. Outputs stay ordered.
	render := pando.New("quickstart-render", func(frame string) (string, error) {
		time.Sleep(20 * time.Millisecond) // pretend to raytrace
		return "f(" + frame + ")", nil
	},
		pando.WithBatch(1),
		pando.WithChannelConfig(transport.Config{HeartbeatInterval: 20 * time.Millisecond}),
	)
	defer render.Close()

	// The tablet crashes after rendering 1 frame (a browser tab closed).
	render.AddSimulatedWorkers(1, "tablet", netsim.LAN, 10*time.Millisecond, 1)
	// The phone joins a moment later and carries the rest.
	go func() {
		time.Sleep(30 * time.Millisecond)
		render.AddSimulatedWorkers(1, "phone", netsim.LAN, 0, -1)
	}()

	frames, err := render.ProcessSlice(context.Background(), []string{"x1", "x2", "x3"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("frames :", frames)
	for _, w := range render.Stats() {
		fmt.Printf("  %-10s processed %d item(s)\n", w.Name, w.Items)
	}
	fmt.Println("the tablet crashed mid-stream; Pando re-lent its frame transparently")
}
