// Raytrace: the paper's §2.1 usage example as one program — render the
// frames of a rotating-camera animation in parallel on several simulated
// devices and assemble them into an animated GIF, in order.
//
//	go run ./examples/raytrace [-frames 16] [-out animation.gif]
//
// This is the in-process equivalent of the paper's Unix pipeline
// (Figure 3): ./generate-angles.js | pando render.js --stdin | ./gif-encoder.js
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	pando "pando"
	"pando/internal/apps"
	"pando/internal/netsim"
)

func main() {
	var (
		frames = flag.Int("frames", 12, "frames in the animation")
		outPth = flag.String("out", "animation.gif", "output GIF path")
	)
	flag.Parse()

	p := pando.New("example-"+apps.RenderFunc, apps.RenderFrame)
	defer p.Close()
	// A heterogeneous personal collection: a fast laptop (2 cores), a
	// phone, and a slow old tablet, all on the Wi-Fi.
	p.AddSimulatedWorkers(2, "laptop", netsim.LAN, 0, -1)
	p.AddSimulatedWorkers(1, "phone", netsim.LAN, 5*time.Millisecond, -1)
	p.AddSimulatedWorkers(1, "tablet", netsim.LAN, 20*time.Millisecond, -1)

	start := time.Now()
	angles := apps.GenerateAngles(*frames) // generate-angles
	rendered, err := p.ProcessSlice(context.Background(), angles)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	f, err := os.Create(*outPth)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := apps.EncodeAnimation(f, rendered); err != nil { // gif-encoder
		log.Fatal(err)
	}

	fmt.Printf("rendered %d frames (%dx%d) in %v -> %s\n",
		*frames, apps.FrameWidth, apps.FrameHeight, elapsed.Round(time.Millisecond), *outPth)
	for _, w := range p.Stats() {
		fmt.Printf("  %-10s %3d frames (%.1f frames/s)\n", w.Name, w.Items, w.Throughput())
	}
}
