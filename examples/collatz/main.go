// Collatz: the paper's §4.1 BOINC-style application — find the starting
// integer with the longest Collatz trajectory in a range, distributing
// the big-number computation across devices.
//
//	go run ./examples/collatz [-start 1] [-count 500]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/big"
	"time"

	pando "pando"
	"pando/internal/apps"
	"pando/internal/netsim"
)

func main() {
	var (
		startN = flag.String("start", "1", "first integer to test (decimal, any size)")
		count  = flag.Int("count", 500, "how many consecutive integers to test")
	)
	flag.Parse()

	start, ok := new(big.Int).SetString(*startN, 10)
	if !ok {
		log.Fatalf("bad -start %q", *startN)
	}

	p := pando.New("example-"+apps.CollatzFunc, apps.CollatzSteps)
	defer p.Close()
	p.AddLocalWorkers(4)
	p.AddSimulatedWorkers(2, "friend-phone", netsim.LAN, time.Millisecond, -1)

	t0 := time.Now()
	results, err := p.ProcessSlice(context.Background(), apps.CollatzInputs(start, *count))
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)

	best, _ := apps.MaxCollatz(results)
	totalOps := 0
	for _, r := range results {
		totalOps += r.Ops
	}
	fmt.Printf("tested %d integers from %s in %v (%.0f Bignum-ops/s)\n",
		*count, start, elapsed.Round(time.Millisecond), float64(totalOps)/elapsed.Seconds())
	fmt.Printf("longest trajectory: N=%s with %d steps\n", best.N, best.Steps)
	for _, w := range p.Stats() {
		fmt.Printf("  %-15s %4d inputs\n", w.Name, w.Items)
	}
}
