// Package pando is a Go implementation of Pando, the personal volunteer
// computing tool of Lavoie et al. (MIDDLEWARE 2019): it parallelizes the
// application of a function on a stream of values across a dynamically
// varying number of failure-prone devices contributed by volunteers.
//
// The programming model is a streaming version of the functional map
// operation (paper Table 1): Pando applies f to inputs x1, x2, ... and
// outputs f(x1), f(x2), ... in input order, reading inputs lazily, with a
// single copy of each input in flight, adapting to device speed, and
// tolerating crash-stop failures transparently.
//
// Quickstart:
//
//	p := pando.New("square", func(v int) (int, error) { return v * v, nil })
//	p.AddLocalWorkers(4)
//	outs, errs := p.Process(ctx, inputs) // channels in, channels out
//
// Remote volunteers join over the WebSocket-like transport (ServeWS) or
// through the WebRTC-like bootstrap via a public signalling server
// (ServeRTC); see the examples directory and cmd/pando.
package pando

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"pando/internal/fleet"
	"pando/internal/journal"
	"pando/internal/master"
	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/pullstream"
	"pando/internal/sched"
	"pando/internal/shard"
	"pando/internal/transport"
	"pando/internal/verify"
	"pando/internal/worker"
)

// Re-exported configuration types. They alias internal types so the whole
// toolkit is usable through this package alone.
type (
	// Acceptor abstracts a listener accepting volunteer connections
	// (net.Listener satisfies it, as does the simulated network's).
	Acceptor = transport.Acceptor
	// ChannelConfig tunes heartbeat failure detection.
	ChannelConfig = transport.Config
	// WorkerStats is the per-device throughput accounting.
	WorkerStats = master.WorkerStats
	// ShardStats is one shard master's row in a sharded deployment's
	// statistics (range, backlog, merge-buffer depth, lineage).
	ShardStats = master.ShardStats
	// Dialer opens a raw connection to a candidate address during the
	// WebRTC-like bootstrap.
	Dialer = transport.Dialer
	// Codec serializes stream values for the wire; see WithCodec.
	Codec[T any] = transport.Codec[T]
	// JSONCodec is the default payload codec.
	JSONCodec[T any] = transport.JSONCodec[T]
	// RawCodec passes []byte payloads through untouched; with the binary
	// wire format they cross the network verbatim.
	RawCodec = transport.RawCodec
	// PoolWorker is one live worker-set row of a shared pool.
	PoolWorker = fleet.WorkerInfo
	// Invitation is the deployment bootstrap document served over HTTP.
	Invitation = master.Invitation
	// WorkerRep is one worker's reputation row under WithVerification:
	// score, agreement counts, spot-check tallies and quarantine state.
	WorkerRep = verify.WorkerRep
	// Acceptance is one verified result's audit record: which workers
	// voted for the accepted digest, whether the fast path or a
	// spot-check was involved.
	Acceptance = verify.Acceptance
)

// Wire format tags, for WithWireFormat.
const (
	// WireV1 is the length-prefixed JSON format of the original
	// '/pando/1.0.0' protocol — debuggable, spoken by every peer.
	WireV1 = proto.Version
	// WireV2 is the binary tag-length-value format: raw payload bytes
	// (no base64), varint lengths, binary batches.
	WireV2 = proto.Version2
	// WireV3 is the bandwidth-aware format (the default): v2 envelopes
	// with adaptive per-frame compression and content-addressed payload
	// dedup (repeated payloads travel as SHA-256 references).
	WireV3 = proto.Version3
)

// Option configures a Pando instance.
type Option func(*options)

type options struct {
	batch          int
	adaptMin       int
	adaptMax       int
	speculation    float64
	group          int
	unordered      bool
	channel        transport.Config
	register       bool
	formats        []string
	noCompress     bool
	blobCache      int64
	rebalance      time.Duration
	inCodec        any // transport.Codec[I], stored untyped (Option is not generic)
	outCodec       any // transport.Codec[O]
	checkpoint     string
	resume         bool
	fsync          time.Duration
	highWater      int
	spillPath      string
	shards         int
	shardWindow    int
	shardDir       string
	verifyK        int
	verifyQuorum   int
	spotRate       float64
	trustThreshold float64
}

// WithBatch sets how many values may be in flight per device (the Limiter
// bound). The paper used 2 on LAN/VPN and 4 on WAN deployments to hide
// network latency (§5.5). The window is static: every device gets the
// same bound; see WithAdaptiveLimit for per-device windows.
func WithBatch(n int) Option { return func(o *options) { o.batch = n } }

// WithStaticLimit is WithBatch under its flow-control name: a fixed
// window of n values in flight per device, the original Limiter behavior
// (and the default, with n = 2).
func WithStaticLimit(n int) Option { return WithBatch(n) }

// WithAdaptiveLimit replaces the static pull-limit with a per-device
// adaptive credit window probing within [min, max]: each device's window
// grows while the extra in-flight values keep hiding transmission latency
// (the smoothed result round-trip stays near the best observed) and
// shrinks when they merely queue on a slow device. Fast devices converge
// to large windows, throttled ones to small windows — the batch-size
// sensitivity of the paper's §5.2–5.4 tuned per device at run time.
func WithAdaptiveLimit(min, max int) Option {
	return func(o *options) {
		o.adaptMin = min
		o.adaptMax = max
	}
}

// WithSpeculation enables speculative re-dispatch of stragglers: near the
// tail of the stream, a device whose oldest outstanding value is older
// than factor × the fleet's median per-item service time has its values
// duplicated to idle devices, and the first result wins. The lender's
// at-least-once re-lending makes the duplicates safe; speculation bounds
// tail completion time when a device stalls without crashing.
func WithSpeculation(factor float64) Option {
	return func(o *options) { o.speculation = factor }
}

// WithGroup sends several inputs per network frame (message-level
// batching). The total values in flight per device stays bounded by the
// batch size; grouping additionally reduces per-message overhead, which
// matters for small items on high-latency links.
func WithGroup(n int) Option { return func(o *options) { o.group = n } }

// WithUnordered emits results in completion order instead of input order,
// the relaxation the paper suggests for synchronous parallel search
// (§4.2).
func WithUnordered() Option { return func(o *options) { o.unordered = true } }

// WithChannelConfig tunes heartbeat intervals on volunteer channels.
func WithChannelConfig(cfg ChannelConfig) Option {
	return func(o *options) { o.channel = cfg }
}

// WithRebalanceInterval tunes how often a shared pool's fair-share scan
// moves workers between jobs (NewPool only). Zero keeps the default
// (fleet.DefaultRebalance, 250ms); negative disables the scan — workers
// then move only when their job completes.
func WithRebalanceInterval(d time.Duration) Option {
	return func(o *options) { o.rebalance = d }
}

// WithoutRegistry skips registering the processing function in the global
// volunteer registry (useful when creating many instances with the same
// name in tests).
func WithoutRegistry() Option { return func(o *options) { o.register = false } }

// WithWireFormat restricts which wire formats the deployment negotiates
// with volunteers, best first (WireV3, WireV2, WireV1). The default
// allows all three, preferring the bandwidth-aware format.
// WithWireFormat(WireV1) pins a deployment to the JSON wire for
// debuggability; WithWireFormat(WireV2) enforces the plain binary wire —
// volunteers that cannot speak any allowed format are refused at
// admission rather than silently falling back. Unknown format names are
// programming errors and panic at pando.New, like WithCodec mismatches —
// a typo would otherwise refuse every volunteer at runtime.
func WithWireFormat(names ...string) Option {
	return func(o *options) { o.formats = names }
}

// WithCompression toggles the bandwidth-aware data plane. It is on by
// default: deployments negotiate '/pando/2.2.0', whose adaptive policy
// compresses frames only when the payload is compressible and the link
// is bandwidth-bound, and whose dedup layer sends repeated payloads as
// digest references. WithCompression(false) pins negotiation to the
// plain formats (WireV2, WireV1) — every byte crosses the wire verbatim,
// exactly as before the v3 format existed. An explicit WithWireFormat
// list overrides this toggle either way.
func WithCompression(on bool) Option {
	return func(o *options) { o.noCompress = !on }
}

// WithBlobCache caps the content-addressed blob stores behind payload
// dedup on '/pando/2.2.0' channels: the master-side intern table
// (payload blocks kept so repeats travel as SHA-256 references and
// worker cache misses can be served) and the caches of workers attached
// through AddWorker/AddLocalWorkers. Zero keeps the defaults
// (blob.DefaultInternBytes / blob.DefaultCacheBytes); negative disables
// dedup — payloads always travel in full, compression still applies.
func WithBlobCache(maxBytes int64) Option {
	return func(o *options) { o.blobCache = maxBytes }
}

// WithCheckpoint makes the deployment's progress durable: every completed
// result is journaled (index + encoded payload) to an append-only log at
// path, with periodic compacted snapshots at path+".snap", so a master
// process that crashes mid-stream can be restarted without redoing the
// finished work. Fsyncs are batched (see WithFsyncInterval); a crash
// loses at most the last un-synced batch, whose values are simply
// recomputed on resume.
//
// A fresh deployment refuses to run over a checkpoint that already holds
// progress — resuming a journal recorded for a different input stream
// would corrupt the output — unless WithResume is also set, which is the
// explicit claim that the input stream is the same one the journal was
// recorded against. Open or validation failures are reported by Process /
// ProcessSlice, not at New.
func WithCheckpoint(path string) Option {
	return func(o *options) { o.checkpoint = path }
}

// WithResume restores the completed results found in the WithCheckpoint
// journal: their inputs are skipped at the source (no volunteer redoes
// them) and their results are replayed to the output in order, so the
// resumed run's output stream is exactly what an uninterrupted run would
// have produced. The input stream must be the same one the journal was
// recorded against. Resuming an empty or absent journal is a fresh start,
// which is what a restarted `pando -checkpoint` deployment wants.
func WithResume() Option {
	return func(o *options) { o.resume = true }
}

// WithFsyncInterval tunes the checkpoint journal's fsync batching: larger
// intervals cost less throughput but widen the crash-loss window (values
// to recompute on resume, never output corruption). Zero keeps the
// default (journal.DefaultSyncInterval, 100ms — chosen with the
// internal/bench journal experiment); negative syncs after every record.
func WithFsyncInterval(d time.Duration) Option {
	return func(o *options) { o.fsync = d }
}

// WithMemoryBound caps the master's buffered-result window at hw results
// (groups, when WithGroup is set). Ordered output must buffer results
// that arrive ahead of the emission cursor; unbounded, a slow output
// consumer behind fast volunteers grows that buffer without limit. With
// this bound the master instead pauses input reads once hw results are
// buffered — output backpressure propagates all the way to the input
// source — so a billion-item stream holds O(hw) master state. Pair with
// WithSpill to absorb the overflow on disk instead of slowing the
// volunteers down. hw <= 0 (the default) leaves the window unbounded.
func WithMemoryBound(hw int) Option {
	return func(o *options) { o.highWater = hw }
}

// WithSpill attaches an on-disk overflow segment at path for results past
// the WithMemoryBound window: far-ahead results page out (CRC-checked,
// journal record format) and page back exactly when the output reaches
// their index, so volunteers keep running at full speed ahead of a slow
// consumer while the master's heap stays at O(window). The file is
// transient — truncated at open, removed at Close; nothing is recovered
// from it across runs (that is WithCheckpoint's job). Without
// WithMemoryBound the store is never used. Open failures are reported by
// Process / ProcessSlice, not at New.
func WithSpill(path string) Option {
	return func(o *options) { o.spillPath = path }
}

// WithShards partitions the deployment's input stream across n
// cooperating master shards. Each shard owns a contiguous slice of the
// index space (chunked round-robin), runs its own dispatch engine and
// completion segment, and leases workers independently from the fleet, so
// aggregate dispatch throughput scales with n instead of saturating one
// master's event loop. A merge layer restores global output order with
// O(window) buffering — see WithShardWindow — and when a shard's workers
// all die its range migrates to a fresh sibling (completed results
// restored from the segment copy, the rest recomputed), so the output is
// byte-identical to a single-master run even across shard failures.
//
// Sharding preserves ordered-map semantics only: combining it with
// WithUnordered, WithCheckpoint/WithResume or WithSpill is reported as an
// error by Process / ProcessSlice (per-shard completion segments are the
// sharded counterpart of the checkpoint journal). n <= 1 means a single
// classic master.
func WithShards(n int) Option { return func(o *options) { o.shards = n } }

// WithShardWindow bounds the sharded merge layer's reorder buffer at w
// results (default shard.DefaultWindow). Larger windows let fast shards
// run further ahead of the global emission cursor; smaller windows bound
// master memory more tightly. Zero keeps the default.
func WithShardWindow(w int) Option { return func(o *options) { o.shardWindow = w } }

// WithShardDir places the per-shard completion segments under dir
// (created if missing) instead of a transient temp directory, and leaves
// them on disk at Close — the run's durable record, inspectable after
// the fact. Only meaningful with WithShards.
func WithShardDir(dir string) Option { return func(o *options) { o.shardDir = dir } }

// WithVerification enables Byzantine-tolerant result verification:
// every input is dispatched to k distinct workers (devices, by
// accounting name — several sessions of one device share a vote), and a
// result reaches the output only once quorum of them returned
// byte-identical results (matching SHA-256 digests of the wire
// encoding). Workers whose results disagree with accepted votes lose
// reputation; below the quarantine line they are expelled from the
// fleet (their sessions severed, their name banned, their in-flight
// values re-lent to workers in good standing). Use WithTrustThreshold
// to let long-standing honest workers graduate to a replication-free
// fast path, and WithSpotCheck to keep even trusted workers honest.
//
// Verification needs the ungrouped, unsharded data plane: combining it
// with WithGroup(n > 1) or WithShards is reported as an error by
// Process / ProcessSlice.
func WithVerification(k, quorum int) Option {
	return func(o *options) {
		o.verifyK = k
		o.verifyQuorum = quorum
	}
}

// WithSpotCheck makes the master recompute a deterministic pseudo-random
// sample of accepted results locally (rate in [0,1], the fraction of
// indices checked): if the recomputation disagrees with an accepted
// digest — even a quorum of colluders, or a trusted fast-path result —
// the local truth wins, and every worker that voted for the wrong digest
// is graded against it. Only meaningful with WithVerification.
func WithSpotCheck(rate float64) Option {
	return func(o *options) { o.spotRate = rate }
}

// WithTrustThreshold sets the reputation score (0,1] above which a
// worker's results are accepted without replication — the fast path that
// recovers most of the unreplicated throughput once the fleet has proven
// itself. Zero (the default) disables the fast path: every value is
// replicated k ways forever. Only meaningful with WithVerification.
func WithTrustThreshold(t float64) Option {
	return func(o *options) { o.trustThreshold = t }
}

// WithCodec replaces the JSON payload codecs. The type parameters must
// match the deployment's input and output types — pando.New panics
// otherwise, since a mismatched codec could never encode a single value.
// Pair RawCodec with the binary wire format to move []byte workloads
// (image tiles, ray-trace buffers) with zero serialization overhead.
func WithCodec[I, O any](in Codec[I], out Codec[O]) Option {
	return func(o *options) {
		o.inCodec = in
		o.outCodec = out
	}
}

// flow folds the limit options into one policy. WithAdaptiveLimit wins
// over the static batch; an unset policy keeps the static default.
func (o options) flow() sched.Policy {
	var p sched.Policy
	if o.adaptMin > 0 || o.adaptMax > 0 {
		p = sched.Adaptive(o.adaptMin, o.adaptMax)
	} else if o.batch > 0 {
		p = sched.Static(o.batch)
	}
	p.Speculation = o.speculation
	return p
}

// Pool is a shared volunteer fleet serving many concurrent jobs: the
// same devices a person contributed once are reused across all of their
// applications (the paper's DP1 taken literally). Create jobs on it with
// Map; every job leases workers from the pool, which routes each
// admitted volunteer to a job it can serve, rebalances leases across
// jobs with demand-weighted fair share, and reassigns a worker to the
// next job when its job completes — over the same connection.
type Pool struct {
	fp   *fleet.Pool
	opts options

	mu       sync.Mutex
	handlers map[string]worker.Handler // job name -> payload handler (local workers)
	jobs     []poolJob
	locals   []*worker.Volunteer
	pipes    []*netsim.Pipe
	closed   bool
}

// poolJob is the untyped view of a Map'd deployment the Pool keeps for
// per-job stats.
type poolJob interface {
	Name() string
	Stats() []WorkerStats
	TotalItems() int
}

// NewPool creates a shared fleet. Pool-level options apply
// (WithChannelConfig, WithWireFormat, WithRebalanceInterval); job-level
// options are given to Map per job.
func NewPool(opts ...Option) *Pool {
	o := options{register: true}
	for _, opt := range opts {
		opt(&o)
	}
	checkFormats(o.formats)
	return &Pool{
		fp: fleet.NewPool(fleet.Config{
			Channel:   o.channel,
			Formats:   o.wireFormats(),
			Rebalance: o.rebalance,
		}),
		opts:     o,
		handlers: make(map[string]worker.Handler),
	}
}

// Fleet exposes the underlying fleet pool, e.g. for direct Admit calls
// on embedded transports.
func (p *Pool) Fleet() *fleet.Pool { return p.fp }

// ServeWS accepts remote volunteers over the WebSocket-like transport
// until the acceptor closes, admitting each into the shared fleet. Run
// it on a goroutine.
func (p *Pool) ServeWS(acc Acceptor) error { return p.fp.ServeWS(acc) }

// ServeRTC admits volunteers arriving through the WebRTC-like bootstrap.
// Run it on a goroutine.
func (p *Pool) ServeRTC(answerer *transport.RTCAnswerer) { p.fp.ServeRTC(answerer) }

// AddLocalWorkers attaches n in-process volunteers that serve every job
// of the pool, one per core the user wants to dedicate.
func (p *Pool) AddLocalWorkers(n int) {
	for i := 0; i < n; i++ {
		p.AddWorker(fmt.Sprintf("local-%d", i+1), netsim.Loopback, 0, -1)
	}
}

// AddWorker attaches one in-process volunteer under an exact name,
// connected through a simulated link with a fixed per-item delay and an
// optional crash after crashAfter items (negative: never). The volunteer
// advertises the wildcard function list, so the pool may lease it to any
// current or future job; handlers resolve against the pool's own table
// at (re)assignment time.
func (p *Pool) AddWorker(name string, link netsim.Link, delay time.Duration, crashAfter int) {
	v := &worker.Volunteer{
		Name:           name,
		Channel:        p.opts.channel,
		Delay:          delay,
		CrashAfter:     crashAfter,
		Functions:      []string{"*"},
		BlobCacheBytes: p.opts.blobCache,
		Resolve:        p.resolveHandler,
	}
	pipe := netsim.NewPipe(link)
	p.mu.Lock()
	p.locals = append(p.locals, v)
	p.pipes = append(p.pipes, pipe)
	p.mu.Unlock()
	go func() { _ = v.JoinWS(pipe.A) }()
	go func() { _ = p.fp.Admit(transport.NewWSock(pipe.B, p.opts.channel)) }()
}

func (p *Pool) resolveHandler(name string) (worker.Handler, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	h, ok := p.handlers[name]
	return h, ok
}

// Workers snapshots the pool's live worker set: which device is leased
// to which job, its negotiated wire format and whether it is
// reassignable.
func (p *Pool) Workers() []PoolWorker { return p.fp.Workers() }

// Stats snapshots per-device accounting for every job, keyed by job
// (function) name — the per-job blocks of the /stats JSON.
func (p *Pool) Stats() map[string][]WorkerStats {
	p.mu.Lock()
	jobs := append([]poolJob(nil), p.jobs...)
	p.mu.Unlock()
	out := make(map[string][]WorkerStats, len(jobs))
	for _, j := range jobs {
		out[j.Name()] = j.Stats()
	}
	return out
}

// PoolStats is the /stats JSON of a shared pool: the live worker set
// plus per-job accounting blocks keyed by function name.
type PoolStats struct {
	Workers []PoolWorker             `json:"workers"`
	Jobs    map[string][]WorkerStats `json:"jobs"`
}

// ServeHTTPInfo serves the pool's deployment invitation on "/" and the
// pool-wide statistics on "/stats": the live worker set (who is leased
// to which job) and one per-device accounting block per job. It returns
// immediately; the server runs on its own goroutines.
func (p *Pool) ServeHTTPInfo(ln net.Listener, inv Invitation) *http.Server {
	if inv.Version == "" {
		inv.Version = proto.Version
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(inv)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(PoolStats{
			Workers: p.Workers(),
			Jobs:    p.Stats(),
		})
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv
}

// Close shuts the shared fleet down: admissions are refused, parked
// volunteers dismissed, and the in-process volunteers' links cut. Jobs
// created with Map have their own lifecycles — Close each Pando (or let
// its stream complete) before closing the pool it leases from.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	pipes := p.pipes
	p.pipes = nil
	p.mu.Unlock()
	p.fp.Close()
	for _, pipe := range pipes {
		pipe.Cut()
	}
}

// register adds a Map'd job to the pool's tables.
func (p *Pool) register(j poolJob, h worker.Handler) {
	p.mu.Lock()
	p.jobs = append(p.jobs, j)
	p.handlers[j.Name()] = h
	p.mu.Unlock()
}

// unregister removes a closing job. The handler table entry survives as
// long as any other registered job shares the name (WithoutRegistry
// deployments may create many same-named instances), so a surviving
// job's reassigned workers keep resolving.
func (p *Pool) unregister(j poolJob) {
	p.mu.Lock()
	kept := p.jobs[:0]
	nameInUse := false
	for _, job := range p.jobs {
		if job != j {
			kept = append(kept, job)
			if job.Name() == j.Name() {
				nameInUse = true
			}
		}
	}
	p.jobs = kept
	if !nameInUse {
		delete(p.handlers, j.Name())
	}
	p.mu.Unlock()
}

// Pando is one deployment: a single streaming map. Created with New it
// owns a single-job pool of its own (the classic tool); created with Map
// it is one job of a shared Pool, leasing workers from the common fleet.
type Pando[I, O any] struct {
	name string
	f    func(I) (O, error)
	in   transport.Codec[I]
	out  transport.Codec[O]
	m    *master.Master[I, O]
	opts options

	pool     *Pool
	job      fleet.Job
	ownsPool bool

	journal *journal.Journal
	spill   *journal.SpillStore

	shards        *shard.Group[I, O] // non-nil iff WithShards(n>1)
	shardDir      string             // segment directory
	shardDirOwned bool               // transient temp dir: removed at Close

	initErr error // deferred WithCheckpoint/WithSpill/WithShards failure, surfaced by Process

	mu     sync.Mutex
	locals []*worker.Volunteer
	pipes  []*netsim.Pipe
}

// wireFormats resolves the formats a deployment negotiates: an explicit
// WithWireFormat list wins; otherwise WithCompression(false) pins to the
// plain formats, and the default (nil) lets the master advertise
// everything this build supports, best first.
func (o *options) wireFormats() []string {
	if len(o.formats) > 0 {
		return o.formats
	}
	if o.noCompress {
		return []string{proto.Version2, proto.Version}
	}
	return nil
}

// checkFormats panics on unknown wire-format names, which are
// programming errors like WithCodec mismatches.
func checkFormats(formats []string) {
	for _, f := range formats {
		if _, ok := proto.LookupFormat(f); !ok {
			panic(fmt.Sprintf("pando: WithWireFormat: unknown wire format %q (supported: %v)",
				f, proto.SupportedFormats()))
		}
	}
}

// New creates a deployment that applies f, registered under name so that
// generic volunteer binaries can resolve it (the Go substitute for
// shipping browserified code). It is a single-job pool: the same
// admission, negotiation and leasing machinery as NewPool, serving
// exactly one job — so every pre-pool deployment keeps working
// unchanged.
func New[I, O any](name string, f func(I) (O, error), opts ...Option) *Pando[I, O] {
	pool := NewPool(opts...)
	p := Map(pool, name, f, opts...)
	p.ownsPool = true
	return p
}

// Map creates a job on a shared pool: a deployment applying f under the
// given function name, leasing workers from pool's common fleet. The
// returned Pando behaves exactly like one from New — Process,
// ProcessSlice, Stats, checkpointing — except that serving and worker
// attachment happen at the pool level. (Go methods cannot introduce type
// parameters, so Map is a package function rather than a Pool method.)
func Map[I, O any](pool *Pool, name string, f func(I) (O, error), opts ...Option) *Pando[I, O] {
	o := options{batch: master.DefaultBatch, register: true}
	for _, opt := range opts {
		opt(&o)
	}
	checkFormats(o.formats)
	var in transport.Codec[I] = transport.JSONCodec[I]{}
	var out transport.Codec[O] = transport.JSONCodec[O]{}
	if o.inCodec != nil {
		c, ok := o.inCodec.(transport.Codec[I])
		if !ok {
			panic(fmt.Sprintf("pando: WithCodec input codec %T does not encode %T", o.inCodec, *new(I)))
		}
		in = c
	}
	if o.outCodec != nil {
		c, ok := o.outCodec.(transport.Codec[O])
		if !ok {
			panic(fmt.Sprintf("pando: WithCodec output codec %T does not encode %T", o.outCodec, *new(O)))
		}
		out = c
	}
	p := &Pando[I, O]{
		name: name,
		f:    f,
		in:   in,
		out:  out,
		opts: o,
		pool: pool,
	}
	cfg := master.Config{
		FuncName:       name,
		Batch:          o.batch,
		Ordered:        !o.unordered,
		Group:          o.group,
		Flow:           o.flow(),
		Channel:        o.channel,
		Formats:        o.wireFormats(),
		BlobCacheBytes: o.blobCache,
	}
	if o.shards > 1 {
		h := CodecHandler(f, in, out)
		p.initShards(o, cfg)
		pool.register(p, h)
		if o.register {
			if _, exists := worker.Lookup(name); !exists {
				worker.Register(name, h)
			}
		}
		return p
	}
	if o.checkpoint != "" {
		j, err := journal.Open(o.checkpoint, journal.Options{SyncInterval: o.fsync})
		switch {
		case err != nil:
			// Not a programming error (unlike a WithCodec mismatch), so no
			// panic: the failure surfaces on the first Process.
			p.initErr = err
		case j.Recovered() > 0 && !o.resume:
			j.Close()
			p.initErr = fmt.Errorf(
				"pando: checkpoint %s already holds %d completed results; add WithResume to resume it, or remove the file to start over",
				o.checkpoint, j.Recovered())
		default:
			p.journal = j
			cfg.Journal = j
		}
	}
	cfg.SpillHighWater = o.highWater
	if o.spillPath != "" && o.highWater > 0 {
		s, err := journal.OpenSpill(o.spillPath)
		if err != nil {
			if p.initErr == nil {
				p.initErr = err
			}
		} else {
			p.spill = s
			cfg.Spill = s
		}
	}
	p.m = master.NewJob[I, O](cfg, in, out)
	if o.verifyK > 0 {
		pol := verify.Policy{
			K:              o.verifyK,
			Quorum:         o.verifyQuorum,
			SpotRate:       o.spotRate,
			TrustThreshold: o.trustThreshold,
		}
		ledger, err := p.m.EnableVerification(pol, f)
		if err != nil {
			if p.initErr == nil {
				p.initErr = fmt.Errorf("pando: WithVerification cannot be combined with WithGroup; %w", err)
			}
		} else {
			// Expulsion runs on its own goroutine: the quarantine hook
			// fires on a result-delivery path deep inside the engine, and
			// severing sessions re-enters it.
			fp := pool.fp
			ledger.OnQuarantine(func(name string) { go fp.Quarantine(name) })
		}
	}
	p.job = p.m.Job()
	h := CodecHandler(f, in, out)
	pool.register(p, h)
	if err := pool.fp.Register(p.job); err != nil && p.initErr == nil {
		// Mapping onto a closed pool: the job would never receive a
		// worker, so surface the failure on the first Process instead of
		// hanging silently.
		p.initErr = fmt.Errorf("pando: Map %q: %w", name, err)
	}
	if o.register {
		if _, exists := worker.Lookup(name); !exists {
			worker.Register(name, h)
		}
	}
	return p
}

// Name returns the job's function name.
func (p *Pando[I, O]) Name() string { return p.name }

// defaultDeadAfter is how long a shard must sit with demand, zero live
// workers and no returning devices before the coordinator declares it
// dead and migrates its range.
const defaultDeadAfter = 10 * time.Second

// initShards builds the sharded engine behind Map when WithShards(n > 1)
// is set. Failures surface through initErr on the first Process, like
// checkpoint failures — except option combinations that could never work,
// which follow the same rule as WithCodec mismatches and are rejected
// here.
func (p *Pando[I, O]) initShards(o options, cfg master.Config) {
	switch {
	case o.unordered:
		p.initErr = fmt.Errorf("pando: WithShards needs ordered output (the merge layer restores input order); remove WithUnordered")
		return
	case o.checkpoint != "" || o.resume:
		p.initErr = fmt.Errorf("pando: WithShards cannot be combined with WithCheckpoint/WithResume; each shard keeps its own completion segment")
		return
	case o.spillPath != "":
		p.initErr = fmt.Errorf("pando: WithShards cannot be combined with WithSpill; bound the merge buffer with WithShardWindow instead")
		return
	case o.verifyK > 0:
		p.initErr = fmt.Errorf("pando: WithShards cannot be combined with WithVerification; replica routing needs the single-master index space")
		return
	}
	cfg.SpillHighWater = o.highWater
	dir := o.shardDir
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			p.initErr = fmt.Errorf("pando: WithShardDir: %w", err)
			return
		}
	} else {
		var err error
		dir, err = os.MkdirTemp("", "pando-shards-")
		if err != nil {
			p.initErr = fmt.Errorf("pando: WithShards: %w", err)
			return
		}
		p.shardDirOwned = true
	}
	g, err := shard.New[I, O](p.pool.fp, shard.Config{
		Shards:    o.shards,
		Window:    o.shardWindow,
		Dir:       dir,
		DeadAfter: defaultDeadAfter,
		Master:    cfg,
	}, p.in, p.out)
	if err != nil {
		if p.shardDirOwned {
			_ = os.RemoveAll(dir)
		}
		p.initErr = fmt.Errorf("pando: WithShards(%d): %w", o.shards, err)
		return
	}
	// The front master answers HTTP /stats for the whole group.
	g.Front().SetShardStats(g.Stats)
	p.shards = g
	p.shardDir = dir
}

// Handler adapts a typed processing function into a registry handler, the
// equivalent of the paper's Figure 2 glue code: decode the input, apply
// the function, encode the result, report errors through the callback.
// Payloads are JSON, matching the deployment default; use CodecHandler
// for deployments created with WithCodec.
func Handler[I, O any](f func(I) (O, error)) worker.Handler {
	return CodecHandler(f, transport.JSONCodec[I]{}, transport.JSONCodec[O]{})
}

// CodecHandler is Handler with explicit payload codecs; the volunteer
// must decode inputs with the same codec the master encodes them with.
func CodecHandler[I, O any](f func(I) (O, error), in Codec[I], out Codec[O]) worker.Handler {
	return func(input []byte) ([]byte, error) {
		v, err := in.Decode(input)
		if err != nil {
			return nil, fmt.Errorf("pando: decode input: %w", err)
		}
		r, err := f(v)
		if err != nil {
			return nil, err
		}
		data, err := out.Encode(r)
		if err != nil {
			return nil, fmt.Errorf("pando: encode result: %w", err)
		}
		return data, nil
	}
}

// Process applies f to every value received on in and delivers results on
// the returned channel, closed at end of stream. A failure (input error
// or context cancellation) is delivered on the error channel (capacity 1).
// Results arrive in input order unless WithUnordered was set.
func (p *Pando[I, O]) Process(ctx context.Context, in <-chan I) (<-chan O, <-chan error) {
	if p.initErr != nil {
		out := make(chan O)
		close(out)
		errc := make(chan error, 1)
		errc <- p.initErr
		close(errc)
		return out, errc
	}
	ctxErr := make(chan error, 1)
	src := pullstream.FromChan(in, ctxErr)
	var bound pullstream.Source[O]
	if p.shards != nil {
		bound = p.shards.Bind(src)
	} else {
		bound = p.m.Bind(src)
	}
	if ctx == nil {
		return pullstream.ToChan(bound)
	}
	// Watch the stream's end signal so the cancellation watcher can be
	// released when the stream completes before the context is ever
	// cancelled — otherwise the watcher goroutine would block on
	// ctx.Done() for the context's whole lifetime.
	done := make(chan struct{})
	var once sync.Once
	watched := pullstream.Source[O](func(abort error, cb pullstream.Callback[O]) {
		bound(abort, func(end error, v O) {
			if end != nil {
				once.Do(func() { close(done) })
			}
			cb(end, v)
		})
	})
	go func() {
		select {
		case <-ctx.Done():
			ctxErr <- ctx.Err()
		case <-done:
		}
	}()
	return pullstream.ToChan(watched)
}

// ProcessSlice is a convenience for finite workloads: it feeds every
// element of inputs through the deployment and collects the results.
func (p *Pando[I, O]) ProcessSlice(ctx context.Context, inputs []I) ([]O, error) {
	in := make(chan I)
	go func() {
		defer close(in)
		for _, v := range inputs {
			select {
			case in <- v:
			case <-ctxDone(ctx):
				return
			}
		}
	}()
	outc, errc := p.Process(ctx, in)
	var out []O
	for v := range outc {
		out = append(out, v)
	}
	if err := <-errc; err != nil {
		return out, err
	}
	return out, nil
}

func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// AddLocalWorkers attaches n in-process volunteers, one per core the user
// wants to dedicate — "Pando trivially enables parallel processing on
// multicore architectures on a single machine while enabling dynamically
// scaling up to other devices if necessary" (paper §2.4.3).
func (p *Pando[I, O]) AddLocalWorkers(n int) {
	p.AddSimulatedWorkers(n, "local", netsim.Loopback, 0, -1)
}

// AddSimulatedWorkers attaches n volunteers connected through a simulated
// link, each with a fixed per-item delay (modelling device speed) and an
// optional crash after crashAfter items (negative: never). It returns
// nothing; per-device accounting is visible through Stats.
func (p *Pando[I, O]) AddSimulatedWorkers(n int, namePrefix string, link netsim.Link, delay time.Duration, crashAfter int) {
	for i := 0; i < n; i++ {
		p.AddWorker(fmt.Sprintf("%s-%d", namePrefix, i+1), link, delay, crashAfter)
	}
}

// AddWorker attaches one volunteer under an exact name. Attaching several
// volunteers under the same name models one device contributing several
// cores (one browser tab per core, as in the paper's evaluation): their
// accounting aggregates into a single Stats row. The volunteer is
// dedicated to this job — it advertises only this function, so a shared
// pool never leases it elsewhere; use Pool.AddWorker for fleet-wide
// devices.
func (p *Pando[I, O]) AddWorker(name string, link netsim.Link, delay time.Duration, crashAfter int) {
	v := &worker.Volunteer{
		Name:           name,
		Handler:        CodecHandler(p.f, p.in, p.out),
		Channel:        p.opts.channel,
		Delay:          delay,
		CrashAfter:     crashAfter,
		Functions:      []string{p.name},
		BlobCacheBytes: p.opts.blobCache,
	}
	pipe := netsim.NewPipe(link)
	p.mu.Lock()
	p.locals = append(p.locals, v)
	p.pipes = append(p.pipes, pipe)
	p.mu.Unlock()
	go func() { _ = v.JoinWS(pipe.A) }()
	go func() { _ = p.pool.fp.Admit(transport.NewWSock(pipe.B, p.opts.channel)) }()
}

// ServeWS accepts remote volunteers over the WebSocket-like transport
// until the acceptor closes; they join the deployment's pool (shared
// with other jobs when created with Map). Run it on a goroutine.
func (p *Pando[I, O]) ServeWS(acc Acceptor) error { return p.pool.fp.ServeWS(acc) }

// ServeRTC admits volunteers arriving through the WebRTC-like bootstrap.
// Run it on a goroutine.
func (p *Pando[I, O]) ServeRTC(answerer *transport.RTCAnswerer) { p.pool.fp.ServeRTC(answerer) }

// Stats snapshots per-device accounting (items processed, active period);
// in a sharded deployment, across every shard master.
func (p *Pando[I, O]) Stats() []WorkerStats {
	if p.shards != nil {
		return p.shards.WorkerStats()
	}
	if p.m == nil {
		return nil
	}
	return p.m.Stats()
}

// TotalItems is the total number of results received from all devices.
func (p *Pando[I, O]) TotalItems() int {
	if p.shards != nil {
		return p.shards.TotalItems()
	}
	if p.m == nil {
		return 0
	}
	return p.m.TotalItems()
}

// ShardStats snapshots the per-shard rows of a WithShards deployment —
// range ownership, backlog, merge-buffer depth and migration lineage —
// and is nil for a classic single-master deployment.
func (p *Pando[I, O]) ShardStats() []ShardStats {
	if p.shards == nil {
		return nil
	}
	return p.shards.Stats()
}

// FailShard crash-stops the current master of shard `slot` in a
// WithShards deployment: its leased sessions are severed mid-flight and
// its index range handed to a fresh sibling (completed results restored
// from the segment copy, the rest recomputed). This is the
// fault-injection entry the chaos suite drives; the output stream must
// come through unchanged.
func (p *Pando[I, O]) FailShard(slot int) error {
	if p.shards == nil {
		return fmt.Errorf("pando: FailShard: not a sharded deployment")
	}
	return p.shards.Kill(slot)
}

// MigrateShard gracefully hands shard `slot`'s range to a fresh sibling
// without severing its sessions — the operator's drain, e.g. ahead of
// retiring the host.
func (p *Pando[I, O]) MigrateShard(slot int) error {
	if p.shards == nil {
		return fmt.Errorf("pando: MigrateShard: not a sharded deployment")
	}
	return p.shards.Migrate(slot)
}

// Reputations snapshots the per-worker reputation rows of a
// WithVerification deployment (score, agreement counts, spot-check
// tallies, quarantine state); nil without verification.
func (p *Pando[I, O]) Reputations() map[string]WorkerRep {
	if p.m == nil {
		return nil
	}
	return p.m.Reputations()
}

// VerifyAudit returns the acceptance audit of a WithVerification
// deployment: one record per output index, naming the workers whose
// matching results carried the vote (or the fast path / spot-check that
// sealed it). Nil without verification.
func (p *Pando[I, O]) VerifyAudit() []Acceptance {
	if p.m == nil {
		return nil
	}
	return p.m.VerifyAudit()
}

// Checkpoint exposes the deployment's journal (nil without
// WithCheckpoint), e.g. to force a durability barrier with Sync or a
// compaction with Snapshot.
func (p *Pando[I, O]) Checkpoint() *journal.Journal { return p.journal }

// Close releases local resources; remote volunteers observe the
// disconnection through their heartbeats — except in a shared pool,
// where the job's leased workers are handed back to the fleet and move
// on to the remaining jobs. The checkpoint journal, if any, is flushed
// and closed.
func (p *Pando[I, O]) Close() {
	// Unregister first so the fleet reclaims this job's leases (or, for
	// an owned single-job pool, volunteers are dismissed) before the
	// engine shuts down.
	if p.job != nil {
		p.pool.fp.Unregister(p.job)
	}
	p.pool.unregister(p)
	if p.shards != nil {
		p.shards.Close()
	}
	if p.m != nil {
		p.m.Close()
	}
	if p.ownsPool {
		p.pool.Close()
	}
	p.mu.Lock()
	pipes := p.pipes
	p.pipes = nil
	p.mu.Unlock()
	for _, pipe := range pipes {
		pipe.Cut()
	}
	if p.journal != nil {
		_ = p.journal.Close()
	}
	if p.spill != nil {
		_ = p.spill.Close()
	}
	if p.shardDir != "" && p.shardDirOwned {
		// The segments were this run's transient durable record; the run
		// is over. A WithShardDir directory is the user's and stays.
		_ = os.RemoveAll(p.shardDir)
	}
}
