// Package pando is a Go implementation of Pando, the personal volunteer
// computing tool of Lavoie et al. (MIDDLEWARE 2019): it parallelizes the
// application of a function on a stream of values across a dynamically
// varying number of failure-prone devices contributed by volunteers.
//
// The programming model is a streaming version of the functional map
// operation (paper Table 1): Pando applies f to inputs x1, x2, ... and
// outputs f(x1), f(x2), ... in input order, reading inputs lazily, with a
// single copy of each input in flight, adapting to device speed, and
// tolerating crash-stop failures transparently.
//
// Quickstart:
//
//	p := pando.New("square", func(v int) (int, error) { return v * v, nil })
//	p.AddLocalWorkers(4)
//	outs, errs := p.Process(ctx, inputs) // channels in, channels out
//
// Remote volunteers join over the WebSocket-like transport (ServeWS) or
// through the WebRTC-like bootstrap via a public signalling server
// (ServeRTC); see the examples directory and cmd/pando.
package pando

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"pando/internal/master"
	"pando/internal/netsim"
	"pando/internal/pullstream"
	"pando/internal/transport"
	"pando/internal/worker"
)

// Re-exported configuration types. They alias internal types so the whole
// toolkit is usable through this package alone.
type (
	// Acceptor abstracts a listener accepting volunteer connections
	// (net.Listener satisfies it, as does the simulated network's).
	Acceptor = transport.Acceptor
	// ChannelConfig tunes heartbeat failure detection.
	ChannelConfig = transport.Config
	// WorkerStats is the per-device throughput accounting.
	WorkerStats = master.WorkerStats
	// Dialer opens a raw connection to a candidate address during the
	// WebRTC-like bootstrap.
	Dialer = transport.Dialer
)

// Option configures a Pando instance.
type Option func(*options)

type options struct {
	batch     int
	group     int
	unordered bool
	channel   transport.Config
	register  bool
}

// WithBatch sets how many values may be in flight per device (the Limiter
// bound). The paper used 2 on LAN/VPN and 4 on WAN deployments to hide
// network latency (§5.5).
func WithBatch(n int) Option { return func(o *options) { o.batch = n } }

// WithGroup sends several inputs per network frame (message-level
// batching). The total values in flight per device stays bounded by the
// batch size; grouping additionally reduces per-message overhead, which
// matters for small items on high-latency links.
func WithGroup(n int) Option { return func(o *options) { o.group = n } }

// WithUnordered emits results in completion order instead of input order,
// the relaxation the paper suggests for synchronous parallel search
// (§4.2).
func WithUnordered() Option { return func(o *options) { o.unordered = true } }

// WithChannelConfig tunes heartbeat intervals on volunteer channels.
func WithChannelConfig(cfg ChannelConfig) Option {
	return func(o *options) { o.channel = cfg }
}

// WithoutRegistry skips registering the processing function in the global
// volunteer registry (useful when creating many instances with the same
// name in tests).
func WithoutRegistry() Option { return func(o *options) { o.register = false } }

// Pando is one deployment: a single project, a single user, the lifetime
// of the corresponding tasks (design principle DP1).
type Pando[I, O any] struct {
	name string
	f    func(I) (O, error)
	m    *master.Master[I, O]
	opts options

	mu     sync.Mutex
	locals []*worker.Volunteer
	pipes  []*netsim.Pipe
}

// New creates a deployment that applies f, registered under name so that
// generic volunteer binaries can resolve it (the Go substitute for
// shipping browserified code).
func New[I, O any](name string, f func(I) (O, error), opts ...Option) *Pando[I, O] {
	o := options{batch: master.DefaultBatch, register: true}
	for _, opt := range opts {
		opt(&o)
	}
	p := &Pando[I, O]{
		name: name,
		f:    f,
		opts: o,
		m: master.New[I, O](master.Config{
			FuncName: name,
			Batch:    o.batch,
			Ordered:  !o.unordered,
			Group:    o.group,
			Channel:  o.channel,
		}, transport.JSONCodec[I]{}, transport.JSONCodec[O]{}),
	}
	if o.register {
		if _, exists := worker.Lookup(name); !exists {
			worker.Register(name, Handler(f))
		}
	}
	return p
}

// Handler adapts a typed processing function into a registry handler, the
// equivalent of the paper's Figure 2 glue code: decode the input, apply
// the function, encode the result, report errors through the callback.
func Handler[I, O any](f func(I) (O, error)) worker.Handler {
	return func(input []byte) ([]byte, error) {
		var v I
		if err := json.Unmarshal(input, &v); err != nil {
			return nil, fmt.Errorf("pando: decode input: %w", err)
		}
		r, err := f(v)
		if err != nil {
			return nil, err
		}
		out, err := json.Marshal(r)
		if err != nil {
			return nil, fmt.Errorf("pando: encode result: %w", err)
		}
		return out, nil
	}
}

// Process applies f to every value received on in and delivers results on
// the returned channel, closed at end of stream. A failure (input error
// or context cancellation) is delivered on the error channel (capacity 1).
// Results arrive in input order unless WithUnordered was set.
func (p *Pando[I, O]) Process(ctx context.Context, in <-chan I) (<-chan O, <-chan error) {
	ctxErr := make(chan error, 1)
	if ctx != nil {
		go func() {
			<-ctx.Done()
			ctxErr <- ctx.Err()
		}()
	}
	src := pullstream.FromChan(in, ctxErr)
	out := p.m.Bind(src)
	return pullstream.ToChan(out)
}

// ProcessSlice is a convenience for finite workloads: it feeds every
// element of inputs through the deployment and collects the results.
func (p *Pando[I, O]) ProcessSlice(ctx context.Context, inputs []I) ([]O, error) {
	in := make(chan I)
	go func() {
		defer close(in)
		for _, v := range inputs {
			select {
			case in <- v:
			case <-ctxDone(ctx):
				return
			}
		}
	}()
	outc, errc := p.Process(ctx, in)
	var out []O
	for v := range outc {
		out = append(out, v)
	}
	if err := <-errc; err != nil {
		return out, err
	}
	return out, nil
}

func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// AddLocalWorkers attaches n in-process volunteers, one per core the user
// wants to dedicate — "Pando trivially enables parallel processing on
// multicore architectures on a single machine while enabling dynamically
// scaling up to other devices if necessary" (paper §2.4.3).
func (p *Pando[I, O]) AddLocalWorkers(n int) {
	p.AddSimulatedWorkers(n, "local", netsim.Loopback, 0, -1)
}

// AddSimulatedWorkers attaches n volunteers connected through a simulated
// link, each with a fixed per-item delay (modelling device speed) and an
// optional crash after crashAfter items (negative: never). It returns
// nothing; per-device accounting is visible through Stats.
func (p *Pando[I, O]) AddSimulatedWorkers(n int, namePrefix string, link netsim.Link, delay time.Duration, crashAfter int) {
	for i := 0; i < n; i++ {
		p.AddWorker(fmt.Sprintf("%s-%d", namePrefix, i+1), link, delay, crashAfter)
	}
}

// AddWorker attaches one volunteer under an exact name. Attaching several
// volunteers under the same name models one device contributing several
// cores (one browser tab per core, as in the paper's evaluation): their
// accounting aggregates into a single Stats row.
func (p *Pando[I, O]) AddWorker(name string, link netsim.Link, delay time.Duration, crashAfter int) {
	v := &worker.Volunteer{
		Name:       name,
		Handler:    Handler(p.f),
		Channel:    p.opts.channel,
		Delay:      delay,
		CrashAfter: crashAfter,
	}
	pipe := netsim.NewPipe(link)
	p.mu.Lock()
	p.locals = append(p.locals, v)
	p.pipes = append(p.pipes, pipe)
	p.mu.Unlock()
	go func() { _ = v.JoinWS(pipe.A) }()
	go func() { _ = p.m.Admit(transport.NewWSock(pipe.B, p.opts.channel)) }()
}

// ServeWS accepts remote volunteers over the WebSocket-like transport
// until the acceptor closes. Run it on a goroutine.
func (p *Pando[I, O]) ServeWS(acc Acceptor) error { return p.m.ServeWS(acc) }

// ServeRTC admits volunteers arriving through the WebRTC-like bootstrap.
// Run it on a goroutine.
func (p *Pando[I, O]) ServeRTC(answerer *transport.RTCAnswerer) { p.m.ServeRTC(answerer) }

// Stats snapshots per-device accounting (items processed, active period).
func (p *Pando[I, O]) Stats() []WorkerStats { return p.m.Stats() }

// TotalItems is the total number of results received from all devices.
func (p *Pando[I, O]) TotalItems() int { return p.m.TotalItems() }

// Close releases local resources; remote volunteers observe the
// disconnection through their heartbeats.
func (p *Pando[I, O]) Close() {
	p.m.Close()
	p.mu.Lock()
	pipes := p.pipes
	p.pipes = nil
	p.mu.Unlock()
	for _, pipe := range pipes {
		pipe.Cut()
	}
}
