package pando_test

// End-to-end integration tests of the full deployment story over real
// localhost TCP: the HTTP invitation bootstrap (paper §2.1.2), the CLI
// Unix pipeline (Figure 3), sustained churn, and a crash-recovery rejoin.

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	pando "pando"
	"pando/internal/master"
	"pando/internal/netsim"
	"pando/internal/pullstream"
	"pando/internal/transport"
	"pando/internal/worker"
)

var integSeq atomic.Int64

func integName(p string) string { return fmt.Sprintf("%s-%d", p, integSeq.Add(1)) }

// TestIntegrationURLBootstrap walks the paper's full §2.1.2 deployment:
// the master prints a URL; the volunteer "opens" it, receives the
// invitation, joins over the advertised transport, and computes.
func TestIntegrationURLBootstrap(t *testing.T) {
	cfg := master.Config{
		FuncName: integName("square"),
		Batch:    2,
		Ordered:  true,
		Channel:  transport.Config{HeartbeatInterval: 50 * time.Millisecond},
	}
	m := master.New[int, int](cfg, transport.JSONCodec[int]{}, transport.JSONCodec[int]{})

	dataLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dataLn.Close()
	go m.ServeWS(dataLn)

	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := m.ServeHTTPInfo(httpLn, master.Invitation{
		Transport: "ws",
		DataAddr:  dataLn.Addr().String(),
	})
	defer srv.Close()
	url := "http://" + httpLn.Addr().String() + "/"

	v := &worker.Volunteer{
		Name:       "browser-tab",
		Handler:    pando.Handler(func(x int) (int, error) { return x * x, nil }),
		Channel:    transport.Config{HeartbeatInterval: 50 * time.Millisecond},
		CrashAfter: -1,
	}
	go v.JoinURL(url, transport.TCPDialer(5*time.Second))

	out := m.Bind(pullstream.Count(15))
	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 15 {
		t.Fatalf("got %d results, want 15", len(got))
	}
	for i, r := range got {
		if r != (i+1)*(i+1) {
			t.Fatalf("got[%d] = %d", i, r)
		}
	}
}

// TestIntegrationChurn keeps a stream alive under constant volunteer
// churn: devices join, process a handful of items, and crash, over and
// over, while one stable device guarantees liveness.
func TestIntegrationChurn(t *testing.T) {
	p := pando.New(integName("churn"), func(v int) (int, error) { return v + 1000, nil },
		pando.WithBatch(2),
		pando.WithChannelConfig(pando.ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}),
	)
	defer p.Close()

	p.AddSimulatedWorkers(1, "stable", netsim.LAN, 0, -1)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		i := 0
		for {
			select {
			case <-stop:
				return
			case <-time.After(15 * time.Millisecond):
				i++
				p.AddWorker(fmt.Sprintf("churner-%d", i), netsim.LAN, time.Millisecond, 3)
			}
		}
	}()

	inputs := make([]int, 300)
	for i := range inputs {
		inputs[i] = i
	}
	got, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 300 {
		t.Fatalf("got %d results, want 300", len(got))
	}
	for i, v := range got {
		if v != i+1000 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	// Churners actually participated.
	churned := 0
	for _, w := range p.Stats() {
		if strings.HasPrefix(w.Name, "churner-") && w.Items > 0 {
			churned++
		}
	}
	if churned == 0 {
		t.Fatal("no churner processed anything; churn was not exercised")
	}
}

// TestIntegrationCrashRecoveryRejoin exercises the crash-recovery mode
// the paper's §2.3 footnote describes: a device that crashed may recover
// and try participating again. The rejoined device is admitted under the
// same name and its accounting continues.
func TestIntegrationCrashRecoveryRejoin(t *testing.T) {
	p := pando.New(integName("rejoin"), func(v int) (int, error) { return -v, nil },
		pando.WithBatch(2),
		pando.WithChannelConfig(pando.ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}),
	)
	defer p.Close()

	// The device crashes after 5 items...
	p.AddWorker("lazarus", netsim.LAN, time.Millisecond, 5)
	// ...and rejoins shortly after (a page reload), this time reliable.
	go func() {
		time.Sleep(80 * time.Millisecond)
		p.AddWorker("lazarus", netsim.LAN, time.Millisecond, -1)
	}()

	inputs := make([]int, 60)
	for i := range inputs {
		inputs[i] = i
	}
	got, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("got %d results, want 60", len(got))
	}
	var lazarus pando.WorkerStats
	for _, w := range p.Stats() {
		if w.Name == "lazarus" {
			lazarus = w
		}
	}
	if lazarus.Items != 60 {
		t.Fatalf("lazarus accounted %d items across both lives, want 60", lazarus.Items)
	}
}

// TestIntegrationCLI builds the real binaries and runs the paper's
// Figure 3 pipeline over localhost TCP: inputs on stdin, a remote
// volunteer process joining by URL, ordered outputs on stdout.
func TestIntegrationCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips binary build")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/pando", "./cmd/volunteer")
	build.Dir = mustModuleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	port := freePort(t)
	cmd := exec.Command(filepath.Join(bin, "pando"), "collatz", "--stdin",
		"--port", strconv.Itoa(port))
	cmd.Dir = mustModuleRoot(t)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Wait for the master's HTTP endpoint, then join a volunteer process.
	url := fmt.Sprintf("http://127.0.0.1:%d/", port)
	waitForHTTP(t, url, 10*time.Second)
	vol := exec.Command(filepath.Join(bin, "volunteer"), "--url", url, "--name", "cli-device")
	vol.Stderr = os.Stderr
	if err := vol.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		vol.Process.Kill()
		vol.Wait()
	}()

	// Feed the inputs of the Collatz pipeline and read ordered results.
	go func() {
		for i := 1; i <= 10; i++ {
			fmt.Fprintln(stdin, i)
		}
		stdin.Close()
	}()
	wantSteps := []int{0, 1, 7, 2, 5, 8, 16, 3, 19, 6} // steps for 1..10
	sc := bufio.NewScanner(stdout)
	for i := 0; i < 10; i++ {
		if !sc.Scan() {
			t.Fatalf("stdout ended after %d lines: %v", i, sc.Err())
		}
		line := sc.Text()
		var steps int
		// Output is the JSON CollatzResult; extract the steps field.
		if idx := strings.Index(line, `"steps":`); idx >= 0 {
			rest := line[idx+len(`"steps":`):]
			end := strings.IndexAny(rest, ",}")
			steps, err = strconv.Atoi(strings.TrimSpace(rest[:end]))
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
		} else {
			t.Fatalf("unexpected output line %q", line)
		}
		if steps != wantSteps[i] {
			t.Fatalf("line %d: steps = %d, want %d (ordered)", i, steps, wantSteps[i])
		}
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("pando exited: %v", err)
	}
}

// --- helpers ---

func mustModuleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

func waitForHTTP(t *testing.T, url string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", strings.TrimPrefix(strings.TrimSuffix(url, "/"), "http://"), 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never came up", url)
}

// TestIntegrationCLIPublicServer runs the complete WAN story of the paper
// with the three real binaries over localhost TCP: pando-server (the
// public signalling relay), pando --public (the master registering on
// it), and volunteer --via (a device bootstrapping a WebRTC-like direct
// connection through the relay).
func TestIntegrationCLIPublicServer(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips binary build")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin,
		"./cmd/pando", "./cmd/volunteer", "./cmd/pando-server")
	build.Dir = mustModuleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Public signalling server.
	signalPort := freePort(t)
	server := exec.Command(filepath.Join(bin, "pando-server"),
		"--port", strconv.Itoa(signalPort))
	server.Stderr = os.Stderr
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()
	signalAddr := fmt.Sprintf("127.0.0.1:%d", signalPort)
	waitForHTTP(t, "http://"+signalAddr+"/", 10*time.Second) // TCP reachability probe

	// Master registered on the public server.
	masterPort := freePort(t)
	masterID := fmt.Sprintf("master-%d", integSeq.Add(1))
	cmd := exec.Command(filepath.Join(bin, "pando"), "sl-test", "--stdin",
		"--port", strconv.Itoa(masterPort),
		"--public", signalAddr, "--id", masterID)
	cmd.Dir = mustModuleRoot(t)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	waitForHTTP(t, fmt.Sprintf("http://127.0.0.1:%d/", masterPort), 10*time.Second)

	// Volunteer joining via the public server (never touches the
	// master's LAN URL).
	vol := exec.Command(filepath.Join(bin, "volunteer"),
		"--via", signalAddr, "--master", masterID, "--name", "wan-device")
	vol.Stderr = os.Stderr
	if err := vol.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		vol.Process.Kill()
		vol.Wait()
	}()

	// Feed StreamLender-test seeds; expect one JSON report per seed with
	// no violations.
	go func() {
		for i := 1; i <= 5; i++ {
			fmt.Fprintln(stdin, i)
		}
		stdin.Close()
	}()
	sc := bufio.NewScanner(stdout)
	for i := 0; i < 5; i++ {
		if !sc.Scan() {
			t.Fatalf("stdout ended after %d lines: %v", i, sc.Err())
		}
		line := sc.Text()
		if !strings.Contains(line, `"seed":`) {
			t.Fatalf("unexpected output %q", line)
		}
		if strings.Contains(line, `"violations"`) {
			t.Fatalf("SL test found violations: %s", line)
		}
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("pando exited: %v", err)
	}
}

// TestIntegrationFullUnixPipeline runs the paper's Figure 3 as an actual
// shell pipeline with the real binaries:
//
//	pando-tools generate-angles | pando render --stdin --local | pando-tools gif-encode
func TestIntegrationFullUnixPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips binary build")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/pando", "./cmd/pando-tools")
	build.Dir = mustModuleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	gifPath := filepath.Join(t.TempDir(), "anim.gif")
	port := freePort(t)
	pipeline := fmt.Sprintf(
		"%s generate-angles 4 | %s render --stdin --local 2 --port %d | %s gif-encode -o %s",
		filepath.Join(bin, "pando-tools"),
		filepath.Join(bin, "pando"), port,
		filepath.Join(bin, "pando-tools"), gifPath,
	)
	cmd := exec.Command("sh", "-c", pipeline)
	cmd.Dir = mustModuleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("pipeline: %v\n%s", err, out)
	}
	data, err := os.ReadFile(gifPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || string(data[:4]) != "GIF8" {
		t.Fatalf("pipeline did not produce a GIF (%d bytes)", len(data))
	}
}
