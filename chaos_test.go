package pando_test

// Whole-stack deterministic chaos suite: every scenario — fleet size,
// device speeds, link profiles, which faults fire when and against whom,
// whether the master is killed and where — derives from one int64 seed.
// A randomized CI run prints its seeds; any failure reproduces exactly
// with
//
//	go test -run TestChaos -chaos.seed=<N>
//
// Faults are drawn from the full combined menu (churn, permanent crashes,
// link flaps and partitions, asymmetric degradation, byte-level
// corruption on the wire, overlay-relay loss, master kill+restart over
// the checkpoint journal, signalling-relay flaps during the WebRTC-like
// bootstrap), and every run must preserve the paper's §2.3/§4 guarantees:
// exactly-once in-order output, journal-resume byte identity, no stale
// fleet leases, and no leaked goroutines (which, in the simulated
// network, covers sockets too).

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	pando "pando"
	"pando/internal/chaos"
	"pando/internal/netsim"
	"pando/internal/overlay"
	"pando/internal/transport"
	"pando/internal/worker"
)

var (
	chaosSeed = flag.Int64("chaos.seed", 0,
		"replay exactly one chaos scenario with this seed (0: fresh random seeds)")
	chaosRuns = flag.Int("chaos.runs", 3,
		"number of random seeds per chaos test when -chaos.seed is unset")
	chaosItems = flag.Int("chaos.items", 160,
		"stream length of the checkpointed chaos job")
)

// chaosSeeds yields the seeds for one test: the pinned seed when set,
// fresh time-derived seeds otherwise. Every seed is echoed through t.Logf
// so a CI log always carries the reproduction command.
func chaosSeeds() []int64 {
	if *chaosSeed != 0 {
		return []int64{*chaosSeed}
	}
	base := time.Now().UnixNano()
	seeds := make([]int64, *chaosRuns)
	for i := range seeds {
		// Spread the seeds so consecutive runs do not share low bits.
		seeds[i] = (base ^ int64(i+1)*0x5DEECE66D) & (1<<63 - 1)
		if seeds[i] == 0 {
			seeds[i] = 1
		}
	}
	return seeds
}

// chaosFleet tracks every simulated pipe a scenario creates so teardown
// can sever them all before the leak check.
type chaosFleet struct {
	mu    sync.Mutex
	pipes []*netsim.Pipe
}

func (cf *chaosFleet) add(p *netsim.Pipe) {
	cf.mu.Lock()
	cf.pipes = append(cf.pipes, p)
	cf.mu.Unlock()
}

func (cf *chaosFleet) cutAll() {
	cf.mu.Lock()
	pipes := append([]*netsim.Pipe(nil), cf.pipes...)
	cf.mu.Unlock()
	for _, p := range pipes {
		p.Resume() // a paused pipe must not hold its relay at the gate
		p.Cut()
	}
}

// collectClosed reads out until it closes, failing the test if fewer than
// want values arrive before the deadline (a wedged stream).
func collectClosed[T any](t *testing.T, out <-chan T, want int, deadline time.Duration, what string) []T {
	t.Helper()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	var got []T
	for {
		select {
		case v, ok := <-out:
			if !ok {
				return got
			}
			got = append(got, v)
		case <-timer.C:
			t.Fatalf("%s wedged: %d/%d outputs after %v", what, len(got), want, deadline)
		}
	}
}

// collectN reads exactly n values from out (the stream stays open).
func collectN[T any](t *testing.T, out <-chan T, n int, deadline time.Duration, what string) []T {
	t.Helper()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	got := make([]T, 0, n)
	for len(got) < n {
		select {
		case v, ok := <-out:
			if !ok {
				t.Fatalf("%s closed after %d/%d outputs", what, len(got), n)
			}
			got = append(got, v)
		case <-timer.C:
			t.Fatalf("%s wedged: %d/%d outputs after %v", what, len(got), n, deadline)
		}
	}
	return got
}

// TestChaosStack drives a shared pool with two typed jobs (one
// checkpointed with adaptive flow control and speculation), an optional
// overlay-relay subtree, and a seeded schedule of combined faults.
func TestChaosStack(t *testing.T) {
	for _, seed := range chaosSeeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosStack(t, seed)
		})
	}
}

func runChaosStack(t *testing.T, seed int64) {
	t.Logf("chaos: seed %d (reproduce: go test -run 'TestChaosStack' -chaos.seed=%d)", seed, seed)
	r := chaos.New(seed)
	guard := chaos.Guard()
	n := *chaosItems
	if n < 20 {
		// The kill branch consumes a n/5-based prefix and the invariants
		// need a few results per worker to mean anything; clamp rather
		// than panic on a tiny -chaos.items replay.
		n = 20
	}

	fA := func(v int) (int, error) { return v*v + 3, nil }
	wantA := func(i int) int { return i*i + 3 }
	fB := func(s string) (string, error) {
		time.Sleep(200 * time.Microsecond)
		return s + "-ok", nil
	}
	nameA := integName("chaos-sq")
	nameB := integName("chaos-tag")
	hb := pando.ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}
	ckpt := filepath.Join(t.TempDir(), "chaos.journal")

	pool := pando.NewPool(pando.WithChannelConfig(hb), pando.WithRebalanceInterval(25*time.Millisecond))
	defer pool.Close()

	handlerA := pando.Handler(fA)
	handlerB := pando.Handler(fB)
	resolve := func(name string) (worker.Handler, bool) {
		switch name {
		case nameA:
			return handlerA, true
		case nameB:
			return handlerB, true
		}
		return nil, false
	}

	cf := &chaosFleet{}
	defer cf.cutAll()
	spawn := func(name string, link netsim.Link, delay time.Duration) *netsim.Pipe {
		v := &worker.Volunteer{
			Name:       name,
			Channel:    hb,
			Delay:      delay,
			CrashAfter: -1,
			Functions:  []string{"*"},
			Resolve:    resolve,
		}
		pipe := netsim.NewPipe(link)
		cf.add(pipe)
		go func() { _ = v.JoinWS(pipe.A) }()
		go func() { _ = pool.Fleet().Admit(transport.NewWSock(pipe.B, hb)) }()
		return pipe
	}

	// Job A also runs with a tiny memory bound and a spill segment, so
	// every chaos scenario exercises the bounded-memory reorder path —
	// out-of-order bursts page through the spill store and must still
	// come out exactly-once, in order, byte-identical across the
	// kill+restart. The spill file is transient: the restarted master
	// recreates it from scratch (durability is the checkpoint's job).
	spillPath := filepath.Join(t.TempDir(), "chaos.spill")
	mapA := func() *pando.Pando[int, int] {
		return pando.Map(pool, nameA, fA,
			pando.WithAdaptiveLimit(1, 8),
			pando.WithSpeculation(2.0),
			pando.WithCheckpoint(ckpt), pando.WithResume(), pando.WithFsyncInterval(5*time.Millisecond),
			pando.WithMemoryBound(4), pando.WithSpill(spillPath),
			pando.WithChannelConfig(hb),
			pando.WithoutRegistry())
	}
	jobB := pando.Map(pool, nameB, fB, pando.WithChannelConfig(hb), pando.WithoutRegistry())

	// --- Fleet, derived from the seed. ---
	wr := r.Fork("workers")
	nWorkers := 3 + wr.Intn(3)
	workerPipes := make([]*netsim.Pipe, nWorkers)
	workerLinks := make([]netsim.Link, nWorkers)
	for i := 0; i < nWorkers; i++ {
		link := netsim.Link{
			Latency: wr.Duration(0, 3*time.Millisecond),
			Jitter:  wr.Duration(0, 2*time.Millisecond),
			Seed:    wr.Int63() | 1,
		}
		workerLinks[i] = link
		workerPipes[i] = spawn(fmt.Sprintf("cw-%d", i+1), link, wr.Duration(3*time.Millisecond, 12*time.Millisecond))
	}

	// --- Optional overlay-relay subtree. ---
	or := r.Fork("overlay")
	withRelay := or.Bool(0.5)
	var relayParent *netsim.Pipe
	if withRelay {
		link := netsim.Link{Latency: or.Duration(0, 2*time.Millisecond), Seed: or.Int63() | 1}
		node := overlay.NewNode(integName("chaos-relay"))
		node.Channel = hb
		node.Fanout = 2
		relayParent = netsim.NewPipe(link)
		cf.add(relayParent)
		go func() { _ = node.Run(transport.NewWSock(relayParent.A, hb)) }()
		go func() { _ = pool.Fleet().Admit(transport.NewWSock(relayParent.B, hb)) }()
		leaves := 1 + or.Intn(2)
		for i := 0; i < leaves; i++ {
			cp := netsim.NewPipe(link)
			cf.add(cp)
			v := &worker.Volunteer{
				Name:       fmt.Sprintf("leaf-%d", i+1),
				Channel:    hb,
				Delay:      or.Duration(2*time.Millisecond, 6*time.Millisecond),
				CrashAfter: -1,
				Resolve:    resolve,
			}
			go func() { _ = v.JoinWS(cp.A) }()
			go func() { _ = node.AdmitChild(transport.NewWSock(cp.B, hb)) }()
		}
	}

	// --- Fault schedule, derived from the seed. Worker 0 is protected
	// (liveness anchor): it never receives a lethal fault. ---
	fr := r.Fork("faults")
	sched := &chaos.Schedule{}
	const horizon = 450 * time.Millisecond
	for i := 1; i < nWorkers; i++ {
		p := workerPipes[i]
		wname := fmt.Sprintf("cw-%d", i+1)
		at := fr.Duration(20*time.Millisecond, horizon-120*time.Millisecond)
		switch fr.Intn(5) {
		case 0: // churn: crash-stop, then the device rejoins under its name
			chaos.Cut(sched, wname, p, at)
			rejoin := at + fr.Duration(40*time.Millisecond, 150*time.Millisecond)
			link, delay := workerLinks[i], fr.Duration(2*time.Millisecond, 6*time.Millisecond)
			sched.Add(rejoin, fmt.Sprintf("rejoin %s", wname), func() { spawn(wname, link, delay) })
		case 1: // transient stalls, some shorter and some longer than the heartbeat timeout
			chaos.Flap(sched, fr.Fork("flap:"+wname), wname, p,
				1+fr.Intn(2), at, 200*time.Millisecond, 10*time.Millisecond, 120*time.Millisecond)
		case 2: // the wire goes bad: drops and bit flips until the connection dies
			chaos.Corrupt(sched, fr, wname, p, fr.Bool(0.5), at)
		case 3: // asymmetric congestion, then heal
			chaos.Degrade(sched, wname, p, fr.Bool(0.5),
				fr.Duration(20*time.Millisecond, 80*time.Millisecond),
				at, fr.Duration(80*time.Millisecond, 250*time.Millisecond))
		case 4: // permanent silent crash
			chaos.Cut(sched, wname, p, at)
		}
	}
	if fr.Bool(0.5) && nWorkers > 2 {
		// A short netsplit across a random subset — held under the
		// heartbeat timeout, so it must be survived as a stall, not a
		// crash (partial synchrony, paper §2.3).
		perm := fr.Perm(nWorkers)
		cutCount := 2 + fr.Intn(nWorkers-2)
		group := make([]*netsim.Pipe, 0, cutCount)
		for _, idx := range perm[:cutCount] {
			group = append(group, workerPipes[idx])
		}
		chaos.Partition(sched, "netsplit", group,
			fr.Duration(40*time.Millisecond, horizon/2), 40*time.Millisecond)
	}
	if withRelay {
		rr := r.Fork("relay-faults")
		if rr.Bool(0.5) {
			chaos.Cut(sched, "relay-parent", relayParent, rr.Duration(60*time.Millisecond, horizon/2))
		} else {
			chaos.Flap(sched, rr, "relay-parent", relayParent,
				1, rr.Duration(40*time.Millisecond, horizon/2), 150*time.Millisecond,
				10*time.Millisecond, 120*time.Millisecond)
		}
	}
	jr := r.Fork("joiners")
	for i, extra := 0, jr.Intn(3); i < extra; i++ {
		name := fmt.Sprintf("late-%d", i+1)
		at := jr.Duration(60*time.Millisecond, horizon)
		delay := jr.Duration(2*time.Millisecond, 6*time.Millisecond)
		sched.Add(at, fmt.Sprintf("join %s", name), func() { spawn(name, netsim.Loopback, delay) })
	}
	// Reinforcements: fresh reliable devices near the horizon guarantee
	// liveness no matter what the faults above removed.
	sched.Add(horizon, "reinforce fleet", func() {
		spawn("reinforce-1", netsim.Loopback, 0)
		spawn("reinforce-2", netsim.Loopback, 0)
	})

	t.Logf("chaos: %d workers, relay=%v, %d scheduled events:\n%s",
		nWorkers, withRelay, sched.Len(), strings.Join(sched.Describe(), "\n"))

	stopSched := make(chan struct{})
	schedDone := make(chan struct{})
	go func() { defer close(schedDone); sched.Play(stopSched) }()
	var stopOnce sync.Once
	stopPlay := func() { stopOnce.Do(func() { close(stopSched) }); <-schedDone }
	defer stopPlay()

	// --- Job B runs for the whole scenario on the shared fleet. ---
	otherIn := make(chan string)
	stopOther := make(chan struct{})
	otherFed := make(chan int, 1)
	go func() {
		i := 0
		for {
			select {
			case otherIn <- fmt.Sprintf("s%d", i):
				i++
			case <-stopOther:
				close(otherIn)
				otherFed <- i
				return
			}
		}
	}()
	otherOutC, otherErrC := jobB.Process(context.Background(), otherIn)
	otherCollected := make(chan []string, 1)
	go func() {
		var out []string
		for s := range otherOutC {
			out = append(out, s)
		}
		otherCollected <- out
	}()

	// --- Job A: the checkpointed stream, killed mid-run on some seeds. ---
	ar := r.Fork("master")
	kill := ar.Bool(0.6)
	var got []int
	var finalA *pando.Pando[int, int]
	if kill {
		a1 := mapA()
		ctx1, cancel1 := context.WithCancel(context.Background())
		in1 := make(chan int)
		stop1 := make(chan struct{})
		go func() {
			defer close(in1)
			for i := 0; i < n; i++ {
				select {
				case in1 <- i:
				case <-stop1:
					return
				}
			}
		}()
		out1, errc1 := a1.Process(ctx1, in1)
		k := n/5 + ar.Intn(n/5)
		prefix := collectN(t, out1, k, 90*time.Second, "job A run 1")
		if err := chaos.CheckExact(prefix, k, wantA); err != nil {
			t.Fatalf("job A pre-kill prefix: %v", err)
		}
		if err := a1.Checkpoint().Sync(); err != nil {
			t.Fatal(err)
		}
		// The kill: sever the feed, abort the stream, close the master
		// mid-flight while volunteers still hold values.
		close(stop1)
		cancel1()
		collectClosed(t, out1, 0, 30*time.Second, "job A run 1 drain")
		<-errc1
		a1.Close()
		// The crash's torn write after the last durable record.
		garbage := make([]byte, 1+ar.Intn(12))
		for i := range garbage {
			garbage[i] = byte(ar.Intn(256))
		}
		fh, err := os.OpenFile(ckpt, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.Write(garbage); err != nil {
			t.Fatal(err)
		}
		fh.Close()

		// Restart over the same journal with fresh devices.
		a2 := mapA()
		finalA = a2
		spawn("post-kill-1", netsim.Loopback, 0)
		spawn("post-kill-2", netsim.Loopback, 0)
		in2 := make(chan int)
		go func() {
			defer close(in2)
			for i := 0; i < n; i++ {
				in2 <- i
			}
		}()
		out2, errc2 := a2.Process(context.Background(), in2)
		got = collectClosed(t, out2, n, 90*time.Second, "job A run 2")
		if err := <-errc2; err != nil {
			t.Fatalf("job A run 2 failed: %v", err)
		}
		// The synced prefix was restored, not recomputed (speculation may
		// add a few duplicate computations, hence the k/2 margin).
		if items := a2.TotalItems(); items > n-k/2 {
			t.Errorf("run 2 computed %d items; the synced %d-output prefix was not restored", items, k)
		}
	} else {
		a1 := mapA()
		finalA = a1
		in := make(chan int)
		go func() {
			defer close(in)
			for i := 0; i < n; i++ {
				in <- i
			}
		}()
		out, errc := a1.Process(context.Background(), in)
		got = collectClosed(t, out, n, 90*time.Second, "job A")
		if err := <-errc; err != nil {
			t.Fatalf("job A failed: %v", err)
		}
	}

	// Invariant 1: exactly-once, in-order output.
	if err := chaos.CheckExact(got, n, wantA); err != nil {
		t.Errorf("job A output: %v", err)
	}
	finalA.Close()

	// Invariant 2: journal-resume byte identity — what any future resume
	// would replay equals what an uninterrupted run emits.
	enc := transport.JSONCodec[int]{}
	if err := chaos.VerifyJournal(ckpt, n, func(i int) []byte {
		b, err := enc.Encode(wantA(i))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}); err != nil {
		t.Errorf("journal: %v", err)
	}

	// Job B survived everything: stop its feed and check its output.
	close(stopOther)
	fed := <-otherFed
	if err := <-otherErrC; err != nil {
		t.Fatalf("job B failed: %v", err)
	}
	otherOut := <-otherCollected
	if err := chaos.CheckExact(otherOut, fed, func(i int) string { return fmt.Sprintf("s%d-ok", i) }); err != nil {
		t.Errorf("job B output: %v", err)
	}
	if fed == 0 {
		t.Error("job B never processed anything on the shared fleet")
	}
	jobB.Close()

	// Invariant 3: no stale fleet leases once every job has closed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stale := chaos.StaleLeases(pool.Workers(), func(string) bool { return false })
		if len(stale) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("stale leases after all jobs closed: %v", stale)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Invariant 4: everything unwinds — no goroutine (or simulated
	// socket) leaks once the scenario's resources are released.
	stopPlay()
	pool.Close()
	cf.cutAll()
	t.Logf("chaos: fired %d/%d events", len(sched.Fired()), sched.Len())
	if err := guard.Check(10 * time.Second); err != nil {
		t.Errorf("leak check: %v", err)
	}
}

// TestChaosShardMigration drives a sharded deployment through seeded
// worker churn while crash-stopping shard masters mid-stream at seeded
// output offsets. Every kill must migrate the dead master's index range
// to a fresh sibling with the output stream coming through exactly-once
// and in order, and the union of the completion segments left on disk —
// every shard, every epoch, including the killed masters' — must be
// byte-identical to what an unfaulted run records.
func TestChaosShardMigration(t *testing.T) {
	for _, seed := range chaosSeeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosShardMigration(t, seed)
		})
	}
}

func runChaosShardMigration(t *testing.T, seed int64) {
	t.Logf("chaos: seed %d (reproduce: go test -run 'TestChaosShardMigration' -chaos.seed=%d)", seed, seed)
	r := chaos.New(seed)
	guard := chaos.Guard()
	n := *chaosItems
	if n < 40 {
		// Kill offsets land in [n/8, n/2); a tiny replay value would park
		// every kill on the same couple of outputs.
		n = 40
	}

	f := func(v int) (int, error) { return v*v + 7, nil }
	want := func(i int) int { return i*i + 7 }
	name := integName("chaos-shard")
	hb := pando.ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}
	segDir := t.TempDir()

	pool := pando.NewPool(pando.WithChannelConfig(hb), pando.WithRebalanceInterval(25*time.Millisecond))
	defer pool.Close()

	handler := pando.Handler(f)
	resolve := func(fn string) (worker.Handler, bool) {
		if fn == name {
			return handler, true
		}
		return nil, false
	}
	cf := &chaosFleet{}
	defer cf.cutAll()
	spawn := func(wname string, link netsim.Link, delay time.Duration) *netsim.Pipe {
		v := &worker.Volunteer{
			Name:       wname,
			Channel:    hb,
			Delay:      delay,
			CrashAfter: -1,
			Functions:  []string{"*"},
			Resolve:    resolve,
		}
		pipe := netsim.NewPipe(link)
		cf.add(pipe)
		go func() { _ = v.JoinWS(pipe.A) }()
		go func() { _ = pool.Fleet().Admit(transport.NewWSock(pipe.B, hb)) }()
		return pipe
	}

	// --- Deployment shape, derived from the seed. ---
	sr := r.Fork("shape")
	nShards := 2 + sr.Intn(3) // 2..4 shard masters
	p := pando.Map(pool, name, f,
		pando.WithShards(nShards),
		pando.WithShardWindow(32), // small window: reorder backpressure stays hot
		pando.WithShardDir(segDir),
		pando.WithChannelConfig(hb),
		pando.WithoutRegistry())
	defer p.Close()

	// --- Fleet: enough devices to cover every shard, plus churn room. ---
	wr := r.Fork("workers")
	nWorkers := 2*nShards + wr.Intn(3)
	workerPipes := make([]*netsim.Pipe, nWorkers)
	workerLinks := make([]netsim.Link, nWorkers)
	for i := 0; i < nWorkers; i++ {
		link := netsim.Link{
			Latency: wr.Duration(0, 3*time.Millisecond),
			Jitter:  wr.Duration(0, 2*time.Millisecond),
			Seed:    wr.Int63() | 1,
		}
		workerLinks[i] = link
		workerPipes[i] = spawn(fmt.Sprintf("sw-%d", i+1), link, wr.Duration(2*time.Millisecond, 10*time.Millisecond))
	}

	// --- Seeded worker churn around the kills. Worker 0 is protected. ---
	fr := r.Fork("faults")
	sched := &chaos.Schedule{}
	const horizon = 450 * time.Millisecond
	for i := 1; i < nWorkers; i++ {
		pipe := workerPipes[i]
		wname := fmt.Sprintf("sw-%d", i+1)
		at := fr.Duration(20*time.Millisecond, horizon-120*time.Millisecond)
		switch fr.Intn(4) {
		case 0: // churn: crash-stop, then the device rejoins
			chaos.Cut(sched, wname, pipe, at)
			rejoin := at + fr.Duration(40*time.Millisecond, 150*time.Millisecond)
			link, delay := workerLinks[i], fr.Duration(2*time.Millisecond, 6*time.Millisecond)
			sched.Add(rejoin, fmt.Sprintf("rejoin %s", wname), func() { spawn(wname, link, delay) })
		case 1: // stalls straddling the heartbeat timeout
			chaos.Flap(sched, fr.Fork("flap:"+wname), wname, pipe,
				1+fr.Intn(2), at, 200*time.Millisecond, 10*time.Millisecond, 120*time.Millisecond)
		case 2: // asymmetric congestion, then heal
			chaos.Degrade(sched, wname, pipe, fr.Bool(0.5),
				fr.Duration(20*time.Millisecond, 80*time.Millisecond),
				at, fr.Duration(80*time.Millisecond, 250*time.Millisecond))
		case 3: // permanent silent crash
			chaos.Cut(sched, wname, pipe, at)
		}
	}
	// Reinforcements: a fresh reliable device per shard near the horizon,
	// so liveness holds no matter which devices the churn removed.
	sched.Add(horizon, "reinforce fleet", func() {
		for i := 0; i < nShards; i++ {
			spawn(fmt.Sprintf("reinforce-%d", i+1), netsim.Loopback, 0)
		}
	})

	// --- The shard kills: seeded (slot, output-offset) pairs, fired when
	// the collector has read that many globally ordered results — so the
	// crash always lands mid-stream, deterministically per seed. ---
	kr := r.Fork("kills")
	type shardKill struct{ at, slot int }
	kills := make([]shardKill, 1+kr.Intn(nShards))
	for i := range kills {
		kills[i] = shardKill{at: n/8 + kr.Intn(n/2-n/8), slot: kr.Intn(nShards)}
	}
	sort.Slice(kills, func(i, j int) bool { return kills[i].at < kills[j].at })
	for _, k := range kills {
		t.Logf("chaos: will kill shard slot %d after output %d", k.slot, k.at)
	}
	t.Logf("chaos: %d shards, %d workers, %d scheduled events:\n%s",
		nShards, nWorkers, sched.Len(), strings.Join(sched.Describe(), "\n"))

	stopSched := make(chan struct{})
	schedDone := make(chan struct{})
	go func() { defer close(schedDone); sched.Play(stopSched) }()
	var stopOnce sync.Once
	stopPlay := func() { stopOnce.Do(func() { close(stopSched) }); <-schedDone }
	defer stopPlay()

	in := make(chan int)
	go func() {
		defer close(in)
		for i := 0; i < n; i++ {
			in <- i
		}
	}()
	out, errc := p.Process(context.Background(), in)

	var got []int
	timer := time.NewTimer(90 * time.Second)
	defer timer.Stop()
	next := 0
collect:
	for {
		select {
		case v, ok := <-out:
			if !ok {
				break collect
			}
			got = append(got, v)
			for next < len(kills) && len(got) >= kills[next].at {
				if err := p.FailShard(kills[next].slot); err != nil {
					t.Fatalf("kill %d (slot %d): %v", next, kills[next].slot, err)
				}
				next++
			}
		case <-timer.C:
			t.Fatalf("sharded stream wedged: %d/%d outputs (%d/%d kills fired)", len(got), n, next, len(kills))
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("sharded job failed: %v", err)
	}
	if next != len(kills) {
		t.Fatalf("only %d/%d kills fired before the stream completed", next, len(kills))
	}

	// Invariant 1: exactly-once, in-order output across every migration.
	if err := chaos.CheckExact(got, n, want); err != nil {
		t.Errorf("sharded output: %v", err)
	}

	// Invariant 2: migration lineage — every kill produced a migrated row
	// and a live adoptive successor.
	stats := p.ShardStats()
	migrated := 0
	for _, s := range stats {
		if s.Migrated {
			migrated++
		}
	}
	if migrated != len(kills) {
		t.Errorf("%d migrated shard rows, want %d (stats: %+v)", migrated, len(kills), stats)
	}
	if len(stats) != nShards+len(kills) {
		t.Errorf("%d shard rows, want %d members + %d migrations", len(stats), nShards, len(kills))
	}

	// Invariant 3: segment byte identity. Close flushes the segments;
	// WithShardDir leaves them on disk. The union over all shards and
	// epochs must record every index exactly as an unfaulted run would.
	p.Close()
	enc := transport.JSONCodec[int]{}
	if err := chaos.VerifySegments(segDir, n, func(i int) []byte {
		b, err := enc.Encode(want(i))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}); err != nil {
		t.Errorf("segments: %v", err)
	}

	// Invariant 4: no stale fleet leases once the job has closed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stale := chaos.StaleLeases(pool.Workers(), func(string) bool { return false })
		if len(stale) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("stale leases after close: %v", stale)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Invariant 5: everything unwinds.
	stopPlay()
	pool.Close()
	cf.cutAll()
	t.Logf("chaos: fired %d/%d events, %d shard kills", len(sched.Fired()), sched.Len(), len(kills))
	if err := guard.Check(10 * time.Second); err != nil {
		t.Errorf("leak check: %v", err)
	}
}

// TestChaosDataPlane drives the '/pando/2.2.0' bandwidth-aware data
// plane — negotiated frame compression plus content-addressed payload
// dedup — through seeded blob-cache poisoning, compressed-frame wire
// corruption, and ordinary worker churn, all on one fleet. A poisoned
// cache entry must surface as a digest mismatch on its next reference
// and a corrupted compressed frame as a CRC or DEFLATE failure; both
// must degrade to crash-stop (the device is re-lent, never believed),
// so the output stays exactly-once and in order.
func TestChaosDataPlane(t *testing.T) {
	for _, seed := range chaosSeeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosDataPlane(t, seed)
		})
	}
}

func runChaosDataPlane(t *testing.T, seed int64) {
	t.Logf("chaos: seed %d (reproduce: go test -run 'TestChaosDataPlane' -chaos.seed=%d)", seed, seed)
	r := chaos.New(seed)
	guard := chaos.Guard()
	n := *chaosItems
	if n < 40 {
		// The schedule poisons and corrupts mid-stream; a tiny replay
		// value would end the stream before any fault lands on traffic.
		n = 40
	}

	// The workload is shaped for the dedup plane: most inputs repeat one
	// large compressible tile, so once a channel has transmitted the
	// bytes every further send is a digest-only blob reference — exactly
	// the frames poisoning attacks. Every 4th input is a small unique
	// marker (below the dedup threshold) that pins global ordering: a
	// swap between identical tile outputs would be invisible to
	// CheckExact, a displaced marker is not.
	const tileBytes = 4096
	tile := make([]byte, tileBytes)
	for i := range tile {
		tile[i] = byte(i*31 + 7)
	}
	input := func(i int) []byte {
		if i%4 == 0 {
			return []byte(fmt.Sprintf("marker-%06d", i))
		}
		return tile
	}
	digest := func(b []byte) (string, error) {
		var sum uint64
		for _, c := range b {
			sum = sum*131 + uint64(c)
		}
		return fmt.Sprintf("%d:%016x", len(b), sum), nil
	}
	want := func(i int) string { s, _ := digest(input(i)); return s }

	name := integName("chaos-blob")
	hb := pando.ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}
	pool := pando.NewPool(pando.WithChannelConfig(hb), pando.WithRebalanceInterval(25*time.Millisecond))
	defer pool.Close()

	handler := pando.Handler(digest)
	resolve := func(fn string) (worker.Handler, bool) {
		if fn == name {
			return handler, true
		}
		return nil, false
	}
	cf := &chaosFleet{}
	defer cf.cutAll()
	spawn := func(wname string, link netsim.Link, delay time.Duration, cacheBytes int64) (*worker.Volunteer, *netsim.Pipe) {
		v := &worker.Volunteer{
			Name:           wname,
			Channel:        hb,
			Delay:          delay,
			CrashAfter:     -1,
			Functions:      []string{"*"},
			Resolve:        resolve,
			BlobCacheBytes: cacheBytes,
		}
		pipe := netsim.NewPipe(link)
		cf.add(pipe)
		go func() { _ = v.JoinWS(pipe.A) }()
		go func() { _ = pool.Fleet().Admit(transport.NewWSock(pipe.B, hb)) }()
		return v, pipe
	}

	job := pando.Map(pool, name, digest,
		pando.WithAdaptiveLimit(1, 8),
		pando.WithChannelConfig(hb),
		pando.WithoutRegistry())
	defer job.Close()

	// --- Fleet, derived from the seed. One seeded device runs with a
	// degenerate single-entry cache, so blobmiss fetch exchanges happen
	// under fire too, not only cache hits. ---
	wr := r.Fork("workers")
	nWorkers := 4 + wr.Intn(3)
	tinyCache := 1 + wr.Intn(nWorkers-1) // never worker 0, the liveness anchor
	vols := make([]*worker.Volunteer, nWorkers)
	pipes := make([]*netsim.Pipe, nWorkers)
	links := make([]netsim.Link, nWorkers)
	for i := 0; i < nWorkers; i++ {
		link := netsim.Link{
			Latency: wr.Duration(0, 3*time.Millisecond),
			Jitter:  wr.Duration(0, 2*time.Millisecond),
			Seed:    wr.Int63() | 1,
		}
		var cache int64
		if i == tinyCache {
			cache = -1
		}
		links[i] = link
		vols[i], pipes[i] = spawn(fmt.Sprintf("bw-%d", i+1), link, wr.Duration(2*time.Millisecond, 8*time.Millisecond), cache)
	}

	// --- Fault schedule. Worker 0 is protected (liveness anchor);
	// worker 1 always takes a cache poisoning and worker 2 always takes
	// wire corruption, so every seed exercises both data-plane faults;
	// the rest draw from the combined menu. ---
	fr := r.Fork("faults")
	sched := &chaos.Schedule{}
	const horizon = 450 * time.Millisecond
	for i := 1; i < nWorkers; i++ {
		pipe := pipes[i]
		wname := fmt.Sprintf("bw-%d", i+1)
		at := fr.Duration(30*time.Millisecond, horizon-120*time.Millisecond)
		pick := fr.Intn(4)
		switch {
		case i == 1 || (i > 2 && pick == 0):
			// Seeded poisonings: one or two byte flips in the device's
			// newest cached blob, spread over the stream.
			for p, count := 0, 1+fr.Intn(2); p < count; p++ {
				chaos.Poison(sched, wname, vols[i], at+fr.Duration(0, 100*time.Millisecond))
			}
		case i == 2 || (i > 2 && pick == 1):
			// Byte flips on the wire: with '/pando/2.2.0' negotiated the
			// scrambled frames are compressed ones, so the CRC over the
			// compressed body (or DEFLATE itself) must catch them.
			chaos.Corrupt(sched, fr, wname, pipe, fr.Bool(0.5), at)
		case pick == 2:
			chaos.Cut(sched, wname, pipe, at)
			rejoin := at + fr.Duration(40*time.Millisecond, 150*time.Millisecond)
			link, delay := links[i], fr.Duration(2*time.Millisecond, 6*time.Millisecond)
			sched.Add(rejoin, fmt.Sprintf("rejoin %s", wname), func() { spawn(wname, link, delay, 0) })
		default:
			chaos.Flap(sched, fr.Fork("flap:"+wname), wname, pipe,
				1+fr.Intn(2), at, 200*time.Millisecond, 10*time.Millisecond, 120*time.Millisecond)
		}
	}
	// Reinforcements: fresh reliable devices near the horizon guarantee
	// liveness no matter which devices the faults removed.
	sched.Add(horizon, "reinforce fleet", func() {
		spawn("reinforce-1", netsim.Loopback, 0, 0)
		spawn("reinforce-2", netsim.Loopback, 0, 0)
	})
	t.Logf("chaos: %d workers (tiny cache: bw-%d), %d scheduled events:\n%s",
		nWorkers, tinyCache+1, sched.Len(), strings.Join(sched.Describe(), "\n"))

	stopSched := make(chan struct{})
	schedDone := make(chan struct{})
	go func() { defer close(schedDone); sched.Play(stopSched) }()
	var stopOnce sync.Once
	stopPlay := func() { stopOnce.Do(func() { close(stopSched) }); <-schedDone }
	defer stopPlay()

	in := make(chan []byte)
	go func() {
		defer close(in)
		for i := 0; i < n; i++ {
			in <- input(i)
		}
	}()
	out, errc := job.Process(context.Background(), in)
	got := collectClosed(t, out, n, 90*time.Second, "data-plane job")
	if err := <-errc; err != nil {
		t.Fatalf("data-plane job failed: %v", err)
	}

	// Invariant 1: exactly-once, in-order output — poisoned caches and
	// corrupted frames crash-stopped their channels instead of leaking
	// wrong bytes into results.
	if err := chaos.CheckExact(got, n, want); err != nil {
		t.Errorf("data-plane output: %v", err)
	}

	// Invariant 2: the dedup plane was actually in the path — the tile
	// repeats across a fleet whose caps exceed one tile, so at least one
	// channel must have collapsed a repeat into a blob reference.
	hits, misses, evicts := int64(0), int64(0), int64(0)
	for _, w := range job.Stats() {
		hits += w.BlobHits
		misses += w.BlobMisses
		evicts += w.BlobEvicts
	}
	t.Logf("chaos: blob refs on the faulted run: %d hits, %d misses, %d evicts", hits, misses, evicts)
	if hits == 0 {
		t.Error("no blob-reference hits: the dedup plane never engaged under the scenario")
	}
	job.Close()

	// Invariant 3: no stale fleet leases once the job has closed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stale := chaos.StaleLeases(pool.Workers(), func(string) bool { return false })
		if len(stale) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("stale leases after close: %v", stale)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Invariant 4: everything unwinds.
	stopPlay()
	pool.Close()
	cf.cutAll()
	t.Logf("chaos: fired %d/%d events", len(sched.Fired()), sched.Len())
	if err := guard.Check(10 * time.Second); err != nil {
		t.Errorf("leak check: %v", err)
	}
}

// TestChaosSignalFlap drives the WebRTC-like bootstrap through a flapping
// public signalling relay: a reconnecting volunteer keeps re-running the
// bootstrap while its signalling and direct connections are paused and
// cut under it. The deployment must finish with exact output, the relay
// must hold no stale peer registrations, and nothing may leak.
func TestChaosSignalFlap(t *testing.T) {
	for _, seed := range chaosSeeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSignalFlap(t, seed)
		})
	}
}

// trackedDialer dials a netsim listener, recording every pipe so the
// chaos schedule can flap or cut "the current connection".
type trackedDialer struct {
	ln *netsim.Listener
	cf *chaosFleet

	mu    sync.Mutex
	pipes []*netsim.Pipe
}

func (d *trackedDialer) dial(string) (net.Conn, error) {
	conn, pipe, err := d.ln.Dial()
	if err != nil {
		return nil, err
	}
	d.cf.add(pipe)
	d.mu.Lock()
	d.pipes = append(d.pipes, pipe)
	d.mu.Unlock()
	return conn, nil
}

// latest returns the most recently dialed pipe, if any.
func (d *trackedDialer) latest() *netsim.Pipe {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.pipes) == 0 {
		return nil
	}
	return d.pipes[len(d.pipes)-1]
}

func runChaosSignalFlap(t *testing.T, seed int64) {
	t.Logf("chaos: seed %d (reproduce: go test -run 'TestChaosSignalFlap' -chaos.seed=%d)", seed, seed)
	r := chaos.New(seed)
	guard := chaos.Guard()
	n := *chaosItems / 2

	f := func(v int) (int, error) { return 3*v + 1, nil }
	want := func(i int) int { return 3*i + 1 }
	name := integName("chaos-rtc")
	hb := pando.ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}

	p := pando.New(name, f,
		pando.WithAdaptiveLimit(1, 4),
		pando.WithChannelConfig(hb),
		pando.WithoutRegistry())
	// Liveness anchor: one stable local device.
	p.AddWorker("anchor", netsim.LAN, 10*time.Millisecond, -1)

	cf := &chaosFleet{}
	defer cf.cutAll()
	link := netsim.Link{Latency: r.Fork("links").Duration(0, 2*time.Millisecond), Seed: r.Fork("links").Int63() | 1}
	signalLn := netsim.NewListener("signal", link)
	directLn := netsim.NewListener("direct", link)
	defer signalLn.Close()
	defer directLn.Close()

	server := transport.NewSignalServer()
	go server.Serve(signalLn, hb)
	defer server.Close()

	// Master side: join the relay, answer offers on the direct listener.
	masterID := integName("chaos-master")
	mConn, mPipe, err := signalLn.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cf.add(mPipe)
	masterSignal := transport.NewWSock(mConn, hb)
	if err := transport.JoinSignal(masterSignal, masterID); err != nil {
		t.Fatal(err)
	}
	answerer := transport.NewRTCAnswerer(masterSignal, directLn, hb)
	defer answerer.Close()
	go p.ServeRTC(answerer)

	// Volunteer side: the full bootstrap, retried forever with backoff.
	signalDial := &trackedDialer{ln: signalLn, cf: cf}
	directDial := &trackedDialer{ln: directLn, cf: cf}
	vol := &worker.Volunteer{
		Name:       "roamer",
		Handler:    pando.Handler(f),
		Channel:    hb,
		Delay:      5 * time.Millisecond,
		CrashAfter: -1,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reconDone := make(chan struct{})
	go func() {
		defer close(reconDone)
		_ = worker.ServeWithReconnect(ctx, vol,
			worker.ReconnectConfig{InitialBackoff: 15 * time.Millisecond, MaxBackoff: 80 * time.Millisecond},
			func() error {
				conn, err := signalDial.dial("signal")
				if err != nil {
					return err
				}
				return vol.JoinRTC(transport.NewWSock(conn, hb), "roamer", masterID, directDial.dial)
			})
	}()

	// The flap schedule: pause and cut the volunteer's current signalling
	// and direct connections at seeded times.
	fr := r.Fork("faults")
	sched := &chaos.Schedule{}
	const horizon = 250 * time.Millisecond
	flaps := 2 + fr.Intn(4)
	for i := 0; i < flaps; i++ {
		at := fr.Duration(5*time.Millisecond, horizon)
		switch fr.Intn(3) {
		case 0:
			hold := fr.Duration(20*time.Millisecond, 120*time.Millisecond)
			sched.Add(at, fmt.Sprintf("pause signalling (%s)", hold.Round(time.Millisecond)), func() {
				if p := signalDial.latest(); p != nil {
					p.Pause()
					time.AfterFunc(hold, p.Resume)
				}
			})
		case 1:
			sched.Add(at, "cut signalling", func() {
				if p := signalDial.latest(); p != nil {
					p.Cut()
				}
			})
		case 2:
			sched.Add(at, "cut direct", func() {
				if p := directDial.latest(); p != nil {
					p.Cut()
				}
			})
		}
	}
	t.Logf("chaos: %d scheduled events:\n%s", sched.Len(), strings.Join(sched.Describe(), "\n"))
	stopSched := make(chan struct{})
	schedDone := make(chan struct{})
	go func() { defer close(schedDone); sched.Play(stopSched) }()
	var stopOnce sync.Once
	stopPlay := func() { stopOnce.Do(func() { close(stopSched) }); <-schedDone }
	defer stopPlay()

	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}
	in := make(chan int)
	go func() {
		defer close(in)
		for _, v := range inputs {
			in <- v
		}
	}()
	out, errc := p.Process(context.Background(), in)
	got := collectClosed(t, out, n, 90*time.Second, "rtc deployment")
	if err := <-errc; err != nil {
		t.Fatalf("deployment failed: %v", err)
	}
	if err := chaos.CheckExact(got, n, want); err != nil {
		t.Errorf("output: %v", err)
	}
	t.Logf("chaos: roamer processed %d items across its lives; fired %d/%d events",
		vol.Processed(), len(sched.Fired()), sched.Len())

	// Teardown, then the relay must hold no stale registrations besides
	// nothing else leaking.
	cancel()
	<-reconDone
	p.Close()
	stopPlay()
	answerer.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		peers := server.Peers()
		if len(peers) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("stale signalling registrations after teardown: %v", peers)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	server.Close()
	signalLn.Close()
	directLn.Close()
	cf.cutAll()
	if err := guard.Check(10 * time.Second); err != nil {
		t.Errorf("leak check: %v", err)
	}
}

// TestChaosByzantine is the adversarial tier: a fleet whose minority
// actively LIES — fabricated results, freeloading echoes, and a
// coalition of quorum-1 colluders returning byte-identical wrong
// answers — driven against a WithVerification deployment. Crash-stop
// recovery is not enough here; only quorum voting on result digests,
// spot-check recomputation and the reputation ledger stand between the
// cheaters and the output. Every seed must end with: output
// byte-identical to an honest run, every emitted index sealed by the
// voting layer, every cheater quarantined, no honest worker expelled,
// and the usual lease/goroutine hygiene.
func TestChaosByzantine(t *testing.T) {
	for _, seed := range chaosSeeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosByzantine(t, seed)
		})
	}
}

func runChaosByzantine(t *testing.T, seed int64) {
	t.Logf("chaos: seed %d (reproduce: go test -run 'TestChaosByzantine' -chaos.seed=%d)", seed, seed)
	r := chaos.New(seed)
	guard := chaos.Guard()
	n := *chaosItems
	if n < 20 {
		n = 20
	}
	const k, quorum = 2, 2

	f := func(v int) (int, error) { return v*v + 3, nil }
	want := func(i int) int { return i*i + 3 }
	honest := pando.Handler(f)
	name := integName("chaos-byz")
	hb := pando.ChannelConfig{HeartbeatInterval: 20 * time.Millisecond}

	pool := pando.NewPool(pando.WithChannelConfig(hb), pando.WithRebalanceInterval(25*time.Millisecond))
	defer pool.Close()
	job := pando.Map(pool, name, f,
		pando.WithVerification(k, quorum),
		pando.WithSpotCheck(0.15),
		pando.WithTrustThreshold(0.9),
		pando.WithBatch(2),
		pando.WithChannelConfig(hb),
		pando.WithoutRegistry())

	cf := &chaosFleet{}
	defer cf.cutAll()
	spawn := func(wname string, h worker.Handler, link netsim.Link, delay time.Duration) *netsim.Pipe {
		v := &worker.Volunteer{
			Name:       wname,
			Channel:    hb,
			Delay:      delay,
			CrashAfter: -1,
			Functions:  []string{"*"},
			Handler:    h,
		}
		pipe := netsim.NewPipe(link)
		cf.add(pipe)
		go func() { _ = v.JoinWS(pipe.A) }()
		go func() { _ = pool.Fleet().Admit(transport.NewWSock(pipe.B, hb)) }()
		return pipe
	}

	// --- Honest majority, derived from the seed. ---
	wr := r.Fork("workers")
	nHonest := 3 + wr.Intn(3)
	honestNames := make([]string, nHonest)
	honestPipes := make([]*netsim.Pipe, nHonest)
	honestLinks := make([]netsim.Link, nHonest)
	for i := 0; i < nHonest; i++ {
		link := netsim.Link{
			Latency: wr.Duration(0, 2*time.Millisecond),
			Jitter:  wr.Duration(0, time.Millisecond),
			Seed:    wr.Int63() | 1,
		}
		honestNames[i] = fmt.Sprintf("hw-%d", i+1)
		honestLinks[i] = link
		honestPipes[i] = spawn(honestNames[i], honest, link, wr.Duration(2*time.Millisecond, 8*time.Millisecond))
	}

	// --- The Byzantine minority: an intermittent fabricator, a
	// freeloading echo, and a coalition of quorum-1 colluders (the
	// strongest group quorum voting provably defeats). ---
	cheaters := []string{"cheat-wrong", "cheat-echo"}
	spawn("cheat-wrong", chaos.WrongResult(r.Fork("wrong"), honest, 0.85), netsim.Loopback,
		wr.Duration(time.Millisecond, 4*time.Millisecond))
	spawn("cheat-echo", chaos.LazyEcho(), netsim.Loopback, wr.Duration(0, 2*time.Millisecond))
	colluderGroup := r.Fork("collusion").Int63()
	for j := 0; j < quorum-1; j++ {
		cname := fmt.Sprintf("cheat-collude-%d", j+1)
		cheaters = append(cheaters, cname)
		spawn(cname, chaos.Colluder(colluderGroup, honest), netsim.Loopback,
			wr.Duration(0, 2*time.Millisecond))
	}

	// --- Light crash-stop churn on top of the lies: one honest worker
	// (never hw-1, the liveness anchor) crashes and rejoins. ---
	fr := r.Fork("faults")
	sched := &chaos.Schedule{}
	if nHonest > 1 {
		i := 1 + fr.Intn(nHonest-1)
		at := fr.Duration(20*time.Millisecond, 150*time.Millisecond)
		chaos.Cut(sched, honestNames[i], honestPipes[i], at)
		rejoin := at + fr.Duration(40*time.Millisecond, 120*time.Millisecond)
		link, delay := honestLinks[i], fr.Duration(2*time.Millisecond, 6*time.Millisecond)
		wname := honestNames[i]
		sched.Add(rejoin, fmt.Sprintf("rejoin %s", wname), func() { spawn(wname, honest, link, delay) })
	}
	t.Logf("chaos: %d honest workers, %d cheaters, %d scheduled events:\n%s",
		nHonest, len(cheaters), sched.Len(), strings.Join(sched.Describe(), "\n"))
	stopSched := make(chan struct{})
	schedDone := make(chan struct{})
	go func() { defer close(schedDone); sched.Play(stopSched) }()
	var stopOnce sync.Once
	stopPlay := func() { stopOnce.Do(func() { close(stopSched) }); <-schedDone }
	defer stopPlay()

	in := make(chan int)
	go func() {
		defer close(in)
		for i := 0; i < n; i++ {
			in <- i
		}
	}()
	out, errc := job.Process(context.Background(), in)
	got := collectClosed(t, out, n, 90*time.Second, "byzantine job")
	if err := <-errc; err != nil {
		t.Fatalf("byzantine job failed: %v", err)
	}

	// Invariant 1: the output is byte-identical to an honest run —
	// exactly-once, in-order, every value correct despite the lies.
	if err := chaos.CheckExact(got, n, want); err != nil {
		t.Errorf("byzantine output: %v", err)
	}

	// Invariant 2: no unverified value reached the output — every index
	// was sealed by a quorum of distinct workers, the trusted fast path,
	// or a spot-check recomputation.
	audit := job.VerifyAudit()
	if err := chaos.CheckVerified(audit, n, quorum); err != nil {
		t.Errorf("acceptance audit: %v", err)
	}
	fastPath := 0
	for _, a := range audit {
		if a.FastPath {
			fastPath++
		}
	}

	// Invariant 3: every cheater's reputation collapsed below the
	// quarantine line and the fleet expelled it; no honest worker was.
	reps := job.Reputations()
	for _, c := range cheaters {
		rep, ok := reps[c]
		if !ok {
			// A cheater that never held a value never got to lie; with
			// values outnumbering workers this means it was refused or
			// severed before voting — still expelled from the run.
			t.Errorf("cheater %s never appeared in the reputation ledger", c)
			continue
		}
		if !rep.Quarantined {
			t.Errorf("cheater %s not quarantined: %+v", c, rep)
		}
		if rep.Disagreed == 0 {
			t.Errorf("cheater %s was never caught disagreeing: %+v", c, rep)
		}
	}
	for _, h := range honestNames {
		if rep, ok := reps[h]; ok && rep.Quarantined {
			t.Errorf("honest worker %s was quarantined: %+v", h, rep)
		}
	}
	t.Logf("chaos: %d/%d fast-path acceptances, reputations: %d rows", fastPath, n, len(reps))

	job.Close()

	// Invariant 4: no stale leases once the job closed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stale := chaos.StaleLeases(pool.Workers(), func(string) bool { return false })
		if len(stale) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("stale leases after job closed: %v", stale)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Invariant 5: everything unwinds.
	stopPlay()
	pool.Close()
	cf.cutAll()
	if err := guard.Check(10 * time.Second); err != nil {
		t.Errorf("leak check: %v", err)
	}
}
