module pando

go 1.24
