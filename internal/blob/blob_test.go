package blob

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func payload(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag + byte(i*7)
	}
	return b
}

func TestCachePutGetRoundTrip(t *testing.T) {
	c := NewCache(0)
	data := payload(1, 2048)
	d := Sum(data)
	if err := c.Put(d, data); err != nil {
		t.Fatal(err)
	}
	got, hit, err := c.Get(d)
	if err != nil || !hit {
		t.Fatalf("get: hit=%v err=%v", hit, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cached bytes differ from stored bytes")
	}
	// The cache stores a copy: mutating the caller's slice afterwards
	// must not corrupt the entry.
	data[0] ^= 0xFF
	if got2, hit, err := c.Get(d); err != nil || !hit || bytes.Equal(got2, data) {
		t.Fatalf("cache aliased the caller's slice: hit=%v err=%v", hit, err)
	}
}

func TestCachePutRejectsMismatch(t *testing.T) {
	c := NewCache(0)
	data := payload(2, 1024)
	wrong := Sum(payload(3, 1024))
	if err := c.Put(wrong, data); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("put under a foreign digest: %v, want ErrDigestMismatch", err)
	}
	if _, hit, _ := c.Get(wrong); hit {
		t.Fatal("mismatched content was stored anyway")
	}
}

func TestCachePoisonSurfacesOnGet(t *testing.T) {
	c := NewCache(0)
	data := payload(4, 4096)
	d := Sum(data)
	if err := c.Put(d, data); err != nil {
		t.Fatal(err)
	}
	if !c.Poison(d) {
		t.Fatal("poison found no entry")
	}
	if _, _, err := c.Get(d); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("get of poisoned entry: %v, want ErrDigestMismatch", err)
	}
	// The poisoned entry was dropped: the next lookup is a clean miss,
	// so a refetch can repopulate.
	if _, hit, err := c.Get(d); hit || err != nil {
		t.Fatalf("poisoned entry lingered: hit=%v err=%v", hit, err)
	}
	if err := c.Put(d, payload(4, 4096)); err != nil {
		t.Fatalf("repopulate after poison: %v", err)
	}
}

func TestCachePoisonNewest(t *testing.T) {
	c := NewCache(0)
	if c.PoisonNewest() {
		t.Fatal("poisoned an empty cache")
	}
	old := payload(5, 1024)
	fresh := payload(6, 1024)
	if err := c.Put(Sum(old), old); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(Sum(fresh), fresh); err != nil {
		t.Fatal(err)
	}
	if !c.PoisonNewest() {
		t.Fatal("poison found no entry")
	}
	if _, _, err := c.Get(Sum(fresh)); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("newest entry should be the poisoned one: %v", err)
	}
	if _, hit, err := c.Get(Sum(old)); !hit || err != nil {
		t.Fatalf("older entry should be intact: hit=%v err=%v", hit, err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3 * 1024)
	digests := make([]Digest, 4)
	for i := range digests {
		data := payload(byte(10+i), 1024)
		digests[i] = Sum(data)
		if err := c.Put(digests[i], data); err != nil {
			t.Fatal(err)
		}
	}
	if _, hit, _ := c.Get(digests[0]); hit {
		t.Fatal("oldest entry survived past the cap")
	}
	for _, d := range digests[1:] {
		if _, hit, err := c.Get(d); !hit || err != nil {
			t.Fatalf("recent entry evicted early: hit=%v err=%v", hit, err)
		}
	}
	if c.Evictions() == 0 {
		t.Fatal("eviction counter never moved")
	}
}

func TestCacheDegenerateCap(t *testing.T) {
	// A negative cap keeps exactly the newest entry: the reference
	// protocol still works, cross-input reuse does not.
	c := NewCache(-1)
	a, b := payload(20, 1500), payload(21, 1500)
	if err := c.Put(Sum(a), a); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(Sum(b), b); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := c.Get(Sum(a)); hit {
		t.Fatal("degenerate cache held more than the newest entry")
	}
	if _, hit, err := c.Get(Sum(b)); !hit || err != nil {
		t.Fatalf("degenerate cache lost its newest entry: hit=%v err=%v", hit, err)
	}
}

func TestInternAddGet(t *testing.T) {
	in := NewIntern(0)
	data := payload(30, 8192)
	d := Sum(data)
	if _, hit := in.Get(d); hit {
		t.Fatal("hit before add")
	}
	in.Add(d, data)
	got, hit := in.Get(d)
	if !hit || !bytes.Equal(got, data) {
		t.Fatalf("interned bytes differ: hit=%v", hit)
	}
}

func TestSumOf(t *testing.T) {
	d := Sum([]byte("x"))
	if got, ok := SumOf(d[:]); !ok || got != d {
		t.Fatalf("SumOf round trip failed: ok=%v", ok)
	}
	if _, ok := SumOf(d[:31]); ok {
		t.Fatal("SumOf accepted a short digest")
	}
	// SumOf copies out of the frame buffer it aliases.
	wire := append([]byte(nil), d[:]...)
	got, _ := SumOf(wire)
	wire[0] ^= 0xFF
	if got != d {
		t.Fatal("SumOf aliased the wire bytes")
	}
}

func TestFlowStatsIndependentCounters(t *testing.T) {
	var s FlowStats
	s.Hits.Add(2)
	s.Misses.Add(1)
	if h, m, e := s.Hits.Load(), s.Misses.Load(), s.Evicts.Load(); h != 2 || m != 1 || e != 0 {
		t.Fatal(fmt.Sprintf("counters crossed: hits=%d misses=%d evicts=%d", h, m, e))
	}
}
