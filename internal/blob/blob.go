// Package blob implements content-addressed payload storage for the
// '/pando/2.2.0' dedup extension: a master-side intern table that
// remembers payload blocks it has already transmitted, and a worker-side
// size-capped LRU cache that resolves blob references back to bytes.
//
// Both stores key entries by the SHA-256 of the payload, so an entry is
// valid wherever it is found — a worker's cache safely survives fleet
// reassignment across jobs, because a digest from one job can only ever
// resolve to the exact bytes it named. The cache verifies digests on
// insert (a master sending mismatched bytes is a protocol violation) and
// again on every lookup (a corrupted or poisoned entry must surface as an
// error, degrading to crash-stop, never as wrong data handed to a
// processing function).
package blob

import (
	"container/list"
	"crypto/sha256"
	"errors"
	"sync"
	"sync/atomic"
)

// Digest is the SHA-256 content address of a payload block.
type Digest = [sha256.Size]byte

// Sum returns the content address of data.
func Sum(data []byte) Digest { return sha256.Sum256(data) }

// SumOf converts a wire-format digest field (32 raw bytes) to a Digest,
// copying it out of whatever frame buffer it aliases.
func SumOf(b []byte) (Digest, bool) {
	var d Digest
	if len(b) != sha256.Size {
		return d, false
	}
	copy(d[:], b)
	return d, true
}

// ErrDigestMismatch reports content that does not hash to the digest it
// was stored or transmitted under. It is fatal for the channel that
// surfaced it: the stack treats it like frame corruption (crash-stop).
var ErrDigestMismatch = errors.New("blob: content does not match digest")

// DefaultCacheBytes is the worker cache cap when the volunteer does not
// configure one.
const DefaultCacheBytes = 32 << 20

// DefaultInternBytes is the master intern-table cap when the deployment
// does not configure one.
const DefaultInternBytes = 64 << 20

type entry struct {
	d    Digest
	data []byte
}

// store is the shared LRU machinery: a size-capped digest → bytes map
// with least-recently-used eviction.
type store struct {
	mu      sync.Mutex
	max     int64
	size    int64
	order   *list.List // front = most recently used; values are *entry
	entries map[Digest]*list.Element
	evicts  atomic.Int64
}

func newStore(maxBytes int64) *store {
	return &store{
		max:     maxBytes,
		order:   list.New(),
		entries: make(map[Digest]*list.Element),
	}
}

// add inserts a copy of data under d, evicting LRU entries to stay under
// the cap. Inserting an existing digest refreshes its recency.
func (s *store) add(d Digest, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[d]; ok {
		s.order.MoveToFront(el)
		return
	}
	e := &entry{d: d, data: append([]byte(nil), data...)}
	s.entries[d] = s.order.PushFront(e)
	s.size += int64(len(e.data))
	for s.size > s.max && s.order.Len() > 1 {
		el := s.order.Back()
		victim := el.Value.(*entry)
		s.order.Remove(el)
		delete(s.entries, victim.d)
		s.size -= int64(len(victim.data))
		s.evicts.Add(1)
	}
}

// get returns the bytes stored under d, refreshing recency. The returned
// slice is the store's copy: callers must not mutate it.
func (s *store) get(d Digest) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, found := s.entries[d]
	if !found {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*entry).data, true
}

// drop removes d if present.
func (s *store) drop(d Digest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[d]; ok {
		victim := el.Value.(*entry)
		s.order.Remove(el)
		delete(s.entries, d)
		s.size -= int64(len(victim.data))
	}
}

// Cache is the worker-side blob cache: size-capped, LRU, digest-verified
// on insert and on every get.
type Cache struct{ s *store }

// NewCache returns a cache capped at maxBytes. Zero means
// DefaultCacheBytes; negative degenerates to a single most-recent block
// (the LRU never evicts its newest entry), which effectively disables
// cross-input reuse while keeping the reference protocol functional.
func NewCache(maxBytes int64) *Cache {
	if maxBytes == 0 {
		maxBytes = DefaultCacheBytes
	} else if maxBytes < 0 {
		maxBytes = 1
	}
	return &Cache{s: newStore(maxBytes)}
}

// Put verifies that data hashes to d and stores a copy. A mismatch means
// the sender transmitted corrupt content: the caller must fail the
// channel (crash-stop), and nothing is stored.
func (c *Cache) Put(d Digest, data []byte) error {
	if Sum(data) != d {
		return ErrDigestMismatch
	}
	c.s.add(d, data)
	return nil
}

// Get resolves d. The error return is the poisoned-entry case: the stored
// bytes no longer hash to their digest, which can only mean memory
// corruption (or a test's Poison call) — the entry is dropped and the
// caller must fail the channel rather than risk wrong output. A plain
// miss is (nil, false, nil): the caller fetches from the master.
func (c *Cache) Get(d Digest) ([]byte, bool, error) {
	data, ok := c.s.get(d)
	if !ok {
		return nil, false, nil
	}
	if Sum(data) != d {
		c.s.drop(d)
		return nil, false, ErrDigestMismatch
	}
	return data, true, nil
}

// Evictions reports how many entries the cap has pushed out.
func (c *Cache) Evictions() int64 { return c.s.evicts.Load() }

// PoisonNewest flips a byte of the most-recently-used entry, if any —
// the seeded chaos schedule's form of Poison for when the scenario
// cannot know which digests a worker happens to hold at firing time.
func (c *Cache) PoisonNewest() bool {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	el := c.s.order.Front()
	if el == nil {
		return false
	}
	e := el.Value.(*entry)
	if len(e.data) == 0 {
		return false
	}
	e.data[len(e.data)/2] ^= 0x40
	return true
}

// Poison flips a byte of the entry stored under d, if present — the test
// hook the chaos suite uses to prove a corrupted cache entry degrades to
// crash-stop instead of producing wrong results.
func (c *Cache) Poison(d Digest) bool {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	el, ok := c.s.entries[d]
	if !ok {
		return false
	}
	e := el.Value.(*entry)
	if len(e.data) == 0 {
		return false
	}
	e.data[len(e.data)/2] ^= 0x40
	return true
}

// Intern is the master-side content store: payload blocks the job has
// transmitted at least once, kept so blob references can be served on a
// worker's miss. It shares the LRU machinery but does not verify on get —
// the master hashed the bytes itself when interning them.
type Intern struct{ s *store }

// NewIntern returns an intern table capped at maxBytes
// (DefaultInternBytes when maxBytes is 0).
func NewIntern(maxBytes int64) *Intern {
	if maxBytes <= 0 {
		maxBytes = DefaultInternBytes
	}
	return &Intern{s: newStore(maxBytes)}
}

// Add stores a copy of data under d (the caller computed d = Sum(data)).
func (in *Intern) Add(d Digest, data []byte) { in.s.add(d, data) }

// Get returns the interned bytes for d. A miss means the cap evicted the
// block since the reference was sent; the caller reports the blob gone
// and lets the channel crash-stop (the engine re-lends the value).
func (in *Intern) Get(d Digest) ([]byte, bool) { return in.s.get(d) }

// Evictions reports how many blocks the cap has pushed out.
func (in *Intern) Evictions() int64 { return in.s.evicts.Load() }

// FlowStats counts dedup traffic for one worker channel; the master keeps
// one per worker name and merges it into WorkerStats (and the per-job
// /stats JSON). Hits are inputs that travelled as a digest-only
// reference; Misses are blob fetches served because the worker's cache
// could not resolve a reference; Evicts are intern-table evictions
// charged to this worker's sends.
type FlowStats struct {
	Hits   atomic.Int64
	Misses atomic.Int64
	Evicts atomic.Int64
}
