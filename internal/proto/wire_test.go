package proto

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"
	"testing/quick"
)

// withCRC appends the v2 CRC trailer to a hand-built body so tests reach
// the field-level validation behind the integrity check.
func withCRC(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

func fullMessage() *Message {
	return &Message{
		Type:    TypeHello,
		Seq:     123456789,
		Data:    []byte{0x00, 0xFF, 0xB2, '"', '{'},
		Err:     "boom",
		Version: Version,
		Func:    "render",
		Cores:   8,
		Batch:   4,
		Token:   "tok",
		Peer:    "iPhone SE",
		To:      "master",
		Addr:    "10.0.0.1:4242",
		Formats: []string{Version2, Version},
		Wire:    Version2,
	}
}

func TestBinaryFrameRoundTrip(t *testing.T) {
	in := fullMessage()
	var buf bytes.Buffer
	if err := V2.WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := V2.ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out.buf = nil // compare payload fields, not arena bookkeeping
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestBinaryFrameOmitsEmptyFields(t *testing.T) {
	var buf bytes.Buffer
	if err := V2.WriteFrame(&buf, &Message{Type: TypePing}); err != nil {
		t.Fatal(err)
	}
	// 4-byte prefix + magic + tag + 1-byte type code + 4-byte CRC.
	if got := buf.Len(); got != 11 {
		t.Fatalf("ping frame is %d bytes, want 11", got)
	}
	m, err := V2.ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypePing {
		t.Fatalf("type = %q", m.Type)
	}
}

func TestBinaryFrameUnknownTypeString(t *testing.T) {
	in := &Message{Type: Type("future-extension")}
	var buf bytes.Buffer
	if err := V2.WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := V2.ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type {
		t.Fatalf("type = %q, want %q", out.Type, in.Type)
	}
}

// TestReadFrameSniffsBothFormats interleaves v1 and v2 frames on one
// stream: the reader must accept both without knowing the negotiation
// state, the property the handshake's format switch relies on.
func TestReadFrameSniffsBothFormats(t *testing.T) {
	var buf bytes.Buffer
	if err := V1.WriteFrame(&buf, &Message{Type: TypeInput, Seq: 1, Data: []byte(`"a"`)}); err != nil {
		t.Fatal(err)
	}
	if err := V2.WriteFrame(&buf, &Message{Type: TypeInput, Seq: 2, Data: []byte{0xB2, 0x00}}); err != nil {
		t.Fatal(err)
	}
	if err := V1.WriteFrame(&buf, &Message{Type: TypePing}); err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{1, 2, 0} {
		m, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m.Seq != want {
			t.Fatalf("frame %d: seq = %d, want %d", i, m.Seq, want)
		}
	}
}

func TestBinaryFrameStrictReader(t *testing.T) {
	var buf bytes.Buffer
	if err := V1.WriteFrame(&buf, &Message{Type: TypePing}); err != nil {
		t.Fatal(err)
	}
	if _, err := V2.ReadFrame(&buf); err == nil {
		t.Fatal("v2 reader accepted a JSON body")
	}
}

func TestBinaryFrameTruncations(t *testing.T) {
	var buf bytes.Buffer
	if err := V2.WriteFrame(&buf, fullMessage()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Every strict prefix must fail cleanly, never panic.
	for cut := 0; cut < len(raw); cut++ {
		if _, err := ReadFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", cut, len(raw))
		}
	}
}

func TestBinaryBodyCorruptions(t *testing.T) {
	cases := map[string][]byte{
		"empty after magic ok but no type": withCRC([]byte{binMagic}),
		"bad varint":                       withCRC([]byte{binMagic, tagSeq, 0x80}),
		"length past end":                  withCRC([]byte{binMagic, tagData, 0x05, 'a'}),
		"no CRC trailer":                   {binMagic, tagType, 0x07},
	}
	for name, body := range cases {
		if _, err := decodeBinaryBody(body); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
}

// TestBinaryBodyUnknownTypeCode: a type code from a newer peer must not
// kill the channel — it decodes to an opaque type the receive loops skip,
// matching how v1 treats unknown type strings.
func TestBinaryBodyUnknownTypeCode(t *testing.T) {
	m, err := decodeBinaryBody(withCRC([]byte{binMagic, tagType, 0x7F}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Type == "" {
		t.Fatal("unknown type code decoded to an empty type")
	}
}

func TestBinaryBodySkipsUnknownTags(t *testing.T) {
	body := []byte{binMagic}
	body = append(body, 0x70, 0x05)             // unknown numeric field
	body = append(body, 0xF0, 0x02, 0xAA, 0xBB) // unknown length-delimited field
	body = append(body, tagType, 0x07)          // ping
	m, err := decodeBinaryBody(withCRC(body))
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypePing {
		t.Fatalf("type = %q, want ping", m.Type)
	}
}

func TestBinaryBatchRoundTrip(t *testing.T) {
	items := []BatchItem{
		{D: []byte("alpha")},
		{E: "failed"},
		{D: []byte{0xB3, 0x00, 0xFF}, E: "both"},
		{},
	}
	data, err := V2.EncodeBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	got, err := V2.DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(items, got) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, items)
	}
	// The format-agnostic decoder must sniff it too.
	got, err = DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(items, got) {
		t.Fatalf("sniffed round trip mismatch: %+v", got)
	}
}

func TestBinaryBatchRejectsHostileCounts(t *testing.T) {
	// Claims 2^32 items in a 3-byte body: must fail before allocating.
	data := []byte{binBatchMagic, 0x80, 0x80, 0x80, 0x80, 0x10}
	if _, err := V2.DecodeBatch(data); err == nil {
		t.Fatal("hostile count decoded successfully")
	}
	// Trailing garbage after a valid batch.
	ok, _ := V2.EncodeBatch([]BatchItem{{D: []byte("x")}})
	if _, err := V2.DecodeBatch(append(ok, 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDecodeBatchSniffsJSON(t *testing.T) {
	items := []BatchItem{{D: []byte(`1`)}, {D: []byte(`2`)}}
	data, err := V1.EncodeBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		name      string
		preferred []string
		offered   []string
		want      string
	}{
		{"both v2-capable", nil, []string{Version2, Version}, Version2},
		{"v1-only worker", nil, []string{Version}, Version},
		{"pre-negotiation worker", nil, nil, Version},
		{"master pinned to v1", []string{Version}, []string{Version2, Version}, Version},
		{"no overlap falls back", []string{Version2}, []string{"/pando/9.9.9"}, Version},
		{"unknown offers ignored", nil, []string{"/pando/9.9.9", Version2}, Version2},
	}
	for _, tc := range cases {
		if got := Negotiate(tc.preferred, tc.offered).Name(); got != tc.want {
			t.Errorf("%s: negotiated %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestLookupFormat(t *testing.T) {
	for _, name := range SupportedFormats() {
		wf, ok := LookupFormat(name)
		if !ok || wf.Name() != name {
			t.Fatalf("LookupFormat(%q) = %v, %v", name, wf, ok)
		}
	}
	if _, ok := LookupFormat("/pando/0.1.0"); ok {
		t.Fatal("unknown format resolved")
	}
}

// TestQuickBinaryRoundTrip property-checks Decode(Encode(m)) == m over
// the binary format, the ISSUE's round-trip acceptance property.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seq uint64, data []byte, errStr, peer, fn string, cores, batch uint16) bool {
		in := &Message{
			Type: TypeResult, Seq: seq, Data: data, Err: errStr,
			Peer: peer, Func: fn, Cores: int(cores), Batch: int(batch),
		}
		var buf bytes.Buffer
		if err := V2.WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := V2.ReadFrame(&buf)
		if err != nil {
			return false
		}
		if len(in.Data) == 0 {
			in.Data = nil // empty and absent are equivalent on the wire
		}
		out.buf = nil // compare payload fields, not arena bookkeeping
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkWireEnvelope compares the two envelopes on a payload-free
// control frame and on payload-bearing frames; see also the workload
// benchmarks in internal/bench and the repo root.
func BenchmarkWireEnvelope(b *testing.B) {
	payload := bytes.Repeat([]byte{0xA5}, 16<<10)
	for _, tc := range []struct {
		name string
		wf   WireFormat
	}{{"v1-json", V1}, {"v2-binary", V2}} {
		b.Run(tc.name, func(b *testing.B) {
			m := &Message{Type: TypeInput, Seq: 7, Data: payload}
			var buf bytes.Buffer
			var frameLen int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := tc.wf.WriteFrame(&buf, m); err != nil {
					b.Fatal(err)
				}
				frameLen = buf.Len() // before ReadFrame drains the buffer
				if _, err := tc.wf.ReadFrame(&buf); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(frameLen))
			b.ReportMetric(float64(frameLen), "wire-bytes/frame")
		})
	}
}

// TestBinaryFrameRejectsBitFlips is the chaos-suite regression for the
// CRC trailer: flipping any single bit anywhere in a v2 frame (length
// prefix included) must produce a read error, never a silently different
// message — on the wire, corruption has to degrade to a connection
// failure the crash-stop machinery already handles.
func TestBinaryFrameRejectsBitFlips(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{Type: TypeResult, Seq: 32, Data: []byte(`"s32-ok"`)}
	if err := V2.WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := 0; i < len(raw); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), raw...)
			mut[i] ^= 1 << bit
			if m, err := ReadFrame(bytes.NewReader(mut)); err == nil {
				t.Fatalf("byte %d bit %d flipped: decoded %+v instead of failing", i, bit, m)
			}
		}
	}
}
