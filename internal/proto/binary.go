package proto

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// This file implements the '/pando/2.1.0' binary wire format. The outer
// framing (4-byte big-endian body length) is shared with v1; the body is
//
//	magic byte 0xB2, then a sequence of fields:
//	  tag byte with the high bit clear:  uvarint value      (numeric)
//	  tag byte with the high bit set:    uvarint length + raw bytes
//	then a 4-byte little-endian CRC32 (IEEE) of everything before it.
//
// Zero-valued fields are omitted, mirroring JSON's omitempty, and unknown
// tags are skipped (the high bit tells a decoder how), so fields can be
// added without breaking older v2 peers. Message types are one-byte codes
// instead of strings, and Data travels as raw bytes — eliminating the
// base64 inflation that dominated v1 frames carrying binary payloads.
//
// The CRC trailer (the 2.0 → 2.1 bump) exists because the chaos suite
// injects byte-level drop and corruption on simulated links: without an
// integrity check, a flipped bit inside a payload or a seq varint decodes
// as a *valid* frame carrying wrong data, silently corrupting the output
// stream — the one failure mode the crash-stop design cannot absorb. With
// the trailer, any corruption surfaces as ErrBadFrame, the channel fails,
// and the engine re-lends the peer's values: corruption degrades to a
// crash, which the stack already tolerates. (v1 JSON has no trailer; it
// remains the permissive legacy format.)
//
// Grouped batches (the Data field of inputs/results frames) get their own
// compact encoding: magic 0xB3, uvarint item count, then per item a
// uvarint payload length + payload and a uvarint error length + error;
// batches ride inside a frame body, so the frame CRC covers them.

const (
	binMagic      = 0xB2 // first body byte of a v2 envelope
	binBatchMagic = 0xB3 // first byte of a v2 batch payload
	binCRCSize    = 4    // CRC32 trailer bytes at the end of a v2 body
)

// Field tags. The high bit selects the wire kind so unknown tags remain
// skippable: clear = uvarint value, set = uvarint length + bytes.
const (
	tagType  = 0x01 // type code (see typeCodes)
	tagSeq   = 0x02
	tagCores = 0x03
	tagBatch = 0x04

	tagTypeStr = 0x81 // type as string, for types without a code
	tagData    = 0x82
	tagErr     = 0x83
	tagVersion = 0x84
	tagFunc    = 0x85
	tagToken   = 0x86
	tagPeer    = 0x87
	tagTo      = 0x88
	tagAddr    = 0x89
	tagFormat  = 0x8A // repeated, one per supported format
	tagWire    = 0x8B
	tagFunc2   = 0x8C // repeated, one per registered function (hello)
	tagDigest  = 0x8D // SHA-256 content address (dedup extension)
)

// typeCodes maps every known message type to a one-byte code; codeTypes
// is the inverse. Code 0 is reserved (meaning "encoded as tagTypeStr").
var typeCodes = map[Type]uint64{
	TypeHello: 1, TypeWelcome: 2,
	TypeInput: 3, TypeResult: 4,
	TypeInputBatch: 5, TypeResultBatch: 6,
	TypePing: 7, TypePong: 8,
	TypeGoodbye: 9,
	TypeJoin:    10, TypeOffer: 11, TypeAnswer: 12, TypeCandidate: 13,
	TypeError: 14, TypeReassign: 15,
	TypeBlobMiss: 16, TypeBlob: 17,
}

var codeTypes = func() map[uint64]Type {
	m := make(map[uint64]Type, len(typeCodes))
	for t, c := range typeCodes {
		m[c] = t
	}
	return m
}()

// binaryWire is the '/pando/2.1.0' WireFormat.
type binaryWire struct{}

func (binaryWire) Name() string { return Version2 }

func appendUint(b []byte, tag byte, v uint64) []byte {
	if v == 0 {
		return b
	}
	b = append(b, tag)
	return binary.AppendUvarint(b, v)
}

func appendBytes(b []byte, tag byte, v []byte) []byte {
	if len(v) == 0 {
		return b
	}
	b = append(b, tag)
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

func appendString(b []byte, tag byte, v string) []byte {
	if v == "" {
		return b
	}
	b = append(b, tag)
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// binaryFrameSize estimates the encoded size of m (length prefix
// included), for sizing the pooled encode buffer without regrowth.
func binaryFrameSize(m *Message) int {
	n := 4 + len(m.Data) + len(m.Err) + len(m.Version) + len(m.Func) +
		len(m.Token) + len(m.Peer) + len(m.To) + len(m.Addr) + len(m.Wire) +
		len(m.Digest) + 64
	for _, f := range m.Formats {
		n += len(f) + 11
	}
	for _, f := range m.Functions {
		n += len(f) + 11
	}
	return n
}

// encodeBinaryFrame serializes m as a complete v2 frame into a freshly
// allocated buffer. It is the pre-arena codec path, kept callable so the
// hotpath bench can quantify the pooled path against it (see V2Unpooled).
func encodeBinaryFrame(m *Message) []byte {
	return appendBinaryFrame(make([]byte, 0, binaryFrameSize(m)), m)
}

// appendBinaryFrame appends one complete v2 frame — length prefix, body,
// CRC trailer — to b and returns the extended buffer. Appending into a
// caller-owned buffer is what lets WriteFrame encode into the arena and
// SendBatch pack several frames back to back for one vectored write.
func appendBinaryFrame(b []byte, m *Message) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0) // length prefix, filled in below
	b = append(b, binMagic)
	if code, ok := typeCodes[m.Type]; ok {
		b = appendUint(b, tagType, code)
	} else {
		b = appendString(b, tagTypeStr, string(m.Type))
	}
	b = appendUint(b, tagSeq, m.Seq)
	b = appendUint(b, tagCores, uint64(m.Cores))
	b = appendUint(b, tagBatch, uint64(m.Batch))
	b = appendBytes(b, tagData, m.Data)
	b = appendBytes(b, tagDigest, m.Digest)
	b = appendString(b, tagErr, m.Err)
	b = appendString(b, tagVersion, m.Version)
	b = appendString(b, tagFunc, m.Func)
	b = appendString(b, tagToken, m.Token)
	b = appendString(b, tagPeer, m.Peer)
	b = appendString(b, tagTo, m.To)
	b = appendString(b, tagAddr, m.Addr)
	for _, f := range m.Formats {
		b = appendString(b, tagFormat, f)
	}
	b = appendString(b, tagWire, m.Wire)
	for _, f := range m.Functions {
		b = appendString(b, tagFunc2, f)
	}
	sum := crc32.ChecksumIEEE(b[start+4:])
	b = binary.LittleEndian.AppendUint32(b, sum)
	binary.BigEndian.PutUint32(b[start:start+4], uint32(len(b)-start-4))
	return b
}

// decodeBinaryBody parses a v2 body into a fresh Message (the pre-arena
// decode path, kept for V2Unpooled and as the conservative fallback).
func decodeBinaryBody(body []byte) (*Message, error) {
	m := new(Message)
	if err := decodeBinaryBodyInto(m, body); err != nil {
		return nil, err
	}
	return m, nil
}

// decodeBinaryBodyInto parses a v2 body (including the magic byte) into
// m, verifying the CRC trailer first so a corrupted frame fails the
// channel instead of decoding into a plausible message with wrong
// content. m's Data aliases body; the caller decides whether the message
// adopts the buffer (pooled reads) or the buffer outlives it.
func decodeBinaryBodyInto(m *Message, body []byte) error {
	if len(body) == 0 || body[0] != binMagic {
		return fmt.Errorf("%w: missing v2 magic", ErrBadFrame)
	}
	if len(body) < 1+binCRCSize {
		return fmt.Errorf("%w: v2 body shorter than its CRC trailer", ErrBadFrame)
	}
	payload := body[:len(body)-binCRCSize]
	sum := binary.LittleEndian.Uint32(body[len(body)-binCRCSize:])
	if crc32.ChecksumIEEE(payload) != sum {
		return fmt.Errorf("%w: CRC mismatch (corrupted frame)", ErrBadFrame)
	}
	rest := payload[1:]
	for len(rest) > 0 {
		tag := rest[0]
		rest = rest[1:]
		if tag&0x80 == 0 {
			v, n := binary.Uvarint(rest)
			if n <= 0 {
				return fmt.Errorf("%w: bad varint for tag %#x", ErrBadFrame, tag)
			}
			rest = rest[n:]
			switch tag {
			case tagType:
				t, ok := codeTypes[v]
				if !ok {
					// A code from a newer peer: surface an opaque type
					// the receive loops skip, mirroring how v1 treats
					// unknown type strings, instead of failing the
					// whole channel.
					t = Type(fmt.Sprintf("unknown-%d", v))
				}
				m.Type = t
			case tagSeq:
				m.Seq = v
			case tagCores:
				m.Cores = int(v)
			case tagBatch:
				m.Batch = int(v)
			default:
				// Unknown numeric field from a newer peer: skip.
			}
			continue
		}
		l, n := binary.Uvarint(rest)
		if n <= 0 {
			return fmt.Errorf("%w: bad length for tag %#x", ErrBadFrame, tag)
		}
		rest = rest[n:]
		if l > uint64(len(rest)) {
			return fmt.Errorf("%w: field length %d exceeds body", ErrBadFrame, l)
		}
		val := rest[:l]
		rest = rest[l:]
		switch tag {
		case tagTypeStr:
			m.Type = Type(val)
		case tagData:
			// Alias the body: no copy even for large payloads. The body
			// buffer's ownership follows the message (adoptBuf) or the
			// caller keeps it alive — see the arena rules in pool.go.
			m.Data = val
		case tagDigest:
			// Aliases the body like Data; retainers copy.
			m.Digest = val
		case tagErr:
			m.Err = string(val)
		case tagVersion:
			m.Version = string(val)
		case tagFunc:
			m.Func = string(val)
		case tagToken:
			m.Token = string(val)
		case tagPeer:
			m.Peer = string(val)
		case tagTo:
			m.To = string(val)
		case tagAddr:
			m.Addr = string(val)
		case tagFormat:
			m.Formats = append(m.Formats, string(val))
		case tagWire:
			m.Wire = string(val)
		case tagFunc2:
			m.Functions = append(m.Functions, string(val))
		default:
			// Unknown length-delimited field from a newer peer: skip.
		}
	}
	if m.Type == "" {
		return fmt.Errorf("%w: missing message type", ErrBadFrame)
	}
	return nil
}

func (binaryWire) WriteFrame(w io.Writer, m *Message) error {
	// Encode into an arena buffer: the steady-state write path performs no
	// allocation per frame.
	frame := appendBinaryFrame(GetBuf(binaryFrameSize(m)), m)
	if len(frame)-4 > MaxFrameSize {
		PutBuf(frame)
		return ErrFrameTooLarge
	}
	// A single Write for the whole frame, like writeBody, so interleaved
	// writers cannot corrupt the stream boundary mid-frame.
	_, err := w.Write(frame)
	PutBuf(frame)
	if err != nil {
		return fmt.Errorf("proto: write frame: %w", err)
	}
	return nil
}

func (binaryWire) ReadFrame(r io.Reader) (*Message, error) {
	body, err := readBody(r)
	if err != nil {
		return nil, err
	}
	m := GetMessage()
	if err := decodeBinaryBodyInto(m, body); err != nil {
		Release(m)
		PutBuf(body)
		return nil, err
	}
	m.adoptBuf(body)
	return m, nil
}

// AppendFrame appends one complete frame (length prefix included) encoded
// by wf to dst and returns the extended buffer. It is the building block
// of vectored batch sends: a session packs several frames back to back in
// one arena buffer and hands the result to a single writev. For the v2
// binary format the append is direct; other formats fall through to their
// WriteFrame via an in-memory writer.
func AppendFrame(dst []byte, wf WireFormat, m *Message) ([]byte, error) {
	if _, ok := wf.(binaryWire); ok {
		start := len(dst)
		dst = appendBinaryFrame(dst, m)
		if len(dst)-start-4 > MaxFrameSize {
			return dst[:start], ErrFrameTooLarge
		}
		return dst, nil
	}
	if cw, ok := wf.(*compressedWire); ok {
		start := len(dst)
		dst, err := cw.appendCompressedFrame(dst, m)
		if err != nil {
			return dst[:start], err
		}
		if len(dst)-start-4 > MaxFrameSize {
			return dst[:start], ErrFrameTooLarge
		}
		return dst, nil
	}
	sw := sliceWriter{buf: dst}
	if err := wf.WriteFrame(&sw, m); err != nil {
		return dst, err
	}
	return sw.buf, nil
}

// sliceWriter adapts an append-target buffer to io.Writer for WireFormats
// without a native append path.
type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// unpooledWire is the pre-arena v2 codec: same bytes on the wire as V2,
// but every frame allocates fresh buffers and messages. It exists so the
// hotpath bench (and future regressions) can measure the pooled codec
// against an honest baseline; nothing negotiates it.
type unpooledWire struct{}

func (unpooledWire) Name() string { return Version2 + "-unpooled" }

func (unpooledWire) WriteFrame(w io.Writer, m *Message) error {
	frame := encodeBinaryFrame(m)
	if len(frame)-4 > MaxFrameSize {
		return ErrFrameTooLarge
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("proto: write frame: %w", err)
	}
	return nil
}

func (unpooledWire) ReadFrame(r io.Reader) (*Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("proto: short frame body: %w", err)
	}
	return decodeBinaryBody(body)
}

func (unpooledWire) EncodeBatch(items []BatchItem) ([]byte, error) {
	return V2.EncodeBatch(items)
}

func (unpooledWire) DecodeBatch(data []byte) ([]BatchItem, error) {
	return V2.DecodeBatch(data)
}

// V2Unpooled is the pre-arena reference implementation of the v2 format,
// wire-identical to V2. The hotpath benchmark uses it as the before
// codec; it is not registered for negotiation.
var V2Unpooled WireFormat = unpooledWire{}

func (binaryWire) EncodeBatch(items []BatchItem) ([]byte, error) {
	size := 16
	for _, it := range items {
		size += len(it.D) + len(it.E) + 10
	}
	b := make([]byte, 0, size)
	b = append(b, binBatchMagic)
	b = binary.AppendUvarint(b, uint64(len(items)))
	for _, it := range items {
		b = binary.AppendUvarint(b, uint64(len(it.D)))
		b = append(b, it.D...)
		b = binary.AppendUvarint(b, uint64(len(it.E)))
		b = append(b, it.E...)
	}
	return b, nil
}

func (binaryWire) DecodeBatch(data []byte) ([]BatchItem, error) {
	if len(data) == 0 || data[0] != binBatchMagic {
		return nil, fmt.Errorf("%w: missing batch magic", ErrBadFrame)
	}
	rest := data[1:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad batch count", ErrBadFrame)
	}
	rest = rest[n:]
	// Each item needs at least two varint bytes; reject counts the body
	// cannot possibly hold before allocating for them.
	if count > uint64(len(rest)/2) {
		return nil, fmt.Errorf("%w: batch count %d exceeds body", ErrBadFrame, count)
	}
	items := make([]BatchItem, 0, count)
	for i := uint64(0); i < count; i++ {
		var it BatchItem
		for f := 0; f < 2; f++ {
			l, n := binary.Uvarint(rest)
			if n <= 0 {
				return nil, fmt.Errorf("%w: bad batch item length", ErrBadFrame)
			}
			rest = rest[n:]
			if l > uint64(len(rest)) {
				return nil, fmt.Errorf("%w: batch item length %d exceeds body", ErrBadFrame, l)
			}
			if f == 0 {
				if l > 0 {
					// Copy: aliasing the frame here would let one
					// retained item pin the whole multi-item frame
					// buffer for its lifetime (batch-size memory
					// amplification). Message.Data stays aliased —
					// there the mapping is 1:1.
					it.D = append([]byte(nil), rest[:l]...)
				}
			} else if l > 0 {
				it.E = string(rest[:l])
			}
			rest = rest[l:]
		}
		items = append(items, it)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrBadFrame, len(rest))
	}
	return items, nil
}

// DecodeBatchShared parses a grouped payload like DecodeBatch but lets v2
// item payloads alias data instead of copying them. It is for strictly
// serial consumers that fully process (or copy) every item before the
// backing frame is released — the worker's apply loop — where the decoded
// items never outlive the frame and the per-item copy is pure overhead.
// Retaining an item past the frame's release is a use-after-free of arena
// memory; when in doubt use DecodeBatch.
func DecodeBatchShared(data []byte) ([]BatchItem, error) {
	if len(data) == 0 || data[0] != binBatchMagic {
		return DecodeBatch(data) // v1 JSON copies every field anyway
	}
	rest := data[1:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad batch count", ErrBadFrame)
	}
	rest = rest[n:]
	if count > uint64(len(rest)/2) {
		return nil, fmt.Errorf("%w: batch count %d exceeds body", ErrBadFrame, count)
	}
	items := make([]BatchItem, 0, count)
	for i := uint64(0); i < count; i++ {
		var it BatchItem
		for f := 0; f < 2; f++ {
			l, n := binary.Uvarint(rest)
			if n <= 0 {
				return nil, fmt.Errorf("%w: bad batch item length", ErrBadFrame)
			}
			rest = rest[n:]
			if l > uint64(len(rest)) {
				return nil, fmt.Errorf("%w: batch item length %d exceeds body", ErrBadFrame, l)
			}
			if f == 0 {
				if l > 0 {
					it.D = rest[:l:l]
				}
			} else if l > 0 {
				it.E = string(rest[:l])
			}
			rest = rest[l:]
		}
		items = append(items, it)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrBadFrame, len(rest))
	}
	return items, nil
}
