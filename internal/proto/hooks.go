package proto

import "sync/atomic"

// Test hooks for the arena, exported so packages layered above proto can
// pin their ownership obligations in regression tests without reaching
// into unexported state. The hooks are process-global; they load and
// store atomically so toggling them races with nothing, but a restored
// observer may still see stragglers from a channel that has not fully
// wound down yet.

// SetPoisonPut toggles the corrupt-after-release canary: while enabled,
// every buffer returned to the arena is scribbled with 0xDB first, so a
// caller that kept reading decoded state it should have copied before
// Release sees garbage instead of a silent heisenbug. Returns the
// previous setting, for deferred restore.
func SetPoisonPut(on bool) (prev bool) {
	return poisonPut.Swap(on)
}

// releaseObserver, when set by tests, sees every released envelope just
// before it is reset — the hook release-discipline regression tests use
// to prove a frame actually went back to the arena.
var releaseObserver atomic.Pointer[func(*Message)]

// SetReleaseObserver installs f to be called at the start of every
// Release, with the envelope still intact (nil releases are not
// reported). Passing nil clears the hook. Returns the previous observer,
// for deferred restore.
func SetReleaseObserver(f func(*Message)) (prev func(*Message)) {
	var p *func(*Message)
	if f != nil {
		p = &f
	}
	old := releaseObserver.Swap(p)
	if old == nil {
		return nil
	}
	return *old
}
