package proto

import (
	"bytes"
	"io"
	"testing"
)

// TestCodecWriteZeroAlloc pins the steady-state v2 encode path at zero
// heap allocations per frame: the arena supplies the encode buffer and
// recycles it after the write.
func TestCodecWriteZeroAlloc(t *testing.T) {
	m := &Message{Type: TypeInput, Seq: 7, Data: bytes.Repeat([]byte{0xAB}, 1024)}
	// Warm the pools outside the measured region.
	for i := 0; i < 8; i++ {
		if err := V2.WriteFrame(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		m.Seq++
		if err := V2.WriteFrame(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("v2 WriteFrame: %v allocs/op, want 0", allocs)
	}
}

// TestCodecReadZeroAlloc pins the steady-state v2 decode path at zero
// heap allocations per frame: the body buffer and the Message envelope
// both come from the arena and return to it via Release.
func TestCodecReadZeroAlloc(t *testing.T) {
	var buf bytes.Buffer
	m := &Message{Type: TypeResult, Seq: 42, Data: bytes.Repeat([]byte{0xCD}, 1024)}
	if err := V2.WriteFrame(&buf, m); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	r := bytes.NewReader(frame)
	for i := 0; i < 8; i++ { // warm the pools
		r.Reset(frame)
		out, err := ReadFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		Release(out)
	}
	allocs := testing.AllocsPerRun(200, func() {
		r.Reset(frame)
		out, err := ReadFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if out.Seq != 42 || len(out.Data) != 1024 {
			t.Fatalf("bad decode: %+v", out)
		}
		Release(out)
	})
	if allocs != 0 {
		t.Fatalf("v2 ReadFrame+Release: %v allocs/op, want 0", allocs)
	}
}

// TestReleaseCanary proves the corrupt-after-release canary works: with
// poisonPut enabled, data still referenced after Release is visibly
// scribbled, so any use-after-release in the stack fails loudly in tests
// instead of silently corrupting a stream.
func TestReleaseCanary(t *testing.T) {
	poisonPut.Store(true)
	defer poisonPut.Store(false)

	var buf bytes.Buffer
	payload := bytes.Repeat([]byte{0x11}, 256)
	if err := V2.WriteFrame(&buf, &Message{Type: TypeInput, Seq: 1, Data: payload}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	data := m.Data // illegally retained across Release
	Release(m)
	poisoned := false
	for _, b := range data {
		if b == 0xDB {
			poisoned = true
			break
		}
	}
	if !poisoned {
		t.Fatal("released frame data was not poisoned; use-after-release would be silent")
	}
}

// TestDetachPreservesData is the legal counterpart of the canary test:
// Detach transfers buffer ownership to the escaping Data reference, so a
// later Release must leave the bytes intact even with poisoning on.
func TestDetachPreservesData(t *testing.T) {
	poisonPut.Store(true)
	defer poisonPut.Store(false)

	var buf bytes.Buffer
	payload := bytes.Repeat([]byte{0x22}, 256)
	if err := V2.WriteFrame(&buf, &Message{Type: TypeInput, Seq: 2, Data: payload}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	data := m.Data
	m.Detach()
	Release(m)
	if !bytes.Equal(data, payload) {
		t.Fatal("detached data was clobbered by Release")
	}
}

// TestReleaseRecyclesAcrossFrames checks the ownership handoff end to
// end: a detached payload from frame 1 must survive frame 2 reusing the
// arena, byte for byte.
func TestReleaseRecyclesAcrossFrames(t *testing.T) {
	first := bytes.Repeat([]byte{0x33}, 512)
	second := bytes.Repeat([]byte{0x44}, 512)

	var buf bytes.Buffer
	if err := V2.WriteFrame(&buf, &Message{Type: TypeInput, Seq: 1, Data: first}); err != nil {
		t.Fatal(err)
	}
	m1, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	kept := m1.Data
	m1.Detach()
	Release(m1)

	buf.Reset()
	if err := V2.WriteFrame(&buf, &Message{Type: TypeInput, Seq: 2, Data: second}); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer Release(m2)

	if !bytes.Equal(kept, first) {
		t.Fatal("detached frame-1 payload changed after the arena served frame 2")
	}
	if !bytes.Equal(m2.Data, second) {
		t.Fatal("frame-2 payload corrupted")
	}
}

// TestGetBufClasses exercises the size-class mapping, including the
// oversized path that bypasses the pool.
func TestGetBufClasses(t *testing.T) {
	for _, n := range []int{0, 1, bufClassSmall, bufClassSmall + 1, bufClassMedium, bufClassLarge} {
		b := GetBuf(n)
		if len(b) != 0 || cap(b) < n {
			t.Fatalf("GetBuf(%d): len=%d cap=%d", n, len(b), cap(b))
		}
		PutBuf(b)
	}
	huge := GetBuf(maxPooledBuf + 1)
	if cap(huge) < maxPooledBuf+1 {
		t.Fatalf("oversized GetBuf too small: %d", cap(huge))
	}
	PutBuf(huge) // must not pin it in a pool; just must not panic
}

// TestAppendFrameMatchesWriteFrame checks that the append-path encoder
// (the vectored-batch building block) produces byte-identical frames to
// WriteFrame for both wire formats.
func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	m := fullMessage()
	for _, wf := range []WireFormat{V1, V2, V2Unpooled} {
		var buf bytes.Buffer
		if err := wf.WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
		appended, err := AppendFrame(nil, wf, m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), appended) {
			t.Fatalf("%s: AppendFrame differs from WriteFrame", wf.Name())
		}
	}
}

// TestV2UnpooledWireCompatible confirms the benchmark baseline codec is
// wire-identical to the pooled one in both directions.
func TestV2UnpooledWireCompatible(t *testing.T) {
	m := fullMessage()
	var pooled, unpooled bytes.Buffer
	if err := V2.WriteFrame(&pooled, m); err != nil {
		t.Fatal(err)
	}
	if err := V2Unpooled.WriteFrame(&unpooled, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pooled.Bytes(), unpooled.Bytes()) {
		t.Fatal("pooled and unpooled v2 frames differ on the wire")
	}
	out, err := V2Unpooled.ReadFrame(&pooled)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Data, m.Data) || out.Seq != m.Seq {
		t.Fatalf("unpooled decode of pooled frame mismatch: %+v", out)
	}
}

// TestDecodeBatchShared checks the aliasing batch decoder round-trips and
// actually aliases (no copy) for v2 batches.
func TestDecodeBatchShared(t *testing.T) {
	items := []BatchItem{
		{D: []byte("alpha")},
		{E: "boom"},
		{D: []byte("gamma"), E: "warn"},
	}
	data, err := V2.EncodeBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchShared(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("got %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if !bytes.Equal(got[i].D, items[i].D) || got[i].E != items[i].E {
			t.Fatalf("item %d mismatch: %+v != %+v", i, got[i], items[i])
		}
	}
	// Aliasing: mutating the frame must show through the decoded item.
	if len(got[0].D) > 0 {
		got[0].D[0] ^= 0xFF
		found := bytes.Contains(data, got[0].D)
		if !found {
			t.Fatal("DecodeBatchShared copied items; expected aliasing")
		}
	}

	// v1 fallback still works (and copies, which is fine).
	v1data, err := V1.EncodeBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeBatchShared(v1data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("v1 fallback: got %d items, want %d", len(got), len(items))
	}
}

// FuzzFrameReuse drives random payloads through the full pooled
// write→read→detach→release cycle twice, checking that a detached
// payload from the first frame is never clobbered by the second — the
// core no-aliasing-after-recycle guarantee under arbitrary sizes.
func FuzzFrameReuse(f *testing.F) {
	f.Add([]byte("hello"), []byte("world"))
	f.Add([]byte{}, bytes.Repeat([]byte{0x7F}, 5000))
	f.Add(bytes.Repeat([]byte{0xB2}, 70000), []byte{0x00})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		poisonPut.Store(true)
		defer poisonPut.Store(false)

		var buf bytes.Buffer
		if err := V2.WriteFrame(&buf, &Message{Type: TypeInput, Seq: 1, Data: a}); err != nil {
			t.Fatal(err)
		}
		m1, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		kept := m1.Data
		m1.Detach()
		Release(m1)

		buf.Reset()
		if err := V2.WriteFrame(&buf, &Message{Type: TypeResult, Seq: 2, Data: b}); err != nil {
			t.Fatal(err)
		}
		m2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(kept, a) && len(a) > 0 {
			t.Fatal("detached payload clobbered by arena reuse")
		}
		if !bytes.Equal(m2.Data, b) && len(b) > 0 {
			t.Fatal("second frame decoded wrong payload")
		}
		Release(m2)
	})
}
