package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{
		Type:    TypeInput,
		Seq:     42,
		Data:    []byte(`{"cameraPos":"1.57"}`),
		Version: Version,
	}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Seq != in.Seq || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestFrameMultipleSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(0); i < 10; i++ {
		if err := WriteFrame(&buf, &Message{Type: TypeResult, Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 10; i++ {
		m, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m.Seq != i {
			t.Fatalf("frame %d: seq = %d", i, m.Seq)
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestFrameTooLargeOnRead(t *testing.T) {
	var buf bytes.Buffer
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], MaxFrameSize+1)
	buf.Write(lenBuf[:])
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Message{Type: TypePing}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	truncated := bytes.NewReader(raw[:len(raw)-2])
	if _, err := ReadFrame(truncated); err == nil {
		t.Fatal("expected error on truncated frame")
	}
}

func TestCheckHello(t *testing.T) {
	ok := &Message{Type: TypeHello, Version: Version, Func: "render"}
	if err := CheckHello(ok); err != nil {
		t.Fatal(err)
	}
	if err := CheckHello(&Message{Type: TypePing}); err == nil {
		t.Fatal("expected error for wrong type")
	}
	bad := &Message{Type: TypeHello, Version: "/pando/0.9.0"}
	if err := CheckHello(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(seq uint64, data []byte, errStr string, peer string) bool {
		var buf bytes.Buffer
		in := &Message{Type: TypeResult, Seq: seq, Data: data, Err: errStr, Peer: peer}
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return out.Seq == in.Seq &&
			bytes.Equal(out.Data, in.Data) &&
			out.Err == in.Err &&
			out.Peer == in.Peer
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// FuzzReadFrame exercises the framing layer against adversarial bytes.
// Without -fuzz it runs the seed corpus as a regular test; with
// `go test -fuzz=FuzzReadFrame ./internal/proto` it explores further.
func FuzzReadFrame(f *testing.F) {
	// Well-formed frame.
	var good bytes.Buffer
	_ = WriteFrame(&good, &Message{Type: TypeInput, Seq: 3, Data: []byte(`"x"`)})
	f.Add(good.Bytes())
	// Truncations, garbage, hostile lengths.
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x41})
	f.Add([]byte{0x00, 0x00, 0x00, 0x05, '{', '"', 't', '"', ':'})
	f.Add(append([]byte{0x00, 0x00, 0x00, 0x02}, []byte("{}")...))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic and never allocate beyond the frame cap.
		m, err := ReadFrame(bytes.NewReader(data))
		if err == nil && m == nil {
			t.Fatal("nil message with nil error")
		}
	})
}

// FuzzFrameRoundTrip checks Write/Read inversion for arbitrary payloads.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), []byte("data"), "err", "peer")
	f.Add(uint64(0), []byte{}, "", "")
	f.Fuzz(func(t *testing.T, seq uint64, data []byte, errStr, peer string) {
		var buf bytes.Buffer
		in := &Message{Type: TypeResult, Seq: seq, Data: data, Err: errStr, Peer: peer}
		if err := WriteFrame(&buf, in); err != nil {
			return // oversize payloads may legitimately fail
		}
		out, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("round trip read: %v", err)
		}
		if out.Seq != seq || !bytes.Equal(out.Data, data) || out.Err != errStr || out.Peer != peer {
			t.Fatalf("round trip mismatch: %+v", out)
		}
	})
}
