package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{
		Type:    TypeInput,
		Seq:     42,
		Data:    []byte(`{"cameraPos":"1.57"}`),
		Version: Version,
	}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Seq != in.Seq || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestFrameMultipleSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(0); i < 10; i++ {
		if err := WriteFrame(&buf, &Message{Type: TypeResult, Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 10; i++ {
		m, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m.Seq != i {
			t.Fatalf("frame %d: seq = %d", i, m.Seq)
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestFrameTooLargeOnRead(t *testing.T) {
	var buf bytes.Buffer
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], MaxFrameSize+1)
	buf.Write(lenBuf[:])
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Message{Type: TypePing}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	truncated := bytes.NewReader(raw[:len(raw)-2])
	if _, err := ReadFrame(truncated); err == nil {
		t.Fatal("expected error on truncated frame")
	}
}

func TestCheckHello(t *testing.T) {
	ok := &Message{Type: TypeHello, Version: Version, Func: "render"}
	if err := CheckHello(ok); err != nil {
		t.Fatal(err)
	}
	if err := CheckHello(&Message{Type: TypePing}); err == nil {
		t.Fatal("expected error for wrong type")
	}
	bad := &Message{Type: TypeHello, Version: "/pando/0.9.0"}
	if err := CheckHello(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(seq uint64, data []byte, errStr string, peer string) bool {
		var buf bytes.Buffer
		in := &Message{Type: TypeResult, Seq: seq, Data: data, Err: errStr, Peer: peer}
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return out.Seq == in.Seq &&
			bytes.Equal(out.Data, in.Data) &&
			out.Err == in.Err &&
			out.Peer == in.Peer
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// FuzzReadFrame exercises the framing layer — both wire formats, since
// ReadFrame sniffs the body — against adversarial bytes. Without -fuzz it
// runs the seed corpus as a regular test; with
// `go test -fuzz=FuzzReadFrame ./internal/proto` it explores further.
func FuzzReadFrame(f *testing.F) {
	// Well-formed v1 and v2 frames.
	var good bytes.Buffer
	_ = WriteFrame(&good, &Message{Type: TypeInput, Seq: 3, Data: []byte(`"x"`)})
	f.Add(good.Bytes())
	var goodBin bytes.Buffer
	_ = V2.WriteFrame(&goodBin, &Message{Type: TypeInput, Seq: 3, Data: []byte{0x00, 0xFF}})
	f.Add(goodBin.Bytes())
	// Pool-era hellos: a Functions list in both formats, and a reassign
	// frame (type code 15).
	var helloFns bytes.Buffer
	_ = V1.WriteFrame(&helloFns, &Message{Type: TypeHello, Version: Version,
		Functions: []string{"collatz", "render"}, Formats: SupportedFormats()})
	f.Add(helloFns.Bytes())
	var helloFnsBin bytes.Buffer
	_ = V2.WriteFrame(&helloFnsBin, &Message{Type: TypeHello, Version: Version,
		Functions: []string{"collatz", "render"}, Formats: SupportedFormats()})
	f.Add(helloFnsBin.Bytes())
	var reassign bytes.Buffer
	_ = V2.WriteFrame(&reassign, &Message{Type: TypeReassign, Func: "mining"})
	f.Add(reassign.Bytes())
	// Verification-era results: a digest-bearing TypeResult in both wire
	// formats (the end-to-end integrity digest rides the same field the
	// dedup layer uses for content addresses).
	digest := bytes.Repeat([]byte{0xD1, 0x6E}, 16)
	var resDig bytes.Buffer
	_ = V1.WriteFrame(&resDig, &Message{Type: TypeResult, Seq: 7, Data: []byte(`42`), Digest: digest})
	f.Add(resDig.Bytes())
	var resDigBin bytes.Buffer
	_ = V2.WriteFrame(&resDigBin, &Message{Type: TypeResultBatch, Seq: 9, Data: []byte{0x01, 0x02}, Digest: digest})
	f.Add(resDigBin.Bytes())
	// Hostile v2 digest field: tag 0x8D with a length running past the
	// frame end, and a bare tag with no length at all.
	f.Add([]byte{0x00, 0x00, 0x00, 0x05, 0xB2, 0x01, 0x05, 0x8D, 0x20})
	f.Add([]byte{0x00, 0x00, 0x00, 0x02, 0xB2, 0x8D})
	// Hostile v2 Functions field: truncated repeated string entry.
	f.Add([]byte{0x00, 0x00, 0x00, 0x04, 0xB2, 0x01, 0x01, 0x8C})
	// Truncations, garbage, hostile lengths.
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x41})
	f.Add([]byte{0x00, 0x00, 0x00, 0x05, '{', '"', 't', '"', ':'})
	f.Add(append([]byte{0x00, 0x00, 0x00, 0x02}, []byte("{}")...))
	// Hostile v2 bodies: bare magic, bad varints, lengths past the end,
	// unknown type code.
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0xB2})
	f.Add([]byte{0x00, 0x00, 0x00, 0x03, 0xB2, 0x02, 0x80})
	f.Add([]byte{0x00, 0x00, 0x00, 0x04, 0xB2, 0x82, 0x7F, 0x41})
	f.Add([]byte{0x00, 0x00, 0x00, 0x03, 0xB2, 0x01, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic and never allocate beyond the frame cap.
		m, err := ReadFrame(bytes.NewReader(data))
		if err == nil && m == nil {
			t.Fatal("nil message with nil error")
		}
	})
}

// FuzzFrameRoundTrip checks Write/Read inversion — Decode(Encode(m)) == m
// — for arbitrary payloads under both wire formats, including the
// pool-era hello fields (a repeated Functions list). A hello written in
// either format must also decode identically through the sniffing
// ReadFrame, which is the v1↔v2 interop property the shared-fleet
// admission path depends on (the hello always travels v1, but relays may
// re-emit it in v2).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), []byte("data"), "err", "peer", "collatz", "render")
	f.Add(uint64(0), []byte{}, "", "", "", "")
	f.Add(uint64(7), []byte{0xB2}, "", "dev", "*", "")
	f.Fuzz(func(t *testing.T, seq uint64, data []byte, errStr, peer, fn1, fn2 string) {
		var functions []string
		for _, fn := range []string{fn1, fn2} {
			if fn != "" {
				functions = append(functions, fn)
			}
		}
		strs := append([]string{errStr, peer}, functions...)
		allUTF8 := true
		for _, s := range strs {
			if !utf8.ValidString(s) {
				allUTF8 = false
			}
		}
		var decoded []*Message
		for _, wf := range []WireFormat{V1, V2} {
			// encoding/json replaces invalid UTF-8 in strings with
			// U+FFFD, so the v1 wire cannot round-trip such strings
			// exactly; the binary wire carries them verbatim.
			if wf == V1 && !allUTF8 {
				continue
			}
			var buf bytes.Buffer
			in := &Message{Type: TypeResult, Seq: seq, Data: data, Err: errStr,
				Peer: peer, Functions: functions}
			if err := wf.WriteFrame(&buf, in); err != nil {
				continue // oversize payloads may legitimately fail
			}
			out, err := ReadFrame(&buf)
			if err != nil {
				t.Fatalf("%s: round trip read: %v", wf.Name(), err)
			}
			if out.Seq != seq || !bytes.Equal(out.Data, data) || out.Err != errStr || out.Peer != peer {
				t.Fatalf("%s: round trip mismatch: %+v", wf.Name(), out)
			}
			if len(out.Functions) != len(functions) {
				t.Fatalf("%s: Functions count changed: %v != %v", wf.Name(), out.Functions, functions)
			}
			for i := range functions {
				if out.Functions[i] != functions[i] {
					t.Fatalf("%s: Functions[%d] = %q, want %q", wf.Name(), i, out.Functions[i], functions[i])
				}
			}
			decoded = append(decoded, out)
		}
		// v1↔v2 interop: when both formats carried the message, the two
		// decodings must agree field for field.
		if len(decoded) == 2 {
			a, b := decoded[0], decoded[1]
			if a.Seq != b.Seq || !bytes.Equal(a.Data, b.Data) || a.Err != b.Err ||
				a.Peer != b.Peer || len(a.Functions) != len(b.Functions) {
				t.Fatalf("v1/v2 disagree: %+v != %+v", a, b)
			}
		}
	})
}

// FuzzDecodeBatch exercises the grouped-payload decoders of both formats.
func FuzzDecodeBatch(f *testing.F) {
	jsonBatch, _ := V1.EncodeBatch([]BatchItem{{D: []byte(`1`)}, {E: "x"}})
	f.Add(jsonBatch)
	binBatch, _ := V2.EncodeBatch([]BatchItem{{D: []byte{0xFF}}, {E: "x"}})
	f.Add(binBatch)
	f.Add([]byte{0xB3})
	f.Add([]byte{0xB3, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := DecodeBatch(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode identically in v2.
		re, err := V2.EncodeBatch(items)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := V2.DecodeBatch(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(back) != len(items) {
			t.Fatalf("item count changed: %d != %d", len(back), len(items))
		}
	})
}
