package proto

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"slices"
)

// WireFormat is one complete encoding of the protocol: how a Message
// envelope crosses a stream and how grouped batch payloads are packed
// into a frame's Data field. Both implementations share the outer 4-byte
// length prefix, so a stream can carry a mix of formats and readers can
// sniff each body (ReadFrame) — negotiation only decides what a peer
// writes.
type WireFormat interface {
	// Name is the protocol tag exchanged during negotiation
	// ("/pando/1.0.0" or "/pando/2.1.0").
	Name() string
	// WriteFrame encodes m as one frame on w.
	WriteFrame(w io.Writer, m *Message) error
	// ReadFrame decodes one frame strictly in this format.
	ReadFrame(r io.Reader) (*Message, error)
	// EncodeBatch packs grouped payloads for a frame's Data field.
	EncodeBatch(items []BatchItem) ([]byte, error)
	// DecodeBatch unpacks a grouped frame's Data field.
	DecodeBatch(data []byte) ([]BatchItem, error)
}

// The two wire formats. V1 is length-prefixed JSON, the debuggable
// baseline every peer speaks; V2 is the binary envelope with raw payload
// bytes and varint lengths.
var (
	V1 WireFormat = jsonWire{}
	V2 WireFormat = binaryWire{}
)

// SupportedFormats lists the formats this build speaks, best first. It is
// what workers advertise in their hello.
func SupportedFormats() []string { return []string{Version3, Version2, Version} }

// LookupFormat resolves a format by its protocol tag. Version3 resolves
// to a fresh instance per call: its adaptive compression policy is
// per-channel state, unlike the stateless v1/v2 singletons.
func LookupFormat(name string) (WireFormat, bool) {
	switch name {
	case Version:
		return V1, true
	case Version2:
		return V2, true
	case Version3:
		return NewCompressedWire(), true
	}
	return nil, false
}

// Negotiate picks the best wire format both sides speak: the first entry
// of preferred (the master's allowed list, best first; empty means all
// supported) that the remote peer offered. Peers that advertise nothing
// are pre-negotiation v1 speakers, so the fallback is always V1.
func Negotiate(preferred, offered []string) WireFormat {
	if len(preferred) == 0 {
		preferred = SupportedFormats()
	}
	for _, want := range preferred {
		for _, have := range offered {
			if want == have {
				if wf, ok := LookupFormat(want); ok {
					return wf
				}
			}
		}
	}
	return V1
}

// ErrNoCommonFormat reports a handshake whose peers share no acceptable
// wire format.
var ErrNoCommonFormat = errors.New("proto: no common wire format")

// NegotiateStrict picks like Negotiate but refuses — instead of silently
// falling back to v1 — when the outcome is acceptable to only one side: a
// peer that listed formats excluding v1 must not be admitted on v1, and a
// restricted local list excluding v1 turns the fallback off entirely. A
// peer that advertised nothing is a pre-negotiation speaker, which speaks
// v1 implicitly.
func NegotiateStrict(preferred, offered []string) (WireFormat, error) {
	wf := Negotiate(preferred, offered)
	if len(offered) == 0 {
		offered = []string{Version}
	}
	allowed := preferred
	if len(allowed) == 0 {
		allowed = SupportedFormats()
	}
	if !slices.Contains(offered, wf.Name()) || !slices.Contains(allowed, wf.Name()) {
		return nil, fmt.Errorf("%w: peer offers %v, deployment allows %v",
			ErrNoCommonFormat, offered, allowed)
	}
	return wf, nil
}

// jsonWire is the '/pando/1.0.0' format: JSON bodies, JSON-array batches.
type jsonWire struct{}

func (jsonWire) Name() string { return Version }

func (jsonWire) WriteFrame(w io.Writer, m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("proto: marshal: %w", err)
	}
	return writeBody(w, body)
}

func (jsonWire) ReadFrame(r io.Reader) (*Message, error) {
	body, err := readBody(r)
	if err != nil {
		return nil, err
	}
	m := new(Message)
	if err := json.Unmarshal(body, m); err != nil {
		return nil, fmt.Errorf("proto: unmarshal: %w", err)
	}
	return m, nil
}

func (jsonWire) EncodeBatch(items []BatchItem) ([]byte, error) {
	return json.Marshal(items)
}

func (jsonWire) DecodeBatch(data []byte) ([]BatchItem, error) {
	var items []BatchItem
	if err := json.Unmarshal(data, &items); err != nil {
		return nil, fmt.Errorf("proto: decode batch: %w", err)
	}
	return items, nil
}
