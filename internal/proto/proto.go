// Package proto defines the wire protocol spoken between a Pando master,
// its volunteers, and the public (signalling) server. It is the Go
// rendering of the '/pando/1.0.0' protocol the paper's Figure 2 refers to:
// a worker declares which protocol version its processing function targets
// and the master streams inputs and collects results over a framed,
// heartbeat-monitored message channel.
//
// Frames are length-prefixed JSON: a 4-byte big-endian length followed by
// the JSON encoding of Message. JSON keeps the protocol debuggable and
// mirrors the JavaScript original; the fixed-size prefix gives the
// unambiguous message boundaries that WebSocket frames provided.
package proto

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version tag, mirroring the '/pando/1.0.0'
// property of the paper's programming interface (Figure 2).
const Version = "/pando/1.0.0"

// MaxFrameSize bounds a single frame. The paper notes a limitation on the
// size of individual WebRTC messages in the simple-peer library (§5.1);
// we keep an explicit, much larger bound purely as a safety limit.
const MaxFrameSize = 64 << 20 // 64 MiB

// Type enumerates the message kinds.
type Type string

// Message kinds.
const (
	// Handshake.
	TypeHello   Type = "hello"   // worker → master: version, function, cores
	TypeWelcome Type = "welcome" // master → worker: accepted, batch size

	// Data plane.
	TypeInput  Type = "input"  // master → worker: one input value
	TypeResult Type = "result" // worker → master: one result or error

	// Grouped data plane (extension): several values per frame, cutting
	// per-message overhead on high-latency links ("batching inputs for
	// distribution", paper §1/§5.5).
	TypeInputBatch  Type = "inputs"  // master → worker: array of inputs
	TypeResultBatch Type = "results" // worker → master: array of results

	// Liveness (the heartbeat mechanism of WebSockets and WebRTC that
	// Pando's fault-tolerance relies on, paper §1 and §2.4.1).
	TypePing Type = "ping"
	TypePong Type = "pong"

	// Orderly shutdown.
	TypeGoodbye Type = "goodbye"

	// Signalling through the public server (WebRTC bootstrap, Figure 7).
	TypeJoin      Type = "join"      // peer → server: register peer ID
	TypeOffer     Type = "offer"     // peer → server → peer
	TypeAnswer    Type = "answer"    // peer → server → peer
	TypeCandidate Type = "candidate" // connection endpoint advertisement
	TypeError     Type = "error"
)

// Message is the single envelope used for every exchange. Unused fields
// are omitted from the wire encoding.
type Message struct {
	Type Type   `json:"t"`
	Seq  uint64 `json:"seq,omitempty"` // input/result sequence number
	Data []byte `json:"d,omitempty"`   // payload (JSON or opaque bytes)
	Err  string `json:"e,omitempty"`   // error carried by a result

	// Handshake fields.
	Version string `json:"v,omitempty"`  // protocol version
	Func    string `json:"f,omitempty"`  // processing function name
	Cores   int    `json:"c,omitempty"`  // worker parallelism
	Batch   int    `json:"b,omitempty"`  // values in flight (Limiter bound)
	Token   string `json:"tk,omitempty"` // deployment invitation token

	// Signalling fields.
	Peer string `json:"p,omitempty"`  // sender peer ID
	To   string `json:"to,omitempty"` // destination peer ID
	Addr string `json:"a,omitempty"`  // candidate network address
}

// BatchItem is one element of a grouped input or result frame.
type BatchItem struct {
	// D is the payload.
	D []byte `json:"d,omitempty"`
	// E is a per-item error (results only).
	E string `json:"e,omitempty"`
}

// EncodeBatch serializes grouped payloads for a frame's Data field.
func EncodeBatch(items []BatchItem) ([]byte, error) {
	return json.Marshal(items)
}

// DecodeBatch parses a grouped frame's Data field.
func DecodeBatch(data []byte) ([]BatchItem, error) {
	var items []BatchItem
	if err := json.Unmarshal(data, &items); err != nil {
		return nil, fmt.Errorf("proto: decode batch: %w", err)
	}
	return items, nil
}

// Errors returned by the framing layer.
var (
	ErrFrameTooLarge = errors.New("proto: frame exceeds maximum size")
	ErrBadVersion    = errors.New("proto: protocol version mismatch")
)

// WriteFrame encodes m as one frame on w. It performs a single Write call
// for the whole frame so interleaved writers cannot corrupt the stream
// boundary mid-frame (callers should still serialize writes).
func WriteFrame(w io.Writer, m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("proto: marshal: %w", err)
	}
	if len(body) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
	copy(frame[4:], body)
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("proto: write frame: %w", err)
	}
	return nil
}

// ReadFrame decodes one frame from r.
func ReadFrame(r io.Reader) (*Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("proto: short frame body: %w", err)
	}
	m := new(Message)
	if err := json.Unmarshal(body, m); err != nil {
		return nil, fmt.Errorf("proto: unmarshal: %w", err)
	}
	return m, nil
}

// CheckHello validates a worker's hello message.
func CheckHello(m *Message) error {
	if m.Type != TypeHello {
		return fmt.Errorf("proto: expected hello, got %q", m.Type)
	}
	if m.Version != Version {
		return fmt.Errorf("%w: got %q, want %q", ErrBadVersion, m.Version, Version)
	}
	return nil
}
