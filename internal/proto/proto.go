// Package proto defines the wire protocol spoken between a Pando master,
// its volunteers, and the public (signalling) server. It is the Go
// rendering of the '/pando/1.0.0' protocol the paper's Figure 2 refers to:
// a worker declares which protocol version its processing function targets
// and the master streams inputs and collects results over a framed,
// heartbeat-monitored message channel.
//
// Two wire formats share the same outer framing (a 4-byte big-endian body
// length): '/pando/1.0.0' encodes the body as JSON, keeping the protocol
// debuggable and mirroring the JavaScript original, while '/pando/2.1.0'
// encodes it as binary tag-length-value fields with varint lengths and raw
// payload bytes, removing the base64 inflation JSON imposes on []byte
// payloads. Bodies are self-describing (a v2 body starts with a magic byte
// no JSON body can start with), so a reader accepts both formats at any
// time; which format a peer *writes* is negotiated during the
// hello/welcome handshake (see WireFormat and Negotiate).
package proto

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
)

// Version is the baseline protocol version tag, mirroring the
// '/pando/1.0.0' property of the paper's programming interface (Figure 2).
// Every peer speaks it; hellos always declare it so v1-only masters admit
// newer workers unchanged.
const Version = "/pando/1.0.0"

// Version2 tags the binary wire format: same message vocabulary, binary
// tag-length-value envelope, raw payload bytes (no base64), varint
// lengths, and binary grouped batches.
const Version2 = "/pando/2.1.0"

// MaxFrameSize bounds a single frame. The paper notes a limitation on the
// size of individual WebRTC messages in the simple-peer library (§5.1);
// we keep an explicit, much larger bound purely as a safety limit.
const MaxFrameSize = 64 << 20 // 64 MiB

// Type enumerates the message kinds.
type Type string

// Message kinds.
const (
	// Handshake.
	TypeHello   Type = "hello"   // worker → master: version, function, cores
	TypeWelcome Type = "welcome" // master → worker: accepted, batch size

	// Data plane.
	TypeInput  Type = "input"  // master → worker: one input value
	TypeResult Type = "result" // worker → master: one result or error

	// Grouped data plane (extension): several values per frame, cutting
	// per-message overhead on high-latency links ("batching inputs for
	// distribution", paper §1/§5.5).
	TypeInputBatch  Type = "inputs"  // master → worker: array of inputs
	TypeResultBatch Type = "results" // worker → master: array of results

	// Liveness (the heartbeat mechanism of WebSockets and WebRTC that
	// Pando's fault-tolerance relies on, paper §1 and §2.4.1).
	TypePing Type = "ping"
	TypePong Type = "pong"

	// Orderly shutdown.
	TypeGoodbye Type = "goodbye"

	// Fleet reassignment (shared volunteer pools): the master moves a
	// still-connected worker to another job mid-session. The frame names
	// the new processing function, like a welcome; the worker echoes it
	// back once it has switched, which doubles as the drain barrier — the
	// channel is ordered and the worker serial, so every result of the
	// previous job precedes the echo. Pre-pool workers ignore the frame
	// (unknown control messages are skipped), which is why masters only
	// reassign workers whose hello advertised a Functions list.
	TypeReassign Type = "reassign"

	// Content-addressed payload dedup (the '/pando/2.2.0' extension). An
	// input whose Data was already transmitted on this channel may travel
	// as a blob reference instead: Data absent, Digest carrying the
	// SHA-256 of the payload. A worker whose cache cannot resolve the
	// digest asks for the bytes with a blobmiss; the master answers with a
	// blob frame carrying both Digest and Data. Both frames ride the
	// existing ordered channel, so the fetch exchange needs no side
	// connection and stays inside the crash-stop fault model.
	TypeBlobMiss Type = "blobmiss" // worker → master: digest not cached
	TypeBlob     Type = "blob"     // master → worker: digest + payload bytes

	// Signalling through the public server (WebRTC bootstrap, Figure 7).
	TypeJoin      Type = "join"      // peer → server: register peer ID
	TypeOffer     Type = "offer"     // peer → server → peer
	TypeAnswer    Type = "answer"    // peer → server → peer
	TypeCandidate Type = "candidate" // connection endpoint advertisement
	TypeError     Type = "error"
)

// Message is the single envelope used for every exchange. Unused fields
// are omitted from the wire encoding.
type Message struct {
	Type Type   `json:"t"`
	Seq  uint64 `json:"seq,omitempty"` // input/result sequence number
	Data []byte `json:"d,omitempty"`   // payload (JSON or opaque bytes)
	Err  string `json:"e,omitempty"`   // error carried by a result

	// Digest is the SHA-256 of a content-addressed payload (the
	// '/pando/2.2.0' dedup extension): on an input it names Data (present
	// alongside the bytes on first transmission, alone on later ones), and
	// on blobmiss/blob frames it names the payload being fetched. Decoded
	// from a v2 body it aliases the frame buffer like Data does — copy it
	// before retaining it past Release.
	Digest []byte `json:"dg,omitempty"`

	// Handshake fields.
	Version string `json:"v,omitempty"`  // protocol version
	Func    string `json:"f,omitempty"`  // processing function name
	Cores   int    `json:"c,omitempty"`  // worker parallelism
	Batch   int    `json:"b,omitempty"`  // values in flight (Limiter bound)
	Token   string `json:"tk,omitempty"` // deployment invitation token

	// Wire-format negotiation (hello/welcome only). A worker's hello
	// lists the formats it can speak, best first; the master's welcome
	// names the one chosen for the rest of the session. Absent fields
	// mean v1, which is how pre-negotiation peers interoperate.
	Formats []string `json:"fmts,omitempty"` // hello: supported wire formats
	Wire    string   `json:"w,omitempty"`    // welcome: selected wire format

	// Functions (hello only) lists every processing function the
	// volunteer's registry can resolve, sorted — what lets a shared pool
	// route the device to any job it can serve and reassign it when that
	// job completes. The single entry "*" advertises "any function"
	// (volunteers with an explicit handler or resolver). An absent list
	// marks a pre-pool volunteer: it is routed once, to a compatible job,
	// and never reassigned. On a rejoin after a transient failure the
	// hello also carries Seq (the volunteer's join incarnation, >0 on
	// rejoins) and Token (a per-volunteer-instance nonce), so the master
	// can sever the departed incarnation's half-open sessions instead of
	// waiting for their heartbeats to time out.
	Functions []string `json:"fns,omitempty"`

	// Signalling fields.
	Peer string `json:"p,omitempty"`  // sender peer ID
	To   string `json:"to,omitempty"` // destination peer ID
	Addr string `json:"a,omitempty"`  // candidate network address

	// buf is the pooled frame buffer backing Data when the message was
	// decoded from the arena's read path; Release returns it. See pool.go
	// for the ownership rules.
	buf []byte
}

// BatchItem is one element of a grouped input or result frame.
type BatchItem struct {
	// D is the payload.
	D []byte `json:"d,omitempty"`
	// E is a per-item error (results only).
	E string `json:"e,omitempty"`
}

// EncodeBatch serializes grouped payloads for a frame's Data field in the
// v1 (JSON array) encoding. Negotiated channels should call the selected
// WireFormat's EncodeBatch instead.
func EncodeBatch(items []BatchItem) ([]byte, error) {
	return V1.EncodeBatch(items)
}

// DecodeBatch parses a grouped frame's Data field, accepting both the v1
// JSON array and the v2 binary batch encoding (a binary batch starts with
// a magic byte no JSON value can start with).
func DecodeBatch(data []byte) ([]BatchItem, error) {
	if len(data) > 0 && data[0] == binBatchMagic {
		return V2.DecodeBatch(data)
	}
	return V1.DecodeBatch(data)
}

// Errors returned by the framing layer.
var (
	ErrFrameTooLarge = errors.New("proto: frame exceeds maximum size")
	ErrBadVersion    = errors.New("proto: protocol version mismatch")
	ErrBadFrame      = errors.New("proto: malformed frame body")
)

// WriteFrame encodes m as one v1 frame on w, the pre-negotiation default.
func WriteFrame(w io.Writer, m *Message) error {
	return V1.WriteFrame(w, m)
}

// writeBody length-prefixes body and writes header and body as one
// vectored write (net.Buffers degrades to two ordered Writes on plain
// writers), avoiding the historical copy of the whole body into a fresh
// frame buffer. Callers serialize writes per connection, so the two
// iovecs cannot interleave with another frame.
func writeBody(w io.Writer, body []byte) error {
	if len(body) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	bufs := net.Buffers{hdr[:], body}
	if _, err := bufs.WriteTo(w); err != nil {
		return fmt.Errorf("proto: write frame: %w", err)
	}
	return nil
}

// readBody reads one length-prefixed frame body from r into a pooled
// buffer. The caller owns the buffer: either PutBuf it once decoded, or
// hand it to the decoded Message (adoptBuf) so Release reclaims it.
func readBody(r io.Reader) ([]byte, error) {
	// The prefix buffer comes from the arena too: a stack array would
	// escape through the io.Reader interface call and cost one heap
	// allocation per frame.
	lenBuf := GetBuf(4)[:4]
	if _, err := io.ReadFull(r, lenBuf); err != nil {
		PutBuf(lenBuf)
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf)
	PutBuf(lenBuf)
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	body := GetBuf(int(n))[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		PutBuf(body)
		return nil, fmt.Errorf("proto: short frame body: %w", err)
	}
	return body, nil
}

// ReadFrame decodes one frame from r, accepting either wire format: the
// body's first byte distinguishes a v2 binary envelope from v1 JSON.
// Readers therefore never depend on negotiation state, which keeps the
// hello/welcome format switch race-free even with heartbeats in flight.
//
// The returned Message comes from the arena: its Data aliases a pooled
// buffer the message owns. Receive loops should Release it once the
// frame is consumed (after Detach when Data escapes); a message that is
// never released is reclaimed by the GC instead of the pool.
func ReadFrame(r io.Reader) (*Message, error) {
	body, err := readBody(r)
	if err != nil {
		return nil, err
	}
	if len(body) > 0 && body[0] == binMagic {
		m := GetMessage()
		if err := decodeBinaryBodyInto(m, body); err != nil {
			Release(m)
			PutBuf(body)
			return nil, err
		}
		m.adoptBuf(body)
		return m, nil
	}
	if len(body) > 0 && body[0] == cmpMagic {
		raw, err := decodeCompressedBody(body)
		PutBuf(body)
		if err != nil {
			return nil, err
		}
		m := GetMessage()
		if err := decodeBinaryBodyInto(m, raw); err != nil {
			Release(m)
			PutBuf(raw)
			return nil, err
		}
		m.adoptBuf(raw)
		return m, nil
	}
	m := GetMessage()
	err = json.Unmarshal(body, m)
	// v1 JSON decoding copies every field out of the body (base64 []byte
	// included), so the read buffer recycles immediately.
	PutBuf(body)
	if err != nil {
		Release(m)
		return nil, fmt.Errorf("proto: unmarshal: %w", err)
	}
	return m, nil
}

// CheckHello validates a worker's hello message.
func CheckHello(m *Message) error {
	if m.Type != TypeHello {
		return fmt.Errorf("proto: expected hello, got %q", m.Type)
	}
	if m.Version != Version {
		return fmt.Errorf("%w: got %q, want %q", ErrBadVersion, m.Version, Version)
	}
	return nil
}
