package proto

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Invitation is what a deployment URL serves — the substitute for the
// browserified worker-code bundle of the JavaScript implementation: it
// names the registered processing function and describes where and how
// to connect (paper Figure 7's HTTP bootstrap step).
type Invitation struct {
	// Version is the protocol version the master speaks.
	Version string `json:"version"`
	// Func is the processing function volunteers must apply.
	Func string `json:"func"`
	// Transport is "ws" for a direct WebSocket-like join or "webrtc"
	// for the signalling bootstrap.
	Transport string `json:"transport"`
	// DataAddr is the address to join: the master's data listener (ws)
	// or the public signalling server (webrtc).
	DataAddr string `json:"dataAddr"`
	// MasterID is the master's peer ID on the signalling server
	// (webrtc only).
	MasterID string `json:"masterId,omitempty"`
	// Batch is the number of values kept in flight per device.
	Batch int `json:"batch"`
}

// FetchInvitation retrieves a deployment invitation from a URL — the
// volunteer-side "opening the URL in the browser" (paper §2.1.2).
func FetchInvitation(url string) (Invitation, error) {
	resp, err := http.Get(url)
	if err != nil {
		return Invitation{}, fmt.Errorf("proto: fetch invitation: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Invitation{}, fmt.Errorf("proto: fetch invitation: status %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return Invitation{}, fmt.Errorf("proto: read invitation: %w", err)
	}
	var inv Invitation
	if err := json.Unmarshal(body, &inv); err != nil {
		return Invitation{}, fmt.Errorf("proto: parse invitation: %w", err)
	}
	if inv.Version != Version {
		return Invitation{}, fmt.Errorf("%w: got %q", ErrBadVersion, inv.Version)
	}
	return inv, nil
}
