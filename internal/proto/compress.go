package proto

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// This file implements the '/pando/2.2.0' wire format: the v2 binary
// envelope wrapped, frame by frame, in an optional DEFLATE layer. The
// outer framing (4-byte big-endian body length) is shared with v1 and v2;
// a compressed body is
//
//	magic byte 0xB4,
//	uvarint raw (inflated) body length,
//	DEFLATE stream of a complete v2 body (magic 0xB2 ... inner CRC),
//	then a 4-byte little-endian CRC32 (IEEE) of everything before it.
//
// The trailing CRC is computed over the *compressed* bytes, so a flipped
// bit on the link is detected before the inflater ever runs: corruption
// surfaces as ErrBadFrame, the channel fails, and the engine re-lends —
// the same degrade-to-crash-stop contract the v2 trailer established.
// The inflated payload is a byte-exact v2 body (its own CRC included),
// so the decoder is the existing one; compression composes with the
// envelope instead of forking it.
//
// Compression is per frame and adaptive: the writer decides for every
// frame whether the DEFLATE layer pays for itself, and frames it leaves
// raw are plain v2 bodies (magic 0xB2). Readers sniff each body — the
// property every format here shares — so the mix needs no signalling.
// The policy (see decide) skips small frames, skips runs of frames after
// the payload proves incompressible, and skips entirely when the sched
// controller's EWMA throughput hint says the link is fast enough that
// trading CPU for bytes is a loss. Both coders run out of pooled state
// (flate coders, arena buffers), preserving the 0 allocs/op steady state
// of the v2 hot path.

// cmpMagic is the first body byte of a compressed v3 envelope. Like
// binMagic, no JSON body can start with it.
const cmpMagic = 0xB4

// Compression policy constants.
const (
	// cmpMinData is the smallest Data payload worth compressing; control
	// frames and small results stay on the raw v2 fast path.
	cmpMinData = 512
	// cmpGainNum/cmpGainDen: a compressed body must shrink below
	// num/den of the raw body or the raw encoding is sent instead (the
	// deflate overhead is not worth single-digit savings).
	cmpGainNum = 15
	cmpGainDen = 16
	// cmpSkipRun is how many frames the writer skips compression for
	// after the compressibility EWMA settles above cmpSkipRatio, before
	// probing again.
	cmpSkipRun = 32
	// cmpSkipRatio is the smoothed compressed/raw ratio beyond which the
	// payload stream is considered incompressible.
	cmpSkipRatio = 0.92
	// cmpRatioAlpha smooths the per-frame compression ratio samples.
	cmpRatioAlpha = 0.25
	// cmpFastLinkBPS: when the rate hint (items/s from the sched
	// controller, see RateHinted) times the smoothed frame size exceeds
	// this many bytes per second, the link is moving data faster than
	// compression could meaningfully help and the writer stays raw.
	cmpFastLinkBPS = 32 << 20
)

// Version3 tags the compressed wire format: v2 envelopes with adaptive
// per-frame DEFLATE and content-addressed payload references (Digest).
const Version3 = "/pando/2.2.0"

// RateHinted is implemented by wire formats whose write policy can use a
// throughput estimate for the channel they are negotiated on. The master
// feeds it the sched controller's per-worker EWMA rate so compression
// backs off on links that are not bandwidth-bound.
type RateHinted interface {
	HintRate(itemsPerSec float64)
}

// compressedWire is the '/pando/2.2.0' WireFormat. Unlike the stateless
// v1/v2 singletons, each negotiated channel gets its own instance
// (LookupFormat returns a fresh one) because the adaptive policy is
// per-link state. Fields are atomics: SendBatch encodes via AppendFrame
// outside the channel's write lock, concurrently with Send.
type compressedWire struct {
	rateHint  atomic.Uint64 // float64 bits; items/s hint from the scheduler
	ewmaBytes atomic.Uint64 // float64 bits; smoothed raw frame size
	ewmaRatio atomic.Uint64 // float64 bits; smoothed compressed/raw ratio
	skipLeft  atomic.Int64  // raw frames remaining before the next probe
}

// NewCompressedWire returns a fresh v3 format instance with neutral
// policy state. Channels obtain one through LookupFormat(Version3).
func NewCompressedWire() WireFormat { return &compressedWire{} }

func (c *compressedWire) Name() string { return Version3 }

// HintRate records the scheduler's smoothed items-per-second estimate
// for this channel.
func (c *compressedWire) HintRate(itemsPerSec float64) {
	c.rateHint.Store(math.Float64bits(itemsPerSec))
}

func loadF64(a *atomic.Uint64) float64 { return math.Float64frombits(a.Load()) }

func storeEWMA(a *atomic.Uint64, sample, alpha float64) {
	prev := loadF64(a)
	if prev == 0 {
		a.Store(math.Float64bits(sample))
		return
	}
	a.Store(math.Float64bits((1-alpha)*prev + alpha*sample))
}

// decide reports whether this frame should attempt compression.
func (c *compressedWire) decide(m *Message) bool {
	if len(m.Data) < cmpMinData {
		return false
	}
	storeEWMA(&c.ewmaBytes, float64(len(m.Data)), cmpRatioAlpha)
	// Fast link: the controller says this worker is consuming items at a
	// rate where bytes are not the bottleneck; spend no CPU.
	if rate := loadF64(&c.rateHint); rate > 0 {
		if rate*loadF64(&c.ewmaBytes) >= cmpFastLinkBPS {
			return false
		}
	}
	// Incompressible run: after the ratio EWMA settles high, skip a run
	// of frames, then probe again (the stream may have changed phase).
	if c.skipLeft.Load() > 0 {
		c.skipLeft.Add(-1)
		return false
	}
	return true
}

// observe feeds one compression outcome into the adaptive state.
func (c *compressedWire) observe(rawLen, compLen int) {
	ratio := float64(compLen) / float64(rawLen)
	storeEWMA(&c.ewmaRatio, ratio, cmpRatioAlpha)
	if loadF64(&c.ewmaRatio) > cmpSkipRatio {
		c.skipLeft.Store(cmpSkipRun)
	}
}

// flateEncoder bundles a flate.Writer with its reusable append sink so
// one pool hit services the whole encode path.
type flateEncoder struct {
	w  *flate.Writer
	sw sliceWriter
}

var flateEncoderPool = sync.Pool{New: func() any {
	fw, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return &flateEncoder{w: fw}
}}

// deflate appends the DEFLATE stream of src to dst, returning the
// extended buffer. The encoder state is pooled; the destination is
// caller-owned (typically an arena buffer).
func deflate(dst, src []byte) ([]byte, error) {
	e := flateEncoderPool.Get().(*flateEncoder)
	e.sw.buf = dst
	e.w.Reset(&e.sw)
	_, werr := e.w.Write(src)
	cerr := e.w.Close()
	out := e.sw.buf
	e.sw.buf = nil
	flateEncoderPool.Put(e)
	if werr != nil {
		return dst, werr
	}
	if cerr != nil {
		return dst, cerr
	}
	return out, nil
}

// flateDecoder bundles a flate reader with its reusable source so
// inflating a frame allocates nothing in steady state. The one-byte
// scratch lives here because a local array passed through the reader
// interface escapes — one heap byte per frame.
type flateDecoder struct {
	r   io.ReadCloser
	br  bytes.Reader
	one [1]byte
}

var flateDecoderPool = sync.Pool{New: func() any {
	d := &flateDecoder{}
	d.r = flate.NewReader(&d.br)
	return d
}}

// inflate decompresses src into dst (which must be pre-sized to the
// expected raw length) and fails unless the stream inflates to exactly
// len(dst) bytes.
func inflate(dst, src []byte) error {
	d := flateDecoderPool.Get().(*flateDecoder)
	d.br.Reset(src)
	if err := d.r.(flate.Resetter).Reset(&d.br, nil); err != nil {
		flateDecoderPool.Put(d)
		return err
	}
	_, err := io.ReadFull(d.r, dst)
	if err == nil {
		// The stream must end exactly at the declared raw length.
		if n, _ := d.r.Read(d.one[:]); n != 0 {
			err = fmt.Errorf("%w: inflated body exceeds declared length", ErrBadFrame)
		}
	}
	flateDecoderPool.Put(d)
	return err
}

// appendCompressedFrame appends one complete v3 frame to b: either a
// compressed envelope or, when the policy or the outcome says raw wins,
// a plain v2 frame. Appending into a caller-owned buffer keeps the
// vectored batch path (AppendFrame) alloc-free.
func (c *compressedWire) appendCompressedFrame(b []byte, m *Message) ([]byte, error) {
	if !c.decide(m) {
		return appendBinaryFrame(b, m), nil
	}
	// Encode the complete v2 body into a scratch arena buffer, then
	// compress it. The scratch recycles before return on every path.
	scratch := appendBinaryFrame(GetBuf(binaryFrameSize(m)), m)
	raw := scratch[4:] // strip the length prefix; the v3 body carries its own
	start := len(b)
	b = append(b, 0, 0, 0, 0) // length prefix, filled in below
	b = append(b, cmpMagic)
	b = binary.AppendUvarint(b, uint64(len(raw)))
	compressed, err := deflate(b, raw)
	if err != nil {
		// Deflate failures are exceptional (a broken pool state); fall
		// back to the raw encoding rather than failing the channel.
		PutBuf(scratch)
		return appendBinaryFrame(b[:start], m), nil
	}
	b = compressed
	compLen := len(b) - start - 4
	c.observe(len(raw), compLen)
	if compLen*cmpGainDen >= len(raw)*cmpGainNum {
		// Not worth it: ship the already-encoded v2 frame bytes.
		b = append(b[:start], scratch...)
		PutBuf(scratch)
		return b, nil
	}
	PutBuf(scratch)
	sum := crc32.ChecksumIEEE(b[start+4:])
	b = binary.LittleEndian.AppendUint32(b, sum)
	binary.BigEndian.PutUint32(b[start:start+4], uint32(len(b)-start-4))
	return b, nil
}

// decodeCompressedBody verifies and inflates a v3 body (including the
// magic byte), returning the inflated v2 body in a fresh arena buffer.
// The caller owns the returned buffer; src is untouched.
func decodeCompressedBody(body []byte) ([]byte, error) {
	if len(body) == 0 || body[0] != cmpMagic {
		return nil, fmt.Errorf("%w: missing v3 magic", ErrBadFrame)
	}
	if len(body) < 1+binCRCSize {
		return nil, fmt.Errorf("%w: v3 body shorter than its CRC trailer", ErrBadFrame)
	}
	payload := body[:len(body)-binCRCSize]
	sum := binary.LittleEndian.Uint32(body[len(body)-binCRCSize:])
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: CRC mismatch (corrupted compressed frame)", ErrBadFrame)
	}
	rest := payload[1:]
	rawLen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad raw-length varint", ErrBadFrame)
	}
	if rawLen > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	rest = rest[n:]
	raw := GetBuf(int(rawLen))[:rawLen]
	if err := inflate(raw, rest); err != nil {
		PutBuf(raw)
		return nil, fmt.Errorf("%w: inflate: %v", ErrBadFrame, err)
	}
	return raw, nil
}

func (c *compressedWire) WriteFrame(w io.Writer, m *Message) error {
	frame, err := c.appendCompressedFrame(GetBuf(binaryFrameSize(m)), m)
	if err != nil {
		PutBuf(frame)
		return err
	}
	if len(frame)-4 > MaxFrameSize {
		PutBuf(frame)
		return ErrFrameTooLarge
	}
	_, err = w.Write(frame)
	PutBuf(frame)
	if err != nil {
		return fmt.Errorf("proto: write frame: %w", err)
	}
	return nil
}

func (c *compressedWire) ReadFrame(r io.Reader) (*Message, error) {
	body, err := readBody(r)
	if err != nil {
		return nil, err
	}
	if len(body) > 0 && body[0] == cmpMagic {
		raw, err := decodeCompressedBody(body)
		PutBuf(body)
		if err != nil {
			return nil, err
		}
		m := GetMessage()
		if err := decodeBinaryBodyInto(m, raw); err != nil {
			Release(m)
			PutBuf(raw)
			return nil, err
		}
		m.adoptBuf(raw)
		return m, nil
	}
	// Raw fast-path frames (and peers negotiated down): plain v2 body.
	m := GetMessage()
	if err := decodeBinaryBodyInto(m, body); err != nil {
		Release(m)
		PutBuf(body)
		return nil, err
	}
	m.adoptBuf(body)
	return m, nil
}

// Grouped batches ride inside the frame Data, which the envelope already
// compresses; the batch encoding itself is the v2 binary one.
func (c *compressedWire) EncodeBatch(items []BatchItem) ([]byte, error) {
	return V2.EncodeBatch(items)
}

func (c *compressedWire) DecodeBatch(data []byte) ([]BatchItem, error) {
	return V2.DecodeBatch(data)
}
