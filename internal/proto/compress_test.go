package proto

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// compressibleData returns n bytes that DEFLATE collapses well, so the
// v3 writer's first probe always chooses the compressed encoding.
func compressibleData(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + 7)
	}
	return b
}

// v3Frame encodes m through a fresh v3 instance (neutral policy state)
// and returns the complete frame bytes.
func v3Frame(t testing.TB, m *Message) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := NewCompressedWire().WriteFrame(&buf, m); err != nil {
		t.Fatalf("v3 write: %v", err)
	}
	return buf.Bytes()
}

// forgeV3 assembles a v3 frame by hand — declared raw length, arbitrary
// "compressed" bytes, and a *valid* CRC over them — so tests can reach
// the inflate error paths that live behind the CRC check.
func forgeV3(declaredLen uint64, flateBytes []byte) []byte {
	body := []byte{cmpMagic}
	body = binary.AppendUvarint(body, declaredLen)
	body = append(body, flateBytes...)
	body = binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	return append(frame, body...)
}

// TestCompressedFrameRoundTrip pins the v3 envelope end to end: a
// compressible payload must come back byte-identical (through the
// format's own reader and through the sniffing global ReadFrame), must
// actually travel compressed, and every message field must survive.
func TestCompressedFrameRoundTrip(t *testing.T) {
	in := &Message{
		Type: TypeInput, Seq: 41, Data: compressibleData(4096),
		Digest: bytes.Repeat([]byte{0xAB}, 32),
	}
	frame := v3Frame(t, in)
	if frame[4] != cmpMagic {
		t.Fatalf("compressible frame body starts with %#x, want compressed magic %#x", frame[4], cmpMagic)
	}
	var v2 bytes.Buffer
	if err := V2.WriteFrame(&v2, in); err != nil {
		t.Fatal(err)
	}
	if len(frame) >= v2.Len() {
		t.Errorf("compressed frame is %d bytes, raw v2 is %d — no gain", len(frame), v2.Len())
	}
	for _, read := range []struct {
		name string
		m    *Message
		err  error
	}{
		{name: "v3 reader"}, {name: "sniffing ReadFrame"},
	} {
		var m *Message
		var err error
		if read.name == "v3 reader" {
			m, err = NewCompressedWire().ReadFrame(bytes.NewReader(frame))
		} else {
			m, err = ReadFrame(bytes.NewReader(frame))
		}
		if err != nil {
			t.Fatalf("%s: %v", read.name, err)
		}
		if m.Type != in.Type || m.Seq != in.Seq || !bytes.Equal(m.Data, in.Data) || !bytes.Equal(m.Digest, in.Digest) {
			t.Fatalf("%s: round trip mismatch: %+v", read.name, m)
		}
		Release(m)
	}

	// Small frames stay on the raw fast path and still decode.
	small := &Message{Type: TypePing, Seq: 7}
	sf := v3Frame(t, small)
	if sf[4] != binMagic {
		t.Fatalf("small frame body starts with %#x, want raw v2 magic %#x", sf[4], binMagic)
	}
	m, err := NewCompressedWire().ReadFrame(bytes.NewReader(sf))
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypePing || m.Seq != 7 {
		t.Fatalf("small frame mismatch: %+v", m)
	}
	Release(m)
}

// TestCompressedFrameCorruption pins every corruption class to a decode
// error — never a panic, never a silently wrong message. This is the
// degrade-to-crash-stop contract: the channel reader surfaces the error
// and the engine treats the peer as crashed.
func TestCompressedFrameCorruption(t *testing.T) {
	good := v3Frame(t, &Message{Type: TypeInput, Seq: 9, Data: compressibleData(2048)})

	// A valid DEFLATE stream of 64 bytes, used to forge frames whose CRC
	// passes but whose declared length lies.
	var deflated []byte
	{
		raw := compressibleData(64)
		var err error
		deflated, err = deflate(nil, raw)
		if err != nil {
			t.Fatal(err)
		}
	}

	cases := map[string][]byte{
		"truncated mid-body":  good[:len(good)-5],
		"truncated to magic":  append(binary.BigEndian.AppendUint32(nil, 1), cmpMagic),
		"missing CRC trailer": append(binary.BigEndian.AppendUint32(nil, 3), cmpMagic, 0x01, 0x02),
		"garbage flate, valid CRC": forgeV3(64,
			[]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x11, 0x22, 0x33}),
		"declared length too short": forgeV3(32, deflated),
		"declared length too long":  forgeV3(128, deflated),
		"oversize declared length":  forgeV3(uint64(MaxFrameSize)+1, deflated),
		"unterminated varint": forgeV3Raw(t, append([]byte{cmpMagic},
			0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80)),
	}
	// A single flipped bit in the compressed body must fail the CRC.
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x01
	cases["flipped bit"] = flipped

	for name, frame := range cases {
		if m, err := NewCompressedWire().ReadFrame(bytes.NewReader(frame)); err == nil {
			t.Errorf("%s: decoded %+v, want error", name, m)
			Release(m)
		}
	}
}

// forgeV3Raw wraps an arbitrary body (already starting with cmpMagic)
// with a valid CRC trailer and length prefix.
func forgeV3Raw(t *testing.T, body []byte) []byte {
	t.Helper()
	if body[0] != cmpMagic {
		t.Fatal("forgeV3Raw: body must start with cmpMagic")
	}
	body = binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	return append(frame, body...)
}

// FuzzCompressedFrame throws adversarial bytes at the v3 reader —
// truncations, garbage DEFLATE bodies behind valid CRCs, lying length
// declarations — and round-trips the fuzzer's payload through a fresh
// v3 writer. Decoding must never panic and never return a message that
// differs from what was written; corrupt input must surface as an
// error. Run the corpus as a test, or explore with
// `go test -fuzz=FuzzCompressedFrame ./internal/proto`.
func FuzzCompressedFrame(f *testing.F) {
	seedMsgs := []*Message{
		{Type: TypeInput, Seq: 3, Data: compressibleData(2048)},
		{Type: TypeInputBatch, Seq: 8, Data: compressibleData(600), Digest: bytes.Repeat([]byte{1}, 32)},
		{Type: TypePing},
	}
	for _, m := range seedMsgs {
		var buf bytes.Buffer
		_ = NewCompressedWire().WriteFrame(&buf, m)
		f.Add(buf.Bytes(), []byte(nil))
		if buf.Len() > 8 {
			f.Add(buf.Bytes()[:buf.Len()-6], []byte(nil)) // truncation
		}
	}
	// Hostile hand-built bodies: bare magic, magic with only a CRC, a
	// valid CRC over garbage flate bytes, varint abuse.
	f.Add(append(binary.BigEndian.AppendUint32(nil, 1), cmpMagic), []byte(nil))
	f.Add(forgeV3(512, []byte{0xFF, 0xFF, 0x00, 0xAA}), []byte(nil))
	f.Add(forgeV3(1<<40, []byte{0x01}), []byte(nil))
	f.Add([]byte{0x00, 0x00, 0x00, 0x06, cmpMagic, 0x80, 0x80, 0x80, 0x80, 0x80}, []byte(nil))
	// Round-trip payload seeds.
	f.Add([]byte(nil), compressibleData(4096))
	f.Add([]byte(nil), bytes.Repeat([]byte{0x42}, 600))

	f.Fuzz(func(t *testing.T, frame, payload []byte) {
		// Adversarial read: any bytes, never a panic, nil error implies a
		// message.
		if m, err := NewCompressedWire().ReadFrame(bytes.NewReader(frame)); err == nil {
			if m == nil {
				t.Fatal("nil message with nil error")
			}
			Release(m)
		}

		// Round trip: whatever the policy chose (compressed or raw), the
		// reader must hand back exactly what was written — through the
		// writing format and through the sniffing global ReadFrame.
		if len(payload) > MaxFrameSize/2 {
			return
		}
		in := &Message{Type: TypeInput, Seq: 11, Data: payload}
		var buf bytes.Buffer
		w := NewCompressedWire()
		if err := w.WriteFrame(&buf, in); err != nil {
			t.Fatalf("write: %v", err)
		}
		encoded := buf.Bytes()
		for _, via := range []string{"v3", "sniff"} {
			var m *Message
			var err error
			if via == "v3" {
				m, err = w.ReadFrame(bytes.NewReader(encoded))
			} else {
				m, err = ReadFrame(bytes.NewReader(encoded))
			}
			if err != nil {
				t.Fatalf("%s read back: %v", via, err)
			}
			if m.Type != TypeInput || m.Seq != 11 || !bytes.Equal(m.Data, payload) {
				t.Fatalf("%s round trip mismatch: %+v", via, m)
			}
			Release(m)
		}
	})
}
