package proto

import (
	"sync"
	"sync/atomic"
)

// This file is the buffer arena of the zero-alloc hot path: a
// sync.Pool-backed store of frame buffers and Message envelopes that the
// codec reuses across frames, so the steady-state encode/decode path of a
// long-running deployment performs no heap allocation per frame.
//
// # Ownership rules
//
// Every buffer has exactly one owner at a time, and the owner is explicit
// at each step:
//
//   - WriteFrame owns its encode buffer for the duration of the write and
//     recycles it before returning; callers never see it.
//   - ReadFrame transfers ownership of the body buffer to the returned
//     Message: a v2 Message's Data field aliases it (the zero-copy decode),
//     and the Message remembers the buffer in its unexported buf field.
//   - Release(m) returns the Message and its owned buffer to the arena.
//     After Release the caller must not touch m, m.Data, or any sub-slice
//     of m.Data — the memory will be handed to a future frame. Receive
//     loops call Release once a frame is fully consumed.
//   - Detach(m) severs m.Data from the owned buffer when the decoded
//     payload escapes the receive loop (e.g. a pass-through payload codec
//     hands m.Data itself to the application): the data's ownership moves
//     to the escaping reference and a later Release recycles only the
//     envelope. Data that outlives the frame MUST be detached (or copied)
//     before Release, or it would alias recycled memory.
//
// A Message that is never Released is simply collected by the GC — safety
// never depends on Release being called, only performance does.

// Size classes for pooled buffers. A buffer is recycled into the class
// whose capacity it fits; buffers beyond maxPooledBuf (a giant frame) are
// left to the GC so one outlier cannot pin megabytes in the pool.
const (
	bufClassSmall  = 4 << 10
	bufClassMedium = 64 << 10
	bufClassLarge  = 1 << 20

	maxPooledBuf = bufClassLarge
)

var bufPools = [3]sync.Pool{
	{New: func() any { b := make([]byte, 0, bufClassSmall); return &b }},
	{New: func() any { b := make([]byte, 0, bufClassMedium); return &b }},
	{New: func() any { b := make([]byte, 0, bufClassLarge); return &b }},
}

// poisonPut, when set by tests (SetPoisonPut), scribbles over every
// buffer returned to the arena so any use-after-release surfaces as
// corrupted data instead of a silent heisenbug (the corrupt-after-release
// canary).
var poisonPut atomic.Bool

// classFor returns the pool index whose buffers hold n bytes, or -1 when
// n exceeds the largest pooled class.
func classFor(n int) int {
	switch {
	case n <= bufClassSmall:
		return 0
	case n <= bufClassMedium:
		return 1
	case n <= maxPooledBuf:
		return 2
	}
	return -1
}

// GetBuf returns a zero-length pooled buffer with capacity at least n.
// Pair it with PutBuf when the buffer's contents no longer escape.
func GetBuf(n int) []byte {
	c := classFor(n)
	if c < 0 {
		return make([]byte, 0, n)
	}
	bp := bufPools[c].Get().(*[]byte)
	b := (*bp)[:0]
	if cap(b) < n {
		// A smaller buffer was recycled into this class by a caller that
		// over-estimated; grow once, it stays in the class from now on.
		b = make([]byte, 0, n)
	}
	*bp = nil
	putHeader(bp)
	return b
}

// PutBuf recycles a buffer obtained from GetBuf (or any buffer the caller
// owns outright). The caller must not use b afterwards.
func PutBuf(b []byte) {
	if b == nil {
		return
	}
	c := classFor(cap(b))
	if c < 0 {
		return // oversized: let the GC have it
	}
	if poisonPut.Load() {
		b = b[:cap(b)]
		for i := range b {
			b[i] = 0xDB
		}
	}
	bp := getHeader()
	*bp = b[:0]
	bufPools[c].Put(bp)
}

// headerPool recycles the *[]byte boxes themselves so GetBuf/PutBuf do
// not allocate a header per cycle.
var headerPool = sync.Pool{New: func() any { return new([]byte) }}

func getHeader() *[]byte  { return headerPool.Get().(*[]byte) }
func putHeader(h *[]byte) { headerPool.Put(h) }

// msgPool recycles Message envelopes for the receive path.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// GetMessage returns a zeroed Message from the arena. It is what ReadFrame
// uses; callers constructing outbound messages may use it too, paired with
// Release once the frame is written.
func GetMessage() *Message {
	return msgPool.Get().(*Message)
}

// Release returns m and its owned frame buffer to the arena. After the
// call, m and every slice decoded from its frame (Data in particular) are
// invalid. Releasing nil is a no-op. See the ownership rules above.
func Release(m *Message) {
	if m == nil {
		return
	}
	if obs := releaseObserver.Load(); obs != nil {
		(*obs)(m)
	}
	buf := m.buf
	*m = Message{}
	msgPool.Put(m)
	if buf != nil {
		PutBuf(buf)
	}
}

// Detach severs m's decoded payload from its pooled frame buffer: the
// buffer's ownership transfers to whoever holds the escaping references
// (m.Data keeps pointing at it), and a later Release recycles only the
// envelope. Call it when Data outlives the receive loop — e.g. when a
// pass-through payload codec hands the bytes straight to the application.
func (m *Message) Detach() {
	if m != nil {
		m.buf = nil
	}
}

// adoptBuf records buf as the pooled storage backing m's decoded fields,
// transferring its ownership to the message (reclaimed by Release).
func (m *Message) adoptBuf(buf []byte) {
	m.buf = buf
}
