package landsat

import (
	"errors"
	"testing"
	"time"
)

func TestDATStoreRequiresConfirmation(t *testing.T) {
	s := NewDATStore()
	s.Share(GenerateTile(1, 8, 8))
	if _, err := s.Download(1); !errors.Is(err, ErrDownloadFailed) {
		t.Fatalf("unconfirmed download: err = %v, want ErrDownloadFailed", err)
	}
	if s.Staged() != 1 {
		t.Fatalf("staged = %d", s.Staged())
	}
	if !s.Confirm(1) {
		t.Fatal("confirm of staged tile failed")
	}
	if _, err := s.Download(1); err != nil {
		t.Fatalf("confirmed download failed: %v", err)
	}
	if s.Confirm(99) {
		t.Fatal("confirm of missing tile succeeded")
	}
}

func TestDATStoreConfirmAll(t *testing.T) {
	s := NewDATStore()
	for i := 0; i < 5; i++ {
		s.Share(GenerateTile(i, 4, 4))
	}
	if n := s.ConfirmAll(); n != 5 {
		t.Fatalf("confirmed %d, want 5", n)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Download(i); err != nil {
			t.Fatalf("tile %d: %v", i, err)
		}
	}
}

func TestDATStoreUnsharedTile(t *testing.T) {
	s := NewDATStore()
	if _, err := s.Download(7); !errors.Is(err, ErrDownloadFailed) {
		t.Fatalf("err = %v", err)
	}
}

func TestWebTorrentConnectEventuallySucceeds(t *testing.T) {
	s := NewWebTorrentStore(time.Millisecond, 0.5, 7)
	attempts := 0
	for !s.Connected() {
		attempts++
		if attempts > 100 {
			t.Fatal("connection never established at p=0.5")
		}
		_ = s.Connect()
	}
	s.Share(GenerateTile(3, 8, 8))
	if _, err := s.Download(3); err != nil {
		t.Fatal(err)
	}
}

func TestWebTorrentUnconnectedOperationsFail(t *testing.T) {
	s := NewWebTorrentStore(0, 0.0, 1) // connections never succeed
	if err := s.Connect(); !errors.Is(err, ErrConnectFailed) {
		t.Fatalf("err = %v", err)
	}
	s.Share(GenerateTile(1, 4, 4)) // silently dropped
	if _, err := s.Download(1); !errors.Is(err, ErrConnectFailed) {
		t.Fatalf("err = %v", err)
	}
}

func TestWebTorrentConnectDelayApplied(t *testing.T) {
	s := NewWebTorrentStore(30*time.Millisecond, 1.0, 1)
	start := time.Now()
	if err := s.Connect(); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("connect delay not applied")
	}
	// Established connection: no second delay.
	start = time.Now()
	if err := s.Connect(); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 10*time.Millisecond {
		t.Fatal("re-connect should be instant once established")
	}
}
