package landsat

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file implements the two data-distribution channels of the
// image-processing application:
//
//   - Server: the http variant (§4.1), where a worker fetches its input
//     image and posts the blurred result back synchronously, so a result
//     reported to Pando implies the output image has been received.
//   - P2PStore: the DAT / WebTorrent-like variant (§4.3), where transfers
//     are asynchronous and failure-prone; a worker may report success and
//     still crash before the data is fully downloaded, which is what the
//     stubborn module compensates for.

// Server distributes tiles and collects results over HTTP, the paper's
// http version of the image-processing application.
type Server struct {
	width, height int

	mu      sync.Mutex
	results map[int]Tile

	http *http.Server
	ln   net.Listener
}

// NewServer creates an HTTP tile server generating width x height tiles.
func NewServer(width, height int) *Server {
	return &Server{
		width:   width,
		height:  height,
		results: make(map[int]Tile),
	}
}

// Start listens on 127.0.0.1 (an ephemeral port) and serves until Close.
// It returns the base URL, e.g. "http://127.0.0.1:39415".
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("landsat: listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/tiles/", s.handleTile)
	mux.HandleFunc("/results/", s.handleResult)
	s.ln = ln
	s.http = &http.Server{Handler: mux}
	go s.http.Serve(ln)
	return "http://" + ln.Addr().String(), nil
}

// Close shuts the server down.
func (s *Server) Close() error {
	if s.http != nil {
		return s.http.Close()
	}
	return nil
}

func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/tiles/"))
	if err != nil {
		http.Error(w, "bad tile id", http.StatusBadRequest)
		return
	}
	t := GenerateTile(id, s.width, s.height)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Tile-Width", strconv.Itoa(t.Width))
	w.Header().Set("X-Tile-Height", strconv.Itoa(t.Height))
	_, _ = w.Write(t.Pix)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	id, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/results/"))
	if err != nil {
		http.Error(w, "bad tile id", http.StatusBadRequest)
		return
	}
	pix, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return
	}
	t := Tile{ID: id, Width: s.width, Height: s.height, Pix: pix}
	if err := t.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.results[id] = t
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// Result returns the stored blurred tile, if the worker posted it.
func (s *Server) Result(id int) (Tile, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.results[id]
	return t, ok
}

// ResultCount returns how many results have been received.
func (s *Server) ResultCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.results)
}

// FetchTile retrieves a tile from the server, the worker's input path.
func FetchTile(baseURL string, id, width, height int) (Tile, error) {
	resp, err := http.Get(fmt.Sprintf("%s/tiles/%d", baseURL, id))
	if err != nil {
		return Tile{}, fmt.Errorf("landsat: fetch tile %d: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Tile{}, fmt.Errorf("landsat: fetch tile %d: status %s", id, resp.Status)
	}
	pix, err := io.ReadAll(resp.Body)
	if err != nil {
		return Tile{}, fmt.Errorf("landsat: fetch tile %d body: %w", id, err)
	}
	t := Tile{ID: id, Width: width, Height: height, Pix: pix}
	if err := t.Validate(); err != nil {
		return Tile{}, err
	}
	return t, nil
}

// PostResult uploads a blurred tile; the call returns only after the
// server stored it, giving the synchronous-transfer guarantee of the http
// variant ("a worker processing function will not return a correct result
// until the output image has been fully transmitted").
func PostResult(baseURL string, t Tile) error {
	resp, err := http.Post(
		fmt.Sprintf("%s/results/%d", baseURL, t.ID),
		"application/octet-stream",
		strings.NewReader(string(t.Pix)),
	)
	if err != nil {
		return fmt.Errorf("landsat: post result %d: %w", t.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("landsat: post result %d: status %s", t.ID, resp.Status)
	}
	return nil
}

// ErrDownloadFailed is returned by a failure-prone P2P download, the
// additional failure mode of asynchronous external distribution (§4.3).
var ErrDownloadFailed = errors.New("landsat: p2p download failed")

// P2PStore simulates a DAT / WebTorrent-like content store: sharing is
// asynchronous (a share may silently fail, as when the sharing peer
// crashes before seeding completes) and downloads of unseeded content
// fail.
type P2PStore struct {
	mu     sync.Mutex
	data   map[int]Tile
	rng    *rand.Rand
	pShare float64 // probability a share actually completes
	delay  time.Duration
}

// NewP2PStore creates a store where each share completes with probability
// pShareSuccess and each download takes the given delay, modelling the
// slow and not-always-successful connections the paper observed with
// WebTorrent (§5.1).
func NewP2PStore(pShareSuccess float64, delay time.Duration, seed int64) *P2PStore {
	return &P2PStore{
		data:   make(map[int]Tile),
		rng:    rand.New(rand.NewSource(seed)),
		pShare: pShareSuccess,
		delay:  delay,
	}
}

// Share seeds a tile; it may silently fail (the worker believes it
// succeeded — the asynchronous failure mode).
func (p *P2PStore) Share(t Tile) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng.Float64() < p.pShare {
		p.data[t.ID] = t
	}
}

// ForceShare seeds a tile reliably (used by retries after the stubborn
// module resubmits the input).
func (p *P2PStore) ForceShare(t Tile) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.data[t.ID] = t
}

// Download retrieves a seeded tile or fails with ErrDownloadFailed.
func (p *P2PStore) Download(id int) (Tile, error) {
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.data[id]
	if !ok {
		return Tile{}, fmt.Errorf("%w: tile %d not seeded", ErrDownloadFailed, id)
	}
	return t, nil
}

// Seeded returns how many tiles are currently downloadable.
func (p *P2PStore) Seeded() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.data)
}
