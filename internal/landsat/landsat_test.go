package landsat

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestGenerateTileDeterministic(t *testing.T) {
	a := GenerateTile(7, 64, 64)
	b := GenerateTile(7, 64, 64)
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Fatal("same ID must generate identical tiles")
	}
	c := GenerateTile(8, 64, 64)
	if bytes.Equal(a.Pix, c.Pix) {
		t.Fatal("different IDs must generate different tiles")
	}
}

func TestGenerateTileSize(t *testing.T) {
	tl := GenerateTile(1, DefaultSize, DefaultSize)
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's evaluation mentions 168 kB images; DefaultSize matches.
	if n := len(tl.Pix); n < 160_000 || n > 180_000 {
		t.Fatalf("tile is %d bytes, want ~168kB", n)
	}
}

func TestTileValidate(t *testing.T) {
	bad := Tile{ID: 1, Width: 10, Height: 10, Pix: make([]byte, 5)}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched pixel count accepted")
	}
	neg := Tile{ID: 1, Width: -1, Height: 10}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative width accepted")
	}
}

func TestBoxBlurSmoothsImage(t *testing.T) {
	tl := GenerateTile(3, 64, 64)
	blurred, err := BoxBlur(tl, 3)
	if err != nil {
		t.Fatal(err)
	}
	if Variance(blurred) >= Variance(tl) {
		t.Fatalf("blur did not reduce variance: %.1f -> %.1f", Variance(tl), Variance(blurred))
	}
	if err := blurred.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBoxBlurPreservesUniformImage(t *testing.T) {
	uniform := Tile{ID: 1, Width: 16, Height: 16, Pix: bytes.Repeat([]byte{100}, 3*16*16)}
	blurred, err := BoxBlur(uniform, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range blurred.Pix {
		if b != 100 {
			t.Fatalf("pix[%d] = %d, want 100", i, b)
		}
	}
}

func TestBoxBlurValidation(t *testing.T) {
	tl := GenerateTile(1, 8, 8)
	if _, err := BoxBlur(tl, 0); err == nil {
		t.Fatal("radius 0 accepted")
	}
	if _, err := BoxBlur(Tile{Width: 2, Height: 2}, 1); err == nil {
		t.Fatal("invalid tile accepted")
	}
}

func TestQuickBlurBounded(t *testing.T) {
	// Blurring never produces values outside the input range extremes.
	f := func(id uint8) bool {
		tl := GenerateTile(int(id), 16, 16)
		lo, hi := 255, 0
		for _, b := range tl.Pix {
			if int(b) < lo {
				lo = int(b)
			}
			if int(b) > hi {
				hi = int(b)
			}
		}
		blurred, err := BoxBlur(tl, 2)
		if err != nil {
			return false
		}
		for _, b := range blurred.Pix {
			if int(b) < lo || int(b) > hi+1 { // +1 for rounding
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPServerTileRoundTrip(t *testing.T) {
	srv := NewServer(32, 32)
	base, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tl, err := FetchTile(base, 5, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	want := GenerateTile(5, 32, 32)
	if !bytes.Equal(tl.Pix, want.Pix) {
		t.Fatal("fetched tile differs from generated tile")
	}

	blurred, err := BoxBlur(tl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := PostResult(base, blurred); err != nil {
		t.Fatal(err)
	}
	stored, ok := srv.Result(5)
	if !ok {
		t.Fatal("result not stored")
	}
	if !bytes.Equal(stored.Pix, blurred.Pix) {
		t.Fatal("stored result differs")
	}
	if srv.ResultCount() != 1 {
		t.Fatalf("result count = %d", srv.ResultCount())
	}
}

func TestHTTPServerBadRequests(t *testing.T) {
	srv := NewServer(16, 16)
	base, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if _, err := FetchTile(base, 1, 99, 99); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	// Posting a wrong-size result must fail.
	bad := Tile{ID: 1, Width: 16, Height: 16, Pix: make([]byte, 7)}
	if err := PostResult(base, bad); err == nil {
		t.Fatal("invalid result accepted")
	}
}

func TestP2PStoreShareDownload(t *testing.T) {
	p := NewP2PStore(1.0, 0, 1)
	tl := GenerateTile(2, 16, 16)
	p.Share(tl)
	got, err := p.Download(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pix, tl.Pix) {
		t.Fatal("downloaded tile differs")
	}
}

func TestP2PStoreFailureInjection(t *testing.T) {
	p := NewP2PStore(0.0, 0, 1) // shares always fail silently
	p.Share(GenerateTile(3, 8, 8))
	if _, err := p.Download(3); !errors.Is(err, ErrDownloadFailed) {
		t.Fatalf("err = %v, want ErrDownloadFailed", err)
	}
	p.ForceShare(GenerateTile(3, 8, 8))
	if _, err := p.Download(3); err != nil {
		t.Fatalf("ForceShare then Download: %v", err)
	}
}

func TestP2PStorePartialFailures(t *testing.T) {
	p := NewP2PStore(0.5, 0, 42)
	for i := 0; i < 40; i++ {
		p.Share(GenerateTile(i, 4, 4))
	}
	seeded := p.Seeded()
	if seeded == 0 || seeded == 40 {
		t.Fatalf("seeded = %d; with p=0.5 some but not all shares should succeed", seeded)
	}
}

func TestP2PStoreDelay(t *testing.T) {
	p := NewP2PStore(1.0, 30*time.Millisecond, 1)
	p.Share(GenerateTile(1, 4, 4))
	start := time.Now()
	if _, err := p.Download(1); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("download delay not applied")
	}
}

func TestPNGRoundTrip(t *testing.T) {
	tl := GenerateTile(9, 24, 16)
	var buf bytes.Buffer
	if err := EncodePNG(&buf, tl); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty PNG")
	}
	got, err := DecodePNG(&buf, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 24 || got.Height != 16 {
		t.Fatalf("dims %dx%d", got.Width, got.Height)
	}
	if !bytes.Equal(got.Pix, tl.Pix) {
		t.Fatal("PNG round trip changed pixels")
	}
}

func TestEncodePNGInvalidTile(t *testing.T) {
	if err := EncodePNG(&bytes.Buffer{}, Tile{Width: 2, Height: 2}); err == nil {
		t.Fatal("invalid tile accepted")
	}
}
