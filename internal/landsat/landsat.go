// Package landsat is the open-data image-processing substrate of the
// paper's applications (§4.1 and §4.3): workers apply a blur filter to
// images from the Landsat-8 open satellite dataset, with the image data
// distributed outside of Pando — over HTTP in the synchronous variant, or
// over failure-prone peer-to-peer protocols (DAT, WebTorrent) in the
// stubborn variants.
//
// Substitution: the real dataset is not available offline, so tiles are
// generated deterministically from their identifier with a value-noise
// synthesizer at the same data volume (the paper's ~168 kB per image),
// which preserves the compute and transfer behaviour of the application.
package landsat

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
)

// Tile is one satellite image: interleaved RGB bytes, row major.
type Tile struct {
	ID     int    `json:"id"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
	Pix    []byte `json:"pix"` // 3*Width*Height bytes
}

// DefaultSize gives ~168 kB per tile (3 bytes x 237 x 237 ≈ 168,507),
// matching the image size reported in the paper's evaluation (§5.5).
const DefaultSize = 237

// hash32 is a small deterministic integer mixer (xorshift-multiply).
func hash32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// valueAt returns deterministic smooth noise in [0,255] for a lattice
// coordinate, combining two octaves of bilinear value noise.
func valueAt(id, x, y, channel int) byte {
	sample := func(scale int) float64 {
		gx, gy := x/scale, y/scale
		fx := float64(x%scale) / float64(scale)
		fy := float64(y%scale) / float64(scale)
		corner := func(cx, cy int) float64 {
			h := hash32(uint32(id*1000003) ^ uint32(cx*73856093) ^ uint32(cy*19349663) ^ uint32(channel*83492791))
			return float64(h%256) / 255
		}
		v00 := corner(gx, gy)
		v10 := corner(gx+1, gy)
		v01 := corner(gx, gy+1)
		v11 := corner(gx+1, gy+1)
		top := v00*(1-fx) + v10*fx
		bot := v01*(1-fx) + v11*fx
		return top*(1-fy) + bot*fy
	}
	v := 0.65*sample(32) + 0.35*sample(8)
	if v > 1 {
		v = 1
	}
	return byte(v * 255)
}

// GenerateTile synthesizes the tile with the given ID at the given size.
func GenerateTile(id, width, height int) Tile {
	pix := make([]byte, 3*width*height)
	i := 0
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			pix[i+0] = valueAt(id, x, y, 0)
			pix[i+1] = valueAt(id, x, y, 1)
			pix[i+2] = valueAt(id, x, y, 2)
			i += 3
		}
	}
	return Tile{ID: id, Width: width, Height: height, Pix: pix}
}

// Validate checks the tile's structural invariants.
func (t Tile) Validate() error {
	if t.Width <= 0 || t.Height <= 0 {
		return fmt.Errorf("landsat: tile %d has invalid dimensions %dx%d", t.ID, t.Width, t.Height)
	}
	if len(t.Pix) != 3*t.Width*t.Height {
		return fmt.Errorf("landsat: tile %d has %d pixel bytes, want %d", t.ID, len(t.Pix), 3*t.Width*t.Height)
	}
	return nil
}

// BoxBlur applies a box blur of the given radius (a separable mean
// filter, applied horizontally then vertically), the compute-bound filter
// of the image-processing application. It returns a new tile.
func BoxBlur(t Tile, radius int) (Tile, error) {
	if err := t.Validate(); err != nil {
		return Tile{}, err
	}
	if radius < 1 {
		return Tile{}, fmt.Errorf("landsat: blur radius %d < 1", radius)
	}
	w, h := t.Width, t.Height
	tmp := make([]float64, 3*w*h)
	out := make([]byte, 3*w*h)

	// Horizontal pass.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for c := 0; c < 3; c++ {
				var sum float64
				var n int
				for dx := -radius; dx <= radius; dx++ {
					xx := x + dx
					if xx < 0 || xx >= w {
						continue
					}
					sum += float64(t.Pix[3*(y*w+xx)+c])
					n++
				}
				tmp[3*(y*w+x)+c] = sum / float64(n)
			}
		}
	}
	// Vertical pass.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for c := 0; c < 3; c++ {
				var sum float64
				var n int
				for dy := -radius; dy <= radius; dy++ {
					yy := y + dy
					if yy < 0 || yy >= h {
						continue
					}
					sum += tmp[3*(yy*w+x)+c]
					n++
				}
				out[3*(y*w+x)+c] = byte(sum/float64(n) + 0.5)
			}
		}
	}
	return Tile{ID: t.ID, Width: w, Height: h, Pix: out}, nil
}

// Variance returns the per-pixel intensity variance of the tile, used by
// tests to verify that blurring smooths the image.
func Variance(t Tile) float64 {
	if len(t.Pix) == 0 {
		return 0
	}
	var mean float64
	for _, b := range t.Pix {
		mean += float64(b)
	}
	mean /= float64(len(t.Pix))
	var v float64
	for _, b := range t.Pix {
		d := float64(b) - mean
		v += d * d
	}
	return v / float64(len(t.Pix))
}

// EncodePNG writes the tile as a PNG image, for inspecting inputs and
// blurred outputs.
func EncodePNG(w io.Writer, t Tile) error {
	if err := t.Validate(); err != nil {
		return err
	}
	img := image.NewRGBA(image.Rect(0, 0, t.Width, t.Height))
	for y := 0; y < t.Height; y++ {
		for x := 0; x < t.Width; x++ {
			i := 3 * (y*t.Width + x)
			img.SetRGBA(x, y, color.RGBA{t.Pix[i], t.Pix[i+1], t.Pix[i+2], 0xFF})
		}
	}
	return png.Encode(w, img)
}

// DecodePNG reads a PNG back into a tile with the given ID.
func DecodePNG(r io.Reader, id int) (Tile, error) {
	img, err := png.Decode(r)
	if err != nil {
		return Tile{}, fmt.Errorf("landsat: decode png: %w", err)
	}
	b := img.Bounds()
	t := Tile{ID: id, Width: b.Dx(), Height: b.Dy(), Pix: make([]byte, 3*b.Dx()*b.Dy())}
	i := 0
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r16, g16, b16, _ := img.At(x, y).RGBA()
			t.Pix[i+0] = byte(r16 >> 8)
			t.Pix[i+1] = byte(g16 >> 8)
			t.Pix[i+2] = byte(b16 >> 8)
			i += 3
		}
	}
	return t, nil
}
