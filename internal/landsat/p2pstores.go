package landsat

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// This file models the two concrete peer-to-peer protocols of the paper's
// image-processing variants with the specific behaviours §5.1 reports:
//
//   - DAT (via the Beaker browser): "its security model requires an
//     explicit confirmation by the user to enable results to be
//     transmitted back" — shares are staged until confirmed.
//   - WebTorrent: "was not always reliable and sometimes took multiple
//     minutes to establish a connection ... the connection of a new node
//     in the underlying WebRTC-based distributed hash table was slow and
//     not always successful" — connection establishment is slow and may
//     fail outright.
//
// Both failure modes are what the stubborn module (§4.3) exists to absorb.

// DATStore stages shared tiles until the simulated user confirms the
// transfer, as the Beaker browser's security model demands.
type DATStore struct {
	mu        sync.Mutex
	staged    map[int]Tile
	confirmed map[int]Tile
}

// NewDATStore returns an empty DAT-like store.
func NewDATStore() *DATStore {
	return &DATStore{
		staged:    make(map[int]Tile),
		confirmed: make(map[int]Tile),
	}
}

// Share stages a tile; it is not downloadable until Confirm.
func (s *DATStore) Share(t Tile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.staged[t.ID] = t
}

// Confirm is the user's explicit click enabling the transfer. It reports
// whether a staged tile existed.
func (s *DATStore) Confirm(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.staged[id]
	if !ok {
		return false
	}
	delete(s.staged, id)
	s.confirmed[id] = t
	return true
}

// ConfirmAll confirms every staged tile and returns how many there were.
func (s *DATStore) ConfirmAll() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.staged)
	for id, t := range s.staged {
		s.confirmed[id] = t
		delete(s.staged, id)
	}
	return n
}

// Download retrieves a confirmed tile; staged-but-unconfirmed content is
// not reachable (the paper's reason for excluding DAT from automation).
func (s *DATStore) Download(id int) (Tile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.confirmed[id]; ok {
		return t, nil
	}
	if _, ok := s.staged[id]; ok {
		return Tile{}, fmt.Errorf("%w: tile %d staged but awaiting user confirmation", ErrDownloadFailed, id)
	}
	return Tile{}, fmt.Errorf("%w: tile %d not shared", ErrDownloadFailed, id)
}

// Staged returns how many tiles await confirmation.
func (s *DATStore) Staged() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.staged)
}

// ErrConnectFailed reports a WebTorrent-like connection that never
// established.
var ErrConnectFailed = errors.New("landsat: webtorrent connection failed")

// WebTorrentStore wraps a content store behind a connection that is slow
// to establish and not always successful.
type WebTorrentStore struct {
	mu        sync.Mutex
	data      map[int]Tile
	connected bool
	rng       *rand.Rand
	// connectDelay is how long each connection attempt takes.
	connectDelay time.Duration
	// pConnect is the probability an attempt succeeds.
	pConnect float64
}

// NewWebTorrentStore creates a store whose Connect attempts take
// connectDelay and succeed with probability pConnect.
func NewWebTorrentStore(connectDelay time.Duration, pConnect float64, seed int64) *WebTorrentStore {
	return &WebTorrentStore{
		data:         make(map[int]Tile),
		rng:          rand.New(rand.NewSource(seed)),
		connectDelay: connectDelay,
		pConnect:     pConnect,
	}
}

// Connect attempts to join the swarm. It blocks for the establishment
// delay and may fail; a successful connection persists.
func (s *WebTorrentStore) Connect() error {
	s.mu.Lock()
	if s.connected {
		s.mu.Unlock()
		return nil
	}
	delay := s.connectDelay
	ok := s.rng.Float64() < s.pConnect
	s.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if !ok {
		return ErrConnectFailed
	}
	s.mu.Lock()
	s.connected = true
	s.mu.Unlock()
	return nil
}

// Share seeds a tile; it requires an established connection and silently
// drops the data otherwise (the seeding peer never joined the swarm).
func (s *WebTorrentStore) Share(t Tile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.connected {
		return
	}
	s.data[t.ID] = t
}

// Download retrieves a seeded tile over an established connection.
func (s *WebTorrentStore) Download(id int) (Tile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.connected {
		return Tile{}, fmt.Errorf("%w: not connected", ErrConnectFailed)
	}
	t, ok := s.data[id]
	if !ok {
		return Tile{}, fmt.Errorf("%w: tile %d not seeded", ErrDownloadFailed, id)
	}
	return t, nil
}

// Connected reports whether the swarm connection is established.
func (s *WebTorrentStore) Connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.connected
}
