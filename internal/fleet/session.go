package fleet

import (
	"slices"
	"sync"

	"pando/internal/proto"
	"pando/internal/transport"
)

// Session states.
const (
	stateParked     = iota // admitted, awaiting a job (welcome not sent yet, or between jobs)
	stateLeased            // channel held by a job (through a lease when pool-aware)
	stateReclaiming        // reassign sent, draining until the worker's echo
	stateDismissing        // goodbye forwarded, awaiting the connection to end
	stateDead              // connection gone
)

// session is one admitted volunteer connection owned by the pool. A
// multi-core device contributes several sessions under one accounting
// name, exactly as it contributed several channels to the old master.
type session struct {
	pool      *Pool
	id        int
	name      string
	token     string   // volunteer instance nonce (rejoin severing)
	seq       uint64   // join incarnation (>0 on rejoins)
	functions []string // advertised functions; nil = pre-pool (any job, never reassigned)
	aware     bool     // advertised a Functions list: reassignable mid-session
	wire      proto.WireFormat
	ch        transport.Channel

	mu       sync.Mutex
	state    int
	welcomed bool
	cur      *lease // active lease (aware sessions only)
	curJob   Job    // job holding the channel (or reassign destination)
	pending  Job    // reassign destination awaiting the worker's echo

	// sendMu serializes job-side sends with lease revocation so no data
	// frame can slip onto the wire after the reassign barrier frame.
	sendMu sync.Mutex
}

func newSession(p *Pool, hello *proto.Message, wire proto.WireFormat, ch transport.Channel) *session {
	return &session{
		pool:      p,
		name:      hello.Peer,
		token:     hello.Token,
		seq:       hello.Seq,
		functions: append([]string(nil), hello.Functions...),
		aware:     len(hello.Functions) > 0,
		wire:      wire,
		ch:        ch,
	}
}

// serves reports whether the volunteer can resolve the named function. A
// pre-pool session (no advertised list) and the wildcard "*" serve
// anything.
func (s *session) serves(name string) bool {
	if len(s.functions) == 0 || slices.Contains(s.functions, "*") {
		return true
	}
	return slices.Contains(s.functions, name)
}

func (s *session) info() WorkerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := WorkerInfo{Name: s.name, Wire: s.wire.Name(), Aware: s.aware}
	if s.curJob != nil {
		info.Job = s.curJob.Name()
	}
	switch s.state {
	case stateParked:
		info.State = "parked"
	case stateLeased:
		info.State = "leased"
	case stateReclaiming:
		info.State = "reclaiming"
	case stateDismissing:
		info.State = "dismissing"
	default:
		info.State = "dead"
	}
	return info
}

func (s *session) isParked() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == stateParked
}

func (s *session) isLeased() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == stateLeased
}

func (s *session) leasedOrMoving() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == stateLeased || s.state == stateReclaiming
}

func (s *session) isDead() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == stateDead
}

func (s *session) markDead() {
	s.mu.Lock()
	s.state = stateDead
	s.curJob = nil
	s.pending = nil
	l := s.cur
	s.cur = nil
	s.mu.Unlock()
	if l != nil {
		l.fail(transport.ErrChannelClosed)
	}
}

func (s *session) currentJob() Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.curJob != nil {
		return s.curJob
	}
	return s.pending
}

// welcome reports whether the welcome was already sent, marking it sent.
func (s *session) welcome() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	was := s.welcomed
	s.welcomed = true
	return was
}

// startLease transitions the session to leased and returns the channel
// to hand the job: a lease for pool-aware sessions, the watched raw
// channel otherwise. Returns nil when the session died meanwhile.
func (s *session) startLease(job Job) transport.Channel {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == stateDead {
		return nil
	}
	s.state = stateLeased
	s.curJob = job
	s.pending = nil
	if !s.aware {
		return &watchedChannel{Channel: s.ch, s: s}
	}
	l := newLease(s, job)
	s.cur = l
	return l
}

// endLeaseRefused rolls back startLease after the job refused the Lease
// call (it was closing concurrently).
func (s *session) endLeaseRefused() {
	s.mu.Lock()
	l := s.cur
	s.cur = nil
	s.curJob = nil
	s.state = stateParked
	s.mu.Unlock()
	if l != nil {
		l.end(nil)
	}
}

// released intercepts the job's goodbye on an active lease — the job
// completed for this worker. It reports whether the interception won the
// race against revocation and failure.
func (s *session) released(l *lease) (Job, bool) {
	s.mu.Lock()
	if s.state != stateLeased || s.cur != l {
		s.mu.Unlock()
		return nil, false
	}
	job := s.curJob
	s.cur = nil
	s.curJob = nil
	s.state = stateParked
	s.mu.Unlock()
	// The job's result source is parked on the lease; a synthesized
	// goodbye ends its sub-stream gracefully, exactly as the worker's
	// goodbye reply would have.
	l.end(&proto.Message{Type: proto.TypeGoodbye})
	return job, true
}

// aborted handles the job closing the lease (abort, decode failure,
// worker-reported error). Reports whether this call took the lease down.
func (s *session) abortedLease(l *lease) (Job, bool) {
	s.mu.Lock()
	if s.cur != l || s.state == stateDead {
		s.mu.Unlock()
		return nil, false
	}
	job := s.curJob
	s.cur = nil
	s.curJob = nil
	s.state = stateParked
	s.mu.Unlock()
	l.end(nil)
	return job, true
}

// revoke reclaims the channel from its current job mid-lease (fair-share
// move or job unregistration). The job's side ends gracefully: its sink
// loses the channel, its source receives a synthesized goodbye, and the
// engine re-lends whatever the worker still held. Reports whether the
// session is ready to be routed (false when another transition won).
func (s *session) revoke(from Job) bool {
	s.mu.Lock()
	if s.state == stateDead || s.state == stateDismissing {
		s.mu.Unlock()
		return false
	}
	if s.curJob != from && s.pending != from {
		s.mu.Unlock()
		return false
	}
	l := s.cur
	s.cur = nil
	s.curJob = nil
	s.pending = nil
	s.state = stateParked
	s.mu.Unlock()
	if l != nil {
		// Block concurrent job sends around the lease teardown so nothing
		// can be written after the barrier frame that reassign sends.
		s.sendMu.Lock()
		l.end(&proto.Message{Type: proto.TypeGoodbye})
		s.sendMu.Unlock()
	}
	return true
}

// reassign moves a reclaimed pool-aware session to the destination job:
// it sends the reassign frame and waits (via the pump) for the worker's
// echo before leasing. The echo is the drain barrier — every result of
// the previous job precedes it on the ordered channel.
func (s *session) reassign(job Job) {
	s.mu.Lock()
	if s.state != stateParked || !s.aware {
		s.mu.Unlock()
		return
	}
	s.state = stateReclaiming
	s.pending = job
	s.mu.Unlock()
	if err := s.ch.Send(&proto.Message{
		Type:  proto.TypeReassign,
		Func:  job.Name(),
		Batch: job.Batch(),
	}); err != nil {
		s.pool.sessionGone(s)
	}
}

// takePending consumes the reassign destination once the worker's echo
// arrived, transitioning back to parked for leaseTo.
func (s *session) takePending() Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateReclaiming || s.pending == nil {
		return nil
	}
	job := s.pending
	s.pending = nil
	s.state = stateParked
	return job
}

// dismiss lets the volunteer go: the goodbye crosses for real and the
// worker's serve loop exits, as under the old single-job master.
func (s *session) dismiss() {
	s.mu.Lock()
	if s.state == stateDead || s.state == stateDismissing {
		s.mu.Unlock()
		return
	}
	s.state = stateDismissing
	s.curJob = nil
	s.pending = nil
	welcomed, aware := s.welcomed, s.aware
	s.mu.Unlock()
	if !welcomed {
		// Never routed: refuse politely and drop the connection; the
		// volunteer's handshake fails cleanly.
		_ = s.ch.Send(&proto.Message{Type: proto.TypeError, Err: ErrClosed.Error()})
		s.ch.Close()
		s.pool.sessionGone(s)
		return
	}
	_ = s.ch.Send(&proto.Message{Type: proto.TypeGoodbye})
	if !aware {
		// No pump watches a pre-pool session between jobs; reap it here.
		go s.reap()
	}
}

// reap drains the channel of a dismissing pre-pool session until it
// fails (the worker replies goodbye and closes), pruning the worker set.
func (s *session) reap() {
	for {
		m, err := s.ch.Recv()
		if err != nil {
			s.pool.sessionGone(s)
			return
		}
		proto.Release(m)
	}
}

// pump owns Recv on a pool-aware session's channel for the connection's
// lifetime, routing frames to the current lease, watching for reassign
// echoes while reclaiming, and discarding stale frames in between.
func (s *session) pump() {
	for {
		m, err := s.ch.Recv()
		if err != nil {
			s.pool.sessionGone(s)
			return
		}
		s.mu.Lock()
		state, l := s.state, s.cur
		s.mu.Unlock()
		switch state {
		case stateLeased:
			if l != nil {
				l.deliver(m)
			} else {
				proto.Release(m)
			}
		case stateReclaiming:
			if m.Type == proto.TypeReassign {
				s.pool.reassigned(s)
			}
			// Anything else is a result of the previous job racing the
			// barrier; the engine already re-lends those values.
			proto.Release(m)
		default:
			// Parked or dismissing: stray frames (late results, goodbye
			// replies) are dropped — back into the arena.
			proto.Release(m)
		}
	}
}

// lease is the channel a job holds on a pool-aware worker: a routed view
// of the session's connection that the pool can end without closing the
// connection itself.
type lease struct {
	s   *session
	job Job

	inbox chan *proto.Message
	done  chan struct{}

	mu        sync.Mutex
	once      sync.Once
	endMsg    *proto.Message // synthesized final message (goodbye), if any
	endErr    error          // terminal error after endMsg is consumed
	delivered bool
}

var _ transport.Channel = (*lease)(nil)

func newLease(s *session, job Job) *lease {
	return &lease{
		s:     s,
		job:   job,
		inbox: make(chan *proto.Message, 64),
		done:  make(chan struct{}),
	}
}

// deliver routes one inbound frame to the job; ended leases drop it
// (back into the arena — nobody will Recv it).
func (l *lease) deliver(m *proto.Message) {
	select {
	case l.inbox <- m:
	case <-l.done:
		proto.Release(m)
	}
}

// end terminates the lease: a pending or future Recv first drains queued
// frames, then returns final (when non-nil), then ErrChannelClosed.
func (l *lease) end(final *proto.Message) {
	l.mu.Lock()
	l.endMsg = final
	if l.endErr == nil {
		l.endErr = transport.ErrChannelClosed
	}
	l.mu.Unlock()
	l.once.Do(func() { close(l.done) })
}

// fail terminates the lease with the connection's error.
func (l *lease) fail(err error) {
	l.mu.Lock()
	l.endErr = err
	l.mu.Unlock()
	l.once.Do(func() { close(l.done) })
}

func (l *lease) ended() bool {
	select {
	case <-l.done:
		return true
	default:
		return false
	}
}

// Recv returns the next frame routed to this lease. After the lease
// ends, queued frames drain first, then the synthesized end (a goodbye
// for graceful handovers), then the terminal error.
func (l *lease) Recv() (*proto.Message, error) {
	for {
		select {
		case m := <-l.inbox:
			return m, nil
		case <-l.done:
			select {
			case m := <-l.inbox:
				return m, nil
			default:
			}
			l.mu.Lock()
			defer l.mu.Unlock()
			if l.endMsg != nil && !l.delivered {
				l.delivered = true
				return l.endMsg, nil
			}
			return nil, l.endErr
		}
	}
}

// Send forwards a job frame to the worker. A goodbye is intercepted: it
// means the job's stream completed for this worker, which releases the
// lease back to the pool instead of dismissing the device.
func (l *lease) Send(m *proto.Message) error {
	if m.Type == proto.TypeGoodbye {
		if job, ok := l.s.released(l); ok {
			l.s.pool.jobReleased(l.s, job)
		}
		return nil
	}
	l.s.sendMu.Lock()
	defer l.s.sendMu.Unlock()
	if l.ended() {
		return transport.ErrChannelClosed
	}
	return l.s.ch.Send(m)
}

// SendBatch forwards a coalesced batch of job frames to the worker in one
// vectored write. A trailing goodbye (the only place the coalescing
// duplex puts one) is split off and intercepted exactly like Send's, so
// lease release semantics survive batching.
func (l *lease) SendBatch(ms []*proto.Message) error {
	n := len(ms)
	goodbye := n > 0 && ms[n-1].Type == proto.TypeGoodbye
	if goodbye {
		ms = ms[:n-1]
	}
	if len(ms) > 0 {
		l.s.sendMu.Lock()
		if l.ended() {
			l.s.sendMu.Unlock()
			return transport.ErrChannelClosed
		}
		err := transport.SendAll(l.s.ch, ms)
		l.s.sendMu.Unlock()
		if err != nil {
			return err
		}
	}
	if goodbye {
		return l.Send(&proto.Message{Type: proto.TypeGoodbye})
	}
	return nil
}

var _ transport.BatchSender = (*lease)(nil)

// Close ends the job's use of the worker without closing the connection:
// the pool reclaims the device and routes it to another open job, or
// closes the connection for real when none exists (the old behavior for
// worker-reported errors on a single-job master).
func (l *lease) Close() error {
	if job, ok := l.s.abortedLease(l); ok {
		l.s.pool.jobAborted(l.s, job)
	}
	return nil
}

func (l *lease) Wire() proto.WireFormat      { return l.s.ch.Wire() }
func (l *lease) SetWire(wf proto.WireFormat) { l.s.ch.SetWire(wf) }
func (l *lease) RemoteAddr() string          { return l.s.ch.RemoteAddr() }

// watchedChannel wraps a pre-pool session's raw channel so the pool's
// worker set is pruned when the connection ends. The job owns Recv; the
// wrapper only observes.
type watchedChannel struct {
	transport.Channel
	s *session
}

func (w *watchedChannel) Recv() (*proto.Message, error) {
	m, err := w.Channel.Recv()
	if err != nil {
		w.s.pool.sessionGone(w.s)
		return m, err
	}
	if m.Type == proto.TypeGoodbye {
		// The worker acknowledged a dismissal; after this frame the job
		// stops reading, so hand the tail of the connection to a reaper.
		w.s.mu.Lock()
		w.s.state = stateDismissing
		w.s.curJob = nil
		w.s.mu.Unlock()
		go w.s.reap()
	}
	return m, nil
}

// SendBatch forwards a batch to the wrapped channel's vectored path (or
// degrades to per-frame sends when the inner channel has none).
func (w *watchedChannel) SendBatch(ms []*proto.Message) error {
	return transport.SendAll(w.Channel, ms)
}

func (w *watchedChannel) Close() error {
	err := w.Channel.Close()
	w.s.pool.sessionGone(w.s)
	return err
}
