package fleet

import (
	"sync"
	"testing"
	"time"

	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/transport"
)

// fakeJob records leases and lets tests control demand.
type fakeJob struct {
	name  string
	batch int

	mu      sync.Mutex
	demand  int
	leases  []transport.Channel
	workers []string
	leaseC  chan transport.Channel
}

func newFakeJob(name string, demand int) *fakeJob {
	return &fakeJob{name: name, batch: 2, demand: demand, leaseC: make(chan transport.Channel, 8)}
}

func (j *fakeJob) Name() string { return j.name }
func (j *fakeJob) Batch() int   { return j.batch }
func (j *fakeJob) Demand() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.demand
}
func (j *fakeJob) setDemand(d int) {
	j.mu.Lock()
	j.demand = d
	j.mu.Unlock()
}
func (j *fakeJob) Lease(worker string, ch transport.Channel) error {
	j.mu.Lock()
	j.leases = append(j.leases, ch)
	j.workers = append(j.workers, worker)
	j.mu.Unlock()
	j.leaseC <- ch
	return nil
}
func (j *fakeJob) RecordWire(worker, wire string) {}

func (j *fakeJob) waitLease(t *testing.T) transport.Channel {
	t.Helper()
	select {
	case ch := <-j.leaseC:
		return ch
	case <-time.After(5 * time.Second):
		t.Fatalf("job %s never received a lease", j.name)
		return nil
	}
}

// rawVolunteer opens a channel to the pool and performs the hello half.
func rawVolunteer(t *testing.T, p *Pool, hello *proto.Message) transport.Channel {
	t.Helper()
	pipe := netsim.NewPipe(netsim.Loopback)
	cfg := transport.Config{HeartbeatInterval: -1}
	go func() { _ = p.Admit(transport.NewWSock(pipe.B, cfg)) }()
	ch := transport.NewWSock(pipe.A, cfg)
	hello.Type = proto.TypeHello
	hello.Version = proto.Version
	if len(hello.Formats) == 0 {
		hello.Formats = proto.SupportedFormats()
	}
	if err := ch.Send(hello); err != nil {
		t.Fatal(err)
	}
	return ch
}

func recvType(t *testing.T, ch transport.Channel, want proto.Type) *proto.Message {
	t.Helper()
	m, err := ch.Recv()
	if err != nil {
		t.Fatalf("recv awaiting %q: %v", want, err)
	}
	if m.Type != want {
		t.Fatalf("recv = %+v, want type %q", m, want)
	}
	return m
}

// TestPoolRoutesByFunctions: the welcome names a job the volunteer's
// advertised list can serve, and incompatible volunteers are refused.
func TestPoolRoutesByFunctions(t *testing.T) {
	p := NewPool(Config{Rebalance: -1})
	defer p.Close()
	jobA := newFakeJob("job-a", 1)
	jobB := newFakeJob("job-b", 1)
	if err := p.Register(jobA); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(jobB); err != nil {
		t.Fatal(err)
	}

	ch := rawVolunteer(t, p, &proto.Message{Peer: "only-b", Functions: []string{"job-b"}})
	w := recvType(t, ch, proto.TypeWelcome)
	if w.Func != "job-b" {
		t.Fatalf("welcome routed to %q, want job-b", w.Func)
	}
	jobB.waitLease(t)

	// A volunteer that serves nothing registered is refused.
	ch2 := rawVolunteer(t, p, &proto.Message{Peer: "misfit", Functions: []string{"job-zzz"}})
	if m, err := ch2.Recv(); err == nil && m.Type != proto.TypeError {
		t.Fatalf("misfit got %+v, want error refusal", m)
	}
}

// TestPoolReassignBarrier walks the whole handover protocol on the wire:
// job A's goodbye is intercepted, the worker sees a reassign naming job
// B, its echo completes the barrier, and the same connection starts
// serving job B — while job A's lease ends with a synthesized goodbye.
func TestPoolReassignBarrier(t *testing.T) {
	p := NewPool(Config{Rebalance: -1})
	defer p.Close()
	jobA := newFakeJob("job-a", 1)
	jobB := newFakeJob("job-b", 0) // closed for routing until A completes
	if err := p.Register(jobA); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(jobB); err != nil {
		t.Fatal(err)
	}

	ch := rawVolunteer(t, p, &proto.Message{Peer: "dev", Functions: []string{"job-a", "job-b"}})
	w := recvType(t, ch, proto.TypeWelcome)
	if w.Func != "job-a" {
		t.Fatalf("first welcome = %q, want job-a (the only open job)", w.Func)
	}
	leaseA := jobA.waitLease(t)

	// The job computes: one input crosses, one result returns.
	if err := leaseA.Send(&proto.Message{Type: proto.TypeInput, Seq: 1, Data: []byte(`1`)}); err != nil {
		t.Fatal(err)
	}
	in := recvType(t, ch, proto.TypeInput)
	if err := ch.Send(&proto.Message{Type: proto.TypeResult, Seq: in.Seq, Data: []byte(`2`)}); err != nil {
		t.Fatal(err)
	}
	res := recvTypeCh(t, leaseA, proto.TypeResult)
	if string(res.Data) != `2` {
		t.Fatalf("result = %s", res.Data)
	}

	// Job A completes for this worker; job B is open now.
	jobA.setDemand(0)
	jobB.setDemand(1)
	if err := leaseA.Send(&proto.Message{Type: proto.TypeGoodbye}); err != nil {
		t.Fatal(err)
	}
	// Worker side: reassign names job B...
	re := recvType(t, ch, proto.TypeReassign)
	if re.Func != "job-b" {
		t.Fatalf("reassign = %+v, want job-b", re)
	}
	// ...while job A's lease ends with a synthesized goodbye.
	recvTypeCh(t, leaseA, proto.TypeGoodbye)
	if _, err := leaseA.Recv(); err == nil {
		t.Fatal("lease A still readable after its goodbye")
	}
	// Sends on the dead lease must not reach the worker.
	if err := leaseA.Send(&proto.Message{Type: proto.TypeInput, Seq: 9}); err == nil {
		t.Fatal("send on a released lease succeeded")
	}

	// The echo completes the barrier; job B gets the same connection.
	if err := ch.Send(&proto.Message{Type: proto.TypeReassign, Func: re.Func}); err != nil {
		t.Fatal(err)
	}
	leaseB := jobB.waitLease(t)
	if err := leaseB.Send(&proto.Message{Type: proto.TypeInput, Seq: 1, Data: []byte(`10`)}); err != nil {
		t.Fatal(err)
	}
	in2 := recvType(t, ch, proto.TypeInput)
	if string(in2.Data) != `10` {
		t.Fatalf("job B input = %s", in2.Data)
	}
	if err := ch.Send(&proto.Message{Type: proto.TypeResult, Seq: in2.Seq, Data: []byte(`20`)}); err != nil {
		t.Fatal(err)
	}
	res2 := recvTypeCh(t, leaseB, proto.TypeResult)
	if string(res2.Data) != `20` {
		t.Fatalf("job B result = %s", res2.Data)
	}

	// Worker-set accounting shows the device leased to job B.
	var leased *WorkerInfo
	for _, wi := range p.Workers() {
		wi := wi
		if wi.Name == "dev" {
			leased = &wi
		}
	}
	if leased == nil || leased.Job != "job-b" || leased.State != "leased" || !leased.Aware {
		t.Fatalf("worker set = %+v, want dev leased to job-b", p.Workers())
	}
}

// recvTypeCh is recvType for a lease (pool-side channel).
func recvTypeCh(t *testing.T, ch transport.Channel, want proto.Type) *proto.Message {
	t.Helper()
	m, err := ch.Recv()
	if err != nil {
		t.Fatalf("lease recv awaiting %q: %v", want, err)
	}
	if m.Type != want {
		t.Fatalf("lease recv = %+v, want type %q", m, want)
	}
	return m
}

// TestPoolDismissesWhenNoNextJob: with no other open job, the pool
// forwards the goodbye for real and the volunteer leaves — the old
// single-master end-of-stream behavior.
func TestPoolDismissesWhenNoNextJob(t *testing.T) {
	p := NewPool(Config{Rebalance: -1})
	defer p.Close()
	jobA := newFakeJob("job-a", 1)
	if err := p.Register(jobA); err != nil {
		t.Fatal(err)
	}
	ch := rawVolunteer(t, p, &proto.Message{Peer: "dev", Functions: []string{"job-a"}})
	recvType(t, ch, proto.TypeWelcome)
	leaseA := jobA.waitLease(t)

	jobA.setDemand(0)
	if err := leaseA.Send(&proto.Message{Type: proto.TypeGoodbye}); err != nil {
		t.Fatal(err)
	}
	recvType(t, ch, proto.TypeGoodbye)
	// The worker replies goodbye and hangs up, like a real serve loop.
	_ = ch.Send(&proto.Message{Type: proto.TypeGoodbye})
	ch.Close()

	deadline := time.Now().Add(2 * time.Second)
	for len(p.Workers()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker set not pruned after dismissal: %+v", p.Workers())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPoolSeversPreviousIncarnation: a rejoin hello (Seq > 0, same
// instance token) closes the departed incarnation's session immediately.
func TestPoolSeversPreviousIncarnation(t *testing.T) {
	p := NewPool(Config{Rebalance: -1})
	defer p.Close()
	job := newFakeJob("job-a", 1)
	if err := p.Register(job); err != nil {
		t.Fatal(err)
	}

	ch1 := rawVolunteer(t, p, &proto.Message{Peer: "w", Token: "inst-1", Seq: 0, Functions: []string{"job-a"}})
	recvType(t, ch1, proto.TypeWelcome)
	job.waitLease(t)

	ch2 := rawVolunteer(t, p, &proto.Message{Peer: "w", Token: "inst-1", Seq: 1, Functions: []string{"job-a"}})
	recvType(t, ch2, proto.TypeWelcome)
	job.waitLease(t)

	// The first incarnation's channel fails promptly (severed), without
	// any heartbeat machinery running.
	done := make(chan struct{})
	go func() {
		for {
			if _, err := ch1.Recv(); err != nil {
				close(done)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("previous incarnation was not severed on rejoin")
	}

	// An unrelated device with its own token is untouched: its channel
	// must still be alive after the rejoin severing settled.
	ch3 := rawVolunteer(t, p, &proto.Message{Peer: "w2", Token: "inst-2", Seq: 0, Functions: []string{"job-a"}})
	recvType(t, ch3, proto.TypeWelcome)
	job.waitLease(t)
	severed := make(chan error, 1)
	go func() {
		_, err := ch3.Recv()
		severed <- err
	}()
	select {
	case err := <-severed:
		t.Fatalf("unrelated session severed: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestPoolParkedVolunteerLeasedOnRegister: volunteers admitted before
// any job parks pre-welcome and lease as soon as a job registers.
func TestPoolParkedVolunteerLeasedOnRegister(t *testing.T) {
	p := NewPool(Config{Rebalance: -1})
	defer p.Close()

	ch := rawVolunteer(t, p, &proto.Message{Peer: "early", Functions: []string{"*"}})
	time.Sleep(20 * time.Millisecond)
	ws := p.Workers()
	if len(ws) != 1 || ws[0].State != "parked" {
		t.Fatalf("worker set = %+v, want one parked", ws)
	}

	job := newFakeJob("late-job", 1)
	if err := p.Register(job); err != nil {
		t.Fatal(err)
	}
	w := recvType(t, ch, proto.TypeWelcome)
	if w.Func != "late-job" {
		t.Fatalf("welcome = %+v", w)
	}
	job.waitLease(t)
}

// TestPoolQuarantine: quarantining a name severs its live sessions
// (crash-stop, so the job re-lends whatever the cheater held) and bans
// the name from re-admission — rejoining under the same accounting name
// is refused at the hello.
func TestPoolQuarantine(t *testing.T) {
	p := NewPool(Config{Rebalance: -1})
	defer p.Close()
	job := newFakeJob("job-a", 1)
	if err := p.Register(job); err != nil {
		t.Fatal(err)
	}

	ch := rawVolunteer(t, p, &proto.Message{Peer: "cheat", Functions: []string{"job-a"}})
	recvType(t, ch, proto.TypeWelcome)
	job.waitLease(t)

	p.Quarantine("cheat")
	if !p.Quarantined("cheat") {
		t.Fatal("name not recorded as quarantined")
	}
	// The live session's channel was closed: the volunteer side observes
	// the failure (possibly after draining in-flight control frames).
	deadline := time.After(5 * time.Second)
	for {
		if _, err := ch.Recv(); err != nil {
			break
		}
		select {
		case <-deadline:
			t.Fatal("quarantined session's channel never failed")
		default:
		}
	}

	// Rejoining under the banned name is refused with an error frame.
	ch2 := rawVolunteer(t, p, &proto.Message{Peer: "cheat", Functions: []string{"job-a"}})
	m, err := ch2.Recv()
	if err == nil && m.Type != proto.TypeError {
		t.Fatalf("banned rejoin got %+v, want error refusal", m)
	}

	// An honest name is unaffected.
	ch3 := rawVolunteer(t, p, &proto.Message{Peer: "honest", Functions: []string{"job-a"}})
	recvType(t, ch3, proto.TypeWelcome)
}
