// Package fleet implements the shared volunteer pool of a multi-job
// deployment: the untyped layer of the master that owns listeners, the
// admission handshake, wire-format negotiation, heartbeat configuration
// and the live worker set — everything that does not depend on a job's
// value types.
//
// Personal volunteer computing (the paper's DP1) assumes the same
// devices are reused across a person's many applications; a Pool makes
// that literal: it outlives any single stream. Typed jobs (the
// DistributedMap engines wrapped by master.Master) register under their
// function name and lease workers from the pool; the pool routes each
// admitted volunteer to a job it can serve (the hello advertises the
// volunteer's registered-function list), rebalances leases across jobs
// with demand-weighted fair share, and reassigns a worker to the next
// job when its job completes — over the same connection, via the
// reassign frame, instead of dismissing the device.
//
// Volunteers come in two generations. A pool-aware volunteer advertises
// Functions in its hello (the single entry "*" means "any function");
// its channel is owned by a pool-side pump that routes frames to the
// current lease, which lets the pool intercept a job's goodbye, drain
// the connection behind a reassign barrier, and hand the same device to
// the next job. A pre-pool volunteer advertises nothing: it is routed
// once, to a compatible job, over its raw channel — exactly the old
// master behavior — and leaves when that job dismisses it.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pando/internal/proto"
	"pando/internal/transport"
)

// Errors surfaced by the pool.
var (
	// ErrClosed reports admissions or registrations on a closed pool (and,
	// through the master's re-export, operations on a closed master).
	ErrClosed = errors.New("fleet: pool closed")
	// ErrNoJob reports a volunteer refused because no registered job
	// matches the functions it can serve.
	ErrNoJob = errors.New("fleet: no registered job serves the volunteer's functions")
	// ErrNoCommonFormat mirrors the proto-level negotiation refusal.
	ErrNoCommonFormat = proto.ErrNoCommonFormat
	// ErrQuarantined reports a volunteer refused because its accounting
	// name was quarantined (verification caught it returning wrong
	// results); rejoining under the same name is pointless.
	ErrQuarantined = errors.New("fleet: worker quarantined")
)

// Job is a typed computation leasing workers from the pool — one
// master.Master (one DistributedMap engine) per Job. All methods must be
// safe for concurrent use.
type Job interface {
	// Name is the processing function volunteers resolve for this job.
	Name() string
	// Batch is the job's static values-in-flight bound, named in the
	// welcome (informational for the worker; the real gate is the
	// master-side credit controller).
	Batch() int
	// Demand reports the job's appetite for workers: 0 when the job is
	// complete or closed (it must not receive workers), otherwise a
	// positive weight — 1 for an idle open job, growing with the job's
	// in-flight and failed-queue backlog — that demand-weighted fair
	// share leases proportionally to.
	Demand() int
	// Lease attaches a worker channel to the job's engine under the given
	// accounting name. The channel may be a pool lease: the job speaks to
	// it exactly as to a dedicated volunteer channel.
	Lease(worker string, ch transport.Channel) error
	// RecordWire notes the negotiated wire format of a leased worker in
	// the job's accounting.
	RecordWire(worker, wire string)
}

// Config parameterizes a Pool.
type Config struct {
	// Channel tunes heartbeat detection on volunteer channels.
	Channel transport.Config
	// Formats restricts the wire formats the pool negotiates, best first;
	// empty allows everything this build supports.
	Formats []string
	// Rebalance is the period of the fair-share rebalancing scan; zero
	// selects DefaultRebalance, negative disables the scan (workers still
	// move on job completion).
	Rebalance time.Duration
}

// DefaultRebalance is the default fair-share scan period.
const DefaultRebalance = 250 * time.Millisecond

// WorkerInfo is one live worker-set row, surfaced through /stats.
type WorkerInfo struct {
	// Name is the accounting name (several sessions of a multi-core
	// device share it).
	Name string
	// Job is the function name of the job currently holding the lease;
	// empty while parked or between jobs.
	Job string
	// Wire is the negotiated wire format.
	Wire string
	// Aware reports a pool-aware volunteer (reassignable mid-session).
	Aware bool
	// State is "parked", "leased", "reclaiming" or "dismissing".
	State string
}

// Pool is one shared volunteer fleet serving many concurrent jobs.
type Pool struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond // signalled when jobs register or the pool closes
	jobs     []Job      // registration order
	sessions map[int]*session
	banned   map[string]struct{} // quarantined accounting names
	nextID   int
	nextName int
	rrNext   int // rotation cursor for starved-fleet round-robin
	closed   bool

	done     chan struct{}
	scanOnce sync.Once
}

// NewPool creates an idle pool.
func NewPool(cfg Config) *Pool {
	p := &Pool{
		cfg:      cfg,
		sessions: make(map[int]*session),
		done:     make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Register adds a job to the pool; parked volunteers are routed to it and
// the fair-share scan starts weighing it. The rebalancer starts lazily
// with the second job — a single-job pool (every pando.New master) has
// nothing to move, so it never pays for the ticker.
func (p *Pool) Register(j Job) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.jobs = append(p.jobs, j)
	start := p.cfg.Rebalance >= 0 && len(p.jobs) >= 2
	p.mu.Unlock()
	p.cond.Broadcast()
	if start {
		p.scanOnce.Do(func() { go p.rebalanceLoop() })
	}
	return nil
}

// Unregister removes a job; its leased workers are reclaimed and routed
// to the remaining jobs (or dismissed when none can serve them). Safe to
// call for a job that was never registered.
func (p *Pool) Unregister(j Job) {
	p.mu.Lock()
	kept := p.jobs[:0]
	for _, job := range p.jobs {
		if job != j {
			kept = append(kept, job)
		}
	}
	p.jobs = kept
	var held []*session
	for _, s := range p.sessions {
		if s.currentJob() == j {
			held = append(held, s)
		}
	}
	p.mu.Unlock()
	for _, s := range held {
		p.moveWorker(s, j)
	}
}

// Jobs snapshots the registered jobs in registration order.
func (p *Pool) Jobs() []Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Job(nil), p.jobs...)
}

// Workers snapshots the live worker set.
func (p *Pool) Workers() []WorkerInfo {
	p.mu.Lock()
	sessions := make([]*session, 0, len(p.sessions))
	for _, s := range p.sessions {
		sessions = append(sessions, s)
	}
	p.mu.Unlock()
	out := make([]WorkerInfo, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, s.info())
	}
	return out
}

// Close refuses further admissions and registrations, dismisses parked
// volunteers, and stops the rebalancer. Leased channels are left to their
// jobs' own lifecycles, mirroring the old master shutdown.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	var parked []*session
	for _, s := range p.sessions {
		if s.isParked() {
			parked = append(parked, s)
		}
	}
	p.mu.Unlock()
	close(p.done)
	p.cond.Broadcast()
	for _, s := range parked {
		s.dismiss()
	}
}

func (p *Pool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// ServeWS accepts WebSocket-like volunteers from acc until the acceptor
// closes, admitting each one (paper §5.2–5.3).
func (p *Pool) ServeWS(acc transport.Acceptor) error {
	for {
		conn, err := acc.Accept()
		if err != nil {
			if p.isClosed() {
				return nil
			}
			return err
		}
		go func() {
			_ = p.Admit(transport.NewWSock(conn, p.cfg.Channel))
		}()
	}
}

// ServeRTC admits WebRTC-like volunteers whose direct channels are
// delivered by the answerer (paper §5.4).
func (p *Pool) ServeRTC(answerer *transport.RTCAnswerer) {
	for ch := range answerer.Incoming() {
		go func(ch transport.Channel) {
			_ = p.Admit(ch)
		}(ch)
	}
}

// Admit performs the hello half of the handshake on a fresh volunteer
// channel, routes the volunteer to a job it can serve (a pool-aware
// volunteer arriving before any job is registered parks — the welcome is
// simply delayed until one appears), and completes the handshake with a
// welcome naming the routed job.
//
// A rejoining volunteer (hello.Seq > 0) has the half-open sessions of its
// previous incarnation — identified by the hello's instance token —
// severed immediately, so a reattaching device never coexists with its
// own departed sessions: their controllers detach and their values
// re-lend now, instead of after a heartbeat timeout, and the fresh
// attachment's flow-control state starts clean.
func (p *Pool) Admit(ch transport.Channel) error {
	if p.isClosed() {
		_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: ErrClosed.Error()})
		ch.Close()
		return ErrClosed
	}
	hello, wire, err := transport.RecvHello(ch, p.cfg.Formats)
	if err != nil {
		return fmt.Errorf("fleet: admission: %w", err)
	}
	// Close may have raced the handshake; re-check before routing so a
	// volunteer is never wired into a shut-down pool.
	if p.isClosed() {
		_ = ch.Send(&proto.Message{Type: proto.TypeGoodbye})
		ch.Close()
		return ErrClosed
	}
	if hello.Seq > 0 && hello.Token != "" {
		p.severIncarnation(hello.Token, hello.Seq)
	}
	s := newSession(p, hello, wire, ch)
	p.mu.Lock()
	if _, bad := p.banned[s.name]; bad {
		p.mu.Unlock()
		_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: ErrQuarantined.Error()})
		ch.Close()
		return ErrQuarantined
	}
	p.nextID++
	s.id = p.nextID
	if s.name == "" {
		p.nextName++
		s.name = fmt.Sprintf("volunteer-%d", p.nextName)
	}
	p.sessions[s.id] = s
	p.mu.Unlock()
	if s.aware {
		go s.pump()
	}
	return p.place(s, nil)
}

// severIncarnation closes every session sharing the rejoining
// volunteer's instance token with an older incarnation number. The
// closed channels fail their jobs' duplexes immediately, so the engines
// re-lend the departed incarnation's values and detach its controllers
// without waiting for heartbeats.
func (p *Pool) severIncarnation(token string, seq uint64) {
	p.mu.Lock()
	var stale []*session
	for _, s := range p.sessions {
		if s.token == token && s.seq < seq {
			stale = append(stale, s)
		}
	}
	p.mu.Unlock()
	for _, s := range stale {
		s.ch.Close()
	}
}

// place routes a session to a job, parking while none is registered.
// exclude names a job that just failed to lease (it is skipped once).
func (p *Pool) place(s *session, exclude Job) error {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			s.dismiss()
			return ErrClosed
		}
		if s.isDead() {
			p.mu.Unlock()
			return transport.ErrChannelClosed
		}
		job := p.routeLocked(s, exclude)
		if job == nil {
			if s.aware && (len(p.jobs) == 0 || (len(p.jobs) == 1 && p.jobs[0] == exclude)) {
				// No job yet: park until one registers. The volunteer is
				// blocked awaiting its welcome; heartbeats keep flowing
				// underneath, and the session's pump notices a death and
				// wakes this wait. Pre-pool volunteers have no pump (the
				// job owns their raw channel), so a dead parked legacy
				// session would linger undetected — they are refused
				// instead; no pre-pool flow ever admitted volunteers
				// before its job existed, so nothing regresses.
				p.cond.Wait()
				p.mu.Unlock()
				exclude = nil
				continue
			}
			p.mu.Unlock()
			err := fmt.Errorf("%w (volunteer serves %v)", ErrNoJob, s.functions)
			_ = s.ch.Send(&proto.Message{Type: proto.TypeError, Err: err.Error()})
			s.ch.Close()
			return err
		}
		p.mu.Unlock()
		if err := p.leaseTo(s, job); err != nil {
			if errors.Is(err, errJobRefused) {
				exclude = job
				continue
			}
			return err
		}
		return nil
	}
}

// errJobRefused marks a Lease call refused by a closing job; the session
// is re-routed.
var errJobRefused = errors.New("fleet: job refused lease")

// targetsLocked computes each open job's fair-share worker target over a
// fleet of `workers` leases: one worker as a floor for every open job
// (when the fleet is large enough — an open job must never starve), the
// remainder split proportionally to demand. Without the floor a busy
// job's in-flight-weighted demand would forever outweigh a fresh job's,
// and the fresh job could starve with a sub-1 deficit — the rich-get-
// richer failure mode of purely proportional shares. Caller holds p.mu.
func (p *Pool) targetsLocked(workers int) map[Job]float64 {
	demands := make(map[Job]int, len(p.jobs))
	open := 0
	sum := 0
	for _, j := range p.jobs {
		d := j.Demand()
		demands[j] = d
		if d > 0 {
			open++
			sum += d
		}
	}
	targets := make(map[Job]float64, len(p.jobs))
	if open == 0 {
		return targets
	}
	floor := 0.0
	spare := float64(workers)
	if workers >= open {
		floor = 1
		spare = float64(workers - open)
	}
	for _, j := range p.jobs {
		if demands[j] > 0 {
			targets[j] = floor + spare*float64(demands[j])/float64(sum)
		}
	}
	return targets
}

// routeLocked picks the job with the largest fair-share deficit among
// the jobs the session can serve and whose demand is positive; when
// every compatible job is complete, the first compatible one is returned
// so the volunteer is dismissed through the normal goodbye path (the old
// single-master behavior for late joiners). Caller holds p.mu.
func (p *Pool) routeLocked(s *session, exclude Job) Job {
	counts := p.leaseCountsLocked()
	total := 0
	for _, s2 := range p.sessions {
		if s2.leasedOrMoving() {
			total++
		}
	}
	targets := p.targetsLocked(total + 1) // +1: the session being placed
	var best Job
	bestDeficit := 0.0
	var fallback Job
	for _, j := range p.jobs {
		if j == exclude || !s.serves(j.Name()) {
			continue
		}
		if fallback == nil {
			fallback = j
		}
		target, open := targets[j]
		if !open {
			continue
		}
		deficit := target - float64(counts[j])
		if best == nil || deficit > bestDeficit {
			best, bestDeficit = j, deficit
		}
	}
	if best != nil {
		return best
	}
	return fallback
}

// leaseCountsLocked counts sessions per holding job (a session being
// reassigned counts toward its destination). Caller holds p.mu.
func (p *Pool) leaseCountsLocked() map[Job]int {
	counts := make(map[Job]int)
	for _, s := range p.sessions {
		if j := s.currentJob(); j != nil {
			counts[j]++
		}
	}
	return counts
}

// leaseTo completes or continues the handshake and hands the session's
// channel to the job.
func (p *Pool) leaseTo(s *session, job Job) error {
	if !s.welcome() {
		// First lease: send the welcome naming the routed job.
		if err := transport.SendWelcome(s.ch, job.Name(), job.Batch(), s.wire, p.cfg.Formats); err != nil {
			p.sessionGone(s)
			return err
		}
	}
	job.RecordWire(s.name, s.wire.Name())
	ch := s.startLease(job)
	if ch == nil {
		return transport.ErrChannelClosed
	}
	if err := job.Lease(s.name, ch); err != nil {
		s.endLeaseRefused()
		return fmt.Errorf("%w: %v", errJobRefused, err)
	}
	return nil
}

// moveWorker reclaims a session from the given job (revoking an active
// lease mid-flight if necessary) and routes it to the next job; with no
// destination the volunteer is dismissed.
func (p *Pool) moveWorker(s *session, from Job) {
	if !s.revoke(from) {
		return
	}
	p.routeNext(s, from)
}

// routeNext reassigns a reclaimed session to the best open job other
// than `from`, dismissing the volunteer when none exists. Pre-pool
// sessions cannot be reassigned and are always dismissed.
func (p *Pool) routeNext(s *session, from Job) {
	if !s.aware {
		s.dismiss()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		s.dismiss()
		return
	}
	job := p.routeLocked(s, from)
	if job != nil && job.Demand() <= 0 {
		// Only complete jobs remain; a reclaimed worker is dismissed
		// rather than bounced through a job that would immediately
		// goodbye it.
		job = nil
	}
	p.mu.Unlock()
	if job == nil {
		s.dismiss()
		return
	}
	s.reassign(job)
}

// jobReleased handles a job's goodbye to a leased worker — the job's
// stream completed for this session. The worker is routed to the next
// open job over the same connection.
func (p *Pool) jobReleased(s *session, from Job) {
	go p.routeNext(s, from)
}

// jobAborted handles a job closing a leased worker's channel (pipeline
// abort, decode failure, or a worker-reported application error). The
// worker may still serve other jobs, so it is reclaimed and routed away
// from the aborting job; if no other job is open the channel is closed
// for real — the old single-master behavior.
func (p *Pool) jobAborted(s *session, from Job) {
	go p.routeNext(s, from)
}

// reassigned completes a reassign barrier: the worker acknowledged the
// switch, so every frame of the previous job has drained and the channel
// can be leased to the destination job.
func (p *Pool) reassigned(s *session) {
	job := s.takePending()
	if job == nil {
		return
	}
	if err := p.leaseTo(s, job); err != nil {
		if errors.Is(err, errJobRefused) {
			p.routeNext(s, job)
		}
	}
}

// sessionGone prunes a dead session from the worker set.
func (p *Pool) sessionGone(s *session) {
	s.markDead()
	p.mu.Lock()
	delete(p.sessions, s.id)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// rebalanceLoop is the demand-weighted fair-share scan: every period it
// compares each open job's lease count to its demand-proportional
// target and moves one worker from the most over-leased job to the most
// under-leased one. Moving one worker per tick keeps the fleet stable
// under noisy demand signals while still converging in a few periods.
func (p *Pool) rebalanceLoop() {
	interval := p.cfg.Rebalance
	if interval <= 0 {
		interval = DefaultRebalance
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-t.C:
			p.rebalanceOnce()
		}
	}
}

// rebalanceOnce performs one fair-share pass.
func (p *Pool) rebalanceOnce() {
	p.mu.Lock()
	if p.closed || len(p.jobs) < 2 {
		p.mu.Unlock()
		return
	}
	counts := p.leaseCountsLocked()
	total := 0
	for _, s := range p.sessions {
		if s.currentJob() != nil {
			total++
		}
	}
	open := 0
	for _, j := range p.jobs {
		if j.Demand() > 0 {
			open++
		}
	}
	if total > 0 && total < open {
		// More open jobs than leased workers: every fair-share target is
		// sub-1, so the whole-worker deficit threshold below can never
		// fire for a starved job — the fleet would freeze on whichever
		// jobs happened to lease first. Degrade to round-robin
		// time-sharing: each tick moves one worker from the job holding
		// the most leases to the next lease-less open job in registration
		// order, so every open job is served in turn regardless of how
		// lopsided the demand weights are.
		donor, receiver := p.roundRobinLocked(counts)
		p.mu.Unlock()
		p.moveLease(donor, receiver)
		return
	}
	targets := p.targetsLocked(total)
	if len(targets) == 0 {
		p.mu.Unlock()
		return
	}
	// Donor: largest surplus above its fair-share target (complete jobs
	// donate everything they still hold). Receiver: largest deficit among
	// open jobs. Only whole workers move, so a move needs a donor at
	// least one above target and a receiver at least ~one below; the
	// floor in targetsLocked guarantees a starving open job qualifies.
	var donor, receiver Job
	surplus, deficit := 0.999, 0.999
	for _, j := range p.jobs {
		target, open := targets[j]
		diff := float64(counts[j]) - target
		if diff > surplus {
			donor, surplus = j, diff
		}
		if open && -diff > deficit {
			receiver, deficit = j, -diff
		}
	}
	p.mu.Unlock()
	p.moveLease(donor, receiver)
}

// roundRobinLocked picks the starved-fleet move: the receiver is the
// first open lease-less job at or after the rotation cursor (which then
// advances past it, so successive ticks serve every open job in turn),
// the donor the job currently holding the most leases. Either may be nil
// — no starved job, or nobody holding a lease — making the tick a no-op.
// Caller holds p.mu.
func (p *Pool) roundRobinLocked(counts map[Job]int) (donor, receiver Job) {
	n := len(p.jobs)
	for k := 0; k < n; k++ {
		j := p.jobs[(p.rrNext+k)%n]
		if counts[j] == 0 && j.Demand() > 0 {
			receiver = j
			p.rrNext = (p.rrNext + k + 1) % n
			break
		}
	}
	if receiver == nil {
		return nil, nil
	}
	best := 0
	for _, j := range p.jobs {
		if j != receiver && counts[j] > best {
			donor, best = j, counts[j]
		}
	}
	return donor, receiver
}

// moveLease reassigns one movable session — pool-aware, currently
// leased to the donor, able to serve the receiver — from donor to
// receiver. A nil donor or receiver, or no such session, makes the move
// a no-op.
func (p *Pool) moveLease(donor, receiver Job) {
	if donor == nil || receiver == nil || donor == receiver {
		return
	}
	p.mu.Lock()
	var victim *session
	for _, s := range p.sessions {
		if s.aware && s.currentJob() == donor && s.isLeased() && s.serves(receiver.Name()) {
			victim = s
			break
		}
	}
	p.mu.Unlock()
	if victim == nil {
		return
	}
	if victim.revoke(donor) {
		victim.reassign(receiver)
	}
}

// Quarantine expels every live session of the named worker and bans the
// name from future admission: its channels close (crash-stop — the jobs'
// duplexes fail and the engines re-lend every value the cheater still
// held, exactly as if the device crashed), and a later hello under the
// same accounting name is refused with ErrQuarantined. Verification
// calls this when a worker's reputation falls below the quarantine
// line; the re-lent values go to workers still in good standing.
func (p *Pool) Quarantine(name string) {
	p.mu.Lock()
	if p.banned == nil {
		p.banned = make(map[string]struct{})
	}
	p.banned[name] = struct{}{}
	var held []*session
	for _, s := range p.sessions {
		if s.name == name {
			held = append(held, s)
		}
	}
	p.mu.Unlock()
	for _, s := range held {
		s.ch.Close()
	}
}

// Quarantined reports whether name has been quarantined.
func (p *Pool) Quarantined(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, bad := p.banned[name]
	return bad
}

// SeverJob crash-stops every session currently leased (or moving) to j
// by closing its channel, as if the job's whole fleet vanished at once.
// The sessions die through the normal channel-failure path: the job's
// duplex fails and re-lends its in-flight values, pumps observe the
// close and prune the sessions from the pool. A sharded master's Kill
// uses it to make the loss of one shard total, so range migration — not
// lingering half-dead leases — recovers the work.
func (p *Pool) SeverJob(j Job) {
	p.mu.Lock()
	var held []*session
	for _, s := range p.sessions {
		if s.currentJob() == j {
			held = append(held, s)
		}
	}
	p.mu.Unlock()
	for _, s := range held {
		s.ch.Close()
	}
}
