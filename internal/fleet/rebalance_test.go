package fleet

// Table-driven edge-case tests for the demand-weighted fair-share
// rebalancer: the floor guarantee when the fleet is smaller than the job
// set, the all-jobs-complete quiescent state, and a job closing in the
// middle of a scan tick.

import (
	"testing"
	"time"

	"pando/internal/proto"
)

// TestTargetsEdgeCases drives targetsLocked through the boundary
// configurations the scan must get right.
func TestTargetsEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		demands []int
		workers int
		want    []float64 // expected target per job, NaN-free; 0 = absent
	}{
		{
			// One worker, three open jobs: the fleet cannot give every
			// open job its floor, so shares are purely proportional and
			// sum to the single worker.
			name:    "one worker many jobs",
			demands: []int{1, 1, 2},
			workers: 1,
			want:    []float64{0.25, 0.25, 0.5},
		},
		{
			// Exactly one worker per open job: the floor consumes the
			// whole fleet and demand weighting has nothing to split.
			name:    "floor exactly covers fleet",
			demands: []int{5, 1, 1},
			workers: 3,
			want:    []float64{1, 1, 1},
		},
		{
			// Spare workers above the floor split proportionally.
			name:    "floor plus proportional remainder",
			demands: []int{3, 1},
			workers: 6,
			want:    []float64{4, 2},
		},
		{
			// Every job complete: no targets at all; the scan must go
			// quiescent instead of dividing by a zero demand sum.
			name:    "demand all zero",
			demands: []int{0, 0, 0},
			workers: 4,
			want:    []float64{0, 0, 0},
		},
		{
			// A complete job among open ones neither receives a target
			// nor distorts the others' shares.
			name:    "complete job excluded",
			demands: []int{0, 1, 1},
			workers: 4,
			want:    []float64{0, 2, 2},
		},
		{
			// Zero workers: open jobs get a zero-ish proportional target,
			// never a negative or NaN one.
			name:    "zero workers",
			demands: []int{1, 1},
			workers: 0,
			want:    []float64{0, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPool(Config{Rebalance: -1})
			defer p.Close()
			jobs := make([]*fakeJob, len(tc.demands))
			for i, d := range tc.demands {
				jobs[i] = newFakeJob(string(rune('a'+i)), d)
				if err := p.Register(jobs[i]); err != nil {
					t.Fatal(err)
				}
			}
			p.mu.Lock()
			targets := p.targetsLocked(tc.workers)
			p.mu.Unlock()
			total := 0.0
			for i, j := range jobs {
				got, open := targets[j]
				if tc.want[i] == 0 {
					if open && got != 0 {
						t.Fatalf("job %d: target %v, want none", i, got)
					}
					continue
				}
				if !open {
					t.Fatalf("job %d: no target, want %v", i, tc.want[i])
				}
				if diff := got - tc.want[i]; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("job %d: target %v, want %v", i, got, tc.want[i])
				}
				total += got
			}
			if tc.workers > 0 && total > float64(tc.workers)+1e-9 {
				t.Fatalf("targets sum %v exceeds fleet of %d", total, tc.workers)
			}
		})
	}
}

// TestRebalanceRoundRobinWhenJobsExceedWorkers: with more open jobs than
// leased workers every fair-share target is sub-1, so the whole-worker
// deficit threshold can never trigger and the proportional scan would
// freeze the fleet on whichever jobs leased first — a demand-1000 job
// could hold the only worker forever. The scan must degrade to
// round-robin time-sharing: each tick hands the worker to the next
// lease-less open job in registration order, skipping complete jobs, so
// every open job is served in turn regardless of demand weights.
func TestRebalanceRoundRobinWhenJobsExceedWorkers(t *testing.T) {
	cases := []struct {
		name    string
		demands []int // one job per entry, named "a", "b", ...
		// wantOrder is the expected sequence of reassign destinations
		// over successive scan ticks; the single worker starts on the
		// job admission routed it to (always "a" in these tables).
		wantOrder []string
	}{
		{
			// Four equal jobs, one worker: the rotation must visit every
			// job and wrap around.
			name:      "single worker cycles all open jobs",
			demands:   []int{1, 1, 1, 1},
			wantOrder: []string{"b", "c", "d", "a", "b"},
		},
		{
			// A job with overwhelming demand weight must still yield the
			// worker to its demand-1 siblings on every rotation turn.
			name:      "heavy demand cannot hog the only worker",
			demands:   []int{1000, 1, 1},
			wantOrder: []string{"b", "c", "a", "b"},
		},
		{
			// A complete job neither receives the worker nor stalls the
			// rotation.
			name:      "complete job skipped in rotation",
			demands:   []int{1, 0, 1},
			wantOrder: []string{"c", "a", "c"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPool(Config{Rebalance: -1})
			defer p.Close()
			jobs := make(map[string]*fakeJob, len(tc.demands))
			for i, d := range tc.demands {
				name := string(rune('a' + i))
				jobs[name] = newFakeJob(name, d)
				if err := p.Register(jobs[name]); err != nil {
					t.Fatal(err)
				}
			}
			ch := rawVolunteer(t, p, &proto.Message{Peer: "only", Functions: []string{"*"}})
			recvType(t, ch, proto.TypeWelcome)
			jobs["a"].waitLease(t)

			for i, want := range tc.wantOrder {
				p.rebalanceOnce()
				re := recvType(t, ch, proto.TypeReassign)
				if re.Func != want {
					t.Fatalf("tick %d: reassigned to %q, want %q", i, re.Func, want)
				}
				// Complete the reassign barrier so the lease settles
				// before the next tick.
				if err := ch.Send(&proto.Message{Type: proto.TypeReassign, Func: re.Func}); err != nil {
					t.Fatal(err)
				}
				jobs[want].waitLease(t)
			}
		})
	}
}

// TestRebalanceAllDemandZeroIsQuiescent: with every job complete, a scan
// tick must move nothing and leave lease state untouched.
func TestRebalanceAllDemandZeroIsQuiescent(t *testing.T) {
	p := NewPool(Config{Rebalance: -1})
	defer p.Close()
	jobA := newFakeJob("job-a", 1)
	jobB := newFakeJob("job-b", 1)
	if err := p.Register(jobA); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(jobB); err != nil {
		t.Fatal(err)
	}
	ch := rawVolunteer(t, p, &proto.Message{Peer: "w1", Functions: []string{"*"}})
	recvType(t, ch, proto.TypeWelcome)
	jobA.waitLease(t)

	jobA.setDemand(0)
	jobB.setDemand(0)
	p.rebalanceOnce()

	// No reassign frame may reach the worker; the next frame it sees
	// should be nothing at all within the grace window.
	moved := make(chan *proto.Message, 1)
	go func() {
		if m, err := ch.Recv(); err == nil {
			moved <- m
		}
	}()
	select {
	case m := <-moved:
		t.Fatalf("quiescent scan sent %+v to the worker", m)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestRebalanceMovesWorkerFromClosingJob: a job whose demand drops to
// zero mid-scan (its stream completed or it is shutting down) donates its
// leased worker to the remaining open job on the next tick.
func TestRebalanceMovesWorkerFromClosingJob(t *testing.T) {
	p := NewPool(Config{Rebalance: -1})
	defer p.Close()
	jobA := newFakeJob("job-a", 1)
	jobB := newFakeJob("job-b", 0) // not open yet
	if err := p.Register(jobA); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(jobB); err != nil {
		t.Fatal(err)
	}
	ch := rawVolunteer(t, p, &proto.Message{Peer: "mover", Functions: []string{"*"}})
	recvType(t, ch, proto.TypeWelcome)
	jobA.waitLease(t)

	// Mid-tick flip: A closes, B opens.
	jobA.setDemand(0)
	jobB.setDemand(1)
	p.rebalanceOnce()

	// The worker is reassigned to job B over the same connection.
	re := recvType(t, ch, proto.TypeReassign)
	if re.Func != "job-b" {
		t.Fatalf("reassign = %+v, want job-b", re)
	}
	if err := ch.Send(&proto.Message{Type: proto.TypeReassign, Func: re.Func}); err != nil {
		t.Fatal(err)
	}
	jobB.waitLease(t)
}

// TestRebalanceJobClosingDuringScanTick: the donor job unregisters
// between the scan's snapshot and the move; the revoke must simply miss
// (the session is already elsewhere) without panicking or stranding the
// worker.
func TestRebalanceJobClosingDuringScanTick(t *testing.T) {
	p := NewPool(Config{Rebalance: -1})
	defer p.Close()
	jobA := newFakeJob("job-a", 3)
	jobB := newFakeJob("job-b", 1)
	if err := p.Register(jobA); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(jobB); err != nil {
		t.Fatal(err)
	}
	ch := rawVolunteer(t, p, &proto.Message{Peer: "w", Functions: []string{"*"}})
	recvType(t, ch, proto.TypeWelcome)
	jobA.waitLease(t)

	// Unregister A as a scan would be moving its worker: the session is
	// reclaimed by Unregister first, so rebalanceOnce's revoke loses the
	// race and must cope.
	p.Unregister(jobA)
	p.rebalanceOnce()

	// The worker lands on job B (the only open job) via the reassign
	// barrier, whichever path won.
	re := recvType(t, ch, proto.TypeReassign)
	if re.Func != "job-b" {
		t.Fatalf("reassign = %+v, want job-b", re)
	}
	if err := ch.Send(&proto.Message{Type: proto.TypeReassign, Func: re.Func}); err != nil {
		t.Fatal(err)
	}
	jobB.waitLease(t)
	// And the pool's books stay consistent.
	for _, w := range p.Workers() {
		if w.Job == "job-a" {
			t.Fatalf("worker still attributed to the unregistered job: %+v", w)
		}
	}
}
