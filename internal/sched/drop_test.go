package sched

import (
	"testing"
	"time"
)

// backdateSends rewrites every pending dispatch time to `ago` in the
// past, simulating values that have been stuck in flight for that long.
func backdateSends(c *Controller, ago time.Duration) {
	c.mu.Lock()
	for i := c.sendHead; i < len(c.sends); i++ {
		c.sends[i] = time.Now().Add(-ago)
	}
	c.mu.Unlock()
}

// TestDropPreventsStaleRTTAfterMidFlightDeath is the regression test for
// the FIFO pairing bug: values dispatched to a worker that died mid-flight
// never produce results, and without Drop their stale dispatch times
// would be paired with the NEXT results — every later round-trip measured
// from an hour-old send, the inflated EWMA read as congestion, and the
// window pinned at its minimum.
func TestDropPreventsStaleRTTAfterMidFlightDeath(t *testing.T) {
	c := NewController(Adaptive(3, 16))
	// Three values go in flight and get stuck on a dying worker.
	for i := 0; i < 3; i++ {
		if !c.Acquire() {
			t.Fatal("acquire failed")
		}
		c.Sent()
	}
	backdateSends(c, time.Hour)

	// The death is detected: the detach path drops the dead dispatches.
	drops := 0
	for c.Drop() {
		drops++
	}
	if drops != 3 {
		t.Fatalf("Drop cleared %d dispatches, want 3", drops)
	}
	if n := c.pendingSends(); n != 0 {
		t.Fatalf("pending sends after drops = %d, want 0", n)
	}
	if got := c.InFlight(); got != 0 {
		t.Fatalf("in-flight after drops = %d, want 0 (credits released)", got)
	}

	// Fresh traffic through the same controller: round-trips must reflect
	// the actual quick trips, not the hour-old stale entries.
	for i := 0; i < 5; i++ {
		if !c.Acquire() {
			t.Fatal("acquire failed")
		}
		c.Sent()
		time.Sleep(time.Millisecond)
		c.Result()
	}
	c.mu.Lock()
	ewma, best := c.ewmaRTT, c.bestRTT
	c.mu.Unlock()
	if best <= 0 || best > 1 {
		t.Fatalf("best RTT = %vs, want ~1ms (stale hour-old send leaked in)", best)
	}
	if ewma > 1 {
		t.Fatalf("EWMA RTT = %vs, want ~1ms (stale hour-old send leaked in)", ewma)
	}
	if w := c.Window(); w < 4 {
		t.Fatalf("window = %d after 5 clean round-trips, want slow-start growth (stale RTT read as congestion)", w)
	}
}

// TestWithoutDropStaleSendInflatesRTT pins the failure mode the Drop path
// exists for, so a regression in the pairing shows up as this test and
// the one above disagreeing.
func TestWithoutDropStaleSendInflatesRTT(t *testing.T) {
	c := NewController(Adaptive(2, 16))
	if !c.Acquire() {
		t.Fatal("acquire failed")
	}
	c.Sent() // never answered, never dropped
	backdateSends(c, time.Hour)
	if !c.Acquire() {
		t.Fatal("acquire failed")
	}
	c.Sent()
	c.Result() // pairs with the stale send
	c.mu.Lock()
	ewma := c.ewmaRTT
	c.mu.Unlock()
	if ewma < 3000 {
		t.Fatalf("EWMA RTT = %vs; the stale send should have inflated it to ~3600s — the mis-pairing this suite guards against has changed shape", ewma)
	}
}

// TestDropDedupPairsNextResult: dropping a deduplicated value's dispatch
// keeps the FIFO pairing aligned for the values behind it.
func TestDropDedupPairsNextResult(t *testing.T) {
	c := NewController(Adaptive(2, 16))
	if !c.Acquire() {
		t.Fatal("acquire failed")
	}
	c.Sent() // value A: deduplicated upstream, result will never arrive
	backdateSends(c, time.Hour)
	if !c.Acquire() {
		t.Fatal("acquire failed")
	}
	c.Sent() // value B
	if !c.Drop() {
		t.Fatal("Drop found no pending dispatch")
	}
	time.Sleep(time.Millisecond)
	c.Result() // B's result must pair with B's send, not A's
	c.mu.Lock()
	best := c.bestRTT
	c.mu.Unlock()
	if best <= 0 || best > 1 {
		t.Fatalf("best RTT = %vs, want ~1ms (result paired with dropped send)", best)
	}
}

func TestDropOnEmptyQueue(t *testing.T) {
	c := NewController(Static(2))
	if c.Drop() {
		t.Fatal("Drop reported success on an empty queue")
	}
	// A result on an empty queue releases the credit and skips the
	// sample, as before.
	if !c.Acquire() {
		t.Fatal("acquire failed")
	}
	c.Result()
	if got := c.InFlight(); got != 0 {
		t.Fatalf("in-flight = %d, want 0", got)
	}
}

// TestSendQueueDoesNotPinHistory drives a long stream through a window of
// in-flight values and checks the dispatch queue's backing array stays
// proportional to the window — the old `sends = sends[1:]` re-slice kept
// the head offset growing into ever-larger reallocated arrays.
func TestSendQueueDoesNotPinHistory(t *testing.T) {
	c := NewController(Static(4))
	for i := 0; i < 4; i++ {
		if !c.Acquire() {
			t.Fatal("acquire failed")
		}
		c.Sent()
	}
	for i := 0; i < 20000; i++ {
		c.Result()
		if !c.Acquire() {
			t.Fatal("acquire failed")
		}
		c.Sent()
	}
	c.mu.Lock()
	length, head, capacity := len(c.sends), c.sendHead, cap(c.sends)
	c.mu.Unlock()
	if pending := length - head; pending != 4 {
		t.Fatalf("pending sends = %d, want 4", pending)
	}
	if capacity > 256 {
		t.Fatalf("dispatch queue backing array grew to %d slots over a long stream, want O(window)", capacity)
	}
}

// TestSchedulerDetachDropsPendingSends: the scheduler's detach path must
// clear a dead worker's pending dispatches.
func TestSchedulerDetachDropsPendingSends(t *testing.T) {
	s := New(Adaptive(3, 8), nil)
	defer s.Close()
	c := s.Attach("w", nil)
	for i := 0; i < 3; i++ {
		if !c.Acquire() {
			t.Fatal("acquire failed")
		}
		c.Sent()
	}
	s.Detach(c)
	if n := c.pendingSends(); n != 0 {
		t.Fatalf("pending sends after Detach = %d, want 0", n)
	}
}

// TestCloseDropsPendingSends: Close must also clear the queue — the gate
// closes the controller directly when a worker's result stream ends.
func TestCloseDropsPendingSends(t *testing.T) {
	c := NewController(Static(2))
	if !c.Acquire() {
		t.Fatal("acquire failed")
	}
	c.Sent()
	c.Close()
	if n := c.pendingSends(); n != 0 {
		t.Fatalf("pending sends after Close = %d, want 0", n)
	}
}
