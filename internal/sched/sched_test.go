package sched

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"pando/internal/pullstream"
)

// meter tracks in-flight values between two pipeline points. A local
// copy of limiter.Meter: limiter depends on this package for its gate,
// so importing it back from the tests would be a cycle.
type meter struct {
	mu      sync.Mutex
	current int
	peak    int
}

func (m *meter) Inc() {
	m.mu.Lock()
	m.current++
	if m.current > m.peak {
		m.peak = m.current
	}
	m.mu.Unlock()
}

func (m *meter) Dec() {
	m.mu.Lock()
	m.current--
	m.mu.Unlock()
}

func (m *meter) Peak() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// feedResult injects a synthetic in-flight value whose dispatch happened
// rtt ago, then completes it — a deterministic way to drive the adaptive
// window without real sleeps.
func feedResult(c *Controller, rtt time.Duration) {
	c.mu.Lock()
	c.inFlight++
	c.sends = append(c.sends, time.Now().Add(-rtt))
	c.mu.Unlock()
	c.Result()
}

func TestControllerSlowStartGrowsToMax(t *testing.T) {
	c := NewController(Adaptive(1, 16))
	for i := 0; i < 20; i++ {
		feedResult(c, 10*time.Millisecond)
	}
	if got := c.Window(); got != 16 {
		t.Fatalf("window after steady round-trips = %d, want 16 (slow start to max)", got)
	}
}

func TestControllerBacksOffOnCongestionAndRecovers(t *testing.T) {
	c := NewController(Adaptive(1, 16))
	for i := 0; i < 20; i++ {
		feedResult(c, 10*time.Millisecond)
	}
	// Round-trips inflate 10×: the extra in-flight values are queueing on
	// the worker, not hiding latency; the window must collapse toward min.
	for i := 0; i < 8; i++ {
		feedResult(c, 100*time.Millisecond)
	}
	if got := c.Window(); got != 1 {
		t.Fatalf("window after congestion = %d, want 1", got)
	}
	// Round-trips return to baseline: the window probes back up
	// additively (no second slow start).
	for i := 0; i < 40; i++ {
		feedResult(c, 10*time.Millisecond)
	}
	got := c.Window()
	if got < 3 {
		t.Fatalf("window after recovery = %d, want additive growth above min", got)
	}
	if got > 16 {
		t.Fatalf("window = %d exceeds max 16", got)
	}
}

func TestControllerStaticWindowNeverMoves(t *testing.T) {
	c := NewController(Static(3))
	rtts := []time.Duration{time.Millisecond, 100 * time.Millisecond, 10 * time.Microsecond, time.Second}
	for _, rtt := range rtts {
		feedResult(c, rtt)
		if got := c.Window(); got != 3 {
			t.Fatalf("static window moved to %d after rtt %v", got, rtt)
		}
	}
}

func TestControllerRateEstimate(t *testing.T) {
	c := NewController(Static(2))
	for i := 0; i < 10; i++ {
		time.Sleep(2 * time.Millisecond)
		feedResult(c, time.Millisecond)
	}
	rate := c.Rate()
	if rate <= 0 {
		t.Fatal("no rate estimate after 10 results")
	}
	if rate > 2000 {
		t.Fatalf("rate %.0f/s implausible for ~2ms intervals", rate)
	}
}

// echoDuplex simulates a worker behind a network channel with an eager
// sending side, the scenario the gate must bound.
func echoDuplex(delay time.Duration) (pullstream.Duplex[int, int], *meter) {
	m := &meter{}
	pending := make(chan int, 1024)
	endc := make(chan error, 1)
	d := pullstream.Duplex[int, int]{
		Sink: func(src pullstream.Source[int]) {
			for {
				type ans struct {
					end error
					v   int
				}
				ch := make(chan ans, 1)
				src(nil, func(end error, v int) { ch <- ans{end, v} })
				a := <-ch
				if a.end != nil {
					endc <- a.end
					close(pending)
					return
				}
				m.Inc()
				pending <- a.v
			}
		},
		Source: func(abort error, cb pullstream.Callback[int]) {
			if abort != nil {
				cb(abort, 0)
				return
			}
			v, ok := <-pending
			if !ok {
				end := <-endc
				if pullstream.IsNormalEnd(end) {
					end = pullstream.ErrDone
				}
				cb(end, 0)
				return
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			m.Dec()
			cb(nil, v*2)
		},
	}
	return d, m
}

func TestGateBoundsInFlight(t *testing.T) {
	for _, p := range []Policy{Static(1), Static(4), Adaptive(1, 8), Adaptive(2, 3)} {
		d, meter := echoDuplex(0)
		c := NewController(p)
		got, err := pullstream.Collect(Gate(c, d)(pullstream.Count(100)))
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if len(got) != 100 {
			t.Fatalf("%+v: got %d results", p, len(got))
		}
		for i, v := range got {
			if v != (i+1)*2 {
				t.Fatalf("%+v: got[%d] = %d", p, i, v)
			}
		}
		if meter.Peak() > p.Max {
			t.Fatalf("%+v: peak in flight %d exceeds max window", p, meter.Peak())
		}
	}
}

// TestGateStressConcurrentAbortClose hammers the gate with concurrent
// streams that are aborted mid-flight, verifying under -race that the
// bound is never exceeded and every goroutine drains after shutdown.
func TestGateStressConcurrentAbortClose(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const rounds = 40
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := Adaptive(1, 4)
			d, meter := echoDuplex(0)
			c := NewController(p)
			out := Gate(c, d)(pullstream.Count(200))
			if i%3 == 0 {
				// Abort downstream mid-stream.
				out = pullstream.Take[int](5 + i%7)(out)
			}
			if i%5 == 0 {
				// Race a close against the transfer.
				go c.Close()
			}
			_, _ = pullstream.Collect(out)
			if meter.Peak() > p.Max {
				t.Errorf("round %d: peak %d exceeds max %d", i, meter.Peak(), p.Max)
			}
		}(i)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after shutdown: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fakeSub is a controllable sub-stream view for straggler-scan tests.
type fakeSub struct {
	mu         sync.Mutex
	n          int
	oldest     time.Duration
	speculated int
}

func (f *fakeSub) Outstanding() (int, time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n, f.oldest
}

func (f *fakeSub) Speculate(max int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := f.n
	if k > max {
		k = max
	}
	f.speculated += k
	return k
}

func TestSchedulerSpeculatesOnlyStragglers(t *testing.T) {
	parked := 2
	s := New(Policy{Min: 1, Max: 4, Speculation: 4}, func() int { return parked })
	defer s.Close()

	fast := &fakeSub{}
	slow := &fakeSub{n: 3, oldest: 500 * time.Millisecond}
	fastCtrl := s.Attach("fast", fast)
	slowCtrl := s.Attach("slow", slow)
	// The fast worker's smoothed service time defines the fleet median;
	// the stalled worker has produced nothing.
	fastCtrl.mu.Lock()
	fastCtrl.ewmaGap = 0.001 // 1ms per item
	fastCtrl.mu.Unlock()

	s.scanOnce()

	if fast.speculated != 0 {
		t.Fatalf("fast worker speculated %d times; it has nothing outstanding", fast.speculated)
	}
	if slow.speculated != 2 {
		t.Fatalf("straggler speculated %d values, want 2 (bounded by idle workers)", slow.speculated)
	}
	flows := s.Flows()
	bySpec := map[string]int{}
	for _, f := range flows {
		bySpec[f.Name] = f.Speculated
	}
	if bySpec["slow"] != 2 || bySpec["fast"] != 0 {
		t.Fatalf("flow snapshots = %v", bySpec)
	}
	_ = slowCtrl

	// No idle workers → no speculation, however old the values are.
	parked = 0
	before := slow.speculated
	s.scanOnce()
	if slow.speculated != before {
		t.Fatal("speculated without idle capacity")
	}
}

func TestSchedulerDetachRemovesWorker(t *testing.T) {
	s := New(Static(2), nil)
	defer s.Close()
	c := s.Attach("w", &fakeSub{})
	if len(s.Flows()) != 1 {
		t.Fatal("worker not registered")
	}
	s.Detach(c)
	if len(s.Flows()) != 0 {
		t.Fatal("worker not removed")
	}
	if c.Acquire() {
		t.Fatal("detached controller still grants credits")
	}
}

func TestSchedulerStopLeavesControllersRunning(t *testing.T) {
	s := New(Static(2), nil)
	c := s.Attach("w", &fakeSub{})
	s.Stop()
	if !c.Acquire() {
		t.Fatal("Stop must not close live controllers (in-flight processors finish normally)")
	}
	c.Cancel()
	s.Close()
}

func TestSchedulerCreditWeightShrinksWindow(t *testing.T) {
	s := New(Static(4), nil)
	weights := map[string]float64{"suspect": 0.25, "expelled": 0}
	s.SetCreditWeight(func(name string) float64 {
		if w, ok := weights[name]; ok {
			return w
		}
		return 1
	})
	find := func(name string) WorkerFlow {
		for _, f := range s.Flows() {
			if f.Name == name {
				return f
			}
		}
		t.Fatalf("worker %s not attached", name)
		panic("unreachable")
	}
	s.Attach("honest", &fakeSub{})
	s.Attach("suspect", &fakeSub{})
	s.Attach("expelled", &fakeSub{})
	if w := find("honest").Window; w != 4 {
		t.Fatalf("honest window = %d, want full 4", w)
	}
	if w := find("suspect").Window; w != 1 {
		t.Fatalf("suspect window = %d, want 1 (4 * 0.25)", w)
	}
	// Even zero weight keeps a window of 1: starving a worker the fleet
	// still lends to would deadlock its sub-stream, and expulsion is the
	// fleet layer's job.
	if w := find("expelled").Window; w != 1 {
		t.Fatalf("expelled window = %d, want floor 1", w)
	}
	s.Close()
}

func TestSchedulerCreditWeightCapsAdaptiveCeiling(t *testing.T) {
	s := New(Adaptive(2, 8), nil)
	s.SetCreditWeight(func(name string) float64 {
		if name == "suspect" {
			return 0.5
		}
		return 1
	})
	c := s.Attach("suspect", &fakeSub{})
	// Drive the controller well past where the capped ceiling sits: the
	// window must stop at 4 (8 * 0.5), not the policy's 8.
	for i := 0; i < 64; i++ {
		if !c.Acquire() {
			break
		}
		c.Sent()
		c.Result()
	}
	got := -1
	for _, f := range s.Flows() {
		if f.Name == "suspect" {
			got = f.Window
		}
	}
	if got > 4 {
		t.Fatalf("suspect adaptive window = %d, want capped at 4", got)
	}
	s.Close()
}
