// Package sched is the per-worker dispatch policy of the engine: it
// replaces the static pull-limit of the paper's Limiter (§2.4.3, Figure 7)
// with an adaptive credit controller per attached worker, plus straggler
// detection and speculative re-dispatch near the tail of the stream.
//
// The paper's evaluation (§5.2–5.4) shows throughput is highly sensitive
// to the batch size — the single static bound on values in flight per
// worker — and volunteer fleets are heterogeneous by definition: a fast
// desktop and a throttled phone should not share one window. Each
// Controller therefore probes its worker with a slow-start/AIMD window
// driven by the result round-trip time: the window grows while the EWMA
// round-trip stays close to the best observed (the extra in-flight values
// are hiding transmission latency, the purpose of batching in §5.5) and
// halves when the round-trip inflates (the extra values are merely
// queueing on a slow device, hurting fault-tolerance granularity and tail
// latency for no throughput gain).
//
// The Scheduler aggregates the controllers of one engine. When the stream
// nears its tail — workers are idle with parked asks at the StreamLender —
// it scans for stragglers: a worker whose oldest outstanding value is
// older than k× the fleet's median per-item service time has its items
// duplicated to an idle worker and the first result wins. The lender's
// at-least-once semantics make the duplicates safe (see lender.Speculate).
//
// # Round-trip accounting and Drop
//
// A Controller matches results to dispatches FIFO: Sent pushes the
// dispatch time of a value going in flight, Result pops the oldest and
// feeds the window with the measured round-trip. A dispatched value that
// will never produce a result frame — the worker crashed mid-flight, or
// the caller deduplicated the value upstream before its result could
// arrive — must be removed with Drop, or the stale dispatch time would be
// paired with the NEXT result and every later round-trip would be
// measured from the wrong, ever-older send: the inflated EWMA reads as
// permanent congestion and collapses the window to its minimum. The
// scheduler drops on detach (Detach and Close clear all pending
// dispatches); embedders driving a Controller directly (AttachVia-style
// custom gates, relay fan-out) call Drop themselves when they discard an
// in-flight value. The dispatch queue is a ring buffer: popping the head
// does not pin the backing array, so a long-lived worker's queue stays
// proportional to its window, not its history.
package sched

import (
	"sort"
	"sync"
	"time"

	"pando/internal/pullstream"
)

// Policy is the per-worker flow-control policy of one engine.
type Policy struct {
	// Min and Max bound the credit window. Min == Max freezes the window
	// — the static pull-limit of the original design.
	Min, Max int
	// Speculation enables speculative re-dispatch when > 0: near the tail
	// of the stream, a worker whose oldest outstanding value is older than
	// Speculation × the fleet's median service time is treated as a
	// straggler and its values are duplicated to idle workers.
	Speculation float64
}

// Static returns the original fixed-window behavior: exactly n values in
// flight per worker, no speculation.
func Static(n int) Policy {
	if n < 1 {
		n = 1
	}
	return Policy{Min: n, Max: n}
}

// Adaptive returns an adaptive policy probing each worker's window within
// [min, max].
func Adaptive(min, max int) Policy {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	return Policy{Min: min, Max: max}
}

// Adaptive reports whether the window may move.
func (p Policy) Adaptive() bool { return p.Max > p.Min }

// backoffRatio is the congestion signal: when the smoothed round-trip
// exceeds this multiple of the best observed round-trip, the extra
// in-flight values are queueing rather than hiding latency.
const backoffRatio = 1.5

// rttAlpha is the EWMA smoothing factor for round-trip samples.
const rttAlpha = 0.3

// rateAlpha is the EWMA smoothing factor for inter-result intervals.
const rateAlpha = 0.2

// Controller is the adaptive credit gate of one attached worker. It is a
// generalization of the Limiter's token gate: values acquire a credit
// before going in flight, results release one, and the number of credits
// — the window — moves with the measured round-trip when the policy is
// adaptive.
type Controller struct {
	policy Policy

	mu   sync.Mutex
	cond *sync.Cond

	window   int
	inFlight int
	closed   bool

	// sends[sendHead:] holds the dispatch time of each in-flight value,
	// oldest first; results match FIFO, like the lender's own matching.
	// Popping advances sendHead instead of re-slicing so the backing
	// array is compacted (not pinned) as the queue drains; see
	// popSendLocked.
	sends    []time.Time
	sendHead int

	slowStart bool
	sinceGrow int

	bestRTT    float64 // seconds; best round-trip observed
	ewmaRTT    float64 // seconds; smoothed round-trip
	ewmaGap    float64 // seconds; smoothed inter-result interval
	lastResult time.Time
	results    int
	speculated int
}

// NewController returns a credit gate starting at the policy's minimum
// window (a conservative slow start).
func NewController(p Policy) *Controller {
	if p.Min < 1 {
		p.Min = 1
	}
	if p.Max < p.Min {
		p.Max = p.Min
	}
	c := &Controller{policy: p, window: p.Min, slowStart: p.Adaptive()}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Acquire blocks until a credit is available or the gate is closed,
// reporting whether one was acquired.
func (c *Controller) Acquire() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.inFlight >= c.window && !c.closed {
		c.cond.Wait()
	}
	if c.closed {
		return false
	}
	c.inFlight++
	return true
}

// Sent records the dispatch time of a value that just went in flight.
// It is deliberately separate from Acquire: a credit may be held for a
// long time waiting for the upstream to produce a value, and that wait
// must not count as worker round-trip.
func (c *Controller) Sent() {
	c.mu.Lock()
	c.sends = append(c.sends, time.Now())
	c.mu.Unlock()
}

// Cancel returns an acquired credit whose value never went in flight
// (the upstream ended between acquire and read; Sent was never called).
func (c *Controller) Cancel() {
	c.mu.Lock()
	if c.inFlight > 0 {
		c.inFlight--
	}
	c.mu.Unlock()
	c.cond.Signal()
}

// popSendLocked removes and returns the oldest pending dispatch time.
// The head index advances instead of re-slicing, and the live window is
// copied down once the dead prefix dominates, so the backing array never
// pins the full dispatch history of a long-lived worker. Caller holds mu.
func (c *Controller) popSendLocked() (time.Time, bool) {
	if c.sendHead >= len(c.sends) {
		return time.Time{}, false
	}
	at := c.sends[c.sendHead]
	c.sends[c.sendHead] = time.Time{}
	c.sendHead++
	if c.sendHead == len(c.sends) {
		c.sends = c.sends[:0]
		c.sendHead = 0
	} else if c.sendHead > 32 && c.sendHead > len(c.sends)/2 {
		n := copy(c.sends, c.sends[c.sendHead:])
		c.sends = c.sends[:n]
		c.sendHead = 0
	}
	return at, true
}

// Drop discards the oldest pending dispatch and releases its credit: the
// caller knows that value will never produce a result frame (worker
// detached mid-flight, or the value was deduplicated upstream), so pairing
// its dispatch time with the next result would mis-measure every later
// round-trip. It reports whether a pending dispatch existed.
func (c *Controller) Drop() bool {
	c.mu.Lock()
	_, ok := c.popSendLocked()
	if ok && c.inFlight > 0 {
		c.inFlight--
	}
	c.mu.Unlock()
	c.cond.Signal()
	return ok
}

// Result releases one credit for a returned result and feeds the
// adaptive window with the measured round-trip.
func (c *Controller) Result() {
	now := time.Now()
	c.mu.Lock()
	if c.inFlight > 0 {
		c.inFlight--
	}
	var rtt float64
	if at, ok := c.popSendLocked(); ok {
		rtt = now.Sub(at).Seconds()
	}
	c.results++
	if !c.lastResult.IsZero() {
		gap := now.Sub(c.lastResult).Seconds()
		if c.ewmaGap == 0 {
			c.ewmaGap = gap
		} else {
			c.ewmaGap = (1-rateAlpha)*c.ewmaGap + rateAlpha*gap
		}
	}
	c.lastResult = now
	if rtt > 0 {
		if c.bestRTT == 0 || rtt < c.bestRTT {
			c.bestRTT = rtt
		}
		if c.ewmaRTT == 0 {
			c.ewmaRTT = rtt
		} else {
			c.ewmaRTT = (1-rttAlpha)*c.ewmaRTT + rttAlpha*rtt
		}
		c.adaptLocked()
	}
	c.mu.Unlock()
	c.cond.Signal()
}

// adaptLocked moves the window: slow-start growth of one credit per
// result until the first congestion signal, then additive increase (one
// credit per windowful of uncongested results) and multiplicative
// decrease on congestion. Caller holds c.mu.
func (c *Controller) adaptLocked() {
	if !c.policy.Adaptive() {
		return
	}
	congested := c.ewmaRTT > backoffRatio*c.bestRTT
	switch {
	case congested && c.window > c.policy.Min:
		c.window /= 2
		if c.window < c.policy.Min {
			c.window = c.policy.Min
		}
		c.slowStart = false
		c.sinceGrow = 0
	case congested:
		c.slowStart = false
		c.sinceGrow = 0
	case c.slowStart && c.window < c.policy.Max:
		c.window++
		c.cond.Broadcast()
	case c.window < c.policy.Max:
		c.sinceGrow++
		if c.sinceGrow >= c.window {
			c.window++
			c.sinceGrow = 0
			c.cond.Broadcast()
		}
	}
}

// Close releases all blocked acquirers; they report failure. Pending
// dispatches are dropped: a closing worker's in-flight values will never
// answer, and their stale send times must not leak into any later
// measurement.
func (c *Controller) Close() {
	c.mu.Lock()
	c.closed = true
	c.sends = nil
	c.sendHead = 0
	c.mu.Unlock()
	c.cond.Broadcast()
}

// pendingSends reports how many dispatches await a result (tests).
func (c *Controller) pendingSends() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sends) - c.sendHead
}

// Window returns the current credit window.
func (c *Controller) Window() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.window
}

// InFlight returns how many values currently hold a credit.
func (c *Controller) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inFlight
}

// serviceEstimate returns the smoothed per-item service interval in
// seconds, or 0 when the worker has not produced enough results.
func (c *Controller) serviceEstimate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ewmaGap
}

// Rate returns the smoothed throughput in items per second.
func (c *Controller) Rate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ewmaGap <= 0 {
		return 0
	}
	return 1 / c.ewmaGap
}

// Gate wraps the duplex endpoint d into a Through that lets at most the
// controller's current window of values in flight — the adaptive
// replacement of limiter.Limit: pull(sub.Source, Gate(c, d), sub.Sink).
//
// The duplex's Sink is driven on a new goroutine; the goroutine
// terminates when the upstream source ends or the gate is closed by a
// terminating result stream.
func Gate[I, O any](c *Controller, d pullstream.Duplex[I, O]) pullstream.Through[I, O] {
	return func(src pullstream.Source[I]) pullstream.Source[O] {
		gated := func(abort error, cb pullstream.Callback[I]) {
			if abort != nil {
				src(abort, cb)
				return
			}
			if !c.Acquire() {
				var zero I
				cb(pullstream.ErrDone, zero)
				return
			}
			src(nil, func(end error, v I) {
				if end != nil {
					// The value never went in flight; return the credit so
					// a concurrent shutdown isn't blocked.
					c.Cancel()
				} else {
					c.Sent()
				}
				cb(end, v)
			})
		}
		go d.Sink(gated)

		return func(abort error, cb pullstream.Callback[O]) {
			if abort != nil {
				c.Close()
				d.Source(abort, cb)
				return
			}
			d.Source(nil, func(end error, v O) {
				if end != nil {
					c.Close()
					cb(end, v)
					return
				}
				c.Result()
				cb(nil, v)
			})
		}
	}
}

// SubHandle is the scheduler's view of one worker's lending sub-stream,
// implemented by the engine over lender.SubStream.
type SubHandle interface {
	// Outstanding returns how many values are lent through the
	// sub-stream and the age of the oldest one.
	Outstanding() (count int, oldest time.Duration)
	// Speculate duplicates up to max of the sub-stream's oldest
	// outstanding values for re-dispatch to other workers, returning how
	// many were duplicated.
	Speculate(max int) int
}

// WorkerFlow is a snapshot of one worker's flow-control state, surfaced
// through the master's stats so operators can watch the controller work.
type WorkerFlow struct {
	Name string
	// InFlight is how many values currently hold a credit.
	InFlight int
	// Window is the current credit window.
	Window int
	// Rate is the smoothed throughput in items per second.
	Rate float64
	// Speculated counts values duplicated away from this worker by
	// straggler re-dispatch.
	Speculated int
}

// entry pairs a controller with its sub-stream handle.
type entry struct {
	name string
	ctrl *Controller
	sub  SubHandle
}

// Scheduler owns the dispatch policy of one engine: it creates a
// controller per attached worker and, when speculation is enabled, runs
// the straggler scan over them.
type Scheduler struct {
	policy Policy
	parked func() int // idle asks parked at the lender (tail signal)

	mu       sync.Mutex
	weight   func(name string) float64 // reputation-based credit weight
	entries  map[*Controller]*entry
	started  bool
	closed   bool
	stop     chan struct{}
	stopOnce sync.Once
}

// New creates a scheduler. parked reports how many worker asks are
// parked idle at the lender after the input ended (lender.IdleAtTail) —
// non-zero means the stream is near its tail and spare capacity exists;
// it may be nil when speculation is disabled.
func New(p Policy, parked func() int) *Scheduler {
	if p.Min < 1 {
		p.Min = 1
	}
	if p.Max < p.Min {
		p.Max = p.Min
	}
	return &Scheduler{
		policy:  p,
		parked:  parked,
		entries: make(map[*Controller]*entry),
		stop:    make(chan struct{}),
	}
}

// Policy returns the scheduler's policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// SetCreditWeight installs a per-worker credit weight in [0, 1],
// consulted at Attach time: the verification layer's reputation ledger
// feeds it, so a worker under suspicion re-attaches with a shrunken
// window (its blast radius — in-flight values it could poison — shrinks
// with its score) and a quarantined worker with the minimum one. A nil
// fn restores uniform windows.
func (s *Scheduler) SetCreditWeight(fn func(name string) float64) {
	s.mu.Lock()
	s.weight = fn
	s.mu.Unlock()
}

// weightedPolicy scales the scheduler's policy by the worker's credit
// weight: an adaptive policy keeps its floor but lowers its probing
// ceiling; a static policy shrinks its fixed window. The window never
// drops below 1 — flow control must not deadlock a worker the fleet
// still lends to (a zero-weight worker is quarantined at the fleet
// layer, not starved here).
func (s *Scheduler) weightedPolicy(name string) Policy {
	s.mu.Lock()
	fn := s.weight
	s.mu.Unlock()
	p := s.policy
	if fn == nil {
		return p
	}
	w := fn(name)
	if w >= 1 {
		return p
	}
	if w < 0 {
		w = 0
	}
	scale := func(n int) int {
		v := int(float64(n)*w + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	if p.Adaptive() {
		p.Max = scale(p.Max)
		if p.Max < p.Min {
			p.Min = p.Max
		}
		return p
	}
	p.Min = scale(p.Min)
	p.Max = p.Min
	return p
}

// Attach registers a worker and returns its credit controller. The
// straggler scan starts lazily with the first attachment when the policy
// enables speculation.
func (s *Scheduler) Attach(name string, sub SubHandle) *Controller {
	c := NewController(s.weightedPolicy(name))
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		return c
	}
	s.entries[c] = &entry{name: name, ctrl: c, sub: sub}
	if s.policy.Speculation > 0 && s.parked != nil && !s.started {
		s.started = true
		go s.scan()
	}
	s.mu.Unlock()
	return c
}

// Detach closes a worker's controller and removes it from the scan. Any
// dispatches still awaiting a result are dropped (the Drop path): a
// detached worker's in-flight values never answer, and their stale send
// times must not be paired with later results.
func (s *Scheduler) Detach(c *Controller) {
	for c.Drop() {
	}
	c.Close()
	s.mu.Lock()
	delete(s.entries, c)
	s.mu.Unlock()
}

// Flows snapshots every attached worker's flow-control state.
func (s *Scheduler) Flows() []WorkerFlow {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkerFlow, 0, len(s.entries))
	for _, e := range s.entries {
		e.ctrl.mu.Lock()
		out = append(out, WorkerFlow{
			Name:       e.name,
			InFlight:   e.ctrl.inFlight,
			Window:     e.ctrl.window,
			Speculated: e.ctrl.speculated,
		})
		gap := e.ctrl.ewmaGap
		e.ctrl.mu.Unlock()
		if gap > 0 {
			out[len(out)-1].Rate = 1 / gap
		}
	}
	return out
}

// Stop halts the straggler scan and refuses new attachments; existing
// controllers keep gating until their own streams end, so in-flight
// processors finish normally.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
}

// Close stops the scan and closes every controller, releasing any
// goroutine blocked on a credit.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	entries := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.entries = make(map[*Controller]*entry)
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	for _, e := range entries {
		e.ctrl.Close()
	}
}

// scan bounds on how often the straggler detector runs.
const (
	minScanInterval = 200 * time.Microsecond
	maxScanInterval = 100 * time.Millisecond
	idleScan        = 5 * time.Millisecond
)

// scan is the straggler detector: while workers are idle near the tail
// of the stream, values stuck on a worker far beyond the fleet's median
// service time are duplicated to the idle workers; the first result wins.
func (s *Scheduler) scan() {
	interval := idleScan
	for {
		timer := time.NewTimer(interval)
		select {
		case <-s.stop:
			timer.Stop()
			return
		case <-timer.C:
		}
		interval = s.scanOnce()
	}
}

// scanOnce runs one straggler pass and returns the next scan interval,
// derived from the fleet's median service time so the scan keeps pace
// with the workload without spinning.
func (s *Scheduler) scanOnce() time.Duration {
	median := s.medianService()
	interval := idleScan
	if median > 0 {
		interval = time.Duration(median * s.policy.Speculation / 4 * float64(time.Second))
		if interval < minScanInterval {
			interval = minScanInterval
		}
		if interval > maxScanInterval {
			interval = maxScanInterval
		}
	}
	idle := s.parked()
	if idle <= 0 || median <= 0 {
		return interval
	}
	threshold := time.Duration(s.policy.Speculation * median * float64(time.Second))
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	for _, e := range entries {
		n, oldest := e.sub.Outstanding()
		if n == 0 || oldest < threshold {
			continue
		}
		k := e.sub.Speculate(idle)
		if k > 0 {
			e.ctrl.mu.Lock()
			e.ctrl.speculated += k
			e.ctrl.mu.Unlock()
			idle -= k
			if idle <= 0 {
				break
			}
		}
	}
	return interval
}

// medianService returns the fleet's median smoothed per-item service
// interval in seconds, over the workers with enough history.
func (s *Scheduler) medianService() float64 {
	s.mu.Lock()
	var samples []float64
	for _, e := range s.entries {
		if g := e.sub; g == nil {
			continue
		}
		if gap := e.ctrl.serviceEstimate(); gap > 0 {
			samples = append(samples, gap)
		}
	}
	s.mu.Unlock()
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	return samples[len(samples)/2]
}
