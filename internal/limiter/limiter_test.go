package limiter

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"pando/internal/pullstream"
)

// echoDuplex builds a duplex endpoint that buffers inbound values and
// echoes transform(v) on its source after an optional delay, simulating a
// worker behind a network channel with an eager sending side.
func echoDuplex[I, O any](transform func(I) O, delay time.Duration) (pullstream.Duplex[I, O], *Meter) {
	meter := &Meter{}
	pending := make(chan I, 1024)
	endc := make(chan error, 1)
	d := pullstream.Duplex[I, O]{
		Sink: func(src pullstream.Source[I]) {
			// Eager reader, as the WebRTC/WebSocket wrappers are.
			for {
				type ans struct {
					end error
					v   I
				}
				ch := make(chan ans, 1)
				src(nil, func(end error, v I) { ch <- ans{end, v} })
				a := <-ch
				if a.end != nil {
					endc <- a.end
					close(pending)
					return
				}
				meter.Inc()
				pending <- a.v
			}
		},
		Source: func(abort error, cb pullstream.Callback[O]) {
			var zero O
			if abort != nil {
				cb(abort, zero)
				return
			}
			v, ok := <-pending
			if !ok {
				end := <-endc
				if pullstream.IsNormalEnd(end) {
					end = pullstream.ErrDone
				}
				cb(end, zero)
				return
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			meter.Dec()
			cb(nil, transform(v))
		},
	}
	return d, meter
}

func TestLimitBoundsInFlight(t *testing.T) {
	for _, limit := range []int{1, 2, 4, 8} {
		d, meter := echoDuplex(func(v int) int { return v * 2 }, 0)
		th := Limit(d, limit)
		got, err := pullstream.Collect(th(pullstream.Count(100)))
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if len(got) != 100 {
			t.Fatalf("limit %d: got %d results", limit, len(got))
		}
		for i, v := range got {
			if v != (i+1)*2 {
				t.Fatalf("limit %d: got[%d] = %d", limit, i, v)
			}
		}
		if meter.Peak() > limit {
			t.Fatalf("limit %d: peak in flight %d exceeds limit", limit, meter.Peak())
		}
	}
}

func TestLimitWithoutLimiterWouldEagerlyDrain(t *testing.T) {
	// Control experiment: without the limiter the eager sink drains far
	// more than the limit, demonstrating why the module exists.
	d, meter := echoDuplex(func(v int) int { return v }, time.Millisecond)
	done := make(chan struct{})
	go func() {
		d.Sink(pullstream.Count(100))
		close(done)
	}()
	_, err := pullstream.Collect(d.Source)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if meter.Peak() < 50 {
		t.Fatalf("eager sink peaked at %d in flight; expected it to drain most of the input", meter.Peak())
	}
}

func TestLimitMinimumOne(t *testing.T) {
	d, _ := echoDuplex(func(v int) int { return v }, 0)
	th := Limit(d, 0) // clamped to 1
	got, err := pullstream.Collect(th(pullstream.Count(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d results, want 5", len(got))
	}
}

func TestLimitPropagatesWorkerFailure(t *testing.T) {
	boom := errors.New("boom")
	pending := make(chan int, 16)
	d := pullstream.Duplex[int, int]{
		Sink: func(src pullstream.Source[int]) {
			for {
				type ans struct {
					end error
					v   int
				}
				ch := make(chan ans, 1)
				src(nil, func(end error, v int) { ch <- ans{end, v} })
				a := <-ch
				if a.end != nil {
					return
				}
				pending <- a.v
			}
		},
		Source: func(abort error, cb pullstream.Callback[int]) {
			if abort != nil {
				cb(abort, 0)
				return
			}
			v := <-pending
			if v == 3 {
				cb(boom, 0) // the channel fails mid-stream
				return
			}
			cb(nil, v)
		},
	}
	th := Limit(d, 2)
	got, err := pullstream.Collect(th(pullstream.Count(10)))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v, want values 1 and 2 before the failure", got)
	}
}

func TestLimitEmptyUpstream(t *testing.T) {
	d, _ := echoDuplex(func(v int) int { return v }, 0)
	th := Limit(d, 4)
	got, err := pullstream.Collect(th(pullstream.Empty[int]()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestLimitAbortClosesGate(t *testing.T) {
	d, _ := echoDuplex(func(v int) int { return v }, 0)
	th := Limit(d, 2)
	out := th(pullstream.Count(1000))
	got, err := pullstream.Collect(pullstream.Take[int](3)(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %v, want 3 values", got)
	}
}

// TestLimitStressConcurrentAbort hammers the token gate with concurrent
// streams aborted mid-flight, verifying under -race that the bound holds
// and every sink goroutine drains after shutdown.
func TestLimitStressConcurrentAbort(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const rounds = 40
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, meter := echoDuplex(func(v int) int { return v }, 0)
			out := Limit(d, 3)(pullstream.Count(200))
			if i%2 == 0 {
				out = pullstream.Take[int](4 + i%9)(out)
			}
			_, _ = pullstream.Collect(out)
			if meter.Peak() > 3 {
				t.Errorf("round %d: peak %d exceeds limit 3", i, meter.Peak())
			}
		}(i)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after shutdown: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestInFlightMeterThrough(t *testing.T) {
	var m Meter
	th := InFlight[int](&m)
	if _, err := pullstream.Collect(th(pullstream.Count(5))); err != nil {
		t.Fatal(err)
	}
	if m.Peak() == 0 {
		t.Fatal("meter never observed a value")
	}
	if m.Current() != 5 {
		t.Fatalf("current = %d, want 5 (nothing decremented)", m.Current())
	}
}
