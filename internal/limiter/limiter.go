// Package limiter ports Pando's Limiter module (pull-limit, paper §2.4.3
// and Figure 7): it bounds the number of values in flight through a duplex
// channel.
//
// The WebRTC and WebSocket pull-stream wrappers eagerly read all available
// values on the sending side; without a bound they would drain the whole
// input into one worker's buffers, destroying laziness, adaptivity and
// fault-tolerance granularity. The Limiter initially lets a bounded number
// of inputs through; for each new result that comes back, one more input
// is allowed. With a large enough limit, data transfers in both directions
// happen in parallel with the computations and hide transmission latency —
// this is the "batch size" of the paper's evaluation (§5.2-5.4).
package limiter

import (
	"sync"

	"pando/internal/pullstream"
	"pando/internal/sched"
)

// Limit wraps the duplex endpoint d (typically a network transport whose
// Sink sends inputs to a worker and whose Source yields the worker's
// results) into a Through that allows at most n values in flight:
// pull(sub.Source, Limit(d, n), sub.Sink), mirroring the paper's Figure 9.
//
// The token gate itself now lives in the sched subsystem — a static
// credit window is the degenerate case of the adaptive controller — so
// Limit is a thin veneer kept for the paper's vocabulary and for callers
// that bound flow without a scheduler.
//
// The duplex's Sink is driven on a new goroutine; the goroutine terminates
// when the upstream source ends or the gate is closed by a terminating
// result stream.
func Limit[I, O any](d pullstream.Duplex[I, O], n int) pullstream.Through[I, O] {
	return sched.Gate(sched.NewController(sched.Static(n)), d)
}

// Meter counts values in flight between two points of a pipeline and
// remembers the highest count observed. It is a diagnostic helper used
// by tests to verify flow-control bounds.
type Meter struct {
	mu      sync.Mutex
	current int
	peak    int
}

// Inc records a value entering the metered section.
func (m *Meter) Inc() {
	m.mu.Lock()
	m.current++
	if m.current > m.peak {
		m.peak = m.current
	}
	m.mu.Unlock()
}

// Dec records a value leaving the metered section.
func (m *Meter) Dec() {
	m.mu.Lock()
	m.current--
	m.mu.Unlock()
}

// Current returns the number of values currently in the metered section.
func (m *Meter) Current() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.current
}

// Peak returns the highest in-flight count observed.
func (m *Meter) Peak() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// InFlight returns a Through that counts every passing value into m.
func InFlight[T any](m *Meter) pullstream.Through[T, T] {
	return func(src pullstream.Source[T]) pullstream.Source[T] {
		return func(abort error, cb pullstream.Callback[T]) {
			src(abort, func(end error, v T) {
				if end == nil {
					m.Inc()
				}
				cb(end, v)
			})
		}
	}
}
