// Package limiter ports Pando's Limiter module (pull-limit, paper §2.4.3
// and Figure 7): it bounds the number of values in flight through a duplex
// channel.
//
// The WebRTC and WebSocket pull-stream wrappers eagerly read all available
// values on the sending side; without a bound they would drain the whole
// input into one worker's buffers, destroying laziness, adaptivity and
// fault-tolerance granularity. The Limiter initially lets a bounded number
// of inputs through; for each new result that comes back, one more input
// is allowed. With a large enough limit, data transfers in both directions
// happen in parallel with the computations and hide transmission latency —
// this is the "batch size" of the paper's evaluation (§5.2-5.4).
package limiter

import (
	"sync"

	"pando/internal/pullstream"
)

// tokens is a counting gate with shutdown.
type tokens struct {
	mu     sync.Mutex
	cond   *sync.Cond
	avail  int
	closed bool
}

func newTokens(n int) *tokens {
	t := &tokens{avail: n}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// acquire blocks until a token is available or the gate is closed. It
// reports whether a token was acquired.
func (t *tokens) acquire() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.avail == 0 && !t.closed {
		t.cond.Wait()
	}
	if t.closed {
		return false
	}
	t.avail--
	return true
}

func (t *tokens) release() {
	t.mu.Lock()
	t.avail++
	t.mu.Unlock()
	t.cond.Signal()
}

func (t *tokens) close() {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	t.cond.Broadcast()
}

// Limit wraps the duplex endpoint d (typically a network transport whose
// Sink sends inputs to a worker and whose Source yields the worker's
// results) into a Through that allows at most n values in flight:
// pull(sub.Source, Limit(d, n), sub.Sink), mirroring the paper's Figure 9.
//
// The duplex's Sink is driven on a new goroutine; the goroutine terminates
// when the upstream source ends or the gate is closed by a terminating
// result stream.
func Limit[I, O any](d pullstream.Duplex[I, O], n int) pullstream.Through[I, O] {
	if n < 1 {
		n = 1
	}
	return func(src pullstream.Source[I]) pullstream.Source[O] {
		gate := newTokens(n)

		// gated lets values flow from src into the duplex sink only when
		// a token is available.
		gated := func(abort error, cb pullstream.Callback[I]) {
			if abort != nil {
				src(abort, cb)
				return
			}
			if !gate.acquire() {
				var zero I
				cb(pullstream.ErrDone, zero)
				return
			}
			src(nil, func(end error, v I) {
				if end != nil {
					// The value never went in flight; return the token so
					// a concurrent shutdown isn't blocked.
					gate.release()
				}
				cb(end, v)
			})
		}
		go d.Sink(gated)

		return func(abort error, cb pullstream.Callback[O]) {
			if abort != nil {
				gate.close()
				d.Source(abort, cb)
				return
			}
			d.Source(nil, func(end error, v O) {
				if end != nil {
					gate.close()
					cb(end, v)
					return
				}
				gate.release()
				cb(nil, v)
			})
		}
	}
}

// InFlight is a diagnostic helper returning a Through that counts how many
// values are currently between its input and its output, and the highest
// count observed. It is used by tests to verify the Limiter's bound.
func InFlight[T any](current, peak *int, mu *sync.Mutex) pullstream.Through[T, T] {
	return func(src pullstream.Source[T]) pullstream.Source[T] {
		return func(abort error, cb pullstream.Callback[T]) {
			src(abort, func(end error, v T) {
				if end == nil {
					mu.Lock()
					*current++
					if *current > *peak {
						*peak = *current
					}
					mu.Unlock()
				}
				cb(end, v)
			})
		}
	}
}
