package stubborn

import (
	"errors"
	"sync"
	"testing"

	"pando/internal/pullstream"
)

// result pairs an input with its computed output so classify can identify
// which input to resubmit.
type result struct {
	in  int
	out int
}

func process(src pullstream.Source[int]) pullstream.Source[result] {
	return pullstream.Map(func(v int) result { return result{in: v, out: v * 10} })(src)
}

func TestStubbornAllConfirmFirstTry(t *testing.T) {
	th := Stubborn[int, result](process,
		func(result) error { return nil },
		func(r result) int { return r.in })
	got, err := pullstream.Collect(th(pullstream.Count(10)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d results, want 10", len(got))
	}
	for i, r := range got {
		if r.out != (i+1)*10 {
			t.Fatalf("got[%d] = %+v", i, r)
		}
	}
}

func TestStubbornRetriesFailedDownloads(t *testing.T) {
	// Every input's first "download" fails; the second succeeds. All
	// inputs must still be output exactly once (paper Figure 12).
	var mu sync.Mutex
	attempts := make(map[int]int)
	confirm := func(r result) error {
		mu.Lock()
		defer mu.Unlock()
		attempts[r.in]++
		if attempts[r.in] == 1 {
			return errors.New("download failed")
		}
		return nil
	}
	th := Stubborn[int, result](process, confirm, func(r result) int { return r.in })
	got, err := pullstream.Collect(th(pullstream.Count(20)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("got %d results, want 20", len(got))
	}
	seen := make(map[int]int)
	for _, r := range got {
		seen[r.in]++
	}
	for v := 1; v <= 20; v++ {
		if seen[v] != 1 {
			t.Fatalf("input %d output %d times, want exactly 1", v, seen[v])
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for v := 1; v <= 20; v++ {
		if attempts[v] != 2 {
			t.Fatalf("input %d attempted %d times, want 2", v, attempts[v])
		}
	}
}

func TestStubbornChronicFailureEventuallySucceeds(t *testing.T) {
	var mu sync.Mutex
	attempts := make(map[int]int)
	confirm := func(r result) error {
		mu.Lock()
		defer mu.Unlock()
		attempts[r.in]++
		if attempts[r.in] < 5 {
			return errors.New("still failing")
		}
		return nil
	}
	th := Stubborn[int, result](process, confirm, func(r result) int { return r.in })
	got, err := pullstream.Collect(th(pullstream.Count(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d, want 3", len(got))
	}
}

func TestLoopDropVerdict(t *testing.T) {
	th := Loop[int, result](process, func(r result) (Verdict, int) {
		if r.in%2 == 0 {
			return Drop, 0
		}
		return Accept, 0
	})
	got, err := pullstream.Collect(th(pullstream.Count(10)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d results, want 5 odd ones", len(got))
	}
	for _, r := range got {
		if r.in%2 == 0 {
			t.Fatalf("dropped value %d leaked to output", r.in)
		}
	}
}

func TestLoopRetryProducesNewInput(t *testing.T) {
	// Synchronous-parallel-search style: a retry resubmits a *different*
	// input (the next range to mine).
	th := Loop[int, result](process, func(r result) (Verdict, int) {
		if r.in < 100 {
			return Retry, r.in + 100 // "next attempt"
		}
		return Accept, 0
	})
	got, err := pullstream.Collect(th(pullstream.Values(1, 2, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
	for _, r := range got {
		if r.in < 100 {
			t.Fatalf("unaccepted input %d leaked", r.in)
		}
	}
}

func TestLoopEmptyInput(t *testing.T) {
	th := Loop[int, result](process, func(r result) (Verdict, int) { return Accept, 0 })
	got, err := pullstream.Collect(th(pullstream.Empty[int]()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestLoopInputErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	th := Loop[int, result](process, func(r result) (Verdict, int) { return Accept, 0 })
	_, err := pullstream.Collect(th(pullstream.Error[int](boom)))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestLoopAbortPropagates(t *testing.T) {
	th := Loop[int, result](process, func(r result) (Verdict, int) { return Accept, 0 })
	out := th(pullstream.Count(1000))
	got, err := pullstream.Collect(pullstream.Take[result](4)(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d, want 4", len(got))
	}
}

func TestStubbornRetriesServedBeforeFreshInputs(t *testing.T) {
	// A resubmitted input must be served ahead of fresh inputs so failed
	// work is not starved.
	var order []int
	var mu sync.Mutex
	track := func(src pullstream.Source[int]) pullstream.Source[result] {
		return pullstream.Map(func(v int) result {
			mu.Lock()
			order = append(order, v)
			mu.Unlock()
			return result{in: v, out: v}
		})(src)
	}
	first := true
	th := Loop[int, result](track, func(r result) (Verdict, int) {
		if r.in == 1 && first {
			first = false
			return Retry, 1
		}
		return Accept, 0
	})
	if _, err := pullstream.Collect(th(pullstream.Count(5))); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 6 {
		t.Fatalf("order = %v, want 6 processings", order)
	}
	if order[0] != 1 || order[1] != 1 {
		t.Fatalf("order = %v; the retry of 1 must be served before fresh input 2", order)
	}
}
