// Package stubborn ports Pando's pull-stubborn module (paper §4.3,
// Figure 12): stubborn processing with failure-prone external data
// distribution.
//
// When results' data are transferred outside of Pando (e.g. through the
// DAT or WebTorrent protocols), a worker may report success and still
// crash before the data have been fully downloaded. The stubborn module
// factors out the monitoring feedback loop: an input is output only after
// its confirmation (download) succeeds; otherwise it is resubmitted for
// computation.
//
// The same Loop combinator also expresses the synchronous-parallel-search
// monitor of §4.2 (crypto-currency mining), where the next inputs to
// process depend on the last valid result.
package stubborn

import (
	"sync"

	"pando/internal/pullstream"
)

// Verdict classifies one result of the processing stage.
type Verdict int

const (
	// Accept emits the result on the output.
	Accept Verdict = iota
	// Retry resubmits a (possibly new) input for processing.
	Retry
	// Drop discards the result without emitting or retrying.
	Drop
)

// Loop wraps a 1-input-1-output stream transformer (such as Pando's
// distributed map) in a feedback loop. For every result, classify returns
// a verdict; on Retry the returned input is resubmitted ahead of fresh
// inputs. The loop terminates when the original input is exhausted and no
// resubmission is pending.
func Loop[I, O any](th pullstream.Through[I, O], classify func(O) (Verdict, I)) pullstream.Through[I, O] {
	return func(input pullstream.Source[I]) pullstream.Source[O] {
		fb := &feedback[I, O]{input: input}
		inner := th(fb.source)
		return func(abort error, cb pullstream.Callback[O]) {
			if abort != nil {
				inner(abort, cb)
				return
			}
			var pull func()
			pull = func() {
				inner(nil, func(end error, v O) {
					if end != nil {
						cb(end, v)
						return
					}
					verdict, retry := classify(v)
					switch verdict {
					case Accept:
						fb.completed()
						cb(nil, v)
					case Retry:
						fb.resubmit(retry)
						pull()
					default: // Drop
						fb.completed()
						pull()
					}
				})
			}
			pull()
		}
	}
}

// Stubborn applies confirm to every result of th; a result is output only
// after confirm succeeds, otherwise the original input is resubmitted
// (paper Figure 12). th must map each input to exactly one result and the
// result must identify its input through the key function.
func Stubborn[I, O any](th pullstream.Through[I, O], confirm func(O) error, key func(O) I) pullstream.Through[I, O] {
	return Loop(th, func(v O) (Verdict, I) {
		if err := confirm(v); err != nil {
			return Retry, key(v)
		}
		var zero I
		return Accept, zero
	})
}

// feedback merges the original input with the resubmission queue, serving
// resubmissions first, and tracks in-flight values so the merged source
// knows when everything is complete.
type feedback[I, O any] struct {
	mu       sync.Mutex
	input    pullstream.Source[I]
	retries  []I
	inEnd    error
	inFlight int
	parked   []pullstream.Callback[I]
	reading  bool
}

func (f *feedback[I, O]) resubmit(v I) {
	f.mu.Lock()
	f.inFlight--
	f.retries = append(f.retries, v)
	actions := f.serviceLocked()
	f.mu.Unlock()
	for _, a := range actions {
		a()
	}
}

func (f *feedback[I, O]) completed() {
	f.mu.Lock()
	f.inFlight--
	actions := f.serviceLocked()
	f.mu.Unlock()
	for _, a := range actions {
		a()
	}
}

func (f *feedback[I, O]) source(abort error, cb pullstream.Callback[I]) {
	var zero I
	if abort != nil {
		f.mu.Lock()
		needAbort := f.inEnd == nil && !f.reading
		if needAbort {
			f.reading = true
		}
		f.mu.Unlock()
		if needAbort {
			done := make(chan struct{})
			f.input(abort, func(error, I) { close(done) })
			<-done
			f.mu.Lock()
			f.reading = false
			f.inEnd = abort
			f.mu.Unlock()
		}
		cb(abort, zero)
		return
	}
	f.mu.Lock()
	f.parked = append(f.parked, cb)
	actions := f.serviceLocked()
	f.mu.Unlock()
	for _, a := range actions {
		a()
	}
}

func (f *feedback[I, O]) serviceLocked() []func() {
	var actions []func()
	for len(f.parked) > 0 {
		cb := f.parked[0]
		switch {
		case len(f.retries) > 0:
			v := f.retries[0]
			f.retries = f.retries[1:]
			f.parked = f.parked[1:]
			f.inFlight++
			actions = append(actions, func() { cb(nil, v) })
		case f.inEnd != nil:
			if f.inFlight > 0 {
				// A result may still come back as a retry; keep parked.
				return actions
			}
			f.parked = f.parked[1:]
			end := f.inEnd
			actions = append(actions, func() {
				var zero I
				cb(end, zero)
			})
		default:
			if !f.reading {
				f.reading = true
				// On its own goroutine: the input may block until a value
				// is available (see the same pattern in internal/lender).
				actions = append(actions, func() { go f.input(nil, f.inputAnswer) })
			}
			return actions
		}
	}
	return actions
}

func (f *feedback[I, O]) inputAnswer(end error, v I) {
	f.mu.Lock()
	f.reading = false
	var actions []func()
	if end != nil {
		f.inEnd = end
	} else if len(f.parked) > 0 {
		cb := f.parked[0]
		f.parked = f.parked[1:]
		f.inFlight++
		actions = append(actions, func() { cb(nil, v) })
	} else {
		// No parked ask (cannot normally happen since reads are demand
		// driven); requeue so the value is not lost.
		f.retries = append(f.retries, v)
	}
	actions = append(actions, f.serviceLocked()...)
	f.mu.Unlock()
	for _, a := range actions {
		a()
	}
}
