package qlearn

import (
	"testing"
	"testing/quick"
)

func baseParams() Params {
	return Params{
		Alpha:    0.5,
		Gamma:    0.95,
		Epsilon:  0.1,
		Episodes: 200,
		MaxSteps: 200,
		Seed:     7,
		GridSize: 6,
	}
}

func TestGridWorldStepBounds(t *testing.T) {
	w := &GridWorld{Size: 4, Obstacles: map[[2]int]bool{}}
	// Moving off every edge keeps the agent in place.
	if x, y, _, _ := w.Step(0, 0, Up); x != 0 || y != 0 {
		t.Fatalf("Up off edge moved to (%d,%d)", x, y)
	}
	if x, y, _, _ := w.Step(0, 0, Left); x != 0 || y != 0 {
		t.Fatalf("Left off edge moved to (%d,%d)", x, y)
	}
	if x, y, _, _ := w.Step(3, 3, Down); x != 3 || y != 3 {
		t.Fatalf("Down off edge moved to (%d,%d)", x, y)
	}
	if x, y, _, _ := w.Step(3, 3, Right); x != 3 || y != 3 {
		t.Fatalf("Right off edge moved to (%d,%d)", x, y)
	}
}

func TestGridWorldObstacleBlocks(t *testing.T) {
	w := &GridWorld{Size: 4, Obstacles: map[[2]int]bool{{1, 0}: true}}
	x, y, r, done := w.Step(0, 0, Right)
	if x != 0 || y != 0 {
		t.Fatalf("moved into obstacle: (%d,%d)", x, y)
	}
	if r != -1 || done {
		t.Fatalf("r=%v done=%v", r, done)
	}
}

func TestGridWorldGoalReward(t *testing.T) {
	w := &GridWorld{Size: 3, Obstacles: map[[2]int]bool{}}
	x, y, r, done := w.Step(1, 2, Right) // into (2,2), the goal
	if x != 2 || y != 2 || r != 100 || !done {
		t.Fatalf("goal step: (%d,%d) r=%v done=%v", x, y, r, done)
	}
}

func TestGridWorldDeterministicGeneration(t *testing.T) {
	a := NewGridWorld(8, 3)
	b := NewGridWorld(8, 3)
	if len(a.Obstacles) != len(b.Obstacles) {
		t.Fatal("same seed must give same world")
	}
	for k := range a.Obstacles {
		if !b.Obstacles[k] {
			t.Fatal("same seed must give same obstacles")
		}
	}
	if a.Obstacles[[2]int{0, 0}] || a.Obstacles[[2]int{7, 7}] {
		t.Fatal("start/goal must stay free")
	}
}

func TestTrainDeterministic(t *testing.T) {
	p := baseParams()
	o1, err := Train(p)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Train(p)
	if err != nil {
		t.Fatal(err)
	}
	if o1.Steps != o2.Steps || o1.AvgStepsToGoal != o2.AvgStepsToGoal {
		t.Fatalf("training not deterministic: %+v vs %+v", o1, o2)
	}
}

func TestTrainLearnsSomething(t *testing.T) {
	o, err := Train(baseParams())
	if err != nil {
		t.Fatal(err)
	}
	if o.SuccessRate < 0.5 {
		t.Fatalf("success rate %.2f after training; agent failed to learn", o.SuccessRate)
	}
	// The learned policy must be much shorter than the cutoff.
	if o.AvgStepsToGoal >= float64(baseParams().MaxSteps) {
		t.Fatalf("avg steps %.1f did not improve", o.AvgStepsToGoal)
	}
	if o.Steps == 0 {
		t.Fatal("no steps counted")
	}
}

func TestTrainBadLearningRateFailsToLearnWell(t *testing.T) {
	// The application's premise: learning rate matters. A tiny alpha
	// learns much more slowly than a good one on the same budget.
	good := baseParams()
	bad := baseParams()
	bad.Alpha = 0.001
	og, err := Train(good)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := Train(bad)
	if err != nil {
		t.Fatal(err)
	}
	if !(og.SuccessRate > ob.SuccessRate || og.AvgStepsToGoal < ob.AvgStepsToGoal) {
		t.Fatalf("alpha=0.5 (%+v) should beat alpha=0.001 (%+v)", og, ob)
	}
}

func TestTrainValidation(t *testing.T) {
	bad := baseParams()
	bad.Alpha = 0
	if _, err := Train(bad); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	bad = baseParams()
	bad.Gamma = 1.5
	if _, err := Train(bad); err == nil {
		t.Fatal("gamma=1.5 accepted")
	}
	bad = baseParams()
	bad.Episodes = 0
	if _, err := Train(bad); err == nil {
		t.Fatal("episodes=0 accepted")
	}
}

func TestSweepAlphas(t *testing.T) {
	alphas := []float64{0.1, 0.5, 0.9}
	ps := SweepAlphas(alphas, baseParams())
	if len(ps) != 3 {
		t.Fatalf("len = %d", len(ps))
	}
	for i, p := range ps {
		if p.Alpha != alphas[i] {
			t.Fatalf("ps[%d].Alpha = %v", i, p.Alpha)
		}
		if p.Gamma != baseParams().Gamma {
			t.Fatal("base parameters must carry over")
		}
	}
}

func TestBestSelection(t *testing.T) {
	outs := []Outcome{
		{Params: Params{Alpha: 0.1}, SuccessRate: 0.5, AvgStepsToGoal: 40},
		{Params: Params{Alpha: 0.5}, SuccessRate: 0.9, AvgStepsToGoal: 20},
		{Params: Params{Alpha: 0.9}, SuccessRate: 0.9, AvgStepsToGoal: 15},
	}
	best, ok := Best(outs)
	if !ok || best.Params.Alpha != 0.9 {
		t.Fatalf("best = %+v", best)
	}
	if _, ok := Best(nil); ok {
		t.Fatal("Best(nil) must report no result")
	}
}

func TestQuickStepStaysOnGrid(t *testing.T) {
	w := NewGridWorld(6, 11)
	f := func(x, y uint8, a uint8) bool {
		sx, sy := int(x)%6, int(y)%6
		if w.Obstacles[[2]int{sx, sy}] {
			return true // cannot start inside an obstacle
		}
		nx, ny, _, _ := w.Step(sx, sy, Action(a%NumActions))
		return nx >= 0 && ny >= 0 && nx < 6 && ny < 6 && !w.Obstacles[[2]int{nx, ny}]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrainInteractiveObserverSeesEveryEpisode(t *testing.T) {
	p := baseParams()
	p.Episodes = 20
	count := 0
	o, err := TrainInteractive(p, func(Progress) bool {
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 20 || o.EpisodesRun != 20 || o.Aborted {
		t.Fatalf("count=%d outcome=%+v", count, o)
	}
}

func TestTrainInteractiveEarlyAbort(t *testing.T) {
	p := baseParams()
	o, err := TrainInteractive(p, func(pr Progress) bool {
		return pr.Episode < 9 // "user" closes the case after 10 episodes
	})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Aborted {
		t.Fatal("outcome not marked aborted")
	}
	if o.EpisodesRun != 10 {
		t.Fatalf("episodesRun = %d, want 10", o.EpisodesRun)
	}
	if o.Steps == 0 {
		t.Fatal("partial outcome lost its step count")
	}
}

func TestAbortIfNotLearningAbortsHopelessCase(t *testing.T) {
	// An agent whose episodes are shorter than the shortest path to the
	// goal can never succeed; the simulated user aborts the case.
	p := baseParams()
	p.Alpha = 1e-9
	p.MaxSteps = 8 // the 6x6 goal is at least 10 steps away
	o, err := TrainInteractive(p, AbortIfNotLearning(10))
	if err != nil {
		t.Fatal(err)
	}
	if !o.Aborted {
		t.Fatal("hopeless case not aborted")
	}
	if o.EpisodesRun >= p.Episodes {
		t.Fatalf("ran all %d episodes", o.EpisodesRun)
	}
}

func TestAbortIfNotLearningKeepsHealthyCase(t *testing.T) {
	o, err := TrainInteractive(baseParams(), AbortIfNotLearning(30))
	if err != nil {
		t.Fatal(err)
	}
	if o.Aborted {
		t.Fatalf("healthy case aborted after %d episodes", o.EpisodesRun)
	}
}
