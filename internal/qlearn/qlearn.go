// Package qlearn implements the machine-learning-agent application of the
// paper (§4.1): an autonomous agent learns, in a simulated environment,
// sequences of steps that result in rewards; Pando distributes the search
// for the optimal learning rate — a hyperparameter — across devices, one
// simulation per hyperparameter value. Throughput is measured in
// simulation steps per second (Table 2's Steps/s column).
package qlearn

import (
	"fmt"
	"math/rand"
)

// Action is one of the four grid moves.
type Action int

// The four actions.
const (
	Up Action = iota
	Down
	Left
	Right
)

// NumActions is the size of the action space.
const NumActions = 4

// GridWorld is the simulated environment: the agent starts at (0,0) and
// must reach the goal at (Size-1, Size-1); obstacles block movement; each
// step costs -1 and reaching the goal rewards +100.
type GridWorld struct {
	Size      int
	Obstacles map[[2]int]bool
}

// NewGridWorld builds a Size x Size world with a deterministic obstacle
// pattern derived from seed (so all devices simulate the same world).
func NewGridWorld(size int, seed int64) *GridWorld {
	rng := rand.New(rand.NewSource(seed))
	w := &GridWorld{Size: size, Obstacles: make(map[[2]int]bool)}
	// Sprinkle obstacles on ~15% of cells, never on start or goal.
	for x := 0; x < size; x++ {
		for y := 0; y < size; y++ {
			if x == 0 && y == 0 || x == size-1 && y == size-1 {
				continue
			}
			if rng.Float64() < 0.15 {
				w.Obstacles[[2]int{x, y}] = true
			}
		}
	}
	return w
}

// state indexes a cell.
func (w *GridWorld) state(x, y int) int { return y*w.Size + x }

// States is the size of the state space.
func (w *GridWorld) States() int { return w.Size * w.Size }

// Step applies an action from (x, y); moves into walls or obstacles keep
// the agent in place. It returns the new position, the reward, and
// whether the episode ended (goal reached).
func (w *GridWorld) Step(x, y int, a Action) (nx, ny int, reward float64, done bool) {
	nx, ny = x, y
	switch a {
	case Up:
		ny--
	case Down:
		ny++
	case Left:
		nx--
	case Right:
		nx++
	}
	if nx < 0 || ny < 0 || nx >= w.Size || ny >= w.Size || w.Obstacles[[2]int{nx, ny}] {
		nx, ny = x, y
	}
	if nx == w.Size-1 && ny == w.Size-1 {
		return nx, ny, 100, true
	}
	return nx, ny, -1, false
}

// Params are the training hyperparameters; Alpha (the learning rate) is
// the one the paper's application searches for.
type Params struct {
	// Alpha is the learning rate in (0, 1].
	Alpha float64 `json:"alpha"`
	// Gamma is the discount factor.
	Gamma float64 `json:"gamma"`
	// Epsilon is the exploration rate.
	Epsilon float64 `json:"epsilon"`
	// Episodes to train.
	Episodes int `json:"episodes"`
	// MaxSteps per episode before it is cut off.
	MaxSteps int `json:"maxSteps"`
	// Seed makes the run deterministic.
	Seed int64 `json:"seed"`
	// GridSize of the simulated world.
	GridSize int `json:"gridSize"`
}

// Outcome summarizes one training run.
type Outcome struct {
	Params Params `json:"params"`
	// Aborted reports an early abort (the paper's interactive search: a
	// user watching the agent may abort a hyperparameter case whose
	// agent fails to learn).
	Aborted bool `json:"aborted,omitempty"`
	// EpisodesRun counts episodes actually executed (< Episodes when
	// aborted).
	EpisodesRun int `json:"episodesRun"`
	// Steps is the total number of simulation steps executed (the
	// throughput unit of Table 2).
	Steps int `json:"steps"`
	// AvgStepsToGoal averages the episode lengths over the final quarter
	// of training: lower is better learning.
	AvgStepsToGoal float64 `json:"avgStepsToGoal"`
	// SuccessRate is the fraction of final-quarter episodes that reached
	// the goal within MaxSteps.
	SuccessRate float64 `json:"successRate"`
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Alpha <= 0 || p.Alpha > 1 {
		return fmt.Errorf("qlearn: alpha %v outside (0,1]", p.Alpha)
	}
	if p.Gamma < 0 || p.Gamma > 1 {
		return fmt.Errorf("qlearn: gamma %v outside [0,1]", p.Gamma)
	}
	if p.Epsilon < 0 || p.Epsilon > 1 {
		return fmt.Errorf("qlearn: epsilon %v outside [0,1]", p.Epsilon)
	}
	if p.Episodes <= 0 || p.MaxSteps <= 0 || p.GridSize < 2 {
		return fmt.Errorf("qlearn: non-positive episodes/steps/grid")
	}
	return nil
}

// Progress reports one finished training episode to an observer.
type Progress struct {
	// Episode index, 0-based.
	Episode int
	// Steps the episode took.
	Steps int
	// Reached reports whether the goal was reached within MaxSteps.
	Reached bool
}

// Train runs tabular Q-learning with the given hyperparameters and
// returns the outcome. It is the processing function Pando distributes:
// deterministic for a given Params value.
func Train(p Params) (Outcome, error) {
	return TrainInteractive(p, nil)
}

// TrainInteractive trains like Train but invokes observe after every
// episode; observe returning false aborts the run early, mirroring the
// paper's interactive hyperparameter search where the user early-aborts a
// case whose agent fails to learn (§4.1). The partial outcome is
// returned with Aborted set.
func TrainInteractive(p Params, observe func(Progress) bool) (Outcome, error) {
	if err := p.Validate(); err != nil {
		return Outcome{}, err
	}
	world := NewGridWorld(p.GridSize, p.Seed)
	rng := rand.New(rand.NewSource(p.Seed + 1))
	q := make([][NumActions]float64, world.States())

	totalSteps := 0
	lastQuarter := p.Episodes - p.Episodes/4
	var finalSteps, finalSuccesses, finalEpisodes int
	var aborted bool
	var episodesRun int

	for ep := 0; ep < p.Episodes; ep++ {
		x, y := 0, 0
		steps := 0
		reached := false
		for ; steps < p.MaxSteps; steps++ {
			s := world.state(x, y)
			var a Action
			if rng.Float64() < p.Epsilon {
				a = Action(rng.Intn(NumActions))
			} else {
				a = argmax(q[s])
			}
			nx, ny, r, done := world.Step(x, y, a)
			ns := world.state(nx, ny)
			best := q[ns][argmax(q[ns])]
			target := r
			if !done {
				target += p.Gamma * best
			}
			q[s][a] += p.Alpha * (target - q[s][a])
			x, y = nx, ny
			if done {
				steps++
				reached = true
				break
			}
		}
		totalSteps += steps
		if ep >= lastQuarter {
			finalEpisodes++
			finalSteps += steps
			if reached {
				finalSuccesses++
			}
		}
		episodesRun = ep + 1
		if observe != nil && !observe(Progress{Episode: ep, Steps: steps, Reached: reached}) {
			aborted = true
			break
		}
	}

	out := Outcome{Params: p, Steps: totalSteps, Aborted: aborted, EpisodesRun: episodesRun}
	if finalEpisodes > 0 {
		out.AvgStepsToGoal = float64(finalSteps) / float64(finalEpisodes)
		out.SuccessRate = float64(finalSuccesses) / float64(finalEpisodes)
	}
	return out, nil
}

func argmax(qs [NumActions]float64) Action {
	best := Action(0)
	for a := 1; a < NumActions; a++ {
		if qs[a] > qs[best] {
			best = Action(a)
		}
	}
	return best
}

// SweepAlphas builds the hyperparameter search inputs: one Params per
// candidate learning rate, sharing all other settings.
func SweepAlphas(alphas []float64, base Params) []Params {
	out := make([]Params, 0, len(alphas))
	for _, a := range alphas {
		p := base
		p.Alpha = a
		out = append(out, p)
	}
	return out
}

// Best picks the outcome with the highest success rate, breaking ties by
// fewer average steps to goal.
func Best(outcomes []Outcome) (Outcome, bool) {
	if len(outcomes) == 0 {
		return Outcome{}, false
	}
	best := outcomes[0]
	for _, o := range outcomes[1:] {
		if o.SuccessRate > best.SuccessRate ||
			(o.SuccessRate == best.SuccessRate && o.AvgStepsToGoal < best.AvgStepsToGoal) {
			best = o
		}
	}
	return best, true
}

// AbortIfNotLearning returns an observer that simulates the watching
// user: if, after grace episodes, no episode in the last grace window
// reached the goal, the case is aborted.
func AbortIfNotLearning(grace int) func(Progress) bool {
	if grace < 1 {
		grace = 1
	}
	window := make([]bool, 0, grace)
	return func(pr Progress) bool {
		window = append(window, pr.Reached)
		if len(window) > grace {
			window = window[1:]
		}
		if pr.Episode+1 < grace {
			return true
		}
		for _, ok := range window {
			if ok {
				return true
			}
		}
		return false
	}
}
