package netsim

// Tests for the chaos fault hooks: per-direction drop/corrupt injection,
// asymmetric degradation, and the per-pipe locked jitter generator under
// heavy concurrency (the -race tier's regression for the shared-RNG fix).

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

// TestPipeInjectDropIsAsymmetric: a drop-all fault on A→B silences that
// direction while B→A keeps delivering.
func TestPipeInjectDropIsAsymmetric(t *testing.T) {
	p := NewPipe(Loopback)
	defer p.Cut()
	p.Inject(true, func(data []byte) ([]byte, bool) { return nil, false })

	// B→A unaffected.
	go p.B.Write([]byte("pong"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(p.A, buf); err != nil {
		t.Fatalf("B→A delivery failed under an A→B fault: %v", err)
	}

	// A→B dropped.
	go p.A.Write([]byte("ping"))
	delivered := make(chan struct{})
	go func() {
		one := make([]byte, 1)
		if _, err := io.ReadFull(p.B, one); err == nil {
			close(delivered)
		}
	}()
	select {
	case <-delivered:
		t.Fatal("chunk delivered despite drop-all fault")
	case <-time.After(60 * time.Millisecond):
	}

	// Healing the direction restores delivery for new chunks.
	p.Inject(true, nil)
	go p.A.Write([]byte("again"))
	select {
	case <-delivered:
	case <-time.After(2 * time.Second):
		t.Fatal("delivery never resumed after healing the fault")
	}
}

// TestPipeInjectCorrupt: a corrupting fault delivers mangled bytes — the
// stream still flows, but its content is garbage, which is what forces
// the protocol layer above to fail the connection.
func TestPipeInjectCorrupt(t *testing.T) {
	p := NewPipe(Loopback)
	defer p.Cut()
	p.Inject(true, func(data []byte) ([]byte, bool) {
		out := append([]byte(nil), data...)
		for i := range out {
			out[i] ^= 0xFF
		}
		return out, true
	})
	msg := []byte("payload")
	go p.A.Write(msg)
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(p.B, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, msg) {
		t.Fatal("corrupting fault delivered the original bytes")
	}
	for i := range buf {
		if buf[i] != msg[i]^0xFF {
			t.Fatalf("byte %d = %#x, want %#x", i, buf[i], msg[i]^0xFF)
		}
	}
}

// TestPipeDegradeAsymmetric: extra latency applies to one direction only
// and heals back to the base link.
func TestPipeDegradeAsymmetric(t *testing.T) {
	const extra = 60 * time.Millisecond
	p := NewPipe(Loopback)
	defer p.Cut()
	p.Degrade(true, extra)

	oneWay := func(w, r io.ReadWriter) time.Duration {
		start := time.Now()
		go w.Write([]byte("x"))
		buf := make([]byte, 1)
		if _, err := io.ReadFull(r, buf); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	if d := oneWay(p.A, p.B); d < extra {
		t.Fatalf("degraded A→B delivered in %v, want >= %v", d, extra)
	}
	if d := oneWay(p.B, p.A); d > extra/2 {
		t.Fatalf("clean B→A delivered in %v; degradation leaked across directions", d)
	}
	p.Degrade(true, 0)
	if d := oneWay(p.A, p.B); d > extra/2 {
		t.Fatalf("healed A→B delivered in %v; degradation did not heal", d)
	}
}

// TestPipeJitterManyPipesConcurrent is the race regression for the jitter
// generator: many pipes with jitter enabled, both directions active at
// once, must be data-race free (each pipe owns one locked generator).
func TestPipeJitterManyPipesConcurrent(t *testing.T) {
	const pipes = 32
	var wg sync.WaitGroup
	for i := 0; i < pipes; i++ {
		p := NewPipe(Link{Latency: time.Millisecond, Jitter: 2 * time.Millisecond, Seed: int64(i + 1)})
		defer p.Cut()
		wg.Add(2)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				p.A.Write([]byte("a"))
			}
			buf := make([]byte, 8)
			io.ReadFull(p.A, buf)
		}()
		go func() {
			defer wg.Done()
			buf := make([]byte, 8)
			io.ReadFull(p.B, buf)
			for k := 0; k < 8; k++ {
				p.B.Write([]byte("b"))
			}
		}()
	}
	wg.Wait()
}

// TestPipeFaultDuringPauseAndCut: installing and firing faults around
// Pause/Cut must not deadlock or panic — the combination a chaos schedule
// routinely produces.
func TestPipeFaultDuringPauseAndCut(t *testing.T) {
	p := NewPipe(Link{Jitter: time.Millisecond, Seed: 7})
	p.Inject(true, func(data []byte) ([]byte, bool) { return data, len(data)%2 == 0 })
	p.Degrade(false, 5*time.Millisecond)
	p.Pause()
	go p.A.Write([]byte("xy"))
	go p.B.Write([]byte("z"))
	time.Sleep(10 * time.Millisecond)
	p.Resume()
	time.Sleep(10 * time.Millisecond)
	p.Pause()
	p.Cut() // must release everything held at the gate
	buf := make([]byte, 1)
	p.B.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := p.B.Read(buf); err == nil {
		// A delivered chunk may have landed before the cut; the second
		// read must fail.
		if _, err := p.B.Read(buf); err == nil {
			t.Fatal("reads keep succeeding after Cut")
		}
	}
}
