// Package netsim simulates the networks of the paper's evaluation: the
// Wi-Fi LAN of the personal-device experiment (§5.2), the France-wide VPN
// of the Grid5000 experiment (§5.3), and the Europe-wide WAN of the
// PlanetLab experiment (§5.4).
//
// NewPipe returns a pair of net.Conn endpoints joined by a link with
// configurable propagation latency, jitter, and bandwidth. Chunks written
// on one end are delivered on the other after the link delay, with
// pipelining preserved: a second chunk may be in flight while the first is
// still propagating, which is exactly the property that lets Pando hide
// latency by batching inputs (paper §5.5).
//
// The link can be Cut to simulate a sudden crash or loss of connectivity,
// the failure mode of the paper's crash-stop model (§2.3). Beyond the
// crash-stop primitive, a pipe supports the composable fault hooks the
// chaos harness (internal/chaos) drives: Pause/Resume freeze delivery (a
// transient stall or partition), Degrade adds extra one-way latency to a
// single direction (asymmetric congestion), and Inject installs a
// per-chunk FaultFunc that can drop or corrupt bytes in flight — on a
// reliable stream transport either manifests as stream corruption, which
// the protocol layer must treat exactly like a crash.
package netsim

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Link describes one direction-symmetric network link.
type Link struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) per chunk.
	Jitter time.Duration
	// Bandwidth in bytes per second; 0 means unlimited.
	Bandwidth int64
	// Seed makes jitter deterministic; 0 uses a fixed default.
	Seed int64
}

// Predefined links approximating the paper's three deployment scenarios.
// The absolute values are scaled down so experiments complete quickly; the
// ratios between scenarios match the paper's settings (LAN Wi-Fi vs
// continental VPN vs Europe-wide WAN).
var (
	// LAN approximates a home Wi-Fi network.
	LAN = Link{Latency: 2 * time.Millisecond, Jitter: time.Millisecond, Bandwidth: 12 << 20}
	// VPN approximates the Grid5000 VPN reached through Wi-Fi + INRIA's
	// network (France-wide).
	VPN = Link{Latency: 10 * time.Millisecond, Jitter: 2 * time.Millisecond, Bandwidth: 8 << 20}
	// WAN approximates PlanetLab EU nodes across Europe.
	WAN = Link{Latency: 40 * time.Millisecond, Jitter: 10 * time.Millisecond, Bandwidth: 4 << 20}
	// Loopback is an ideal link for unit tests.
	Loopback = Link{}
)

// ErrLinkCut is reported (wrapped in net.OpError-style read errors) when a
// pipe is severed with Cut.
var ErrLinkCut = errors.New("netsim: link cut")

// FaultFunc inspects one chunk about to enter the link. It returns the
// (possibly modified) bytes to deliver, or ok=false to drop the chunk
// entirely. Dropping or corrupting bytes of a reliable stream garbles
// every following frame, so the receiving protocol layer is expected to
// fail the connection — which is precisely the fault model chaos tests
// want: packet-level loss that surfaces as a crash-stop failure.
type FaultFunc func(data []byte) (out []byte, ok bool)

// Directions of a pipe, for the asymmetric fault hooks.
const (
	dirAtoB = 0
	dirBtoA = 1
)

// Pipe is a bidirectional in-memory connection with link simulation.
type Pipe struct {
	// A and B are the two endpoints.
	A, B net.Conn

	mu     sync.Mutex
	inner  []net.Conn
	cut    bool
	closed chan struct{}
	frozen chan struct{} // non-nil while the link is paused

	// rng is the pipe's jitter source: one seeded generator per pipe,
	// lock-protected because both relay directions draw from it. (A
	// process-wide source would be a contention point — and a race
	// magnet — with thousands of simulated pipes.)
	rngMu sync.Mutex
	rng   *rand.Rand

	// Fault state, per direction, changeable at run time.
	faultMu sync.Mutex
	fault   [2]FaultFunc
	extra   [2]time.Duration

	// Bytes carried per direction, counted as chunks enter the link —
	// what a bandwidth meter on the wire would see. The compression
	// bench reads these to compare bytes-on-wire across formats.
	bytes [2]atomic.Int64
}

// chunk is a unit of data in flight on the link.
type chunk struct {
	data      []byte
	deliverAt time.Time
	// buf, when non-nil, is the chunkPool buffer backing data; the
	// deliverer returns it to the pool after the write. Chunks that
	// passed through a fault hook carry no buf: the hook may have
	// swapped or retained the slice.
	buf *[]byte
}

// chunkPool recycles relay chunk buffers. Every chunk is at most
// relayBufSize, so one size class covers all of them; without the pool a
// busy fleet allocates (and the runtime zeroes) one fresh buffer per
// write, which at tens of thousands of simulated pipes is the dominant
// GC load of the simulation rather than of the system under test.
var chunkPool = sync.Pool{
	New: func() any { b := make([]byte, relayBufSize); return &b },
}

const relayBufSize = 32 * 1024

// NewPipe creates a connected pair of endpoints joined by link l. The
// pipe's jitter generator is seeded from l.Seed (zero selects a fixed
// default of 1, so unseeded pipes stay deterministic); Listener.Dial
// threads a distinct per-connection seed through here.
//
//pando:deterministic
func NewPipe(l Link) *Pipe {
	aUser, aInner := net.Pipe()
	bUser, bInner := net.Pipe()
	p := &Pipe{
		A:      aUser,
		B:      bUser,
		inner:  []net.Conn{aInner, bInner},
		closed: make(chan struct{}),
	}
	seed := l.Seed
	if seed == 0 {
		seed = 1
	}
	p.rng = rand.New(rand.NewSource(seed))
	go p.relay(aInner, bInner, l, dirAtoB)
	go p.relay(bInner, aInner, l, dirBtoA)
	return p
}

// jitter draws one delay in [0, j) from the pipe's locked generator.
//
//pando:deterministic
func (p *Pipe) jitter(j time.Duration) time.Duration {
	if j <= 0 {
		return 0
	}
	p.rngMu.Lock()
	defer p.rngMu.Unlock()
	return time.Duration(p.rng.Int63n(int64(j)))
}

// Inject installs f as the fault hook for one direction (A→B when aToB,
// B→A otherwise); nil heals the direction. Each chunk read off the source
// endpoint passes through f before it is queued on the link.
func (p *Pipe) Inject(aToB bool, f FaultFunc) {
	p.faultMu.Lock()
	defer p.faultMu.Unlock()
	p.fault[dirIdx(aToB)] = f
}

// Degrade adds extra one-way propagation delay to a single direction,
// modelling asymmetric link degradation (a congested uplink under a clean
// downlink); zero heals the direction.
func (p *Pipe) Degrade(aToB bool, extra time.Duration) {
	p.faultMu.Lock()
	defer p.faultMu.Unlock()
	p.extra[dirIdx(aToB)] = extra
}

func dirIdx(aToB bool) int {
	if aToB {
		return dirAtoB
	}
	return dirBtoA
}

// mangle applies the direction's current fault state to one chunk. The
// clean return reports whether the bytes passed through untouched by any
// hook (and so may keep riding a pooled buffer).
func (p *Pipe) mangle(dir int, data []byte) (out []byte, ok, clean bool, extra time.Duration) {
	p.faultMu.Lock()
	f := p.fault[dir]
	extra = p.extra[dir]
	p.faultMu.Unlock()
	if f == nil {
		return data, true, true, extra
	}
	out, ok = f(data)
	return out, ok, false, extra
}

// gate blocks while the link is paused.
func (p *Pipe) gate() {
	p.mu.Lock()
	frozen := p.frozen
	p.mu.Unlock()
	if frozen != nil {
		select {
		case <-frozen:
		case <-p.closed:
		}
	}
}

// Pause freezes the link: bytes already in flight and new bytes are held
// until Resume. It models a transient network stall (a Wi-Fi dropout, a
// suspended laptop) — the partial-synchrony scenario of the paper's §2.3:
// a stall shorter than the heartbeat timeout must not be treated as a
// crash.
func (p *Pipe) Pause() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.frozen == nil {
		p.frozen = make(chan struct{})
	}
}

// Resume releases a paused link; held bytes are delivered immediately.
func (p *Pipe) Resume() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.frozen != nil {
		close(p.frozen)
		p.frozen = nil
	}
}

// Cut severs the link abruptly in both directions: all pending and future
// reads and writes on both endpoints fail. This models a browser tab
// closing or connectivity loss without a goodbye.
func (p *Pipe) Cut() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cut {
		return
	}
	p.cut = true
	close(p.closed)
	for _, c := range p.inner {
		c.Close()
	}
	p.A.Close()
	p.B.Close()
}

// relay moves chunks from src to dst applying the link delay model and
// the direction's fault state. The gate blocks while the link is paused.
// The delay/loss/jitter decisions are seed-determined; only the mapping
// of those decisions onto delivery instants touches the wall clock (each
// touch annotated below).
//
//pando:deterministic
func (p *Pipe) relay(src, dst net.Conn, l Link, dir int) {
	closed := p.closed
	// The in-flight queue bounds how much data the link buffers beyond
	// what the endpoints' own pipes hold; past it the writer blocks, which
	// is ordinary network backpressure. Keep it modest: chunk headers
	// carry pointers, so with tens of thousands of simulated pipes alive a
	// deep preallocated queue per relay direction costs gigabytes of
	// zeroed, GC-scanned channel buffer that dwarfs the traffic itself.
	inFlight := make(chan chunk, 256)

	// Deliverer: writes chunks at their delivery time, in order.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := range inFlight {
			//pando:nondeterministic waits out a delivery instant already stamped from the seeded delay model
			d := time.Until(c.deliverAt)
			if d > 0 {
				timer := time.NewTimer(d)
				select {
				case <-timer.C:
				case <-closed:
					timer.Stop()
					return
				}
			}
			p.gate()
			_, err := dst.Write(c.data)
			if c.buf != nil {
				chunkPool.Put(c.buf)
			}
			if err != nil {
				return
			}
		}
		// Source ended cleanly; propagate EOF.
		dst.Close()
	}()

	// Reader: stamps each chunk with its delivery time at read time so
	// later chunks propagate while earlier ones are still in flight.
	// Each read lands directly in a pooled chunk buffer — no per-chunk
	// allocation or copy on the clean path; the deliverer recycles the
	// buffer once the bytes are written out the far end.
	var busyUntil time.Time
	for {
		bp := chunkPool.Get().(*[]byte)
		n, err := src.Read(*bp)
		if n > 0 {
			p.bytes[dir].Add(int64(n))
			//pando:nondeterministic stamping delivery instants: the delay amounts are seeded, only their anchor is the wall clock
			now := time.Now()
			start := now
			if busyUntil.After(now) {
				start = busyUntil
			}
			var tx time.Duration
			if l.Bandwidth > 0 {
				tx = time.Duration(float64(n) / float64(l.Bandwidth) * float64(time.Second))
			}
			// Transmission occupies the link whether or not the chunk is
			// then lost — a dropped packet still burned the bandwidth.
			busyUntil = start.Add(tx)
			data, deliver, clean, extra := p.mangle(dir, (*bp)[:n])
			owner := bp
			if !clean {
				// A fault hook saw (and may retain or have replaced) the
				// buffer; let the GC have it rather than risk recycling
				// bytes still aliased somewhere.
				owner = nil
			}
			if deliver {
				delay := l.Latency + extra + p.jitter(l.Jitter)
				select {
				case inFlight <- chunk{data: data, deliverAt: busyUntil.Add(delay), buf: owner}:
				case <-closed:
					close(inFlight)
					wg.Wait()
					return
				}
			} else if owner != nil {
				chunkPool.Put(owner)
			}
		} else {
			chunkPool.Put(bp)
		}
		if err != nil {
			close(inFlight)
			wg.Wait()
			return
		}
	}
}

// Bytes reports how many bytes have entered the link in each direction
// (A→B, B→A) since the pipe was created. Dropped chunks still count:
// they burned the simulated bandwidth.
func (p *Pipe) Bytes() (aToB, bToA int64) {
	return p.bytes[dirAtoB].Load(), p.bytes[dirBtoA].Load()
}

// Listener is an in-memory listener whose accepted connections go through
// simulated links, letting tests and benchmarks stand up a full
// master/volunteer topology without real sockets.
type Listener struct {
	link    Link
	mu      sync.Mutex
	queue   chan net.Conn
	closed  bool
	pipes   []*Pipe
	addr    simAddr
	nextSeq int64
}

type simAddr string

func (a simAddr) Network() string { return "netsim" }
func (a simAddr) String() string  { return string(a) }

// NewListener creates a listener whose connections traverse link l.
func NewListener(name string, l Link) *Listener {
	return &Listener{
		link:  l,
		queue: make(chan net.Conn, 64),
		addr:  simAddr(name),
	}
}

// Dial connects to the listener through a fresh simulated link and returns
// the client endpoint together with the pipe (for fault injection).
func (ln *Listener) Dial() (net.Conn, *Pipe, error) {
	ln.mu.Lock()
	if ln.closed {
		ln.mu.Unlock()
		return nil, nil, errors.New("netsim: listener closed")
	}
	link := ln.link
	ln.nextSeq++
	link.Seed = ln.nextSeq * 7919
	p := NewPipe(link)
	ln.pipes = append(ln.pipes, p)
	ln.mu.Unlock()

	select {
	case ln.queue <- p.B:
		return p.A, p, nil
	default:
		p.Cut()
		return nil, nil, errors.New("netsim: accept queue full")
	}
}

// Accept waits for the next inbound connection.
func (ln *Listener) Accept() (net.Conn, error) {
	c, ok := <-ln.queue
	if !ok {
		return nil, errors.New("netsim: listener closed")
	}
	return c, nil
}

// Close shuts the listener down and severs every connection it created.
func (ln *Listener) Close() error {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if ln.closed {
		return nil
	}
	ln.closed = true
	close(ln.queue)
	for _, p := range ln.pipes {
		p.Cut()
	}
	return nil
}

// Addr returns the listener's simulated address.
func (ln *Listener) Addr() net.Addr { return ln.addr }

// Bytes sums the per-direction byte counters of every connection this
// listener has created: dialer→acceptor and acceptor→dialer totals. For
// a master listener this is the fleet's aggregate uplink and downlink
// bytes-on-wire.
func (ln *Listener) Bytes() (in, out int64) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	for _, p := range ln.pipes {
		a, b := p.Bytes()
		in += a
		out += b
	}
	return in, out
}
