// Package netsim simulates the networks of the paper's evaluation: the
// Wi-Fi LAN of the personal-device experiment (§5.2), the France-wide VPN
// of the Grid5000 experiment (§5.3), and the Europe-wide WAN of the
// PlanetLab experiment (§5.4).
//
// NewPipe returns a pair of net.Conn endpoints joined by a link with
// configurable propagation latency, jitter, and bandwidth. Chunks written
// on one end are delivered on the other after the link delay, with
// pipelining preserved: a second chunk may be in flight while the first is
// still propagating, which is exactly the property that lets Pando hide
// latency by batching inputs (paper §5.5).
//
// The link can be Cut to simulate a sudden crash or loss of connectivity,
// the failure mode of the paper's crash-stop model (§2.3).
package netsim

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Link describes one direction-symmetric network link.
type Link struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) per chunk.
	Jitter time.Duration
	// Bandwidth in bytes per second; 0 means unlimited.
	Bandwidth int64
	// Seed makes jitter deterministic; 0 uses a fixed default.
	Seed int64
}

// Predefined links approximating the paper's three deployment scenarios.
// The absolute values are scaled down so experiments complete quickly; the
// ratios between scenarios match the paper's settings (LAN Wi-Fi vs
// continental VPN vs Europe-wide WAN).
var (
	// LAN approximates a home Wi-Fi network.
	LAN = Link{Latency: 2 * time.Millisecond, Jitter: time.Millisecond, Bandwidth: 12 << 20}
	// VPN approximates the Grid5000 VPN reached through Wi-Fi + INRIA's
	// network (France-wide).
	VPN = Link{Latency: 10 * time.Millisecond, Jitter: 2 * time.Millisecond, Bandwidth: 8 << 20}
	// WAN approximates PlanetLab EU nodes across Europe.
	WAN = Link{Latency: 40 * time.Millisecond, Jitter: 10 * time.Millisecond, Bandwidth: 4 << 20}
	// Loopback is an ideal link for unit tests.
	Loopback = Link{}
)

// ErrLinkCut is reported (wrapped in net.OpError-style read errors) when a
// pipe is severed with Cut.
var ErrLinkCut = errors.New("netsim: link cut")

// Pipe is a bidirectional in-memory connection with link simulation.
type Pipe struct {
	// A and B are the two endpoints.
	A, B net.Conn

	mu     sync.Mutex
	inner  []net.Conn
	cut    bool
	closed chan struct{}
	frozen chan struct{} // non-nil while the link is paused
}

// chunk is a unit of data in flight on the link.
type chunk struct {
	data      []byte
	deliverAt time.Time
}

// NewPipe creates a connected pair of endpoints joined by link l.
func NewPipe(l Link) *Pipe {
	aUser, aInner := net.Pipe()
	bUser, bInner := net.Pipe()
	p := &Pipe{
		A:      aUser,
		B:      bUser,
		inner:  []net.Conn{aInner, bInner},
		closed: make(chan struct{}),
	}
	seed := l.Seed
	if seed == 0 {
		seed = 1
	}
	go relay(aInner, bInner, l, rand.New(rand.NewSource(seed)), p.closed, p.gate)
	go relay(bInner, aInner, l, rand.New(rand.NewSource(seed+1)), p.closed, p.gate)
	return p
}

// gate blocks while the link is paused.
func (p *Pipe) gate() {
	p.mu.Lock()
	frozen := p.frozen
	p.mu.Unlock()
	if frozen != nil {
		select {
		case <-frozen:
		case <-p.closed:
		}
	}
}

// Pause freezes the link: bytes already in flight and new bytes are held
// until Resume. It models a transient network stall (a Wi-Fi dropout, a
// suspended laptop) — the partial-synchrony scenario of the paper's §2.3:
// a stall shorter than the heartbeat timeout must not be treated as a
// crash.
func (p *Pipe) Pause() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.frozen == nil {
		p.frozen = make(chan struct{})
	}
}

// Resume releases a paused link; held bytes are delivered immediately.
func (p *Pipe) Resume() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.frozen != nil {
		close(p.frozen)
		p.frozen = nil
	}
}

// Cut severs the link abruptly in both directions: all pending and future
// reads and writes on both endpoints fail. This models a browser tab
// closing or connectivity loss without a goodbye.
func (p *Pipe) Cut() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cut {
		return
	}
	p.cut = true
	close(p.closed)
	for _, c := range p.inner {
		c.Close()
	}
	p.A.Close()
	p.B.Close()
}

// relay moves chunks from src to dst applying the link delay model. The
// gate callback blocks while the link is paused.
func relay(src, dst net.Conn, l Link, rng *rand.Rand, closed chan struct{}, gate func()) {
	inFlight := make(chan chunk, 4096)

	// Deliverer: writes chunks at their delivery time, in order.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := range inFlight {
			d := time.Until(c.deliverAt)
			if d > 0 {
				timer := time.NewTimer(d)
				select {
				case <-timer.C:
				case <-closed:
					timer.Stop()
					return
				}
			}
			gate()
			if _, err := dst.Write(c.data); err != nil {
				return
			}
		}
		// Source ended cleanly; propagate EOF.
		dst.Close()
	}()

	// Reader: stamps each chunk with its delivery time at read time so
	// later chunks propagate while earlier ones are still in flight.
	var busyUntil time.Time
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			now := time.Now()
			start := now
			if busyUntil.After(now) {
				start = busyUntil
			}
			var tx time.Duration
			if l.Bandwidth > 0 {
				tx = time.Duration(float64(n) / float64(l.Bandwidth) * float64(time.Second))
			}
			busyUntil = start.Add(tx)
			delay := l.Latency
			if l.Jitter > 0 {
				delay += time.Duration(rng.Int63n(int64(l.Jitter)))
			}
			data := make([]byte, n)
			copy(data, buf[:n])
			select {
			case inFlight <- chunk{data: data, deliverAt: busyUntil.Add(delay)}:
			case <-closed:
				close(inFlight)
				wg.Wait()
				return
			}
		}
		if err != nil {
			close(inFlight)
			wg.Wait()
			return
		}
	}
}

// Listener is an in-memory listener whose accepted connections go through
// simulated links, letting tests and benchmarks stand up a full
// master/volunteer topology without real sockets.
type Listener struct {
	link    Link
	mu      sync.Mutex
	queue   chan net.Conn
	closed  bool
	pipes   []*Pipe
	addr    simAddr
	nextSeq int64
}

type simAddr string

func (a simAddr) Network() string { return "netsim" }
func (a simAddr) String() string  { return string(a) }

// NewListener creates a listener whose connections traverse link l.
func NewListener(name string, l Link) *Listener {
	return &Listener{
		link:  l,
		queue: make(chan net.Conn, 64),
		addr:  simAddr(name),
	}
}

// Dial connects to the listener through a fresh simulated link and returns
// the client endpoint together with the pipe (for fault injection).
func (ln *Listener) Dial() (net.Conn, *Pipe, error) {
	ln.mu.Lock()
	if ln.closed {
		ln.mu.Unlock()
		return nil, nil, errors.New("netsim: listener closed")
	}
	link := ln.link
	ln.nextSeq++
	link.Seed = ln.nextSeq * 7919
	p := NewPipe(link)
	ln.pipes = append(ln.pipes, p)
	ln.mu.Unlock()

	select {
	case ln.queue <- p.B:
		return p.A, p, nil
	default:
		p.Cut()
		return nil, nil, errors.New("netsim: accept queue full")
	}
}

// Accept waits for the next inbound connection.
func (ln *Listener) Accept() (net.Conn, error) {
	c, ok := <-ln.queue
	if !ok {
		return nil, errors.New("netsim: listener closed")
	}
	return c, nil
}

// Close shuts the listener down and severs every connection it created.
func (ln *Listener) Close() error {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if ln.closed {
		return nil
	}
	ln.closed = true
	close(ln.queue)
	for _, p := range ln.pipes {
		p.Cut()
	}
	return nil
}

// Addr returns the listener's simulated address.
func (ln *Listener) Addr() net.Addr { return ln.addr }
