package netsim

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

func TestPipeBasicTransfer(t *testing.T) {
	p := NewPipe(Loopback)
	defer p.Cut()
	msg := []byte("hello pando")
	go func() {
		if _, err := p.A.Write(msg); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(p.B, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q, want %q", buf, msg)
	}
}

func TestPipeBidirectional(t *testing.T) {
	p := NewPipe(Loopback)
	defer p.Cut()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.A.Write([]byte("ping"))
		buf := make([]byte, 4)
		io.ReadFull(p.A, buf)
		if string(buf) != "pong" {
			t.Errorf("A got %q", buf)
		}
	}()
	go func() {
		defer wg.Done()
		buf := make([]byte, 4)
		io.ReadFull(p.B, buf)
		if string(buf) != "ping" {
			t.Errorf("B got %q", buf)
		}
		p.B.Write([]byte("pong"))
	}()
	wg.Wait()
}

func TestPipeLatencyApplied(t *testing.T) {
	lat := 30 * time.Millisecond
	p := NewPipe(Link{Latency: lat})
	defer p.Cut()
	start := time.Now()
	go p.A.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(p.B, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < lat {
		t.Fatalf("delivery took %v, want >= %v", elapsed, lat)
	}
	if elapsed > 10*lat {
		t.Fatalf("delivery took %v, far more than latency %v", elapsed, lat)
	}
}

func TestPipePipeliningHidesLatency(t *testing.T) {
	// Two chunks sent back-to-back must arrive ~one latency apart from
	// the send time, not two: the link pipelines (this is the property
	// that batching exploits, paper §5.5).
	lat := 40 * time.Millisecond
	p := NewPipe(Link{Latency: lat})
	defer p.Cut()
	start := time.Now()
	go func() {
		p.A.Write([]byte("a"))
		p.A.Write([]byte("b"))
	}()
	buf := make([]byte, 1)
	io.ReadFull(p.B, buf)
	io.ReadFull(p.B, buf)
	elapsed := time.Since(start)
	if elapsed > lat+lat/2 {
		t.Fatalf("two chunks took %v; pipelining should deliver both in ~%v", elapsed, lat)
	}
}

func TestPipeBandwidthPacing(t *testing.T) {
	// 64 KiB over a 256 KiB/s link must take at least ~250ms.
	p := NewPipe(Link{Bandwidth: 256 << 10})
	defer p.Cut()
	payload := make([]byte, 64<<10)
	start := time.Now()
	go func() {
		p.A.Write(payload)
	}()
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(p.B, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 200*time.Millisecond {
		t.Fatalf("64KiB over 256KiB/s took %v, want >= ~250ms", elapsed)
	}
}

func TestPipeCutFailsBothEnds(t *testing.T) {
	p := NewPipe(Loopback)
	done := make(chan error, 2)
	go func() {
		buf := make([]byte, 1)
		_, err := p.A.Read(buf)
		done <- err
	}()
	go func() {
		buf := make([]byte, 1)
		_, err := p.B.Read(buf)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	p.Cut()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("read succeeded after Cut")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("read did not fail after Cut")
		}
	}
}

func TestPipeCloseOneEndPropagatesEOF(t *testing.T) {
	p := NewPipe(Loopback)
	defer p.Cut()
	p.A.Close()
	buf := make([]byte, 1)
	deadline := time.Now().Add(2 * time.Second)
	p.B.SetReadDeadline(deadline)
	if _, err := p.B.Read(buf); err == nil {
		t.Fatal("expected EOF after remote close")
	}
}

func TestListenerAcceptDial(t *testing.T) {
	ln := NewListener("master", Loopback)
	defer ln.Close()

	type acceptResult struct {
		c   io.ReadWriteCloser
		err error
	}
	acc := make(chan acceptResult, 1)
	go func() {
		c, err := ln.Accept()
		acc <- acceptResult{c, err}
	}()

	client, _, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	ar := <-acc
	if ar.err != nil {
		t.Fatal(ar.err)
	}
	go client.Write([]byte("hi"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(ar.c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hi" {
		t.Fatalf("got %q", buf)
	}
}

func TestListenerCloseSeversConnections(t *testing.T) {
	ln := NewListener("master", Loopback)
	go ln.Accept()
	client, _, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()
	buf := make([]byte, 1)
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(buf); err == nil {
		t.Fatal("read succeeded after listener close")
	}
	if _, _, err := ln.Dial(); err == nil {
		t.Fatal("dial succeeded after close")
	}
}

func TestPipeJitterDeterministic(t *testing.T) {
	// Same seed, same jitter sequence: two pipes with identical config
	// deliver with identical delays (within scheduling noise this just
	// checks both complete; determinism of rng is assumed from math/rand).
	for _, seed := range []int64{1, 2} {
		p := NewPipe(Link{Latency: time.Millisecond, Jitter: 2 * time.Millisecond, Seed: seed})
		go p.A.Write([]byte("x"))
		buf := make([]byte, 1)
		if _, err := io.ReadFull(p.B, buf); err != nil {
			t.Fatal(err)
		}
		p.Cut()
	}
}

func TestPipeLargeTransfer(t *testing.T) {
	p := NewPipe(Link{Latency: time.Millisecond})
	defer p.Cut()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	go func() {
		p.A.Write(payload)
		p.A.Close()
	}()
	got, err := io.ReadAll(p.B)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestPipePauseResumeHoldsDelivery(t *testing.T) {
	p := NewPipe(Loopback)
	defer p.Cut()
	p.Pause()
	go p.A.Write([]byte("x"))
	delivered := make(chan struct{})
	go func() {
		buf := make([]byte, 1)
		io.ReadFull(p.B, buf)
		close(delivered)
	}()
	select {
	case <-delivered:
		t.Fatal("byte delivered while link paused")
	case <-time.After(50 * time.Millisecond):
	}
	p.Resume()
	select {
	case <-delivered:
	case <-time.After(2 * time.Second):
		t.Fatal("byte never delivered after resume")
	}
}

func TestPipePauseIdempotent(t *testing.T) {
	p := NewPipe(Loopback)
	defer p.Cut()
	p.Pause()
	p.Pause() // second pause is a no-op
	p.Resume()
	p.Resume() // second resume is a no-op
	go p.A.Write([]byte("y"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(p.B, buf); err != nil {
		t.Fatal(err)
	}
}

func TestPipeCutWhilePaused(t *testing.T) {
	p := NewPipe(Loopback)
	p.Pause()
	go p.A.Write([]byte("z"))
	time.Sleep(10 * time.Millisecond)
	p.Cut() // must not deadlock against the held delivery
	buf := make([]byte, 1)
	p.B.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := p.B.Read(buf); err == nil {
		t.Fatal("read succeeded after cut")
	}
}
