package transport

import (
	"slices"
	"sync"
	"testing"
	"time"

	"pando/internal/netsim"
	"pando/internal/proto"
)

// TestSignalServerOnLeavePrunesPeers: OnLeave mirrors OnJoin — it fires
// when a registered peer's signalling connection ends, after the peer
// has been pruned from Peers().
func TestSignalServerOnLeavePrunesPeers(t *testing.T) {
	ln := netsim.NewListener("signal-leave", netsim.Loopback)
	srv := NewSignalServer()
	var mu sync.Mutex
	var left []string
	srv.OnLeave = func(id string) {
		mu.Lock()
		left = append(left, id)
		mu.Unlock()
	}
	go srv.Serve(ln, Config{HeartbeatInterval: -1})
	defer srv.Close()

	dial := func() Channel {
		c, _, err := ln.Dial()
		if err != nil {
			t.Fatal(err)
		}
		return NewWSock(c, Config{HeartbeatInterval: -1})
	}
	alice := dial()
	bob := dial()
	if err := JoinSignal(alice, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := JoinSignal(bob, "bob"); err != nil {
		t.Fatal(err)
	}
	if peers := srv.Peers(); len(peers) != 2 {
		t.Fatalf("peers = %v, want both registered", peers)
	}

	// Alice leaves gracefully; bob crashes (connection severed).
	_ = alice.Send(&proto.Message{Type: proto.TypeGoodbye})
	bob.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		peers := srv.Peers()
		mu.Lock()
		gone := len(left)
		mu.Unlock()
		if len(peers) == 0 && gone == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("departed peers not pruned: peers=%v onLeave=%v", peers, left)
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if !slices.Contains(left, "alice") || !slices.Contains(left, "bob") {
		t.Fatalf("OnLeave calls = %v, want alice and bob", left)
	}
}

// TestSignalServerPoolAssignsMaster: in pool mode an offer with an empty
// destination is routed to a registered master — preferring one whose
// advertised functions intersect the volunteer's — and the volunteer
// learns the assignment from the answer's sender.
func TestSignalServerPoolAssignsMaster(t *testing.T) {
	ln := netsim.NewListener("signal-pool", netsim.Loopback)
	srv := NewSignalServer()
	srv.EnablePool()
	go srv.Serve(ln, Config{HeartbeatInterval: -1})
	defer srv.Close()

	dial := func() Channel {
		c, _, err := ln.Dial()
		if err != nil {
			t.Fatal(err)
		}
		return NewWSock(c, Config{HeartbeatInterval: -1})
	}
	renderMaster := dial()
	if err := JoinSignalServing(renderMaster, "render-master", []string{"render"}); err != nil {
		t.Fatal(err)
	}
	collatzMaster := dial()
	if err := JoinSignalServing(collatzMaster, "collatz-master", []string{"collatz"}); err != nil {
		t.Fatal(err)
	}

	vol := dial()
	if err := JoinSignal(vol, "device"); err != nil {
		t.Fatal(err)
	}
	// Anonymous offer from a volunteer that serves only collatz: the
	// relay must pick the collatz master, not round-robin onto render.
	if err := vol.Send(&proto.Message{Type: proto.TypeOffer, Functions: []string{"collatz"}}); err != nil {
		t.Fatal(err)
	}
	m, err := collatzMaster.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != proto.TypeOffer || m.Peer != "device" {
		t.Fatalf("assigned offer = %+v", m)
	}

	// A wildcard volunteer is assigned round-robin to some master.
	vol2 := dial()
	if err := JoinSignal(vol2, "device-2"); err != nil {
		t.Fatal(err)
	}
	if err := vol2.Send(&proto.Message{Type: proto.TypeOffer, Functions: []string{"*"}}); err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 2)
	go func() {
		if m, err := renderMaster.Recv(); err == nil && m.Type == proto.TypeOffer {
			got <- "render-master"
		}
	}()
	go func() {
		if m, err := collatzMaster.Recv(); err == nil && m.Type == proto.TypeOffer {
			got <- "collatz-master"
		}
	}()
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("wildcard offer was never assigned to a master")
	}
}

// TestSignalServerNoPoolRejectsAnonymousOffer: without pool mode an
// empty destination stays an error, the pre-pool behavior.
func TestSignalServerNoPoolRejectsAnonymousOffer(t *testing.T) {
	ln := netsim.NewListener("signal-nopool", netsim.Loopback)
	srv := NewSignalServer()
	go srv.Serve(ln, Config{HeartbeatInterval: -1})
	defer srv.Close()

	c, _, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	vol := NewWSock(c, Config{HeartbeatInterval: -1})
	if err := JoinSignal(vol, "device"); err != nil {
		t.Fatal(err)
	}
	if err := vol.Send(&proto.Message{Type: proto.TypeOffer}); err != nil {
		t.Fatal(err)
	}
	m, err := vol.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != proto.TypeError {
		t.Fatalf("reply = %+v, want error", m)
	}
}
