package transport

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"pando/internal/proto"
)

// WSock is the WebSocket-like channel: proto frames over a stream
// connection, with ping/pong heartbeats and deadline-based disconnection
// detection. It reproduces the two properties of RFC 6455 that Pando
// depends on — ordered reliable message delivery and heartbeat-based
// failure suspicion (paper §2.4.1).
type WSock struct {
	conn net.Conn
	cfg  Config

	wmu sync.Mutex // serializes frame writes

	recvq chan *proto.Message

	mu     sync.Mutex
	wire   proto.WireFormat // outgoing frame format (negotiated)
	err    error
	closed bool
	done   chan struct{}
}

var _ Channel = (*WSock)(nil)

// NewWSock wraps conn into a heartbeat-monitored message channel and
// starts its read and ping loops.
func NewWSock(conn net.Conn, cfg Config) *WSock {
	w := &WSock{
		conn:  conn,
		cfg:   cfg,
		wire:  proto.V1,
		recvq: make(chan *proto.Message, 64),
		done:  make(chan struct{}),
	}
	go w.readLoop()
	if iv := cfg.interval(); iv > 0 {
		go w.pingLoop(iv)
	}
	return w
}

// Send transmits one message in the currently negotiated wire format.
func (w *WSock) Send(m *proto.Message) error {
	w.mu.Lock()
	if w.closed {
		err := w.err
		w.mu.Unlock()
		if err == nil {
			err = ErrChannelClosed
		}
		return err
	}
	wire := w.wire
	w.mu.Unlock()

	w.wmu.Lock()
	defer w.wmu.Unlock()
	if to := w.cfg.timeout(); to > 0 {
		_ = w.conn.SetWriteDeadline(time.Now().Add(to))
	}
	if err := wire.WriteFrame(w.conn, m); err != nil {
		w.fail(fmt.Errorf("transport: send: %w", err))
		return err
	}
	return nil
}

// SendBatch transmits several messages as a single write: the frames are
// encoded back to back into one arena buffer and handed to the kernel in
// one syscall, amortizing per-frame write overhead across the batch (the
// vectored-write half of the zero-alloc hot path; the coalescing duplex
// decides what lands in a batch). The batch occupies the write lock once,
// so it is atomic with respect to concurrent Sends, and frame order is
// preserved.
func (w *WSock) SendBatch(ms []*proto.Message) error {
	if len(ms) == 0 {
		return nil
	}
	if len(ms) == 1 {
		return w.Send(ms[0])
	}
	w.mu.Lock()
	if w.closed {
		err := w.err
		w.mu.Unlock()
		if err == nil {
			err = ErrChannelClosed
		}
		return err
	}
	wire := w.wire
	w.mu.Unlock()

	size := 0
	for _, m := range ms {
		size += len(m.Data) + 160
	}
	buf := proto.GetBuf(size)
	var err error
	for _, m := range ms {
		if buf, err = proto.AppendFrame(buf, wire, m); err != nil {
			proto.PutBuf(buf)
			return err
		}
	}

	w.wmu.Lock()
	defer w.wmu.Unlock()
	if to := w.cfg.timeout(); to > 0 {
		_ = w.conn.SetWriteDeadline(time.Now().Add(to))
	}
	_, err = w.conn.Write(buf)
	proto.PutBuf(buf)
	if err != nil {
		err = fmt.Errorf("transport: send batch: %w", err)
		w.fail(err)
		return err
	}
	return nil
}

// Wire reports the outgoing frame format.
func (w *WSock) Wire() proto.WireFormat {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.wire
}

// SetWire switches outgoing frames to wf. Reception always sniffs both
// formats, so the switch needs no coordination with the peer beyond the
// handshake that selected wf.
func (w *WSock) SetWire(wf proto.WireFormat) {
	if wf == nil {
		return
	}
	w.mu.Lock()
	w.wire = wf
	w.mu.Unlock()
}

// Recv returns the next non-heartbeat message.
func (w *WSock) Recv() (*proto.Message, error) {
	select {
	case m, ok := <-w.recvq:
		if !ok {
			return nil, w.Err()
		}
		return m, nil
	case <-w.done:
		// Drain anything queued before the failure.
		select {
		case m, ok := <-w.recvq:
			if ok {
				return m, nil
			}
		default:
		}
		return nil, w.Err()
	}
}

// Err returns the terminal error of the channel, if any.
func (w *WSock) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return ErrChannelClosed
}

// Close shuts the channel down gracefully.
func (w *WSock) Close() error {
	w.fail(ErrChannelClosed)
	return nil
}

// RemoteAddr describes the peer.
func (w *WSock) RemoteAddr() string {
	if a := w.conn.RemoteAddr(); a != nil {
		return a.String()
	}
	return "unknown"
}

func (w *WSock) fail(err error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.err = err
	close(w.done)
	w.mu.Unlock()
	w.conn.Close()
}

func (w *WSock) readLoop() {
	defer close(w.recvq)
	for {
		if to := w.cfg.timeout(); to > 0 {
			_ = w.conn.SetReadDeadline(time.Now().Add(to))
		}
		m, err := proto.ReadFrame(w.conn)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() || errors.Is(err, os.ErrDeadlineExceeded) {
				err = ErrHeartbeatTimeout
			}
			w.fail(err)
			return
		}
		switch m.Type {
		case proto.TypePing:
			// Answer immediately; receiving anything also proves
			// liveness, so no extra bookkeeping is needed.
			proto.Release(m)
			_ = w.Send(&proto.Message{Type: proto.TypePong})
		case proto.TypePong:
			// Liveness proven by reception itself.
			proto.Release(m)
		default:
			select {
			case w.recvq <- m:
			case <-w.done:
				// Shutdown won the race: the frame never reaches a
				// consumer, so it goes back to the arena here.
				proto.Release(m)
				return
			}
		}
	}
}

func (w *WSock) pingLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := w.Send(&proto.Message{Type: proto.TypePing}); err != nil {
				return
			}
		case <-w.done:
			return
		}
	}
}
