package transport

import (
	"sync"

	"pando/internal/proto"
	"pando/internal/pullstream"
)

// This file implements send coalescing, the syscall-amortization half of
// the zero-alloc hot path: instead of one write per input frame, the
// master opportunistically packs every frame that accumulated while the
// previous write was in flight into a single vectored send. The batch
// size is not a tuning knob — it is whatever the scheduler's live credit
// window admits between two syscalls ("smart batching"): on an idle
// channel frames go out singly with no added latency, and under load the
// batch grows toward the window, collapsing up to window-many syscalls
// into one. Unlike the grouped data plane (grouped.go), coalesced frames
// are ordinary TypeInput frames — wire-compatible with every existing
// worker — so coalescing composes with the credit gate and re-lending
// machinery unchanged.

// BatchSender is implemented by channels that can transmit several frames
// in one vectored write (a single syscall). SendAll uses it when present.
type BatchSender interface {
	// SendBatch transmits ms in order as one write. It is atomic with
	// respect to concurrent Sends.
	SendBatch(ms []*proto.Message) error
}

var _ BatchSender = (*WSock)(nil)

// SendAll transmits ms in order, as one vectored write when the channel
// supports it and as individual sends otherwise.
func SendAll(ch Channel, ms []*proto.Message) error {
	if bs, ok := ch.(BatchSender); ok {
		return bs.SendBatch(ms)
	}
	for _, m := range ms {
		if err := ch.Send(m); err != nil {
			return err
		}
	}
	return nil
}

// replyQueue is the worker-side half of smart batching: the serve loop
// enqueues replies as fast as it produces them and a dedicated sender
// flushes everything pending in one vectored write per wakeup. Like the
// master side, the batch needs no tuning knob — it is bounded by the
// master's credit window, since every queued reply answers an input that
// crossed the credit gate. The queue preserves order, so control echoes
// (reassign acks, goodbyes) enqueued after results keep the serial
// loop's drain-barrier property: everything enqueued before them is on
// the wire first. Input frames whose bytes a reply may alias (identity
// handlers under RawCodec) are released only after that reply is
// written.
type replyQueue struct {
	ch      Channel
	mu      sync.Mutex
	cond    *sync.Cond
	pending []*proto.Message // replies awaiting the next vectored write
	owned   []*proto.Message // input frames to release once written (nil entries ok)
	done    bool
	err     error
	wg      sync.WaitGroup
}

func newReplyQueue(ch Channel) *replyQueue {
	q := &replyQueue{ch: ch}
	q.cond = sync.NewCond(&q.mu)
	q.wg.Add(1)
	go q.run()
	return q
}

func (q *replyQueue) run() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for len(q.pending) == 0 && !q.done {
			q.cond.Wait()
		}
		batch, frames := q.pending, q.owned
		q.pending, q.owned = nil, nil
		d := q.done
		q.mu.Unlock()
		if len(batch) > 0 {
			err := SendAll(q.ch, batch)
			for _, m := range frames {
				if m != nil {
					proto.Release(m)
				}
			}
			if err != nil {
				q.mu.Lock()
				q.err = err
				q.mu.Unlock()
				return
			}
		}
		if d {
			return
		}
	}
}

// enqueue queues reply for the next vectored write; frame (which may be
// nil) is released once the reply is on the wire. It reports false after
// a send failure, at which point the caller should stop and close.
func (q *replyQueue) enqueue(reply, frame *proto.Message) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return false
	}
	q.pending = append(q.pending, reply)
	q.owned = append(q.owned, frame)
	q.cond.Signal()
	return true
}

// close lets the sender drain everything enqueued so far, stops it, and
// returns the first send error if any. Frames whose replies never made
// the wire are still released.
func (q *replyQueue) close() error {
	q.mu.Lock()
	q.done = true
	q.cond.Signal()
	q.mu.Unlock()
	q.wg.Wait()
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, m := range q.owned {
		if m != nil {
			proto.Release(m)
		}
	}
	q.pending, q.owned = nil, nil
	return q.err
}

// CoalescingMasterDuplex is MasterDuplex with smart-batched sends: the
// Sink pulls inputs as fast as the credit gate admits them and a
// dedicated sender goroutine flushes everything pending in one vectored
// write per wakeup. The pending queue is naturally bounded by the live
// sched credit window — each pull crosses the gate's Acquire before it
// can enqueue — so batch size adapts to the AIMD window with no fixed
// framing parameter. Result-side semantics (Seq contiguity, failure
// handling, arena release) are identical to MasterDuplex.
func CoalescingMasterDuplex[I, O any](ch Channel, in Codec[I], out Codec[O]) pullstream.Duplex[I, O] {
	var got uint64 // last result Seq accepted, owned by the Source side
	return pullstream.Duplex[I, O]{
		Sink: func(src pullstream.Source[I]) {
			var (
				mu      sync.Mutex
				pending []*proto.Message
				done    bool // no more enqueues; sender drains and exits
				failed  bool // a batch send failed; puller stops pulling
			)
			cond := sync.NewCond(&mu)

			go func() { // sender: one vectored write per wakeup
				for {
					mu.Lock()
					for len(pending) == 0 && !done {
						cond.Wait()
					}
					batch := pending
					pending = nil
					d := done
					mu.Unlock()
					if len(batch) > 0 {
						if err := SendAll(ch, batch); err != nil {
							mu.Lock()
							failed = true
							mu.Unlock()
							return
						}
					}
					if d {
						return
					}
				}
			}()

			enqueue := func(m *proto.Message) bool {
				mu.Lock()
				defer mu.Unlock()
				if failed {
					return false
				}
				pending = append(pending, m)
				cond.Signal()
				return true
			}
			finish := func() {
				mu.Lock()
				done = true
				cond.Signal()
				mu.Unlock()
			}

			var seq uint64
			type ans struct {
				end error
				v   I
			}
			// One reply channel for the whole pull loop: asks are strictly
			// serial (the next pull is issued only after the previous answer
			// arrives), so the channel is empty at every send.
			ansc := make(chan ans, 1)
			for {
				src(nil, func(end error, v I) { ansc <- ans{end, v} })
				a := <-ansc
				if a.end != nil {
					if pullstream.IsNormalEnd(a.end) {
						// The goodbye rides the same queue so it stays
						// ordered after every pending input.
						enqueue(&proto.Message{Type: proto.TypeGoodbye})
					} else {
						ch.Close()
					}
					finish()
					return
				}
				data, err := in.Encode(a.v)
				if err != nil {
					// Encoding failures are programming errors; fail the
					// channel so the value is re-lent (and likely fails
					// again, surfacing loudly).
					ch.Close()
					finish()
					return
				}
				seq++
				if !enqueue(&proto.Message{Type: proto.TypeInput, Seq: seq, Data: data}) {
					// Channel failed mid-batch: stop pulling. The Source
					// side reports the error to the lender.
					finish()
					return
				}
			}
		},
		Source: masterSource(ch, out, &got),
	}
}
