package transport

import "encoding"

// This file holds payload codecs beyond the JSON default (duplex.go).
// With the v2 binary envelope the frame no longer inflates Data, so the
// payload codec decides whether a workload pays any serialization cost at
// all: RawCodec makes []byte-shaped values (image tiles, ray-trace
// buffers) cross the wire untouched, and BinaryCodec plugs in a type's
// own MarshalBinary/UnmarshalBinary.

// RawCodec passes []byte payloads through untouched. Combined with the
// '/pando/2.1.0' envelope the bytes appear on the wire verbatim — no
// JSON, no base64.
type RawCodec struct{}

// Encode returns b unchanged.
func (RawCodec) Encode(b []byte) ([]byte, error) { return b, nil }

// Decode returns data unchanged.
func (RawCodec) Decode(data []byte) ([]byte, error) { return data, nil }

// DecodeAliases reports true: the decoded value IS the frame payload, so
// receive loops detach the frame buffer before recycling the envelope.
func (RawCodec) DecodeAliases() bool { return true }

var _ Codec[[]byte] = RawCodec{}
var _ AliasingCodec = RawCodec{}

// BinaryCodec encodes values through their own encoding.BinaryMarshaler /
// BinaryUnmarshaler implementations. The second type parameter is the
// pointer form carrying UnmarshalBinary; instantiate it as
// BinaryCodec[T, *T].
type BinaryCodec[T encoding.BinaryMarshaler, PT interface {
	*T
	encoding.BinaryUnmarshaler
}] struct{}

// Encode marshals v with its MarshalBinary.
func (BinaryCodec[T, PT]) Encode(v T) ([]byte, error) { return v.MarshalBinary() }

// Decode unmarshals data with the type's UnmarshalBinary.
func (BinaryCodec[T, PT]) Decode(data []byte) (T, error) {
	var v T
	if err := PT(&v).UnmarshalBinary(data); err != nil {
		var zero T
		return zero, err
	}
	return v, nil
}

// DecodeAliases reports true: an arbitrary UnmarshalBinary may keep
// sub-slices of its input (the interface contract does not forbid it), so
// the arena must assume the decoded value shares the frame.
func (BinaryCodec[T, PT]) DecodeAliases() bool { return true }
