package transport

import (
	"fmt"
	"slices"
	"sync"

	"pando/internal/proto"
)

// SignalServer is the Public Server of the paper's architecture (Figure
// 7): a small relay, deployable on a free cloud tier or a Raspberry Pi,
// used only to bootstrap WebRTC connections. Peers join with an ID and
// exchange offer/answer/candidate messages addressed by ID; the relay
// never sees application data.
//
// Pool mode (EnablePool) adds fleet sharing at the signalling layer:
// masters join advertising the functions they serve, and a volunteer may
// send an offer with an empty destination — "any master that can use
// me". The relay assigns one round-robin, preferring masters whose
// advertised functions intersect the volunteer's, so one public server
// can feed a whole household of deployments without volunteers knowing
// any master ID.
type SignalServer struct {
	// OnJoin, when set before Serve, is invoked after each successful
	// peer registration — e.g. to keep a durable registration history
	// across relay restarts. It must not block.
	OnJoin func(peerID string)
	// OnLeave, when set before Serve, is invoked after a registered peer
	// deregisters (its signalling connection ended, gracefully or not)
	// and has been pruned from Peers. It must not block.
	OnLeave func(peerID string)

	mu      sync.Mutex
	peers   map[string]Channel
	masters map[string][]string // master peer ID -> advertised functions
	rr      int                 // round-robin cursor over masters
	pool    bool
	done    chan struct{}
	once    sync.Once
}

// NewSignalServer returns an idle signalling relay.
func NewSignalServer() *SignalServer {
	return &SignalServer{
		peers:   make(map[string]Channel),
		masters: make(map[string][]string),
		done:    make(chan struct{}),
	}
}

// EnablePool turns on pool mode: offers with an empty destination are
// routed to a registered master. Call before Serve.
func (s *SignalServer) EnablePool() {
	s.mu.Lock()
	s.pool = true
	s.mu.Unlock()
}

// Serve accepts signalling connections from acc until the acceptor or the
// server is closed. Each connection is handled on its own goroutine.
func (s *SignalServer) Serve(acc Acceptor, cfg Config) error {
	for {
		conn, err := acc.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
				return err
			}
		}
		go s.handle(NewWSock(conn, cfg))
	}
}

// Close shuts the relay down and disconnects every registered peer.
func (s *SignalServer) Close() {
	s.once.Do(func() { close(s.done) })
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, ch := range s.peers {
		ch.Close()
		delete(s.peers, id)
		delete(s.masters, id)
	}
}

// Peers returns the IDs currently registered, for diagnostics. Departed
// peers are pruned as soon as their signalling connection ends.
func (s *SignalServer) Peers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.peers))
	for id := range s.peers {
		ids = append(ids, id)
	}
	return ids
}

// pickMaster assigns a master for an anonymous offer: round-robin over
// the registered masters, preferring those whose advertised functions
// intersect the volunteer's (an empty volunteer list matches any).
func (s *SignalServer) pickMaster(functions []string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.pool || len(s.masters) == 0 {
		return "", false
	}
	ids := make([]string, 0, len(s.masters))
	for id := range s.masters {
		ids = append(ids, id)
	}
	// Map iteration order is random; a stable order keeps the round-robin
	// fair.
	slices.Sort(ids)
	serves := func(master string) bool {
		if len(functions) == 0 {
			return true
		}
		for _, want := range functions {
			if want == "*" {
				return true
			}
			for _, have := range s.masters[master] {
				if want == have {
					return true
				}
			}
		}
		return false
	}
	for k := 0; k < len(ids); k++ {
		id := ids[(s.rr+k)%len(ids)]
		if serves(id) {
			s.rr = (s.rr + k + 1) % len(ids)
			return id, true
		}
	}
	return "", false
}

func (s *SignalServer) handle(ch Channel) {
	defer ch.Close()

	// The first message must register the peer. A join carrying a
	// Functions list registers a master advertising the jobs it serves
	// (pool mode routing).
	m, err := ch.Recv()
	if err != nil {
		return
	}
	if m.Type != proto.TypeJoin || m.Peer == "" {
		proto.Release(m)
		_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: "expected join with peer id"})
		return
	}
	// Everything the registration needs is decode-time-copied; the frame
	// itself goes back to the arena before the relay loop starts.
	id := m.Peer
	functions := m.Functions
	proto.Release(m)

	s.mu.Lock()
	if _, taken := s.peers[id]; taken {
		s.mu.Unlock()
		_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: fmt.Sprintf("peer id %q already joined", id)})
		return
	}
	s.peers[id] = ch
	if len(functions) > 0 {
		s.masters[id] = functions
	}
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		left := false
		if s.peers[id] == ch {
			delete(s.peers, id)
			delete(s.masters, id)
			left = true
		}
		onLeave := s.OnLeave
		s.mu.Unlock()
		if left && onLeave != nil {
			onLeave(id)
		}
	}()

	// Acknowledge the registration.
	if err := ch.Send(&proto.Message{Type: proto.TypeWelcome, Peer: id}); err != nil {
		return
	}
	if s.OnJoin != nil {
		s.OnJoin(id)
	}

	// Relay loop: forward addressed messages.
	for {
		m, err := ch.Recv()
		if err != nil {
			return
		}
		switch m.Type {
		case proto.TypeOffer, proto.TypeAnswer, proto.TypeCandidate:
			to := m.To
			if to == "" && m.Type == proto.TypeOffer {
				// Pool mode: "any master that can use me".
				assigned, ok := s.pickMaster(m.Functions)
				if !ok {
					proto.Release(m)
					_ = ch.Send(&proto.Message{
						Type: proto.TypeError,
						Err:  "no master registered for pool assignment",
					})
					continue
				}
				to = assigned
			}
			s.mu.Lock()
			dst, ok := s.peers[to]
			s.mu.Unlock()
			if !ok {
				proto.Release(m)
				_ = ch.Send(&proto.Message{
					Type: proto.TypeError,
					To:   to,
					Err:  fmt.Sprintf("peer %q not connected", to),
				})
				continue
			}
			// The forwarded copy keeps the decoded payload alive past this
			// iteration, so the frame buffer's ownership moves with it and
			// only the envelope is recycled.
			fwd := *m
			fwd.Peer = id // authoritative sender
			fwd.To = to
			m.Detach()
			proto.Release(m)
			if err := dst.Send(&fwd); err != nil {
				_ = ch.Send(&proto.Message{
					Type: proto.TypeError,
					To:   to,
					Err:  "relay failed: " + err.Error(),
				})
			}
		case proto.TypeGoodbye:
			proto.Release(m)
			return
		default:
			proto.Release(m)
			_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: "unsupported signalling message"})
		}
	}
}

// JoinSignal connects a peer to the signalling relay over ch: it sends the
// join message and waits for the acknowledgement.
func JoinSignal(ch Channel, peerID string) error {
	return JoinSignalServing(ch, peerID, nil)
}

// JoinSignalServing is JoinSignal for a master: the join advertises the
// processing functions the master serves, registering it for pool-mode
// assignment of anonymous volunteers.
func JoinSignalServing(ch Channel, peerID string, functions []string) error {
	if err := ch.Send(&proto.Message{Type: proto.TypeJoin, Peer: peerID, Functions: functions}); err != nil {
		return err
	}
	m, err := ch.Recv()
	if err != nil {
		return err
	}
	defer proto.Release(m)
	if m.Type == proto.TypeError {
		return fmt.Errorf("transport: join rejected: %s", m.Err)
	}
	if m.Type != proto.TypeWelcome {
		return fmt.Errorf("transport: unexpected join reply %q", m.Type)
	}
	return nil
}
