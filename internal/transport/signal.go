package transport

import (
	"fmt"
	"sync"

	"pando/internal/proto"
)

// SignalServer is the Public Server of the paper's architecture (Figure
// 7): a small relay, deployable on a free cloud tier or a Raspberry Pi,
// used only to bootstrap WebRTC connections. Peers join with an ID and
// exchange offer/answer/candidate messages addressed by ID; the relay
// never sees application data.
type SignalServer struct {
	// OnJoin, when set before Serve, is invoked after each successful
	// peer registration — e.g. to keep a durable registration history
	// across relay restarts. It must not block.
	OnJoin func(peerID string)

	mu    sync.Mutex
	peers map[string]Channel
	done  chan struct{}
	once  sync.Once
}

// NewSignalServer returns an idle signalling relay.
func NewSignalServer() *SignalServer {
	return &SignalServer{
		peers: make(map[string]Channel),
		done:  make(chan struct{}),
	}
}

// Serve accepts signalling connections from acc until the acceptor or the
// server is closed. Each connection is handled on its own goroutine.
func (s *SignalServer) Serve(acc Acceptor, cfg Config) error {
	for {
		conn, err := acc.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
				return err
			}
		}
		go s.handle(NewWSock(conn, cfg))
	}
}

// Close shuts the relay down and disconnects every registered peer.
func (s *SignalServer) Close() {
	s.once.Do(func() { close(s.done) })
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, ch := range s.peers {
		ch.Close()
		delete(s.peers, id)
	}
}

// Peers returns the IDs currently registered, for diagnostics.
func (s *SignalServer) Peers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.peers))
	for id := range s.peers {
		ids = append(ids, id)
	}
	return ids
}

func (s *SignalServer) handle(ch Channel) {
	defer ch.Close()

	// The first message must register the peer.
	m, err := ch.Recv()
	if err != nil {
		return
	}
	if m.Type != proto.TypeJoin || m.Peer == "" {
		_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: "expected join with peer id"})
		return
	}
	id := m.Peer

	s.mu.Lock()
	if _, taken := s.peers[id]; taken {
		s.mu.Unlock()
		_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: fmt.Sprintf("peer id %q already joined", id)})
		return
	}
	s.peers[id] = ch
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		if s.peers[id] == ch {
			delete(s.peers, id)
		}
		s.mu.Unlock()
	}()

	// Acknowledge the registration.
	if err := ch.Send(&proto.Message{Type: proto.TypeWelcome, Peer: id}); err != nil {
		return
	}
	if s.OnJoin != nil {
		s.OnJoin(id)
	}

	// Relay loop: forward addressed messages.
	for {
		m, err := ch.Recv()
		if err != nil {
			return
		}
		switch m.Type {
		case proto.TypeOffer, proto.TypeAnswer, proto.TypeCandidate:
			s.mu.Lock()
			dst, ok := s.peers[m.To]
			s.mu.Unlock()
			if !ok {
				_ = ch.Send(&proto.Message{
					Type: proto.TypeError,
					To:   m.To,
					Err:  fmt.Sprintf("peer %q not connected", m.To),
				})
				continue
			}
			fwd := *m
			fwd.Peer = id // authoritative sender
			if err := dst.Send(&fwd); err != nil {
				_ = ch.Send(&proto.Message{
					Type: proto.TypeError,
					To:   m.To,
					Err:  "relay failed: " + err.Error(),
				})
			}
		case proto.TypeGoodbye:
			return
		default:
			_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: "unsupported signalling message"})
		}
	}
}

// JoinSignal connects a peer to the signalling relay over ch: it sends the
// join message and waits for the acknowledgement.
func JoinSignal(ch Channel, peerID string) error {
	if err := ch.Send(&proto.Message{Type: proto.TypeJoin, Peer: peerID}); err != nil {
		return err
	}
	m, err := ch.Recv()
	if err != nil {
		return err
	}
	if m.Type == proto.TypeError {
		return fmt.Errorf("transport: join rejected: %s", m.Err)
	}
	if m.Type != proto.TypeWelcome {
		return fmt.Errorf("transport: unexpected join reply %q", m.Type)
	}
	return nil
}
