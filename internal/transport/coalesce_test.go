package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/pullstream"
)

// TestSendBatchDeliversInOrder packs many frames into one vectored write
// and checks the peer reads them back individually, in order, in both
// wire formats.
func TestSendBatchDeliversInOrder(t *testing.T) {
	for _, wf := range []proto.WireFormat{proto.V1, proto.V2} {
		t.Run(wf.Name(), func(t *testing.T) {
			cfg := Config{HeartbeatInterval: -1}
			p := netsim.NewPipe(netsim.Loopback)
			defer p.Cut()
			a := NewWSock(p.A, cfg)
			b := NewWSock(p.B, cfg)
			a.SetWire(wf)

			const n = 50
			ms := make([]*proto.Message, 0, n)
			for i := 1; i <= n; i++ {
				ms = append(ms, &proto.Message{
					Type: proto.TypeInput,
					Seq:  uint64(i),
					Data: []byte(fmt.Sprintf(`"payload-%d"`, i)),
				})
			}
			if err := a.SendBatch(ms); err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= n; i++ {
				m, err := b.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if m.Seq != uint64(i) {
					t.Fatalf("frame %d: seq %d", i, m.Seq)
				}
				if want := fmt.Sprintf(`"payload-%d"`, i); string(m.Data) != want {
					t.Fatalf("frame %d: data %q, want %q", i, m.Data, want)
				}
				proto.Release(m)
			}
		})
	}
}

// TestSendBatchConcurrentWithSend checks batches stay atomic against
// interleaved single sends: every frame must arrive intact, never torn.
func TestSendBatchConcurrentWithSend(t *testing.T) {
	cfg := Config{HeartbeatInterval: -1}
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	a := NewWSock(p.A, cfg)
	b := NewWSock(p.B, cfg)
	a.SetWire(proto.V2)

	const senders, per = 4, 25
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if s%2 == 0 {
				ms := make([]*proto.Message, 0, per)
				for i := 0; i < per; i++ {
					ms = append(ms, &proto.Message{Type: proto.TypeInput, Seq: 1, Data: []byte("batched")})
				}
				if err := a.SendBatch(ms); err != nil {
					t.Error(err)
				}
			} else {
				for i := 0; i < per; i++ {
					if err := a.Send(&proto.Message{Type: proto.TypeInput, Seq: 1, Data: []byte("singled")}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	for i := 0; i < senders*per; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if s := string(m.Data); s != "batched" && s != "singled" {
			t.Fatalf("frame %d corrupted: %q", i, s)
		}
		proto.Release(m)
	}
}

// TestCoalescingMasterDuplexRoundTrip runs the coalescing data plane
// against a plain WorkerServe — the wire-compatibility the design relies
// on — and checks ordered exactly-once delivery.
func TestCoalescingMasterDuplexRoundTrip(t *testing.T) {
	cfg := Config{HeartbeatInterval: -1}
	p := netsim.NewPipe(netsim.LAN)
	defer p.Cut()
	masterCh := NewWSock(p.A, cfg)
	workerCh := NewWSock(p.B, cfg)

	go func() {
		err := WorkerServe[int, int](workerCh, JSONCodec[int]{}, JSONCodec[int]{}, func(v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Error(err)
		}
	}()

	d := CoalescingMasterDuplex[int, int](masterCh, JSONCodec[int]{}, JSONCodec[int]{})
	go d.Sink(pullstream.Count(100))
	got, err := pullstream.Collect(d.Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d results, want 100", len(got))
	}
	for i, v := range got {
		if v != (i+1)*(i+1) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

// TestCoalescingMasterDuplexRawCodec pushes []byte payloads through the
// coalescing duplex with the aliasing codec on both ends, the pooled
// worst case: results must come back intact even though every frame
// buffer recycles through the arena.
func TestCoalescingMasterDuplexRawCodec(t *testing.T) {
	cfg := Config{HeartbeatInterval: -1}
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	masterCh := NewWSock(p.A, cfg)
	workerCh := NewWSock(p.B, cfg)
	masterCh.SetWire(proto.V2)
	workerCh.SetWire(proto.V2)

	go WorkerServeGrouped[[]byte, []byte](workerCh, RawCodec{}, RawCodec{}, func(v []byte) ([]byte, error) {
		return v, nil // identity: threads the input buffer through to the reply
	})

	const n = 200
	inputs := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		inputs = append(inputs, []byte(fmt.Sprintf("tile-%04d", i)))
	}
	d := CoalescingMasterDuplex[[]byte, []byte](masterCh, RawCodec{}, RawCodec{})
	go d.Sink(pullstream.Values(inputs...))
	got, err := pullstream.Collect(d.Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	for i, v := range got {
		if want := fmt.Sprintf("tile-%04d", i); string(v) != want {
			t.Fatalf("got[%d] = %q, want %q", i, v, want)
		}
	}
}

// TestCoalescingMasterDuplexWorkerError checks application errors still
// surface as WorkerError through the coalescing source.
func TestCoalescingMasterDuplexWorkerError(t *testing.T) {
	cfg := Config{HeartbeatInterval: -1}
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	masterCh := NewWSock(p.A, cfg)
	workerCh := NewWSock(p.B, cfg)

	go WorkerServe[int, int](workerCh, JSONCodec[int]{}, JSONCodec[int]{}, func(v int) (int, error) {
		if v == 3 {
			return 0, errors.New("render failed")
		}
		return v, nil
	})

	d := CoalescingMasterDuplex[int, int](masterCh, JSONCodec[int]{}, JSONCodec[int]{})
	go d.Sink(pullstream.Count(10))
	got, err := pullstream.Collect(d.Source)
	var werr *WorkerError
	if !errors.As(err, &werr) {
		t.Fatalf("err = %v, want WorkerError", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v, want 2 results before failure", got)
	}
}
