package transport

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"pando/internal/proto"
	"pando/internal/pullstream"
)

// Codec serializes stream values for the wire. JSONCodec suits most
// applications; payload-heavy applications can provide their own.
type Codec[T any] interface {
	Encode(T) ([]byte, error)
	Decode([]byte) (T, error)
}

// JSONCodec encodes values with encoding/json.
type JSONCodec[T any] struct{}

// Encode marshals v.
func (JSONCodec[T]) Encode(v T) ([]byte, error) { return json.Marshal(v) }

// Decode unmarshals data.
func (JSONCodec[T]) Decode(data []byte) (T, error) {
	var v T
	err := json.Unmarshal(data, &v)
	return v, err
}

// DecodeAliases reports false: encoding/json copies every field out of
// the input (including json.RawMessage, whose UnmarshalJSON appends into
// its own backing array), so decoded values never reference the frame.
func (JSONCodec[T]) DecodeAliases() bool { return false }

// AliasingCodec is implemented by codecs that declare whether Decode's
// result can alias the input buffer. Receive loops use it to decide the
// fate of a pooled frame once its payload is decoded: a non-aliasing
// codec's frame recycles into the arena immediately, while an aliasing
// codec's frame must be detached first because the decoded value shares
// its memory. Codecs that don't implement the interface are treated as
// aliasing — the conservative choice, trading pool hits for safety.
type AliasingCodec interface {
	DecodeAliases() bool
}

// codecAliases resolves the aliasing contract of an arbitrary codec.
func codecAliases(c any) bool {
	if a, ok := c.(AliasingCodec); ok {
		return a.DecodeAliases()
	}
	return true
}

// WorkerError wraps an application-level error reported by a worker's
// processing function. The master treats it as a channel failure so the
// input is re-lent to another device (a persistent f error should be
// handled with the stubborn module instead).
type WorkerError struct {
	Seq uint64
	Msg string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("transport: worker failed on input %d: %s", e.Seq, e.Msg)
}

// MasterDuplex exposes a channel to the master as a pull-stream duplex:
// its Sink consumes the inputs lent to the worker (sending them as input
// frames) and its Source produces the worker's results. The duplex is
// meant to be wrapped with the sched credit gate (or limiter.Limit, its
// static veneer) and wired to a StreamLender sub-stream:
// pull(sub.Source, Gate(ctrl, MasterDuplex(ch)), sub.Sink).
//
// Failure semantics: a channel error (including heartbeat timeout) or an
// application error reported by the worker ends the Source with an error,
// which the StreamLender converts into re-lending.
//
// The engine matches results to lent values FIFO, which is only sound if
// the result stream mirrors the input stream one for one. Workers process
// serially and echo each input's Seq, so the Seqs coming back must be
// exactly 1, 2, 3, ... — any gap means a frame was lost in flight (or a
// peer misbehaved) and the next result would be paired with the wrong
// value, silently corrupting the output. The Source therefore enforces
// contiguity and fails the channel on the first hole: the loss degrades
// to a worker crash, every outstanding value is re-lent, and exactly-once
// output survives. (The chaos suite's packet-drop fault is what forces
// this: a cleanly dropped result frame leaves the stream parseable, so
// only the Seq discipline can detect it.)
func MasterDuplex[I, O any](ch Channel, in Codec[I], out Codec[O]) pullstream.Duplex[I, O] {
	var got uint64 // last result Seq accepted, owned by the Source side
	return pullstream.Duplex[I, O]{
		Sink: func(src pullstream.Source[I]) {
			var seq uint64
			for {
				type ans struct {
					end error
					v   I
				}
				ansc := make(chan ans, 1)
				src(nil, func(end error, v I) { ansc <- ans{end, v} })
				a := <-ansc
				if a.end != nil {
					if pullstream.IsNormalEnd(a.end) {
						// No more inputs for this worker: orderly goodbye.
						_ = ch.Send(&proto.Message{Type: proto.TypeGoodbye})
					} else {
						ch.Close()
					}
					return
				}
				data, err := in.Encode(a.v)
				if err != nil {
					// Encoding failures are programming errors; fail the
					// channel so the value is re-lent (and likely fails
					// again, surfacing loudly).
					ch.Close()
					return
				}
				seq++
				if err := ch.Send(&proto.Message{Type: proto.TypeInput, Seq: seq, Data: data}); err != nil {
					// Channel failed: stop pulling. The Source side
					// reports the error to the lender.
					return
				}
			}
		},
		Source: masterSource(ch, out, &got),
	}
}

// masterSource is the result side shared by MasterDuplex and
// CoalescingMasterDuplex: a pull-stream source of decoded results with
// Seq-contiguity enforcement and arena release discipline — every
// received frame returns to the pool once its payload is decoded
// (detached first when the codec aliases).
func masterSource[O any](ch Channel, out Codec[O], got *uint64) pullstream.Source[O] {
	aliases := codecAliases(out)
	return func(abort error, cb pullstream.Callback[O]) {
		var zero O
		if abort != nil {
			ch.Close()
			cb(abort, zero)
			return
		}
		for {
			m, err := ch.Recv()
			if err != nil {
				cb(err, zero)
				return
			}
			switch m.Type {
			case proto.TypeResult:
				if m.Err != "" {
					err := &WorkerError{Seq: m.Seq, Msg: m.Err}
					proto.Release(m)
					ch.Close()
					cb(err, zero)
					return
				}
				if m.Seq != *got+1 {
					err := fmt.Errorf("transport: result seq %d, want %d (frame lost or reordered)", m.Seq, *got+1)
					proto.Release(m)
					ch.Close()
					cb(err, zero)
					return
				}
				*got = m.Seq
				// End-to-end payload check: the worker hashed the encoded
				// result right after f produced it, so a mismatch here means
				// the bytes changed somewhere in between — a fault frame
				// CRCs cannot see (they only cover the wire). Crash-stop:
				// the channel fails, outstanding values re-lend.
				if len(m.Digest) > 0 {
					sum := sha256.Sum256(m.Data)
					if !bytes.Equal(sum[:], m.Digest) {
						err := fmt.Errorf("transport: result %d digest mismatch (payload corrupted)", m.Seq)
						proto.Release(m)
						ch.Close()
						cb(err, zero)
						return
					}
				}
				v, err := out.Decode(m.Data)
				if err != nil {
					err = fmt.Errorf("transport: decode result %d: %w", m.Seq, err)
					proto.Release(m)
					ch.Close()
					cb(err, zero)
					return
				}
				if aliases {
					// The decoded value shares the frame buffer; its
					// ownership moves to the value and only the envelope
					// recycles.
					m.Detach()
				}
				proto.Release(m)
				cb(nil, v)
				return
			case proto.TypeGoodbye:
				proto.Release(m)
				cb(pullstream.ErrDone, zero)
				return
			default:
				// Ignore stray control messages.
				proto.Release(m)
			}
		}
	}
}

// WorkerServe runs the volunteer side of a channel: it receives inputs,
// applies f one value at a time (as a browser tab does), and sends results
// back. It returns when the master says goodbye (nil) or the channel fails.
//
// Input frames recycle into the arena after the reply is written, so f
// must not retain its (possibly frame-aliasing) argument past return —
// the contract worker.Handler documents.
func WorkerServe[I, O any](ch Channel, in Codec[I], out Codec[O], f func(I) (O, error)) error {
	for {
		m, err := ch.Recv()
		if err != nil {
			return err
		}
		switch m.Type {
		case proto.TypeInput:
			reply := applyOne(m.Seq, m.Data, in, out, f)
			// The reply may thread the input's bytes through (an identity
			// handler under RawCodec), so the frame releases only after
			// the reply is on the wire.
			err := ch.Send(reply)
			proto.Release(m)
			if err != nil {
				return err
			}
		case proto.TypeGoodbye:
			proto.Release(m)
			_ = ch.Send(&proto.Message{Type: proto.TypeGoodbye})
			ch.Close()
			return nil
		default:
			// Ignore stray control messages.
			proto.Release(m)
		}
	}
}
