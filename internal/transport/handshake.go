package transport

import (
	"fmt"
	"slices"

	"pando/internal/proto"
)

// This file centralizes the hello/welcome handshake with wire-format
// negotiation, spoken on every admission edge of a deployment: master ↔
// volunteer, pool ↔ volunteer and relay ↔ child. The master, fleet and
// overlay packages all build on these halves so the protocol cannot
// drift between them.
//
// The hello always travels as a v1 frame (the lingua franca any peer
// reads) and lists the formats the client speaks plus, for pool-aware
// volunteers, the processing functions its registry resolves; the
// welcome — also v1 — names the master's choices and carries the
// deployment's whole allowed-format list so relays can enforce the same
// restriction on their own children. Each side switches its outgoing
// frames only after its half concluded; reception sniffs every frame, so
// the switches need no ordering.

// ClientHandshake performs the volunteer side of the handshake on ch: it
// advertises formats (SupportedFormats when empty) and the functions the
// volunteer can serve (nil for a single-purpose or pre-pool volunteer),
// validates the reply and the wire selection it names, and switches
// outgoing frames to the negotiated format. It returns the welcome, which
// carries the deployment parameters (function name, batch, format
// restriction). On error the channel is closed.
//
// A rejoining volunteer passes its incarnation number and instance token
// through hello (see Hello); this thin wrapper keeps the zero values.
func ClientHandshake(ch Channel, peer string, formats, functions []string) (*proto.Message, error) {
	return Hello(ch, &proto.Message{
		Peer:      peer,
		Formats:   formats,
		Functions: functions,
	})
}

// Hello sends the hello message (filling in Type, Version and the
// default format list) and validates the welcome, switching the outgoing
// wire to the negotiated format. The caller may preset Peer, Formats,
// Functions, Seq (join incarnation, >0 on rejoins) and Token (the
// volunteer instance nonce that lets the master sever the departed
// incarnation's sessions).
func Hello(ch Channel, hello *proto.Message) (*proto.Message, error) {
	hello.Type = proto.TypeHello
	hello.Version = proto.Version
	if len(hello.Formats) == 0 {
		hello.Formats = proto.SupportedFormats()
	}
	if err := ch.Send(hello); err != nil {
		ch.Close()
		return nil, err
	}
	welcome, err := ch.Recv()
	if err != nil {
		ch.Close()
		return nil, err
	}
	// Error paths release the welcome frame back to the arena; its string
	// fields are decode-time copies, so errors built from them stay valid.
	if welcome.Type == proto.TypeError {
		rerr := fmt.Errorf("transport: rejected: %s", welcome.Err)
		proto.Release(welcome)
		ch.Close()
		return nil, rerr
	}
	if welcome.Type != proto.TypeWelcome {
		rerr := fmt.Errorf("transport: unexpected handshake reply %q", welcome.Type)
		proto.Release(welcome)
		ch.Close()
		return nil, rerr
	}
	// An empty Wire means a pre-negotiation master, which always speaks
	// v1. Either way the selection must be something this peer advertised.
	chosen := welcome.Wire
	if chosen == "" {
		chosen = proto.Version
	}
	wf, ok := proto.LookupFormat(chosen)
	if !ok || !slices.Contains(hello.Formats, chosen) {
		rerr := fmt.Errorf("transport: master selected unsupported wire format %q (supported: %v)", chosen, hello.Formats)
		proto.Release(welcome)
		ch.Close()
		return nil, rerr
	}
	ch.SetWire(wf)
	return welcome, nil
}

// RecvHello receives and validates the hello half of an admission and
// negotiates the wire format strictly against the allowed list (refusing
// peers that share none rather than silently falling back). It does NOT
// reply: a shared pool must first route the volunteer to a job before it
// can name the function in the welcome. On error the peer is sent a
// TypeError frame and the channel is closed.
func RecvHello(ch Channel, allowed []string) (*proto.Message, proto.WireFormat, error) {
	hello, err := ch.Recv()
	if err != nil {
		ch.Close()
		return nil, nil, err
	}
	if err := proto.CheckHello(hello); err != nil {
		proto.Release(hello)
		_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: err.Error()})
		ch.Close()
		return nil, nil, err
	}
	wire, err := proto.NegotiateStrict(allowed, hello.Formats)
	if err != nil {
		proto.Release(hello)
		_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: err.Error()})
		ch.Close()
		return nil, nil, err
	}
	return hello, wire, nil
}

// SendWelcome completes the admitting half: it replies with a welcome
// naming the routed function, the batch bound and the negotiated wire
// (carrying the deployment's allowed-format list for relays), then
// switches outgoing frames. On error the channel is closed.
func SendWelcome(ch Channel, funcName string, batch int, wire proto.WireFormat, allowed []string) error {
	if err := ch.Send(&proto.Message{
		Type:    proto.TypeWelcome,
		Func:    funcName,
		Batch:   batch,
		Wire:    wire.Name(),
		Formats: allowed,
	}); err != nil {
		ch.Close()
		return fmt.Errorf("transport: welcome: %w", err)
	}
	ch.SetWire(wire)
	return nil
}

// AdmitHandshake performs the whole admitting side for a single-job
// deployment: RecvHello followed immediately by SendWelcome. It returns
// the hello and the negotiated format.
func AdmitHandshake(ch Channel, funcName string, batch int, allowed []string) (*proto.Message, proto.WireFormat, error) {
	hello, wire, err := RecvHello(ch, allowed)
	if err != nil {
		return nil, nil, err
	}
	if err := SendWelcome(ch, funcName, batch, wire, allowed); err != nil {
		return nil, nil, err
	}
	return hello, wire, nil
}
