package transport

import (
	"fmt"
	"slices"

	"pando/internal/proto"
)

// This file centralizes the hello/welcome handshake with wire-format
// negotiation, spoken on every admission edge of a deployment: master ↔
// volunteer and relay ↔ child. Both the master and overlay packages build
// on these two halves so the protocol cannot drift between them.
//
// The hello always travels as a v1 frame (the lingua franca any peer
// reads) and lists the formats the client speaks; the welcome — also v1 —
// names the master's choice and carries the deployment's whole allowed
// list so relays can enforce the same restriction on their own children.
// Each side switches its outgoing frames only after its half concluded;
// reception sniffs every frame, so the switches need no ordering.

// ClientHandshake performs the volunteer side of the handshake on ch: it
// advertises formats (SupportedFormats when empty), validates the reply
// and the wire selection it names, and switches outgoing frames to the
// negotiated format. It returns the welcome, which carries the deployment
// parameters (function name, batch, format restriction). On error the
// channel is closed.
func ClientHandshake(ch Channel, peer string, formats []string) (*proto.Message, error) {
	if len(formats) == 0 {
		formats = proto.SupportedFormats()
	}
	if err := ch.Send(&proto.Message{
		Type:    proto.TypeHello,
		Version: proto.Version,
		Peer:    peer,
		Formats: formats,
	}); err != nil {
		ch.Close()
		return nil, err
	}
	welcome, err := ch.Recv()
	if err != nil {
		ch.Close()
		return nil, err
	}
	if welcome.Type == proto.TypeError {
		ch.Close()
		return nil, fmt.Errorf("transport: rejected: %s", welcome.Err)
	}
	if welcome.Type != proto.TypeWelcome {
		ch.Close()
		return nil, fmt.Errorf("transport: unexpected handshake reply %q", welcome.Type)
	}
	// An empty Wire means a pre-negotiation master, which always speaks
	// v1. Either way the selection must be something this peer advertised.
	chosen := welcome.Wire
	if chosen == "" {
		chosen = proto.Version
	}
	wf, ok := proto.LookupFormat(chosen)
	if !ok || !slices.Contains(formats, chosen) {
		ch.Close()
		return nil, fmt.Errorf("transport: master selected unsupported wire format %q (supported: %v)", chosen, formats)
	}
	ch.SetWire(wf)
	return welcome, nil
}

// AdmitHandshake performs the admitting side: it receives and validates
// the hello, negotiates strictly against the allowed formats (refusing
// peers that share none rather than silently falling back), replies with
// a welcome naming the choice and carrying the allowed list, and switches
// outgoing frames. It returns the hello and the negotiated format. On
// error the peer is sent a TypeError frame and the channel is closed.
func AdmitHandshake(ch Channel, funcName string, batch int, allowed []string) (*proto.Message, proto.WireFormat, error) {
	hello, err := ch.Recv()
	if err != nil {
		ch.Close()
		return nil, nil, err
	}
	if err := proto.CheckHello(hello); err != nil {
		_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: err.Error()})
		ch.Close()
		return nil, nil, err
	}
	wire, err := proto.NegotiateStrict(allowed, hello.Formats)
	if err != nil {
		_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: err.Error()})
		ch.Close()
		return nil, nil, err
	}
	if err := ch.Send(&proto.Message{
		Type:    proto.TypeWelcome,
		Func:    funcName,
		Batch:   batch,
		Wire:    wire.Name(),
		Formats: allowed,
	}); err != nil {
		ch.Close()
		return nil, nil, fmt.Errorf("transport: welcome: %w", err)
	}
	ch.SetWire(wire)
	return hello, wire, nil
}
