package transport

// Tests for the end-to-end result digest: workers hash each encoded
// result the moment f produces it, and the master re-hashes the payload
// it is about to decode. The check rides the existing Digest envelope
// field (tagDigest on the binary wire), so both formats carry it without
// a wire version bump, and frames without a digest (older peers) pass
// through unchecked.

import (
	"bytes"
	"crypto/sha256"
	"strings"
	"testing"

	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/pullstream"
)

// TestApplyOneAttachesDigest: every result frame a worker produces must
// carry the SHA-256 of its encoded payload.
func TestApplyOneAttachesDigest(t *testing.T) {
	m := applyOne(1, []byte(`7`), JSONCodec[int]{}, JSONCodec[int]{}, func(v int) (int, error) {
		return v * v, nil
	})
	if m.Err != "" {
		t.Fatalf("applyOne failed: %s", m.Err)
	}
	want := sha256.Sum256(m.Data)
	if !bytes.Equal(m.Digest, want[:]) {
		t.Fatalf("digest = %x, want sha256 of payload %x", m.Digest, want)
	}
	// Error frames carry no payload and no digest.
	e := applyOne(2, []byte(`not json`), JSONCodec[int]{}, JSONCodec[int]{}, func(v int) (int, error) {
		return v, nil
	})
	if e.Err == "" || len(e.Digest) != 0 {
		t.Fatalf("error frame = %+v, want Err set and no digest", e)
	}
}

// TestMasterDuplexRejectsDigestMismatch: a result whose payload does not
// hash to its digest fails the channel (crash-stop, values re-lent)
// instead of delivering corrupted bytes to the output.
func TestMasterDuplexRejectsDigestMismatch(t *testing.T) {
	master, workerCh, _ := wsockPair(t, netsim.Loopback, Config{HeartbeatInterval: -1})
	d := MasterDuplex(master, JSONCodec[int]{}, JSONCodec[int]{})

	inputs := []int{10}
	go d.Sink(func(abort error, cb pullstream.Callback[int]) {
		if abort != nil || len(inputs) == 0 {
			cb(pullstream.ErrDone, 0)
			return
		}
		v := inputs[0]
		inputs = inputs[1:]
		cb(nil, v)
	})

	m, err := workerCh.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != proto.TypeInput {
		t.Fatalf("worker received %q, want input", m.Type)
	}
	// A digest of different bytes: the payload mutated after hashing.
	bogus := sha256.Sum256([]byte(`999`))
	if err := workerCh.Send(&proto.Message{Type: proto.TypeResult, Seq: m.Seq, Data: []byte(`100`), Digest: bogus[:]}); err != nil {
		t.Fatal(err)
	}

	_, err = pump(d.Source)
	if err == nil {
		t.Fatal("source delivered a result whose digest does not match")
	}
	if !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("err = %v, want the digest-mismatch diagnosis", err)
	}
}

// TestMasterDuplexAcceptsDigestedAndBareResults: a correct digest passes,
// and a frame with no digest at all (older peer) is accepted unchecked.
func TestMasterDuplexAcceptsDigestedAndBareResults(t *testing.T) {
	master, workerCh, _ := wsockPair(t, netsim.Loopback, Config{HeartbeatInterval: -1})
	d := MasterDuplex(master, JSONCodec[int]{}, JSONCodec[int]{})

	inputs := []int{1, 2}
	go d.Sink(func(abort error, cb pullstream.Callback[int]) {
		if abort != nil || len(inputs) == 0 {
			cb(pullstream.ErrDone, 0)
			return
		}
		v := inputs[0]
		inputs = inputs[1:]
		cb(nil, v)
	})
	go func() {
		for {
			m, err := workerCh.Recv()
			if err != nil {
				return
			}
			switch m.Type {
			case proto.TypeInput:
				reply := &proto.Message{Type: proto.TypeResult, Seq: m.Seq, Data: append([]byte(nil), m.Data...)}
				if m.Seq == 1 {
					sum := sha256.Sum256(reply.Data)
					reply.Digest = sum[:]
				}
				_ = workerCh.Send(reply)
			case proto.TypeGoodbye:
				_ = workerCh.Send(&proto.Message{Type: proto.TypeGoodbye})
				return
			}
		}
	}()

	for want := 1; want <= 2; want++ {
		v, err := pump(d.Source)
		if err != nil {
			t.Fatalf("result %d: %v", want, err)
		}
		if v != want {
			t.Fatalf("result %d = %d", want, v)
		}
	}
}

// TestGroupedMasterDuplexRejectsBatchDigestMismatch is the grouped-frame
// analog: the digest covers the whole encoded batch.
func TestGroupedMasterDuplexRejectsBatchDigestMismatch(t *testing.T) {
	master, workerCh, _ := wsockPair(t, netsim.Loopback, Config{HeartbeatInterval: -1})
	d := GroupedMasterDuplex(master, JSONCodec[int]{}, JSONCodec[int]{})

	batches := [][]int{{1, 2}}
	go d.Sink(func(abort error, cb pullstream.Callback[[]int]) {
		if abort != nil || len(batches) == 0 {
			cb(pullstream.ErrDone, nil)
			return
		}
		v := batches[0]
		batches = batches[1:]
		cb(nil, v)
	})

	m, err := workerCh.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != proto.TypeInputBatch {
		t.Fatalf("worker received %q, want input batch", m.Type)
	}
	data, err := workerCh.Wire().EncodeBatch([]proto.BatchItem{{D: []byte(`1`)}, {D: []byte(`4`)}})
	if err != nil {
		t.Fatal(err)
	}
	bogus := sha256.Sum256([]byte(`tampered`))
	if err := workerCh.Send(&proto.Message{Type: proto.TypeResultBatch, Seq: m.Seq, Data: data, Digest: bogus[:]}); err != nil {
		t.Fatal(err)
	}

	_, err = pump(d.Source)
	if err == nil {
		t.Fatal("source delivered a batch whose digest does not match")
	}
	if !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("err = %v, want the digest-mismatch diagnosis", err)
	}
}
