// Package transport provides the communication channels of Pando's
// architecture (paper Figure 7): a WebSocket-like framed message channel
// with heartbeats (wsock), a WebRTC-like peer connection bootstrapped
// through a public signalling server, and adapters exposing channels as
// pull-stream duplexes.
//
// Both channel flavours provide the heartbeat mechanism that Pando's
// fault-tolerance design leans on (paper §1, §2.4.1): a peer that misses
// heartbeats for longer than the timeout is suspected of having crashed
// and its channel fails with ErrHeartbeatTimeout, which the StreamLender
// turns into re-lending of the values that peer held.
package transport

import (
	"errors"
	"net"
	"time"

	"pando/internal/proto"
)

// Errors surfaced by channels.
var (
	// ErrHeartbeatTimeout reports a peer that stopped answering within
	// the failure-detection bound (partial synchrony, paper §2.3).
	ErrHeartbeatTimeout = errors.New("transport: heartbeat timeout")
	// ErrChannelClosed reports use of a closed channel.
	ErrChannelClosed = errors.New("transport: channel closed")
)

// Channel is a bidirectional, ordered, reliable message channel with
// failure detection — the abstraction shared by the WebSocket-like and
// WebRTC-like transports.
type Channel interface {
	// Send transmits one message. It is safe for concurrent use.
	Send(m *proto.Message) error
	// Recv blocks until a message arrives or the channel fails. Ping and
	// pong frames are handled internally and never returned. Incoming
	// frames are accepted in any wire format regardless of negotiation
	// state, so SetWire never races the peer's switch.
	Recv() (*proto.Message, error)
	// Wire reports the format used for outgoing frames (proto.V1 until
	// negotiation selects another).
	Wire() proto.WireFormat
	// SetWire switches outgoing frames (and batch payload encoding) to
	// wf, the result of the hello/welcome negotiation.
	SetWire(wf proto.WireFormat)
	// Close shuts the channel down; pending Recv calls fail.
	Close() error
	// RemoteAddr describes the peer, for diagnostics.
	RemoteAddr() string
}

// Config tunes a channel's liveness detection.
type Config struct {
	// HeartbeatInterval is the period between pings. Zero selects the
	// default; negative disables heartbeats (for tests).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a silent peer is tolerated. Zero
	// selects 3x the interval.
	HeartbeatTimeout time.Duration
}

// DefaultHeartbeatInterval is the default ping period.
const DefaultHeartbeatInterval = 250 * time.Millisecond

func (c Config) interval() time.Duration {
	if c.HeartbeatInterval == 0 {
		return DefaultHeartbeatInterval
	}
	return c.HeartbeatInterval
}

func (c Config) timeout() time.Duration {
	if c.HeartbeatTimeout > 0 {
		return c.HeartbeatTimeout
	}
	iv := c.interval()
	if iv <= 0 {
		return 0 // heartbeats disabled: no read deadline
	}
	return 3 * iv
}

// Dialer opens a raw connection to a candidate address. It abstracts over
// real TCP and the in-memory simulated network so the same bootstrap code
// runs in both.
type Dialer func(addr string) (net.Conn, error)

// Acceptor abstracts a listener (net.Listener or netsim.Listener).
type Acceptor interface {
	Accept() (net.Conn, error)
	Close() error
	Addr() net.Addr
}

// TCPDialer dials over the real network.
func TCPDialer(timeout time.Duration) Dialer {
	return func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, timeout)
	}
}
