package transport

import (
	"fmt"

	"pando/internal/blob"
	"pando/internal/proto"
)

// This file implements the channel-level halves of content-addressed
// payload dedup (the '/pando/2.2.0' extension). Both halves are plain
// Channel wrappers, so the duplexes, the reply queue, and the fleet
// machinery compose around them unchanged:
//
//   - DedupMasterChannel rewrites outgoing inputs whose payload was
//     already transmitted on this channel into digest-only references,
//     interns first transmissions so references can be resolved later,
//     and answers the worker's blobmiss fetches out of the intern table.
//   - DedupWorkerChannel resolves incoming references against the
//     volunteer's blob cache, fetching the bytes over the same ordered
//     channel on a miss, and verifies every payload that carries a digest
//     before the processing function ever sees it.
//
// Digest mismatches and un-servable fetches are channel failures: the
// stack already treats a failed channel as a crashed worker and re-lends
// its outstanding values, so dedup corruption degrades to crash-stop
// exactly like frame corruption does.

// dedupMinSize is the smallest payload worth content-addressing; below
// it the digest plus bookkeeping rivals the payload itself.
const dedupMinSize = 1024

// sentDigestCap bounds the per-channel reference tracker (digests this
// channel has transmitted in full at least once). Beyond it the oldest
// tracked digest is forgotten — later repeats retransmit in full, which
// costs bandwidth but never correctness.
const sentDigestCap = 8192

// dedupSender is the master-side half.
type dedupSender struct {
	Channel
	intern *blob.Intern
	stats  *blob.FlowStats

	// sent tracks digests transmitted in full on this channel, with a
	// FIFO cap. Only the channel's single sender goroutine and the
	// coalescing writer touch it, but SendBatch encoding runs outside
	// the channel write lock, so guard it anyway via the channel's Send
	// serialization — the duplex Sink is the sole producer of inputs, so
	// no lock is needed here. (Control frames never carry Data.)
	sent  map[blob.Digest]struct{}
	order []blob.Digest
	next  int
}

// DedupMasterChannel wraps ch with the master-side dedup half. intern is
// the job-wide content store (shared across channels); stats receives
// this channel's hit/miss/evict counts and is typically shared by every
// channel of one worker name.
func DedupMasterChannel(ch Channel, intern *blob.Intern, stats *blob.FlowStats) Channel {
	return &dedupSender{
		Channel: ch,
		intern:  intern,
		stats:   stats,
		sent:    make(map[blob.Digest]struct{}),
	}
}

// transform rewrites one outgoing input in place: first transmission of a
// payload is interned and travels with its digest alongside the bytes
// (seeding the worker's cache); a repeat whose bytes are still interned
// travels as a digest-only reference.
func (s *dedupSender) transform(m *proto.Message) {
	if m.Type != proto.TypeInput && m.Type != proto.TypeInputBatch {
		return
	}
	if len(m.Data) < dedupMinSize {
		return
	}
	d := blob.Sum(m.Data)
	if _, seen := s.sent[d]; seen {
		if _, ok := s.intern.Get(d); ok {
			m.Digest = append(m.Digest[:0], d[:]...)
			m.Data = nil
			s.stats.Hits.Add(1)
			return
		}
		// Interned bytes were evicted since the last send: fall through
		// and retransmit in full, re-interning them.
	}
	s.intern.Add(d, m.Data)
	s.markSent(d)
	m.Digest = append(m.Digest[:0], d[:]...)
}

func (s *dedupSender) markSent(d blob.Digest) {
	if _, ok := s.sent[d]; ok {
		return
	}
	if len(s.order) < sentDigestCap {
		s.sent[d] = struct{}{}
		s.order = append(s.order, d)
		return
	}
	victim := s.order[s.next]
	delete(s.sent, victim)
	s.stats.Evicts.Add(1)
	s.order[s.next] = d
	s.next = (s.next + 1) % sentDigestCap
	s.sent[d] = struct{}{}
}

func (s *dedupSender) Send(m *proto.Message) error {
	s.transform(m)
	return s.Channel.Send(m)
}

// SendBatch keeps the vectored write path: every message is transformed,
// then the whole slice goes out as one write when the underlying channel
// supports it.
func (s *dedupSender) SendBatch(ms []*proto.Message) error {
	for _, m := range ms {
		s.transform(m)
	}
	return SendAll(s.Channel, ms)
}

// Recv passes frames through, servicing blobmiss fetches on the way: the
// worker asked for bytes its cache could not resolve, and the result
// source that calls Recv is exactly the goroutine that keeps pulling
// while values are outstanding, so a fetch is always answered.
func (s *dedupSender) Recv() (*proto.Message, error) {
	for {
		m, err := s.Channel.Recv()
		if err != nil {
			return nil, err
		}
		if m.Type != proto.TypeBlobMiss {
			return m, nil
		}
		d, ok := blob.SumOf(m.Digest)
		proto.Release(m)
		if !ok {
			// A miss without a well-formed digest cannot be answered and
			// the worker is wedged waiting for one: fail the channel.
			s.Channel.Close()
			return nil, fmt.Errorf("transport: blobmiss without digest")
		}
		s.stats.Misses.Add(1)
		reply := &proto.Message{Type: proto.TypeBlob, Digest: d[:]}
		if data, found := s.intern.Get(d); found {
			reply.Data = data
		} else {
			// Evicted between the reference and the fetch: report the blob
			// gone. The worker fails the channel and the engine re-lends
			// the value — bounded memory beats this corner case.
			reply.Err = "blob evicted from intern table"
		}
		if err := s.Channel.Send(reply); err != nil {
			return nil, err
		}
	}
}

// dedupReceiver is the worker-side half.
type dedupReceiver struct {
	Channel
	cache *blob.Cache

	// queue holds frames that arrived while a blob fetch was pending;
	// they are delivered FIFO before the channel is read again. Recv is
	// called from the single serve loop, so no lock guards it.
	queue []*proto.Message
}

// DedupWorkerChannel wraps ch with the worker-side dedup half, resolving
// payload references against cache (shared across the volunteer's
// sessions — content addressing makes that safe across reassignment).
func DedupWorkerChannel(ch Channel, cache *blob.Cache) Channel {
	return &dedupReceiver{Channel: ch, cache: cache}
}

// isLeaseControl reports frames that end or redirect the current lease.
// Receiving one while a blob fetch is pending means the master has moved
// on and the answer may never come: the pending input is abandoned (the
// master re-lends it) and the control frame takes its place in the
// delivery order.
func isLeaseControl(m *proto.Message) bool {
	switch m.Type {
	case proto.TypeReassign, proto.TypeGoodbye, proto.TypeError:
		return true
	case proto.TypeWelcome:
		return m.Func != "" // a mid-session re-welcome redirects the lease
	}
	return false
}

func (r *dedupReceiver) Recv() (*proto.Message, error) {
	for {
		var m *proto.Message
		if len(r.queue) > 0 {
			m = r.queue[0]
			r.queue = r.queue[1:]
		} else {
			var err error
			m, err = r.Channel.Recv()
			if err != nil {
				return nil, err
			}
		}
		out, err := r.resolve(m)
		if err != nil {
			r.Channel.Close()
			return nil, err
		}
		if out != nil {
			return out, nil
		}
		// Abandoned reference: loop and deliver whatever is next.
	}
}

// resolve rewrites an incoming digest-bearing input into a deliverable
// frame. It returns (nil, nil) when the frame was a reference abandoned
// because the lease ended mid-fetch.
func (r *dedupReceiver) resolve(m *proto.Message) (*proto.Message, error) {
	if m.Type != proto.TypeInput && m.Type != proto.TypeInputBatch {
		return m, nil
	}
	d, ok := blob.SumOf(m.Digest)
	if !ok {
		return m, nil // no digest: the plain data plane
	}
	seq := m.Seq
	if len(m.Data) > 0 {
		// Full transmission with its content address: verify before the
		// processing function sees a byte, then seed the cache.
		if err := r.cache.Put(d, m.Data); err != nil {
			proto.Release(m)
			return nil, fmt.Errorf("transport: payload for input %d: %w", seq, err)
		}
		return m, nil
	}
	// Digest-only reference: resolve locally or fetch.
	data, hit, err := r.cache.Get(d)
	if err != nil {
		proto.Release(m)
		return nil, fmt.Errorf("transport: cached payload for input %d: %w", seq, err)
	}
	if hit {
		m.Data = data
		return m, nil
	}
	return r.fetch(m, d)
}

// fetch asks the master for the bytes behind d and waits for the blob
// reply, queueing unrelated frames so their order is preserved. The
// channel is ordered and the master serves fetches from its result
// source, so the reply (or a lease-ending control frame) always arrives.
func (r *dedupReceiver) fetch(ref *proto.Message, d blob.Digest) (*proto.Message, error) {
	seq := ref.Seq
	if err := r.Channel.Send(&proto.Message{Type: proto.TypeBlobMiss, Digest: d[:]}); err != nil {
		proto.Release(ref)
		return nil, err
	}
	for {
		m, err := r.Channel.Recv()
		if err != nil {
			proto.Release(ref)
			return nil, err
		}
		if m.Type == proto.TypeBlob {
			got, ok := blob.SumOf(m.Digest)
			if ok && got == d {
				if m.Err != "" {
					errMsg := m.Err
					proto.Release(m)
					proto.Release(ref)
					return nil, fmt.Errorf("transport: blob fetch for input %d failed: %s", seq, errMsg)
				}
				if err := r.cache.Put(d, m.Data); err != nil {
					proto.Release(m)
					proto.Release(ref)
					return nil, fmt.Errorf("transport: fetched payload for input %d: %w", seq, err)
				}
				proto.Release(m)
				data, hit, err := r.cache.Get(d)
				if err != nil || !hit {
					proto.Release(ref)
					return nil, fmt.Errorf("transport: fetched blob vanished from cache: %v", err)
				}
				ref.Data = data
				return ref, nil
			}
			// A blob we did not ask for; drop it.
			proto.Release(m)
			continue
		}
		if isLeaseControl(m) {
			// The lease ended or moved mid-fetch: the reply may never
			// come. Abandon the reference (the master re-lends the value)
			// and let the control frame — after any frames that preceded
			// it — take over the delivery order.
			r.queue = append(r.queue, m)
			proto.Release(ref)
			return nil, nil
		}
		// Anything else (later inputs, strays) waits its turn behind the
		// pending one.
		r.queue = append(r.queue, m)
	}
}

// HintRate feeds a throughput estimate (items/s, typically the sched
// controller's per-worker EWMA) to ch's negotiated wire format, when that
// format adapts to it — the '/pando/2.2.0' compression policy skips
// compression on links the estimate says are not bandwidth-bound.
func HintRate(ch Channel, itemsPerSec float64) {
	if h, ok := ch.Wire().(proto.RateHinted); ok {
		h.HintRate(itemsPerSec)
	}
}
