package transport

// Regression tests for the duplex result-Seq discipline, forced by the
// chaos suite's packet-drop fault: a result frame that vanishes cleanly
// from the stream (no parse error, no desync) must fail the channel —
// re-lending the worker's values — rather than let FIFO matching pair
// every later result with the wrong value.

import (
	"strings"
	"testing"

	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/pullstream"
)

// pump runs a duplex source once and returns its answer.
func pump[O any](src pullstream.Source[O]) (O, error) {
	type ans struct {
		end error
		v   O
	}
	ansc := make(chan ans, 1)
	src(nil, func(end error, v O) { ansc <- ans{end, v} })
	a := <-ansc
	return a.v, a.end
}

// TestMasterDuplexDetectsDroppedResult: the worker answers inputs 1 and 2
// but result 1 is lost in flight; the master must fail the channel at
// result 2, not deliver f(2) as the answer to input 1.
func TestMasterDuplexDetectsDroppedResult(t *testing.T) {
	master, workerCh, _ := wsockPair(t, netsim.Loopback, Config{HeartbeatInterval: -1})
	d := MasterDuplex(master, JSONCodec[int]{}, JSONCodec[int]{})

	// Feed two inputs through the sink.
	inputs := []int{10, 20}
	go d.Sink(func(abort error, cb pullstream.Callback[int]) {
		if abort != nil || len(inputs) == 0 {
			cb(pullstream.ErrDone, 0)
			return
		}
		v := inputs[0]
		inputs = inputs[1:]
		cb(nil, v)
	})

	// Worker side: receive both inputs, "lose" the first result, answer
	// only the second — the cleanly-dropped-frame scenario.
	for i := 0; i < 2; i++ {
		m, err := workerCh.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type != proto.TypeInput {
			t.Fatalf("worker received %q, want input", m.Type)
		}
		if m.Seq == 2 {
			if err := workerCh.Send(&proto.Message{Type: proto.TypeResult, Seq: m.Seq, Data: []byte(`400`)}); err != nil {
				t.Fatal(err)
			}
		}
	}

	_, err := pump(d.Source)
	if err == nil {
		t.Fatal("source delivered a result despite the hole in the seq sequence")
	}
	if !strings.Contains(err.Error(), "frame lost") {
		t.Fatalf("err = %v, want the frame-loss diagnosis", err)
	}
}

// TestMasterDuplexAcceptsContiguousResults: the discipline must not
// reject an honest serial worker.
func TestMasterDuplexAcceptsContiguousResults(t *testing.T) {
	master, workerCh, _ := wsockPair(t, netsim.Loopback, Config{HeartbeatInterval: -1})
	d := MasterDuplex(master, JSONCodec[int]{}, JSONCodec[int]{})

	inputs := []int{1, 2, 3}
	go d.Sink(func(abort error, cb pullstream.Callback[int]) {
		if abort != nil || len(inputs) == 0 {
			cb(pullstream.ErrDone, 0)
			return
		}
		v := inputs[0]
		inputs = inputs[1:]
		cb(nil, v)
	})
	go func() {
		for {
			m, err := workerCh.Recv()
			if err != nil {
				return
			}
			switch m.Type {
			case proto.TypeInput:
				_ = workerCh.Send(&proto.Message{Type: proto.TypeResult, Seq: m.Seq, Data: m.Data})
			case proto.TypeGoodbye:
				_ = workerCh.Send(&proto.Message{Type: proto.TypeGoodbye})
				return
			}
		}
	}()

	for want := 1; want <= 3; want++ {
		v, err := pump(d.Source)
		if err != nil {
			t.Fatalf("result %d: %v", want, err)
		}
		if v != want {
			t.Fatalf("result %d = %d", want, v)
		}
	}
}

// TestGroupedMasterDuplexDetectsDroppedBatch is the grouped-frame analog.
func TestGroupedMasterDuplexDetectsDroppedBatch(t *testing.T) {
	master, workerCh, _ := wsockPair(t, netsim.Loopback, Config{HeartbeatInterval: -1})
	d := GroupedMasterDuplex(master, JSONCodec[int]{}, JSONCodec[int]{})

	batches := [][]int{{1, 2}, {3, 4}}
	go d.Sink(func(abort error, cb pullstream.Callback[[]int]) {
		if abort != nil || len(batches) == 0 {
			cb(pullstream.ErrDone, nil)
			return
		}
		v := batches[0]
		batches = batches[1:]
		cb(nil, v)
	})

	for i := 0; i < 2; i++ {
		m, err := workerCh.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type != proto.TypeInputBatch {
			t.Fatalf("worker received %q, want input batch", m.Type)
		}
		if m.Seq == 2 {
			data, err := workerCh.Wire().EncodeBatch([]proto.BatchItem{{D: []byte(`9`)}, {D: []byte(`16`)}})
			if err != nil {
				t.Fatal(err)
			}
			if err := workerCh.Send(&proto.Message{Type: proto.TypeResultBatch, Seq: m.Seq, Data: data}); err != nil {
				t.Fatal(err)
			}
		}
	}

	_, err := pump(d.Source)
	if err == nil {
		t.Fatal("source delivered a batch despite the hole in the seq sequence")
	}
	if !strings.Contains(err.Error(), "frame lost") {
		t.Fatalf("err = %v, want the frame-loss diagnosis", err)
	}
}
