package transport

import (
	"net"
	"strings"
	"sync/atomic"
	"testing"

	"pando/internal/proto"
)

// TestHelloRejectionReleasesWelcome pins the Hello error-path release
// discipline (the bufown analyzer's flagship repo finding): a rejection
// frame must be returned to the arena after the error is built from its
// decode-time copies, and the error text must survive the release. The
// poison canary scribbles every recycled buffer, so if the error were
// built from state aliasing the frame after Release, the assertion on the
// text would read 0xDB garbage instead of passing by luck.
func TestHelloRejectionReleasesWelcome(t *testing.T) {
	prevPoison := proto.SetPoisonPut(true)
	defer proto.SetPoisonPut(prevPoison)
	var errFrames atomic.Int32
	prevObs := proto.SetReleaseObserver(func(m *proto.Message) {
		if m.Type == proto.TypeError {
			errFrames.Add(1)
		}
	})
	defer proto.SetReleaseObserver(prevObs)

	a, b := net.Pipe()
	const rejection = "registry full: volunteer quota exhausted"
	serverErr := make(chan error, 1)
	go func() {
		hello, err := proto.ReadFrame(b)
		if err != nil {
			serverErr <- err
			return
		}
		proto.Release(hello)
		serverErr <- proto.WriteFrame(b, &proto.Message{Type: proto.TypeError, Err: rejection})
	}()

	ch := NewWSock(a, Config{})
	welcome, err := Hello(ch, &proto.Message{Peer: "volunteer-1"})
	if err == nil {
		t.Fatalf("rejected handshake returned welcome %+v and nil error", welcome)
	}
	if !strings.Contains(err.Error(), rejection) {
		t.Fatalf("rejection text lost or corrupted after release: %q", err)
	}
	if serr := <-serverErr; serr != nil {
		t.Fatalf("server side: %v", serr)
	}
	if errFrames.Load() == 0 {
		t.Fatal("rejection frame never returned to the arena (release regression on the Hello error path)")
	}
}
