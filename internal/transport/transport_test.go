package transport

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/pullstream"
)

func wsockPair(t *testing.T, link netsim.Link, cfg Config) (*WSock, *WSock, *netsim.Pipe) {
	t.Helper()
	p := netsim.NewPipe(link)
	a := NewWSock(p.A, cfg)
	b := NewWSock(p.B, cfg)
	t.Cleanup(func() {
		a.Close()
		b.Close()
		p.Cut()
	})
	return a, b, p
}

func TestWSockSendRecv(t *testing.T) {
	a, b, _ := wsockPair(t, netsim.Loopback, Config{HeartbeatInterval: -1})
	if err := a.Send(&proto.Message{Type: proto.TypeInput, Seq: 1, Data: []byte(`"x"`)}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != proto.TypeInput || m.Seq != 1 {
		t.Fatalf("got %+v", m)
	}
}

func TestWSockOrderPreserved(t *testing.T) {
	a, b, _ := wsockPair(t, netsim.LAN, Config{HeartbeatInterval: -1})
	const n = 50
	go func() {
		for i := uint64(1); i <= n; i++ {
			if err := a.Send(&proto.Message{Type: proto.TypeInput, Seq: i}); err != nil {
				return
			}
		}
	}()
	for i := uint64(1); i <= n; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Seq != i {
			t.Fatalf("out of order: got %d, want %d", m.Seq, i)
		}
	}
}

func TestWSockHeartbeatKeepsIdleChannelAlive(t *testing.T) {
	cfg := Config{HeartbeatInterval: 20 * time.Millisecond}
	a, b, _ := wsockPair(t, netsim.Loopback, cfg)
	// Stay idle for several timeouts; heartbeats must keep it alive.
	time.Sleep(300 * time.Millisecond)
	if err := a.Send(&proto.Message{Type: proto.TypeInput, Seq: 9}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != 9 {
		t.Fatalf("got %+v", m)
	}
}

func TestWSockHeartbeatDetectsCrash(t *testing.T) {
	cfg := Config{HeartbeatInterval: 20 * time.Millisecond}
	a, _, pipe := wsockPair(t, netsim.Loopback, cfg)
	pipe.Cut() // crash-stop: the peer vanishes without goodbye
	_, err := a.Recv()
	if err == nil {
		t.Fatal("Recv succeeded after crash")
	}
}

func TestWSockHeartbeatTimeoutOnSilentPeer(t *testing.T) {
	// A peer that is reachable but completely silent (no pings) must be
	// suspected after the timeout.
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	a := NewWSock(p.A, Config{HeartbeatInterval: 20 * time.Millisecond, HeartbeatTimeout: 80 * time.Millisecond})
	defer a.Close()
	// p.B side never answers: we read its bytes to keep the pipe from
	// blocking but send nothing.
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := p.B.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	_, err := a.Recv()
	if !errors.Is(err, ErrHeartbeatTimeout) {
		t.Fatalf("err = %v, want ErrHeartbeatTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("detection took %v, want about the 80ms timeout", elapsed)
	}
}

func TestWSockSendAfterClose(t *testing.T) {
	a, _, _ := wsockPair(t, netsim.Loopback, Config{HeartbeatInterval: -1})
	a.Close()
	if err := a.Send(&proto.Message{Type: proto.TypePing}); err == nil {
		t.Fatal("Send succeeded on closed channel")
	}
}

func TestWSockConcurrentSenders(t *testing.T) {
	a, b, _ := wsockPair(t, netsim.Loopback, Config{HeartbeatInterval: -1})
	var wg sync.WaitGroup
	const senders, per = 8, 25
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := a.Send(&proto.Message{Type: proto.TypeInput}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	recvd := 0
	for recvd < senders*per {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
		recvd++
	}
	wg.Wait()
}

func TestSignalServerRelay(t *testing.T) {
	ln := netsim.NewListener("signal", netsim.Loopback)
	srv := NewSignalServer()
	go srv.Serve(ln, Config{HeartbeatInterval: -1})
	defer srv.Close()

	dial := func() Channel {
		c, _, err := ln.Dial()
		if err != nil {
			t.Fatal(err)
		}
		return NewWSock(c, Config{HeartbeatInterval: -1})
	}

	alice := dial()
	bob := dial()
	if err := JoinSignal(alice, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := JoinSignal(bob, "bob"); err != nil {
		t.Fatal(err)
	}

	if err := alice.Send(&proto.Message{Type: proto.TypeOffer, To: "bob", Addr: "somewhere"}); err != nil {
		t.Fatal(err)
	}
	m, err := bob.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != proto.TypeOffer || m.Peer != "alice" || m.Addr != "somewhere" {
		t.Fatalf("relayed message: %+v", m)
	}
}

func TestSignalServerUnknownPeer(t *testing.T) {
	ln := netsim.NewListener("signal", netsim.Loopback)
	srv := NewSignalServer()
	go srv.Serve(ln, Config{HeartbeatInterval: -1})
	defer srv.Close()

	c, _, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	alice := NewWSock(c, Config{HeartbeatInterval: -1})
	if err := JoinSignal(alice, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Send(&proto.Message{Type: proto.TypeOffer, To: "ghost"}); err != nil {
		t.Fatal(err)
	}
	m, err := alice.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != proto.TypeError || !strings.Contains(m.Err, "ghost") {
		t.Fatalf("got %+v, want error about ghost", m)
	}
}

func TestSignalServerDuplicateID(t *testing.T) {
	ln := netsim.NewListener("signal", netsim.Loopback)
	srv := NewSignalServer()
	go srv.Serve(ln, Config{HeartbeatInterval: -1})
	defer srv.Close()

	c1, _, _ := ln.Dial()
	first := NewWSock(c1, Config{HeartbeatInterval: -1})
	if err := JoinSignal(first, "dup"); err != nil {
		t.Fatal(err)
	}
	c2, _, _ := ln.Dial()
	second := NewWSock(c2, Config{HeartbeatInterval: -1})
	if err := JoinSignal(second, "dup"); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

// TestArchitectureBootstrapWebRTC reproduces the paper's Figure 7
// bootstrap: the master joins the public server, a volunteer joins, they
// exchange offer/answer through the relay, establish a direct connection,
// and the signalling connection closes.
func TestArchitectureBootstrapWebRTC(t *testing.T) {
	cfg := Config{HeartbeatInterval: -1}

	// Public server.
	signalLn := netsim.NewListener("public-server", netsim.WAN)
	srv := NewSignalServer()
	go srv.Serve(signalLn, cfg)
	defer srv.Close()

	// Master: direct listener + signalling registration.
	directLn := netsim.NewListener("master-direct", netsim.WAN)
	msc, _, err := signalLn.Dial()
	if err != nil {
		t.Fatal(err)
	}
	masterSignal := NewWSock(msc, cfg)
	if err := JoinSignal(masterSignal, "master"); err != nil {
		t.Fatal(err)
	}
	answerer := NewRTCAnswerer(masterSignal, directLn, cfg)
	defer answerer.Close()

	// Volunteer: joins the relay, offers, establishes direct connection.
	vsc, _, err := signalLn.Dial()
	if err != nil {
		t.Fatal(err)
	}
	volSignal := NewWSock(vsc, cfg)
	if err := JoinSignal(volSignal, "volunteer-1"); err != nil {
		t.Fatal(err)
	}
	dial := func(addr string) (net.Conn, error) {
		if addr != "master-direct" {
			return nil, fmt.Errorf("unexpected candidate %q", addr)
		}
		c, _, err := directLn.Dial()
		return c, err
	}
	volCh, err := RTCOffer(volSignal, "volunteer-1", "master", dial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer volCh.Close()

	masterCh := <-answerer.Incoming()
	defer masterCh.Close()

	// Application data flows over the direct channel.
	if err := masterCh.Send(&proto.Message{Type: proto.TypeInput, Seq: 7, Data: []byte(`"frame-7"`)}); err != nil {
		t.Fatal(err)
	}
	m, err := volCh.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != 7 {
		t.Fatalf("got %+v", m)
	}

	// The volunteer's signalling connection must be closed.
	if err := volSignal.Send(&proto.Message{Type: proto.TypeOffer, To: "master"}); err == nil {
		t.Fatal("signalling channel still open after establishment")
	}
}

func TestMasterDuplexWorkerServeRoundTrip(t *testing.T) {
	cfg := Config{HeartbeatInterval: -1}
	p := netsim.NewPipe(netsim.LAN)
	defer p.Cut()
	masterCh := NewWSock(p.A, cfg)
	workerCh := NewWSock(p.B, cfg)

	go func() {
		err := WorkerServe[int, int](workerCh, JSONCodec[int]{}, JSONCodec[int]{}, func(v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Error(err)
		}
	}()

	d := MasterDuplex[int, int](masterCh, JSONCodec[int]{}, JSONCodec[int]{})
	go d.Sink(pullstream.Count(10))
	got, err := pullstream.Collect(d.Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d results, want 10", len(got))
	}
	for i, v := range got {
		if v != (i+1)*(i+1) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMasterDuplexWorkerApplicationError(t *testing.T) {
	cfg := Config{HeartbeatInterval: -1}
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	masterCh := NewWSock(p.A, cfg)
	workerCh := NewWSock(p.B, cfg)

	go WorkerServe[int, int](workerCh, JSONCodec[int]{}, JSONCodec[int]{}, func(v int) (int, error) {
		if v == 3 {
			return 0, errors.New("render failed")
		}
		return v, nil
	})

	d := MasterDuplex[int, int](masterCh, JSONCodec[int]{}, JSONCodec[int]{})
	go d.Sink(pullstream.Count(10))
	got, err := pullstream.Collect(d.Source)
	var werr *WorkerError
	if !errors.As(err, &werr) {
		t.Fatalf("err = %v, want WorkerError", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v, want 2 results before failure", got)
	}
}

func TestMasterDuplexWorkerCrash(t *testing.T) {
	cfg := Config{HeartbeatInterval: 20 * time.Millisecond}
	p := netsim.NewPipe(netsim.Loopback)
	masterCh := NewWSock(p.A, cfg)
	workerCh := NewWSock(p.B, cfg)

	go WorkerServe[int, int](workerCh, JSONCodec[int]{}, JSONCodec[int]{}, func(v int) (int, error) {
		return v, nil
	})

	d := MasterDuplex[int, int](masterCh, JSONCodec[int]{}, JSONCodec[int]{})
	go d.Sink(pullstream.Count(100))

	// Pull two results, then crash the link while values are in flight.
	pull := func() (int, error) {
		type ans struct {
			end error
			v   int
		}
		ch := make(chan ans, 1)
		d.Source(nil, func(end error, v int) { ch <- ans{end, v} })
		a := <-ch
		return a.v, a.end
	}
	for want := 1; want <= 2; want++ {
		v, end := pull()
		if end != nil {
			t.Fatalf("result %d: unexpected end %v", want, end)
		}
		if v != want {
			t.Fatalf("result = %d, want %d", v, want)
		}
	}
	p.Cut() // crash-stop while the worker still holds values

	deadline := time.After(5 * time.Second)
	for {
		errc := make(chan error, 1)
		go func() {
			_, end := pull()
			errc <- end
		}()
		select {
		case end := <-errc:
			if end != nil {
				return // failure detected, as required
			}
		case <-deadline:
			t.Fatal("crash never detected")
		}
	}
}

func TestWSockSurvivesTransientStall(t *testing.T) {
	// Partial synchrony (paper §2.3): a stall shorter than the heartbeat
	// timeout is not a crash — the channel must survive it and deliver
	// the delayed traffic afterwards.
	cfg := Config{HeartbeatInterval: 30 * time.Millisecond, HeartbeatTimeout: 400 * time.Millisecond}
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	a := NewWSock(p.A, cfg)
	b := NewWSock(p.B, cfg)
	defer a.Close()
	defer b.Close()

	// Traffic flows, then the link stalls briefly.
	if err := a.Send(&proto.Message{Type: proto.TypeInput, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	p.Pause()
	time.Sleep(150 * time.Millisecond) // well below the 400ms timeout
	p.Resume()

	if err := a.Send(&proto.Message{Type: proto.TypeInput, Seq: 2}); err != nil {
		t.Fatalf("send after stall: %v", err)
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatalf("recv after stall: %v (stall was wrongly treated as a crash)", err)
	}
	if m.Seq != 2 {
		t.Fatalf("seq = %d", m.Seq)
	}
}

func TestWSockStallLongerThanTimeoutIsACrash(t *testing.T) {
	cfg := Config{HeartbeatInterval: 20 * time.Millisecond, HeartbeatTimeout: 80 * time.Millisecond}
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	a := NewWSock(p.A, cfg)
	defer a.Close()
	b := NewWSock(p.B, cfg)
	defer b.Close()

	p.Pause() // stall forever: must be suspected after the timeout
	start := time.Now()
	_, err := a.Recv()
	if err == nil {
		t.Fatal("channel survived an unbounded stall")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("detection took %v", elapsed)
	}
}

func TestSignalServerOnJoinHook(t *testing.T) {
	ln := netsim.NewListener("signal-hook", netsim.Loopback)
	srv := NewSignalServer()
	var mu sync.Mutex
	var joined []string
	srv.OnJoin = func(id string) {
		mu.Lock()
		joined = append(joined, id)
		mu.Unlock()
	}
	go srv.Serve(ln, Config{HeartbeatInterval: -1})
	defer srv.Close()

	dial := func() Channel {
		c, _, err := ln.Dial()
		if err != nil {
			t.Fatal(err)
		}
		return NewWSock(c, Config{HeartbeatInterval: -1})
	}
	if err := JoinSignal(dial(), "alice"); err != nil {
		t.Fatal(err)
	}
	if err := JoinSignal(dial(), "bob"); err != nil {
		t.Fatal(err)
	}
	// A duplicate registration is refused and must not fire the hook.
	if err := JoinSignal(dial(), "alice"); err == nil {
		t.Fatal("duplicate join accepted")
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(joined)
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("OnJoin fired %d times, want 2", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(joined) != 2 || joined[0] != "alice" || joined[1] != "bob" {
		t.Fatalf("OnJoin saw %v, want [alice bob]", joined)
	}
}
