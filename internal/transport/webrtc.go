package transport

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"

	"pando/internal/proto"
)

// This file implements the WebRTC-like bootstrap of the paper's
// architecture (Figure 7): the signalling of possible connection endpoints
// between peers is done through a Public Server over a separate WebSocket
// connection, a direct peer connection is then established, and the
// signalling connection closes once the direct connection exists.
//
// Compared to real ICE we exchange a single host candidate (the answering
// peer's listen address) plus a session nonce; NAT traversal is modelled
// by the answering side being the one that must be reachable — volunteers
// behind NAT always dial out, exactly the property WebRTC gave the paper.

// RTCAnswerer accepts WebRTC-like connections: it answers offers arriving
// on its signalling channel with its own candidate address and then
// matches inbound direct connections to the offer by nonce.
type RTCAnswerer struct {
	signal Channel
	acc    Acceptor
	cfg    Config

	mu      sync.Mutex
	pending map[string]chan Channel // nonce -> delivery
	closed  bool

	// wg tracks the signal/accept loops and per-connection establishment
	// goroutines; incoming closes once they all exit, so range loops over
	// Incoming() (master ServeRTC) terminate after Close instead of
	// leaking.
	wg sync.WaitGroup

	// Incoming delivers fully established peer channels.
	incoming chan Channel
}

// NewRTCAnswerer starts answering offers received on signal, instructing
// peers to connect directly to acc's address. The caller must already have
// joined the signalling relay (JoinSignal). Established channels are
// delivered on Incoming(), which closes after Close (or after both the
// signalling channel and the acceptor fail).
func NewRTCAnswerer(signal Channel, acc Acceptor, cfg Config) *RTCAnswerer {
	a := &RTCAnswerer{
		signal:   signal,
		acc:      acc,
		cfg:      cfg,
		pending:  make(map[string]chan Channel),
		incoming: make(chan Channel, 16),
	}
	a.wg.Add(2)
	go func() { defer a.wg.Done(); a.signalLoop() }()
	go func() { defer a.wg.Done(); a.acceptLoop() }()
	go func() { a.wg.Wait(); close(a.incoming) }()
	return a
}

// Incoming delivers established peer channels. The channel closes once
// the answerer stops (Close, or signalling and acceptor both gone).
func (a *RTCAnswerer) Incoming() <-chan Channel { return a.incoming }

// Close stops answering.
func (a *RTCAnswerer) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	a.signal.Close()
	a.acc.Close()
}

func (a *RTCAnswerer) signalLoop() {
	for {
		m, err := a.signal.Recv()
		if err != nil {
			return
		}
		if m.Type != proto.TypeOffer {
			proto.Release(m)
			continue
		}
		peer := m.Peer
		proto.Release(m)
		nonce := newNonce()
		ch := make(chan Channel, 1)
		a.mu.Lock()
		a.pending[nonce] = ch
		a.mu.Unlock()
		// Answer with our host candidate and the session nonce.
		_ = a.signal.Send(&proto.Message{
			Type:  proto.TypeAnswer,
			To:    peer,
			Addr:  a.acc.Addr().String(),
			Token: nonce,
		})
	}
}

func (a *RTCAnswerer) acceptLoop() {
	for {
		conn, err := a.acc.Accept()
		if err != nil {
			return
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			ch := NewWSock(conn, a.cfg)
			m, err := ch.Recv()
			if err != nil {
				ch.Close()
				return
			}
			if m.Type != proto.TypeCandidate || m.Token == "" {
				proto.Release(m)
				ch.Close()
				return
			}
			token := m.Token
			proto.Release(m)
			a.mu.Lock()
			deliver, ok := a.pending[token]
			delete(a.pending, token)
			a.mu.Unlock()
			if !ok {
				ch.Close()
				return
			}
			// Confirm establishment to the peer.
			if err := ch.Send(&proto.Message{Type: proto.TypeWelcome}); err != nil {
				ch.Close()
				return
			}
			deliver <- ch
			select {
			case a.incoming <- ch:
			default:
				// Receiver gone; drop.
				ch.Close()
			}
		}()
	}
}

// RTCOffer establishes a WebRTC-like direct channel to remoteID: it sends
// an offer through the signalling channel, receives the answer's candidate
// address and nonce, dials the candidate directly, and proves the session
// with the nonce. On success the signalling channel is closed, as in the
// paper ("That connection closes after the WebRTC connection is
// established").
//
// An empty remoteID is the pool-mode bootstrap: the relay assigns a
// registered master (see SignalServer.EnablePool) and the answer from
// whichever master it picked is accepted. functions, when non-nil, rides
// on the offer so the relay can prefer masters serving them.
func RTCOffer(signal Channel, selfID, remoteID string, dial Dialer, cfg Config) (Channel, error) {
	return RTCOfferServing(signal, selfID, remoteID, nil, dial, cfg)
}

// RTCOfferServing is RTCOffer with the volunteer's function list attached
// to the offer, for pool-mode master assignment.
func RTCOfferServing(signal Channel, selfID, remoteID string, functions []string, dial Dialer, cfg Config) (Channel, error) {
	if err := signal.Send(&proto.Message{Type: proto.TypeOffer, To: remoteID, Peer: selfID, Functions: functions}); err != nil {
		return nil, fmt.Errorf("transport: send offer: %w", err)
	}
	var addr, nonce string
	for {
		m, err := signal.Recv()
		if err != nil {
			return nil, fmt.Errorf("transport: awaiting answer: %w", err)
		}
		if m.Type == proto.TypeError {
			rerr := fmt.Errorf("transport: signalling error: %s", m.Err)
			proto.Release(m)
			return nil, rerr
		}
		if m.Type == proto.TypeAnswer && (remoteID == "" || m.Peer == remoteID) {
			addr, nonce = m.Addr, m.Token
			proto.Release(m)
			break
		}
		// Unrelated signalling traffic (stale answers, candidates for
		// other sessions): drop the frame and keep waiting.
		proto.Release(m)
	}

	conn, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial candidate %q: %w", addr, err)
	}
	ch := NewWSock(conn, cfg)
	if err := ch.Send(&proto.Message{Type: proto.TypeCandidate, Token: nonce, Peer: selfID}); err != nil {
		ch.Close()
		return nil, err
	}
	m, err := ch.Recv()
	if err != nil {
		ch.Close()
		return nil, fmt.Errorf("transport: establishment: %w", err)
	}
	if m.Type != proto.TypeWelcome {
		rerr := fmt.Errorf("transport: unexpected establishment reply %q", m.Type)
		proto.Release(m)
		ch.Close()
		return nil, rerr
	}
	proto.Release(m)
	// Direct connection established: the signalling connection closes.
	signal.Close()
	return ch, nil
}

func newNonce() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// fixed nonce only to keep the bootstrap total.
		return "fallback-nonce"
	}
	return hex.EncodeToString(b[:])
}
