package transport

import (
	"bytes"
	"errors"
	"testing"

	"pando/internal/blob"
	"pando/internal/netsim"
	"pando/internal/proto"
)

func dedupPayload(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag + byte(i*13)
	}
	return b
}

// dedupPair wires a master-half and worker-half dedup channel over one
// simulated pipe, returning them with their shared stores.
func dedupPair(t *testing.T) (Channel, Channel, *blob.Intern, *blob.Cache, *blob.FlowStats) {
	t.Helper()
	a, b, _ := wsockPair(t, netsim.Loopback, Config{HeartbeatInterval: -1})
	intern := blob.NewIntern(0)
	cache := blob.NewCache(0)
	stats := &blob.FlowStats{}
	return DedupMasterChannel(a, intern, stats), DedupWorkerChannel(b, cache), intern, cache, stats
}

// TestDedupFirstSendCarriesDigest pins the seeding half of the protocol:
// a large payload's first transmission travels in full with its content
// address, small payloads stay on the plain data plane.
func TestDedupFirstSendCarriesDigest(t *testing.T) {
	a, b, _ := wsockPair(t, netsim.Loopback, Config{HeartbeatInterval: -1})
	master := DedupMasterChannel(a, blob.NewIntern(0), &blob.FlowStats{})

	big := dedupPayload(1, 2048)
	if err := master.Send(&proto.Message{Type: proto.TypeInput, Seq: 1, Data: append([]byte(nil), big...)}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv() // raw peer: see exactly what crossed the wire
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Data, big) {
		t.Fatal("first transmission did not carry the payload")
	}
	d := blob.Sum(big)
	if got, ok := blob.SumOf(m.Digest); !ok || got != d {
		t.Fatalf("first transmission digest = %x, want %x", m.Digest, d[:])
	}
	proto.Release(m)

	small := dedupPayload(2, 64)
	if err := master.Send(&proto.Message{Type: proto.TypeInput, Seq: 2, Data: small}); err != nil {
		t.Fatal(err)
	}
	m, err = b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Digest) != 0 {
		t.Fatal("small payload was content-addressed")
	}
	proto.Release(m)
}

// TestDedupRepeatResolvesFromCache is the headline exchange: the second
// transmission of the same bytes crosses as a digest-only reference and
// the worker half resolves it locally.
func TestDedupRepeatResolvesFromCache(t *testing.T) {
	master, wkr, _, _, stats := dedupPair(t)
	big := dedupPayload(3, 4096)

	for seq := uint64(1); seq <= 2; seq++ {
		if err := master.Send(&proto.Message{Type: proto.TypeInput, Seq: seq, Data: append([]byte(nil), big...)}); err != nil {
			t.Fatal(err)
		}
		m, err := wkr.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Seq != seq || !bytes.Equal(m.Data, big) {
			t.Fatalf("recv %d: payload mismatch (%d bytes)", seq, len(m.Data))
		}
		proto.Release(m)
	}
	if hits := stats.Hits.Load(); hits != 1 {
		t.Fatalf("%d reference hits, want 1", hits)
	}
}

// TestDedupMissFetchesBlob forces a cache miss (degenerate single-entry
// cache displaced by a second payload) and checks the blobmiss/blob
// exchange restores the bytes, counting one miss.
func TestDedupMissFetchesBlob(t *testing.T) {
	a, b, _ := wsockPair(t, netsim.Loopback, Config{HeartbeatInterval: -1})
	stats := &blob.FlowStats{}
	master := DedupMasterChannel(a, blob.NewIntern(0), stats)
	wkr := DedupWorkerChannel(b, blob.NewCache(-1))

	first := dedupPayload(4, 2048)
	second := dedupPayload(5, 2048)
	// Seed both payloads in order; the single-entry cache keeps only the
	// second.
	for seq, data := range [][]byte{first, second} {
		if err := master.Send(&proto.Message{Type: proto.TypeInput, Seq: uint64(seq + 1), Data: append([]byte(nil), data...)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		m, err := wkr.Recv()
		if err != nil {
			t.Fatal(err)
		}
		proto.Release(m)
	}

	// The repeat of the displaced payload arrives as a reference the
	// cache cannot resolve: the worker fetches. The master half services
	// the fetch from its Recv loop, which returns when the worker's
	// result lands.
	done := make(chan error, 1)
	go func() {
		m, err := wkr.Recv()
		if err != nil {
			done <- err
			return
		}
		if !bytes.Equal(m.Data, first) {
			done <- errors.New("fetched payload differs from the original")
			proto.Release(m)
			return
		}
		proto.Release(m)
		done <- wkr.Send(&proto.Message{Type: proto.TypeResult, Seq: 3})
	}()
	if err := master.Send(&proto.Message{Type: proto.TypeInput, Seq: 3, Data: append([]byte(nil), first...)}); err != nil {
		t.Fatal(err)
	}
	m, err := master.Recv() // services the blobmiss, then yields the result
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != proto.TypeResult || m.Seq != 3 {
		t.Fatalf("master received %+v, want the result frame", m)
	}
	proto.Release(m)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if misses := stats.Misses.Load(); misses != 1 {
		t.Fatalf("%d misses, want 1", misses)
	}
}

// TestDedupPoisonedCacheCrashStops pins the corruption contract: a
// poisoned cache entry surfaces as a digest mismatch on the next
// reference, failing the channel — wrong bytes must never reach the
// processing function.
func TestDedupPoisonedCacheCrashStops(t *testing.T) {
	master, wkr, _, cache, _ := dedupPair(t)
	big := dedupPayload(6, 4096)

	if err := master.Send(&proto.Message{Type: proto.TypeInput, Seq: 1, Data: append([]byte(nil), big...)}); err != nil {
		t.Fatal(err)
	}
	m, err := wkr.Recv()
	if err != nil {
		t.Fatal(err)
	}
	proto.Release(m)

	if !cache.PoisonNewest() {
		t.Fatal("nothing to poison: the cache was never seeded")
	}
	if err := master.Send(&proto.Message{Type: proto.TypeInput, Seq: 2, Data: append([]byte(nil), big...)}); err != nil {
		t.Fatal(err)
	}
	if _, err := wkr.Recv(); !errors.Is(err, blob.ErrDigestMismatch) {
		t.Fatalf("reference to poisoned entry: %v, want ErrDigestMismatch", err)
	}
}

// TestDedupFailedFetchCrashStops: a blob reply carrying an error (the
// intern table evicted the bytes) fails the worker channel rather than
// wedging or inventing data.
func TestDedupFailedFetchCrashStops(t *testing.T) {
	a, b, _ := wsockPair(t, netsim.Loopback, Config{HeartbeatInterval: -1})
	wkr := DedupWorkerChannel(b, blob.NewCache(0))

	d := blob.Sum(dedupPayload(7, 2048))
	if err := a.Send(&proto.Message{Type: proto.TypeInput, Seq: 1, Digest: d[:]}); err != nil {
		t.Fatal(err)
	}
	go func() {
		// Raw peer standing in for the master: answer the miss with the
		// eviction error.
		m, err := a.Recv()
		if err != nil {
			return
		}
		if m.Type == proto.TypeBlobMiss {
			_ = a.Send(&proto.Message{Type: proto.TypeBlob, Digest: append([]byte(nil), m.Digest...), Err: "blob evicted from intern table"})
		}
		proto.Release(m)
	}()
	if _, err := wkr.Recv(); err == nil {
		t.Fatal("failed fetch returned a message, want a channel error")
	}
}

// TestDedupFetchAbandonedOnReassign: a lease-control frame arriving
// while a fetch is pending abandons the referenced input (the master
// re-lends it) and takes its place in the delivery order.
func TestDedupFetchAbandonedOnReassign(t *testing.T) {
	a, b, _ := wsockPair(t, netsim.Loopback, Config{HeartbeatInterval: -1})
	wkr := DedupWorkerChannel(b, blob.NewCache(0))

	d := blob.Sum(dedupPayload(8, 2048))
	if err := a.Send(&proto.Message{Type: proto.TypeInput, Seq: 1, Digest: d[:]}); err != nil {
		t.Fatal(err)
	}
	go func() {
		m, err := a.Recv()
		if err != nil {
			return
		}
		if m.Type == proto.TypeBlobMiss {
			_ = a.Send(&proto.Message{Type: proto.TypeReassign, Func: "elsewhere"})
		}
		proto.Release(m)
	}()
	m, err := wkr.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != proto.TypeReassign {
		t.Fatalf("received %+v, want the reassign frame", m)
	}
	proto.Release(m)
}
