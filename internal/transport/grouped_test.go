package transport

import (
	"errors"
	"testing"
	"time"

	"pando/internal/limiter"
	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/pullstream"
)

func TestBatchEncodeDecodeRoundTrip(t *testing.T) {
	items := []proto.BatchItem{
		{D: []byte(`1`)},
		{D: []byte(`"two"`)},
		{E: "boom"},
	}
	data, err := proto.EncodeBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	got, err := proto.DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[0].D) != `1` || got[2].E != "boom" {
		t.Fatalf("got %+v", got)
	}
	if _, err := proto.DecodeBatch([]byte("not-json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// groupedPipeline composes Group -> Limit(GroupedMasterDuplex) -> Flatten
// for single-channel tests (safe here because the source is a plain
// counter, not a lender sub-stream).
func groupedPipeline(masterCh Channel, group, inFlight int) pullstream.Through[int, int] {
	return func(src pullstream.Source[int]) pullstream.Source[int] {
		grouped := pullstream.Group[int](group)(src)
		d := GroupedMasterDuplex[int, int](masterCh, JSONCodec[int]{}, JSONCodec[int]{})
		results := limiter.Limit(d, inFlight)(grouped)
		return pullstream.Flatten[int]()(results)
	}
}

func TestGroupedMapRoundTrip(t *testing.T) {
	cfg := Config{HeartbeatInterval: -1}
	p := netsim.NewPipe(netsim.LAN)
	defer p.Cut()
	masterCh := NewWSock(p.A, cfg)
	workerCh := NewWSock(p.B, cfg)

	go WorkerServeGrouped[int, int](workerCh, JSONCodec[int]{}, JSONCodec[int]{}, func(v int) (int, error) {
		return v * v, nil
	})

	th := groupedPipeline(masterCh, 4, 2)
	got, err := pullstream.Collect(th(pullstream.Count(25)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 25 {
		t.Fatalf("got %d results, want 25", len(got))
	}
	for i, v := range got {
		if v != (i+1)*(i+1) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestGroupedMapFewerMessagesThanItems(t *testing.T) {
	// The point of grouping: 24 items in groups of 8 -> 3 input frames.
	cfg := Config{HeartbeatInterval: -1}
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	masterCh := NewWSock(p.A, cfg)
	workerCh := NewWSock(p.B, cfg)

	frames := 0
	go func() {
		for {
			m, err := workerCh.Recv()
			if err != nil {
				return
			}
			switch m.Type {
			case proto.TypeInputBatch:
				frames++
				items, _ := proto.DecodeBatch(m.Data)
				results := make([]proto.BatchItem, len(items))
				for i, it := range items {
					results[i] = proto.BatchItem{D: it.D}
				}
				data, _ := proto.EncodeBatch(results)
				workerCh.Send(&proto.Message{Type: proto.TypeResultBatch, Seq: m.Seq, Data: data})
			case proto.TypeGoodbye:
				workerCh.Send(&proto.Message{Type: proto.TypeGoodbye})
				return
			}
		}
	}()

	th := groupedPipeline(masterCh, 8, 1)
	got, err := pullstream.Collect(th(pullstream.Count(24)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 24 {
		t.Fatalf("got %d results", len(got))
	}
	if frames != 3 {
		t.Fatalf("sent %d input frames, want 3 (24 items / group 8)", frames)
	}
}

func TestGroupedMapPerItemError(t *testing.T) {
	cfg := Config{HeartbeatInterval: -1}
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	masterCh := NewWSock(p.A, cfg)
	workerCh := NewWSock(p.B, cfg)

	go WorkerServeGrouped[int, int](workerCh, JSONCodec[int]{}, JSONCodec[int]{}, func(v int) (int, error) {
		if v == 5 {
			return 0, errors.New("item failed")
		}
		return v, nil
	})

	th := groupedPipeline(masterCh, 3, 1)
	_, err := pullstream.Collect(th(pullstream.Count(10)))
	var werr *WorkerError
	if !errors.As(err, &werr) {
		t.Fatalf("err = %v, want WorkerError", err)
	}
}

func TestGroupedMapPartialFinalGroup(t *testing.T) {
	cfg := Config{HeartbeatInterval: -1}
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	masterCh := NewWSock(p.A, cfg)
	workerCh := NewWSock(p.B, cfg)

	go WorkerServeGrouped[int, int](workerCh, JSONCodec[int]{}, JSONCodec[int]{}, func(v int) (int, error) {
		return v, nil
	})
	// 7 items, group 4 -> a full group and a partial 3-group.
	th := groupedPipeline(masterCh, 4, 2)
	got, err := pullstream.Collect(th(pullstream.Count(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("got %d results", len(got))
	}
}

func TestWorkerServeGroupedHandlesPlainInputs(t *testing.T) {
	// The grouped server is a superset: plain input frames still work, so
	// old masters and new volunteers interoperate.
	cfg := Config{HeartbeatInterval: -1}
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	masterCh := NewWSock(p.A, cfg)
	workerCh := NewWSock(p.B, cfg)

	go WorkerServeGrouped[int, int](workerCh, JSONCodec[int]{}, JSONCodec[int]{}, func(v int) (int, error) {
		return v + 1, nil
	})

	d := MasterDuplex[int, int](masterCh, JSONCodec[int]{}, JSONCodec[int]{})
	go d.Sink(pullstream.Count(5))
	got, err := pullstream.Collect(d.Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[4] != 6 {
		t.Fatalf("got %v", got)
	}
}

func TestGroupedEndToEndThroughMaster(t *testing.T) {
	// Full-stack grouping through the public API path is covered in the
	// master tests; here: crash recovery with grouped frames.
	cfg := Config{HeartbeatInterval: 20 * time.Millisecond}
	p := netsim.NewPipe(netsim.LAN)
	masterCh := NewWSock(p.A, cfg)
	workerCh := NewWSock(p.B, cfg)

	served := make(chan struct{})
	go func() {
		n := 0
		WorkerServeGrouped[int, int](workerCh, JSONCodec[int]{}, JSONCodec[int]{}, func(v int) (int, error) {
			n++
			if n == 7 {
				close(served)
				select {} // freeze; the Cut below is the crash
			}
			return v, nil
		})
	}()
	go func() {
		<-served
		p.Cut()
	}()

	th := groupedPipeline(masterCh, 3, 2)
	_, err := pullstream.Collect(th(pullstream.Count(100)))
	if err == nil {
		t.Fatal("expected failure after worker crash")
	}
}
