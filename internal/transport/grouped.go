package transport

import (
	"bytes"
	"crypto/sha256"
	"fmt"

	"pando/internal/proto"
	"pando/internal/pullstream"
)

// This file implements message-level input grouping, an extension of the
// paper's batching idea (§5.5): beyond keeping several values in flight
// (the Limiter), several values can travel in a single frame, cutting the
// per-message overhead that dominates small-item workloads on
// high-latency links. It is built by composing the Group and Flatten
// pull-stream modules around a duplex that speaks the grouped frames —
// the modularity the design principles call for (DP5).

// GroupedMasterDuplex is MasterDuplex speaking grouped frames: its Sink
// consumes slices of inputs (one frame each) and its Source produces
// slices of results. Like MasterDuplex, the Source enforces batch-Seq
// contiguity so a cleanly lost frame fails the channel (re-lending the
// outstanding values) instead of mispairing every later batch.
func GroupedMasterDuplex[I, O any](ch Channel, in Codec[I], out Codec[O]) pullstream.Duplex[[]I, []O] {
	var got uint64 // last batch Seq accepted, owned by the Source side
	return pullstream.Duplex[[]I, []O]{
		Sink: func(src pullstream.Source[[]I]) {
			var seq uint64
			for {
				type ans struct {
					end error
					v   []I
				}
				ansc := make(chan ans, 1)
				src(nil, func(end error, v []I) { ansc <- ans{end, v} })
				a := <-ansc
				if a.end != nil {
					if pullstream.IsNormalEnd(a.end) {
						_ = ch.Send(&proto.Message{Type: proto.TypeGoodbye})
					} else {
						ch.Close()
					}
					return
				}
				items := make([]proto.BatchItem, 0, len(a.v))
				ok := true
				for _, v := range a.v {
					data, err := in.Encode(v)
					if err != nil {
						ok = false
						break
					}
					items = append(items, proto.BatchItem{D: data})
				}
				if !ok {
					ch.Close()
					return
				}
				// Pack the batch in the channel's negotiated wire format
				// (binary batches under v2, JSON arrays under v1).
				data, err := ch.Wire().EncodeBatch(items)
				if err != nil {
					ch.Close()
					return
				}
				seq++
				if err := ch.Send(&proto.Message{Type: proto.TypeInputBatch, Seq: seq, Data: data}); err != nil {
					return
				}
			}
		},
		Source: func(abort error, cb pullstream.Callback[[]O]) {
			if abort != nil {
				ch.Close()
				cb(abort, nil)
				return
			}
			for {
				m, err := ch.Recv()
				if err != nil {
					cb(err, nil)
					return
				}
				switch m.Type {
				case proto.TypeResultBatch:
					if m.Seq != got+1 {
						err := fmt.Errorf("transport: result batch seq %d, want %d (frame lost or reordered)", m.Seq, got+1)
						proto.Release(m)
						ch.Close()
						cb(err, nil)
						return
					}
					got = m.Seq
					seq := m.Seq
					// A digest-bearing batch is end-to-end checked before any
					// item is parsed: the hash was computed by the processing
					// side, so a mismatch catches corruption anywhere between
					// f returning and this read — not just on the wire.
					if len(m.Digest) > 0 {
						sum := sha256.Sum256(m.Data)
						if !bytes.Equal(sum[:], m.Digest) {
							proto.Release(m)
							ch.Close()
							cb(fmt.Errorf("transport: result batch %d digest mismatch (payload corrupted)", seq), nil)
							return
						}
					}
					// DecodeBatch copies every item out of the frame (one
					// retained item must not pin a whole multi-item frame),
					// so the frame recycles as soon as the batch is parsed.
					items, err := proto.DecodeBatch(m.Data)
					proto.Release(m)
					if err != nil {
						ch.Close()
						cb(fmt.Errorf("transport: decode result batch %d: %w", seq, err), nil)
						return
					}
					results := make([]O, 0, len(items))
					for i, it := range items {
						if it.E != "" {
							err := &WorkerError{Seq: seq, Msg: it.E}
							ch.Close()
							cb(err, nil)
							return
						}
						v, err := out.Decode(it.D)
						if err != nil {
							ch.Close()
							cb(fmt.Errorf("transport: decode result %d[%d]: %w", seq, i, err), nil)
							return
						}
						results = append(results, v)
					}
					cb(nil, results)
					return
				case proto.TypeGoodbye:
					proto.Release(m)
					cb(pullstream.ErrDone, nil)
					return
				default:
					// Ignore stray control messages.
					proto.Release(m)
				}
			}
		},
	}
}

// WorkerServeGrouped serves both the plain and grouped data planes: it
// handles single inputs exactly like WorkerServe and grouped frames by
// applying f to every item, reporting per-item errors in the result
// batch.
func WorkerServeGrouped[I, O any](ch Channel, in Codec[I], out Codec[O], f func(I) (O, error)) error {
	return WorkerServeReassignable(ch, in, out, f, nil)
}

// WorkerServeReassignable is WorkerServeGrouped for pool-aware
// volunteers: a reassign (or mid-session re-welcome) frame from a shared
// fleet moves the worker to another job. reassign resolves the named
// function to a new processing function; the switch is acknowledged by
// echoing the reassign frame AFTER the resolution, which is the drain
// barrier the master waits on — the ack rides the same ordered reply
// queue as results, so every result of the previous job has already been
// written when the echo goes out. A nil reassign keeps the pre-pool
// behavior (reassign frames are ignored like any unknown control
// message).
//
// Replies go out through a replyQueue: results that accumulate while the
// previous write is in flight leave in one vectored write, the
// worker-side half of the smart batching the coalescing master duplex
// does. The queue depth is bounded by the master's credit window, since
// every queued reply answers an input that crossed the credit gate.
func WorkerServeReassignable[I, O any](ch Channel, in Codec[I], out Codec[O], f func(I) (O, error), reassign func(name string) (func(I) (O, error), error)) error {
	q := newReplyQueue(ch)
	for {
		m, err := ch.Recv()
		if err != nil {
			if qerr := q.close(); qerr != nil {
				return qerr
			}
			return err
		}
		switch m.Type {
		case proto.TypeReassign, proto.TypeWelcome:
			if m.Type == proto.TypeWelcome && m.Func == "" {
				// Not a re-welcome; stray control frame.
				proto.Release(m)
				continue
			}
			if reassign == nil {
				proto.Release(m)
				continue
			}
			fn := m.Func
			proto.Release(m)
			nf, err := reassign(fn)
			if err != nil {
				q.enqueue(&proto.Message{Type: proto.TypeError, Err: err.Error()}, nil)
				_ = q.close()
				ch.Close()
				return err
			}
			f = nf
			if !q.enqueue(&proto.Message{Type: proto.TypeReassign, Func: fn}, nil) {
				return q.close()
			}
			continue
		}
		switch m.Type {
		case proto.TypeInput:
			reply := applyOne(m.Seq, m.Data, in, out, f)
			// The reply may thread the input's bytes through (an identity
			// handler under RawCodec), so the frame releases only after
			// the reply is on the wire — the queue owns it from here.
			if !q.enqueue(reply, m) {
				proto.Release(m)
				return q.close()
			}
		case proto.TypeInputBatch:
			// The apply loop is strictly serial and the reply batch is
			// re-encoded (copied) before the frame releases, so the
			// aliasing batch decode is safe here and skips one copy of
			// every item payload.
			items, err := proto.DecodeBatchShared(m.Data)
			if err != nil {
				seq := m.Seq
				proto.Release(m)
				q.enqueue(&proto.Message{Type: proto.TypeResultBatch, Seq: seq, Err: "decode batch: " + err.Error()}, nil)
				continue
			}
			results := make([]proto.BatchItem, 0, len(items))
			for _, it := range items {
				one := applyOne(m.Seq, it.D, in, out, f)
				results = append(results, proto.BatchItem{D: one.Data, E: one.Err})
			}
			data, err := ch.Wire().EncodeBatch(results)
			if err != nil {
				seq := m.Seq
				proto.Release(m)
				q.enqueue(&proto.Message{Type: proto.TypeResultBatch, Seq: seq, Err: "encode batch: " + err.Error()}, nil)
				continue
			}
			sum := sha256.Sum256(data)
			reply := &proto.Message{Type: proto.TypeResultBatch, Seq: m.Seq, Data: data, Digest: sum[:]}
			if !q.enqueue(reply, m) {
				proto.Release(m)
				return q.close()
			}
		case proto.TypeGoodbye:
			proto.Release(m)
			q.enqueue(&proto.Message{Type: proto.TypeGoodbye}, nil)
			_ = q.close()
			ch.Close()
			return nil
		default:
			// Ignore stray control messages.
			proto.Release(m)
		}
	}
}

// applyOne applies f to a single encoded input, producing a result frame.
func applyOne[I, O any](seq uint64, data []byte, in Codec[I], out Codec[O], f func(I) (O, error)) *proto.Message {
	v, err := in.Decode(data)
	if err != nil {
		return &proto.Message{Type: proto.TypeResult, Seq: seq, Err: "decode: " + err.Error()}
	}
	r, err := f(v)
	if err != nil {
		return &proto.Message{Type: proto.TypeResult, Seq: seq, Err: err.Error()}
	}
	encoded, err := out.Encode(r)
	if err != nil {
		return &proto.Message{Type: proto.TypeResult, Seq: seq, Err: "encode: " + err.Error()}
	}
	sum := sha256.Sum256(encoded)
	return &proto.Message{Type: proto.TypeResult, Seq: seq, Data: encoded, Digest: sum[:]}
}
