package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/pullstream"
)

// newWirePair returns a connected channel pair with both ends switched to
// wf, as the hello/welcome negotiation leaves them.
func newWirePair(t *testing.T, wf proto.WireFormat) (*WSock, *WSock) {
	t.Helper()
	p := netsim.NewPipe(netsim.Loopback)
	cfg := Config{HeartbeatInterval: -1}
	a := NewWSock(p.A, cfg)
	b := NewWSock(p.B, cfg)
	a.SetWire(wf)
	b.SetWire(wf)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestWSockDefaultWireIsV1(t *testing.T) {
	p := netsim.NewPipe(netsim.Loopback)
	w := NewWSock(p.A, Config{HeartbeatInterval: -1})
	defer w.Close()
	if got := w.Wire().Name(); got != proto.Version {
		t.Fatalf("default wire = %q, want %q", got, proto.Version)
	}
}

// TestPlainPlaneBinaryWire round-trips the plain data plane entirely over
// the v2 envelope.
func TestPlainPlaneBinaryWire(t *testing.T) {
	masterCh, workerCh := newWirePair(t, proto.V2)

	go func() {
		_ = WorkerServe[int, int](workerCh, JSONCodec[int]{}, JSONCodec[int]{}, func(v int) (int, error) {
			return v * v, nil
		})
	}()

	d := MasterDuplex[int, int](masterCh, JSONCodec[int]{}, JSONCodec[int]{})
	go d.Sink(pullstream.Values(1, 2, 3, 4))
	got, err := pullstream.Collect(d.Source)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 4, 9, 16}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("results = %v, want %v", got, want)
	}
}

// TestGroupedPlaneBinaryWire round-trips the grouped data plane over the
// v2 envelope with binary batches.
func TestGroupedPlaneBinaryWire(t *testing.T) {
	masterCh, workerCh := newWirePair(t, proto.V2)

	go func() {
		_ = WorkerServeGrouped[int, int](workerCh, JSONCodec[int]{}, JSONCodec[int]{}, func(v int) (int, error) {
			return v + 100, nil
		})
	}()

	d := GroupedMasterDuplex[int, int](masterCh, JSONCodec[int]{}, JSONCodec[int]{})
	go d.Sink(pullstream.Values([]int{1, 2}, []int{3}))
	got, err := pullstream.Collect(d.Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0]) != 2 || got[0][0] != 101 || got[1][0] != 103 {
		t.Fatalf("results = %v", got)
	}
}

// TestMixedWirePair proves reception is format-agnostic: one side writes
// v2 while the other still writes v1, as happens mid-handshake when the
// welcome (v1) crosses a worker that already switched.
func TestMixedWirePair(t *testing.T) {
	masterCh, workerCh := newWirePair(t, proto.V1)
	masterCh.SetWire(proto.V2) // only the master upgraded

	go func() {
		_ = WorkerServe[int, int](workerCh, JSONCodec[int]{}, JSONCodec[int]{}, func(v int) (int, error) {
			return -v, nil
		})
	}()

	d := MasterDuplex[int, int](masterCh, JSONCodec[int]{}, JSONCodec[int]{})
	go d.Sink(pullstream.Values(5, 6))
	got, err := pullstream.Collect(d.Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != -5 || got[1] != -6 {
		t.Fatalf("results = %v", got)
	}
}

// TestRawCodecBinaryWireBytesOnWire measures the frames the two formats
// produce for the same 64 KiB []byte payload: the v2 envelope must carry
// it without base64 inflation.
func TestRawCodecBinaryWireBytesOnWire(t *testing.T) {
	payload := bytes.Repeat([]byte{0xC7}, 64<<10)
	m := &proto.Message{Type: proto.TypeInput, Seq: 1, Data: payload}

	var v1buf, v2buf bytes.Buffer
	if err := proto.V1.WriteFrame(&v1buf, m); err != nil {
		t.Fatal(err)
	}
	if err := proto.V2.WriteFrame(&v2buf, m); err != nil {
		t.Fatal(err)
	}
	if v2buf.Len() >= v1buf.Len() {
		t.Fatalf("v2 frame (%d B) not smaller than v1 (%d B)", v2buf.Len(), v1buf.Len())
	}
	// v1 base64-inflates Data by 4/3; v2 overhead must stay within a few
	// dozen bytes of the raw payload.
	if overhead := v2buf.Len() - len(payload); overhead > 64 {
		t.Fatalf("v2 overhead = %d bytes on a %d-byte payload", overhead, len(payload))
	}
	t.Logf("64 KiB payload: v1 frame %d B, v2 frame %d B (%.1f%% of v1)",
		v1buf.Len(), v2buf.Len(), 100*float64(v2buf.Len())/float64(v1buf.Len()))
}

// wirePoint is a BinaryCodec test type with its own binary encoding.
type wirePoint struct{ X, Y int32 }

func (p wirePoint) MarshalBinary() ([]byte, error) {
	b := make([]byte, 8)
	binary.BigEndian.PutUint32(b[:4], uint32(p.X))
	binary.BigEndian.PutUint32(b[4:], uint32(p.Y))
	return b, nil
}

func (p *wirePoint) UnmarshalBinary(data []byte) error {
	if len(data) != 8 {
		return fmt.Errorf("wirePoint: %d bytes", len(data))
	}
	p.X = int32(binary.BigEndian.Uint32(data[:4]))
	p.Y = int32(binary.BigEndian.Uint32(data[4:]))
	return nil
}

func TestBinaryCodec(t *testing.T) {
	c := BinaryCodec[wirePoint, *wirePoint]{}
	data, err := c.Encode(wirePoint{X: -3, Y: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 8 {
		t.Fatalf("encoded %d bytes, want 8", len(data))
	}
	p, err := c.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if p.X != -3 || p.Y != 7 {
		t.Fatalf("decoded %+v", p)
	}
	if _, err := c.Decode([]byte("short")); err == nil {
		t.Fatal("short decode succeeded")
	}
}

func TestBinaryCodecOverChannel(t *testing.T) {
	masterCh, workerCh := newWirePair(t, proto.V2)
	codec := BinaryCodec[wirePoint, *wirePoint]{}

	go func() {
		_ = WorkerServe[wirePoint, wirePoint](workerCh, codec, codec, func(p wirePoint) (wirePoint, error) {
			return wirePoint{X: p.Y, Y: p.X}, nil
		})
	}()

	d := MasterDuplex[wirePoint, wirePoint](masterCh, codec, codec)
	go d.Sink(pullstream.Values(wirePoint{X: 1, Y: 2}))
	got, err := pullstream.Collect(d.Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].X != 2 || got[0].Y != 1 {
		t.Fatalf("results = %v", got)
	}
}
