package master

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"pando/internal/netsim"
	"pando/internal/pullstream"
	"pando/internal/sched"
	"pando/internal/worker"
)

// TestStatsExposeFlowControl verifies the operator-facing controller
// state: while a run is live, the per-device rows report the credit
// window, the in-flight count, and (after a few results) the EWMA
// throughput estimate.
func TestStatsExposeFlowControl(t *testing.T) {
	m := newTestMaster(t, Config{Batch: 2})
	ln := netsim.NewListener("master-flow", netsim.Loopback)
	defer ln.Close()
	go m.ServeWS(ln)

	out := m.Bind(pullstream.Count(80))
	startVolunteer(t, ln, &worker.Volunteer{Name: "dev", Handler: jsonSquare, Delay: 2 * time.Millisecond})

	done := make(chan error, 1)
	go func() {
		_, err := pullstream.Collect(out)
		done <- err
	}()

	var sawCredits, sawInFlight, sawRate bool
	for {
		for _, w := range m.Stats() {
			if w.Name != "dev" {
				continue
			}
			if w.Credits > 0 {
				sawCredits = true
				if w.Credits != 2 {
					t.Fatalf("Credits = %d, want the static batch 2", w.Credits)
				}
			}
			if w.InFlight > 0 {
				sawInFlight = true
				if w.InFlight > 2 {
					t.Fatalf("InFlight = %d exceeds the window", w.InFlight)
				}
			}
			if w.EWMARate > 0 {
				sawRate = true
			}
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if !sawCredits || !sawInFlight || !sawRate {
				t.Fatalf("flow state never surfaced: credits=%v inflight=%v rate=%v",
					sawCredits, sawInFlight, sawRate)
			}
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// TestHTTPStatsCarriesFlowFields: the /stats JSON must include the
// flow-control fields so operators can watch the controller remotely.
func TestHTTPStatsCarriesFlowFields(t *testing.T) {
	m := newTestMaster(t, Config{Batch: 3})
	ln := netsim.NewListener("master-flow-http", netsim.Loopback)
	defer ln.Close()
	go m.ServeWS(ln)
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := m.ServeHTTPInfo(httpLn, Invitation{Transport: "ws", DataAddr: "nowhere:1"})
	defer srv.Close()

	out := m.Bind(pullstream.Count(20))
	startVolunteer(t, ln, &worker.Volunteer{Name: "dev", Handler: jsonSquare})
	if _, err := pullstream.Collect(out); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + httpLn.Addr().String() + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(body, &rows); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, body)
	}
	if len(rows) == 0 {
		t.Fatal("no stats rows")
	}
	for _, key := range []string{"InFlight", "Credits", "EWMARate", "Speculated"} {
		if _, ok := rows[0][key]; !ok {
			t.Fatalf("stats JSON lacks %q: %s", key, body)
		}
	}
}

// TestConfigFlowDefaults: the zero policy preserves the static batch
// bound, and explicit policies pass through with sane clamping.
func TestConfigFlowDefaults(t *testing.T) {
	cases := []struct {
		cfg  Config
		want sched.Policy
	}{
		{Config{}, sched.Policy{Min: 2, Max: 2}},
		{Config{Batch: 5}, sched.Policy{Min: 5, Max: 5}},
		{Config{Flow: sched.Policy{Speculation: 2}}, sched.Policy{Min: 2, Max: 2, Speculation: 2}},
		{Config{Flow: sched.Policy{Min: 1, Max: 8}}, sched.Policy{Min: 1, Max: 8}},
		{Config{Batch: 4, Flow: sched.Policy{Min: 3}}, sched.Policy{Min: 3, Max: 3}},
	}
	for _, c := range cases {
		if got := c.cfg.flow(); got != c.want {
			t.Errorf("flow(%+v) = %+v, want %+v", c.cfg, got, c.want)
		}
	}
	if got := grouped(sched.Policy{Min: 2, Max: 16}, 4); got.Min != 1 || got.Max != 4 {
		t.Errorf("grouped rescale = %+v, want Min 1 Max 4", got)
	}
}
