package master

import (
	"errors"
	"testing"
	"time"

	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/pullstream"
	"pando/internal/transport"
	"pando/internal/worker"
)

// workerWire waits for the master's accounting to show the device and
// returns its negotiated wire format.
func workerWire(t *testing.T, m *Master[int, int], name string) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, w := range m.Stats() {
			if w.Name == name && w.Wire != "" {
				return w.Wire
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no wire recorded for %q in %v", name, m.Stats())
	return ""
}

// TestAdmitNegotiatesBinaryWire: a format-advertising worker and an
// unrestricted master settle on the newest binary format
// ('/pando/2.2.0') and complete a computation over it.
func TestAdmitNegotiatesBinaryWire(t *testing.T) {
	m := newTestMaster(t, Config{})
	ln := netsim.NewListener("master", netsim.LAN)
	defer ln.Close()
	go m.ServeWS(ln)

	out := m.Bind(pullstream.Count(10))
	startVolunteer(t, ln, &worker.Volunteer{Name: "modern", Handler: jsonSquare, CrashAfter: -1})

	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d results, want 10", len(got))
	}
	if wire := workerWire(t, m, "modern"); wire != proto.Version3 {
		t.Fatalf("negotiated %q, want %q", wire, proto.Version3)
	}
}

// TestAdmitMasterPinnedToV2 keeps a deployment on '/pando/2.1.0' — no
// compression, no dedup — even for v3-capable workers.
func TestAdmitMasterPinnedToV2(t *testing.T) {
	m := newTestMaster(t, Config{Formats: []string{proto.Version2, proto.Version}})
	ln := netsim.NewListener("master", netsim.LAN)
	defer ln.Close()
	go m.ServeWS(ln)

	out := m.Bind(pullstream.Count(10))
	startVolunteer(t, ln, &worker.Volunteer{Name: "modern", Handler: jsonSquare, CrashAfter: -1})

	if _, err := pullstream.Collect(out); err != nil {
		t.Fatal(err)
	}
	if wire := workerWire(t, m, "modern"); wire != proto.Version2 {
		t.Fatalf("negotiated %q, want %q", wire, proto.Version2)
	}
}

// TestAdmitV1OnlyWorkerFallsBack: a worker that only speaks the JSON wire
// still completes a computation against a v2-capable master — the ISSUE's
// backward-compatibility acceptance criterion.
func TestAdmitV1OnlyWorkerFallsBack(t *testing.T) {
	m := newTestMaster(t, Config{})
	ln := netsim.NewListener("master", netsim.LAN)
	defer ln.Close()
	go m.ServeWS(ln)

	out := m.Bind(pullstream.Count(10))
	startVolunteer(t, ln, &worker.Volunteer{
		Name:    "legacy",
		Handler: jsonSquare,
		Formats: []string{proto.Version},
	})

	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d results, want 10", len(got))
	}
	for i, v := range got {
		if v != (i+1)*(i+1) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	if wire := workerWire(t, m, "legacy"); wire != proto.Version {
		t.Fatalf("negotiated %q, want %q", wire, proto.Version)
	}
}

// TestAdmitMasterPinnedToV1 keeps the whole deployment on the JSON wire
// even for v2-capable workers.
func TestAdmitMasterPinnedToV1(t *testing.T) {
	m := newTestMaster(t, Config{Formats: []string{proto.Version}})
	ln := netsim.NewListener("master", netsim.LAN)
	defer ln.Close()
	go m.ServeWS(ln)

	out := m.Bind(pullstream.Count(5))
	startVolunteer(t, ln, &worker.Volunteer{Name: "modern", Handler: jsonSquare, CrashAfter: -1})

	if _, err := pullstream.Collect(out); err != nil {
		t.Fatal(err)
	}
	if wire := workerWire(t, m, "modern"); wire != proto.Version {
		t.Fatalf("negotiated %q, want %q", wire, proto.Version)
	}
}

// TestAdmitV2OnlyMasterRefusesV1Worker: a deployment that excludes the v1
// fallback refuses a v1-only volunteer instead of silently admitting it
// on an excluded format.
func TestAdmitV2OnlyMasterRefusesV1Worker(t *testing.T) {
	m := newTestMaster(t, Config{Formats: []string{proto.Version2}})

	p := netsim.NewPipe(netsim.Loopback)
	cfg := transport.Config{HeartbeatInterval: -1}
	masterCh := transport.NewWSock(p.A, cfg)

	errc := make(chan error, 1)
	go func() { errc <- m.Admit(masterCh) }()

	v := &worker.Volunteer{Name: "legacy", Handler: jsonSquare, CrashAfter: -1,
		Channel: cfg, Formats: []string{proto.Version}}
	if err := v.JoinWS(p.B); err == nil {
		t.Fatal("v1-only volunteer joined a v2-only master")
	}
	if err := <-errc; !errors.Is(err, ErrNoCommonFormat) {
		t.Fatalf("Admit error = %v, want ErrNoCommonFormat", err)
	}
}

// TestAdmitV1OnlyMasterRefusesV2OnlyWorker: the refusal must key off what
// the volunteer offered, not just the fallback — a peer that declared it
// cannot speak v1 must not be silently admitted on v1.
func TestAdmitV1OnlyMasterRefusesV2OnlyWorker(t *testing.T) {
	m := newTestMaster(t, Config{Formats: []string{proto.Version}})

	p := netsim.NewPipe(netsim.Loopback)
	cfg := transport.Config{HeartbeatInterval: -1}
	masterCh := transport.NewWSock(p.A, cfg)

	errc := make(chan error, 1)
	go func() { errc <- m.Admit(masterCh) }()

	v := &worker.Volunteer{Name: "v2only", Handler: jsonSquare, CrashAfter: -1,
		Channel: cfg, Formats: []string{proto.Version2}}
	if err := v.JoinWS(p.B); err == nil {
		t.Fatal("v2-only volunteer joined a v1-only master")
	}
	if err := <-errc; !errors.Is(err, ErrNoCommonFormat) {
		t.Fatalf("Admit error = %v, want ErrNoCommonFormat", err)
	}
}

// TestAdmitClosedMasterRefuses: Admit on a closed master must refuse the
// handshake with ErrClosed instead of attaching the volunteer to a
// shut-down deployment.
func TestAdmitClosedMasterRefuses(t *testing.T) {
	m := newTestMaster(t, Config{})
	m.Close()

	p := netsim.NewPipe(netsim.Loopback)
	cfg := transport.Config{HeartbeatInterval: -1}
	masterCh := transport.NewWSock(p.A, cfg)

	errc := make(chan error, 1)
	go func() { errc <- m.Admit(masterCh) }()

	v := &worker.Volunteer{Name: "late", Handler: jsonSquare, CrashAfter: -1,
		Channel: cfg}
	joinErr := v.JoinWS(p.B)
	if joinErr == nil {
		t.Fatal("volunteer joined a closed master")
	}

	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("Admit error = %v, want ErrClosed", err)
	}
	if len(m.Stats()) != 0 {
		t.Fatalf("closed master accumulated workers: %v", m.Stats())
	}
}
