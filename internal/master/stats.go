package master

import (
	"sort"
	"time"
)

// This file implements the evaluation's measurement methodology (§5.1):
// "We measured the computation duration and the number of items processed
// in each Worker over a five minute period, from which we derived the
// throughput. This diminished the impact of the variability of the
// computing time between inputs. We also checked that the total of all
// devices corresponded to the throughput observed at the output."

// MaxWindow bounds how much per-item history is retained.
const MaxWindow = 5 * time.Minute

// recordItem appends a result timestamp to a worker's history, pruning
// entries older than MaxWindow. Caller holds m.mu.
func (w *WorkerStats) recordItem(now time.Time) {
	w.Items++
	w.LastSeen = now
	w.history = append(w.history, now)
	cutoff := now.Add(-MaxWindow)
	// Prune from the front; history is in time order.
	drop := 0
	for drop < len(w.history) && w.history[drop].Before(cutoff) {
		drop++
	}
	if drop > 0 {
		w.history = append(w.history[:0], w.history[drop:]...)
	}
}

// ItemsWithin returns how many items the device completed during the
// trailing window.
func (w WorkerStats) ItemsWithin(window time.Duration, now time.Time) int {
	cutoff := now.Add(-window)
	// history is sorted; binary search the first index >= cutoff.
	i := sort.Search(len(w.history), func(i int) bool {
		return !w.history[i].Before(cutoff)
	})
	return len(w.history) - i
}

// ThroughputWithin returns items per second over the trailing window.
func (w WorkerStats) ThroughputWithin(window time.Duration, now time.Time) float64 {
	if window <= 0 {
		return 0
	}
	return float64(w.ItemsWithin(window, now)) / window.Seconds()
}

// WindowedThroughput reports each device's throughput over the trailing
// window along with the aggregate — the §5.1 cross-check that the total
// of all devices corresponds to the output throughput.
func (m *Master[I, O]) WindowedThroughput(window time.Duration) (perDevice map[string]float64, total float64) {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	perDevice = make(map[string]float64, len(m.workers))
	for name, w := range m.workers {
		tp := w.ThroughputWithin(window, now)
		perDevice[name] = tp
		total += tp
	}
	return perDevice, total
}
