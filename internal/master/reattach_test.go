package master

import (
	"net"
	"sync"
	"testing"
	"time"

	"pando/internal/netsim"
	"pando/internal/pullstream"
	"pando/internal/sched"
	"pando/internal/transport"
	"pando/internal/worker"
)

// TestReattachDoesNotInheritStaleFlowState is the rejoin-severing
// regression test: a worker whose link stalls (no error, no heartbeat —
// the partial-synchrony worst case) reconnects under the same name via
// ReconnectWS. The reattached worker must not inherit the departed
// controller's stale EWMA round-trip and credit window: the rejoin hello
// (incarnation > 0, same instance token) makes the pool sever the
// half-open session immediately, so its controller detaches, its
// in-flight values re-lend, and the per-name flow state is the fresh
// controller's alone.
//
// Without the severing, this test fails twice over: the per-name flow
// rows stay doubled (stale window + fresh window) for as long as the
// master's own failure detector stays silent — here forever, heartbeats
// are disabled master-side — and the two values stuck on the stalled
// link are never re-lent, deadlocking the stream short of completion.
func TestReattachDoesNotInheritStaleFlowState(t *testing.T) {
	const n = 400
	cfg := Config{
		FuncName: "reattach-square",
		// The master never suspects the stall on its own: no pings, no
		// read deadline. Only the rejoin hello can save it.
		Channel: transport.Config{HeartbeatInterval: -1},
		Flow:    sched.Policy{Min: 1, Max: 8},
	}
	m := New[int, int](cfg, transport.JSONCodec[int]{}, transport.JSONCodec[int]{})
	ln := netsim.NewListener("master-reattach", netsim.Loopback)
	defer ln.Close()
	go m.ServeWS(ln)

	var pmu sync.Mutex
	var pipes []*netsim.Pipe
	dial := func(addr string) (net.Conn, error) {
		conn, pipe, err := ln.Dial()
		if err != nil {
			return nil, err
		}
		pmu.Lock()
		pipes = append(pipes, pipe)
		pmu.Unlock()
		return conn, nil
	}
	// The volunteer's own heartbeats detect the stall quickly and
	// ReconnectWS rejoins — same Volunteer instance, same name.
	v := &worker.Volunteer{
		Name:       "w",
		Handler:    jsonSquare,
		CrashAfter: -1,
		Channel:    transport.Config{HeartbeatInterval: 10 * time.Millisecond},
	}
	go func() {
		_ = worker.ReconnectWS(nil, v, worker.ReconnectConfig{
			InitialBackoff: 10 * time.Millisecond,
		}, dial, "master-reattach")
	}()

	out := m.Bind(pullstream.Count(n))
	outc, errc := pullstream.ToChan(out)

	consumed := 0
	for consumed < 100 {
		if _, ok := <-outc; !ok {
			t.Fatalf("stream ended after %d results", consumed)
		}
		consumed++
	}
	// Stall the first connection without erroring it: bytes freeze in
	// both directions, the TCP-level analogue of a suspended laptop.
	pmu.Lock()
	first := pipes[0]
	pmu.Unlock()
	first.Pause()

	// The reattached worker must appear as exactly one flow row — the
	// departed controller severed and detached — while the stream is
	// still running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, subs, ended := m.LenderStats()
		flows := m.engine.Flows()
		if subs >= 2 && ended >= 1 && len(flows) == 1 && flows[0].Name == "w" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale session never severed: subs=%d ended=%d flows=%+v", subs, ended, flows)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// And the stream completes: the two values stuck on the stalled link
	// were re-lent to the fresh attachment.
	for consumed < n {
		if _, ok := <-outc; !ok {
			t.Fatalf("stream ended after %d results", consumed)
		}
		consumed++
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerReattachFreshController documents the sched-level
// contract the fix restores: detach-then-reattach under the same name
// yields a controller with no inherited window or round-trip state.
func TestSchedulerReattachFreshController(t *testing.T) {
	s := sched.New(sched.Adaptive(1, 16), nil)
	c1 := s.Attach("w", nil)
	// Grow the first controller's window with steady round-trips (long
	// enough that scheduler jitter cannot read as congestion).
	for i := 0; i < 200 && c1.Window() < 2; i++ {
		if !c1.Acquire() {
			t.Fatal("acquire failed")
		}
		c1.Sent()
		time.Sleep(2 * time.Millisecond)
		c1.Result()
	}
	if c1.Window() <= 1 {
		t.Fatalf("first controller never grew: window %d", c1.Window())
	}
	s.Detach(c1)
	c2 := s.Attach("w", nil)
	defer s.Detach(c2)
	if got := c2.Window(); got != 1 {
		t.Fatalf("reattached controller window = %d, want the policy minimum 1 (no inheritance)", got)
	}
	flows := s.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows = %+v, want exactly the fresh attachment", flows)
	}
	if flows[0].Rate != 0 {
		t.Fatalf("reattached controller inherited an EWMA rate: %v", flows[0].Rate)
	}
}
