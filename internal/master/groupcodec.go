package master

import (
	"encoding/binary"
	"fmt"

	"pando/internal/transport"
)

// This file frames a group of encoded values into a single journal
// payload. The grouped engine lends, re-lends and orders whole groups
// (see groupedEngine), so the journal's unit must be the group too:
// each value is encoded with the deployment's payload codec and framed
// with a uvarint length prefix, mirroring the binary wire's batching.

// encodeGroup frames vs into one payload.
func encodeGroup[O any](c transport.Codec[O], vs []O) ([]byte, error) {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(vs)))
	for _, v := range vs {
		data, err := c.Encode(v)
		if err != nil {
			return nil, fmt.Errorf("master: encode group member: %w", err)
		}
		buf = binary.AppendUvarint(buf, uint64(len(data)))
		buf = append(buf, data...)
	}
	return buf, nil
}

// decodeGroup reverses encodeGroup. It is strict: trailing garbage or a
// short buffer is an error, so a stale or foreign journal entry is
// skipped (recomputed) rather than half-restored.
func decodeGroup[O any](c transport.Codec[O], data []byte) ([]O, error) {
	n, off := binary.Uvarint(data)
	if off <= 0 {
		return nil, fmt.Errorf("master: group count: truncated")
	}
	if n > uint64(len(data)) {
		// Each member needs at least its length prefix; a count larger
		// than the buffer is corrupt (and would over-allocate).
		return nil, fmt.Errorf("master: group count %d exceeds payload", n)
	}
	vs := make([]O, 0, n)
	for i := uint64(0); i < n; i++ {
		ln, k := binary.Uvarint(data[off:])
		if k <= 0 || ln > uint64(len(data)-off-k) {
			return nil, fmt.Errorf("master: group member %d: truncated", i)
		}
		off += k
		v, err := c.Decode(data[off : off+int(ln)])
		if err != nil {
			return nil, fmt.Errorf("master: decode group member %d: %w", i, err)
		}
		vs = append(vs, v)
		off += int(ln)
	}
	if off != len(data) {
		return nil, fmt.Errorf("master: group payload has %d trailing bytes", len(data)-off)
	}
	return vs, nil
}
