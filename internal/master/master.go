// Package master implements the Master process of Pando's architecture
// (paper Figure 7): it owns the StreamLender that coordinates volunteers,
// admits joining devices over WebSocket-like or WebRTC-like channels,
// bounds in-flight values per device with the Limiter, and accounts
// per-device throughput (the measurements behind the paper's Table 2).
package master

import (
	"fmt"
	"sync"
	"time"

	"pando/internal/blob"
	"pando/internal/core"
	"pando/internal/fleet"
	"pando/internal/journal"
	"pando/internal/lender"
	"pando/internal/proto"
	"pando/internal/pullstream"
	"pando/internal/sched"
	"pando/internal/transport"
	"pando/internal/verify"
)

// DefaultBatch is the default number of values in flight per device. The
// paper used 2 on LAN and VPN ("effectively enabling one input to be
// transferred while the other is processed") and 4 on the WAN.
const DefaultBatch = 2

// Config parameterizes a Master.
type Config struct {
	// FuncName is the processing function volunteers must apply; it is
	// the Go substitute for the browserified code bundle the JavaScript
	// implementation ships (volunteers resolve it in their registry).
	FuncName string
	// Batch bounds values in flight per device (the Limiter bound).
	Batch int
	// Ordered selects ordered output (default) or completion order.
	Ordered bool
	// Group sends several inputs per frame when > 1 (message-level
	// batching, an extension of the paper's §5.5 batching idea).
	Group int
	// Flow is the per-device flow-control policy. The zero value keeps
	// the original behavior: a static window of Batch values in flight
	// per device and no speculation. Setting Min < Max turns on the
	// adaptive credit controller; Speculation > 0 enables straggler
	// re-dispatch near the stream's tail.
	Flow sched.Policy
	// Channel tunes heartbeat detection on volunteer channels.
	Channel transport.Config
	// Formats restricts the wire formats this master will negotiate, best
	// first. Empty allows everything this build supports (binary
	// '/pando/2.1.0' preferred, JSON '/pando/1.0.0' fallback). When
	// non-empty, volunteers that speak none of the listed formats are
	// refused with ErrNoCommonFormat — so a list excluding '/pando/1.0.0'
	// turns off the v1 fallback entirely.
	Formats []string
	// Journal, when non-nil, makes the deployment's progress durable:
	// every result the lender accepts is recorded (index + encoded
	// payload, fsynced in batches on the journal's configured interval),
	// and any completed results the journal recovered from a previous
	// run are restored — their inputs are skipped at the source and their
	// results replayed to the output in order, so a restarted master
	// resumes instead of redoing work. The caller owns the journal's
	// lifecycle (Close it after the master).
	Journal *journal.Journal
	// SpillHighWater, when > 0, bounds the master's buffered-result
	// window (the lender's reorder buffer in ordered mode, the ready
	// queue otherwise) at that many results. Without a Spill store the
	// bound propagates as backpressure — input reads pause until the
	// output consumer catches up — so an arbitrarily long stream holds
	// O(window) master state. Counted in lending units: values for the
	// plain engine, groups when Group > 1.
	SpillHighWater int
	// Spill, when non-nil with SpillHighWater > 0, absorbs the ordered
	// overflow instead: results past the window page out to the store
	// (encoded with the output codec) and page back exactly when the
	// output reaches their index, keeping the input side running at full
	// speed ahead of a slow consumer. The caller owns the store's
	// lifecycle (Close it after the master).
	Spill *journal.SpillStore
	// ResultHook, when non-nil, receives every newly accepted result as
	// (index, encoded payload), after the journal write (if any) and
	// before the result is emitted downstream. A sharded master records
	// results into its shard's completion segment through it, so any
	// result a consumer ever sees is already durable in some segment —
	// the invariant that makes range migration exactly-once. The hook
	// must not block.
	ResultHook func(idx int, data []byte)
	// BlobCacheBytes caps the content-addressed intern table backing
	// payload dedup on '/pando/2.2.0' channels: payload blocks the job
	// has transmitted stay interned (LRU) so repeats travel as SHA-256
	// references and worker cache misses can be served. Zero means
	// blob.DefaultInternBytes; negative disables dedup entirely (every
	// payload travels in full, compression still applies).
	BlobCacheBytes int64
	// RestoreEntries seeds the engine with completed results recovered
	// from elsewhere than Config.Journal — e.g. the segment copy an
	// adopting shard received in a range hand-off. Entries are decoded
	// with the output codec; ones that no longer decode are skipped and
	// recomputed. Applied after the Journal's own recovered set (later
	// entries win on index collisions).
	RestoreEntries []journal.Entry
}

// spillStore adapts the optional config store to the engine's interface
// without producing a typed-nil interface value.
func (c Config) spillStore() lender.SpillStore {
	if c.Spill == nil {
		return nil
	}
	return c.Spill
}

func (c Config) batch() int {
	if c.Batch <= 0 {
		return DefaultBatch
	}
	return c.Batch
}

// flow resolves the effective policy: an unset window falls back to the
// static batch bound, preserving the original behavior.
func (c Config) flow() sched.Policy {
	p := c.Flow
	if p.Min <= 0 && p.Max <= 0 {
		p.Min, p.Max = c.batch(), c.batch()
	}
	if p.Min <= 0 {
		p.Min = 1
	}
	if p.Max < p.Min {
		p.Max = p.Min
	}
	return p
}

// grouped rescales a policy counted in values to one counted in groups
// of n values, keeping at least one group in flight.
func grouped(p sched.Policy, n int) sched.Policy {
	p.Min = p.Min / n
	if p.Min < 1 {
		p.Min = 1
	}
	p.Max = p.Max / n
	if p.Max < p.Min {
		p.Max = p.Min
	}
	return p
}

// WorkerStats is the per-device accounting of the evaluation (§5.1): the
// number of items processed and the active period, from which throughput
// is derived.
type WorkerStats struct {
	Name      string
	Items     int
	FirstSeen time.Time
	LastSeen  time.Time
	Alive     bool
	// Wire is the wire format negotiated at admission ("/pando/1.0.0",
	// "/pando/2.1.0" or "/pando/2.2.0"); empty for devices attached
	// without a handshake.
	Wire string

	// Blob dedup counters ('/pando/2.2.0' channels only, summed over the
	// device's attachments): inputs that travelled as digest-only
	// references (BlobHits), reference fetches served because the
	// device's cache missed (BlobMisses), and reference-tracker evictions
	// that forced later repeats back to full transmission (BlobEvicts).
	BlobHits   int64
	BlobMisses int64
	BlobEvicts int64

	// Verification accounting (EnableVerification only): the device's
	// reputation score, how many accepted votes it agreed/disagreed
	// with, spot-check counts, and whether it was quarantined.
	Reputation  float64
	Agreed      int
	Disagreed   int
	SpotChecks  int
	SpotFails   int
	Quarantined bool

	// InFlight is how many values the device currently holds (summed
	// over its attachments — one per contributed core).
	InFlight int
	// Credits is the device's current credit window (summed over its
	// attachments); with the static policy it equals attachments × batch.
	Credits int
	// EWMARate is the scheduler's smoothed throughput estimate in items
	// per second (summed over the device's attachments).
	EWMARate float64
	// Speculated counts values duplicated away from this device by
	// straggler re-dispatch.
	Speculated int

	// history holds recent per-item completion times (pruned to
	// MaxWindow) for windowed throughput, the §5.1 methodology.
	history []time.Time
}

// ShardStats is one shard's row in a sharded master's accounting: which
// contiguous chunks of the global index space it owns, how hungry it is,
// and how deep the merge layer is buffering on its behalf. A shard.Group
// installs a provider via SetShardStats; single-master deployments never
// see this type.
type ShardStats struct {
	// Shard is the shard's id (its position in the coordinator's ring).
	Shard int `json:"shard"`
	// Epoch counts ownership hand-offs of this shard's range set; it
	// starts at 0 and increments each time the range migrates.
	Epoch int `json:"epoch"`
	// Lo and Hi bound the global indices routed to this shard so far
	// (inclusive/exclusive); both are 0 before its first value.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Outstanding and Failed mirror the shard engine's Backlog — the
	// demand signal its fleet.Job presents to the shared pool.
	Outstanding int `json:"outstanding"`
	Failed      int `json:"failed"`
	// MergeDepth is how many of this shard's results the merge layer is
	// currently holding for global reordering.
	MergeDepth int `json:"merge_depth"`
	// LiveWorkers counts the shard's currently attached processors.
	LiveWorkers int `json:"live_workers"`
	// Items counts results the shard has accepted (including any it
	// recovered from a migrated segment copy).
	Items int `json:"items"`
	// Migrated marks a shard whose range was handed to a sibling; Dead
	// marks one the coordinator declared lost.
	Migrated bool `json:"migrated"`
	Dead     bool `json:"dead"`
}

// SetShardStats installs the per-shard stats provider. The master's
// /stats endpoint and reporter include the provider's rows once set; fn
// must be safe for concurrent use.
func (m *Master[I, O]) SetShardStats(fn func() []ShardStats) {
	m.mu.Lock()
	m.shardStats = fn
	m.mu.Unlock()
}

// ShardStats returns the per-shard rows, or nil when this master is not
// the front of a sharded group.
func (m *Master[I, O]) ShardStats() []ShardStats {
	m.mu.Lock()
	fn := m.shardStats
	m.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// Throughput returns items per second over the device's active period.
func (w WorkerStats) Throughput() float64 {
	d := w.LastSeen.Sub(w.FirstSeen)
	if d <= 0 || w.Items == 0 {
		return 0
	}
	return float64(w.Items) / d.Seconds()
}

// Master coordinates one typed job: a single streaming map, for the
// lifetime of the corresponding tasks (design principle DP1). Everything
// untyped — listeners, admission, negotiation, the live worker set —
// lives in the fleet.Pool the job leases workers from: its own
// single-job pool when created with New (the classic one-deployment
// master), or a shared multi-job pool when created with NewJob and
// registered there.
type Master[I, O any] struct {
	cfg    Config
	in     transport.Codec[I]
	out    transport.Codec[O]
	engine engine[I, O]

	// pool is the master's own single-job pool (New); nil for a bare job
	// (NewJob) leasing from a shared pool.
	pool *fleet.Pool

	mu         sync.Mutex
	workers    map[string]*WorkerStats
	closed     bool
	jerr       error // first journal write failure, for diagnostics
	shardStats func() []ShardStats
	ledger     *verify.Ledger // non-nil once EnableVerification ran

	// Bandwidth-aware data plane state: the job-wide intern table behind
	// payload dedup, per-worker dedup counters, and the registry of
	// '/pando/2.2.0' channels the rate hinter feeds the scheduler's EWMA
	// throughput into (all guarded by mu; see wrapChannel).
	intern    *blob.Intern
	blobStats map[string]*blob.FlowStats
	hintChans map[string][]transport.Channel
	hintStop  chan struct{}
}

// engine abstracts the plain and grouped data planes.
type engine[I, O any] interface {
	Bind(pullstream.Source[I]) pullstream.Source[O]
	AttachChannel(name string, ch transport.Channel) error
	Stats() (lentNow, failedQueue, subStreams, ended int)
	Backlog() (outstanding, failed int, complete bool)
	Flows() []sched.WorkerFlow
	Live() int
	Close()
	Abort(error)
}

// plainEngine lends individual values.
type plainEngine[I, O any] struct {
	d    *core.DistributedMap[I, O]
	in   transport.Codec[I]
	out  transport.Codec[O]
	wrap func(name string, ch transport.Channel) transport.Channel
}

func (e *plainEngine[I, O]) Bind(src pullstream.Source[I]) pullstream.Source[O] {
	return e.d.Bind(src)
}

func (e *plainEngine[I, O]) AttachChannel(name string, ch transport.Channel) error {
	// Coalescing data plane: values pulled while a send syscall is in
	// flight accumulate and leave as one vectored write. The pending run
	// is naturally sized by the live credit window — the scheduler's gate
	// precedes every pull — so a wide window coalesces aggressively and a
	// clamped one degenerates to frame-per-value, with no extra latency
	// in either case (an idle sender flushes a lone value immediately).
	if e.wrap != nil {
		ch = e.wrap(name, ch)
	}
	return e.d.Attach(name, transport.CoalescingMasterDuplex(ch, e.in, e.out))
}

func (e *plainEngine[I, O]) Stats() (int, int, int, int) { return e.d.Stats() }

func (e *plainEngine[I, O]) Backlog() (int, int, bool) { return e.d.Backlog() }

func (e *plainEngine[I, O]) Flows() []sched.WorkerFlow { return e.d.Flows() }

func (e *plainEngine[I, O]) Live() int { return e.d.Live() }

func (e *plainEngine[I, O]) Close() { e.d.Close() }

func (e *plainEngine[I, O]) Abort(err error) { e.d.Abort(err) }

// groupedEngine lends whole groups of values: inputs are grouped before
// the StreamLender so the unit of lending, re-lending on crash, and
// ordering is the group — several values travel in one frame (the
// "batching inputs for distribution" of the paper's §1/§5.5), and a
// crashed device's groups are re-lent atomically.
type groupedEngine[I, O any] struct {
	group int
	d     *core.DistributedMap[[]I, []O]
	in    transport.Codec[I]
	out   transport.Codec[O]
	wrap  func(name string, ch transport.Channel) transport.Channel
}

func (e *groupedEngine[I, O]) Bind(src pullstream.Source[I]) pullstream.Source[O] {
	grouped := pullstream.Group[I](e.group)(src)
	return pullstream.Flatten[O]()(e.d.Bind(grouped))
}

func (e *groupedEngine[I, O]) AttachChannel(name string, ch transport.Channel) error {
	if e.wrap != nil {
		ch = e.wrap(name, ch)
	}
	return e.d.Attach(name, transport.GroupedMasterDuplex(ch, e.in, e.out))
}

func (e *groupedEngine[I, O]) Stats() (int, int, int, int) { return e.d.Stats() }

// Backlog rescales the group-counted backlog to values.
func (e *groupedEngine[I, O]) Backlog() (int, int, bool) {
	outstanding, failed, complete := e.d.Backlog()
	return outstanding * e.group, failed * e.group, complete
}

// Flows rescales the group-counted windows back to values so operators
// read one consistent unit.
func (e *groupedEngine[I, O]) Flows() []sched.WorkerFlow {
	flows := e.d.Flows()
	for i := range flows {
		flows[i].InFlight *= e.group
		flows[i].Window *= e.group
		flows[i].Rate *= float64(e.group)
		flows[i].Speculated *= e.group
	}
	return flows
}

func (e *groupedEngine[I, O]) Live() int { return e.d.Live() }

func (e *groupedEngine[I, O]) Close() { e.d.Close() }

func (e *groupedEngine[I, O]) Abort(err error) { e.d.Abort(err) }

// New creates a classic single-deployment master: a typed job fused with
// its own single-job fleet pool, so Admit/ServeWS/ServeRTC keep working
// exactly as before the shared-fleet split.
func New[I, O any](cfg Config, in transport.Codec[I], out transport.Codec[O]) *Master[I, O] {
	m := NewJob[I, O](cfg, in, out)
	m.pool = fleet.NewPool(fleet.Config{Channel: cfg.Channel, Formats: cfg.Formats})
	_ = m.pool.Register(m.Job())
	return m
}

// NewJob creates the typed-job half alone, for registration with a
// shared fleet.Pool (see Job). It has no listeners of its own.
func NewJob[I, O any](cfg Config, in transport.Codec[I], out transport.Codec[O]) *Master[I, O] {
	m := &Master[I, O]{
		cfg:     cfg,
		in:      in,
		out:     out,
		workers: make(map[string]*WorkerStats),
	}
	if cfg.Group > 1 {
		opts := []core.Option{core.WithFlow(grouped(cfg.flow(), cfg.Group)), core.WithObserver(m.observe)}
		if !cfg.Ordered {
			opts = append(opts, core.WithUnordered())
		}
		d := core.New[[]I, []O](opts...)
		if cfg.Journal != nil || cfg.ResultHook != nil || len(cfg.RestoreEntries) > 0 {
			d.Restore(m.groupedRestore())
			d.OnResult(m.groupedRecord())
		}
		if cfg.SpillHighWater > 0 {
			d.BoundMemory(cfg.SpillHighWater, cfg.spillStore(),
				func(vs []O) ([]byte, error) { return encodeGroup(out, vs) },
				func(b []byte) ([]O, error) { return decodeGroup(out, b) })
		}
		m.engine = &groupedEngine[I, O]{
			group: cfg.Group,
			d:     d,
			in:    in,
			out:   out,
			wrap:  m.wrapChannel,
		}
		return m
	}
	opts := []core.Option{core.WithFlow(cfg.flow()), core.WithObserver(m.observe)}
	if !cfg.Ordered {
		opts = append(opts, core.WithUnordered())
	}
	d := core.New[I, O](opts...)
	if cfg.Journal != nil || cfg.ResultHook != nil || len(cfg.RestoreEntries) > 0 {
		d.Restore(m.plainRestore())
		d.OnResult(m.plainRecord())
	}
	if cfg.SpillHighWater > 0 {
		d.BoundMemory(cfg.SpillHighWater, cfg.spillStore(), out.Encode, out.Decode)
	}
	m.engine = &plainEngine[I, O]{d: d, in: in, out: out, wrap: m.wrapChannel}
	return m
}

// wrapChannel prepares one leased channel for the bandwidth-aware data
// plane before the duplex is built around it: '/pando/2.2.0' channels are
// registered with the rate hinter (the compression policy backs off on
// links the scheduler's EWMA says are not bandwidth-bound) and, unless
// dedup is disabled, wrapped with the master-side dedup half that
// rewrites repeated payloads into digest references. Other formats pass
// through untouched.
func (m *Master[I, O]) wrapChannel(name string, ch transport.Channel) transport.Channel {
	if ch.Wire() == nil || ch.Wire().Name() != proto.Version3 {
		return ch
	}
	m.mu.Lock()
	if m.hintChans == nil {
		m.hintChans = make(map[string][]transport.Channel)
	}
	m.hintChans[name] = append(m.hintChans[name], ch)
	if m.hintStop == nil && !m.closed {
		m.hintStop = make(chan struct{})
		go m.hintLoop(m.hintStop)
	}
	if m.cfg.BlobCacheBytes < 0 {
		m.mu.Unlock()
		return ch
	}
	if m.intern == nil {
		m.intern = blob.NewIntern(m.cfg.BlobCacheBytes)
	}
	if m.blobStats == nil {
		m.blobStats = make(map[string]*blob.FlowStats)
	}
	stats, ok := m.blobStats[name]
	if !ok {
		stats = &blob.FlowStats{}
		m.blobStats[name] = stats
	}
	intern := m.intern
	m.mu.Unlock()
	return transport.DedupMasterChannel(ch, intern, stats)
}

// hintRateInterval paces the rate hinter: fast enough that the
// compression policy tracks a device's regime changes, slow enough that
// a large fleet's Flows() snapshot stays negligible.
const hintRateInterval = 250 * time.Millisecond

// hintLoop periodically feeds the scheduler's per-worker EWMA throughput
// to the registered '/pando/2.2.0' channels. It is started on the first
// registration and stopped by Close.
func (m *Master[I, O]) hintLoop(stop chan struct{}) {
	t := time.NewTicker(hintRateInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		rates := make(map[string]float64)
		for _, f := range m.engine.Flows() {
			rates[f.Name] += f.Rate
		}
		m.mu.Lock()
		for name, chans := range m.hintChans {
			rate := rates[name]
			for _, ch := range chans {
				transport.HintRate(ch, rate)
			}
		}
		m.mu.Unlock()
	}
}

// restoreEntries lists every completed entry the config recovers from:
// the journal's own recovered set first, then RestoreEntries (so a
// hand-off copy wins index collisions).
func (m *Master[I, O]) restoreEntries() []journal.Entry {
	var entries []journal.Entry
	if m.cfg.Journal != nil {
		entries = m.cfg.Journal.Completed()
	}
	return append(entries, m.cfg.RestoreEntries...)
}

// plainRestore decodes the recovered entries into the lender's completed
// set. An entry whose payload no longer decodes (e.g. the deployment's
// output codec changed) is skipped — that index is simply recomputed, so
// a stale journal degrades to extra work, never to a failed restart.
func (m *Master[I, O]) plainRestore() map[int]O {
	entries := m.restoreEntries()
	restore := make(map[int]O, len(entries))
	for _, e := range entries {
		if v, err := m.out.Decode(e.Data); err == nil {
			restore[e.Idx] = v
		}
	}
	return restore
}

// plainRecord journals one accepted result and hands its encoding to the
// ResultHook. Write failures are remembered (JournalErr) but do not
// interrupt the stream: a deployment with a full disk keeps computing, it
// just stops gaining durability.
func (m *Master[I, O]) plainRecord() func(int, O) {
	jnl, hook := m.cfg.Journal, m.cfg.ResultHook
	return func(idx int, v O) {
		data, err := m.out.Encode(v)
		if err != nil {
			m.noteJournalErr(err)
			return
		}
		if jnl != nil {
			if err := jnl.Record(idx, data); err != nil {
				m.noteJournalErr(err)
			}
		}
		if hook != nil {
			hook(idx, data)
		}
	}
}

// groupedRestore and groupedRecord are the grouped engine's counterparts:
// the unit of journaling is the group (matching the unit of lending and
// re-lending), framed as uvarint-length-prefixed encoded values.
func (m *Master[I, O]) groupedRestore() map[int][]O {
	entries := m.restoreEntries()
	restore := make(map[int][]O, len(entries))
	for _, e := range entries {
		if vs, err := decodeGroup(m.out, e.Data); err == nil {
			restore[e.Idx] = vs
		}
	}
	return restore
}

func (m *Master[I, O]) groupedRecord() func(int, []O) {
	jnl, hook := m.cfg.Journal, m.cfg.ResultHook
	return func(idx int, vs []O) {
		data, err := encodeGroup(m.out, vs)
		if err != nil {
			m.noteJournalErr(err)
			return
		}
		if jnl != nil {
			if err := jnl.Record(idx, data); err != nil {
				m.noteJournalErr(err)
			}
		}
		if hook != nil {
			hook(idx, data)
		}
	}
}

func (m *Master[I, O]) noteJournalErr(err error) {
	m.mu.Lock()
	if m.jerr == nil {
		m.jerr = err
	}
	m.mu.Unlock()
}

// JournalErr reports the first journal write failure, if any — results
// keep flowing when journaling breaks, so operators must ask.
func (m *Master[I, O]) JournalErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jerr
}

// observe folds the engine's processor lifecycle events into the
// per-device accounting of the evaluation (§5.1).
func (m *Master[I, O]) observe(ev core.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	stats, ok := m.workers[ev.Processor]
	if !ok {
		stats = &WorkerStats{Name: ev.Processor, FirstSeen: time.Now()}
		m.workers[ev.Processor] = stats
	}
	switch ev.Kind {
	case "attach":
		stats.Alive = true
	case "result":
		stats.recordItem(time.Now())
	case "detach":
		stats.Alive = false
		// The device's channels are gone; drop them from the rate-hint
		// registry (a re-attach registers the new ones).
		delete(m.hintChans, ev.Processor)
	}
}

// Bind attaches the input stream and returns the output stream — the
// distributed map x1, x2, ... -> f(x1), f(x2), ... of the programming
// model (paper §2.3).
func (m *Master[I, O]) Bind(src pullstream.Source[I]) pullstream.Source[O] {
	return m.engine.Bind(src)
}

// Admit performs the hello/welcome handshake on a fresh volunteer
// channel and, on success, attaches the device to the computation. It
// delegates to the master's single-job pool, where the admission
// handshake and wire-format negotiation now live; a bare job created
// with NewJob has no pool and refuses direct admissions — volunteers
// reach it through the shared pool it registered with.
func (m *Master[I, O]) Admit(ch transport.Channel) error {
	if m.pool == nil {
		_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: ErrClosed.Error()})
		ch.Close()
		return ErrClosed
	}
	return m.pool.Admit(ch)
}

// Pool exposes the master's own single-job pool (nil for NewJob
// masters), e.g. for worker-set diagnostics.
func (m *Master[I, O]) Pool() *fleet.Pool { return m.pool }

// job adapts the typed master to the pool's untyped Job interface.
type job[I, O any] struct{ m *Master[I, O] }

// Job returns the fleet view of this master, for registration with a
// shared pool: pool.Register(m.Job()).
func (m *Master[I, O]) Job() fleet.Job { return job[I, O]{m} }

func (j job[I, O]) Name() string { return j.m.cfg.FuncName }

func (j job[I, O]) Batch() int { return j.m.cfg.batch() }

// Demand weighs the job for the pool's fair-share leasing: zero once the
// stream is complete (or the master closed), otherwise one for an open
// job plus its current backlog — values lent out and failed values
// awaiting re-lending.
func (j job[I, O]) Demand() int {
	if j.m.isClosed() {
		return 0
	}
	outstanding, failed, complete := j.m.engine.Backlog()
	if complete {
		return 0
	}
	return 1 + outstanding + failed
}

func (j job[I, O]) Lease(worker string, ch transport.Channel) error {
	if j.m.isClosed() {
		return ErrClosed
	}
	return j.m.engine.AttachChannel(worker, ch)
}

func (j job[I, O]) RecordWire(worker, wire string) { j.m.recordWire(worker, wire) }

// recordWire notes the negotiated wire format in the device's stats row,
// creating it if the attach event has not fired yet.
func (m *Master[I, O]) recordWire(name, wire string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	stats, ok := m.workers[name]
	if !ok {
		stats = &WorkerStats{Name: name, FirstSeen: time.Now()}
		m.workers[name] = stats
	}
	stats.Wire = wire
}

// Attach wires an already-admitted channel into the DistributedMap
// engine: pull(sub.Source, Limit(MasterDuplex(ch), batch), sub.Sink).
// Each attachment is one browser tab of the paper's deployment example.
func (m *Master[I, O]) Attach(name string, ch transport.Channel) {
	_ = m.engine.AttachChannel(name, ch)
}

// ServeWS accepts WebSocket-like volunteers from acc until the acceptor
// closes, admitting each one through the pool. It mirrors volunteers
// opening the deployment URL over a LAN or VPN (paper §5.2-5.3).
func (m *Master[I, O]) ServeWS(acc transport.Acceptor) error {
	if m.pool == nil {
		return ErrClosed
	}
	return m.pool.ServeWS(acc)
}

// ServeRTC admits WebRTC-like volunteers whose direct channels are
// delivered by the answerer (paper §5.4, the WAN deployment).
func (m *Master[I, O]) ServeRTC(answerer *transport.RTCAnswerer) {
	if m.pool == nil {
		return
	}
	m.pool.ServeRTC(answerer)
}

// Stats snapshots per-worker accounting, folding in the scheduler's
// per-device flow-control state (credit window, in-flight count, EWMA
// throughput). A device contributing several cores appears as one row
// with its attachments' figures summed.
func (m *Master[I, O]) Stats() []WorkerStats {
	flows := m.engine.Flows()
	m.mu.Lock()
	defer m.mu.Unlock()
	var reps map[string]verify.WorkerRep
	if m.ledger != nil {
		reps = m.ledger.Snapshot()
	}
	byName := make(map[string]sched.WorkerFlow, len(flows))
	for _, f := range flows {
		agg := byName[f.Name]
		agg.Name = f.Name
		agg.InFlight += f.InFlight
		agg.Window += f.Window
		agg.Rate += f.Rate
		agg.Speculated += f.Speculated
		byName[f.Name] = agg
	}
	out := make([]WorkerStats, 0, len(m.workers))
	for _, w := range m.workers {
		row := *w
		if f, ok := byName[w.Name]; ok {
			row.InFlight = f.InFlight
			row.Credits = f.Window
			row.EWMARate = f.Rate
			row.Speculated = f.Speculated
		}
		if bs, ok := m.blobStats[w.Name]; ok {
			row.BlobHits = bs.Hits.Load()
			row.BlobMisses = bs.Misses.Load()
			row.BlobEvicts = bs.Evicts.Load()
		}
		if r, ok := reps[w.Name]; ok {
			row.Reputation = r.Score
			row.Agreed = r.Agreed
			row.Disagreed = r.Disagreed
			row.SpotChecks = r.SpotChecks
			row.SpotFails = r.SpotFails
			row.Quarantined = r.Quarantined
		}
		out = append(out, row)
	}
	return out
}

// EnableVerification turns on Byzantine-tolerant result verification on
// the plain data plane: k-replication with quorum voting on result
// digests (the SHA-256 of each result's wire encoding), probabilistic
// spot-checks recomputed with f, a reputation ledger whose credit
// weighting shrinks suspects' windows, and a replication-free fast path
// for workers above the trust threshold. It errors on a grouped master
// (Config.Group > 1): verification votes on individual result digests,
// and a grouped frame hides them. Call before Bind and before any
// worker attaches; wire the returned ledger's OnQuarantine to the
// fleet's Quarantine to expel cheaters.
func (m *Master[I, O]) EnableVerification(pol verify.Policy, f func(I) (O, error)) (*verify.Ledger, error) {
	pe, ok := m.engine.(*plainEngine[I, O])
	if !ok {
		return nil, fmt.Errorf("master: verification requires the ungrouped data plane (Config.Group <= 1)")
	}
	out := m.out
	ledger := pe.d.EnableVerification(core.VerifySpec[I, O]{
		Policy: pol,
		Digest: func(v O) (verify.Digest, error) {
			data, err := out.Encode(v)
			if err != nil {
				return verify.Digest{}, err
			}
			return verify.DigestOf(data), nil
		},
		Recompute: f,
	})
	m.mu.Lock()
	m.ledger = ledger
	m.mu.Unlock()
	return ledger, nil
}

// VerifyAudit returns the acceptance audit trail (every index that
// reached the output, with its vote), or nil without verification.
func (m *Master[I, O]) VerifyAudit() []verify.Acceptance {
	m.mu.Lock()
	l := m.ledger
	m.mu.Unlock()
	if l == nil {
		return nil
	}
	return l.Acceptances()
}

// Reputations snapshots the per-worker reputation rows, or nil without
// verification.
func (m *Master[I, O]) Reputations() map[string]verify.WorkerRep {
	m.mu.Lock()
	l := m.ledger
	m.mu.Unlock()
	if l == nil {
		return nil
	}
	return l.Snapshot()
}

// TotalItems returns the number of results received from all devices.
func (m *Master[I, O]) TotalItems() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, w := range m.workers {
		n += w.Items
	}
	return n
}

// LenderStats exposes the coordination counters for diagnostics.
func (m *Master[I, O]) LenderStats() (lentNow, failedQueue, subStreams, ended int) {
	return m.engine.Stats()
}

// LiveWorkers counts the currently attached processors — attachments
// whose streams have not ended. A shard coordinator polls it as the
// liveness signal behind range migration.
func (m *Master[I, O]) LiveWorkers() int { return m.engine.Live() }

// Close marks the master as shutting down; its own pool (if any) refuses
// further admissions, in-flight Serve loops exit on their next accept
// error and the engine's straggler scan stops.
func (m *Master[I, O]) Close() {
	m.mu.Lock()
	m.closed = true
	if m.hintStop != nil {
		close(m.hintStop)
		m.hintStop = nil
	}
	m.mu.Unlock()
	if m.pool != nil {
		m.pool.Close()
	}
	m.engine.Close()
}

// Abort fails the master's bound output stream immediately: the engine's
// parked and future output asks answer err. The shard coordinator calls
// it on a killed member — the severed fleet will never deliver the
// results the output is parked on, and the drain must come home.
func (m *Master[I, O]) Abort(err error) { m.engine.Abort(err) }

func (m *Master[I, O]) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// ErrClosed reports operations on a closed master (it is the pool-layer
// sentinel, so refusals compare equal wherever they surface).
var ErrClosed = fleet.ErrClosed

// ErrNoCommonFormat reports a volunteer refused because it speaks none of
// the wire formats Config.Formats allows. It matches relay refusals too,
// which share the proto-level sentinel.
var ErrNoCommonFormat = proto.ErrNoCommonFormat
