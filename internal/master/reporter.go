package master

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Reporter periodically prints per-device throughput, the live console
// monitoring the JavaScript tool shows while a deployment runs. One line
// per tick summarizes the deployment; device details follow, sorted by
// name, using the windowed methodology of §5.1.
type Reporter struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartReporter begins reporting to w every interval over the given
// trailing window. Call Stop to end it.
func (m *Master[I, O]) StartReporter(w io.Writer, interval, window time.Duration) *Reporter {
	if interval <= 0 {
		interval = time.Second
	}
	if window <= 0 {
		window = 10 * time.Second
	}
	r := &Reporter{
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(r.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.report(w, window)
			case <-r.stop:
				return
			}
		}
	}()
	return r
}

// Stop ends the reporting loop; it is safe to call multiple times.
func (r *Reporter) Stop() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}

func (m *Master[I, O]) report(w io.Writer, window time.Duration) {
	stats := m.Stats()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
	perDevice, total := m.WindowedThroughput(window)
	alive := 0
	items := 0
	for _, s := range stats {
		if s.Alive {
			alive++
		}
		items += s.Items
	}
	fmt.Fprintf(w, "[pando] %d device(s) alive, %d item(s) done, %.1f items/s over last %v\n",
		alive, items, total, window)
	for _, s := range stats {
		state := "gone "
		if s.Alive {
			state = "alive"
		}
		wire := s.Wire
		if wire == "" {
			wire = "-"
		}
		fmt.Fprintf(w, "[pando]   %-24s %s %-13s %6d items %8.1f items/s  win %d, %d in flight, ewma %.1f/s",
			s.Name, state, wire, s.Items, perDevice[s.Name], s.Credits, s.InFlight, s.EWMARate)
		if s.Speculated > 0 {
			fmt.Fprintf(w, ", %d re-dispatched", s.Speculated)
		}
		fmt.Fprintln(w)
	}
	for _, sh := range m.ShardStats() {
		state := "live"
		switch {
		case sh.Dead:
			state = "dead"
		case sh.Migrated:
			state = "migrated"
		}
		fmt.Fprintf(w, "[pando]   shard %02d e%d %-8s range [%d,%d) %6d items, backlog %d+%d, merge depth %d, %d worker(s)\n",
			sh.Shard, sh.Epoch, state, sh.Lo, sh.Hi, sh.Items, sh.Outstanding, sh.Failed, sh.MergeDepth, sh.LiveWorkers)
	}
}
