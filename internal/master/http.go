package master

import (
	"encoding/json"
	"net"
	"net/http"

	"pando/internal/proto"
)

// This file implements the HTTP step of the paper's bootstrap (Figure 7):
// "The HTTP connection is used to obtain the Worker code including the f
// function and eventually establish either a WebSocket or WebRTC
// connection." A volunteer opens the deployment URL, receives the
// proto.Invitation (our substitute for the browserified code bundle: the
// name of the registered function plus where and how to connect), and
// then joins over the named transport.

// Invitation is re-exported for convenience.
type Invitation = proto.Invitation

// ServeHTTPInfo serves the deployment invitation on ln until the listener
// closes. It returns immediately; the server runs on its own goroutines.
// The URL to share is "http://<ln addr>/".
func (m *Master[I, O]) ServeHTTPInfo(ln net.Listener, inv Invitation) *http.Server {
	if inv.Version == "" {
		inv.Version = proto.Version
	}
	if inv.Func == "" {
		inv.Func = m.cfg.FuncName
	}
	if inv.Batch == 0 {
		inv.Batch = m.cfg.batch()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(inv)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// A sharded master aggregates per-shard rows next to the worker
		// accounting; a plain master keeps the historical bare-array shape.
		if shards := m.ShardStats(); shards != nil {
			_ = json.NewEncoder(w).Encode(struct {
				Workers []WorkerStats `json:"workers"`
				Shards  []ShardStats  `json:"shards"`
			}{Workers: m.Stats(), Shards: shards})
			return
		}
		_ = json.NewEncoder(w).Encode(m.Stats())
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv
}
