package master

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/pullstream"
	"pando/internal/transport"
	"pando/internal/worker"
)

func jsonSquare(b []byte) ([]byte, error) {
	var v int
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, err
	}
	return json.Marshal(v * v)
}

func newTestMaster(t *testing.T, cfg Config) *Master[int, int] {
	t.Helper()
	if cfg.FuncName == "" {
		cfg.FuncName = "square"
	}
	if cfg.Channel.HeartbeatInterval == 0 {
		cfg.Channel.HeartbeatInterval = 25 * time.Millisecond
	}
	cfg.Ordered = true
	return New[int, int](cfg, transport.JSONCodec[int]{}, transport.JSONCodec[int]{})
}

// startVolunteer dials the listener and joins on a goroutine, returning
// the volunteer and its pipe for fault injection.
func startVolunteer(t *testing.T, ln *netsim.Listener, v *worker.Volunteer) *netsim.Pipe {
	t.Helper()
	conn, pipe, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if v.Channel.HeartbeatInterval == 0 {
		v.Channel.HeartbeatInterval = 25 * time.Millisecond
	}
	if v.CrashAfter == 0 {
		v.CrashAfter = -1
	}
	go v.JoinWS(conn)
	return pipe
}

func TestMasterSingleVolunteerWS(t *testing.T) {
	m := newTestMaster(t, Config{})
	ln := netsim.NewListener("master", netsim.LAN)
	defer ln.Close()
	go m.ServeWS(ln)

	out := m.Bind(pullstream.Count(25))
	startVolunteer(t, ln, &worker.Volunteer{Name: "laptop", Handler: jsonSquare, CrashAfter: -1})

	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 25 {
		t.Fatalf("got %d results, want 25", len(got))
	}
	for i, v := range got {
		if v != (i+1)*(i+1) {
			t.Fatalf("got[%d] = %d, want %d", i, v, (i+1)*(i+1))
		}
	}
	if m.TotalItems() != 25 {
		t.Fatalf("accounting: %d items, want 25", m.TotalItems())
	}
}

func TestMasterMultipleVolunteersOrdered(t *testing.T) {
	m := newTestMaster(t, Config{Batch: 2})
	ln := netsim.NewListener("master", netsim.LAN)
	defer ln.Close()
	go m.ServeWS(ln)

	out := m.Bind(pullstream.Count(100))
	for i := 0; i < 4; i++ {
		startVolunteer(t, ln, &worker.Volunteer{
			Name:    fmt.Sprintf("dev-%d", i),
			Handler: jsonSquare,
			Delay:   time.Duration(i) * 500 * time.Microsecond,
		})
	}

	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d results, want 100", len(got))
	}
	for i, v := range got {
		if v != (i+1)*(i+1) {
			t.Fatalf("got[%d] = %d (output must be ordered)", i, v)
		}
	}
}

func TestMasterVolunteerCrashRecovery(t *testing.T) {
	// Figure 4 at the system level: a volunteer crashes mid-stream; its
	// in-flight values are re-lent to the survivor; all outputs arrive.
	m := newTestMaster(t, Config{Batch: 2})
	ln := netsim.NewListener("master", netsim.LAN)
	defer ln.Close()
	go m.ServeWS(ln)

	out := m.Bind(pullstream.Count(60))
	startVolunteer(t, ln, &worker.Volunteer{Name: "tablet", Handler: jsonSquare, CrashAfter: 5, Delay: time.Millisecond})
	startVolunteer(t, ln, &worker.Volunteer{Name: "phone", Handler: jsonSquare})

	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("got %d results, want 60", len(got))
	}
	for i, v := range got {
		if v != (i+1)*(i+1) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMasterNetworkCutRecovery(t *testing.T) {
	// Crash injected at the network level: the link is severed without
	// the volunteer's cooperation; heartbeats detect it.
	m := newTestMaster(t, Config{Batch: 2})
	ln := netsim.NewListener("master", netsim.LAN)
	defer ln.Close()
	go m.ServeWS(ln)

	out := m.Bind(pullstream.Count(40))
	victim := startVolunteer(t, ln, &worker.Volunteer{Name: "flaky", Handler: jsonSquare, Delay: 2 * time.Millisecond})
	go func() {
		time.Sleep(20 * time.Millisecond)
		victim.Cut()
	}()
	startVolunteer(t, ln, &worker.Volunteer{Name: "stable", Handler: jsonSquare})

	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("got %d results, want 40", len(got))
	}
}

func TestMasterLateJoin(t *testing.T) {
	// Dynamic scaling: the computation starts with no volunteer at all;
	// one joins later and the stream completes.
	m := newTestMaster(t, Config{})
	ln := netsim.NewListener("master", netsim.LAN)
	defer ln.Close()
	go m.ServeWS(ln)

	out := m.Bind(pullstream.Count(10))
	outc, errc := pullstream.ToChan(out)

	time.Sleep(30 * time.Millisecond) // nobody there yet
	startVolunteer(t, ln, &worker.Volunteer{Name: "late", Handler: jsonSquare})

	var got []int
	for v := range outc {
		got = append(got, v)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d results, want 10", len(got))
	}
}

func TestMasterRejectsBadVersion(t *testing.T) {
	m := newTestMaster(t, Config{})
	ln := netsim.NewListener("master", netsim.Loopback)
	defer ln.Close()
	go m.ServeWS(ln)

	conn, _, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	ch := transport.NewWSock(conn, transport.Config{HeartbeatInterval: -1})
	// Wrong protocol version (a stale volunteer binary).
	if err := ch.Send(mustHello("/pando/0.0.1")); err != nil {
		t.Fatal(err)
	}
	reply, err := ch.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Err == "" {
		t.Fatalf("expected rejection, got %+v", reply)
	}
}

func TestMasterAdaptiveFasterDeviceProcessesMore(t *testing.T) {
	// Table 2's % columns: throughput share tracks device speed.
	m := newTestMaster(t, Config{Batch: 2})
	ln := netsim.NewListener("master", netsim.LAN)
	defer ln.Close()
	go m.ServeWS(ln)

	out := m.Bind(pullstream.Count(80))
	startVolunteer(t, ln, &worker.Volunteer{Name: "fast", Handler: jsonSquare, Delay: 500 * time.Microsecond})
	startVolunteer(t, ln, &worker.Volunteer{Name: "slow", Handler: jsonSquare, Delay: 8 * time.Millisecond})

	if _, err := pullstream.Collect(out); err != nil {
		t.Fatal(err)
	}
	var fast, slow int
	for _, w := range m.Stats() {
		switch w.Name {
		case "fast":
			fast = w.Items
		case "slow":
			slow = w.Items
		}
	}
	if fast <= slow {
		t.Fatalf("fast processed %d <= slow %d; lending must be adaptive", fast, slow)
	}
	if fast+slow != 80 {
		t.Fatalf("accounting mismatch: %d + %d != 80", fast, slow)
	}
}

func TestMasterWebRTCVolunteer(t *testing.T) {
	// End-to-end WAN-style deployment: volunteer bootstraps through the
	// public server and computes over the direct channel (paper §5.4).
	// The explicit timeout keeps the failure detector honest about the
	// link it watches: the WAN profile's RTT is 80–100ms, so the default
	// 3x-interval timeout (75ms) would sit inside the round trip and
	// declare a healthy peer dead whenever two jitter draws line up —
	// and this deployment's single volunteer does not rejoin.
	cfg := transport.Config{HeartbeatInterval: 25 * time.Millisecond, HeartbeatTimeout: 300 * time.Millisecond}
	m := newTestMaster(t, Config{Batch: 4, Channel: cfg})

	signalLn := netsim.NewListener("public", netsim.WAN)
	srv := transport.NewSignalServer()
	go srv.Serve(signalLn, cfg)
	defer srv.Close()

	directLn := netsim.NewListener("master-direct", netsim.WAN)
	msc, _, err := signalLn.Dial()
	if err != nil {
		t.Fatal(err)
	}
	masterSignal := transport.NewWSock(msc, cfg)
	if err := transport.JoinSignal(masterSignal, "master"); err != nil {
		t.Fatal(err)
	}
	answerer := transport.NewRTCAnswerer(masterSignal, directLn, cfg)
	defer answerer.Close()
	go m.ServeRTC(answerer)

	out := m.Bind(pullstream.Count(20))

	vsc, _, err := signalLn.Dial()
	if err != nil {
		t.Fatal(err)
	}
	volSignal := transport.NewWSock(vsc, cfg)
	dial := func(addr string) (net.Conn, error) {
		c, _, err := directLn.Dial()
		return c, err
	}
	v := &worker.Volunteer{Name: "planetlab-node", Handler: jsonSquare, CrashAfter: -1, Channel: cfg}
	go v.JoinRTC(volSignal, "planetlab-node", "master", dial)

	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("got %d results, want 20", len(got))
	}
	for i, r := range got {
		if r != (i+1)*(i+1) {
			t.Fatalf("got[%d] = %d", i, r)
		}
	}
}

func TestWorkerStatsThroughput(t *testing.T) {
	w := WorkerStats{
		Items:     100,
		FirstSeen: time.Unix(0, 0),
		LastSeen:  time.Unix(10, 0),
	}
	if tp := w.Throughput(); tp != 10 {
		t.Fatalf("throughput = %v, want 10", tp)
	}
	empty := WorkerStats{}
	if tp := empty.Throughput(); tp != 0 {
		t.Fatalf("empty throughput = %v, want 0", tp)
	}
}

func TestRegistryRegisterLookup(t *testing.T) {
	worker.Register("test-fn-"+strconv.Itoa(int(time.Now().UnixNano())), jsonSquare)
	if _, ok := worker.Lookup("definitely-missing"); ok {
		t.Fatal("lookup of missing function succeeded")
	}
	if len(worker.Registered()) == 0 {
		t.Fatal("registry empty after registration")
	}
}

func mustHello(version string) *proto.Message {
	return &proto.Message{Type: proto.TypeHello, Version: version}
}

func TestWindowedThroughput(t *testing.T) {
	m := newTestMaster(t, Config{})
	ln := netsim.NewListener("master-window", netsim.Loopback)
	defer ln.Close()
	go m.ServeWS(ln)

	out := m.Bind(pullstream.Count(30))
	startVolunteer(t, ln, &worker.Volunteer{Name: "dev", Handler: jsonSquare})
	if _, err := pullstream.Collect(out); err != nil {
		t.Fatal(err)
	}
	per, total := m.WindowedThroughput(10 * time.Second)
	if per["dev"] <= 0 {
		t.Fatalf("dev windowed throughput = %v", per["dev"])
	}
	if total != per["dev"] {
		t.Fatalf("total %v != sum of devices %v", total, per["dev"])
	}
	// A tiny window far after completion counts nothing.
	time.Sleep(20 * time.Millisecond)
	per, _ = m.WindowedThroughput(time.Millisecond)
	if per["dev"] != 0 {
		t.Fatalf("stale window shows %v items/s", per["dev"])
	}
}

func TestWorkerStatsItemsWithin(t *testing.T) {
	now := time.Now()
	w := WorkerStats{}
	for i := 0; i < 10; i++ {
		w.recordItem(now.Add(time.Duration(i) * time.Second))
	}
	latest := now.Add(9 * time.Second)
	if got := w.ItemsWithin(3500*time.Millisecond, latest); got != 4 {
		t.Fatalf("ItemsWithin(3.5s) = %d, want 4 (t=6,7,8,9)", got)
	}
	if got := w.ItemsWithin(time.Hour, latest); got != 10 {
		t.Fatalf("ItemsWithin(1h) = %d, want 10", got)
	}
}

func TestHTTPInfoStatsEndpoint(t *testing.T) {
	m := newTestMaster(t, Config{})
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := m.ServeHTTPInfo(httpLn, Invitation{Transport: "ws", DataAddr: "nowhere:1"})
	defer srv.Close()

	inv, err := proto.FetchInvitation("http://" + httpLn.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	if inv.Func != "square" || inv.Transport != "ws" || inv.Batch != DefaultBatch {
		t.Fatalf("invitation = %+v", inv)
	}
	resp, err := http.Get("http://" + httpLn.Addr().String() + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %s", resp.Status)
	}
}

func TestReporterEmitsLines(t *testing.T) {
	m := newTestMaster(t, Config{})
	ln := netsim.NewListener("master-report", netsim.Loopback)
	defer ln.Close()
	go m.ServeWS(ln)

	var buf syncBuffer
	r := m.StartReporter(&buf, 10*time.Millisecond, time.Second)

	out := m.Bind(pullstream.Count(20))
	startVolunteer(t, ln, &worker.Volunteer{Name: "dev", Handler: jsonSquare, Delay: time.Millisecond})
	if _, err := pullstream.Collect(out); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let at least one tick fire
	r.Stop()
	r.Stop() // idempotent

	s := buf.String()
	if !strings.Contains(s, "[pando]") || !strings.Contains(s, "dev") {
		t.Fatalf("report output missing expected lines:\n%s", s)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
