package master

import (
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"pando/internal/journal"
	"pando/internal/netsim"
	"pando/internal/pullstream"
	"pando/internal/transport"
	"pando/internal/worker"
)

// TestMasterJournalsResults: with Config.Journal every accepted result
// lands in the journal as (index, encoded payload).
func TestMasterJournalsResults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := journal.Open(path, journal.Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	m := newTestMaster(t, Config{Journal: j})
	ln := netsim.NewListener("journal-master", netsim.LAN)
	defer ln.Close()
	go m.ServeWS(ln)
	out := m.Bind(pullstream.Count(10))
	startVolunteer(t, ln, &worker.Volunteer{Name: "dev", Handler: jsonSquare, CrashAfter: -1})
	if _, err := pullstream.Collect(out); err != nil {
		t.Fatal(err)
	}

	if n := j.Len(); n != 10 {
		t.Fatalf("journal holds %d entries, want 10", n)
	}
	for _, e := range j.Completed() {
		var v int
		if err := json.Unmarshal(e.Data, &v); err != nil {
			t.Fatalf("entry %d payload %q: %v", e.Idx, e.Data, err)
		}
		// Count(10) produces 1..10 at indices 0..9.
		if want := (e.Idx + 1) * (e.Idx + 1); v != want {
			t.Fatalf("entry %d = %d, want %d", e.Idx, v, want)
		}
	}
	if err := m.JournalErr(); err != nil {
		t.Fatal(err)
	}
}

// TestMasterRestoresFromJournal: a second master over the same journal
// replays completed results and only lends the rest.
func TestMasterRestoresFromJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := journal.Open(path, journal.Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	// A previous run completed indices 0..5 (inputs 1..6, squared).
	for i := 0; i <= 5; i++ {
		data, _ := json.Marshal((i + 1) * (i + 1))
		if err := j.Record(i, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := journal.Open(path, journal.Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	m := newTestMaster(t, Config{Journal: j2})
	ln := netsim.NewListener("restore-master", netsim.LAN)
	defer ln.Close()
	go m.ServeWS(ln)
	out := m.Bind(pullstream.Count(10))
	startVolunteer(t, ln, &worker.Volunteer{Name: "dev", Handler: jsonSquare, CrashAfter: -1})
	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d results, want 10", len(got))
	}
	for i, v := range got {
		if want := (i + 1) * (i + 1); v != want {
			t.Fatalf("got[%d] = %d, want %d", i, v, want)
		}
	}
	// The volunteer only computed the four unfinished values.
	if n := m.TotalItems(); n != 4 {
		t.Fatalf("volunteer computed %d items, want 4 (6 restored)", n)
	}
}

// TestMasterRestoreSkipsUndecodableEntries: a journal entry that no
// longer decodes is recomputed instead of failing the restart.
func TestMasterRestoreSkipsUndecodableEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := journal.Open(path, journal.Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	good, _ := json.Marshal(1)
	if err := j.Record(0, good); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(1, []byte("not json at all {{{")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := journal.Open(path, journal.Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	m := newTestMaster(t, Config{Journal: j2})
	ln := netsim.NewListener("skip-master", netsim.LAN)
	defer ln.Close()
	go m.ServeWS(ln)
	out := m.Bind(pullstream.Count(3))
	startVolunteer(t, ln, &worker.Volunteer{Name: "dev", Handler: jsonSquare, CrashAfter: -1})
	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 9 {
		t.Fatalf("got %v, want [1 4 9] (bad entry recomputed)", got)
	}
	if n := m.TotalItems(); n != 2 {
		t.Fatalf("volunteer computed %d items, want 2 (index 1 recomputed, index 0 restored)", n)
	}
}

// TestMasterGroupedJournalRoundTrip: with Group > 1 the journal's unit is
// the group; a restarted grouped master restores and completes.
func TestMasterGroupedJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	run := func(items int) []int {
		j, err := journal.Open(path, journal.Options{SyncInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		m := newTestMaster(t, Config{Group: 3, Journal: j})
		ln := netsim.NewListener("grouped-journal", netsim.LAN)
		defer ln.Close()
		go m.ServeWS(ln)
		out := m.Bind(pullstream.Count(items))
		startVolunteer(t, ln, &worker.Volunteer{Name: "dev", Handler: jsonSquare, CrashAfter: -1})
		got, err := pullstream.Collect(out)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.JournalErr(); err != nil {
			t.Fatal(err)
		}
		return got
	}

	first := run(12)
	if len(first) != 12 {
		t.Fatalf("first run: %d results, want 12", len(first))
	}
	// Second run over the same journal: everything is restored, the
	// volunteer computes nothing, and the output replays identically.
	second := run(12)
	if len(second) != 12 {
		t.Fatalf("second run: %d results, want 12", len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replayed output diverges at %d: %d vs %d", i, first[i], second[i])
		}
	}
}

func TestGroupCodecRoundTrip(t *testing.T) {
	c := transport.JSONCodec[int]{}
	for _, vs := range [][]int{nil, {1}, {1, 2, 3}, {0, -5, 1 << 30}} {
		data, err := encodeGroup(c, vs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeGroup(c, data)
		if err != nil {
			t.Fatalf("decode %v: %v", vs, err)
		}
		if len(got) != len(vs) {
			t.Fatalf("round trip %v -> %v", vs, got)
		}
		for i := range vs {
			if got[i] != vs[i] {
				t.Fatalf("round trip %v -> %v", vs, got)
			}
		}
	}
	// Corrupt payloads error instead of half-decoding.
	data, _ := encodeGroup(c, []int{1, 2, 3})
	for _, bad := range [][]byte{data[:len(data)-1], append(append([]byte(nil), data...), 'x'), {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}} {
		if _, err := decodeGroup(c, bad); err == nil {
			t.Fatalf("decodeGroup accepted corrupt payload %v", bad)
		}
	}
}

// TestMasterJournalUnderCrashStop: a volunteer that crashes mid-stream
// must not corrupt the journal — re-lent values are journaled once, on
// their eventual completion.
func TestMasterJournalUnderCrashStop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, err := journal.Open(path, journal.Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	m := newTestMaster(t, Config{Journal: j, Batch: 2})
	ln := netsim.NewListener("crash-journal", netsim.LAN)
	defer ln.Close()
	go m.ServeWS(ln)
	out := m.Bind(pullstream.Count(30))
	startVolunteer(t, ln, &worker.Volunteer{Name: "flaky", Handler: jsonSquare, CrashAfter: 5, Delay: time.Millisecond})
	startVolunteer(t, ln, &worker.Volunteer{Name: "steady", Handler: jsonSquare, CrashAfter: -1, Delay: time.Millisecond})
	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("got %d results, want 30", len(got))
	}
	if n := j.Len(); n != 30 {
		t.Fatalf("journal holds %d entries, want 30 (each index exactly once)", n)
	}
}
