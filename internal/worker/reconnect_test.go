package worker

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/transport"
)

// trackedConn wraps a net.Conn and records whether it was closed.
type trackedConn struct {
	net.Conn
	mu     sync.Mutex
	closed bool
}

func (c *trackedConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.Conn.Close()
}

func (c *trackedConn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// TestReconnectWSClosesConnOnHandshakeRefusal: a master that refuses
// every handshake must not leak one socket per retry of the bounded
// MaxAttempts loop.
func TestReconnectWSClosesConnOnHandshakeRefusal(t *testing.T) {
	var mu sync.Mutex
	var dialed []*trackedConn

	dial := func(addr string) (net.Conn, error) {
		pipe := netsim.NewPipe(netsim.Loopback)
		// Refusing master: read the hello, reject, hang up.
		go func() {
			ch := transport.NewWSock(pipe.A, transport.Config{HeartbeatInterval: -1})
			if _, err := ch.Recv(); err != nil {
				return
			}
			_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: "deployment full"})
			ch.Close()
		}()
		tc := &trackedConn{Conn: pipe.B}
		mu.Lock()
		dialed = append(dialed, tc)
		mu.Unlock()
		return tc, nil
	}

	v := &Volunteer{Name: "leaky?", Channel: transport.Config{HeartbeatInterval: -1}, CrashAfter: -1}
	err := ReconnectWS(context.Background(), v,
		ReconnectConfig{InitialBackoff: time.Millisecond, MaxAttempts: 4},
		dial, "refusing-master")
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(dialed) != 4 {
		t.Fatalf("dialed %d times, want 4", len(dialed))
	}
	deadline := time.Now().Add(2 * time.Second)
	for i, tc := range dialed {
		for !tc.isClosed() {
			if time.Now().After(deadline) {
				t.Fatalf("conn %d leaked: never closed after its join failed", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestReconnectWSClosesConnOnDeadMaster: the same invariant when the
// failure is not a polite refusal but a peer that hangs up mid-handshake.
func TestReconnectWSClosesConnOnDeadMaster(t *testing.T) {
	var mu sync.Mutex
	var dialed []*trackedConn

	dial := func(addr string) (net.Conn, error) {
		pipe := netsim.NewPipe(netsim.Loopback)
		go func() {
			// Accept the connection, then sever it without a word.
			time.Sleep(5 * time.Millisecond)
			pipe.Cut()
		}()
		tc := &trackedConn{Conn: pipe.B}
		mu.Lock()
		dialed = append(dialed, tc)
		mu.Unlock()
		return tc, nil
	}

	v := &Volunteer{Channel: transport.Config{HeartbeatInterval: -1}, CrashAfter: -1}
	err := ReconnectWS(context.Background(), v,
		ReconnectConfig{InitialBackoff: time.Millisecond, MaxAttempts: 2},
		dial, "dead-master")
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	mu.Lock()
	defer mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for i, tc := range dialed {
		for !tc.isClosed() {
			if time.Now().After(deadline) {
				t.Fatalf("conn %d leaked after the peer died", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestServeWithReconnectCancelWhileJoinBlocked: cancelling the context
// while join is blocked (a master that never answers the handshake) must
// return ctx.Err() promptly, not wait for the join to time out.
func TestServeWithReconnectCancelWhileJoinBlocked(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	joined := make(chan struct{})
	v := &Volunteer{CrashAfter: -1}

	done := make(chan error, 1)
	go func() {
		done <- ServeWithReconnect(ctx, v, ReconnectConfig{}, func() error {
			close(joined)
			select {} // blocked forever: a handshake that never answers
		})
	}()
	<-joined
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("took %v to observe cancellation, want prompt return", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeWithReconnect never returned after cancellation")
	}
}

// TestReconnectWSCancelSeversBlockedJoin: on cancellation ReconnectWS
// must both return promptly and sever the dialed connection so the
// abandoned join goroutine unwinds instead of blocking forever on a
// silent master.
func TestReconnectWSCancelSeversBlockedJoin(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	var tc *trackedConn
	dialedOnce := make(chan struct{})

	dial := func(addr string) (net.Conn, error) {
		pipe := netsim.NewPipe(netsim.Loopback)
		// Silent master: reads nothing, answers nothing; the volunteer's
		// handshake blocks on the welcome (heartbeats disabled, so no
		// timeout will save it).
		go func() {
			buf := make([]byte, 1024)
			for {
				if _, err := pipe.A.Read(buf); err != nil {
					return
				}
			}
		}()
		c := &trackedConn{Conn: pipe.B}
		mu.Lock()
		tc = c
		mu.Unlock()
		close(dialedOnce)
		return c, nil
	}

	v := &Volunteer{Channel: transport.Config{HeartbeatInterval: -1}, CrashAfter: -1}
	done := make(chan error, 1)
	go func() {
		done <- ReconnectWS(ctx, v, ReconnectConfig{}, dial, "silent-master")
	}()
	<-dialedOnce
	time.Sleep(10 * time.Millisecond) // let the join reach the blocked Recv
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReconnectWS never returned after cancellation")
	}
	mu.Lock()
	c := tc
	mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for !c.isClosed() {
		if time.Now().After(deadline) {
			t.Fatal("dialed conn not severed on cancellation; the blocked join leaks")
		}
		time.Sleep(time.Millisecond)
	}
}
