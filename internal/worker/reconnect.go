package worker

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pando/internal/transport"
)

// This file implements the crash-recovery participation mode the paper's
// §2.3 footnote describes ("crash-recovery, in which a process may fail
// then recover and try participating again"): a volunteer that keeps
// rejoining the deployment after transient failures, with exponential
// backoff. From the master's point of view each rejoin is simply a new
// device joining dynamically — no protocol change is needed, which is the
// point of the crash-stop design.

// ReconnectConfig tunes the rejoin loop.
type ReconnectConfig struct {
	// InitialBackoff before the first retry; zero selects 200ms.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth; zero selects 30s.
	MaxBackoff time.Duration
	// MaxAttempts bounds consecutive failed attempts; zero means
	// unlimited.
	MaxAttempts int
}

func (c ReconnectConfig) initial() time.Duration {
	if c.InitialBackoff <= 0 {
		return 200 * time.Millisecond
	}
	return c.InitialBackoff
}

func (c ReconnectConfig) max() time.Duration {
	if c.MaxBackoff <= 0 {
		return 30 * time.Second
	}
	return c.MaxBackoff
}

// ErrRetriesExhausted reports that MaxAttempts consecutive joins failed.
var ErrRetriesExhausted = errors.New("worker: reconnect attempts exhausted")

// ServeWithReconnect keeps the volunteer participating until the stream
// completes gracefully (join returns nil), the context is cancelled, or
// MaxAttempts consecutive attempts fail. join performs one full join
// (e.g. dial + JoinWS); a successful period of participation resets the
// backoff.
//
// Cancelling the context returns ctx.Err() promptly even while join is
// still blocked (mid-dial, mid-handshake, or serving): the join runs on
// its own goroutine and is abandoned to unwind on its own. Joins that
// hold resources should watch the same context and release them —
// ReconnectWS severs its dialed connection on cancellation so the
// abandoned join unblocks instead of lingering.
func ServeWithReconnect(ctx context.Context, v *Volunteer, cfg ReconnectConfig, join func() error) error {
	backoff := cfg.initial()
	failures := 0
	for {
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		before := v.Processed()
		err := joinCtx(ctx, join)
		if err == nil {
			// Graceful completion: the stream is done.
			return nil
		}
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		if v.Processed() > before {
			// We participated before failing: this was a working period,
			// so the backoff resets (the paper's transient-fault case).
			backoff = cfg.initial()
			failures = 0
		} else {
			failures++
			if cfg.MaxAttempts > 0 && failures >= cfg.MaxAttempts {
				return fmt.Errorf("%w after %d attempts: %v", ErrRetriesExhausted, failures, err)
			}
		}
		select {
		case <-time.After(backoff):
		case <-ctxDone(ctx):
			return ctx.Err()
		}
		backoff *= 2
		if backoff > cfg.max() {
			backoff = cfg.max()
		}
	}
}

func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// joinCtx runs join, returning ctx.Err() promptly if the context is
// cancelled while join is still blocked. The abandoned join goroutine
// unwinds on its own once its underlying connection fails or is severed.
func joinCtx(ctx context.Context, join func() error) error {
	if ctx == nil {
		return join()
	}
	done := make(chan error, 1)
	go func() { done <- join() }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ReconnectWS is a convenience: ServeWithReconnect joining over the
// WebSocket-like transport through dial each time. The dialed connection
// is always released when a join attempt fails — in particular a
// handshake refusal must not leak one socket per retry of a bounded
// MaxAttempts loop — and is severed when the context is cancelled so a
// blocked join unwinds promptly.
func ReconnectWS(ctx context.Context, v *Volunteer, cfg ReconnectConfig, dial transport.Dialer, addr string) error {
	return ServeWithReconnect(ctx, v, cfg, func() error {
		conn, err := dial(addr)
		if err != nil {
			return err
		}
		settled := make(chan struct{})
		if ctx != nil {
			go func() {
				select {
				case <-ctx.Done():
					conn.Close()
				case <-settled:
				}
			}()
		}
		err = v.JoinWS(conn)
		close(settled)
		if err != nil {
			// Belt and braces: every failure path inside JoinWS should
			// already have closed the channel (and with it the conn), but
			// a leak here would repeat on every retry, so the invariant
			// is enforced where the socket was dialed. Closing an
			// already-closed conn is a no-op error.
			conn.Close()
		}
		return err
	})
}
