package worker

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pando/internal/transport"
)

// This file implements the crash-recovery participation mode the paper's
// §2.3 footnote describes ("crash-recovery, in which a process may fail
// then recover and try participating again"): a volunteer that keeps
// rejoining the deployment after transient failures, with exponential
// backoff. From the master's point of view each rejoin is simply a new
// device joining dynamically — no protocol change is needed, which is the
// point of the crash-stop design.

// ReconnectConfig tunes the rejoin loop.
type ReconnectConfig struct {
	// InitialBackoff before the first retry; zero selects 200ms.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth; zero selects 30s.
	MaxBackoff time.Duration
	// MaxAttempts bounds consecutive failed attempts; zero means
	// unlimited.
	MaxAttempts int
}

func (c ReconnectConfig) initial() time.Duration {
	if c.InitialBackoff <= 0 {
		return 200 * time.Millisecond
	}
	return c.InitialBackoff
}

func (c ReconnectConfig) max() time.Duration {
	if c.MaxBackoff <= 0 {
		return 30 * time.Second
	}
	return c.MaxBackoff
}

// ErrRetriesExhausted reports that MaxAttempts consecutive joins failed.
var ErrRetriesExhausted = errors.New("worker: reconnect attempts exhausted")

// ServeWithReconnect keeps the volunteer participating until the stream
// completes gracefully (join returns nil), the context is cancelled, or
// MaxAttempts consecutive attempts fail. join performs one full join
// (e.g. dial + JoinWS); a successful period of participation resets the
// backoff.
func ServeWithReconnect(ctx context.Context, v *Volunteer, cfg ReconnectConfig, join func() error) error {
	backoff := cfg.initial()
	failures := 0
	for {
		before := v.Processed()
		err := join()
		if err == nil {
			// Graceful completion: the stream is done.
			return nil
		}
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		if v.Processed() > before {
			// We participated before failing: this was a working period,
			// so the backoff resets (the paper's transient-fault case).
			backoff = cfg.initial()
			failures = 0
		} else {
			failures++
			if cfg.MaxAttempts > 0 && failures >= cfg.MaxAttempts {
				return fmt.Errorf("%w after %d attempts: %v", ErrRetriesExhausted, failures, err)
			}
		}
		select {
		case <-time.After(backoff):
		case <-ctxDone(ctx):
			return ctx.Err()
		}
		backoff *= 2
		if backoff > cfg.max() {
			backoff = cfg.max()
		}
	}
}

func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// ReconnectWS is a convenience: ServeWithReconnect joining over the
// WebSocket-like transport through dial each time.
func ReconnectWS(ctx context.Context, v *Volunteer, cfg ReconnectConfig, dial transport.Dialer, addr string) error {
	return ServeWithReconnect(ctx, v, cfg, func() error {
		conn, err := dial(addr)
		if err != nil {
			return err
		}
		return v.JoinWS(conn)
	})
}
