package worker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/transport"
)

var regSeq atomic.Int64

func uniqueName() string { return fmt.Sprintf("worker-test-fn-%d", regSeq.Add(1)) }

func double(b []byte) ([]byte, error) {
	var v int
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, err
	}
	return json.Marshal(v * 2)
}

func TestRegisterLookupRegistered(t *testing.T) {
	name := uniqueName()
	Register(name, double)
	h, ok := Lookup(name)
	if !ok {
		t.Fatal("registered function not found")
	}
	out, err := h([]byte("21"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "42" {
		t.Fatalf("out = %s", out)
	}
	found := false
	for _, n := range Registered() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatal("Registered() missing the new function")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	name := uniqueName()
	Register(name, double)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(name, double)
}

// fakeMaster speaks the master's side of the handshake on a channel.
func fakeMaster(t *testing.T, ch transport.Channel, funcName string, inputs []int) <-chan []int {
	t.Helper()
	results := make(chan []int, 1)
	go func() {
		defer close(results)
		hello, err := ch.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		if err := proto.CheckHello(hello); err != nil {
			t.Error(err)
			return
		}
		if err := ch.Send(&proto.Message{Type: proto.TypeWelcome, Func: funcName, Batch: 2}); err != nil {
			t.Error(err)
			return
		}
		var got []int
		for i, v := range inputs {
			data, _ := json.Marshal(v)
			if err := ch.Send(&proto.Message{Type: proto.TypeInput, Seq: uint64(i + 1), Data: data}); err != nil {
				t.Error(err)
				return
			}
			m, err := ch.Recv()
			if err != nil {
				return // crash path: deliver what we have
			}
			if m.Type == proto.TypeResult && m.Err == "" {
				var r int
				_ = json.Unmarshal(m.Data, &r)
				got = append(got, r)
			}
		}
		_ = ch.Send(&proto.Message{Type: proto.TypeGoodbye})
		results <- got
	}()
	return results
}

func TestVolunteerServesRegisteredFunction(t *testing.T) {
	name := uniqueName()
	Register(name, double)
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	cfg := transport.Config{HeartbeatInterval: -1}
	masterCh := transport.NewWSock(p.A, cfg)
	results := fakeMaster(t, masterCh, name, []int{1, 2, 3})

	v := &Volunteer{Name: "dev", Channel: cfg, CrashAfter: -1}
	if err := v.JoinWS(p.B); err != nil {
		t.Fatal(err)
	}
	got := <-results
	if len(got) != 3 || got[0] != 2 || got[2] != 6 {
		t.Fatalf("got %v", got)
	}
	if v.Processed() != 3 {
		t.Fatalf("processed = %d", v.Processed())
	}
}

func TestVolunteerUnknownFunction(t *testing.T) {
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	cfg := transport.Config{HeartbeatInterval: -1}
	masterCh := transport.NewWSock(p.A, cfg)
	go fakeMaster(t, masterCh, "no-such-function-anywhere", nil)

	v := &Volunteer{Name: "dev", Channel: cfg, CrashAfter: -1}
	err := v.JoinWS(p.B)
	if err == nil {
		t.Fatal("join succeeded with unknown function")
	}
}

func TestVolunteerCrashInjection(t *testing.T) {
	name := uniqueName()
	Register(name, double)
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	cfg := transport.Config{HeartbeatInterval: 20 * time.Millisecond}
	masterCh := transport.NewWSock(p.A, cfg)
	results := fakeMaster(t, masterCh, name, []int{1, 2, 3, 4, 5, 6})

	v := &Volunteer{Name: "dev", Channel: cfg, CrashAfter: 2}
	err := v.JoinWS(p.B)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	got := <-results
	if len(got) > 2 {
		t.Fatalf("master received %d results from a volunteer that crashed after 2", len(got))
	}
	if v.Processed() != 2 {
		t.Fatalf("processed = %d, want 2", v.Processed())
	}
}

func TestVolunteerHandlerOverride(t *testing.T) {
	// A Handler set directly bypasses the registry entirely.
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	cfg := transport.Config{HeartbeatInterval: -1}
	masterCh := transport.NewWSock(p.A, cfg)
	results := fakeMaster(t, masterCh, "whatever-name", []int{10})

	v := &Volunteer{Name: "dev", Channel: cfg, CrashAfter: -1, Handler: double}
	if err := v.JoinWS(p.B); err != nil {
		t.Fatal(err)
	}
	got := <-results
	if len(got) != 1 || got[0] != 20 {
		t.Fatalf("got %v", got)
	}
}

func TestVolunteerDelaySlowsProcessing(t *testing.T) {
	name := uniqueName()
	Register(name, double)
	p := netsim.NewPipe(netsim.Loopback)
	defer p.Cut()
	cfg := transport.Config{HeartbeatInterval: -1}
	masterCh := transport.NewWSock(p.A, cfg)
	results := fakeMaster(t, masterCh, name, []int{1, 2, 3})

	v := &Volunteer{Name: "dev", Channel: cfg, CrashAfter: -1, Delay: 20 * time.Millisecond}
	start := time.Now()
	if err := v.JoinWS(p.B); err != nil {
		t.Fatal(err)
	}
	<-results
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("3 items with 20ms delay took %v, want >= 60ms", elapsed)
	}
}

func TestRawCodecPassThrough(t *testing.T) {
	c := RawCodec{}
	in := []byte(`{"x":1}`)
	enc, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if string(dec) != string(in) {
		t.Fatalf("round trip changed data: %s", dec)
	}
}

func TestJoinURLBadURL(t *testing.T) {
	v := &Volunteer{CrashAfter: -1}
	dial := func(addr string) (net.Conn, error) { return nil, errors.New("nope") }
	if err := v.JoinURL("http://127.0.0.1:1/", dial); err == nil {
		t.Fatal("expected error for unreachable URL")
	}
}

func TestServeWithReconnectCompletesGracefully(t *testing.T) {
	v := &Volunteer{CrashAfter: -1}
	calls := 0
	err := ServeWithReconnect(context.Background(), v, ReconnectConfig{}, func() error {
		calls++
		return nil // graceful completion on first join
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestServeWithReconnectRetriesThenExhausts(t *testing.T) {
	v := &Volunteer{CrashAfter: -1}
	calls := 0
	err := ServeWithReconnect(context.Background(), v,
		ReconnectConfig{InitialBackoff: time.Millisecond, MaxAttempts: 3},
		func() error {
			calls++
			return errors.New("join failed")
		})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestServeWithReconnectContextCancel(t *testing.T) {
	v := &Volunteer{CrashAfter: -1}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := ServeWithReconnect(ctx, v, ReconnectConfig{InitialBackoff: 5 * time.Millisecond}, func() error {
		return errors.New("always failing")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestServeWithReconnectResetsAfterProgress(t *testing.T) {
	// Joins that made progress reset the failure counter: with
	// MaxAttempts 2, alternating work/failure must not exhaust.
	name := uniqueName()
	Register(name, double)
	v := &Volunteer{Name: "dev", Channel: transport.Config{HeartbeatInterval: -1}, CrashAfter: -1}

	round := 0
	err := ServeWithReconnect(context.Background(), v,
		ReconnectConfig{InitialBackoff: time.Millisecond, MaxAttempts: 2},
		func() error {
			round++
			if round >= 4 {
				return nil // deployment completed
			}
			// Simulate a working period: a master that sends one input,
			// reads the result, then severs the link (never a goodbye).
			p := netsim.NewPipe(netsim.Loopback)
			masterCh := transport.NewWSock(p.A, transport.Config{HeartbeatInterval: 20 * time.Millisecond})
			go func() {
				defer p.Cut()
				if _, err := masterCh.Recv(); err != nil { // hello
					return
				}
				if err := masterCh.Send(&proto.Message{Type: proto.TypeWelcome, Func: name, Batch: 2}); err != nil {
					return
				}
				data, _ := json.Marshal(round)
				if err := masterCh.Send(&proto.Message{Type: proto.TypeInput, Seq: 1, Data: data}); err != nil {
					return
				}
				_, _ = masterCh.Recv() // the result
			}()
			err := v.JoinWS(p.B)
			if err == nil {
				return errors.New("link severed")
			}
			return err
		})
	if err != nil {
		t.Fatalf("err = %v; progress should keep resetting the budget", err)
	}
	if v.Processed() < 3 {
		t.Fatalf("processed = %d across reconnects, want >= 3", v.Processed())
	}
}

func TestReconnectWSAgainstRealMaster(t *testing.T) {
	// Full loop: the volunteer crashes repeatedly (CrashAfter) but keeps
	// rejoining until the master's stream completes.
	name := uniqueName()
	Register(name, double)
	// a fresh volunteer per life would reset CrashAfter; share one with a
	// rolling crash threshold instead
	v := &Volunteer{Name: "lazarus", Channel: transport.Config{HeartbeatInterval: 25 * time.Millisecond}, CrashAfter: 5}

	ln := netsim.NewListener("reconnect-master", netsim.LAN)
	defer ln.Close()

	masterDone := make(chan []int, 1)
	go func() {
		// Minimal master loop: accept successive volunteer lives and feed
		// them the remaining inputs.
		var got []int
		next := 1
		for next <= 12 {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			ch := transport.NewWSock(conn, transport.Config{HeartbeatInterval: 25 * time.Millisecond})
			var remaining []int
			for i := next; i <= 12; i++ {
				remaining = append(remaining, i)
			}
			results := fakeMaster(t, ch, name, remaining)
			if rs, ok := <-results; ok {
				got = append(got, rs...)
				next += len(rs)
			} else {
				// Crashed mid-stream: count what the volunteer confirmed.
				next = 1 + v.Processed()
				got = got[:0]
				for i := 1; i <= v.Processed(); i++ {
					got = append(got, i*2)
				}
			}
		}
		masterDone <- got
	}()

	go func() {
		dial := func(string) (net.Conn, error) {
			c, _, err := ln.Dial()
			return c, err
		}
		// Raise the crash threshold on every life so each rejoin does a
		// bit more work before crashing again.
		ServeWithReconnect(context.Background(), v,
			ReconnectConfig{InitialBackoff: 5 * time.Millisecond},
			func() error {
				v.mu.Lock()
				v.CrashAfter = v.processed + 5
				v.mu.Unlock()
				conn, err := dial("")
				if err != nil {
					return err
				}
				return v.JoinWS(conn)
			})
	}()

	select {
	case got := <-masterDone:
		if len(got) < 12 {
			t.Fatalf("master collected %d results, want 12", len(got))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reconnecting volunteer never completed the stream")
	}
}
