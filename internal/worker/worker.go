// Package worker implements the Volunteer side of Pando (paper Figure 7):
// a processor that joins a master by "opening the URL", resolves the
// processing function, and applies it to a stream of inputs — the
// Worker (browser tab) of the paper.
//
// Code shipping substitution: the JavaScript implementation browserifies
// the user's function and serves it to the volunteer's browser. A Go
// binary cannot load code at runtime, so volunteers carry a registry of
// named processing functions; the master's welcome message names the one
// to apply. The observable behaviour — a generic volunteer binary that
// works for any project — is preserved.
package worker

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"pando/internal/blob"
	"pando/internal/proto"
	"pando/internal/transport"
)

// Handler is a registered processing function operating on raw payloads;
// applications decode and encode their own value types inside it,
// mirroring the glue code of the paper's Figure 2.
type Handler func(input []byte) ([]byte, error)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Handler)
)

// Register adds a named processing function to the volunteer registry.
// It panics on duplicate registration, which is a programming error.
func Register(name string, h Handler) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("worker: duplicate registration of %q", name))
	}
	registry[name] = h
}

// Lookup resolves a registered function.
func Lookup(name string) (Handler, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	h, ok := registry[name]
	return h, ok
}

// Registered lists the registered function names, sorted.
func Registered() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RawCodec passes payloads through untouched; the volunteer does not
// interpret application data.
type RawCodec = transport.RawCodec

// ErrCrashed is the internal signal a Volunteer uses to simulate a
// crash-stop failure (a browser tab suddenly closed).
var ErrCrashed = errors.New("worker: injected crash")

// Volunteer is one participating device process.
type Volunteer struct {
	// Name identifies the device in the master's accounting (e.g.
	// "iPhone SE"); empty lets the master assign one.
	Name string
	// Channel tunes heartbeats.
	Channel transport.Config
	// Handler overrides the registry lookup when non-nil (useful for
	// tests and for single-purpose volunteers).
	Handler Handler
	// Delay adds per-item processing time, simulating a slower device
	// (the device profiles of the evaluation harness).
	Delay time.Duration
	// CrashAfter makes the volunteer crash abruptly after processing
	// that many items; negative means never. The crash severs the
	// connection without a goodbye, the paper's crash-stop failure.
	CrashAfter int
	// Formats restricts the wire formats this volunteer advertises, best
	// first. Empty advertises everything this build supports; set it to
	// []string{proto.Version} to emulate a v1-only device.
	Formats []string
	// Functions overrides the function list the hello advertises — what a
	// shared pool routes and reassigns the device by. The single entry
	// "*" advertises "any function" (pair it with Handler or Resolve).
	// Empty advertises the global registry when Handler and Resolve are
	// nil, and nothing otherwise — an un-advertised volunteer behaves
	// exactly like a pre-pool device: routed once, never reassigned.
	Functions []string
	// Resolve overrides the global registry lookup when non-nil, letting
	// embedders (e.g. a pando.Pool's local workers) resolve reassignment
	// targets from their own handler table.
	Resolve func(name string) (Handler, bool)
	// BlobCacheBytes caps the content-addressed payload cache used when
	// the session negotiates '/pando/2.2.0': repeated payloads the master
	// references by digest resolve from here instead of re-crossing the
	// link. Zero means blob.DefaultCacheBytes; negative degenerates the
	// cache to a single most-recent block (references beyond it miss and
	// fetch). The cache lives as long as the Volunteer and is keyed by
	// content, so it stays valid across rejoins and fleet reassignment.
	BlobCacheBytes int64

	mu        sync.Mutex
	processed int
	sessions  uint64 // join incarnations served (rejoins send > 0)
	nonce     string // per-instance token identifying rejoins to the master
	cache     *blob.Cache
}

// blobCache lazily creates the volunteer's content-addressed cache.
func (v *Volunteer) blobCache() *blob.Cache {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.cache == nil {
		v.cache = blob.NewCache(v.BlobCacheBytes)
	}
	return v.cache
}

// PoisonBlobCache flips a byte of the newest entry in the volunteer's
// blob cache, if any — the chaos suite's hook for proving a corrupted
// cache entry surfaces as a digest mismatch on the next reference and
// crash-stops the channel instead of handing wrong bytes to the
// processing function.
func (v *Volunteer) PoisonBlobCache() bool { return v.blobCache().PoisonNewest() }

// Processed returns how many items this volunteer completed.
func (v *Volunteer) Processed() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.processed
}

// JoinWS joins a master over an established raw connection using the
// WebSocket-like channel, performs the handshake, and serves until the
// stream completes, the volunteer crashes, or the channel fails.
func (v *Volunteer) JoinWS(conn net.Conn) error {
	ch := transport.NewWSock(conn, v.Channel)
	return v.serve(ch)
}

// JoinURL performs the full volunteer bootstrap of the paper's §2.1.2:
// fetch the deployment invitation from the URL the master printed on
// startup, then join over the transport it names — a direct
// WebSocket-like connection, or signalling through a public server
// followed by a direct WebRTC-like channel. dial opens raw connections
// (use transport.TCPDialer for real networks).
func (v *Volunteer) JoinURL(url string, dial transport.Dialer) error {
	inv, err := proto.FetchInvitation(url)
	if err != nil {
		return err
	}
	switch inv.Transport {
	case "ws", "":
		conn, err := dial(inv.DataAddr)
		if err != nil {
			return fmt.Errorf("worker: dial %s: %w", inv.DataAddr, err)
		}
		return v.JoinWS(conn)
	case "webrtc":
		sc, err := dial(inv.DataAddr)
		if err != nil {
			return fmt.Errorf("worker: dial signalling %s: %w", inv.DataAddr, err)
		}
		signal := transport.NewWSock(sc, v.Channel)
		self := v.Name
		if self == "" {
			self = fmt.Sprintf("volunteer-%p", v)
		}
		return v.JoinRTC(signal, self, inv.MasterID, dial)
	default:
		return fmt.Errorf("worker: unsupported transport %q in invitation", inv.Transport)
	}
}

// JoinRTC joins a master through the WebRTC-like bootstrap: signalling
// via the public server channel, then a direct connection (paper §5.4).
// An empty masterID is pool mode: the relay assigns a registered master,
// guided by the functions this volunteer advertises.
func (v *Volunteer) JoinRTC(signal transport.Channel, selfID, masterID string, dial transport.Dialer) error {
	if err := transport.JoinSignal(signal, selfID); err != nil {
		signal.Close()
		return err
	}
	ch, err := transport.RTCOfferServing(signal, selfID, masterID, v.advertised(), dial, v.Channel)
	if err != nil {
		// A failed bootstrap must release the signalling registration:
		// a retry loop would otherwise collide with its own stale peer
		// ID (and leak one connection per attempt).
		signal.Close()
		return err
	}
	return v.serve(ch)
}

// advertised returns the function list the hello carries: the explicit
// Functions override, or the global registry for registry-backed
// volunteers. A volunteer with an explicit Handler or Resolve and no
// override advertises nothing, which keeps it a pre-pool device.
func (v *Volunteer) advertised() []string {
	if len(v.Functions) > 0 {
		return v.Functions
	}
	if v.Handler == nil && v.Resolve == nil {
		return Registered()
	}
	return nil
}

// resolve maps a function name to a processing handler: the fixed
// Handler when set, then the Resolve hook, then the global registry.
func (v *Volunteer) resolve(name string) (Handler, error) {
	if v.Handler != nil {
		return v.Handler, nil
	}
	if v.Resolve != nil {
		if h, ok := v.Resolve(name); ok {
			return h, nil
		}
		return nil, fmt.Errorf("worker: unknown function %q", name)
	}
	if h, ok := Lookup(name); ok {
		return h, nil
	}
	return nil, fmt.Errorf("worker: unknown function %q (registered: %v)", name, Registered())
}

// incarnation returns this join's incarnation number and the volunteer's
// instance token. A rejoin (incarnation > 0) lets the master sever the
// previous incarnation's half-open sessions instead of waiting out their
// heartbeats — the crash-recovery footnote of the paper's §2.3 without
// stale flow-control state surviving the reattach.
func (v *Volunteer) incarnation() (uint64, string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.nonce == "" {
		var b [12]byte
		if _, err := rand.Read(b[:]); err == nil {
			v.nonce = hex.EncodeToString(b[:])
		} else {
			v.nonce = fmt.Sprintf("volunteer-%p", v)
		}
	}
	seq := v.sessions
	v.sessions++
	return seq, v.nonce
}

func (v *Volunteer) serve(ch transport.Channel) error {
	// The hello still declares '/pando/1.0.0' and travels as a v1 frame:
	// that is the lingua franca an un-upgraded master understands. The
	// Formats list advertises newer wire formats, and the Functions list
	// (pool-aware volunteers) the jobs the device can serve.
	seq, nonce := v.incarnation()
	formats := v.Formats
	if len(formats) == 0 {
		formats = proto.SupportedFormats()
	}
	welcome, err := transport.Hello(ch, &proto.Message{
		Peer:      v.Name,
		Formats:   formats,
		Functions: v.advertised(),
		Seq:       seq,
		Token:     nonce,
	})
	if err != nil {
		return err
	}

	// Under '/pando/2.2.0' the master may send digest-only payload
	// references; the dedup receiver resolves them against the
	// volunteer's blob cache (fetching on a miss) before the serve loop
	// sees the frame. Other formats never carry references, so the
	// channel stays unwrapped.
	if ch.Wire().Name() == proto.Version3 {
		ch = transport.DedupWorkerChannel(ch, v.blobCache())
	}

	h, err := v.resolve(welcome.Func)
	if err != nil {
		ch.Close()
		return err
	}
	var hmu sync.Mutex

	wrapped := func(input []byte) ([]byte, error) {
		v.mu.Lock()
		crash := v.CrashAfter >= 0 && v.processed >= v.CrashAfter
		v.mu.Unlock()
		if crash {
			// Sever abruptly: no goodbye, no result — crash-stop.
			ch.Close()
			return nil, ErrCrashed
		}
		if v.Delay > 0 {
			time.Sleep(v.Delay)
		}
		hmu.Lock()
		handler := h
		hmu.Unlock()
		out, err := handler(input)
		if err != nil {
			return nil, err
		}
		v.mu.Lock()
		v.processed++
		v.mu.Unlock()
		return out, nil
	}

	// A pool master may reassign the device to another job mid-session (a
	// re-welcome); switching the handler in place keeps the same
	// connection, credits and accounting alive across jobs.
	reassign := func(name string) (func([]byte) ([]byte, error), error) {
		nh, err := v.resolve(name)
		if err != nil {
			return nil, err
		}
		hmu.Lock()
		h = nh
		hmu.Unlock()
		return wrapped, nil
	}

	err = transport.WorkerServeReassignable[[]byte, []byte](ch, RawCodec{}, RawCodec{}, wrapped, reassign)
	if err != nil && v.crashed() {
		return ErrCrashed
	}
	return err
}

func (v *Volunteer) crashed() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.CrashAfter >= 0 && v.processed >= v.CrashAfter
}
