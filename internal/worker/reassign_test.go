package worker

import (
	"strconv"
	"testing"
	"time"

	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/transport"
)

// scriptedMaster wraps the master side of a pipe for direct frame play.
func scriptedMaster(t *testing.T) (transport.Channel, *Volunteer, chan error) {
	t.Helper()
	pipe := netsim.NewPipe(netsim.Loopback)
	cfg := transport.Config{HeartbeatInterval: -1}
	v := &Volunteer{
		Name:       "dev",
		CrashAfter: -1,
		Functions:  []string{"double", "negate"},
		Resolve: func(name string) (Handler, bool) {
			switch name {
			case "double":
				return func(in []byte) ([]byte, error) {
					n, _ := strconv.Atoi(string(in))
					return []byte(strconv.Itoa(2 * n)), nil
				}, true
			case "negate":
				return func(in []byte) ([]byte, error) {
					n, _ := strconv.Atoi(string(in))
					return []byte(strconv.Itoa(-n)), nil
				}, true
			}
			return nil, false
		},
	}
	done := make(chan error, 1)
	go func() { done <- v.JoinWS(pipe.A) }()
	return transport.NewWSock(pipe.B, cfg), v, done
}

func expectFrame(t *testing.T, ch transport.Channel, want proto.Type) *proto.Message {
	t.Helper()
	for {
		m, err := ch.Recv()
		if err != nil {
			t.Fatalf("recv awaiting %q: %v", want, err)
		}
		if m.Type == want {
			return m
		}
		t.Fatalf("recv = %+v, want %q", m, want)
	}
}

// TestWorkerHandlesReassignMidSession: a reassign frame switches the
// serving function in place — the echo comes after the switch, and
// subsequent inputs run through the new handler. A mid-session
// re-welcome does the same instead of being treated as a protocol error.
func TestWorkerHandlesReassignMidSession(t *testing.T) {
	ch, v, done := scriptedMaster(t)

	hello := expectFrame(t, ch, proto.TypeHello)
	if len(hello.Functions) != 2 || hello.Functions[0] != "double" {
		t.Fatalf("hello functions = %v", hello.Functions)
	}
	if err := ch.Send(&proto.Message{Type: proto.TypeWelcome, Func: "double", Batch: 2}); err != nil {
		t.Fatal(err)
	}

	// First job: double.
	_ = ch.Send(&proto.Message{Type: proto.TypeInput, Seq: 1, Data: []byte(`7`)})
	if res := expectFrame(t, ch, proto.TypeResult); string(res.Data) != "14" {
		t.Fatalf("double(7) = %s", res.Data)
	}

	// Reassign to negate; the echo acknowledges the switch.
	_ = ch.Send(&proto.Message{Type: proto.TypeReassign, Func: "negate"})
	if ack := expectFrame(t, ch, proto.TypeReassign); ack.Func != "negate" {
		t.Fatalf("reassign ack = %+v", ack)
	}
	_ = ch.Send(&proto.Message{Type: proto.TypeInput, Seq: 2, Data: []byte(`7`)})
	if res := expectFrame(t, ch, proto.TypeResult); string(res.Data) != "-7" {
		t.Fatalf("negate(7) = %s", res.Data)
	}

	// A mid-session re-welcome is a reassign too, not a protocol error.
	_ = ch.Send(&proto.Message{Type: proto.TypeWelcome, Func: "double"})
	if ack := expectFrame(t, ch, proto.TypeReassign); ack.Func != "double" {
		t.Fatalf("re-welcome ack = %+v", ack)
	}
	_ = ch.Send(&proto.Message{Type: proto.TypeInput, Seq: 3, Data: []byte(`5`)})
	if res := expectFrame(t, ch, proto.TypeResult); string(res.Data) != "10" {
		t.Fatalf("double(5) after re-welcome = %s", res.Data)
	}

	// Both jobs' work counts toward the same device.
	if v.Processed() != 3 {
		t.Fatalf("processed = %d, want 3 across both jobs", v.Processed())
	}

	_ = ch.Send(&proto.Message{Type: proto.TypeGoodbye})
	expectFrame(t, ch, proto.TypeGoodbye)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serve did not end after goodbye")
	}
}

// TestWorkerRefusesUnknownReassign: reassignment to a function the
// volunteer cannot resolve fails the session loudly (error frame, then
// the channel closes) instead of silently mis-serving.
func TestWorkerRefusesUnknownReassign(t *testing.T) {
	ch, _, done := scriptedMaster(t)
	expectFrame(t, ch, proto.TypeHello)
	_ = ch.Send(&proto.Message{Type: proto.TypeWelcome, Func: "double", Batch: 2})
	_ = ch.Send(&proto.Message{Type: proto.TypeReassign, Func: "no-such-fn"})
	if m := expectFrame(t, ch, proto.TypeError); m.Err == "" {
		t.Fatalf("error frame = %+v", m)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("serve returned nil after an unresolvable reassign")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serve did not end after refusing the reassign")
	}
}
