package lender

import (
	"encoding/binary"
	"errors"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"pando/internal/journal"
	"pando/internal/pullstream"
)

func intEnc(v int) ([]byte, error) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:], nil
}

func intDec(b []byte) (int, error) {
	if len(b) != 8 {
		return 0, errors.New("bad payload")
	}
	return int(binary.BigEndian.Uint64(b)), nil
}

// slowCollect drains src one value at a time, sleeping between asks, and
// samples the lender's MemStats after each value so tests can assert the
// heap bound held throughout the run.
func slowCollect[I any](l *Lender[I, int], src pullstream.Source[int], delay time.Duration) (vs []int, maxHeap, maxSpilled int, err error) {
	for {
		type ans struct {
			end error
			v   int
		}
		ch := make(chan ans, 1)
		src(nil, func(end error, v int) { ch <- ans{end, v} })
		a := <-ch
		if a.end != nil {
			if a.end != pullstream.ErrDone {
				err = a.end
			}
			return
		}
		vs = append(vs, a.v)
		h, s := l.MemStats()
		if h > maxHeap {
			maxHeap = h
		}
		if s > maxSpilled {
			maxSpilled = s
		}
		if delay > 0 {
			time.Sleep(delay)
		}
	}
}

// TestOrderedSpillBoundsHeap drives fast workers against a slow consumer
// with a real journal spill segment attached: the reorder buffer must
// stay at or under the high-water mark, the overflow must visibly move
// through the spill store, and the output must still be the exact ordered
// stream an unbounded run would produce.
func TestOrderedSpillBoundsHeap(t *testing.T) {
	const n, hw = 400, 8
	store, err := journal.OpenSpill(filepath.Join(t.TempDir(), "spill.seg"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	l := New[int, int]()
	l.SetHighWater(hw)
	l.SetSpill(store, intEnc, intDec)
	out := l.Bind(pullstream.Count(n))
	for i := 0; i < 3; i++ {
		runWorker(t, l, func(v int) int { return v * 3 }, 0, -1)
	}
	got, maxHeap, maxSpilled, err := slowCollect(l, out, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	for i, v := range got {
		if v != (i+1)*3 {
			t.Fatalf("got[%d] = %d, want %d (ordered output broken by spilling)", i, v, (i+1)*3)
		}
	}
	if maxHeap > hw {
		t.Fatalf("reorder heap peaked at %d results, high-water mark is %d", maxHeap, hw)
	}
	if maxSpilled == 0 {
		t.Fatal("nothing ever spilled; the test did not exercise the overflow path")
	}
	if h, s := l.MemStats(); h != 0 || s != 0 {
		t.Fatalf("stream done but MemStats = (%d heap, %d spilled)", h, s)
	}
	if store.Len() != 0 || store.Bytes() != 0 {
		t.Fatalf("drained store still holds %d records, %d bytes", store.Len(), store.Bytes())
	}
}

// TestOrderedGatingWithoutSpill runs the same shape with no store: the
// bound must instead propagate as backpressure that pauses fresh input
// reads. Results already lent may still land, so the heap can overshoot
// by the values in flight when the gate closes: one per worker plus the
// read the lender had already issued.
func TestOrderedGatingWithoutSpill(t *testing.T) {
	const n, hw, workers = 300, 6, 3
	l := New[int, int]()
	l.SetHighWater(hw)
	out := l.Bind(pullstream.Count(n))
	for i := 0; i < workers; i++ {
		runWorker(t, l, func(v int) int { return v + 1000 }, 0, -1)
	}
	got, maxHeap, _, err := slowCollect(l, out, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i+1+1000 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	if maxHeap > hw+workers+1 {
		t.Fatalf("heap peaked at %d results; gating should cap it near %d", maxHeap, hw)
	}
}

// TestUnorderedHighWaterBoundsReady checks the unordered mode's bound:
// with nothing to reorder, the high-water mark is pure backpressure on
// the ready queue.
func TestUnorderedHighWaterBoundsReady(t *testing.T) {
	const n, hw, workers = 300, 5, 3
	l := New[int, int](Unordered())
	l.SetHighWater(hw)
	out := l.Bind(pullstream.Count(n))
	for i := 0; i < workers; i++ {
		runWorker(t, l, func(v int) int { return v }, 0, -1)
	}
	got, maxReady, _, err := slowCollect(l, out, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	seen := make(map[int]bool, n)
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("duplicate or missing results: %d distinct of %d", len(seen), n)
	}
	if maxReady > hw+workers {
		t.Fatalf("ready queue peaked at %d; high-water mark is %d", maxReady, hw)
	}
}

// failingStore accepts Puts but cannot give the payloads back — the
// disk-gone-bad case. Losing a spilled result must fail the output stream
// rather than skip or reorder it.
type failingStore struct {
	mu   sync.Mutex
	held map[int][]byte
}

var errStoreGone = errors.New("spill store unreadable")

func (s *failingStore) Put(idx int, p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.held == nil {
		s.held = make(map[int][]byte)
	}
	s.held[idx] = append([]byte(nil), p...)
	return nil
}
func (s *failingStore) Load(int) ([]byte, error) { return nil, errStoreGone }
func (s *failingStore) Forget(int)               {}

func TestSpillLoadFailureFailsStream(t *testing.T) {
	const n, hw = 100, 2
	l := New[int, int]()
	l.SetHighWater(hw)
	l.SetSpill(&failingStore{}, intEnc, intDec)
	out := l.Bind(pullstream.Count(n))
	runWorker(t, l, func(v int) int { return v }, 0, -1)
	_, _, maxSpilled, err := slowCollect(l, out, time.Millisecond)
	if maxSpilled == 0 && err == nil {
		t.Skip("nothing spilled; cannot exercise the load-failure path")
	}
	if !errors.Is(err, errStoreGone) {
		t.Fatalf("output ended with %v, want the store's load error", err)
	}
}

// brokenPutStore rejects every Put: spilling must degrade to read gating
// (spillBroken) and the stream must still complete correctly with the
// heap merely gated rather than bounded by the store.
type brokenPutStore struct{}

func (brokenPutStore) Put(int, []byte) error    { return errors.New("disk full") }
func (brokenPutStore) Load(int) ([]byte, error) { return nil, errors.New("disk full") }
func (brokenPutStore) Forget(int)               {}

func TestSpillPutFailureDegradesToGating(t *testing.T) {
	const n, hw = 200, 4
	l := New[int, int]()
	l.SetHighWater(hw)
	l.SetSpill(brokenPutStore{}, intEnc, intDec)
	out := l.Bind(pullstream.Count(n))
	for i := 0; i < 2; i++ {
		runWorker(t, l, func(v int) int { return v * 7 }, 0, -1)
	}
	got, _, _, err := slowCollect(l, out, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	for i, v := range got {
		if v != (i+1)*7 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

// TestLongStreamBoundedMemory is the acceptance check for the
// memory-bounded streaming work: a million-item ordered stream with a
// straggler worker holding an early index while a fast worker races far
// ahead. Without bounding, the reorder buffer would grow to hundreds of
// thousands of results; with the high-water mark and journal spilling the
// heap must stay at O(window) the whole run and the output must be
// byte-identical to an unbounded run's.
func TestLongStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("long-stream test skipped in -short mode")
	}
	const (
		n         = 1_000_000
		hw        = 64
		holdUntil = 20_000 // straggler releases after the fast worker is this far ahead
	)
	store, err := journal.OpenSpill(filepath.Join(t.TempDir(), "spill.seg"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	l := New[int, string]()
	l.SetHighWater(hw)
	l.SetSpill(store,
		func(s string) ([]byte, error) { return []byte(s), nil },
		func(b []byte) (string, error) { return string(b), nil },
	)
	out := l.Bind(pullstream.Count(n))

	f := func(v int) string { return "r" + strconv.Itoa(v*2) }

	release := make(chan struct{})
	var releaseOnce sync.Once
	var processed int64
	var statsMu sync.Mutex
	maxHeap, maxSpilled := 0, 0

	// Straggler: takes the first value it is lent and sits on it until
	// released, forcing everything the fast worker produces to buffer.
	runWorker(t, l, func(v int) string {
		<-release
		return f(v)
	}, 0, -1)
	// Fast worker: samples MemStats periodically and trips the release
	// once it is far enough ahead.
	runWorker(t, l, func(v int) string {
		processed++
		if processed == holdUntil {
			releaseOnce.Do(func() { close(release) })
		}
		if processed%512 == 0 {
			h, s := l.MemStats()
			statsMu.Lock()
			if h > maxHeap {
				maxHeap = h
			}
			if s > maxSpilled {
				maxSpilled = s
			}
			statsMu.Unlock()
		}
		return f(v)
	}, 0, -1)

	got, err := pullstream.Collect(out)
	releaseOnce.Do(func() { close(release) }) // belt-and-braces if the straggler never got a value
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	for i, v := range got {
		if want := f(i + 1); v != want {
			t.Fatalf("got[%d] = %q, want %q (spilling must not change the output)", i, v, want)
		}
	}
	statsMu.Lock()
	defer statsMu.Unlock()
	if maxHeap > hw {
		t.Fatalf("reorder heap peaked at %d results over a %d-item stream; bound is %d", maxHeap, n, hw)
	}
	if maxSpilled < holdUntil/4 {
		t.Fatalf("spill peaked at only %d records; the straggler window never built up", maxSpilled)
	}
	t.Logf("peak heap %d (bound %d), peak spilled %d over %d items", maxHeap, hw, maxSpilled, n)
}
