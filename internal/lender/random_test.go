package lender

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pando/internal/pullstream"
)

// This file is the Go rendering of the paper's "StreamLender test"
// application (§4.1): random executions of StreamLender searching for
// violations of the pull-stream protocol invariants and of the
// programming-model properties. The paper reports this strategy found
// three corner-case bugs that manually written tests missed.

// randomExecution runs one randomized StreamLender execution derived from
// seed and validates all observable invariants. It returns a descriptive
// error when an invariant is violated.
func randomExecution(seed int64) error {
	rng := rand.New(rand.NewSource(seed))

	nInputs := rng.Intn(60)
	nWorkers := 1 + rng.Intn(6)
	ordered := rng.Intn(2) == 0

	var opts []Option
	if !ordered {
		opts = append(opts, Unordered())
	}
	l := New[int, int](opts...)

	check := pullstream.NewChecker[int]()
	out := l.Bind(check.Wrap(pullstream.Count(nInputs)))

	outCheck := pullstream.NewChecker[int]()
	outc := make(chan []int, 1)
	errc := make(chan error, 1)
	go func() {
		vs, err := pullstream.Collect(outCheck.Wrap(out))
		outc <- vs
		errc <- err
	}()

	var mu sync.Mutex
	processed := make(map[int]int)
	crashed := 0

	var wg sync.WaitGroup
	reliable := rng.Intn(nWorkers) // index of the worker that never crashes
	for w := 0; w < nWorkers; w++ {
		w := w
		crashAfter := -1
		if w != reliable && rng.Intn(2) == 0 {
			crashAfter = rng.Intn(8)
			crashed++
		}
		jitter := time.Duration(rng.Intn(200)) * time.Microsecond
		workerSeed := rng.Int63()
		wg.Add(1)
		go func() {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(workerSeed))
			_, d := l.LendStream()
			results := make(chan int)
			crashErr := make(chan error, 1)
			var sinkWG sync.WaitGroup
			sinkWG.Add(1)
			go func() {
				defer sinkWG.Done()
				d.Sink(pullstream.FromChan(results, crashErr))
			}()
			count := 0
			for {
				type ans struct {
					end error
					v   int
				}
				ch := make(chan ans, 1)
				d.Source(nil, func(end error, v int) { ch <- ans{end, v} })
				a := <-ch
				if a.end != nil {
					close(results)
					sinkWG.Wait()
					return
				}
				if crashAfter >= 0 && count >= crashAfter {
					d.Source(errors.New("crash"), func(error, int) {})
					crashErr <- errors.New("crash")
					sinkWG.Wait()
					return
				}
				if jitter > 0 && wrng.Intn(4) == 0 {
					time.Sleep(jitter)
				}
				mu.Lock()
				processed[a.v]++
				mu.Unlock()
				results <- a.v * 3
				count++
			}
		}()
	}

	got := <-outc
	if err := <-errc; err != nil {
		return errors.New("output failed: " + err.Error())
	}
	wg.Wait()

	// Invariant: every input answered exactly once on the output.
	if len(got) != nInputs {
		return errors.New("output count mismatch")
	}
	if ordered {
		for i, v := range got {
			if v != (i+1)*3 {
				return errors.New("ordered output out of order")
			}
		}
	} else {
		seen := make(map[int]bool)
		for _, v := range got {
			if seen[v] {
				return errors.New("duplicate result in unordered output")
			}
			seen[v] = true
		}
		if len(seen) != nInputs {
			return errors.New("unordered output missing results")
		}
	}

	// Invariant: conservative lending — a value is submitted to one worker
	// at a time. A worker may crash after computing a result but before
	// that result is recorded, in which case the value is legitimately
	// re-lent, so a value can be processed up to 1 + crashed times — but
	// never more, and every value is processed at least once.
	mu.Lock()
	defer mu.Unlock()
	for v := 1; v <= nInputs; v++ {
		n := processed[v]
		if n < 1 {
			return errors.New("value never processed")
		}
		if n > 1+crashed {
			return errors.New("value processed more times than crashes allow")
		}
	}
	for v := range processed {
		if v < 1 || v > nInputs {
			return errors.New("processed a value outside the input range")
		}
	}

	// Invariant: the input side respected the pull-stream protocol.
	if vs := check.Violations(); len(vs) > 0 {
		return errors.New("input protocol violation: " + vs[0].String())
	}
	if vs := outCheck.Violations(); len(vs) > 0 {
		return errors.New("output protocol violation: " + vs[0].String())
	}
	return nil
}

func TestStreamLenderRandomExecutions(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 30
	}
	for seed := int64(0); seed < int64(n); seed++ {
		if err := randomExecution(seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestStreamLenderRandomExecutionsParallel(t *testing.T) {
	// The paper scaled this testing strategy up through Pando itself; here
	// we at least parallelize across goroutines.
	if testing.Short() {
		t.Skip("short mode")
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for seed := int64(1000); seed < 1064; seed++ {
		seed := seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := randomExecution(seed); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
