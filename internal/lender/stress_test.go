package lender

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pando/internal/pullstream"
)

// TestManySubStreams exercises the "unbounded" property at stress scale:
// 60 concurrent sub-streams over 2000 inputs, ordered output.
func TestManySubStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	l := New[int, int]()
	out := l.Bind(pullstream.Count(2000))
	outc, errc := collectAsync(out)
	for i := 0; i < 60; i++ {
		runWorker(t, l, func(v int) int { return v }, 0, -1)
	}
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 2000 {
		t.Fatalf("got %d results", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	_, _, subs, _ := l.Stats()
	if subs != 60 {
		t.Fatalf("subs = %d", subs)
	}
}

// TestCrashWaves alternates waves of joining and crashing workers.
func TestCrashWaves(t *testing.T) {
	l := New[int, int]()
	out := l.Bind(pullstream.Count(400))
	outc, errc := collectAsync(out)

	runWorker(t, l, func(v int) int { return v }, 0, -1) // anchor
	done := make(chan struct{})
	go func() {
		defer close(done)
		for wave := 0; wave < 5; wave++ {
			var wgs []*sync.WaitGroup
			for i := 0; i < 4; i++ {
				wgs = append(wgs, runWorker(t, l, func(v int) int { return v }, 200*time.Microsecond, 3))
			}
			for _, wg := range wgs {
				wg.Wait()
			}
		}
	}()

	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	<-done
	if len(got) != 400 {
		t.Fatalf("got %d results", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

// TestUnorderedCrashRecovery checks fault tolerance in unordered mode:
// every input is answered exactly once despite crashes.
func TestUnorderedCrashRecovery(t *testing.T) {
	l := New[int, int](Unordered())
	out := l.Bind(pullstream.Count(150))
	outc, errc := collectAsync(out)
	for i := 0; i < 4; i++ {
		runWorker(t, l, func(v int) int { return v }, 0, 5)
	}
	runWorker(t, l, func(v int) int { return v }, 0, -1)
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate result %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 150 {
		t.Fatalf("got %d distinct results, want 150", len(seen))
	}
}

// TestAbortWhileWaitersParked verifies a downstream abort releases
// sub-streams parked in waitOnOthers promptly.
func TestAbortWhileWaitersParked(t *testing.T) {
	l := New[int, int]()
	out := l.Bind(pullstream.Count(1))

	// A takes the only value and sits on it.
	_, dA := l.LendStream()
	gotA := make(chan struct{})
	dA.Source(nil, func(end error, v int) { close(gotA) })
	<-gotA

	// B and C park in waitOnOthers.
	answered := make(chan error, 2)
	for i := 0; i < 2; i++ {
		_, d := l.LendStream()
		d.Source(nil, func(end error, v int) { answered <- end })
	}

	// Downstream aborts the whole pipeline.
	aborted := make(chan struct{})
	out(pullstream.ErrAborted, func(end error, v int) { close(aborted) })
	select {
	case <-aborted:
	case <-time.After(2 * time.Second):
		t.Fatal("abort never acknowledged")
	}
	for i := 0; i < 2; i++ {
		select {
		case end := <-answered:
			if end == nil {
				t.Fatal("parked waiter received a value after abort")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("parked waiter never released after abort")
		}
	}
}

// TestCrashDuringInputRead crashes the asking sub-stream while the input
// read is still in flight: the value must land in the failed queue and be
// served to the next asker (the conservative property's corner case).
func TestCrashDuringInputRead(t *testing.T) {
	release := make(chan struct{})
	slowInput := func(abort error, cb pullstream.Callback[int]) {
		if abort != nil {
			cb(abort, 0)
			return
		}
		go func() {
			<-release
			cb(nil, 42)
		}()
	}
	l := New[int, int]()
	_ = l.Bind(slowInput)

	// A asks (read starts, blocked), then crashes before it answers.
	_, dA := l.LendStream()
	aAnswered := make(chan error, 1)
	dA.Source(nil, func(end error, v int) { aAnswered <- end })
	time.Sleep(10 * time.Millisecond)
	dA.Source(errors.New("crash"), func(error, int) {})

	// The read completes after the crash; the value must not be lost.
	close(release)

	_, dB := l.LendStream()
	got := make(chan int, 1)
	dB.Source(nil, func(end error, v int) {
		if end == nil {
			got <- v
		}
	})
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("B got %d, want 42", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("the in-flight value was lost when its asker crashed")
	}
}

// TestConcurrentLendStream races many LendStream calls against inputs.
func TestConcurrentLendStream(t *testing.T) {
	l := New[int, int]()
	out := l.Bind(pullstream.Count(200))
	outc, errc := collectAsync(out)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runWorker(t, l, func(v int) int { return v }, 0, -1)
		}()
	}
	wg.Wait()
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("got %d results", len(got))
	}
}

// TestDoubleAskAnsweredSafely: a sub-stream issuing a second ask before
// the first is answered (a protocol violation by the caller) must not
// corrupt the lender.
func TestDoubleAskAnsweredSafely(t *testing.T) {
	block := make(chan struct{})
	slowInput := func(abort error, cb pullstream.Callback[int]) {
		if abort != nil {
			cb(abort, 0)
			return
		}
		go func() {
			<-block
			cb(pullstream.ErrDone, 0)
		}()
	}
	l := New[int, int]()
	_ = l.Bind(slowInput)
	_, d := l.LendStream()
	first := make(chan error, 1)
	second := make(chan error, 1)
	d.Source(nil, func(end error, v int) { first <- end })
	d.Source(nil, func(end error, v int) { second <- end }) // violation
	// The violating ask is answered done immediately rather than queued.
	select {
	case end := <-second:
		if end == nil {
			t.Fatal("violating ask received a value")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("violating ask never answered")
	}
	close(block)
	<-first
}
