// Package lender implements StreamLender, the novel abstraction at the
// core of Pando (paper §3, Algorithm 1): it splits an input stream into
// multiple concurrent sub-streams — one per participating worker — and
// merges the results back into a single output stream.
//
// StreamLender encapsulates the streaming, ordered, dynamic, unbounded,
// lazy, fault-tolerant, conservative and adaptive properties of Pando's
// programming model (paper Table 1) independently of any communication
// protocol or input-output library:
//
//   - Streaming/ordered: the output delivers f(x_i) in the order of the
//     corresponding inputs x_i (an unordered mode is available for
//     applications such as crypto-currency mining, paper §4.2).
//   - Dynamic/unbounded: sub-streams are created as workers join, at any
//     time, with no a priori limit.
//   - Lazy: a new input is read only when a sub-stream asks for a value
//     and no failed value is waiting to be re-lent.
//   - Fault-tolerant: when a sub-stream terminates while still holding
//     lent values, those values are moved to the failed queue and re-lent,
//     oldest first, to the next asking sub-stream.
//   - Conservative: a value is lent to at most one sub-stream at a time.
//   - Adaptive: faster workers ask more often and therefore receive more
//     values.
package lender

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pando/internal/pullstream"
)

// ErrLenderAborted is the end signal delivered to sub-streams when the
// downstream consumer of the lender's output aborts the whole pipeline.
var ErrLenderAborted = errors.New("lender: aborted by downstream")

// lent is a value borrowed from the input together with its stream index.
type lent[I any] struct {
	idx int
	v   I
}

// waiter is a parked sub-stream ask: a request that could not be answered
// immediately (Algorithm 1's waitOnOthers) and will be answered when a
// failed value becomes available, a new input can be read, or the stream
// completes.
type waiter[I any] struct {
	sub *SubStream
	cb  pullstream.Callback[I]
}

// outAsk is a parked ask on the lender's merged output.
type outAsk[O any] struct {
	cb pullstream.Callback[O]
}

// Lender is the StreamLender state machine. Create one with New, bind the
// input with Bind (or use Through), and create one sub-stream per worker
// with LendStream.
type Lender[I, O any] struct {
	ordered bool

	mu      sync.Mutex
	input   pullstream.Source[I]
	reading bool  // an input read is in flight
	inEnd   error // non-nil once the input terminated (ErrDone or failure)
	nextIdx int   // index assigned to the next value read

	// done marks indices restored from a checkpoint (see Restore): their
	// values are consumed from the input but never lent, and their results
	// are replayed to the output from the reorder buffer.
	done map[int]bool
	// onResult, when set, is told each newly accepted (index, result)
	// pair — after speculation dedup, so each index fires at most once.
	// It is the journaling export hook; replayed (restored) results do
	// not fire it.
	onResult func(idx int, v O)

	failed []lent[I] // values to re-lend, oldest first

	// Ordered mode: reorder buffer keyed by input index.
	results map[int]O
	nextOut int
	// Unordered mode: results ready to emit, arrival order.
	ready []O

	outstanding int // value copies currently lent to live sub-streams
	pending     int // distinct values read from the input but not yet answered

	// spec tracks values with more than one copy in flight, created by
	// Speculate: the first result for the value wins and later copies'
	// results are discarded on arrival.
	spec map[int]*specState

	// verify, when set (SetVerify), replaces the single-copy lending
	// discipline with k-replication and vote-gated completion; votes is
	// the per-index vote state. See verify.go.
	verify *VerifyConfig[I, O]
	votes  map[int]*voteState[I, O]

	// Memory bounding (SetHighWater/SetSpill). highWater caps how many
	// buffered results the lender holds on the heap; beyond it, ordered
	// results far ahead of the output cursor move to the spill store when
	// one is attached, and fresh input reads pause otherwise (output
	// backpressure propagating all the way to the input source).
	highWater   int
	spill       SpillStore
	spillEnc    func(O) ([]byte, error)
	spillDec    func([]byte) (O, error)
	spilled     map[int]struct{} // indices parked in the spill store
	spillBroken bool             // a Put failed; stop spilling, keep correctness

	waiters []waiter[I] // parked sub-stream asks, FIFO
	out     *outAsk[O]  // parked output ask (at most one)

	aborted error // set when the output consumer aborts
	outDone bool  // the output already delivered its end signal

	nextSubID int
	subsEnded int
	subsMade  int

	// state below is only written under mu; subStream structs hold
	// per-sub-stream queues and are also guarded by mu.
}

// Option configures a Lender.
type Option func(*config)

type config struct {
	ordered bool
}

// Unordered makes the lender emit results in completion order instead of
// input order. The paper (§4.2) notes this relaxation lets a valid nonce
// be reported as soon as possible in synchronous parallel search.
func Unordered() Option {
	return func(c *config) { c.ordered = false }
}

// New returns a StreamLender for inputs of type I and results of type O.
// By default results are emitted in input order.
func New[I, O any](opts ...Option) *Lender[I, O] {
	cfg := config{ordered: true}
	for _, o := range opts {
		o(&cfg)
	}
	return &Lender[I, O]{
		ordered: cfg.ordered,
		results: make(map[int]O),
	}
}

// SpillStore is the overflow segment the lender parks far-ahead results
// in when the reorder buffer exceeds the high-water mark. It is the
// byte-level subset of journal.SpillStore the lender needs; payloads are
// produced and consumed through the encode/decode pair given to SetSpill.
type SpillStore interface {
	Put(idx int, payload []byte) error
	Load(idx int) ([]byte, error)
	Forget(idx int)
}

// SetHighWater bounds the lender's buffered-result memory at hw results.
// In ordered mode the bound applies to the reorder buffer: past it,
// results whose index is farthest ahead of the output cursor spill to the
// attached store (SetSpill), or — with no store — fresh input reads pause
// until the output consumer catches up. In unordered mode there is
// nothing to reorder, so the bound is pure backpressure on the ready
// queue. hw <= 0 (the default) disables the bound. Call before Bind.
func (l *Lender[I, O]) SetHighWater(hw int) {
	l.mu.Lock()
	l.highWater = hw
	l.mu.Unlock()
}

// SetSpill attaches an overflow store for ordered results beyond the
// high-water mark, with the encode/decode pair that maps results to
// stored payloads. Spilled results return to the heap exactly when the
// output stream reaches their index; a store that fails to load back
// fails the output stream (the payload is gone, exactly-once emission
// cannot be preserved by recomputing silently). Call before Bind.
func (l *Lender[I, O]) SetSpill(store SpillStore, enc func(O) ([]byte, error), dec func([]byte) (O, error)) {
	l.mu.Lock()
	l.spill = store
	l.spillEnc = enc
	l.spillDec = dec
	if l.spilled == nil {
		l.spilled = make(map[int]struct{})
	}
	l.mu.Unlock()
}

// MemStats reports the reorder state: results buffered on the heap and
// results parked in the spill store. The long-stream memory-bound tests
// watch these.
func (l *Lender[I, O]) MemStats() (heap, spilled int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ordered {
		return len(l.results), len(l.spilled)
	}
	return len(l.ready), 0
}

// saturatedLocked reports whether fresh input reads should pause: the
// buffered-result bound is hit and no spill store absorbs the overflow.
// Re-lending from the failed queue is never gated — a gated re-lend could
// deadlock the stream behind the very straggler whose value must be
// re-lent to make the output advance.
func (l *Lender[I, O]) saturatedLocked() bool {
	if l.highWater <= 0 {
		return false
	}
	if !l.ordered {
		return len(l.ready) >= l.highWater
	}
	if l.spill != nil && !l.spillBroken {
		return false // the spill store bounds the heap instead
	}
	return len(l.results) >= l.highWater
}

// maybeSpillLocked moves the farthest-ahead buffered results to the spill
// store until the heap is back under the high-water mark. The results
// nearest the output cursor stay in memory, so the common case — the
// consumer draining in order — never touches disk. A failed Put turns
// spilling off and degrades to read gating; the result stays on the heap
// and correctness is unaffected.
func (l *Lender[I, O]) maybeSpillLocked() {
	if l.spill == nil || l.spillBroken || l.highWater <= 0 || !l.ordered {
		return
	}
	for len(l.results) > l.highWater {
		max := -1
		for idx := range l.results {
			if idx > max {
				max = idx
			}
		}
		payload, err := l.spillEnc(l.results[max])
		if err == nil {
			err = l.spill.Put(max, payload)
		}
		if err != nil {
			l.spillBroken = true
			return
		}
		delete(l.results, max)
		l.spilled[max] = struct{}{}
	}
}

// Restore marks completed indices recovered from a durable checkpoint:
// their values are skipped at the input (consumed, never lent) and their
// results are replayed to the output exactly once, in index order,
// interleaved with fresh results exactly as an uninterrupted run would
// have emitted them. Call it before Bind; a restored index never reaches
// a sub-stream, so no volunteer redoes its work.
func (l *Lender[I, O]) Restore(completed map[int]O) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done == nil {
		l.done = make(map[int]bool, len(completed))
	}
	if l.ordered {
		for idx, v := range completed {
			l.done[idx] = true
			l.results[idx] = v
		}
		// A large restored set is exactly the far-ahead overflow the
		// spill store exists for: page it out before replay begins.
		l.maybeSpillLocked()
		return
	}
	// Unordered mode has no reorder buffer: replay in index order first,
	// then fresh results in completion order.
	idxs := make([]int, 0, len(completed))
	for idx := range completed {
		l.done[idx] = true
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		l.ready = append(l.ready, completed[idx])
	}
}

// OnResult registers the completed-set export hook: fn is invoked, outside
// the lender's lock, for each accepted (index, result) pair — after
// speculation dedup and crash re-lending, so an index fires at most once
// per run. Restored indices (Restore) do not fire; they were exported by
// the run that computed them. Call it before Bind.
func (l *Lender[I, O]) OnResult(fn func(idx int, v O)) {
	l.mu.Lock()
	l.onResult = fn
	l.mu.Unlock()
}

// Abort fails the merged output from the producer's side: the parked
// output ask (and every future one) answers err immediately. The shard
// layer uses it on a killed member — its fleet is severed, so the
// results its output is waiting on will never arrive and the consumer's
// pull would otherwise park forever.
func (l *Lender[I, O]) Abort(err error) {
	l.mu.Lock()
	if l.aborted == nil {
		l.aborted = err
	}
	l.outDone = true
	var cbs []func()
	if l.out != nil {
		cb := l.out.cb
		l.out = nil
		cbs = append(cbs, func() {
			var zero O
			cb(err, zero)
		})
	}
	l.mu.Unlock()
	run(cbs)
}

// Bind attaches the input source and returns the merged output source,
// mirroring pull(input, lender, output) in the paper's Figure 9.
func (l *Lender[I, O]) Bind(src pullstream.Source[I]) pullstream.Source[O] {
	l.mu.Lock()
	l.input = src
	actions := l.serviceLocked()
	l.mu.Unlock()
	run(actions)
	return l.outputSource
}

// Through returns the lender as a pull-stream Through.
func (l *Lender[I, O]) Through() pullstream.Through[I, O] {
	return func(src pullstream.Source[I]) pullstream.Source[O] {
		return l.Bind(src)
	}
}

// SubStream is one lending sub-stream (paper Figure 8): its Source
// produces the values lent to one worker and its Sink consumes that
// worker's results. Obtain one with LendStream.
type SubStream struct {
	id   int
	name string // worker identity for vote accounting (LendStreamNamed)
	dead bool
	// outstanding holds the values lent through this sub-stream that have
	// not been answered yet, oldest first. Results are matched to values
	// by arrival order, as in pull-lend-stream.
	outstanding []lentAny
	parked      bool // this sub-stream has an ask in l.waiters
}

// lentAny erases the input type so SubStream need not be generic; the
// Lender's methods are the only accessors and they know the real type.
type lentAny struct {
	idx int
	v   any
	at  time.Time // when the value was handed to this sub-stream
}

// specState is the bookkeeping of one speculatively duplicated value.
type specState struct {
	copies   int        // copies in flight (sub-stream queues + failed queue)
	answered bool       // a result for this value was already delivered
	origin   *SubStream // holder of the original copy at duplication time
}

// ID returns a diagnostic identifier unique within this lender.
func (s *SubStream) ID() int { return s.id }

// Name returns the worker identity the sub-stream was created under.
func (s *SubStream) Name() string { return s.name }

// LendStream creates a new sub-stream and returns its duplex endpoints.
// It may be called at any time, including after the input ended: the new
// sub-stream will then either receive failed values or be told the stream
// is done. This is the "dynamic" and "unbounded" property of the model.
func (l *Lender[I, O]) LendStream() (sub *SubStream, d pullstream.Duplex[O, I]) {
	return l.LendStreamNamed("")
}

// LendStreamNamed is LendStream under a worker identity. The name is
// what vote accounting keys ballots by: several sub-streams created
// under one name (a multi-core device, or a worker re-leased after a
// reconnect) are one voice in any quorum. An empty name gets a
// per-sub-stream placeholder, so anonymous sub-streams never alias.
func (l *Lender[I, O]) LendStreamNamed(name string) (sub *SubStream, d pullstream.Duplex[O, I]) {
	l.mu.Lock()
	sub = &SubStream{id: l.nextSubID, name: name}
	if name == "" {
		sub.name = fmt.Sprintf("#%d", sub.id)
	}
	l.nextSubID++
	l.subsMade++
	l.mu.Unlock()
	d = pullstream.Duplex[O, I]{
		Source: func(abort error, cb pullstream.Callback[I]) {
			l.subAsk(sub, abort, cb)
		},
		Sink: func(src pullstream.Source[O]) {
			go l.consumeResults(sub, src)
		},
	}
	return sub, d
}

// Stats reports diagnostic counters.
func (l *Lender[I, O]) Stats() (lentNow, failedQueue, subStreams, endedSubStreams int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.outstanding, len(l.failed), l.subsMade, l.subsEnded
}

// Backlog reports the lender's appetite for workers: how many value
// copies are currently lent, how many failed values await re-lending,
// and whether the stream is complete (input ended and every value
// answered — nothing left for any worker, current or future). It is the
// demand signal a shared fleet weighs jobs by.
func (l *Lender[I, O]) Backlog() (outstanding, failed int, complete bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	complete = l.aborted != nil || (l.inEnd != nil && l.pending == 0)
	return l.outstanding, len(l.failed), complete
}

// SubInfo reports how many values are currently lent through s and the
// age of the oldest one — the straggler signal the scheduler watches.
func (l *Lender[I, O]) SubInfo(s *SubStream) (outstanding int, oldest time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(s.outstanding) == 0 {
		return 0, 0
	}
	return len(s.outstanding), time.Since(s.outstanding[0].at)
}

// IdleAtTail reports how many sub-stream asks are parked after the input
// ended — idle workers near the stream's tail, the scheduler's signal
// that spare capacity exists for speculative re-dispatch. While the
// input is still producing it returns 0: asks also park briefly during
// ordinary input reads, and those waiters are not idle capacity.
func (l *Lender[I, O]) IdleAtTail() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inEnd == nil {
		return 0
	}
	return len(l.waiters)
}

// Speculate duplicates up to max of sub-stream s's oldest outstanding
// values into the failed queue so they are re-lent to other sub-streams.
// The original stays lent to s: whichever copy answers first delivers the
// result and the loser's result is discarded on arrival. This is the
// at-least-once re-dispatch behind the scheduler's straggler handling; a
// value is duplicated at most once at a time, and a duplicate is never
// handed back to the sub-stream holding the original. It returns how many
// values were duplicated.
func (l *Lender[I, O]) Speculate(s *SubStream, max int) int {
	l.mu.Lock()
	n := 0
	if !s.dead && l.aborted == nil && l.verify != nil {
		// Under verification a speculative duplicate is one more
		// replica: name-keyed ballots and the participant check make
		// it structurally impossible for the duplicate to count as an
		// independent vote.
		n = l.voteSpeculateLocked(s, max)
	} else if !s.dead && l.aborted == nil {
		for _, it := range s.outstanding {
			if n >= max {
				break
			}
			if _, dup := l.spec[it.idx]; dup {
				continue
			}
			if l.spec == nil {
				l.spec = make(map[int]*specState)
			}
			l.spec[it.idx] = &specState{copies: 2, origin: s}
			l.failed = append(l.failed, lent[I]{idx: it.idx, v: it.v.(I)})
			n++
		}
	}
	var actions []func()
	if n > 0 {
		actions = l.serviceLocked()
	}
	l.mu.Unlock()
	run(actions)
	return n
}

// run executes deferred actions outside the lender mutex.
func run(actions []func()) {
	for _, a := range actions {
		a()
	}
}

// subAsk answers one request on a sub-stream source, implementing
// Algorithm 1 of the paper.
func (l *Lender[I, O]) subAsk(s *SubStream, abort error, cb pullstream.Callback[I]) {
	var zero I
	if abort != nil {
		// The worker side aborted its input: treat as sub-stream
		// termination so outstanding values are re-lent.
		l.mu.Lock()
		actions := l.endSubLocked(s)
		l.mu.Unlock()
		run(actions)
		cb(abort, zero)
		return
	}

	l.mu.Lock()
	if s.dead || l.aborted != nil {
		l.mu.Unlock()
		cb(pullstream.ErrDone, zero)
		return
	}
	if s.parked {
		// Protocol violation by the caller (two concurrent asks); answer
		// done rather than corrupting state.
		l.mu.Unlock()
		cb(pullstream.ErrDone, zero)
		return
	}
	l.waiters = append(l.waiters, waiter[I]{sub: s, cb: cb})
	s.parked = true
	actions := l.serviceLocked()
	l.mu.Unlock()
	run(actions)
}

// consumeResults drains a sub-stream's result source, feeding results into
// the merge machinery and signalling termination (crash-stop or graceful)
// when the source ends.
func (l *Lender[I, O]) consumeResults(s *SubStream, src pullstream.Source[O]) {
	err := pullstream.Drain(src, func(v O) error {
		l.mu.Lock()
		actions := l.resultLocked(s, v)
		l.mu.Unlock()
		run(actions)
		return nil
	})
	_ = err // both graceful end and failure re-lend outstanding values
	l.mu.Lock()
	actions := l.endSubLocked(s)
	l.mu.Unlock()
	run(actions)
}

// resultLocked records one result arriving on sub-stream s.
func (l *Lender[I, O]) resultLocked(s *SubStream, v O) []func() {
	if s.dead || len(s.outstanding) == 0 {
		// Stale or unmatched result; drop it (the value it would answer
		// has already been re-lent or never existed).
		return nil
	}
	item := s.outstanding[0]
	s.outstanding = s.outstanding[1:]
	l.outstanding--
	if l.verify != nil {
		// Verification gates emission behind the quorum; the vote
		// machinery owns pending/emission from here.
		return l.voteResultLocked(s, item, v)
	}
	if st, ok := l.spec[item.idx]; ok {
		st.copies--
		if st.copies == 0 {
			delete(l.spec, item.idx)
		}
		if st.answered {
			// Losing duplicate: the value was already answered by the
			// faster copy; discard this result.
			return l.serviceLocked()
		}
		st.answered = true
	}
	l.pending--
	if l.ordered {
		l.results[item.idx] = v
		l.maybeSpillLocked()
	} else {
		l.ready = append(l.ready, v)
	}
	var actions []func()
	if l.onResult != nil {
		// Export the completion before the service step's actions so a
		// journaling hook records a result no later than its emission.
		fn, idx := l.onResult, item.idx
		actions = append(actions, func() { fn(idx, v) })
	}
	return append(actions, l.serviceLocked()...)
}

// endSubLocked terminates sub-stream s: outstanding values move to the
// failed queue (oldest first) for re-lending, and any parked ask from s is
// answered done.
func (l *Lender[I, O]) endSubLocked(s *SubStream) []func() {
	if s.dead {
		return nil
	}
	s.dead = true
	l.subsEnded++
	for _, it := range s.outstanding {
		l.outstanding--
		if l.verify != nil {
			l.voteEndCopyLocked(s, it)
			continue
		}
		if st, ok := l.spec[it.idx]; ok {
			if st.answered {
				// A duplicate already answered this value; the dead copy
				// need not be re-lent.
				st.copies--
				if st.copies == 0 {
					delete(l.spec, it.idx)
				}
				continue
			}
			if l.failedHasLocked(it.idx) {
				// The value's other copy already waits in the failed
				// queue — its holder died too (simultaneous failures near
				// the tail). Collapse to a single queued copy so each
				// distinct value is re-lent exactly once.
				st.copies--
				if st.copies == 0 {
					delete(l.spec, it.idx)
				}
				continue
			}
		}
		l.failed = append(l.failed, lent[I]{idx: it.idx, v: it.v.(I)})
	}
	s.outstanding = nil

	var actions []func()
	if s.parked {
		// Remove s's parked ask and answer it done.
		kept := l.waiters[:0]
		for _, w := range l.waiters {
			if w.sub == s {
				cb := w.cb
				actions = append(actions, func() {
					var zero I
					cb(pullstream.ErrDone, zero)
				})
				continue
			}
			kept = append(kept, w)
		}
		l.waiters = kept
		s.parked = false
	}
	return append(actions, l.serviceLocked()...)
}

// failedHasLocked reports whether an idx is already queued for re-lending.
// Caller holds mu. The scan is linear, but it only runs for speculatively
// duplicated values on sub-stream death, and the failed queue drains to
// asking workers ahead of fresh input, so it stays short.
func (l *Lender[I, O]) failedHasLocked(idx int) bool {
	for _, f := range l.failed {
		if f.idx == idx {
			return true
		}
	}
	return false
}

// serviceLocked advances the state machine: it answers parked sub-stream
// asks from the failed queue, starts an input read when one is needed,
// answers completion, and serves the parked output ask. It returns the
// callback invocations to run outside the lock.
func (l *Lender[I, O]) serviceLocked() []func() {
	var actions []func()

	if l.aborted != nil {
		for _, w := range l.waiters {
			cb := w.cb
			w.sub.parked = false
			actions = append(actions, func() {
				var zero I
				cb(pullstream.ErrDone, zero)
			})
		}
		l.waiters = nil
		return actions
	}

	// Answer waiters from the failed queue first (Algorithm 1,
	// answerWithFailedValue: oldest failed value first). Speculative
	// copies need two extra checks: a copy whose value was already
	// answered by the winning duplicate is discarded instead of re-lent,
	// and a duplicate is never handed back to the sub-stream that
	// already holds the original.
	fi := 0
	for fi < len(l.failed) && len(l.waiters) > 0 {
		if l.verify != nil {
			consumed, acts := l.voteRelendLocked(fi)
			actions = append(actions, acts...)
			if !consumed {
				fi++
			}
			continue
		}
		it := l.failed[fi]
		st := l.spec[it.idx]
		if st != nil && st.answered {
			st.copies--
			if st.copies == 0 {
				delete(l.spec, it.idx)
			}
			l.failed = append(l.failed[:fi], l.failed[fi+1:]...)
			continue
		}
		wi := 0
		if st != nil {
			wi = -1
			for j, w := range l.waiters {
				if w.sub != st.origin {
					wi = j
					break
				}
			}
			if wi < 0 {
				// Only the origin is asking; leave its duplicate queued
				// for a different sub-stream.
				fi++
				continue
			}
		}
		w := l.waiters[wi]
		l.waiters = append(l.waiters[:wi], l.waiters[wi+1:]...)
		l.failed = append(l.failed[:fi], l.failed[fi+1:]...)
		w.sub.parked = false
		w.sub.outstanding = append(w.sub.outstanding, lentAny{idx: it.idx, v: it.v, at: time.Now()})
		l.outstanding++
		cb, v := w.cb, it.v
		actions = append(actions, func() { cb(nil, v) })
	}

	if len(l.waiters) > 0 {
		if l.inEnd == nil {
			// Lazily read a new value (Algorithm 1 line 6), one read at a
			// time, if the input is bound. The read runs on its own
			// goroutine because input sources may block until a value is
			// available (e.g. channel-backed sources), and the goroutine
			// that triggered this service step may be needed elsewhere
			// in the meantime (it might even be the one that will
			// produce the input). Fresh reads pause while the buffered
			// results sit at the high-water mark (saturatedLocked) — the
			// backpressure that keeps a slow output consumer from turning
			// the reorder buffer into O(stream) state. Re-lending above
			// is never gated, so stragglers still resolve.
			if !l.reading && l.input != nil && !l.saturatedLocked() {
				l.reading = true
				actions = append(actions, func() { go l.input(nil, l.inputAnswer) })
			}
		} else if l.pending == 0 {
			// Every value the input produced has been answered (copies
			// still in flight at stragglers are zombies whose results
			// will be discarded); tell waiters we are done.
			for _, w := range l.waiters {
				cb := w.cb
				w.sub.parked = false
				actions = append(actions, func() {
					var zero I
					cb(pullstream.ErrDone, zero)
				})
			}
			l.waiters = nil
		}
		// Otherwise: waitOnOthers — keep them parked until a failure or
		// completion.
	}

	// Serve the output.
	actions = append(actions, l.serveOutputLocked()...)
	return actions
}

// inputAnswer receives one answer from the input source.
func (l *Lender[I, O]) inputAnswer(end error, v I) {
	l.mu.Lock()
	l.reading = false
	var actions []func()
	switch {
	case end != nil:
		l.inEnd = end
	case l.aborted != nil:
		// Value arrived after downstream aborted; drop it and forward the
		// abort to the input so it can release its resources.
		l.reading = true
		abort, input := l.aborted, l.input
		actions = append(actions, func() {
			input(abort, func(error, I) {
				l.mu.Lock()
				l.reading = false
				l.inEnd = abort
				l.mu.Unlock()
			})
		})
	case l.done[l.nextIdx]:
		// Checkpoint-restored value: consume it from the input but never
		// lend it — its result is already queued for replay. The asker
		// stays parked; serviceLocked starts the next read.
		l.nextIdx++
	case len(l.waiters) > 0:
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		w.sub.parked = false
		idx := l.nextIdx
		l.nextIdx++
		l.pending++
		w.sub.outstanding = append(w.sub.outstanding, lentAny{idx: idx, v: v, at: time.Now()})
		l.outstanding++
		if l.verify != nil {
			l.voteLendFreshLocked(w.sub, idx, v)
		}
		cb := w.cb
		actions = append(actions, func() { cb(nil, v) })
	default:
		// The asker died while the read was in flight; keep the value so
		// it is not lost (conservative property: it will be lent to the
		// next asker).
		idx := l.nextIdx
		l.nextIdx++
		l.pending++
		l.failed = append(l.failed, lent[I]{idx: idx, v: v})
		if l.verify != nil {
			// Track the queued copy; replicas fan out at first lend.
			l.voteEnsureOpenLocked(idx, v).queued++
		}
	}
	actions = append(actions, l.serviceLocked()...)
	l.mu.Unlock()
	run(actions)
}

// completeLocked reports whether every value read from the input has been
// answered and emitted. Unanswered values may sit in sub-stream queues or
// the failed queue; zombie copies of already-answered values do not block
// completion — that is what bounds tail latency under speculation.
func (l *Lender[I, O]) completeLocked() bool {
	if l.inEnd == nil || l.pending > 0 {
		return false
	}
	if l.ordered {
		return len(l.results) == 0 && len(l.spilled) == 0
	}
	return len(l.ready) == 0
}

// serveOutputLocked answers the parked output ask if possible.
func (l *Lender[I, O]) serveOutputLocked() []func() {
	if l.out == nil || l.outDone {
		return nil
	}
	cb := l.out.cb
	if l.ordered {
		if _, ok := l.results[l.nextOut]; !ok {
			if _, sp := l.spilled[l.nextOut]; sp {
				// The next result was paged out; bring it back. A store
				// that cannot return the payload fails the stream —
				// the result is gone and exactly-once ordered emission
				// cannot be silently preserved.
				v, err := l.unspillLocked(l.nextOut)
				if err != nil {
					l.out = nil
					l.outDone = true
					return []func(){func() {
						var zero O
						cb(err, zero)
					}}
				}
				l.results[l.nextOut] = v
			}
		}
		if _, ok := l.results[l.nextOut]; !ok && l.inEnd != nil && l.pending == 0 && (len(l.results) > 0 || len(l.spilled) > 0) {
			// Every in-flight value is answered yet the next slot is
			// empty: the remaining results are checkpoint-restored
			// leftovers past the end of a (shorter) resumed input. Skip
			// to the smallest remaining index so the stream terminates
			// instead of waiting for a value that will never be read.
			min := -1
			for idx := range l.results {
				if min < 0 || idx < min {
					min = idx
				}
			}
			for idx := range l.spilled {
				if min < 0 || idx < min {
					min = idx
				}
			}
			l.nextOut = min
			if _, sp := l.spilled[l.nextOut]; sp {
				v, err := l.unspillLocked(l.nextOut)
				if err != nil {
					l.out = nil
					l.outDone = true
					return []func(){func() {
						var zero O
						cb(err, zero)
					}}
				}
				l.results[l.nextOut] = v
			}
		}
		if v, ok := l.results[l.nextOut]; ok {
			delete(l.results, l.nextOut)
			l.nextOut++
			l.out = nil
			return []func(){func() { cb(nil, v) }}
		}
	} else if len(l.ready) > 0 {
		v := l.ready[0]
		l.ready = l.ready[1:]
		l.out = nil
		return []func(){func() { cb(nil, v) }}
	}
	if l.completeLocked() {
		l.out = nil
		l.outDone = true
		end := l.inEnd
		if pullstream.IsNormalEnd(end) {
			end = pullstream.ErrDone
		}
		return []func(){func() {
			var zero O
			cb(end, zero)
		}}
	}
	return nil
}

// outputSource is the merged output of the lender.
func (l *Lender[I, O]) outputSource(abort error, cb pullstream.Callback[O]) {
	var zero O
	if abort != nil {
		l.mu.Lock()
		l.aborted = abort
		l.outDone = true
		// Only abort the input right away if no read is in flight: the
		// protocol allows one outstanding request at a time. If a read is
		// in flight, inputAnswer will deliver the abort when it returns.
		abortNow := l.input != nil && l.inEnd == nil && !l.reading
		if abortNow {
			l.reading = true
		}
		input := l.input
		actions := l.serviceLocked()
		l.mu.Unlock()
		run(actions)
		if abortNow {
			done := make(chan struct{})
			input(abort, func(error, I) { close(done) })
			<-done
			l.mu.Lock()
			l.reading = false
			l.inEnd = abort
			l.mu.Unlock()
		}
		cb(abort, zero)
		return
	}

	l.mu.Lock()
	if l.outDone {
		end := l.aborted
		if end == nil {
			end = l.inEnd
		}
		if end == nil || pullstream.IsNormalEnd(end) {
			end = pullstream.ErrDone
		}
		l.mu.Unlock()
		cb(end, zero)
		return
	}
	if l.out != nil {
		// Concurrent output asks violate the protocol.
		l.mu.Unlock()
		cb(errors.New("lender: concurrent output requests"), zero)
		return
	}
	l.out = &outAsk[O]{cb: cb}
	// A full service step, not just output delivery: emitting a result
	// shrinks the buffered window, which is what lets saturation-gated
	// input reads resume — the release edge of the backpressure loop.
	actions := l.serviceLocked()
	l.mu.Unlock()
	run(actions)
}

// unspillLocked loads one spilled result back from the store. The caller
// holds mu; the load is a CRC-checked page-cache read.
func (l *Lender[I, O]) unspillLocked(idx int) (O, error) {
	var zero O
	payload, err := l.spill.Load(idx)
	if err != nil {
		return zero, err
	}
	v, err := l.spillDec(payload)
	if err != nil {
		return zero, err
	}
	delete(l.spilled, idx)
	l.spill.Forget(idx)
	return v, nil
}
