package lender

import (
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"pando/internal/pullstream"
	"pando/internal/verify"
)

func intDigest(v int) (verify.Digest, error) {
	return verify.DigestOf([]byte(strconv.Itoa(v))), nil
}

// verdictLog collects OnVerdict/OnAccept callbacks thread-safely.
type verdictLog struct {
	mu          sync.Mutex
	verdicts    map[string][]bool // worker -> agreed sequence
	acceptances []verify.Acceptance
}

func newVerdictLog() *verdictLog {
	return &verdictLog{verdicts: make(map[string][]bool)}
}

func (vl *verdictLog) verdict(worker string, idx int, agreed bool) {
	vl.mu.Lock()
	vl.verdicts[worker] = append(vl.verdicts[worker], agreed)
	vl.mu.Unlock()
}

func (vl *verdictLog) accept(a verify.Acceptance) {
	vl.mu.Lock()
	vl.acceptances = append(vl.acceptances, a)
	vl.mu.Unlock()
}

func (vl *verdictLog) snapshot() (map[string][]bool, []verify.Acceptance) {
	vl.mu.Lock()
	defer vl.mu.Unlock()
	v := make(map[string][]bool, len(vl.verdicts))
	for k, s := range vl.verdicts {
		v[k] = append([]bool(nil), s...)
	}
	return v, append([]verify.Acceptance(nil), vl.acceptances...)
}

// expectNoEmission asserts nothing arrives on ch within a grace window —
// the "not yet emitted" half of vote-gated completion.
func expectNoEmission(t *testing.T, ch <-chan int, why string) {
	t.Helper()
	select {
	case v := <-ch:
		t.Fatalf("premature emission of %d: %s", v, why)
	case <-time.After(50 * time.Millisecond):
	}
}

func expectEmission(t *testing.T, ch <-chan int, want int) {
	t.Helper()
	select {
	case v := <-ch:
		if v != want {
			t.Fatalf("emitted %d, want %d", v, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("emission of %d never happened", want)
	}
}

// TestVerifyQuorumGatesEmission: with k=2/quorum=2 a fresh value fans
// out one replica, and neither the output nor the OnResult (journal)
// hook sees the result until both distinct workers returned
// byte-identical values.
func TestVerifyQuorumGatesEmission(t *testing.T) {
	l := New[int, int]()
	vl := newVerdictLog()
	l.SetVerify(&VerifyConfig[int, int]{
		K: 2, Quorum: 2,
		Digest:    intDigest,
		OnVerdict: vl.verdict,
		OnAccept:  vl.accept,
	})
	emitted := make(chan int, 4)
	l.OnResult(func(idx, v int) { emitted <- v })
	out := l.Bind(pullstream.Values(10))
	outc, errc := collectAsync(out)

	subA, dA := l.LendStreamNamed("wA")
	resultsA := make(chan int)
	dA.Sink(pullstream.FromChan(resultsA, nil))
	if v, err := ask(t, dA.Source); err != nil || v != 10 {
		t.Fatalf("wA value = %d, %v", v, err)
	}
	_ = subA

	// The replica fan-out queued a second copy; a distinct worker takes it.
	_, dB := l.LendStreamNamed("wB")
	resultsB := make(chan int)
	dB.Sink(pullstream.FromChan(resultsB, nil))
	if v, err := ask(t, dB.Source); err != nil || v != 10 {
		t.Fatalf("wB replica = %d, %v", v, err)
	}

	resultsA <- 100
	expectNoEmission(t, emitted, "one vote is not a quorum")
	resultsB <- 100
	expectEmission(t, emitted, 100)

	// One more ask discovers the input's end (reads are lazy) and is
	// answered done once every value is verified.
	if _, err := ask(t, dB.Source); !errors.Is(err, pullstream.ErrDone) {
		t.Fatalf("end ask = %v, want ErrDone", err)
	}
	close(resultsA)
	close(resultsB)
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("output = %v, want [100]", got)
	}
	verdicts, accs := vl.snapshot()
	if len(verdicts["wA"]) != 1 || !verdicts["wA"][0] || len(verdicts["wB"]) != 1 || !verdicts["wB"][0] {
		t.Fatalf("verdicts = %v, want one agreement each", verdicts)
	}
	if len(accs) != 1 || accs[0].Votes != 2 || accs[0].FastPath ||
		len(accs[0].Workers) != 2 || accs[0].Workers[0] != "wA" || accs[0].Workers[1] != "wB" {
		t.Fatalf("acceptance = %+v, want 2 votes from [wA wB]", accs)
	}
}

// TestVerifyReplicaDeathAndSameNameDedup is the PR 2 speculation
// regression plus replica death mid-vote, in one scenario:
//
//  1. wB dies holding the replica — its copy must be re-queued.
//  2. A second sub-stream named wA (same device, another core) asks and
//     must NOT receive the copy: wA already voted, and a speculative or
//     re-lent duplicate on the same name can never count as an
//     independent vote.
//  3. A genuinely distinct worker wC takes it and completes the quorum.
func TestVerifyReplicaDeathAndSameNameDedup(t *testing.T) {
	l := New[int, int]()
	vl := newVerdictLog()
	l.SetVerify(&VerifyConfig[int, int]{
		K: 2, Quorum: 2,
		Digest:    intDigest,
		OnVerdict: vl.verdict,
		OnAccept:  vl.accept,
	})
	emitted := make(chan int, 4)
	l.OnResult(func(idx, v int) { emitted <- v })
	out := l.Bind(pullstream.Values(10))
	outc, errc := collectAsync(out)

	_, dA := l.LendStreamNamed("wA")
	resultsA := make(chan int)
	dA.Sink(pullstream.FromChan(resultsA, nil))
	if v, err := ask(t, dA.Source); err != nil || v != 10 {
		t.Fatalf("wA value = %d, %v", v, err)
	}

	_, dB := l.LendStreamNamed("wB")
	resultsB := make(chan int)
	errB := make(chan error, 1)
	dB.Sink(pullstream.FromChan(resultsB, errB))
	if v, err := ask(t, dB.Source); err != nil || v != 10 {
		t.Fatalf("wB replica = %d, %v", v, err)
	}
	// Replica death mid-vote: the copy goes back to the failed queue.
	errB <- pullstream.ErrAborted

	// wA answers; one ballot is in. The re-queued copy must not resolve
	// the vote even though wA's "other core" is asking for work.
	resultsA <- 100
	_, dA2 := l.LendStreamNamed("wA")
	resultsA2 := make(chan int)
	dA2.Sink(pullstream.FromChan(resultsA2, nil))
	askEndA2 := make(chan error, 1)
	dA2.Source(nil, func(end error, v int) { askEndA2 <- end })
	expectNoEmission(t, emitted, "same-name duplicate must not complete the quorum")
	select {
	case end := <-askEndA2:
		t.Fatalf("same-name sub-stream was answered (%v); the copy must wait for a distinct worker", end)
	case <-time.After(50 * time.Millisecond):
	}

	// A distinct worker takes the copy and completes the quorum.
	_, dC := l.LendStreamNamed("wC")
	resultsC := make(chan int)
	dC.Sink(pullstream.FromChan(resultsC, nil))
	if v, err := ask(t, dC.Source); err != nil || v != 10 {
		t.Fatalf("wC re-lent copy = %d, %v", v, err)
	}
	resultsC <- 100
	expectEmission(t, emitted, 100)

	// Completion releases the parked same-name ask with done.
	if end := <-askEndA2; !errors.Is(end, pullstream.ErrDone) {
		t.Fatalf("parked ask end = %v, want ErrDone", end)
	}
	close(resultsA)
	close(resultsA2)
	close(resultsC)
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("output = %v, want [100]", got)
	}
	_, accs := vl.snapshot()
	if len(accs) != 1 || accs[0].Votes != 2 ||
		len(accs[0].Workers) != 2 || accs[0].Workers[0] != "wA" || accs[0].Workers[1] != "wC" {
		t.Fatalf("acceptance = %+v, want 2 votes from [wA wC]", accs)
	}
}

// TestVerifySpeculateQueuesReplicaOnce: under verification Speculate
// adds at most one extra queued copy per unresolved value — never a
// second while one is queued, and never any once resolved.
func TestVerifySpeculateQueuesReplicaOnce(t *testing.T) {
	l := New[int, int]()
	l.SetVerify(&VerifyConfig[int, int]{K: 2, Quorum: 2, Digest: intDigest})
	l.Bind(pullstream.Values(10))

	subA, dA := l.LendStreamNamed("wA")
	resultsA := make(chan int)
	dA.Sink(pullstream.FromChan(resultsA, nil))
	if v, err := ask(t, dA.Source); err != nil || v != 10 {
		t.Fatalf("wA value = %d, %v", v, err)
	}
	// The fan-out replica is still queued: speculation adds nothing.
	if n := l.Speculate(subA, 10); n != 0 {
		t.Fatalf("Speculate with queued replica = %d, want 0", n)
	}
	// A second worker drains the queued replica...
	_, dB := l.LendStreamNamed("wB")
	resultsB := make(chan int)
	dB.Sink(pullstream.FromChan(resultsB, nil))
	if v, err := ask(t, dB.Source); err != nil || v != 10 {
		t.Fatalf("wB replica = %d, %v", v, err)
	}
	// ...now speculation may queue exactly one more copy.
	if n := l.Speculate(subA, 10); n != 1 {
		t.Fatalf("Speculate = %d, want 1", n)
	}
	if n := l.Speculate(subA, 10); n != 0 {
		t.Fatalf("second Speculate = %d, want 0", n)
	}
	close(resultsA)
	close(resultsB)
}

// TestVerifyTrustedFastPath: a worker above the trust threshold gets
// replication-free lending and its single result is accepted on
// arrival, flagged as the fast-path in the audit record.
func TestVerifyTrustedFastPath(t *testing.T) {
	l := New[int, int]()
	vl := newVerdictLog()
	l.SetVerify(&VerifyConfig[int, int]{
		K: 2, Quorum: 2,
		Digest:    intDigest,
		Trusted:   func(name string) bool { return name == "vet" },
		OnVerdict: vl.verdict,
		OnAccept:  vl.accept,
	})
	out := l.Bind(pullstream.Values(10, 20))
	outc, errc := collectAsync(out)

	_, d := l.LendStreamNamed("vet")
	results := make(chan int)
	d.Sink(pullstream.FromChan(results, nil))
	if v, err := ask(t, d.Source); err != nil || v != 10 {
		t.Fatalf("value = %d, %v", v, err)
	}
	// No replica was fanned out: the next ask reads fresh input.
	if v, err := ask(t, d.Source); err != nil || v != 20 {
		t.Fatalf("second value = %d, %v (a replica would have come first)", v, err)
	}
	results <- 100
	results <- 400
	askEnd := make(chan error, 1)
	d.Source(nil, func(end error, v int) { askEnd <- end })
	if end := <-askEnd; !errors.Is(end, pullstream.ErrDone) {
		t.Fatalf("end = %v, want ErrDone", end)
	}
	close(results)
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 100 || got[1] != 400 {
		t.Fatalf("output = %v, want [100 400]", got)
	}
	verdicts, accs := vl.snapshot()
	if len(verdicts["vet"]) != 2 || !verdicts["vet"][0] || !verdicts["vet"][1] {
		t.Fatalf("verdicts = %v, want two agreements for vet", verdicts)
	}
	if len(accs) != 2 || !accs[0].FastPath || !accs[1].FastPath || accs[0].Votes != 1 {
		t.Fatalf("acceptances = %+v, want two fast-path records", accs)
	}
}

// TestVerifySplitVoteResolvedByThirdWorker: a wrong result splits the
// vote; the liveness rule queues one more copy, a third worker breaks
// the tie, and the cheater is graded disagreed.
func TestVerifySplitVoteResolvedByThirdWorker(t *testing.T) {
	l := New[int, int]()
	vl := newVerdictLog()
	l.SetVerify(&VerifyConfig[int, int]{
		K: 2, Quorum: 2,
		Digest:    intDigest,
		OnVerdict: vl.verdict,
		OnAccept:  vl.accept,
	})
	emitted := make(chan int, 4)
	l.OnResult(func(idx, v int) { emitted <- v })
	out := l.Bind(pullstream.Values(10))
	outc, errc := collectAsync(out)

	feed := func(name string) (chan<- int, pullstream.Source[int]) {
		_, d := l.LendStreamNamed(name)
		results := make(chan int)
		d.Sink(pullstream.FromChan(results, nil))
		if v, err := ask(t, d.Source); err != nil || v != 10 {
			t.Fatalf("%s value = %d, %v", name, v, err)
		}
		return results, d.Source
	}
	honest, _ := feed("honest")
	cheat, _ := feed("cheat")
	honest <- 100
	cheat <- 666 // plausible-but-wrong
	expectNoEmission(t, emitted, "split vote must not emit")

	tiebreak, tiebreakSrc := feed("tiebreak")
	tiebreak <- 100
	expectEmission(t, emitted, 100)

	if _, err := ask(t, tiebreakSrc); !errors.Is(err, pullstream.ErrDone) {
		t.Fatalf("end ask = %v, want ErrDone", err)
	}
	close(honest)
	close(cheat)
	close(tiebreak)
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("output = %v, want [100] (the honest majority value)", got)
	}
	verdicts, accs := vl.snapshot()
	if len(verdicts["cheat"]) != 1 || verdicts["cheat"][0] {
		t.Fatalf("cheat verdicts = %v, want one disagreement", verdicts["cheat"])
	}
	if !verdicts["honest"][0] || !verdicts["tiebreak"][0] {
		t.Fatalf("honest verdicts = %v, want agreements", verdicts)
	}
	if len(accs) != 1 || accs[0].Votes != 2 {
		t.Fatalf("acceptance = %+v, want quorum of 2", accs)
	}
}

// TestVerifySpotCheckOverridesQuorum: even a full quorum of colluders
// cannot push a wrong value past a spot-check — the master's local
// recomputation replaces the result and every colluder is graded
// disagreed.
func TestVerifySpotCheckOverridesQuorum(t *testing.T) {
	l := New[int, int]()
	vl := newVerdictLog()
	l.SetVerify(&VerifyConfig[int, int]{
		K: 2, Quorum: 2,
		Digest:    intDigest,
		Spot:      func(idx int) bool { return true },
		Recompute: func(v int) (int, error) { return v * 10, nil },
		OnVerdict: vl.verdict,
		OnAccept:  vl.accept,
	})
	out := l.Bind(pullstream.Values(10))
	outc, errc := collectAsync(out)

	feed := func(name string) (chan<- int, pullstream.Source[int]) {
		_, d := l.LendStreamNamed(name)
		results := make(chan int)
		d.Sink(pullstream.FromChan(results, nil))
		if v, err := ask(t, d.Source); err != nil || v != 10 {
			t.Fatalf("%s value = %d, %v", name, v, err)
		}
		return results, d.Source
	}
	col1, _ := feed("col1")
	col2, col2Src := feed("col2")
	col1 <- 666 // coordinated identical wrong answers
	col2 <- 666

	if _, err := ask(t, col2Src); !errors.Is(err, pullstream.ErrDone) {
		t.Fatalf("end ask = %v, want ErrDone", err)
	}
	close(col1)
	close(col2)
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("output = %v, want [100] (the recomputed truth)", got)
	}
	verdicts, accs := vl.snapshot()
	if verdicts["col1"][0] || verdicts["col2"][0] {
		t.Fatalf("verdicts = %v, want both colluders disagreed", verdicts)
	}
	if len(accs) != 1 || !accs[0].SpotChecked || !accs[0].SpotFailed {
		t.Fatalf("acceptance = %+v, want a failed spot-check", accs)
	}
}
