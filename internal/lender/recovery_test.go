package lender

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pando/internal/pullstream"
)

// waitStats polls the lender's counters until ok holds or a deadline
// passes (sub-stream deaths are processed on their own goroutines).
func waitStats(t *testing.T, l *Lender[int, int], ok func(lentNow, failedQ, subs, ended int) bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if ok(l.Stats()) {
			return
		}
		if time.Now().After(deadline) {
			lentNow, failedQ, subs, ended := l.Stats()
			t.Fatalf("stats never settled: lent=%d failed=%d subs=%d ended=%d",
				lentNow, failedQ, subs, ended)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRestoreSkipsAndReplaysOrdered: restored indices are consumed from
// the input without being lent, their results replay to the output in
// index order, and only the unfinished values reach a sub-stream.
func TestRestoreSkipsAndReplaysOrdered(t *testing.T) {
	l := New[int, int]()
	// Indices 0, 1 and 3 completed in a previous run (values 10, 20, 40).
	l.Restore(map[int]int{0: 100, 1: 200, 3: 400})
	out := l.Bind(pullstream.Values(10, 20, 30, 40, 50))
	outc, errc := collectAsync(out)

	_, d := l.LendStream()
	results := make(chan int)
	d.Sink(pullstream.FromChan(results, nil))

	// The sub-stream only ever sees the two unfinished values.
	if v, err := ask(t, d.Source); err != nil || v != 30 {
		t.Fatalf("first lent value = %d, %v; want 30 (0,1 restored)", v, err)
	}
	results <- 300
	if v, err := ask(t, d.Source); err != nil || v != 50 {
		t.Fatalf("second lent value = %d, %v; want 50 (3 restored)", v, err)
	}
	results <- 500
	if _, err := ask(t, d.Source); !errors.Is(err, pullstream.ErrDone) {
		t.Fatalf("third ask = %v, want ErrDone", err)
	}
	close(results)

	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	want := []int{100, 200, 300, 400, 500}
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output = %v, want %v (replayed and fresh interleaved in order)", got, want)
		}
	}
}

// TestRestoreUnordered: restored results replay (in index order) ahead of
// fresh completion-order results.
func TestRestoreUnordered(t *testing.T) {
	l := New[int, int](Unordered())
	l.Restore(map[int]int{1: 200, 0: 100})
	out := l.Bind(pullstream.Values(10, 20, 30))
	outc, errc := collectAsync(out)

	_, d := l.LendStream()
	results := make(chan int)
	d.Sink(pullstream.FromChan(results, nil))
	if v, err := ask(t, d.Source); err != nil || v != 30 {
		t.Fatalf("lent value = %d, %v; want 30", v, err)
	}
	results <- 300
	if _, err := ask(t, d.Source); !errors.Is(err, pullstream.ErrDone) {
		t.Fatalf("ask = %v, want ErrDone", err)
	}
	close(results)

	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 100 || got[1] != 200 || got[2] != 300 {
		t.Fatalf("output = %v, want [100 200 300]", got)
	}
}

// TestRestoreShorterInput: leftovers restored past the end of a shorter
// resumed input must still be emitted and the stream must terminate,
// not deadlock waiting for an index the input never produces.
func TestRestoreShorterInput(t *testing.T) {
	l := New[int, int]()
	l.Restore(map[int]int{0: 100, 4: 500})
	out := l.Bind(pullstream.Values(10, 20))
	outc, errc := collectAsync(out)

	_, d := l.LendStream()
	results := make(chan int)
	d.Sink(pullstream.FromChan(results, nil))
	if v, err := ask(t, d.Source); err != nil || v != 20 {
		t.Fatalf("lent value = %d, %v; want 20", v, err)
	}
	results <- 200
	if _, err := ask(t, d.Source); !errors.Is(err, pullstream.ErrDone) {
		t.Fatalf("ask = %v, want ErrDone", err)
	}
	close(results)

	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 100 || got[1] != 200 || got[2] != 500 {
		t.Fatalf("output = %v, want [100 200 500]", got)
	}
}

// TestOnResultFiresOncePerIndex: the export hook sees each index exactly
// once even when speculation produces a losing duplicate result, and
// never fires for restored indices.
func TestOnResultFiresOncePerIndex(t *testing.T) {
	l := New[int, int]()
	l.Restore(map[int]int{0: 100})
	var mu sync.Mutex
	fired := make(map[int]int)
	l.OnResult(func(idx int, v int) {
		mu.Lock()
		fired[idx]++
		mu.Unlock()
	})
	out := l.Bind(pullstream.Values(10, 20))
	outc, errc := collectAsync(out)

	subA, dA := l.LendStream()
	resultsA := make(chan int)
	dA.Sink(pullstream.FromChan(resultsA, nil))
	if v, err := ask(t, dA.Source); err != nil || v != 20 {
		t.Fatalf("subA value = %d, %v; want 20", v, err)
	}
	if n := l.Speculate(subA, 1); n != 1 {
		t.Fatalf("Speculate = %d, want 1", n)
	}
	_, dB := l.LendStream()
	resultsB := make(chan int)
	dB.Sink(pullstream.FromChan(resultsB, nil))
	if v, err := ask(t, dB.Source); err != nil || v != 20 {
		t.Fatalf("subB duplicate = %d, %v; want 20", v, err)
	}
	resultsB <- 201 // wins
	// A further ask from the origin discovers the input's end (reads are
	// lazy) and lets the output complete.
	if _, err := ask(t, dA.Source); !errors.Is(err, pullstream.ErrDone) {
		t.Fatalf("origin's further ask = %v, want ErrDone", err)
	}
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 100 || got[1] != 201 {
		t.Fatalf("output = %v, want [100 201]", got)
	}
	resultsA <- 999 // losing duplicate, discarded
	close(resultsA)
	close(resultsB)

	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 1 || fired[1] != 1 {
		t.Fatalf("OnResult fired %v, want exactly {1:1} (no replay, no dup)", fired)
	}
}

// TestSimultaneousTailFailuresRelendOnce covers the satellite scenario:
// near the stream tail several sub-streams hold copies of the same values
// (speculation duplicated them); when all of them fail at once, each
// distinct value must be re-lent exactly once — the failed queue must not
// accumulate one copy per dead holder.
func TestSimultaneousTailFailuresRelendOnce(t *testing.T) {
	l := New[int, int]()
	out := l.Bind(pullstream.Values(10, 20, 30))
	outc, errc := collectAsync(out)

	// subA takes all three values (the tail of the stream).
	subA, dA := l.LendStream()
	resultsA := make(chan int)
	errA := make(chan error, 1)
	dA.Sink(pullstream.FromChan(resultsA, errA))
	for _, want := range []int{10, 20, 30} {
		if v, err := ask(t, dA.Source); err != nil || v != want {
			t.Fatalf("subA value = %d, %v; want %d", v, err, want)
		}
	}
	// subA stalls; all its values are duplicated.
	if n := l.Speculate(subA, 3); n != 3 {
		t.Fatalf("Speculate = %d, want 3", n)
	}
	// subB picks up all three duplicates.
	_, dB := l.LendStream()
	resultsB := make(chan int)
	errB := make(chan error, 1)
	dB.Sink(pullstream.FromChan(resultsB, errB))
	for _, want := range []int{10, 20, 30} {
		if v, err := ask(t, dB.Source); err != nil || v != want {
			t.Fatalf("subB duplicate = %d, %v; want %d", v, err, want)
		}
	}

	// Both sub-streams crash simultaneously, each holding a copy of every
	// value.
	errA <- pullstream.ErrAborted
	errB <- pullstream.ErrAborted

	// Wait until both deaths are processed and the failed queue settles.
	waitStats(t, l, func(lentNow, failedQ, _, ended int) bool {
		return ended == 2 && lentNow == 0
	})
	if _, failedQ, _, _ := l.Stats(); failedQ != 3 {
		t.Fatalf("failed queue = %d, want 3 (one copy per distinct value)", failedQ)
	}

	// A fresh sub-stream receives each distinct value exactly once.
	_, dC := l.LendStream()
	resultsC := make(chan int)
	dC.Sink(pullstream.FromChan(resultsC, nil))
	for _, want := range []int{10, 20, 30} {
		if v, err := ask(t, dC.Source); err != nil || v != want {
			t.Fatalf("subC re-lent value = %d, %v; want %d (each distinct value exactly once)", v, err, want)
		}
	}
	// The next ask parks (nothing left to lend) until results finish the
	// stream — in particular it must NOT receive a second copy.
	askEnd := make(chan error, 1)
	dC.Source(nil, func(end error, v int) {
		if end == nil {
			t.Errorf("subC received an extra copy: %d", v)
		}
		askEnd <- end
	})
	resultsC <- 1
	resultsC <- 2
	resultsC <- 3
	if end := <-askEnd; !errors.Is(end, pullstream.ErrDone) {
		t.Fatalf("parked ask end = %v, want ErrDone", end)
	}
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("output = %v, want [1 2 3]", got)
	}
	close(resultsC)
}

// TestSingleHolderDeathWithQueuedDuplicate: the degenerate single-failure
// variant — the origin dies while its duplicate still waits in the failed
// queue; the two queued copies must collapse into one.
func TestSingleHolderDeathWithQueuedDuplicate(t *testing.T) {
	l := New[int, int]()
	l.Bind(pullstream.Values(10))

	subA, dA := l.LendStream()
	resultsA := make(chan int)
	errA := make(chan error, 1)
	dA.Sink(pullstream.FromChan(resultsA, errA))
	if v, err := ask(t, dA.Source); err != nil || v != 10 {
		t.Fatalf("subA value = %d, %v", v, err)
	}
	if n := l.Speculate(subA, 1); n != 1 {
		t.Fatalf("Speculate = %d, want 1", n)
	}
	// The origin dies before any other sub-stream takes the duplicate.
	errA <- pullstream.ErrAborted
	waitStats(t, l, func(lentNow, failedQ, _, ended int) bool {
		return ended == 1
	})
	if _, failedQ, _, _ := l.Stats(); failedQ != 1 {
		t.Fatalf("failed queue = %d, want 1 (copies collapsed)", failedQ)
	}

	_, dB := l.LendStream()
	resultsB := make(chan int)
	dB.Sink(pullstream.FromChan(resultsB, nil))
	if v, err := ask(t, dB.Source); err != nil || v != 10 {
		t.Fatalf("subB value = %d, %v", v, err)
	}
	// Only one copy: the next ask must park rather than hand over a dup.
	askEnd := make(chan error, 1)
	dB.Source(nil, func(end error, v int) {
		if end == nil {
			t.Errorf("subB received an extra copy: %d", v)
		}
		askEnd <- end
	})
	resultsB <- 100
	if end := <-askEnd; !errors.Is(end, pullstream.ErrDone) {
		t.Fatalf("parked ask end = %v, want ErrDone", end)
	}
	close(resultsB)
}
