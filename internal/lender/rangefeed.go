package lender

// Range-restricted sources for sharded masters: a shard member's engine
// does not bind the global input stream — it binds a RangeFeed, the
// bounded queue of (global index, value) pairs a coordinator routes to
// the shard's owned index ranges. The feed assigns engine-local indices
// in arrival order and keeps the local→global translation in an
// IndexMap, so the shard's ordered local output (and its completion
// segment) can be mapped back onto the global index space by the merge
// layer.

import (
	"errors"
	"sync"

	"pando/internal/pullstream"
)

// ErrFeedClosed reports a Push on a closed feed — the signal that the
// feed's owner died or migrated and the value must be rerouted.
var ErrFeedClosed = errors.New("lender: range feed closed")

// IndexMap is an append-only, concurrency-safe local→global index
// translation. A shard's source appends the global index of each value
// as it yields it (the engine numbers inputs in exactly that order), and
// the drain side looks locals up as ordered results emerge.
type IndexMap struct {
	mu      sync.Mutex
	globals []int
}

// Append records the next local index's global counterpart and returns
// the local index it was assigned.
func (m *IndexMap) Append(global int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.globals = append(m.globals, global)
	return len(m.globals) - 1
}

// Global translates a local index; ok is false for a local index that
// has not been assigned.
func (m *IndexMap) Global(local int) (global int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if local < 0 || local >= len(m.globals) {
		return 0, false
	}
	return m.globals[local], true
}

// Len reports how many locals have been assigned.
func (m *IndexMap) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.globals)
}

// FeedItem is one routed value awaiting a shard's engine.
type FeedItem[I any] struct {
	Global int
	Value  I
}

// RangeFeed is a bounded FIFO of routed values feeding one shard
// member's engine. Push blocks while the feed is full — the coordinator's
// run-ahead per shard is O(capacity), and the bound propagates as
// backpressure to the global input. Closing the feed ends the source
// after (Close) or instead of (CloseDiscard) draining the buffer.
type RangeFeed[I any] struct {
	idx *IndexMap

	mu          sync.Mutex
	cond        *sync.Cond
	buf         []FeedItem[I]
	cap         int
	preAssigned int // leading yields whose IndexMap entry Preload already made
	closed      bool
	end         error // terminal answer once drained; ErrDone when closed nil
}

// NewRangeFeed creates a feed of the given capacity whose source records
// local→global assignments into idx.
func NewRangeFeed[I any](capacity int, idx *IndexMap) *RangeFeed[I] {
	if capacity < 1 {
		capacity = 1
	}
	f := &RangeFeed[I]{idx: idx, cap: capacity}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Preload seeds the feed ahead of its first pull, ignoring the capacity
// bound: the values granted to an adopting shard in a range hand-off are
// loaded in one piece so their engine-local order (and with it the local
// indices of any restored entries) is fixed up front. The local→global
// assignments are made here, not at yield time — the engine replays a
// restored entry the moment its predecessors' results exist, which can
// be before the source has yielded that position, and the drain side
// must already be able to translate it.
func (f *RangeFeed[I]) Preload(items []FeedItem[I]) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, it := range items {
		f.idx.Append(it.Global)
	}
	f.preAssigned += len(items)
	f.buf = append(f.buf, items...)
	f.cond.Broadcast()
}

// Push appends one routed value, blocking while the feed is full. It
// returns ErrFeedClosed once the feed closed — the value was not
// enqueued and must be rerouted.
func (f *RangeFeed[I]) Push(global int, v I) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for !f.closed && len(f.buf) >= f.cap {
		f.cond.Wait()
	}
	if f.closed {
		return ErrFeedClosed
	}
	f.buf = append(f.buf, FeedItem[I]{Global: global, Value: v})
	f.cond.Broadcast()
	return nil
}

// Close ends the feed: buffered values still drain, then the source
// answers end (nil means a normal ErrDone). Idempotent.
func (f *RangeFeed[I]) Close(end error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	f.end = end
	f.cond.Broadcast()
}

// CloseDiscard ends the feed immediately, dropping buffered values — the
// crash-stop of a killed shard, whose undelivered values are rerouted by
// the coordinator's grant instead of drained here. Idempotent.
func (f *RangeFeed[I]) CloseDiscard(end error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	f.end = end
	f.buf = nil
	f.cond.Broadcast()
}

// Source is the pull-stream view the shard's engine binds. Each yielded
// value's global index is appended to the feed's IndexMap at yield time,
// so local indices correspond to yield order by construction.
func (f *RangeFeed[I]) Source() pullstream.Source[I] {
	return func(abort error, cb pullstream.Callback[I]) {
		var zero I
		if abort != nil {
			cb(abort, zero)
			return
		}
		f.mu.Lock()
		for len(f.buf) == 0 && !f.closed {
			f.cond.Wait()
		}
		if len(f.buf) == 0 {
			end := f.end
			f.mu.Unlock()
			if end == nil {
				end = pullstream.ErrDone
			}
			cb(end, zero)
			return
		}
		it := f.buf[0]
		f.buf = f.buf[1:]
		assigned := f.preAssigned > 0
		if assigned {
			f.preAssigned--
		}
		f.cond.Broadcast()
		f.mu.Unlock()
		if !assigned {
			f.idx.Append(it.Global)
		}
		cb(nil, it.Value)
	}
}
