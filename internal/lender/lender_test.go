package lender

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pando/internal/pullstream"
)

// runWorker attaches a synthetic worker to a sub-stream: it repeatedly
// asks for values, applies f, and feeds results back through the sink.
// If crashAfter >= 0, the worker dies (sink errors, source aborts) after
// processing crashAfter values, re-creating a browser tab being closed.
func runWorker[I, O any](t *testing.T, l *Lender[I, O], f func(I) O, delay time.Duration, crashAfter int) *sync.WaitGroup {
	t.Helper()
	_, d := l.LendStream()
	var wg sync.WaitGroup
	wg.Add(1)
	results := make(chan O)
	crash := errors.New("worker crashed")
	go func() {
		defer wg.Done()
		processed := 0
		for {
			type ans struct {
				end error
				v   I
			}
			ch := make(chan ans, 1)
			d.Source(nil, func(end error, v I) { ch <- ans{end, v} })
			a := <-ch
			if a.end != nil {
				close(results)
				return
			}
			if crashAfter >= 0 && processed >= crashAfter {
				// Crash-stop: abort the source, error the sink.
				d.Source(crash, func(error, I) {})
				return
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			results <- f(a.v)
			processed++
		}
	}()
	errOnCrash := make(chan error, 1)
	if crashAfter >= 0 {
		go func() {
			// When the processing goroutine crashes it stops feeding
			// results; signal the sink with an error after it stops.
			wg.Wait()
			errOnCrash <- crash
		}()
	}
	d.Sink(pullstream.FromChan(results, errOnCrash))
	return &wg
}

func collectAsync[O any](src pullstream.Source[O]) (<-chan []O, <-chan error) {
	outc := make(chan []O, 1)
	errc := make(chan error, 1)
	go func() {
		vs, err := pullstream.Collect(src)
		outc <- vs
		errc <- err
	}()
	return outc, errc
}

func TestSingleWorkerOrdered(t *testing.T) {
	l := New[int, int]()
	out := l.Bind(pullstream.Count(20))
	outc, errc := collectAsync(out)
	runWorker(t, l, func(v int) int { return v * v }, 0, -1)
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("got %d results, want 20", len(got))
	}
	for i, v := range got {
		want := (i + 1) * (i + 1)
		if v != want {
			t.Fatalf("got[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestMultipleWorkersOrderedOutput(t *testing.T) {
	// Declarative concurrency (paper §2.3): the output must be identical
	// regardless of the number of workers or their relative speeds.
	l := New[int, int]()
	out := l.Bind(pullstream.Count(200))
	outc, errc := collectAsync(out)
	runWorker(t, l, func(v int) int { return v * 2 }, 0, -1)
	runWorker(t, l, func(v int) int { return v * 2 }, time.Millisecond, -1)
	runWorker(t, l, func(v int) int { return v * 2 }, 300*time.Microsecond, -1)
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("got %d results, want 200", len(got))
	}
	for i, v := range got {
		if v != (i+1)*2 {
			t.Fatalf("got[%d] = %d, want %d (output must be ordered)", i, v, (i+1)*2)
		}
	}
}

// TestDeploymentExampleFigure4 reproduces the paper's Figure 4 scenario:
// three inputs; a tablet joins and renders x1; a phone joins and renders
// x3; the tablet crashes while holding x2; the phone takes over x2 and the
// processing completes with ordered outputs.
func TestDeploymentExampleFigure4(t *testing.T) {
	l := New[string, string]()
	out := l.Bind(pullstream.Values("x1", "x2", "x3"))
	outc, errc := collectAsync(out)

	render := func(v string) string { return "f(" + v + ")" }

	// The tablet processes one value then crashes while holding the next.
	tabletGone := runWorker(t, l, render, 0, 1)
	tabletGone.Wait()

	// The phone joins, renders the remaining values including the one the
	// tablet dropped.
	runWorker(t, l, render, 0, -1)

	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	want := []string{"f(x1)", "f(x2)", "f(x3)"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPropertyFaultToleranceManyCrashes(t *testing.T) {
	// Liveness: once an input has been read, if there are active
	// participating devices, the lender eventually provides f(x).
	l := New[int, int]()
	out := l.Bind(pullstream.Count(100))
	outc, errc := collectAsync(out)
	// Five workers that each crash after a few values...
	for i := 0; i < 5; i++ {
		runWorker(t, l, func(v int) int { return -v }, 0, 3+i)
	}
	// ...and one reliable worker that survives.
	runWorker(t, l, func(v int) int { return -v }, 0, -1)
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d results, want 100", len(got))
	}
	for i, v := range got {
		if v != -(i + 1) {
			t.Fatalf("got[%d] = %d, want %d", i, v, -(i + 1))
		}
	}
}

func TestPropertyLazyInput(t *testing.T) {
	// Lazy: inputs are read only when a worker asks. With no worker, no
	// reads may happen.
	reads := 0
	src := func(abort error, cb pullstream.Callback[int]) {
		if abort != nil {
			cb(abort, 0)
			return
		}
		reads++
		cb(nil, reads)
	}
	l := New[int, int]()
	out := l.Bind(src)
	if reads != 0 {
		t.Fatalf("input read %d times before any worker asked", reads)
	}

	// One worker asks exactly twice; at most two reads may occur.
	_, d := l.LendStream()
	for i := 0; i < 2; i++ {
		done := make(chan struct{})
		d.Source(nil, func(end error, v int) { close(done) })
		<-done
	}
	if reads != 2 {
		t.Fatalf("input read %d times, want exactly 2 (lazy)", reads)
	}
	_ = out
}

func TestPropertyConservativeSingleCopy(t *testing.T) {
	// Conservative: a value is lent to at most one sub-stream at a time.
	var mu sync.Mutex
	lentCount := make(map[int]int)

	l := New[int, int]()
	out := l.Bind(pullstream.Count(50))
	outc, errc := collectAsync(out)

	wrap := func(v int) int {
		mu.Lock()
		lentCount[v]++
		mu.Unlock()
		return v
	}
	for i := 0; i < 4; i++ {
		runWorker(t, l, wrap, 0, -1)
	}
	<-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for v, n := range lentCount {
		if n != 1 {
			t.Fatalf("value %d processed %d times; conservative lending requires exactly 1", v, n)
		}
	}
	if len(lentCount) != 50 {
		t.Fatalf("processed %d distinct values, want 50", len(lentCount))
	}
}

func TestPropertyAdaptiveFasterWorkerGetsMore(t *testing.T) {
	// Adaptive: faster devices receive more inputs.
	var mu sync.Mutex
	counts := make(map[string]int)
	count := func(name string) func(int) int {
		return func(v int) int {
			mu.Lock()
			counts[name]++
			mu.Unlock()
			return v
		}
	}
	l := New[int, int]()
	out := l.Bind(pullstream.Count(60))
	outc, errc := collectAsync(out)
	runWorker(t, l, count("fast"), 200*time.Microsecond, -1)
	runWorker(t, l, count("slow"), 4*time.Millisecond, -1)
	<-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if counts["fast"] <= counts["slow"] {
		t.Fatalf("fast worker processed %d <= slow worker %d; lending must be adaptive",
			counts["fast"], counts["slow"])
	}
}

func TestPropertyDynamicLateJoin(t *testing.T) {
	// Dynamic: a worker joining mid-stream participates immediately.
	l := New[int, int]()
	out := l.Bind(pullstream.Count(40))
	outc, errc := collectAsync(out)
	runWorker(t, l, func(v int) int { return v }, time.Millisecond, -1)
	time.Sleep(5 * time.Millisecond)
	runWorker(t, l, func(v int) int { return v }, 0, -1) // joins late
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("got %d, want 40", len(got))
	}
}

func TestUnorderedMode(t *testing.T) {
	l := New[int, int](Unordered())
	out := l.Bind(pullstream.Count(50))
	outc, errc := collectAsync(out)
	for i := 0; i < 3; i++ {
		runWorker(t, l, func(v int) int { return v }, time.Duration(i)*100*time.Microsecond, -1)
	}
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("got %d results, want 50", len(got))
	}
	seen := make(map[int]bool)
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate result %d", v)
		}
		seen[v] = true
	}
}

func TestEmptyInput(t *testing.T) {
	l := New[int, int]()
	out := l.Bind(pullstream.Empty[int]())
	outc, errc := collectAsync(out)
	runWorker(t, l, func(v int) int { return v }, 0, -1)
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestInputErrorPropagates(t *testing.T) {
	boom := errors.New("input boom")
	l := New[int, int]()
	out := l.Bind(pullstream.Concat(pullstream.Count(3), pullstream.Error[int](boom)))
	outc, errc := collectAsync(out)
	runWorker(t, l, func(v int) int { return v * 10 }, 0, -1)
	got := <-outc
	err := <-errc
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The three values read before the failure must still be delivered.
	if len(got) != 3 {
		t.Fatalf("got %v, want 3 values before the error", got)
	}
}

func TestDownstreamAbortReleasesWorkers(t *testing.T) {
	l := New[int, int]()
	out := l.Bind(pullstream.Count(1000))
	runWorker(t, l, func(v int) int { return v }, 100*time.Microsecond, -1)

	got, err := pullstream.Collect(pullstream.Take[int](5)(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %v, want 5 values", got)
	}
	// After the abort, new sub-stream asks must answer done promptly.
	_, d := l.LendStream()
	done := make(chan error, 1)
	d.Source(nil, func(end error, v int) { done <- end })
	select {
	case end := <-done:
		if end == nil {
			t.Fatal("sub-stream produced a value after downstream abort")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sub-stream ask hung after downstream abort")
	}
}

func TestLendStreamAfterCompletion(t *testing.T) {
	l := New[int, int]()
	out := l.Bind(pullstream.Count(5))
	outc, errc := collectAsync(out)
	runWorker(t, l, func(v int) int { return v }, 0, -1)
	<-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	// A worker joining after completion is told the stream is done.
	_, d := l.LendStream()
	done := make(chan error, 1)
	d.Source(nil, func(end error, v int) { done <- end })
	if end := <-done; end == nil {
		t.Fatal("late sub-stream received a value after completion")
	}
}

func TestAllWorkersCrashThenRecovery(t *testing.T) {
	// Every worker crashes; values are stranded in the failed queue; a
	// fresh worker joining later must complete the stream (liveness under
	// "if there are active participating devices").
	l := New[int, int]()
	out := l.Bind(pullstream.Count(10))
	outc, errc := collectAsync(out)

	w1 := runWorker(t, l, func(v int) int { return v }, 0, 2)
	w2 := runWorker(t, l, func(v int) int { return v }, 0, 2)
	w1.Wait()
	w2.Wait()

	runWorker(t, l, func(v int) int { return v }, 0, -1)
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d results, want 10", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got[%d] = %d, want %d", i, v, i+1)
		}
	}
}

func TestAlgorithm1FailedValueAnsweredFirst(t *testing.T) {
	// Algorithm 1 lines 2-3: when failed is non-empty, an ask must be
	// answered with the oldest failed value, not a fresh input.
	l := New[int, int]()
	reads := 0
	src := func(abort error, cb pullstream.Callback[int]) {
		if abort != nil {
			cb(abort, 0)
			return
		}
		reads++
		if reads > 3 {
			cb(pullstream.ErrDone, 0)
			return
		}
		cb(nil, reads*100)
	}
	_ = l.Bind(src)

	// Worker A takes two values then crashes without answering.
	subA, dA := l.LendStream()
	for i := 0; i < 2; i++ {
		done := make(chan struct{})
		dA.Source(nil, func(end error, v int) { close(done) })
		<-done
	}
	dA.Source(errors.New("crash"), func(error, int) {})
	_ = subA

	// Worker B's first two asks must receive the failed values 100 and
	// 200 (oldest first) without any new input read.
	readsBefore := reads
	_, dB := l.LendStream()
	for want := 100; want <= 200; want += 100 {
		got := make(chan int, 1)
		dB.Source(nil, func(end error, v int) { got <- v })
		if v := <-got; v != want {
			t.Fatalf("re-lent value = %d, want %d (oldest failed first)", v, want)
		}
	}
	if reads != readsBefore {
		t.Fatalf("input was read %d extra times; failed values must be served first", reads-readsBefore)
	}
}

func TestAlgorithm1WaitOnOthers(t *testing.T) {
	// Algorithm 1 lines 4-5 and 20-25: after the input terminates, an
	// asking sub-stream must wait until the last result is received or a
	// failure makes a value available again.
	l := New[int, int]()
	_ = l.Bind(pullstream.Count(1))

	// Worker A holds the only value.
	_, dA := l.LendStream()
	gotA := make(chan int, 1)
	dA.Source(nil, func(end error, v int) { gotA <- v })
	<-gotA

	// Worker B asks; the input is exhausted, so B must park, not get done.
	_, dB := l.LendStream()
	answered := make(chan error, 1)
	dB.Source(nil, func(end error, v int) { answered <- end })
	select {
	case end := <-answered:
		t.Fatalf("B answered %v while A still held the value; must waitOnOthers", end)
	case <-time.After(50 * time.Millisecond):
	}

	// A crashes: B must now be answered with the failed value.
	dA.Source(errors.New("crash"), func(error, int) {})
	select {
	case end := <-answered:
		if end != nil {
			t.Fatalf("B answered end=%v, want the re-lent value", end)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("B was never answered after A crashed")
	}
}

func TestAlgorithm1DoneAfterLastResult(t *testing.T) {
	// waitOnOthers: when the last result is received, parked asks answer done.
	l := New[int, int]()
	out := l.Bind(pullstream.Count(1))
	outc, errc := collectAsync(out)

	_, dA := l.LendStream()
	var lentV int
	got := make(chan struct{})
	dA.Source(nil, func(end error, v int) { lentV = v; close(got) })
	<-got

	_, dB := l.LendStream()
	answered := make(chan error, 1)
	dB.Source(nil, func(end error, v int) { answered <- end })

	// A answers its value: B must then be told done.
	results := make(chan int, 1)
	results <- lentV * 7
	close(results)
	dA.Sink(pullstream.FromChan(results, nil))

	select {
	case end := <-answered:
		if !errors.Is(end, pullstream.ErrDone) {
			t.Fatalf("B end = %v, want done", end)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("B never answered after last result")
	}
	gotOut := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(gotOut) != 1 || gotOut[0] != 7 {
		t.Fatalf("output = %v, want [7]", gotOut)
	}
}

func TestStatsCounters(t *testing.T) {
	l := New[int, int]()
	_ = l.Bind(pullstream.Count(3))
	_, d := l.LendStream()
	got := make(chan struct{})
	d.Source(nil, func(end error, v int) { close(got) })
	<-got
	lentNow, failedQ, subs, ended := l.Stats()
	if lentNow != 1 || failedQ != 0 || subs != 1 || ended != 0 {
		t.Fatalf("stats = (%d,%d,%d,%d), want (1,0,1,0)", lentNow, failedQ, subs, ended)
	}
	d.Source(errors.New("crash"), func(error, int) {})
	lentNow, failedQ, _, ended = l.Stats()
	if lentNow != 0 || failedQ != 1 || ended != 1 {
		t.Fatalf("after crash stats = (%d,%d,-,%d), want (0,1,-,1)", lentNow, failedQ, ended)
	}
}
