package lender

import (
	"errors"
	"testing"
	"time"

	"pando/internal/pullstream"
)

// ask issues one request on a sub-stream source and waits for the answer.
func ask[T any](t *testing.T, src pullstream.Source[T]) (T, error) {
	t.Helper()
	type ans struct {
		end error
		v   T
	}
	ch := make(chan ans, 1)
	src(nil, func(end error, v T) { ch <- ans{end, v} })
	select {
	case a := <-ch:
		return a.v, a.end
	case <-time.After(5 * time.Second):
		t.Fatal("ask timed out")
		panic("unreachable")
	}
}

// TestSpeculateDuplicateWinsAndLoserDiscarded covers the at-least-once
// semantics behind speculative re-dispatch: a straggler's outstanding
// values are duplicated to an idle sub-stream, the duplicate's results
// answer the stream, and the straggler's late results are discarded — the
// output carries exactly one result per input.
func TestSpeculateDuplicateWinsAndLoserDiscarded(t *testing.T) {
	l := New[int, int]()
	out := l.Bind(pullstream.Values(10, 20))
	outc, errc := collectAsync(out)

	subA, dA := l.LendStream()
	resultsA := make(chan int)
	dA.Sink(pullstream.FromChan(resultsA, nil))
	if v, err := ask(t, dA.Source); err != nil || v != 10 {
		t.Fatalf("subA first value = %d, %v", v, err)
	}
	if v, err := ask(t, dA.Source); err != nil || v != 20 {
		t.Fatalf("subA second value = %d, %v", v, err)
	}

	// subA stalls; both its values are duplicated for re-dispatch.
	if n := l.Speculate(subA, 10); n != 2 {
		t.Fatalf("Speculate = %d, want 2", n)
	}
	if n := l.Speculate(subA, 10); n != 0 {
		t.Fatalf("second Speculate = %d, want 0 (no value duplicated twice)", n)
	}

	_, dB := l.LendStream()
	resultsB := make(chan int)
	dB.Sink(pullstream.FromChan(resultsB, nil))
	if v, err := ask(t, dB.Source); err != nil || v != 10 {
		t.Fatalf("subB first duplicate = %d, %v", v, err)
	}
	if v, err := ask(t, dB.Source); err != nil || v != 20 {
		t.Fatalf("subB second duplicate = %d, %v", v, err)
	}

	// A further ask discovers the input's end (the lazy read only happens
	// on demand); it parks until every value is answered, then reports
	// done.
	askEnd := make(chan error, 1)
	dB.Source(nil, func(end error, v int) { askEnd <- end })

	// The idle sub-stream answers first and wins.
	resultsB <- 100
	resultsB <- 200
	if end := <-askEnd; !errors.Is(end, pullstream.ErrDone) {
		t.Fatalf("parked ask end = %v, want ErrDone", end)
	}
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 100 || got[1] != 200 {
		t.Fatalf("output = %v, want [100 200] (each input answered exactly once)", got)
	}

	// The straggler's late results arrive after completion and must be
	// discarded without corrupting state.
	resultsA <- 101
	resultsA <- 201
	close(resultsA)
	close(resultsB)
	deadline := time.Now().Add(2 * time.Second)
	for {
		lentNow, failedQ, _, _ := l.Stats()
		if lentNow == 0 && failedQ == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("zombie copies not drained: %d lent, %d failed", lentNow, failedQ)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSpeculateOriginalStillWins checks the symmetric race: the origin
// answers before the duplicate's holder, its result is delivered, and the
// duplicate's later result is dropped.
func TestSpeculateOriginalStillWins(t *testing.T) {
	l := New[int, int]()
	out := l.Bind(pullstream.Values(10))
	outc, errc := collectAsync(out)

	subA, dA := l.LendStream()
	resultsA := make(chan int)
	dA.Sink(pullstream.FromChan(resultsA, nil))
	if v, err := ask(t, dA.Source); err != nil || v != 10 {
		t.Fatalf("subA value = %d, %v", v, err)
	}
	if n := l.Speculate(subA, 1); n != 1 {
		t.Fatalf("Speculate = %d, want 1", n)
	}

	_, dB := l.LendStream()
	resultsB := make(chan int)
	dB.Sink(pullstream.FromChan(resultsB, nil))
	if v, err := ask(t, dB.Source); err != nil || v != 10 {
		t.Fatalf("subB duplicate = %d, %v", v, err)
	}

	askEnd := make(chan error, 1)
	dB.Source(nil, func(end error, v int) { askEnd <- end })

	resultsA <- 100 // the origin recovers and answers first
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("output = %v, want [100]", got)
	}
	if end := <-askEnd; !errors.Is(end, pullstream.ErrDone) {
		t.Fatalf("parked ask end = %v, want ErrDone", end)
	}
	resultsB <- 999 // losing duplicate, discarded
	close(resultsA)
	close(resultsB)
}

// TestSpeculateNeverHandsDuplicateToOrigin: a sub-stream asking for more
// work must not receive a duplicate of a value it already holds; fresh
// input is preferred and the duplicate stays queued for other workers.
func TestSpeculateNeverHandsDuplicateToOrigin(t *testing.T) {
	l := New[int, int]()
	l.Bind(pullstream.Values(10, 30))

	subA, dA := l.LendStream()
	resultsA := make(chan int)
	dA.Sink(pullstream.FromChan(resultsA, nil))
	if v, err := ask(t, dA.Source); err != nil || v != 10 {
		t.Fatalf("subA value = %d, %v", v, err)
	}
	if n := l.Speculate(subA, 1); n != 1 {
		t.Fatalf("Speculate = %d, want 1", n)
	}
	// subA asks again: the failed queue holds its own duplicate, which it
	// must not receive — it gets the next fresh input instead.
	if v, err := ask(t, dA.Source); err != nil || v != 30 {
		t.Fatalf("subA second value = %d, %v (must skip its own duplicate)", v, err)
	}
	close(resultsA)
}

// TestSpeculateCrashedOriginFallsBackToRelend: when the origin dies after
// speculation while the duplicate is already lent to a live sub-stream,
// the unanswered original is re-lent as usual and the value is still
// answered exactly once. (When the duplicate is still queued instead, the
// two copies collapse — see TestSingleHolderDeathWithQueuedDuplicate.)
func TestSpeculateCrashedOriginFallsBackToRelend(t *testing.T) {
	l := New[int, int]()
	out := l.Bind(pullstream.Values(10))
	outc, errc := collectAsync(out)

	subA, dA := l.LendStream()
	resultsA := make(chan int)
	errA := make(chan error, 1)
	dA.Sink(pullstream.FromChan(resultsA, errA))
	if v, err := ask(t, dA.Source); err != nil || v != 10 {
		t.Fatalf("subA value = %d, %v", v, err)
	}
	if n := l.Speculate(subA, 1); n != 1 {
		t.Fatalf("Speculate = %d, want 1", n)
	}

	// subB takes the queued duplicate while the origin is still alive...
	_, dB := l.LendStream()
	resultsB := make(chan int)
	dB.Sink(pullstream.FromChan(resultsB, nil))
	if v, err := ask(t, dB.Source); err != nil || v != 10 {
		t.Fatalf("subB duplicate = %d, %v", v, err)
	}

	// ...then the origin crashes with its copy unanswered: the original
	// goes through the failed queue and is re-lent.
	errA <- pullstream.ErrAborted
	if v, err := ask(t, dB.Source); err != nil || v != 10 {
		t.Fatalf("subB re-lent original = %d, %v", v, err)
	}
	askEnd := make(chan error, 1)
	dB.Source(nil, func(end error, v int) { askEnd <- end })
	resultsB <- 100 // answers the value; the second copy is now a zombie
	if end := <-askEnd; !errors.Is(end, pullstream.ErrDone) {
		t.Fatalf("parked ask end = %v, want ErrDone", end)
	}
	got := <-outc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("output = %v, want [100]", got)
	}
	resultsB <- 999 // the zombie copy's result, discarded
	close(resultsB)
}
