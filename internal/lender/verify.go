package lender

import (
	"sort"
	"time"

	"pando/internal/verify"
)

// This file is the lender half of Byzantine-tolerant result
// verification (internal/verify holds the pure voting machine and the
// reputation ledger). With a VerifyConfig installed the lending rules
// change from the paper's conservative single-copy discipline to
// BOINC-style k-replication:
//
//   - A fresh value lent to an untrusted worker fans out K-1 replica
//     copies onto the failed queue, so K distinct workers compute it.
//   - A replica is never lent to a sub-stream whose worker name already
//     holds or has answered a copy — several sub-streams of one device
//     (or a speculative duplicate) are one voice, not two.
//   - A result is emitted (and journaled, and exported) only once a
//     quorum of distinct worker names returned byte-identical output,
//     or its submitter is above the trust threshold (the fast-path), or
//     the master recomputed it locally (a spot-check).
//   - Replica death mid-vote re-queues the dead worker's copy; a split
//     vote with no copies left queues one more, so every vote
//     eventually resolves as long as fresh distinct workers keep
//     asking. Liveness therefore needs at least Quorum distinct worker
//     names in the fleet.
//
// Verification changes when `pending` is released: a verified value
// counts as answered at vote resolution, not at first result, so the
// output, completion and journal all sit strictly behind the quorum.

// VerifyConfig arms result verification on a lender. Install with
// SetVerify before Bind. All callbacks may be invoked under the
// lender's internal lock unless noted and must not call back into the
// lender.
type VerifyConfig[I, O any] struct {
	// K is the replication factor for values submitted by untrusted
	// workers; Quorum is how many distinct workers must agree.
	K      int
	Quorum int
	// Digest hashes a decoded result. The master computes digests
	// itself from the bytes it decoded — a worker-claimed digest would
	// let a lazy cheater echo another worker's hash without doing the
	// work.
	Digest func(O) (verify.Digest, error)
	// Trusted reports whether a worker has earned the replication-free
	// fast-path (nil: no fast-path).
	Trusted func(name string) bool
	// Spot decides whether an accepted index is spot-checked (nil:
	// never). It must be deterministic in the index.
	Spot func(idx int) bool
	// Recompute is the master-local recomputation behind spot-checks.
	// It runs outside the lender lock, on the result-delivery
	// goroutine of the worker that completed the quorum.
	Recompute func(I) (O, error)
	// OnVerdict is told each (worker, index) agreement verdict, outside
	// the lock — the reputation feed.
	OnVerdict func(worker string, idx int, agreed bool)
	// OnAccept is told each acceptance audit record, outside the lock.
	OnAccept func(a verify.Acceptance)
}

// voteState is the lender-side bookkeeping of one index under vote: the
// pure ballot machine plus where the copies currently are.
type voteState[I, O any] struct {
	input  I
	voter  *verify.Voter
	values map[verify.Digest]O // representative decoded result per digest

	holders map[string]int // worker name -> copies currently lent
	queued  int            // copies waiting in l.failed
	fanned  bool           // replicas were fanned out (or skipped: trusted)

	spotting bool // accepted, spot-check recomputation in flight
	emitted  bool // finalized: result emitted, verdicts delivered
}

func (vt *voteState[I, O]) dropHolder(name string) {
	if n := vt.holders[name]; n > 1 {
		vt.holders[name] = n - 1
	} else {
		delete(vt.holders, name)
	}
}

func (vt *voteState[I, O]) copiesLive() int {
	n := vt.queued
	for _, c := range vt.holders {
		n += c
	}
	return n
}

// participant reports whether the named worker already holds or has
// voted on this index — it must not receive another copy.
func (vt *voteState[I, O]) participant(name string) bool {
	return vt.holders[name] > 0 || vt.voter.Participated(name)
}

func (vt *voteState[I, O]) resolved() bool {
	_, done := vt.voter.Accepted()
	return done
}

// SetVerify installs (or, with nil, removes) the verification layer.
// Call before Bind; flipping it mid-stream is undefined.
func (l *Lender[I, O]) SetVerify(cfg *VerifyConfig[I, O]) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cfg == nil {
		l.verify = nil
		l.votes = nil
		return
	}
	c := *cfg
	if c.Quorum < 1 {
		c.Quorum = 1
	}
	if c.K < c.Quorum {
		c.K = c.Quorum
	}
	l.verify = &c
	l.votes = make(map[int]*voteState[I, O])
}

// voteEnsureOpenLocked creates the vote record for a value the first
// time it is tracked (fresh lend, or a read whose asker died).
func (l *Lender[I, O]) voteEnsureOpenLocked(idx int, v I) *voteState[I, O] {
	vt := l.votes[idx]
	if vt == nil {
		vt = &voteState[I, O]{
			input:   v,
			voter:   verify.NewVoter(l.verify.Quorum),
			values:  make(map[verify.Digest]O),
			holders: make(map[string]int),
		}
		l.votes[idx] = vt
	}
	return vt
}

// voteFanLocked fans out the replica copies the first time idx is lent:
// K-1 extra copies onto the failed queue — unless the first holder is
// trusted, in which case the value rides replication-free and the
// fast-path (plus spot-checks) covers it.
func (l *Lender[I, O]) voteFanLocked(vt *voteState[I, O], idx int, name string) {
	if vt.fanned {
		return
	}
	vt.fanned = true
	if l.verify.Trusted != nil && l.verify.Trusted(name) {
		return
	}
	for i := 0; i < l.verify.K-1; i++ {
		vt.queued++
		l.failed = append(l.failed, lent[I]{idx: idx, v: vt.input})
	}
}

// voteLendFreshLocked accounts a brand-new value handed to sub.
func (l *Lender[I, O]) voteLendFreshLocked(sub *SubStream, idx int, v I) {
	vt := l.voteEnsureOpenLocked(idx, v)
	vt.holders[sub.name]++
	l.voteFanLocked(vt, idx, sub.name)
}

// voteLivenessLocked re-queues one copy when a vote is stuck: not
// resolved, yet no copy is lent or queued (a split consumed them all,
// or a digest failure ate one). Re-lending goes to a non-participant,
// so each extra copy adds a fresh distinct ballot.
func (l *Lender[I, O]) voteLivenessLocked(idx int, vt *voteState[I, O]) {
	if vt.resolved() || vt.copiesLive() > 0 {
		return
	}
	vt.queued++
	l.failed = append(l.failed, lent[I]{idx: idx, v: vt.input})
}

// voteCleanupLocked drops the vote record once it is emitted and no
// copy remains anywhere — late results of zombies are recognized (and
// graded) as long as their holder entry keeps the record alive.
func (l *Lender[I, O]) voteCleanupLocked(idx int, vt *voteState[I, O]) {
	if vt.emitted && len(vt.holders) == 0 && vt.queued == 0 {
		delete(l.votes, idx)
	}
}

// voteResultLocked records one result for the copy at the head of s's
// queue (already popped by resultLocked) and advances the vote.
func (l *Lender[I, O]) voteResultLocked(s *SubStream, item lentAny, v O) []func() {
	vt := l.votes[item.idx]
	if vt == nil {
		// The vote was finalized and cleaned before this zombie
		// answered; nothing to learn.
		return l.serviceLocked()
	}
	vt.dropHolder(s.name)

	d, err := l.verify.Digest(v)
	if err != nil {
		// Undigestible result: no ballot. Keep the vote alive.
		l.voteLivenessLocked(item.idx, vt)
		return l.serviceLocked()
	}

	if vt.resolved() {
		// Late result of a zombie copy: grade it against the accepted
		// digest, never re-open the vote. While a spot-check is in
		// flight the ballot is recorded but graded at finalization —
		// the spot recomputation may still re-point the accepted
		// digest.
		outcome := vt.voter.Add(s.name, d)
		var actions []func()
		if vt.emitted && l.verify.OnVerdict != nil &&
			(outcome == verify.LateAgree || outcome == verify.LateDisagree) {
			fn, name, idx := l.verify.OnVerdict, s.name, item.idx
			agreed := outcome == verify.LateAgree
			actions = append(actions, func() { fn(name, idx, agreed) })
		}
		l.voteCleanupLocked(item.idx, vt)
		return append(actions, l.serviceLocked()...)
	}

	if _, seen := vt.values[d]; !seen {
		vt.values[d] = v
	}
	switch vt.voter.Add(s.name, d) {
	case verify.QuorumReached:
		return l.voteAcceptLocked(item.idx, vt, d, false)
	case verify.Counted:
		if l.verify.Trusted != nil && l.verify.Trusted(s.name) {
			// Fast-path: a trusted worker's ballot resolves the vote
			// by itself; outstanding replicas become zombies.
			vt.voter.Resolve(d)
			return l.voteAcceptLocked(item.idx, vt, d, true)
		}
		l.voteLivenessLocked(item.idx, vt)
		return l.serviceLocked()
	default: // verify.Duplicate: same voice twice, no new information
		l.voteLivenessLocked(item.idx, vt)
		return l.serviceLocked()
	}
}

// voteAcceptLocked handles a freshly resolved vote: either finalize
// immediately or hold emission for a spot-check recomputation.
func (l *Lender[I, O]) voteAcceptLocked(idx int, vt *voteState[I, O], d verify.Digest, fastPath bool) []func() {
	if l.verify.Spot != nil && l.verify.Recompute != nil && l.verify.Spot(idx) {
		vt.spotting = true
		input := vt.input
		actions := []func(){func() { l.spotCheck(idx, input, d, fastPath) }}
		return append(actions, l.serviceLocked()...)
	}
	return l.voteFinalizeLocked(idx, vt, d, fastPath, false, false)
}

// spotCheck recomputes idx locally (outside the lock) and finalizes the
// vote: on a digest mismatch the recomputed value is the ground truth —
// it replaces the accepted result, so even a full quorum of colluders
// cannot push a wrong value past a spot-check.
func (l *Lender[I, O]) spotCheck(idx int, input I, accepted verify.Digest, fastPath bool) {
	truth, err := l.verify.Recompute(input)
	var truthD verify.Digest
	if err == nil {
		truthD, err = l.verify.Digest(truth)
	}
	l.mu.Lock()
	vt := l.votes[idx]
	if vt == nil || !vt.spotting {
		l.mu.Unlock()
		return
	}
	vt.spotting = false
	d, failed := accepted, false
	if err == nil && truthD != accepted {
		failed = true
		d = truthD
		vt.voter.Resolve(truthD)
		vt.values[truthD] = truth
	}
	// A recomputation error leaves the quorum result standing — the
	// check was inconclusive, not failed.
	actions := l.voteFinalizeLocked(idx, vt, d, fastPath, true, failed)
	l.mu.Unlock()
	run(actions)
}

// voteFinalizeLocked emits the accepted value, grades every ballot
// against the final digest, and releases the audit record. This is the
// single place a verified value reaches the reorder buffer, the
// journal hook and the output.
func (l *Lender[I, O]) voteFinalizeLocked(idx int, vt *voteState[I, O], d verify.Digest, fastPath, spotChecked, spotFailed bool) []func() {
	v := vt.values[d]
	vt.emitted = true
	l.pending--
	if l.ordered {
		l.results[idx] = v
		l.maybeSpillLocked()
	} else {
		l.ready = append(l.ready, v)
	}

	var actions []func()
	ballots := vt.voter.Ballots()
	names := make([]string, 0, len(ballots))
	for name := range ballots {
		names = append(names, name)
	}
	sort.Strings(names)
	var agreeing []string
	for _, name := range names {
		agreed := ballots[name] == d
		if agreed {
			agreeing = append(agreeing, name)
		}
		if l.verify.OnVerdict != nil {
			fn, n := l.verify.OnVerdict, name
			actions = append(actions, func() { fn(n, idx, agreed) })
		}
	}
	if l.verify.OnAccept != nil {
		votes := len(agreeing)
		a := verify.Acceptance{
			Idx:         idx,
			Digest:      d,
			Votes:       votes,
			Workers:     agreeing,
			FastPath:    fastPath,
			SpotChecked: spotChecked,
			SpotFailed:  spotFailed,
		}
		fn := l.verify.OnAccept
		actions = append(actions, func() { fn(a) })
	}
	if l.onResult != nil {
		fn := l.onResult
		actions = append(actions, func() { fn(idx, v) })
	}
	l.voteCleanupLocked(idx, vt)
	return append(actions, l.serviceLocked()...)
}

// voteEndCopyLocked handles one outstanding copy of a dying sub-stream:
// a resolved vote's zombie copy is discarded, an unresolved one is
// re-queued — replica death mid-vote must not strand the quorum.
func (l *Lender[I, O]) voteEndCopyLocked(s *SubStream, it lentAny) {
	vt := l.votes[it.idx]
	if vt == nil {
		return
	}
	vt.dropHolder(s.name)
	if vt.resolved() {
		l.voteCleanupLocked(it.idx, vt)
		return
	}
	vt.queued++
	l.failed = append(l.failed, lent[I]{idx: it.idx, v: it.v.(I)})
}

// voteRelendLocked is the verify-mode arm of the failed-queue loop in
// serviceLocked: it drops copies of resolved votes, and hands a live
// copy only to a waiter whose worker name is not already a participant.
// It reports (consumed, lent, actions): consumed means the queue entry
// at fi was removed (the caller must not advance fi).
func (l *Lender[I, O]) voteRelendLocked(fi int) (consumed bool, actions []func()) {
	it := l.failed[fi]
	vt := l.votes[it.idx]
	if vt == nil {
		// No vote record (value queued before SetVerify, or after
		// cleanup): lend plainly to the first waiter.
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		l.failed = append(l.failed[:fi], l.failed[fi+1:]...)
		w.sub.parked = false
		w.sub.outstanding = append(w.sub.outstanding, lentAny{idx: it.idx, v: it.v, at: time.Now()})
		l.outstanding++
		cb, v := w.cb, it.v
		return true, []func(){func() { cb(nil, v) }}
	}
	if vt.resolved() {
		vt.queued--
		l.failed = append(l.failed[:fi], l.failed[fi+1:]...)
		l.voteCleanupLocked(it.idx, vt)
		return true, nil
	}
	wi := -1
	for j, w := range l.waiters {
		if !vt.participant(w.sub.name) {
			wi = j
			break
		}
	}
	if wi < 0 {
		// Every asking worker already holds or voted on this value;
		// keep the copy queued for a fresh voice.
		return false, nil
	}
	w := l.waiters[wi]
	l.waiters = append(l.waiters[:wi], l.waiters[wi+1:]...)
	l.failed = append(l.failed[:fi], l.failed[fi+1:]...)
	w.sub.parked = false
	w.sub.outstanding = append(w.sub.outstanding, lentAny{idx: it.idx, v: it.v, at: time.Now()})
	l.outstanding++
	vt.queued--
	vt.holders[w.sub.name]++
	l.voteFanLocked(vt, it.idx, w.sub.name)
	cb, v := w.cb, it.v
	return true, []func(){func() { cb(nil, v) }}
}

// voteSpeculateLocked queues one extra copy of each of s's oldest
// unresolved values (up to max). Under verification a speculative
// duplicate is just one more replica: the participant check keeps it
// away from s (and any same-named sibling), and the name-keyed ballots
// mean it can never count as a second vote from the same worker — the
// PR 2 speculation-dedup property, enforced structurally.
func (l *Lender[I, O]) voteSpeculateLocked(s *SubStream, max int) int {
	n := 0
	for _, it := range s.outstanding {
		if n >= max {
			break
		}
		vt := l.votes[it.idx]
		if vt == nil || vt.resolved() || vt.queued > 0 {
			continue
		}
		vt.queued++
		l.failed = append(l.failed, lent[I]{idx: it.idx, v: it.v.(I)})
		n++
	}
	return n
}
