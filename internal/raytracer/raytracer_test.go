package raytracer

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Vec3{3, 3, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := (Vec3{1, 0, 0}).Cross(Vec3{0, 1, 0}); got != (Vec3{0, 0, 1}) {
		t.Fatalf("Cross = %v", got)
	}
}

func TestVecNorm(t *testing.T) {
	v := Vec3{3, 4, 0}.Norm()
	if math.Abs(v.Len()-1) > 1e-12 {
		t.Fatalf("norm length = %v", v.Len())
	}
	zero := Vec3{}.Norm()
	if zero != (Vec3{}) {
		t.Fatalf("zero norm = %v", zero)
	}
}

func TestQuickNormUnitLength(t *testing.T) {
	f := func(x, y, z float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(z, 0) {
			return true
		}
		v := Vec3{x, y, z}
		if v.Len() == 0 || v.Len() > 1e150 {
			return true
		}
		return math.Abs(v.Norm().Len()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReflectPreservesLength(t *testing.T) {
	v := Vec3{1, -1, 0.5}.Norm()
	n := Vec3{0, 1, 0}
	r := v.Reflect(n)
	if math.Abs(r.Len()-1) > 1e-12 {
		t.Fatalf("reflected length = %v", r.Len())
	}
	if r.Y <= 0 {
		t.Fatalf("reflection about +Y must flip Y: %v", r)
	}
}

func TestSphereIntersection(t *testing.T) {
	s := Sphere{Center: Vec3{0, 0, -5}, Radius: 1}
	hitRay := Ray{Origin: Vec3{}, Dir: Vec3{0, 0, -1}}
	t1, ok := s.Intersect(hitRay)
	if !ok {
		t.Fatal("ray through centre must hit")
	}
	if math.Abs(t1-4) > 1e-9 {
		t.Fatalf("t = %v, want 4", t1)
	}
	missRay := Ray{Origin: Vec3{}, Dir: Vec3{0, 1, 0}}
	if _, ok := s.Intersect(missRay); ok {
		t.Fatal("ray away from sphere must miss")
	}
	// From inside: hits the far wall.
	inside := Ray{Origin: Vec3{0, 0, -5}, Dir: Vec3{0, 0, -1}}
	t2, ok := s.Intersect(inside)
	if !ok || math.Abs(t2-1) > 1e-9 {
		t.Fatalf("inside hit t = %v ok=%v, want 1", t2, ok)
	}
}

func TestPlaneIntersection(t *testing.T) {
	p := Plane{Y: 0}
	down := Ray{Origin: Vec3{0, 5, 0}, Dir: Vec3{0, -1, 0}}
	t1, ok := p.Intersect(down)
	if !ok || math.Abs(t1-5) > 1e-9 {
		t.Fatalf("t = %v ok=%v", t1, ok)
	}
	parallel := Ray{Origin: Vec3{0, 5, 0}, Dir: Vec3{1, 0, 0}}
	if _, ok := p.Intersect(parallel); ok {
		t.Fatal("parallel ray must miss")
	}
}

func TestPlaneChecker(t *testing.T) {
	p := Plane{Y: 0, Mat: Material{
		Checker: true, Color: Vec3{1, 1, 1}, Color2: Vec3{0, 0, 0},
	}}
	a := p.MaterialAt(Vec3{0.5, 0, 0.5}).Color
	b := p.MaterialAt(Vec3{1.5, 0, 0.5}).Color
	if a == b {
		t.Fatal("adjacent checker cells must differ")
	}
}

func TestRenderDeterministic(t *testing.T) {
	scene := DefaultScene()
	cam := OrbitCamera(1.0, 6, 2.2)
	f1 := scene.Render(cam, 32, 24)
	f2 := scene.Render(cam, 32, 24)
	if !bytes.Equal(f1, f2) {
		t.Fatal("rendering must be deterministic")
	}
	if len(f1) != 4*32*24 {
		t.Fatalf("frame size = %d", len(f1))
	}
}

func TestRenderHasContent(t *testing.T) {
	scene := DefaultScene()
	pix := scene.Render(OrbitCamera(0.5, 6, 2.2), 48, 36)
	// The image must not be uniform: it contains spheres, floor and sky.
	distinct := make(map[[3]byte]bool)
	for i := 0; i < len(pix); i += 4 {
		distinct[[3]byte{pix[i], pix[i+1], pix[i+2]}] = true
	}
	if len(distinct) < 10 {
		t.Fatalf("only %d distinct colours; scene did not render", len(distinct))
	}
}

func TestRenderAngleChangesImage(t *testing.T) {
	scene := DefaultScene()
	f1 := scene.Render(OrbitCamera(0, 6, 2.2), 32, 24)
	f2 := scene.Render(OrbitCamera(math.Pi/2, 6, 2.2), 32, 24)
	if bytes.Equal(f1, f2) {
		t.Fatal("different camera angles must give different frames")
	}
}

func TestRenderFrameRoundTrip(t *testing.T) {
	enc, err := RenderFrame(0.7, 24, 18)
	if err != nil {
		t.Fatal(err)
	}
	pix, err := DecodeFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(pix) != 4*24*18 {
		t.Fatalf("decoded %d bytes, want %d", len(pix), 4*24*18)
	}
}

func TestDecodeFrameBadInput(t *testing.T) {
	if _, err := DecodeFrame("!!!not-base64!!!"); err == nil {
		t.Fatal("expected base64 error")
	}
	if _, err := DecodeFrame("aGVsbG8="); err == nil { // valid base64, not gzip
		t.Fatal("expected gzip error")
	}
}

func TestEncodeGIF(t *testing.T) {
	scene := DefaultScene()
	var frames [][]byte
	for i := 0; i < 3; i++ {
		frames = append(frames, scene.Render(OrbitCamera(float64(i)*0.8, 6, 2.2), 16, 12))
	}
	var buf bytes.Buffer
	if err := EncodeGIF(&buf, frames, 16, 12, 10); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty GIF")
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("GIF8")) {
		t.Fatal("output is not a GIF")
	}
}

func TestEncodeGIFValidation(t *testing.T) {
	if err := EncodeGIF(&bytes.Buffer{}, nil, 8, 8, 10); err == nil {
		t.Fatal("expected error for zero frames")
	}
	bad := [][]byte{make([]byte, 7)}
	if err := EncodeGIF(&bytes.Buffer{}, bad, 8, 8, 10); err == nil {
		t.Fatal("expected error for wrong frame size")
	}
}

func TestShadowing(t *testing.T) {
	// A big sphere between the light and the floor must cast a shadow:
	// the floor point under the sphere is darker than one far away.
	scene := &Scene{
		Objects: []Object{
			Sphere{Center: Vec3{0, 2, 0}, Radius: 1, Mat: Material{Color: Vec3{1, 0, 0}}},
			Plane{Y: 0, Mat: Material{Color: Vec3{1, 1, 1}}},
		},
		Lights:     []Light{{Pos: Vec3{0, 10, 0}, Color: Vec3{1, 1, 1}}},
		Background: Vec3{},
		Ambient:    Vec3{0.1, 0.1, 0.1},
		MaxDepth:   1,
	}
	under := scene.trace(Ray{Origin: Vec3{0.2, 0.5, 0}, Dir: Vec3{0, -1, 0}}, 0)
	open := scene.trace(Ray{Origin: Vec3{8, 0.5, 0}, Dir: Vec3{0, -1, 0}}, 0)
	if under.Len() >= open.Len() {
		t.Fatalf("shadowed point %v not darker than open point %v", under, open)
	}
}
