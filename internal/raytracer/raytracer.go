// Package raytracer is a Whitted-style ray tracer [Whitted 1980], the
// compute-bound rendering workload of the paper's usage example (§2.1,
// Figure 1): an animation is produced by rendering one frame per camera
// position rotating around a 3D scene, each frame rendered independently
// by a volunteer device.
package raytracer

import (
	"bytes"
	"compress/gzip"
	"encoding/base64"
	"fmt"
	"image"
	"image/color"
	"image/gif"
	"io"
	"math"
)

// Material describes a surface.
type Material struct {
	// Color is the diffuse albedo.
	Color Vec3
	// Specular is the Phong specular coefficient.
	Specular float64
	// Shininess is the Phong exponent.
	Shininess float64
	// Reflectivity in [0,1] blends the reflected ray's colour.
	Reflectivity float64
	// Checker alternates Color with Color2 in a checkerboard (floors).
	Checker bool
	// Color2 is the second checker colour.
	Color2 Vec3
}

// Object is anything a ray can hit.
type Object interface {
	// Intersect returns the smallest t > epsilon at which r hits the
	// object, and whether it hits at all.
	Intersect(r Ray) (t float64, ok bool)
	// NormalAt returns the outward unit normal at point p.
	NormalAt(p Vec3) Vec3
	// MaterialAt returns the material at point p.
	MaterialAt(p Vec3) Material
}

const epsilon = 1e-6

// Sphere is a centre/radius sphere.
type Sphere struct {
	Center Vec3
	Radius float64
	Mat    Material
}

// Intersect solves the quadratic ray/sphere equation.
func (s Sphere) Intersect(r Ray) (float64, bool) {
	oc := r.Origin.Sub(s.Center)
	b := oc.Dot(r.Dir)
	c := oc.Dot(oc) - s.Radius*s.Radius
	disc := b*b - c
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	if t := -b - sq; t > epsilon {
		return t, true
	}
	if t := -b + sq; t > epsilon {
		return t, true
	}
	return 0, false
}

// NormalAt returns the outward normal.
func (s Sphere) NormalAt(p Vec3) Vec3 { return p.Sub(s.Center).Norm() }

// MaterialAt returns the sphere's material.
func (s Sphere) MaterialAt(Vec3) Material { return s.Mat }

// Plane is the horizontal plane y = Y.
type Plane struct {
	Y   float64
	Mat Material
}

// Intersect tests against the horizontal plane.
func (pl Plane) Intersect(r Ray) (float64, bool) {
	if math.Abs(r.Dir.Y) < epsilon {
		return 0, false
	}
	t := (pl.Y - r.Origin.Y) / r.Dir.Y
	if t > epsilon {
		return t, true
	}
	return 0, false
}

// NormalAt returns the up normal.
func (pl Plane) NormalAt(Vec3) Vec3 { return Vec3{Y: 1} }

// MaterialAt applies the checkerboard, if configured.
func (pl Plane) MaterialAt(p Vec3) Material {
	m := pl.Mat
	if m.Checker {
		if (int(math.Floor(p.X))+int(math.Floor(p.Z)))%2 != 0 {
			m.Color = m.Color2
		}
	}
	return m
}

// Light is a point light.
type Light struct {
	Pos   Vec3
	Color Vec3
}

// Scene is a renderable collection of objects and lights.
type Scene struct {
	Objects    []Object
	Lights     []Light
	Background Vec3
	Ambient    Vec3
	MaxDepth   int
}

// DefaultScene builds the demonstration scene: three spheres of different
// materials over a checkered floor, in the spirit of the paper's Figure 1.
func DefaultScene() *Scene {
	return &Scene{
		Objects: []Object{
			Sphere{Center: Vec3{0, 1, 0}, Radius: 1, Mat: Material{
				Color: Vec3{0.9, 0.2, 0.2}, Specular: 0.7, Shininess: 64, Reflectivity: 0.35,
			}},
			Sphere{Center: Vec3{-2.2, 0.7, 1.0}, Radius: 0.7, Mat: Material{
				Color: Vec3{0.2, 0.4, 0.9}, Specular: 0.9, Shininess: 128, Reflectivity: 0.5,
			}},
			Sphere{Center: Vec3{1.8, 0.5, -1.2}, Radius: 0.5, Mat: Material{
				Color: Vec3{0.2, 0.8, 0.3}, Specular: 0.4, Shininess: 32, Reflectivity: 0.15,
			}},
			Plane{Y: 0, Mat: Material{
				Color: Vec3{0.85, 0.85, 0.85}, Color2: Vec3{0.2, 0.2, 0.2},
				Checker: true, Specular: 0.1, Shininess: 8, Reflectivity: 0.1,
			}},
		},
		Lights: []Light{
			{Pos: Vec3{5, 8, 5}, Color: Vec3{0.9, 0.9, 0.9}},
			{Pos: Vec3{-6, 4, -2}, Color: Vec3{0.3, 0.3, 0.35}},
		},
		Background: Vec3{0.05, 0.07, 0.12},
		Ambient:    Vec3{0.08, 0.08, 0.08},
		MaxDepth:   3,
	}
}

// hit finds the nearest intersection.
func (s *Scene) hit(r Ray) (Object, float64, bool) {
	var best Object
	bestT := math.Inf(1)
	for _, o := range s.Objects {
		if t, ok := o.Intersect(r); ok && t < bestT {
			best, bestT = o, t
		}
	}
	return best, bestT, best != nil
}

// shadowed reports whether point p is occluded from light l.
func (s *Scene) shadowed(p Vec3, l Light) bool {
	toLight := l.Pos.Sub(p)
	dist := toLight.Len()
	r := Ray{Origin: p, Dir: toLight.Norm()}
	for _, o := range s.Objects {
		if t, ok := o.Intersect(r); ok && t < dist {
			return true
		}
	}
	return false
}

// trace computes the colour seen along r (Whitted recursion).
func (s *Scene) trace(r Ray, depth int) Vec3 {
	obj, t, ok := s.hit(r)
	if !ok {
		return s.Background
	}
	p := r.At(t)
	n := obj.NormalAt(p)
	if n.Dot(r.Dir) > 0 {
		n = n.Scale(-1)
	}
	m := obj.MaterialAt(p)
	// Offset to avoid self-intersection.
	pOut := p.Add(n.Scale(1e-4))

	col := s.Ambient.Mul(m.Color)
	for _, l := range s.Lights {
		if s.shadowed(pOut, l) {
			continue
		}
		ldir := l.Pos.Sub(p).Norm()
		if lam := n.Dot(ldir); lam > 0 {
			col = col.Add(m.Color.Mul(l.Color).Scale(lam))
		}
		if m.Specular > 0 {
			h := ldir.Sub(r.Dir).Norm()
			if sp := n.Dot(h); sp > 0 {
				col = col.Add(l.Color.Scale(m.Specular * math.Pow(sp, m.Shininess)))
			}
		}
	}
	if m.Reflectivity > 0 && depth < s.MaxDepth {
		refl := s.trace(Ray{Origin: pOut, Dir: r.Dir.Reflect(n).Norm()}, depth+1)
		col = col.Scale(1 - m.Reflectivity).Add(refl.Scale(m.Reflectivity))
	}
	return col.Clamp01()
}

// Camera generates primary rays from an orbiting viewpoint.
type Camera struct {
	pos, forward, right, up Vec3
	fovScale                float64
}

// OrbitCamera places the camera on a circle of the given radius and
// height around the origin at the given angle (radians), looking at the
// scene centre. The animation of the paper's Figure 1 is a sweep of this
// angle.
func OrbitCamera(angle, radius, height float64) Camera {
	pos := Vec3{math.Cos(angle) * radius, height, math.Sin(angle) * radius}
	target := Vec3{0, 0.7, 0}
	forward := target.Sub(pos).Norm()
	right := forward.Cross(Vec3{Y: 1}).Norm()
	up := right.Cross(forward)
	return Camera{pos: pos, forward: forward, right: right, up: up, fovScale: math.Tan(0.5 * 60 * math.Pi / 180)}
}

// Render renders a w x h frame of the scene from the camera as RGBA
// bytes (4 bytes per pixel, row major).
func (s *Scene) Render(cam Camera, w, h int) []byte {
	pix := make([]byte, 4*w*h)
	aspect := float64(w) / float64(h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u := (2*(float64(x)+0.5)/float64(w) - 1) * aspect * cam.fovScale
			v := (1 - 2*(float64(y)+0.5)/float64(h)) * cam.fovScale
			dir := cam.forward.Add(cam.right.Scale(u)).Add(cam.up.Scale(v)).Norm()
			c := s.trace(Ray{Origin: cam.pos, Dir: dir}, 0)
			i := 4 * (y*w + x)
			pix[i+0] = toByte(c.X)
			pix[i+1] = toByte(c.Y)
			pix[i+2] = toByte(c.Z)
			pix[i+3] = 0xFF
		}
	}
	return pix
}

func toByte(x float64) byte {
	// Simple gamma 2.2 for a pleasant image.
	return byte(255*math.Pow(clamp01(x), 1/2.2) + 0.5)
}

// RenderFrame renders the default scene at the given camera angle and
// returns the pixels gzip-compressed and base64-encoded, mirroring the
// paper's Figure 2 glue code (render, gzip, base64).
func RenderFrame(angle float64, w, h int) (string, error) {
	scene := DefaultScene()
	pix := scene.Render(OrbitCamera(angle, 6, 2.2), w, h)
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(pix); err != nil {
		return "", fmt.Errorf("raytracer: gzip: %w", err)
	}
	if err := zw.Close(); err != nil {
		return "", fmt.Errorf("raytracer: gzip close: %w", err)
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes()), nil
}

// DecodeFrame reverses RenderFrame's encoding back into RGBA bytes.
func DecodeFrame(encoded string) ([]byte, error) {
	raw, err := base64.StdEncoding.DecodeString(encoded)
	if err != nil {
		return nil, fmt.Errorf("raytracer: base64: %w", err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("raytracer: gunzip: %w", err)
	}
	defer zr.Close()
	pix, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("raytracer: gunzip read: %w", err)
	}
	return pix, nil
}

// EncodeGIF assembles rendered frames (RGBA byte slices) into an animated
// GIF, the gif-encoder.js stage of the paper's Unix pipeline (Figure 3).
func EncodeGIF(w io.Writer, frames [][]byte, width, height, delayCS int) error {
	if len(frames) == 0 {
		return fmt.Errorf("raytracer: no frames")
	}
	anim := &gif.GIF{}
	for i, f := range frames {
		if len(f) != 4*width*height {
			return fmt.Errorf("raytracer: frame %d has %d bytes, want %d", i, len(f), 4*width*height)
		}
		img := image.NewPaletted(image.Rect(0, 0, width, height), palette256())
		for y := 0; y < height; y++ {
			for x := 0; x < width; x++ {
				j := 4 * (y*width + x)
				img.Set(x, y, color.RGBA{f[j], f[j+1], f[j+2], 0xFF})
			}
		}
		anim.Image = append(anim.Image, img)
		anim.Delay = append(anim.Delay, delayCS)
	}
	return gif.EncodeAll(w, anim)
}

// palette256 is a 6x6x6 colour cube plus grays, a standard web palette.
func palette256() color.Palette {
	var p color.Palette
	for r := 0; r < 6; r++ {
		for g := 0; g < 6; g++ {
			for b := 0; b < 6; b++ {
				p = append(p, color.RGBA{byte(r * 51), byte(g * 51), byte(b * 51), 0xFF})
			}
		}
	}
	for i := 0; i < 40; i++ {
		v := byte(i * 255 / 39)
		p = append(p, color.RGBA{v, v, v, 0xFF})
	}
	return p
}
