package raytracer

import "math"

// Vec3 is a 3-component vector used for points, directions and colours.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Mul returns the component-wise product v * w.
func (v Vec3) Mul(w Vec3) Vec3 { return Vec3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns the Euclidean length.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Norm returns the unit vector in v's direction (zero stays zero).
func (v Vec3) Norm() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Reflect returns v reflected about unit normal n.
func (v Vec3) Reflect(n Vec3) Vec3 {
	return v.Sub(n.Scale(2 * v.Dot(n)))
}

// Clamp01 clamps each component to [0, 1].
func (v Vec3) Clamp01() Vec3 {
	return Vec3{clamp01(v.X), clamp01(v.Y), clamp01(v.Z)}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Ray is a half-line with origin and unit direction.
type Ray struct {
	Origin, Dir Vec3
}

// At returns the point at parameter t along the ray.
func (r Ray) At(t float64) Vec3 { return r.Origin.Add(r.Dir.Scale(t)) }
