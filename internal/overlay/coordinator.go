package overlay

import (
	"errors"
	"sync"
)

// Coordinator assigns joining volunteers to relays, keeping the fat tree
// balanced — the role Genet's bootstrap server plays when scaling a
// deployment to hundreds of browsers. The master registers its relays'
// join addresses; each volunteer asking where to join is directed to the
// relay with the fewest assignments (ties broken by registration order).
//
// Assignment is advisory: a volunteer may still join any relay directly,
// and a relay's crash simply makes its assignments stale — the volunteer
// retries and is directed elsewhere.
type Coordinator struct {
	mu     sync.Mutex
	relays []*relayEntry
	index  map[string]*relayEntry
}

type relayEntry struct {
	addr     string
	assigned int
	capacity int // 0 = unbounded
	alive    bool
}

// ErrNoRelay is returned when no live relay has remaining capacity.
var ErrNoRelay = errors.New("overlay: no relay available")

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{index: make(map[string]*relayEntry)}
}

// AddRelay registers a relay join address with the given capacity
// (0 = unbounded). Re-adding an address revives it and updates capacity.
func (c *Coordinator) AddRelay(addr string, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.index[addr]; ok {
		e.capacity = capacity
		e.alive = true
		return
	}
	e := &relayEntry{addr: addr, capacity: capacity, alive: true}
	c.relays = append(c.relays, e)
	c.index[addr] = e
}

// RemoveRelay marks a relay dead (e.g. after its heartbeat failed); its
// assignment count is kept so a revival resumes balancing correctly.
func (c *Coordinator) RemoveRelay(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.index[addr]; ok {
		e.alive = false
	}
}

// Assign picks the least-loaded live relay with remaining capacity and
// records the assignment, returning its join address.
func (c *Coordinator) Assign() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *relayEntry
	for _, e := range c.relays {
		if !e.alive {
			continue
		}
		if e.capacity > 0 && e.assigned >= e.capacity {
			continue
		}
		if best == nil || e.assigned < best.assigned {
			best = e
		}
	}
	if best == nil {
		return "", ErrNoRelay
	}
	best.assigned++
	return best.addr, nil
}

// Release undoes one assignment (a volunteer left or failed to join).
func (c *Coordinator) Release(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.index[addr]; ok && e.assigned > 0 {
		e.assigned--
	}
}

// Load reports the current assignment counts by relay address.
func (c *Coordinator) Load() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.relays))
	for _, e := range c.relays {
		out[e.addr] = e.assigned
	}
	return out
}
