package overlay

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"pando/internal/master"
	"pando/internal/netsim"
	"pando/internal/pullstream"
	"pando/internal/transport"
	"pando/internal/worker"
)

// TestFatTreeScale32 runs the §5 scaling path at CI size: 32 leaves
// behind 4 relays (the paper's companion work scaled the same design to
// a thousand browsers). Checks ordering, completeness, and that every
// subtree contributed.
func TestFatTreeScale32(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := transport.Config{HeartbeatInterval: 50 * time.Millisecond}
	m := master.New[int, int](master.Config{
		FuncName: "inc", Batch: 8, Ordered: true, Channel: cfg,
	}, transport.JSONCodec[int]{}, transport.JSONCodec[int]{})

	rootLn := netsim.NewListener("scale-root", netsim.LAN)
	defer rootLn.Close()
	go m.ServeWS(rootLn)

	inc := func(b []byte) ([]byte, error) {
		var v int
		if err := json.Unmarshal(b, &v); err != nil {
			return nil, err
		}
		return json.Marshal(v + 1)
	}

	const relays, leavesPer = 4, 8
	relayNodes := make([]*Node, relays)
	for r := 0; r < relays; r++ {
		relay := NewNode(fmt.Sprintf("scale-relay-%d", r))
		relay.Channel = cfg
		relay.Fanout = 4
		relayNodes[r] = relay

		childLn := netsim.NewListener(fmt.Sprintf("scale-relay-%d-children", r), netsim.LAN)
		defer childLn.Close()
		go relay.ServeChildren(childLn)

		conn, _, err := rootLn.Dial()
		if err != nil {
			t.Fatal(err)
		}
		go relay.Run(transport.NewWSock(conn, cfg))

		for l := 0; l < leavesPer; l++ {
			leafConn, _, err := childLn.Dial()
			if err != nil {
				t.Fatal(err)
			}
			v := &worker.Volunteer{
				Name:       fmt.Sprintf("scale-leaf-%d-%d", r, l),
				Handler:    inc,
				Channel:    cfg,
				CrashAfter: -1,
				Delay:      500 * time.Microsecond,
			}
			go v.JoinWS(leafConn)
		}
	}

	const items = 600
	out := m.Bind(pullstream.Count(items))
	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != items {
		t.Fatalf("got %d results, want %d", len(got), items)
	}
	for i, v := range got {
		if v != i+2 {
			t.Fatalf("got[%d] = %d, want %d (ordering through 32 leaves)", i, v, i+2)
		}
	}
	// Every relay subtree contributed (adaptive lending spreads work).
	for r, relay := range relayNodes {
		if relay.Children() == 0 {
			t.Errorf("relay %d admitted no children", r)
		}
	}
	stats := m.Stats()
	contributing := 0
	for _, w := range stats {
		if w.Items > 0 {
			contributing++
		}
	}
	if contributing < relays {
		t.Errorf("only %d of %d relays contributed", contributing, relays)
	}
}
