package overlay

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"pando/internal/master"
	"pando/internal/netsim"
	"pando/internal/pullstream"
	"pando/internal/transport"
	"pando/internal/worker"
)

func TestCoordinatorBalancesAssignments(t *testing.T) {
	c := NewCoordinator()
	c.AddRelay("r1", 0)
	c.AddRelay("r2", 0)
	c.AddRelay("r3", 0)
	for i := 0; i < 9; i++ {
		if _, err := c.Assign(); err != nil {
			t.Fatal(err)
		}
	}
	for addr, n := range c.Load() {
		if n != 3 {
			t.Fatalf("%s has %d assignments, want 3", addr, n)
		}
	}
}

func TestCoordinatorRespectsCapacity(t *testing.T) {
	c := NewCoordinator()
	c.AddRelay("small", 2)
	got := map[string]int{}
	for i := 0; i < 2; i++ {
		addr, err := c.Assign()
		if err != nil {
			t.Fatal(err)
		}
		got[addr]++
	}
	if _, err := c.Assign(); !errors.Is(err, ErrNoRelay) {
		t.Fatalf("err = %v, want ErrNoRelay when capacity exhausted", err)
	}
	c.Release("small")
	if _, err := c.Assign(); err != nil {
		t.Fatalf("release did not free capacity: %v", err)
	}
}

func TestCoordinatorSkipsDeadRelays(t *testing.T) {
	c := NewCoordinator()
	c.AddRelay("dead", 0)
	c.AddRelay("alive", 0)
	c.RemoveRelay("dead")
	for i := 0; i < 4; i++ {
		addr, err := c.Assign()
		if err != nil {
			t.Fatal(err)
		}
		if addr != "alive" {
			t.Fatalf("assigned to dead relay %q", addr)
		}
	}
	// Revival resumes balancing with retained counts.
	c.AddRelay("dead", 0)
	addr, err := c.Assign()
	if err != nil {
		t.Fatal(err)
	}
	if addr != "dead" {
		t.Fatalf("assigned %q; the revived relay has fewer assignments", addr)
	}
}

func TestCoordinatorEmpty(t *testing.T) {
	c := NewCoordinator()
	if _, err := c.Assign(); !errors.Is(err, ErrNoRelay) {
		t.Fatalf("err = %v", err)
	}
	c.Release("ghost") // no-op, must not panic
}

func TestQuickCoordinatorNeverExceedsCapacity(t *testing.T) {
	f := func(caps []uint8, joins uint8) bool {
		c := NewCoordinator()
		limit := map[string]int{}
		for i, cap8 := range caps {
			if i >= 5 {
				break
			}
			addr := string(rune('a' + i))
			capn := int(cap8%5) + 1
			c.AddRelay(addr, capn)
			limit[addr] = capn
		}
		counts := map[string]int{}
		for j := 0; j < int(joins); j++ {
			addr, err := c.Assign()
			if err != nil {
				break
			}
			counts[addr]++
		}
		for addr, n := range counts {
			if n > limit[addr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCoordinatorDrivenDeployment stands up master + two relays and lets
// the coordinator place joining volunteers, verifying balanced placement
// and a correct distributed computation through the assigned relays.
func TestCoordinatorDrivenDeployment(t *testing.T) {
	cfg := transport.Config{HeartbeatInterval: 30 * time.Millisecond}
	m := master.New[int, int](master.Config{
		FuncName: "double", Batch: 4, Ordered: true, Channel: cfg,
	}, transport.JSONCodec[int]{}, transport.JSONCodec[int]{})

	rootLn := netsim.NewListener("coord-root", netsim.LAN)
	defer rootLn.Close()
	go m.ServeWS(rootLn)

	coord := NewCoordinator()
	childLns := map[string]*netsim.Listener{}
	for r := 0; r < 2; r++ {
		relay := NewNode(fmt.Sprintf("coord-relay-%d", r))
		relay.Channel = cfg
		addr := fmt.Sprintf("coord-relay-%d-children", r)
		ln := netsim.NewListener(addr, netsim.LAN)
		defer ln.Close()
		childLns[addr] = ln
		go relay.ServeChildren(ln)
		conn, _, err := rootLn.Dial()
		if err != nil {
			t.Fatal(err)
		}
		go relay.Run(transport.NewWSock(conn, cfg))
		coord.AddRelay(addr, 0)
	}

	double := func(b []byte) ([]byte, error) {
		var v int
		if err := json.Unmarshal(b, &v); err != nil {
			return nil, err
		}
		return json.Marshal(v * 2)
	}

	// Six volunteers ask the coordinator where to join.
	for i := 0; i < 6; i++ {
		addr, err := coord.Assign()
		if err != nil {
			t.Fatal(err)
		}
		conn, _, err := childLns[addr].Dial()
		if err != nil {
			t.Fatal(err)
		}
		v := &worker.Volunteer{
			Name:       fmt.Sprintf("assigned-%d", i),
			Handler:    double,
			Channel:    cfg,
			CrashAfter: -1,
		}
		go v.JoinWS(conn)
	}

	// Placement is balanced.
	for addr, n := range coord.Load() {
		if n != 3 {
			t.Fatalf("%s got %d volunteers, want 3", addr, n)
		}
	}

	out := m.Bind(pullstream.Count(60))
	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("got %d results", len(got))
	}
	for i, v := range got {
		if v != (i+1)*2 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}
