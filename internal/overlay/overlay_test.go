package overlay

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"pando/internal/master"
	"pando/internal/netsim"
	"pando/internal/pullstream"
	"pando/internal/transport"
	"pando/internal/worker"
)

func jsonDouble(b []byte) ([]byte, error) {
	var v int
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, err
	}
	return json.Marshal(v * 2)
}

// buildTree stands up: master <- nRelays relays <- leavesPerRelay leaves,
// returning the master and the leaf pipes for fault injection.
func buildTree(t *testing.T, nRelays, leavesPerRelay int, leafCrashAfter int) (*master.Master[int, int], []*netsim.Pipe, []*netsim.Pipe) {
	t.Helper()
	cfg := transport.Config{HeartbeatInterval: 25 * time.Millisecond}
	m := master.New[int, int](master.Config{
		FuncName: "double",
		Batch:    4,
		Ordered:  true,
		Channel:  cfg,
	}, transport.JSONCodec[int]{}, transport.JSONCodec[int]{})

	rootLn := netsim.NewListener("root", netsim.LAN)
	t.Cleanup(func() { rootLn.Close() })
	go m.ServeWS(rootLn)

	var relayPipes, leafPipes []*netsim.Pipe
	for r := 0; r < nRelays; r++ {
		relay := NewNode(fmt.Sprintf("relay-%d", r))
		relay.Channel = cfg

		childLn := netsim.NewListener(fmt.Sprintf("relay-%d-children", r), netsim.LAN)
		t.Cleanup(func() { childLn.Close() })
		go relay.ServeChildren(childLn)

		conn, pipe, err := rootLn.Dial()
		if err != nil {
			t.Fatal(err)
		}
		relayPipes = append(relayPipes, pipe)
		go relay.Run(transport.NewWSock(conn, cfg))

		for l := 0; l < leavesPerRelay; l++ {
			leafConn, leafPipe, err := childLn.Dial()
			if err != nil {
				t.Fatal(err)
			}
			leafPipes = append(leafPipes, leafPipe)
			v := &worker.Volunteer{
				Name:       fmt.Sprintf("leaf-%d-%d", r, l),
				Handler:    jsonDouble,
				Channel:    cfg,
				CrashAfter: leafCrashAfter,
			}
			go v.JoinWS(leafConn)
		}
	}
	return m, relayPipes, leafPipes
}

func TestFatTreeComputesOrdered(t *testing.T) {
	m, _, _ := buildTree(t, 2, 2, -1)
	out := m.Bind(pullstream.Count(80))
	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 80 {
		t.Fatalf("got %d results, want 80", len(got))
	}
	for i, v := range got {
		if v != (i+1)*2 {
			t.Fatalf("got[%d] = %d, want %d (order must survive the tree)", i, v, (i+1)*2)
		}
	}
}

func TestFatTreeLeafCrashRecovered(t *testing.T) {
	// Leaves crash after 3 items each; relays re-lend within their
	// subtree and the computation still completes. One extra reliable
	// leaf guarantees liveness.
	m, _, leafPipes := buildTree(t, 2, 2, 3)
	// Attach one reliable leaf directly to the master as a safety net.
	rootLn := netsim.NewListener("root-direct", netsim.LAN)
	defer rootLn.Close()
	go m.ServeWS(rootLn)
	conn, _, err := rootLn.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cfg := transport.Config{HeartbeatInterval: 25 * time.Millisecond}
	reliable := &worker.Volunteer{Name: "reliable", Handler: jsonDouble, Channel: cfg, CrashAfter: -1}
	go reliable.JoinWS(conn)

	out := m.Bind(pullstream.Count(60))
	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("got %d results, want 60", len(got))
	}
	for i, v := range got {
		if v != (i+1)*2 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	_ = leafPipes
}

func TestFatTreeRelayCrashRecovered(t *testing.T) {
	// An entire relay (with its subtree) is severed mid-run; the master
	// re-lends its outstanding values to the surviving relay.
	m, relayPipes, _ := buildTree(t, 2, 2, -1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		relayPipes[0].Cut()
	}()
	out := m.Bind(pullstream.Count(100))
	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d results, want 100", len(got))
	}
	for i, v := range got {
		if v != (i+1)*2 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestRelayCountsChildren(t *testing.T) {
	cfg := transport.Config{HeartbeatInterval: -1}
	relay := NewNode("r")
	relay.Channel = cfg
	relay.Configure("double", 2, nil)

	ln := netsim.NewListener("children", netsim.Loopback)
	defer ln.Close()
	go relay.ServeChildren(ln)

	conn, _, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	v := &worker.Volunteer{Name: "leaf", Handler: jsonDouble, Channel: cfg, CrashAfter: -1}
	go v.JoinWS(conn)

	deadline := time.After(2 * time.Second)
	for relay.Children() == 0 {
		select {
		case <-deadline:
			t.Fatal("child never admitted")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestDeepTreeThreeLevels(t *testing.T) {
	// master <- relay1 <- relay2 <- leaf: values traverse two relay hops.
	cfg := transport.Config{HeartbeatInterval: 25 * time.Millisecond}
	m := master.New[int, int](master.Config{
		FuncName: "double", Batch: 2, Ordered: true, Channel: cfg,
	}, transport.JSONCodec[int]{}, transport.JSONCodec[int]{})

	rootLn := netsim.NewListener("root3", netsim.LAN)
	defer rootLn.Close()
	go m.ServeWS(rootLn)

	r1 := NewNode("r1")
	r1.Channel = cfg
	l1 := netsim.NewListener("r1-children", netsim.LAN)
	defer l1.Close()
	go r1.ServeChildren(l1)
	c1, _, err := rootLn.Dial()
	if err != nil {
		t.Fatal(err)
	}
	go r1.Run(transport.NewWSock(c1, cfg))

	r2 := NewNode("r2")
	r2.Channel = cfg
	l2 := netsim.NewListener("r2-children", netsim.LAN)
	defer l2.Close()
	go r2.ServeChildren(l2)
	c2, _, err := l1.Dial()
	if err != nil {
		t.Fatal(err)
	}
	go r2.Run(transport.NewWSock(c2, cfg))

	leafConn, _, err := l2.Dial()
	if err != nil {
		t.Fatal(err)
	}
	leaf := &worker.Volunteer{Name: "deep-leaf", Handler: jsonDouble, Channel: cfg, CrashAfter: -1}
	go leaf.JoinWS(leafConn)

	out := m.Bind(pullstream.Count(20))
	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("got %d results, want 20", len(got))
	}
	for i, v := range got {
		if v != (i+1)*2 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}
