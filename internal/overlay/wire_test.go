package overlay

import (
	"testing"
	"time"

	"pando/internal/master"
	"pando/internal/netsim"
	"pando/internal/proto"
	"pando/internal/pullstream"
	"pando/internal/transport"
	"pando/internal/worker"
)

// TestRelayRefusesChildrenAfterParentRejection: when the relay's own
// handshake fails, children waiting for admission must be refused with an
// error, not parked forever.
func TestRelayRefusesChildrenAfterParentRejection(t *testing.T) {
	cfg := transport.Config{HeartbeatInterval: -1}
	m := master.New[int, int](master.Config{FuncName: "double", Channel: cfg},
		transport.JSONCodec[int]{}, transport.JSONCodec[int]{})
	m.Close() // parent refuses every handshake

	relay := NewNode("orphan")
	relay.Channel = cfg
	childLn := netsim.NewListener("orphan-children", netsim.Loopback)
	defer childLn.Close()
	go relay.ServeChildren(childLn)

	p := netsim.NewPipe(netsim.Loopback)
	go m.Admit(transport.NewWSock(p.A, cfg))
	runErr := make(chan error, 1)
	go func() { runErr <- relay.Run(transport.NewWSock(p.B, cfg)) }()

	conn, _, err := childLn.Dial()
	if err != nil {
		t.Fatal(err)
	}
	leaf := &worker.Volunteer{Name: "leaf", Handler: jsonDouble, Channel: cfg, CrashAfter: -1}
	joinErr := make(chan error, 1)
	go func() { joinErr <- leaf.JoinWS(conn) }()

	select {
	case err := <-joinErr:
		if err == nil {
			t.Fatal("child joined an orphaned relay")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("child admission hung on the failed relay")
	}
	if err := <-runErr; err == nil {
		t.Fatal("relay Run succeeded against a closed master")
	}
}

// TestRelayEnforcesDeploymentFormats: the master's welcome carries the
// deployment's allowed wire formats down to relays, so a relay refuses a
// child the master itself would refuse — the restriction does not stop at
// the first overlay hop.
func TestRelayEnforcesDeploymentFormats(t *testing.T) {
	cfg := transport.Config{HeartbeatInterval: 25 * time.Millisecond}
	m := master.New[int, int](master.Config{
		FuncName: "double",
		Batch:    4,
		Ordered:  true,
		Channel:  cfg,
		Formats:  []string{proto.Version2}, // binary wire only
	}, transport.JSONCodec[int]{}, transport.JSONCodec[int]{})

	rootLn := netsim.NewListener("root", netsim.LAN)
	defer rootLn.Close()
	go m.ServeWS(rootLn)

	relay := NewNode("relay")
	relay.Channel = cfg
	childLn := netsim.NewListener("relay-children", netsim.LAN)
	defer childLn.Close()
	go relay.ServeChildren(childLn)

	conn, _, err := rootLn.Dial()
	if err != nil {
		t.Fatal(err)
	}
	go relay.Run(transport.NewWSock(conn, cfg))

	// A v1-only leaf must be refused by the relay.
	v1Conn, _, err := childLn.Dial()
	if err != nil {
		t.Fatal(err)
	}
	v1leaf := &worker.Volunteer{Name: "legacy", Handler: jsonDouble, Channel: cfg,
		CrashAfter: -1, Formats: []string{proto.Version}}
	if err := v1leaf.JoinWS(v1Conn); err == nil {
		t.Fatal("v1-only leaf joined a v2-only deployment through a relay")
	}

	// A v2-capable leaf completes the computation through the relay.
	v2Conn, _, err := childLn.Dial()
	if err != nil {
		t.Fatal(err)
	}
	v2leaf := &worker.Volunteer{Name: "modern", Handler: jsonDouble, Channel: cfg, CrashAfter: -1}
	go v2leaf.JoinWS(v2Conn)

	out := m.Bind(pullstream.Count(20))
	got, err := pullstream.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("got %d results, want 20", len(got))
	}
	for i, v := range got {
		if v != (i+1)*2 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}
