// Package overlay implements a fat-tree overlay in the style of Genet
// (Lavoie et al., SASO'19), the companion work the paper's evaluation
// refers to: "The design of Pando has also been shown to scale up to at
// least a thousand browsers when combined with a fat-tree overlay" (§5).
//
// A relay Node joins a master (or another relay) exactly like a
// volunteer, but instead of processing inputs itself it re-lends them to
// its own children through a nested StreamLender. Because StreamLender
// already provides laziness, ordering, fault-tolerance and adaptivity,
// the relay is a thin composition: inputs received from the parent form
// its input stream, children are its sub-streams, and results flow back
// up in arrival order. A crashed child is handled inside the relay; a
// crashed relay is handled by its parent, which re-lends the whole
// subtree's outstanding values.
package overlay

import (
	"fmt"
	"sync"

	"pando/internal/lender"
	"pando/internal/limiter"
	"pando/internal/proto"
	"pando/internal/pullstream"
	"pando/internal/transport"
)

// Node is one interior node of the fat tree.
type Node struct {
	// Name identifies the relay to its parent.
	Name string
	// Fanout bounds values in flight per child (the child-side Limiter
	// bound); zero selects the parent's batch size.
	Fanout int
	// Channel tunes heartbeats on both the parent and child channels.
	Channel transport.Config

	mu       sync.Mutex
	funcName string
	batch    int
	children int
	live     int
	parent   transport.Channel
	l        *lender.Lender[payload, payload]
}

// payload carries one opaque value with its upstream sequence number.
type payload struct {
	seq  uint64
	data []byte
}

// NewNode creates an idle relay.
func NewNode(name string) *Node {
	return &Node{Name: name, l: lender.New[payload, payload]()}
}

// Run joins the parent over ch (performing the volunteer handshake),
// relays inputs to children and results back, and returns when the
// parent's stream completes or the channel fails. Children are accepted
// concurrently via ServeChildren.
func (n *Node) Run(parent transport.Channel) error {
	if err := parent.Send(&proto.Message{
		Type:    proto.TypeHello,
		Version: proto.Version,
		Peer:    n.Name,
	}); err != nil {
		parent.Close()
		return err
	}
	welcome, err := parent.Recv()
	if err != nil {
		parent.Close()
		return err
	}
	if welcome.Type != proto.TypeWelcome {
		parent.Close()
		return fmt.Errorf("overlay: handshake reply %q", welcome.Type)
	}
	n.mu.Lock()
	n.funcName = welcome.Func
	n.batch = welcome.Batch
	if n.batch <= 0 {
		n.batch = 2
	}
	n.parent = parent
	n.mu.Unlock()

	// Inputs from the parent feed the nested lender.
	in := make(chan payload, 64)
	parentErr := make(chan error, 1)
	out := n.l.Bind(pullstream.FromChan(in, parentErr))

	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			m, err := parent.Recv()
			if err != nil {
				parentErr <- err
				return
			}
			switch m.Type {
			case proto.TypeInput:
				in <- payload{seq: m.Seq, data: m.Data}
			case proto.TypeGoodbye:
				close(in)
				return
			}
		}
	}()

	// Results flow back up in arrival-order (the ordered lender restores
	// input order, which is what the parent's FIFO matching expects).
	drainErr := pullstream.Drain(out, func(p payload) error {
		return parent.Send(&proto.Message{Type: proto.TypeResult, Seq: p.seq, Data: p.data})
	})
	<-recvDone
	if drainErr != nil && !pullstream.IsNormalEnd(drainErr) {
		parent.Close()
		return drainErr
	}
	_ = parent.Send(&proto.Message{Type: proto.TypeGoodbye})
	parent.Close()
	return nil
}

// ServeChildren accepts child volunteers (leaves or deeper relays) until
// the acceptor closes. Run it on its own goroutine alongside Run.
func (n *Node) ServeChildren(acc transport.Acceptor) error {
	for {
		conn, err := acc.Accept()
		if err != nil {
			return nil
		}
		go func() {
			_ = n.AdmitChild(transport.NewWSock(conn, n.Channel))
		}()
	}
}

// AdmitChild performs the handshake with one child and attaches it to the
// nested lender.
func (n *Node) AdmitChild(ch transport.Channel) error {
	hello, err := ch.Recv()
	if err != nil {
		ch.Close()
		return err
	}
	if err := proto.CheckHello(hello); err != nil {
		_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: err.Error()})
		ch.Close()
		return err
	}
	n.mu.Lock()
	funcName, batch := n.funcName, n.batch
	fanout := n.Fanout
	if fanout <= 0 {
		fanout = batch
	}
	n.children++
	n.live++
	n.mu.Unlock()
	if err := ch.Send(&proto.Message{Type: proto.TypeWelcome, Func: funcName, Batch: batch}); err != nil {
		ch.Close()
		n.childGone()
		return err
	}

	_, sd := n.l.LendStream()
	d := childDuplex(ch)
	results := limiter.Limit(d, fanout)(sd.Source)
	watched := func(abort error, cb pullstream.Callback[payload]) {
		results(abort, func(end error, v payload) {
			if end != nil {
				n.childGone()
			}
			cb(end, v)
		})
	}
	sd.Sink(watched)
	return nil
}

// childGone records a child's departure. A relay whose children are all
// gone while it still holds unanswered values is useless yet looks alive
// to its parent (its own heartbeats still flow); it therefore disconnects
// so the parent re-lends the subtree's values elsewhere — crash-stop
// applied to itself.
func (n *Node) childGone() {
	n.mu.Lock()
	n.live--
	orphaned := n.live <= 0
	parent := n.parent
	n.mu.Unlock()
	if !orphaned || parent == nil {
		return
	}
	lentNow, failedQ, _, _ := n.l.Stats()
	if lentNow > 0 || failedQ > 0 {
		parent.Close()
	}
}

// Children returns how many children have been admitted.
func (n *Node) Children() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.children
}

// childDuplex frames payloads for a child channel, preserving the
// upstream sequence numbers so results can be matched at the root.
func childDuplex(ch transport.Channel) pullstream.Duplex[payload, payload] {
	return pullstream.Duplex[payload, payload]{
		Sink: func(src pullstream.Source[payload]) {
			for {
				type ans struct {
					end error
					v   payload
				}
				ansc := make(chan ans, 1)
				src(nil, func(end error, v payload) { ansc <- ans{end, v} })
				a := <-ansc
				if a.end != nil {
					if pullstream.IsNormalEnd(a.end) {
						_ = ch.Send(&proto.Message{Type: proto.TypeGoodbye})
					} else {
						ch.Close()
					}
					return
				}
				if err := ch.Send(&proto.Message{Type: proto.TypeInput, Seq: a.v.seq, Data: a.v.data}); err != nil {
					return
				}
			}
		},
		Source: func(abort error, cb pullstream.Callback[payload]) {
			var zero payload
			if abort != nil {
				ch.Close()
				cb(abort, zero)
				return
			}
			for {
				m, err := ch.Recv()
				if err != nil {
					cb(err, zero)
					return
				}
				switch m.Type {
				case proto.TypeResult:
					if m.Err != "" {
						ch.Close()
						cb(&transport.WorkerError{Seq: m.Seq, Msg: m.Err}, zero)
						return
					}
					cb(nil, payload{seq: m.Seq, data: m.Data})
					return
				case proto.TypeGoodbye:
					cb(pullstream.ErrDone, zero)
					return
				}
			}
		},
	}
}
