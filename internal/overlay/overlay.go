// Package overlay implements a fat-tree overlay in the style of Genet
// (Lavoie et al., SASO'19), the companion work the paper's evaluation
// refers to: "The design of Pando has also been shown to scale up to at
// least a thousand browsers when combined with a fat-tree overlay" (§5).
//
// A relay Node joins a master (or another relay) exactly like a
// volunteer, but instead of processing inputs itself it re-lends them to
// its own children through a nested StreamLender. Because StreamLender
// already provides laziness, ordering, fault-tolerance and adaptivity,
// the relay is a thin composition: inputs received from the parent form
// its input stream, children are its sub-streams, and results flow back
// up in arrival order. A crashed child is handled inside the relay; a
// crashed relay is handled by its parent, which re-lends the whole
// subtree's outstanding values.
package overlay

import (
	"fmt"
	"sync"
	"time"

	"pando/internal/lender"
	"pando/internal/proto"
	"pando/internal/pullstream"
	"pando/internal/sched"
	"pando/internal/transport"
)

// Node is one interior node of the fat tree.
type Node struct {
	// Name identifies the relay to its parent.
	Name string
	// Fanout bounds values in flight per child (the child-side Limiter
	// bound); zero selects the parent's batch size.
	Fanout int
	// Flow overrides the per-child flow-control policy. The zero value
	// keeps a static window of Fanout values per child; an adaptive
	// policy gives each child its own probed credit window, and
	// Speculation re-dispatches values stuck on straggling children —
	// the same controller the master applies to its direct workers.
	Flow sched.Policy
	// Channel tunes heartbeats on both the parent and child channels.
	Channel transport.Config

	mu         sync.Mutex
	funcName   string
	batch      int
	formats    []string // deployment's allowed wire formats (from the welcome)
	configured bool     // deployment parameters are known (Configure ran)
	children   int
	live       int
	parent     transport.Channel
	l          *lender.Lender[payload, payload]
	sched      *sched.Scheduler

	// ready is closed once the parent handshake concluded — successfully
	// (configured is then true) or not — gating child admission on the
	// deployment parameters the welcome carries (function name, batch,
	// wire-format restriction) without hanging children forever when the
	// parent refused this relay.
	ready     chan struct{}
	readyOnce sync.Once
}

// admitWait bounds how long a child waits for the relay's own handshake
// to conclude before being refused.
const admitWait = 10 * time.Second

// payload carries one opaque value with its upstream sequence number.
type payload struct {
	seq  uint64
	data []byte
}

// NewNode creates an idle relay.
func NewNode(name string) *Node {
	return &Node{Name: name, l: lender.New[payload, payload](), ready: make(chan struct{})}
}

// Configure sets the deployment parameters directly and marks the relay
// ready to admit children — for relays operated without a parent
// handshake (static topologies, tests). Run performs the same steps from
// the parent's welcome.
func (n *Node) Configure(funcName string, batch int, formats []string) {
	n.mu.Lock()
	n.funcName = funcName
	n.batch = batch
	if n.batch <= 0 {
		n.batch = 2
	}
	n.formats = formats
	n.configured = true
	if n.sched == nil {
		// The per-child flow controller, resolved once the deployment
		// parameters are known: Flow overrides, else a static window of
		// Fanout (default: the deployment's batch), the old behavior.
		p := n.Flow
		if p.Min <= 0 && p.Max <= 0 {
			fanout := n.Fanout
			if fanout <= 0 {
				fanout = n.batch
			}
			p.Min, p.Max = fanout, fanout
		}
		n.sched = sched.New(p, n.l.IdleAtTail)
	}
	n.mu.Unlock()
	n.readyOnce.Do(func() { close(n.ready) })
}

// Run joins the parent over ch (performing the volunteer handshake),
// relays inputs to children and results back, and returns when the
// parent's stream completes or the channel fails. Children are accepted
// concurrently via ServeChildren.
func (n *Node) Run(parent transport.Channel) error {
	// Whatever way Run exits, release children parked in AdmitChild; on
	// failure paths configured stays false and they are refused. The
	// straggler scan, if any, stops with the relay.
	defer n.readyOnce.Do(func() { close(n.ready) })
	defer func() {
		n.mu.Lock()
		s := n.sched
		n.mu.Unlock()
		if s != nil {
			s.Stop()
		}
	}()
	welcome, err := transport.ClientHandshake(parent, n.Name, nil, nil)
	if err != nil {
		return fmt.Errorf("overlay: %w", err)
	}
	n.mu.Lock()
	n.parent = parent
	n.mu.Unlock()
	// The welcome carries the deployment restriction, enforced on
	// children too.
	n.Configure(welcome.Func, welcome.Batch, welcome.Formats)

	// Inputs from the parent feed the nested lender.
	in := make(chan payload, 64)
	parentErr := make(chan error, 1)
	out := n.l.Bind(pullstream.FromChan(in, parentErr))

	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			m, err := parent.Recv()
			if err != nil {
				parentErr <- err
				return
			}
			switch m.Type {
			case proto.TypeInput:
				// The payload escapes into the lender; the frame buffer's
				// ownership moves with it and only the envelope recycles.
				m.Detach()
				in <- payload{seq: m.Seq, data: m.Data}
				proto.Release(m)
			case proto.TypeGoodbye:
				proto.Release(m)
				close(in)
				return
			default:
				proto.Release(m)
			}
		}
	}()

	// Results flow back up in arrival-order (the ordered lender restores
	// input order, which is what the parent's FIFO matching expects).
	drainErr := pullstream.Drain(out, func(p payload) error {
		return parent.Send(&proto.Message{Type: proto.TypeResult, Seq: p.seq, Data: p.data})
	})
	<-recvDone
	if drainErr != nil && !pullstream.IsNormalEnd(drainErr) {
		parent.Close()
		return drainErr
	}
	_ = parent.Send(&proto.Message{Type: proto.TypeGoodbye})
	parent.Close()
	return nil
}

// ServeChildren accepts child volunteers (leaves or deeper relays) until
// the acceptor closes. Run it on its own goroutine alongside Run.
func (n *Node) ServeChildren(acc transport.Acceptor) error {
	for {
		conn, err := acc.Accept()
		if err != nil {
			return nil
		}
		go func() {
			_ = n.AdmitChild(transport.NewWSock(conn, n.Channel))
		}()
	}
}

// AdmitChild performs the handshake with one child and attaches it to the
// nested lender.
func (n *Node) AdmitChild(ch transport.Channel) error {
	// A child connecting before this relay's own handshake concluded
	// must not be admitted with unknown deployment parameters (empty
	// function name, unrestricted wire formats). Wait — bounded, so a
	// parentless relay refuses children instead of parking them forever —
	// for the welcome; the child's hello sits in the channel meanwhile.
	select {
	case <-n.ready:
	case <-time.After(admitWait):
		err := fmt.Errorf("overlay: relay %q has no deployment after %v", n.Name, admitWait)
		_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: err.Error()})
		ch.Close()
		return err
	}
	n.mu.Lock()
	configured := n.configured
	funcName, batch := n.funcName, n.batch
	restricted := n.formats
	scheduler := n.sched
	n.mu.Unlock()
	if !configured {
		err := fmt.Errorf("overlay: relay %q has no deployment (parent handshake failed)", n.Name)
		_ = ch.Send(&proto.Message{Type: proto.TypeError, Err: err.Error()})
		ch.Close()
		return err
	}
	// The same admission the master performs, honoring the deployment
	// restriction the welcome carried down — a relay must not admit a
	// device the master itself would refuse.
	hello, _, err := transport.AdmitHandshake(ch, funcName, batch, restricted)
	if err != nil {
		return fmt.Errorf("overlay: admission: %w", err)
	}
	n.mu.Lock()
	n.children++
	n.live++
	childName := hello.Peer
	if childName == "" {
		childName = fmt.Sprintf("%s-child-%d", n.Name, n.children)
	}
	n.mu.Unlock()

	// The same per-child controller the master applies to its direct
	// workers: an adaptive (or static) credit gate in place of the fixed
	// child-side Limiter, with stragglers re-dispatched when enabled.
	sub, sd := n.l.LendStream()
	ctrl := scheduler.Attach(childName, childHandle{l: n.l, sub: sub})
	results := sched.Gate(ctrl, childDuplex(ch))(sd.Source)
	watched := func(abort error, cb pullstream.Callback[payload]) {
		results(abort, func(end error, v payload) {
			if end != nil {
				scheduler.Detach(ctrl)
				n.childGone()
			}
			cb(end, v)
		})
	}
	sd.Sink(watched)
	return nil
}

// childHandle adapts a child's lending sub-stream to the scheduler.
type childHandle struct {
	l   *lender.Lender[payload, payload]
	sub *lender.SubStream
}

func (h childHandle) Outstanding() (int, time.Duration) { return h.l.SubInfo(h.sub) }
func (h childHandle) Speculate(max int) int             { return h.l.Speculate(h.sub, max) }

// childGone records a child's departure. A relay whose children are all
// gone while it still holds unanswered values is useless yet looks alive
// to its parent (its own heartbeats still flow); it therefore disconnects
// so the parent re-lends the subtree's values elsewhere — crash-stop
// applied to itself.
func (n *Node) childGone() {
	n.mu.Lock()
	n.live--
	orphaned := n.live <= 0
	parent := n.parent
	n.mu.Unlock()
	if !orphaned || parent == nil {
		return
	}
	lentNow, failedQ, _, _ := n.l.Stats()
	if lentNow > 0 || failedQ > 0 {
		parent.Close()
	}
}

// Children returns how many children have been admitted.
func (n *Node) Children() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.children
}

// childDuplex frames payloads for a child channel, preserving the
// upstream sequence numbers so results can be matched at the root.
//
// The relay's nested lender matches results FIFO, like the master's. The
// upstream seqs are not contiguous per child, so the duplex remembers the
// order it sent them and requires each result to echo the oldest
// unanswered one: a cleanly lost frame (the chaos drop fault) then fails
// the channel — the subtree's values re-lend — instead of silently
// pairing every later result with the wrong value.
func childDuplex(ch transport.Channel) pullstream.Duplex[payload, payload] {
	var (
		seqMu sync.Mutex
		sent  []uint64 // seqs in flight to this child, oldest first
	)
	return pullstream.Duplex[payload, payload]{
		Sink: func(src pullstream.Source[payload]) {
			for {
				type ans struct {
					end error
					v   payload
				}
				ansc := make(chan ans, 1)
				src(nil, func(end error, v payload) { ansc <- ans{end, v} })
				a := <-ansc
				if a.end != nil {
					if pullstream.IsNormalEnd(a.end) {
						_ = ch.Send(&proto.Message{Type: proto.TypeGoodbye})
					} else {
						ch.Close()
					}
					return
				}
				seqMu.Lock()
				sent = append(sent, a.v.seq)
				seqMu.Unlock()
				if err := ch.Send(&proto.Message{Type: proto.TypeInput, Seq: a.v.seq, Data: a.v.data}); err != nil {
					return
				}
			}
		},
		Source: func(abort error, cb pullstream.Callback[payload]) {
			var zero payload
			if abort != nil {
				ch.Close()
				cb(abort, zero)
				return
			}
			for {
				m, err := ch.Recv()
				if err != nil {
					cb(err, zero)
					return
				}
				switch m.Type {
				case proto.TypeResult:
					if m.Err != "" {
						werr := &transport.WorkerError{Seq: m.Seq, Msg: m.Err}
						proto.Release(m)
						ch.Close()
						cb(werr, zero)
						return
					}
					seqMu.Lock()
					ok := len(sent) > 0 && sent[0] == m.Seq
					if ok {
						sent = sent[1:]
					}
					seqMu.Unlock()
					if !ok {
						rerr := fmt.Errorf("overlay: result seq %d out of order (frame lost or reordered)", m.Seq)
						proto.Release(m)
						ch.Close()
						cb(rerr, zero)
						return
					}
					// The result payload escapes to the parent's sender;
					// detach it so only the envelope recycles.
					m.Detach()
					p := payload{seq: m.Seq, data: m.Data}
					proto.Release(m)
					cb(nil, p)
					return
				case proto.TypeGoodbye:
					proto.Release(m)
					cb(pullstream.ErrDone, zero)
					return
				default:
					proto.Release(m)
				}
			}
		},
	}
}
