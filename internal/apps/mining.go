package apps

import (
	"context"
	"fmt"

	"pando/internal/chain"
)

// This file implements the Crypto-currency mining application (paper
// §4.2): a synchronous parallel search in which a monitor lazily provides
// mining attempts to Pando — as many as there are participating workers —
// and keeps providing new attempts until a valid nonce is found, then
// moves on to the next block. The feedback loop is expressed with the
// monitor feeding Pando's lazy input stream and consuming its output.

// MineAttempt is the processing function: test every nonce in the range.
func MineAttempt(a chain.Attempt) (chain.Result, error) {
	return chain.Mine(a), nil
}

// Miner runs the feedback loop against any stream processor exposing
// Pando's Process signature (satisfied by *pando.Pando[chain.Attempt,
// chain.Result]).
type Miner interface {
	Process(ctx context.Context, in <-chan chain.Attempt) (<-chan chain.Result, <-chan error)
}

// MiningSummary reports the outcome of a mining run.
type MiningSummary struct {
	BlocksMined int
	Hashes      uint64
	Attempts    int
}

// RunMining mines until the chain reaches the monitor's target height.
// The paper recommends the unordered StreamLender variant here so a valid
// nonce is reported as soon as possible; construct the deployment with
// pando.WithUnordered() to follow it.
func RunMining(ctx context.Context, p Miner, c *chain.Chain, m *chain.Monitor) (MiningSummary, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	in := make(chan chain.Attempt)
	outc, errc := p.Process(ctx, in)

	// The monitor lazily provides attempts: the send blocks until a
	// worker is available to take one, so exactly as many attempts are
	// outstanding as the workers (times the batch size) demand.
	go func() {
		defer close(in)
		for {
			a, ok := m.NextAttempt()
			if !ok {
				return
			}
			select {
			case in <- a:
			case <-ctx.Done():
				return
			}
		}
	}()

	var sum MiningSummary
	for r := range outc {
		sum.Attempts++
		sum.Hashes += r.Hashes
		if m.Handle(r) {
			cancel() // target reached: stop the stream
			break
		}
	}
	// Drain remaining results so the deployment shuts down cleanly.
	for range outc {
	}
	if err := <-errc; err != nil && ctx.Err() == nil {
		return sum, fmt.Errorf("mining: %w", err)
	}
	sum.BlocksMined = c.Height() - 1 // exclude genesis
	if err := c.Verify(); err != nil {
		return sum, fmt.Errorf("mining: chain verification: %w", err)
	}
	return sum, nil
}
