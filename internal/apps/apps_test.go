package apps

import (
	"bytes"
	"context"
	"fmt"
	"math/big"
	"sync/atomic"
	"testing"

	pando "pando"
	"pando/internal/chain"
	"pando/internal/landsat"
	"pando/internal/pullstream"
	"pando/internal/worker"
)

var appNameSeq atomic.Int64

func deployment[I, O any](t *testing.T, f func(I) (O, error), opts ...pando.Option) *pando.Pando[I, O] {
	t.Helper()
	name := fmt.Sprintf("apps-test-%d", appNameSeq.Add(1))
	p := pando.New(name, f, opts...)
	t.Cleanup(p.Close)
	return p
}

// --- Collatz (pipeline, Figure 10) ---

func TestCollatzStepsKnownValues(t *testing.T) {
	cases := map[string]int{
		"1":  0,
		"2":  1,
		"3":  7, // 3 10 5 16 8 4 2 1
		"6":  8,
		"27": 111,
	}
	for n, want := range cases {
		r, err := CollatzSteps(n)
		if err != nil {
			t.Fatal(err)
		}
		if r.Steps != want {
			t.Fatalf("CollatzSteps(%s) = %d, want %d", n, r.Steps, want)
		}
		if r.Ops == 0 && n != "1" {
			t.Fatalf("CollatzSteps(%s) counted no ops", n)
		}
	}
}

func TestCollatzBigNumbers(t *testing.T) {
	// Beyond uint64: the BigNumber requirement of the paper's port.
	huge := new(big.Int).Lsh(big.NewInt(1), 70) // 2^70: exactly 70 halvings
	r, err := CollatzSteps(huge.String())
	if err != nil {
		t.Fatal(err)
	}
	if r.Steps != 70 {
		t.Fatalf("steps(2^70) = %d, want 70", r.Steps)
	}
}

func TestCollatzRejectsBadInput(t *testing.T) {
	if _, err := CollatzSteps("banana"); err == nil {
		t.Fatal("non-integer accepted")
	}
	if _, err := CollatzSteps("-5"); err == nil {
		t.Fatal("negative accepted")
	}
	if _, err := CollatzSteps("0"); err == nil {
		t.Fatal("zero accepted")
	}
}

func TestCollatzPipelineEndToEnd(t *testing.T) {
	p := deployment(t, CollatzSteps)
	p.AddLocalWorkers(3)
	inputs := CollatzInputs(big.NewInt(1), 30)
	results, err := p.ProcessSlice(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 30 {
		t.Fatalf("got %d results", len(results))
	}
	// Ordered output: result i corresponds to input i.
	for i, r := range results {
		if r.N != inputs[i] {
			t.Fatalf("results[%d].N = %s, want %s (ordered)", i, r.N, inputs[i])
		}
	}
	best, ok := MaxCollatz(results)
	if !ok {
		t.Fatal("no max")
	}
	if best.N != "27" { // longest trajectory among 1..30
		t.Fatalf("max steps at N=%s (%d steps), want 27", best.N, best.Steps)
	}
}

// --- Raytrace (pipeline; §2.1 usage example) ---

func TestRenderFrameParsesAndRenders(t *testing.T) {
	enc, err := RenderFrame("1.5707")
	if err != nil {
		t.Fatal(err)
	}
	if enc == "" {
		t.Fatal("empty frame")
	}
	if _, err := RenderFrame("not-a-float"); err == nil {
		t.Fatal("bad camera position accepted")
	}
}

func TestGenerateAngles(t *testing.T) {
	angles := GenerateAngles(8)
	if len(angles) != 8 {
		t.Fatalf("len = %d", len(angles))
	}
	if angles[0] != "0.000000" {
		t.Fatalf("angles[0] = %s", angles[0])
	}
}

func TestRaytracePipelineEndToEnd(t *testing.T) {
	// The full Figure 3 pipeline: generate-angles | pando render | gif-encoder.
	p := deployment(t, RenderFrame)
	p.AddLocalWorkers(4)
	frames, err := p.ProcessSlice(context.Background(), GenerateAngles(6))
	if err != nil {
		t.Fatal(err)
	}
	var gifBuf bytes.Buffer
	if err := EncodeAnimation(&gifBuf, frames); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(gifBuf.Bytes(), []byte("GIF8")) {
		t.Fatal("pipeline did not produce a GIF")
	}
}

// --- Arxiv (crowd processing) ---

func TestTagPaperHeuristic(t *testing.T) {
	tag, err := TagPaper(Paper{ID: 1, Title: "WebRTC for volunteers", Abstract: ""})
	if err != nil {
		t.Fatal(err)
	}
	if !tag.Interesting {
		t.Fatal("WebRTC paper should be interesting")
	}
	tag, err = TagPaper(Paper{ID: 2, Title: "Soil acidity", Abstract: "pH levels"})
	if err != nil {
		t.Fatal(err)
	}
	if tag.Interesting {
		t.Fatal("soil paper should be boring")
	}
}

func TestArxivEndToEnd(t *testing.T) {
	p := deployment(t, TagPaper)
	p.AddLocalWorkers(2)
	tags, err := p.ProcessSlice(context.Background(), SamplePapers())
	if err != nil {
		t.Fatal(err)
	}
	interesting := 0
	for _, tg := range tags {
		if tg.Interesting {
			interesting++
		}
	}
	if interesting == 0 || interesting == len(tags) {
		t.Fatalf("%d/%d interesting; the sample mixes both", interesting, len(tags))
	}
}

// --- StreamLender test (random protocol checking) ---

func TestRunRandomCheckCleanSeeds(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	for seed := int64(0); seed < int64(n); seed++ {
		rep, err := RunRandomCheck(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("seed %d found violations: %v", seed, rep.Violations)
		}
		if rep.Executions == 0 {
			t.Fatalf("seed %d exercised nothing", seed)
		}
	}
}

func TestSLTestEndToEnd(t *testing.T) {
	// The paper's self-test: Pando distributes random executions of its
	// own coordination abstraction.
	p := deployment(t, RunRandomCheck)
	p.AddLocalWorkers(3)
	reports, err := p.ProcessSlice(context.Background(), SLTestSeeds(100, 24))
	if err != nil {
		t.Fatal(err)
	}
	if bad := MonitorFailures(reports); len(bad) != 0 {
		t.Fatalf("violations found: %+v", bad)
	}
}

// --- ML agent (hyperparameter search) ---

func TestMLAgentSweepEndToEnd(t *testing.T) {
	p := deployment(t, TrainAgent)
	p.AddLocalWorkers(4)
	outcomes, err := p.ProcessSlice(context.Background(), AgentInputs())
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != len(DefaultAlphaSweep()) {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	best, ok := BestAgent(outcomes)
	if !ok {
		t.Fatal("no best")
	}
	// A healthy learning rate must win over the pathological extremes.
	if best.Params.Alpha < 0.05 {
		t.Fatalf("best alpha = %v; search failed", best.Params.Alpha)
	}
	if best.SuccessRate == 0 {
		t.Fatal("winning agent never reached the goal")
	}
}

// --- Image processing, http variant (pipeline) ---

func TestImgProcHTTPEndToEnd(t *testing.T) {
	srv := landsat.NewServer(32, 32)
	base, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := deployment(t, BlurTileHTTP)
	p.AddLocalWorkers(3)
	jobs := ImgProcJobs(12, base, 32, 32, 2)
	done, err := p.ProcessSlice(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 12 {
		t.Fatalf("got %d acks", len(done))
	}
	// Synchronous guarantee: every acked result is already on the server.
	for _, d := range done {
		if _, ok := srv.Result(d.ID); !ok {
			t.Fatalf("tile %d acked but result missing on server", d.ID)
		}
	}
	if srv.ResultCount() != 12 {
		t.Fatalf("server holds %d results", srv.ResultCount())
	}
}

// --- Image processing, p2p variants (stubborn, Figure 12) ---

func TestStubbornImageProcessing(t *testing.T) {
	store := landsat.NewP2PStore(0.4, 0, 99) // 60% of shares silently fail
	blur := NewP2PBlur(store)

	// Local (sequential) distributed-map stand-in for this unit test; the
	// full Pando integration is exercised in the integration suite.
	mapTh := func(src pullstream.Source[TileJob]) pullstream.Source[TileDone] {
		return pullstream.MapErr(blur)(src)
	}
	jobOf := func(id int) TileJob { return TileJob{ID: id, Width: 16, Height: 16, Radius: 2} }
	th := StubbornP2P(mapTh, store, jobOf)

	var jobs []TileJob
	for i := 0; i < 20; i++ {
		jobs = append(jobs, jobOf(i))
	}
	got, err := pullstream.Collect(th(pullstream.Values(jobs...)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("got %d outputs, want 20", len(got))
	}
	seen := map[int]int{}
	for _, d := range got {
		seen[d.ID]++
	}
	for i := 0; i < 20; i++ {
		if seen[i] != 1 {
			t.Fatalf("tile %d output %d times, want exactly once", i, seen[i])
		}
		// The guarantee: an output implies the data is downloadable.
		if _, err := store.Download(i); err != nil {
			t.Fatalf("tile %d output but not downloadable: %v", i, err)
		}
	}
}

// --- Crypto-currency mining (synchronous parallel search, Figure 11) ---

func TestMiningFeedbackLoop(t *testing.T) {
	c := chain.NewChain(10)
	m := chain.NewMonitor(c, 2048, 4, nil)
	p := deployment(t, MineAttempt, pando.WithUnordered())
	p.AddLocalWorkers(3)

	sum, err := RunMining(context.Background(), p, c, m)
	if err != nil {
		t.Fatal(err)
	}
	if sum.BlocksMined != 3 {
		t.Fatalf("mined %d blocks, want 3 (target height 4 incl. genesis)", sum.BlocksMined)
	}
	if sum.Hashes == 0 || sum.Attempts == 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMiningSingleWorker(t *testing.T) {
	c := chain.NewChain(8)
	m := chain.NewMonitor(c, 4096, 2, nil)
	p := deployment(t, MineAttempt, pando.WithUnordered())
	p.AddLocalWorkers(1)
	sum, err := RunMining(context.Background(), p, c, m)
	if err != nil {
		t.Fatal(err)
	}
	if sum.BlocksMined != 1 {
		t.Fatalf("mined %d, want 1", sum.BlocksMined)
	}
}

func TestRegisterAllIdempotent(t *testing.T) {
	RegisterAll()
	RegisterAll() // must not panic
}

func workerLookup(name string) (worker.Handler, bool) { return worker.Lookup(name) }

func TestFlexibleHandlerBothEncodings(t *testing.T) {
	RegisterAll()
	h, ok := workerLookup(SLTestFunc)
	if !ok {
		t.Fatal("sl-test not registered")
	}
	// Direct JSON encoding (typed library master).
	out, err := h([]byte(`7`))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, []byte(`"seed":7`)) {
		t.Fatalf("out = %s", out)
	}
	// String-wrapped encoding (the CLI's line-based input).
	out, err = h([]byte(`"7"`))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, []byte(`"seed":7`)) {
		t.Fatalf("out = %s", out)
	}
	// Garbage still fails loudly.
	if _, err := h([]byte(`"not-a-seed"`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestStubbornDATVariant(t *testing.T) {
	// The DAT variant (§4.3): results stay staged until the simulated
	// user confirms; the stubborn loop resubmits until each tile's data
	// is actually downloadable.
	dat := landsat.NewDATStore()
	jobOf := func(id int) TileJob { return TileJob{ID: id, Width: 8, Height: 8, Radius: 1} }
	blur := func(job TileJob) (TileDone, error) {
		tile := landsat.GenerateTile(job.ID, job.Width, job.Height)
		blurred, err := landsat.BoxBlur(tile, job.Radius)
		if err != nil {
			return TileDone{}, err
		}
		dat.Share(blurred) // staged, not yet confirmed
		return TileDone{ID: job.ID, OK: true}, nil
	}
	mapTh := func(src pullstream.Source[TileJob]) pullstream.Source[TileDone] {
		return pullstream.MapErr(blur)(src)
	}
	// The "user" confirms on the retry path: the classify function checks
	// downloadability and confirms staged tiles before resubmitting, so
	// the second attempt finds the data present.
	th := stubbornDAT(mapTh, dat, jobOf)

	var jobs []TileJob
	for i := 0; i < 8; i++ {
		jobs = append(jobs, jobOf(i))
	}
	got, err := pullstream.Collect(th(pullstream.Values(jobs...)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("got %d outputs", len(got))
	}
	for i := 0; i < 8; i++ {
		if _, err := dat.Download(i); err != nil {
			t.Fatalf("tile %d output but not downloadable: %v", i, err)
		}
	}
}

func TestStubbornWebTorrentVariant(t *testing.T) {
	// Connections succeed only 30% of the time; the stubborn loop keeps
	// retrying until the swarm is joined and every tile downloadable.
	wt := landsat.NewWebTorrentStore(0, 0.3, 11)
	blur := NewWebTorrentBlur(wt)
	jobOf := func(id int) TileJob { return TileJob{ID: id, Width: 8, Height: 8, Radius: 1} }
	mapTh := func(src pullstream.Source[TileJob]) pullstream.Source[TileDone] {
		return pullstream.MapErr(blur)(src)
	}
	th := StubbornWebTorrent(mapTh, wt, jobOf)

	var jobs []TileJob
	for i := 0; i < 10; i++ {
		jobs = append(jobs, jobOf(i))
	}
	got, err := pullstream.Collect(th(pullstream.Values(jobs...)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d outputs", len(got))
	}
	for i := 0; i < 10; i++ {
		if _, err := wt.Download(i); err != nil {
			t.Fatalf("tile %d not downloadable: %v", i, err)
		}
	}
}
