package apps

import (
	"fmt"

	"pando/internal/landsat"
	"pando/internal/pullstream"
	"pando/internal/stubborn"
)

// This file implements the Image processing application in its three
// variants (paper §4.1 and §4.3): blurring tiles of an open satellite
// dataset with the image data distributed outside of Pando.

// TileJob identifies one image to process; every parameter a volunteer
// needs travels in the input value (the paper's workers receive the http
// server's address the same way).
type TileJob struct {
	ID      int    `json:"id"`
	BaseURL string `json:"baseURL,omitempty"` // http variant only
	Width   int    `json:"width"`
	Height  int    `json:"height"`
	Radius  int    `json:"radius"`
}

// TileDone acknowledges one processed image. In the http variant the
// result data has already been posted back synchronously when this value
// is produced, so receiving it guarantees the output image was received.
type TileDone struct {
	ID int  `json:"id"`
	OK bool `json:"ok"`
}

// ImgProcJobs builds the job stream for n tiles.
func ImgProcJobs(n int, baseURL string, width, height, radius int) []TileJob {
	jobs := make([]TileJob, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, TileJob{
			ID: i, BaseURL: baseURL, Width: width, Height: height, Radius: radius,
		})
	}
	return jobs
}

// BlurTileHTTP is the http-variant processing function: fetch the input
// image over HTTP, blur it, and post the result back before returning.
func BlurTileHTTP(job TileJob) (TileDone, error) {
	tile, err := landsat.FetchTile(job.BaseURL, job.ID, job.Width, job.Height)
	if err != nil {
		return TileDone{}, fmt.Errorf("img-proc: %w", err)
	}
	blurred, err := landsat.BoxBlur(tile, job.Radius)
	if err != nil {
		return TileDone{}, fmt.Errorf("img-proc: %w", err)
	}
	if err := landsat.PostResult(job.BaseURL, blurred); err != nil {
		return TileDone{}, fmt.Errorf("img-proc: %w", err)
	}
	return TileDone{ID: job.ID, OK: true}, nil
}

// NewP2PBlur returns the p2p-variant processing function bound to a
// DAT / WebTorrent-like store: the worker generates/fetches the tile,
// blurs it, and *shares* the result asynchronously — the share may
// silently fail even though the worker reports success, the failure mode
// the stubborn module exists for (§4.3).
func NewP2PBlur(store *landsat.P2PStore) func(TileJob) (TileDone, error) {
	return func(job TileJob) (TileDone, error) {
		tile := landsat.GenerateTile(job.ID, job.Width, job.Height)
		blurred, err := landsat.BoxBlur(tile, job.Radius)
		if err != nil {
			return TileDone{}, fmt.Errorf("img-proc-p2p: %w", err)
		}
		store.Share(blurred)
		return TileDone{ID: job.ID, OK: true}, nil
	}
}

// StubbornP2P wraps a distributed-map Through with the §4.3 feedback
// loop: a job's result is output only after its data can actually be
// downloaded from the p2p store; otherwise the job is resubmitted. On a
// resubmission's success path the store is force-seeded, modelling the
// retry eventually landing on a live seeder.
func StubbornP2P(th pullstream.Through[TileJob, TileDone], store *landsat.P2PStore, jobOf func(id int) TileJob) pullstream.Through[TileJob, TileDone] {
	return stubborn.Loop(th, func(done TileDone) (stubborn.Verdict, TileJob) {
		if _, err := store.Download(done.ID); err != nil {
			job := jobOf(done.ID)
			// The retry processes and force-seeds so progress is
			// guaranteed (a stubborn retry that could never succeed
			// would livelock, which the paper's design rules out by
			// re-sharing from a live peer).
			tile := landsat.GenerateTile(job.ID, job.Width, job.Height)
			if blurred, berr := landsat.BoxBlur(tile, job.Radius); berr == nil {
				store.ForceShare(blurred)
			}
			return stubborn.Retry, job
		}
		return stubborn.Accept, TileJob{}
	})
}

// stubbornDAT wraps a distributed map with the DAT-variant feedback loop:
// a result is accepted only once its tile is downloadable; staged tiles
// are confirmed (the simulated user's click) and the job retried.
func stubbornDAT(th pullstream.Through[TileJob, TileDone], store *landsat.DATStore, jobOf func(id int) TileJob) pullstream.Through[TileJob, TileDone] {
	return stubborn.Loop(th, func(done TileDone) (stubborn.Verdict, TileJob) {
		if _, err := store.Download(done.ID); err != nil {
			store.Confirm(done.ID) // the user enables the transfer
			return stubborn.Retry, jobOf(done.ID)
		}
		return stubborn.Accept, TileJob{}
	})
}

// NewWebTorrentBlur returns the WebTorrent-variant processing function: a
// worker joins the swarm (slow, possibly failing — the §5.1 observation),
// blurs the tile, and seeds the result if its connection is up.
func NewWebTorrentBlur(store *landsat.WebTorrentStore) func(TileJob) (TileDone, error) {
	return func(job TileJob) (TileDone, error) {
		// Best effort: a failed join is not an application error; the
		// stubborn loop will catch the missing data.
		_ = store.Connect()
		tile := landsat.GenerateTile(job.ID, job.Width, job.Height)
		blurred, err := landsat.BoxBlur(tile, job.Radius)
		if err != nil {
			return TileDone{}, fmt.Errorf("img-proc-webtorrent: %w", err)
		}
		store.Share(blurred)
		return TileDone{ID: job.ID, OK: true}, nil
	}
}

// StubbornWebTorrent wraps a distributed map with the WebTorrent-variant
// feedback loop: unreachable results retry (reconnecting as needed) until
// every tile is downloadable.
func StubbornWebTorrent(th pullstream.Through[TileJob, TileDone], store *landsat.WebTorrentStore, jobOf func(id int) TileJob) pullstream.Through[TileJob, TileDone] {
	return stubborn.Loop(th, func(done TileDone) (stubborn.Verdict, TileJob) {
		if _, err := store.Download(done.ID); err != nil {
			_ = store.Connect() // keep trying to join the swarm
			return stubborn.Retry, jobOf(done.ID)
		}
		return stubborn.Accept, TileJob{}
	})
}
