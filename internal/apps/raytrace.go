package apps

import (
	"fmt"
	"io"
	"math"
	"strconv"

	"pando/internal/raytracer"
)

// This file implements the Raytrace application (paper §2.1 and §4.1):
// rendering the individual frames of a 3D animation in parallel while
// still obtaining them in the correct order, then assembling them into an
// animated GIF.

// Frame dimensions used by the distributed renderer. The paper's
// evaluation used a smaller image than its earlier experiments to fit
// WebRTC message limits (§5.1); these defaults follow that spirit.
const (
	FrameWidth  = 96
	FrameHeight = 72
)

// RenderFrame is the processing function of the paper's Figure 2,
// faithfully ported: the camera position arrives as a string, is parsed
// into a float, the scene is rendered, and the pixels are returned
// gzipped and base64-encoded.
func RenderFrame(cameraPos string) (string, error) {
	angle, err := strconv.ParseFloat(cameraPos, 64)
	if err != nil {
		return "", fmt.Errorf("render: parse camera position %q: %w", cameraPos, err)
	}
	return raytracer.RenderFrame(angle, FrameWidth, FrameHeight)
}

// GenerateAngles is the generate-angles.js stage of the paper's Figure 3:
// one full rotation around the scene in frames steps, as strings.
func GenerateAngles(frames int) []string {
	out := make([]string, 0, frames)
	for i := 0; i < frames; i++ {
		angle := 2 * math.Pi * float64(i) / float64(frames)
		out = append(out, strconv.FormatFloat(angle, 'f', 6, 64))
	}
	return out
}

// EncodeAnimation is the gif-encoder.js stage: decode every rendered
// frame and assemble the animated GIF.
func EncodeAnimation(w io.Writer, encodedFrames []string) error {
	frames := make([][]byte, 0, len(encodedFrames))
	for i, ef := range encodedFrames {
		pix, err := raytracer.DecodeFrame(ef)
		if err != nil {
			return fmt.Errorf("gif-encoder: frame %d: %w", i, err)
		}
		frames = append(frames, pix)
	}
	return raytracer.EncodeGIF(w, frames, FrameWidth, FrameHeight, 8)
}
