package apps

import (
	"fmt"
	"math/big"
)

// This file implements the Collatz application (paper §4.1): an ongoing
// BOINC project searching for the integer that results in the largest
// number of computation steps under the Collatz rules. The paper's
// version was compiled from MATLAB to JavaScript and adapted to a
// BigNumber library; ours uses math/big directly. Throughput is measured
// in big-number operations per second (Table 2's Bignum/s).

var (
	bigOne   = big.NewInt(1)
	bigTwo   = big.NewInt(2)
	bigThree = big.NewInt(3)
)

// CollatzResult reports the number of steps for one starting integer.
type CollatzResult struct {
	N     string `json:"n"`
	Steps int    `json:"steps"`
	// Ops counts big-number operations performed, the Bignum/s unit.
	Ops int `json:"ops"`
}

// CollatzSteps counts the Collatz steps for the decimal integer nStr:
// n -> n/2 if even, n -> 3n+1 if odd, until n reaches 1.
func CollatzSteps(nStr string) (CollatzResult, error) {
	n, ok := new(big.Int).SetString(nStr, 10)
	if !ok {
		return CollatzResult{}, fmt.Errorf("collatz: %q is not a decimal integer", nStr)
	}
	if n.Sign() <= 0 {
		return CollatzResult{}, fmt.Errorf("collatz: %s is not positive", nStr)
	}
	res := CollatzResult{N: nStr}
	m := new(big.Int).Set(n)
	r := new(big.Int)
	for m.Cmp(bigOne) != 0 {
		if r.Mod(m, bigTwo).Sign() == 0 {
			m.Div(m, bigTwo)
			res.Ops += 2 // mod + div
		} else {
			m.Mul(m, bigThree)
			m.Add(m, bigOne)
			res.Ops += 3 // mod + mul + add
		}
		res.Steps++
	}
	return res, nil
}

// CollatzInputs lists count consecutive starting integers from start, as
// decimal strings (inputs arrive as strings on Pando's standard input in
// the paper's pipeline).
func CollatzInputs(start *big.Int, count int) []string {
	out := make([]string, 0, count)
	n := new(big.Int).Set(start)
	for i := 0; i < count; i++ {
		out = append(out, n.String())
		n = new(big.Int).Add(n, bigOne)
	}
	return out
}

// MaxCollatz is the Post stage of the pipeline (Figure 10): keep the
// input with the largest number of steps.
func MaxCollatz(results []CollatzResult) (CollatzResult, bool) {
	if len(results) == 0 {
		return CollatzResult{}, false
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.Steps > best.Steps {
			best = r
		}
	}
	return best, true
}
