package apps

import (
	"strings"
	"time"
)

// This file implements the Arxiv application (paper §4.1): distributing
// the tagging of interesting papers to a group of collaborators — a form
// of crowd-processing that uses the browser as a user interface rather
// than a processing environment.
//
// Substitution: the humans are simulated by a keyword heuristic plus a
// think-time delay. The paper itself excluded Arxiv from its throughput
// evaluation because the "processing" is performed by a volunteer rather
// than the device (§5.1); we do the same and use it only in tests and
// examples.

// Paper is the meta-information shown to a collaborator.
type Paper struct {
	ID       int    `json:"id"`
	Title    string `json:"title"`
	Abstract string `json:"abstract"`
}

// Tag is a collaborator's verdict.
type Tag struct {
	ID          int    `json:"id"`
	Interesting bool   `json:"interesting"`
	Reason      string `json:"reason,omitempty"`
}

// interestingKeywords drive the simulated collaborator's attention.
var interestingKeywords = []string{
	"volunteer computing", "webrtc", "stream", "browser", "peer-to-peer",
}

// HumanThinkTime is the simulated per-paper reading time. Tests may keep
// it at zero; examples set it to something human.
var HumanThinkTime time.Duration

// TagPaper simulates one collaborator tagging one paper.
func TagPaper(p Paper) (Tag, error) {
	if HumanThinkTime > 0 {
		time.Sleep(HumanThinkTime)
	}
	text := strings.ToLower(p.Title + " " + p.Abstract)
	for _, kw := range interestingKeywords {
		if strings.Contains(text, kw) {
			return Tag{ID: p.ID, Interesting: true, Reason: "mentions " + kw}, nil
		}
	}
	return Tag{ID: p.ID, Interesting: false}, nil
}

// SamplePapers returns a small synthetic feed for examples and tests.
func SamplePapers() []Paper {
	return []Paper{
		{ID: 1, Title: "Pando: Personal Volunteer Computing in Browsers",
			Abstract: "A tool based on WebRTC and WebSockets to parallelize a stream of values."},
		{ID: 2, Title: "A Study of Soil Acidity",
			Abstract: "Longitudinal measurements of pH in agricultural settings."},
		{ID: 3, Title: "Scalable Distributed Stream Processing",
			Abstract: "Operators and dataflow graphs for low-latency computation."},
		{ID: 4, Title: "On the Combinatorics of Tiling",
			Abstract: "Enumerative results for polyomino tilings."},
		{ID: 5, Title: "Peer-to-Peer Content Distribution in Web Browsers",
			Abstract: "Leveraging WebRTC for browser-based swarming."},
	}
}
